//===- tests/baselines_test.cpp - Baseline predictor tests ----------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/GroundTruthPredictors.h"
#include "baselines/PMEvo.h"
#include "machine/MachineBuilder.h"
#include "machine/StandardMachines.h"
#include "sim/AnalyticOracle.h"
#include "support/Rng.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace palmed;

TEST(GroundTruthPredictors, UopsStyleOverestimatesDividers) {
  // Port-mapping-only tools assume fully pipelined units; on a
  // divider-heavy kernel they must over-estimate IPC (paper Sec. VI-B).
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Uops = makeUopsInfoPredictor(M);

  InstrId Div = M.isa().findByName("DIV32_0");
  ASSERT_NE(Div, InvalidInstr);
  Microkernel K = Microkernel::single(Div, 2.0);
  auto P = Uops->predictIpc(K);
  ASSERT_TRUE(P.has_value());
  EXPECT_GT(*P, 1.5 * O.measureIpc(K));
}

TEST(GroundTruthPredictors, UopsStyleIgnoresFrontEnd) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Uops = makeUopsInfoPredictor(M);
  // A wide-ALU instruction: native IPC capped at 4 by decode, but the
  // ports alone would allow 4 ALU ports -> uops-style predicts 4 too...
  // use a mixed ALU+load+branch kernel that exceeds the width instead.
  Microkernel K;
  K.add(M.isa().findByName("ADD_0"), 4.0);
  K.add(M.isa().findByName("LOAD_0"), 2.0);
  K.add(M.isa().findByName("JMP_0"), 1.0);
  double Native = O.measureIpc(K);
  auto P = Uops->predictIpc(K);
  ASSERT_TRUE(P.has_value());
  EXPECT_GT(*P, Native * 1.2); // Over-estimates when decode binds.
}

TEST(GroundTruthPredictors, IacaLikeIsExactWithoutMixing) {
  // IACA-like has ports + front-end + occupancy: on non-mixed kernels it
  // must match the oracle exactly (the oracle's only extra is the SSE/AVX
  // penalty).
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  Rng R(3);
  for (int Trial = 0; Trial < 30; ++Trial) {
    Microkernel K;
    for (size_t T = 0; T < 1 + R.uniformInt(4); ++T)
      K.add(static_cast<InstrId>(R.uniformInt(M.numInstructions())),
            static_cast<double>(1 + R.uniformInt(3)));
    if (M.kernelMixesExtensions(K))
      continue;
    auto P = Iaca->predictIpc(K);
    ASSERT_TRUE(P.has_value());
    EXPECT_NEAR(*P, O.measureIpc(K), 1e-6 * O.measureIpc(K));
  }
}

TEST(GroundTruthPredictors, IacaLikeMissesMixPenalty) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  Microkernel K;
  K.add(M.isa().findByName("ADDSS_0"), 1.0);
  K.add(M.isa().findByName("VADDPS_0"), 1.0);
  ASSERT_TRUE(M.kernelMixesExtensions(K));
  auto P = Iaca->predictIpc(K);
  ASSERT_TRUE(P.has_value());
  EXPECT_GT(*P, O.measureIpc(K) * 1.1); // The penalty is invisible to it.
}

TEST(GroundTruthPredictors, LlvmMcaDeclinesOtherCategory) {
  MachineModel M = makeSklLike();
  auto Mca = makeLlvmMcaLikePredictor(M);
  InstrId Cvt = M.isa().findByName("CVT_0");
  ASSERT_NE(Cvt, InvalidInstr);
  EXPECT_FALSE(Mca->predictIpc(Microkernel::single(Cvt)).has_value());
  InstrId Add = M.isa().findByName("ADD_0");
  EXPECT_TRUE(Mca->predictIpc(Microkernel::single(Add)).has_value());
}

// ----------------------------------------------------------------- PMEvo

namespace {

PMEvoConfig quickPmevoConfig() {
  PMEvoConfig Cfg;
  Cfg.PopulationSize = 32;
  Cfg.Generations = 60;
  Cfg.Seed = 5;
  return Cfg;
}

} // namespace

TEST(PMEvo, LearnsTinyMachine) {
  // Two disjoint single-port instructions and one flexible one: PMEvo must
  // reproduce solo and pairwise throughputs.
  MachineBuilder B("tiny");
  B.addPort("p0");
  B.addPort("p1");
  InstrId A = B.addSimpleInstruction(
      {"A", ExtClass::Base, InstrCategory::IntAlu}, portMask({0}));
  InstrId C = B.addSimpleInstruction(
      {"C", ExtClass::Base, InstrCategory::IntMul}, portMask({1}));
  InstrId F = B.addSimpleInstruction(
      {"F", ExtClass::Base, InstrCategory::Shift}, portMask({0, 1}));
  MachineModel M = B.build();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);

  PMEvoConfig Cfg = quickPmevoConfig();
  Cfg.NumPorts = 2;
  Cfg.MaxTrainInstructions = 0; // Train on everything.
  auto P = PMEvoPredictor::train(Runner, M.isa().allIds(), Cfg);

  EXPECT_LT(P->trainingError(), 0.05);
  auto Check = [&](Microkernel K) {
    auto Pred = P->predictIpc(K);
    ASSERT_TRUE(Pred.has_value());
    EXPECT_NEAR(*Pred, O.measureIpc(K), 0.1 * O.measureIpc(K))
        << K.str(M.isa());
  };
  Check(Microkernel::single(A, 1.0));
  Check(Microkernel::single(F, 2.0));
  Microkernel Pair;
  Pair.add(A, 1.0);
  Pair.add(F, 2.0);
  Check(Pair);
  Microkernel Trio;
  Trio.add(A, 1.0);
  Trio.add(C, 1.0);
  Trio.add(F, 1.0);
  Check(Trio);
}

TEST(PMEvo, DeterministicGivenSeed) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner R1(M, O), R2(M, O);
  PMEvoConfig Cfg = quickPmevoConfig();
  Cfg.NumPorts = 3;
  Cfg.Generations = 20;
  Cfg.MaxTrainInstructions = 0;
  auto A = PMEvoPredictor::train(R1, M.isa().allIds(), Cfg);
  auto B = PMEvoPredictor::train(R2, M.isa().allIds(), Cfg);
  EXPECT_DOUBLE_EQ(A->trainingError(), B->trainingError());
  Microkernel K;
  K.add(0, 1.0);
  K.add(3, 2.0);
  EXPECT_EQ(A->predictIpc(K).has_value(), B->predictIpc(K).has_value());
  if (A->predictIpc(K) && B->predictIpc(K)) {
    EXPECT_DOUBLE_EQ(*A->predictIpc(K), *B->predictIpc(K));
  }
}

TEST(PMEvo, PartialCoverageSemantics) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PMEvoConfig Cfg = quickPmevoConfig();
  Cfg.Generations = 10; // Coverage semantics only; accuracy irrelevant.
  Cfg.MaxTrainInstructions = 20;
  auto P = PMEvoPredictor::train(Runner, M.isa().allIds(), Cfg);

  auto Supported = P->supportedInstructions();
  ASSERT_EQ(Supported.size(), 20u);

  // A kernel made only of unsupported instructions is declined.
  std::set<InstrId> InPool(Supported.begin(), Supported.end());
  InstrId Out = InvalidInstr;
  for (InstrId Id = 0; Id < M.numInstructions(); ++Id)
    if (!InPool.count(Id)) {
      Out = Id;
      break;
    }
  ASSERT_NE(Out, InvalidInstr);
  EXPECT_FALSE(P->predictIpc(Microkernel::single(Out)).has_value());

  // A mixed supported/unsupported kernel is processed (degraded mode).
  Microkernel Mixed;
  Mixed.add(Supported[0], 1.0);
  Mixed.add(Out, 1.0);
  EXPECT_TRUE(P->predictIpc(Mixed).has_value());
}
