//===- tests/api_test.cpp - Public facade tests ---------------------------===//
//
// Part of the PALMED reproduction.
//
// Tests of the include/palmed/ facade: the staged Pipeline (equivalence
// with the one-shot wrapper, observer callbacks, stage ordering,
// cancellation), the PredictorRegistry, and the EvalSession execution
// policies (Serial vs Parallel determinism, clone/mutex fallbacks, and
// equivalence with the deprecated runEvaluation).
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

// The wrapper-equivalence tests below call the deprecated entry points on
// purpose.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
#include "core/PalmedDriver.h"
#include "eval/Harness.h"

using namespace palmed;

namespace {

/// Observer recording every callback it receives.
struct RecordingObserver : PipelineObserver {
  std::vector<std::string> Events;
  int ShapeIterations = 0;
  size_t InstructionsMapped = 0;
  size_t LastNumDone = 0;
  size_t LastNumTotal = 0;

  void onStageBegin(PipelineStage Stage) override {
    Events.push_back(std::string("begin:") + pipelineStageName(Stage));
  }
  void onStageEnd(PipelineStage Stage, const PalmedStats &Stats) override {
    (void)Stats;
    Events.push_back(std::string("end:") + pipelineStageName(Stage));
  }
  void onShapeIteration(int, size_t, size_t, size_t) override {
    ++ShapeIterations;
  }
  void onInstructionMapped(InstrId, size_t NumDone,
                           size_t NumTotal) override {
    ++InstructionsMapped;
    LastNumDone = NumDone;
    LastNumTotal = NumTotal;
  }
};

/// Exact equality of two mappings over the same ISA, via the canonical
/// text serialization.
void expectSameMapping(const ResourceMapping &A, const ResourceMapping &B,
                       const InstructionSet &Isa) {
  EXPECT_EQ(A.toText(Isa), B.toText(Isa));
}

} // namespace

//===----------------------------------------------------------------------===//
// Pipeline.
//===----------------------------------------------------------------------===//

TEST(ApiPipeline, StagedRunEqualsOneShotWrapper) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);

  BenchmarkRunner R1(M, O);
  PalmedResult OneShot = runPalmed(R1); // Deprecated wrapper.

  BenchmarkRunner R2(M, O);
  Pipeline P(R2);
  const SelectionResult &Sel = P.selectBasics();
  EXPECT_EQ(Sel.Basic.size(), OneShot.Selection.Basic.size());
  const CoreMappingResult &Core = P.solveCoreMapping();
  EXPECT_GT(Core.NumCoreKernels, 0u);
  EXPECT_GT(Core.Shape.numResources(), 0u);
  const PalmedResult &Staged = P.completeMapping();

  EXPECT_TRUE(P.finished());
  expectSameMapping(Staged.Mapping, OneShot.Mapping, M.isa());
  EXPECT_EQ(Staged.Stats.NumBenchmarks, OneShot.Stats.NumBenchmarks);
  EXPECT_EQ(Staged.Stats.NumResources, OneShot.Stats.NumResources);
  EXPECT_EQ(Staged.Stats.NumBasic, OneShot.Stats.NumBasic);
  EXPECT_EQ(Staged.Stats.NumMapped, OneShot.Stats.NumMapped);
  EXPECT_EQ(Staged.Stats.NumCoreKernels, OneShot.Stats.NumCoreKernels);
  EXPECT_EQ(Staged.Shape.Resources, OneShot.Shape.Resources);
  EXPECT_DOUBLE_EQ(Staged.Stats.CoreSlack, OneShot.Stats.CoreSlack);
}

TEST(ApiPipeline, RunResumesAfterInspectedStages) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner R1(M, O);
  PalmedResult OneShot = runPalmed(R1);

  BenchmarkRunner R2(M, O);
  Pipeline P(R2);
  P.selectBasics(); // Inspect stage 1, then let run() finish the rest.
  const PalmedResult &Resumed = P.run();
  expectSameMapping(Resumed.Mapping, OneShot.Mapping, M.isa());

  // takeResult() hands the result out by move.
  PalmedResult Taken = P.takeResult();
  expectSameMapping(Taken.Mapping, OneShot.Mapping, M.isa());
}

TEST(ApiPipeline, ObserverSeesAllStagesInOrder) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Pipeline P(Runner);
  RecordingObserver Obs;
  P.setObserver(&Obs);
  P.run();

  ASSERT_EQ(Obs.Events.size(), 6u);
  EXPECT_EQ(Obs.Events[0], "begin:select-basics");
  EXPECT_EQ(Obs.Events[1], "end:select-basics");
  EXPECT_EQ(Obs.Events[2], "begin:solve-core-mapping");
  EXPECT_EQ(Obs.Events[3], "end:solve-core-mapping");
  EXPECT_EQ(Obs.Events[4], "begin:complete-mapping");
  EXPECT_EQ(Obs.Events[5], "end:complete-mapping");
  EXPECT_GE(Obs.ShapeIterations, 1);
  // LPAUX maps every non-basic survivor (on fig1 every survivor is
  // basic, so the callback count is simply zero).
  const PalmedResult &R = P.result();
  EXPECT_EQ(Obs.InstructionsMapped,
            R.Selection.Survivors.size() - R.Selection.Basic.size());
  if (Obs.InstructionsMapped > 0) {
    EXPECT_EQ(Obs.LastNumTotal, R.Selection.Survivors.size());
  }
}

TEST(ApiPipeline, ObserverSeesLpauxProgressOnLargerMachine) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Pipeline P(Runner);
  RecordingObserver Obs;
  P.setObserver(&Obs);
  const PalmedResult &R = P.run();
  EXPECT_EQ(Obs.InstructionsMapped,
            R.Selection.Survivors.size() - R.Selection.Basic.size());
  EXPECT_GT(Obs.InstructionsMapped, 0u);
  // Basics are excluded from the denominator, so progress runs 1..NumTotal
  // without jumps and ends exactly at NumTotal.
  EXPECT_EQ(Obs.LastNumTotal,
            R.Selection.Survivors.size() - R.Selection.Basic.size());
  EXPECT_EQ(Obs.LastNumDone, Obs.LastNumTotal);
}

TEST(ApiPipeline, StageOrderIsEnforced) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Pipeline P(Runner);

  EXPECT_EQ(P.nextStage(), PipelineStage::SelectBasics);
  EXPECT_THROW(P.solveCoreMapping(), std::logic_error);
  EXPECT_THROW(P.completeMapping(), std::logic_error);
  EXPECT_THROW(P.result(), std::logic_error);

  P.selectBasics();
  EXPECT_EQ(P.nextStage(), PipelineStage::SolveCoreMapping);
  EXPECT_THROW(P.selectBasics(), std::logic_error); // Stages run once.
  EXPECT_THROW(P.completeMapping(), std::logic_error);

  P.solveCoreMapping();
  P.completeMapping();
  EXPECT_TRUE(P.finished());
  EXPECT_THROW(P.nextStage(), std::logic_error);
  EXPECT_THROW(P.completeMapping(), std::logic_error);
}

TEST(ApiPipeline, CancellationTokenStopsBeforeWork) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Pipeline P(Runner);
  CancellationToken Token;
  P.setCancellationToken(&Token);
  Token.requestCancel();
  EXPECT_THROW(P.run(), CancelledError);
  // Nothing ran; the pipeline is still at stage 1 and can be resumed
  // after clearing the token.
  EXPECT_EQ(P.nextStage(), PipelineStage::SelectBasics);
  P.setCancellationToken(nullptr);
  EXPECT_NO_THROW(P.run());
}

TEST(ApiPipeline, CancellationFromObserverCallback) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Pipeline P(Runner);
  CancellationToken Token;
  P.setCancellationToken(&Token);

  // Cancel as soon as the core-mapping refinement reports progress.
  struct Canceller : PipelineObserver {
    CancellationToken *Token;
    void onShapeIteration(int, size_t, size_t, size_t) override {
      Token->requestCancel();
    }
  } Obs;
  Obs.Token = &Token;
  P.setObserver(&Obs);

  P.selectBasics();
  EXPECT_THROW(P.solveCoreMapping(), CancelledError);
  // Stage 1's result is still inspectable.
  EXPECT_FALSE(P.finished());
  EXPECT_EQ(P.nextStage(), PipelineStage::SolveCoreMapping);
  EXPECT_GT(P.stats().NumBasic, 0u);
}

//===----------------------------------------------------------------------===//
// Parallel mapping pipeline.
//===----------------------------------------------------------------------===//

namespace {

PalmedResult mapWith(const MachineModel &M, ExecutionPolicy Policy,
                     PipelineObserver *Obs = nullptr) {
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedConfig Cfg;
  Cfg.Execution = Policy;
  Pipeline P(Runner, Cfg);
  if (Obs)
    P.setObserver(Obs);
  P.run();
  return P.takeResult();
}

/// Full-outcome equality: mapping, shape, saturating kernels, selection,
/// and every stats field that is not a timing or the thread counter.
void expectBitIdenticalOutcome(const PalmedResult &A, const PalmedResult &B,
                               const InstructionSet &Isa) {
  EXPECT_EQ(A.Mapping.toText(Isa), B.Mapping.toText(Isa));
  EXPECT_EQ(A.Shape.Resources, B.Shape.Resources);
  EXPECT_EQ(A.SaturatingKernels, B.SaturatingKernels);
  EXPECT_EQ(A.Selection.Survivors, B.Selection.Survivors);
  EXPECT_EQ(A.Selection.Basic, B.Selection.Basic);
  EXPECT_EQ(A.Selection.SoloIpc, B.Selection.SoloIpc);   // Bit-identical.
  EXPECT_EQ(A.Selection.PairIpc, B.Selection.PairIpc);   // Bit-identical.
  EXPECT_EQ(A.Stats.NumBenchmarks, B.Stats.NumBenchmarks);
  EXPECT_EQ(A.Stats.NumResources, B.Stats.NumResources);
  EXPECT_EQ(A.Stats.NumBasic, B.Stats.NumBasic);
  EXPECT_EQ(A.Stats.NumMapped, B.Stats.NumMapped);
  EXPECT_EQ(A.Stats.NumCoreKernels, B.Stats.NumCoreKernels);
  EXPECT_EQ(A.Stats.NumShapeConstraints, B.Stats.NumShapeConstraints);
  EXPECT_DOUBLE_EQ(A.Stats.CoreSlack, B.Stats.CoreSlack);
  EXPECT_EQ(A.Stats.CoreLpSolves, B.Stats.CoreLpSolves);
  EXPECT_EQ(A.Stats.CoreLpPivots, B.Stats.CoreLpPivots);
  EXPECT_EQ(A.Stats.CompleteLpSolves, B.Stats.CompleteLpSolves);
  EXPECT_EQ(A.Stats.CompleteLpPivots, B.Stats.CompleteLpPivots);
  EXPECT_EQ(A.Stats.LpWarmStartAttempts, B.Stats.LpWarmStartAttempts);
  EXPECT_EQ(A.Stats.LpWarmStartHits, B.Stats.LpWarmStartHits);
}

void expectPoliciesEquivalent(const MachineModel &M) {
  PalmedResult Serial = mapWith(M, ExecutionPolicy::serial());
  PalmedResult Par4 = mapWith(M, ExecutionPolicy::parallel(4));
  PalmedResult Par11 = mapWith(M, ExecutionPolicy::parallel(11));
  EXPECT_EQ(Serial.Stats.NumThreads, 1u);
  EXPECT_EQ(Par4.Stats.NumThreads, 4u);
  EXPECT_EQ(Par11.Stats.NumThreads, 11u);
  expectBitIdenticalOutcome(Serial, Par4, M.isa());
  expectBitIdenticalOutcome(Serial, Par11, M.isa());
}

/// A small-but-nontrivial stress profile so the three full pipeline runs
/// stay fast in the test suite.
StressIsaConfig testStressConfig() {
  StressIsaConfig C;
  C.NumPorts = 8;
  C.NumCategories = 12;
  C.VariantsPerCategory = 4;
  C.MemVariantsPerCategory = 1;
  C.NumExtensions = 3;
  return C;
}

} // namespace

TEST(ApiParallelPipeline, SklMappingBitIdenticalAcrossPolicies) {
  expectPoliciesEquivalent(makeSklLike());
}

TEST(ApiParallelPipeline, ZenMappingBitIdenticalAcrossPolicies) {
  expectPoliciesEquivalent(makeZenLike());
}

TEST(ApiParallelPipeline, StressIsaMappingBitIdenticalAcrossPolicies) {
  expectPoliciesEquivalent(makeStressMachine(testStressConfig()));
}

TEST(ApiParallelPipeline, ObserverProgressIsMonotoneUnderParallelism) {
  MachineModel M = makeSklLike();

  // Callbacks are serialized by the pipeline (see Observer.h), so the
  // recording below needs no locking of its own.
  struct ProgressObserver : PipelineObserver {
    std::vector<size_t> DoneSeq;
    std::vector<InstrId> Ids;
    size_t NumTotal = 0;
    void onInstructionMapped(InstrId Id, size_t NumDone,
                             size_t NumTotal_) override {
      DoneSeq.push_back(NumDone);
      Ids.push_back(Id);
      NumTotal = NumTotal_;
    }
  } Obs;

  PalmedResult R = mapWith(M, ExecutionPolicy::parallel(4), &Obs);
  const size_t Expected =
      R.Selection.Survivors.size() - R.Selection.Basic.size();
  ASSERT_EQ(Obs.DoneSeq.size(), Expected);
  EXPECT_EQ(Obs.NumTotal, Expected);
  // NumDone takes each value 1..NumTotal exactly once, in order.
  for (size_t I = 0; I < Obs.DoneSeq.size(); ++I)
    EXPECT_EQ(Obs.DoneSeq[I], I + 1);
  // Every instruction is reported exactly once.
  std::vector<InstrId> Sorted = Obs.Ids;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_TRUE(std::adjacent_find(Sorted.begin(), Sorted.end()) ==
              Sorted.end());
}

TEST(ApiParallelPipeline, CancellationUnderParallelismIsResumable) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedConfig Cfg;
  Cfg.Execution = ExecutionPolicy::parallel(4);
  Pipeline P(Runner, Cfg);
  CancellationToken Token;
  P.setCancellationToken(&Token);

  // Cancel after a few LPAUX instructions completed; the workers poll the
  // token per item, so the stage aborts with CancelledError.
  struct Canceller : PipelineObserver {
    CancellationToken *Token;
    void onInstructionMapped(InstrId, size_t NumDone, size_t) override {
      if (NumDone == 3)
        Token->requestCancel();
    }
  } Obs;
  Obs.Token = &Token;
  P.setObserver(&Obs);

  P.selectBasics();
  P.solveCoreMapping();
  EXPECT_THROW(P.completeMapping(), CancelledError);
  EXPECT_FALSE(P.finished());
  EXPECT_EQ(P.nextStage(), PipelineStage::CompleteMapping);

  // Clearing the token makes the stage re-runnable, and the result is
  // still bit-identical to an uncancelled serial run.
  P.setCancellationToken(nullptr);
  P.setObserver(nullptr);
  const PalmedResult &Resumed = P.completeMapping();
  PalmedResult Serial = mapWith(M, ExecutionPolicy::serial());
  expectSameMapping(Resumed.Mapping, Serial.Mapping, M.isa());
}

TEST(ApiParallelPipeline, AutoThreadPolicyResolvesAndIsRecorded) {
  // parallel(0) = "auto" resolves to a concrete width in [1, 64] at
  // policy-construction time, and the pipeline records the resolved width.
  ExecutionPolicy Auto = ExecutionPolicy::parallel(0);
  EXPECT_GE(Auto.NumThreads, 1u);
  EXPECT_LE(Auto.NumThreads, 64u);

  MachineModel M = makeFig1Machine();
  PalmedResult R = mapWith(M, Auto);
  EXPECT_EQ(R.Stats.NumThreads, Auto.NumThreads);
}

//===----------------------------------------------------------------------===//
// PredictorRegistry.
//===----------------------------------------------------------------------===//

TEST(ApiRegistry, BuiltinToolsRegistered) {
  const PredictorRegistry &R = PredictorRegistry::builtin();
  for (const char *Tool :
       {"palmed", "uops.info", "iaca", "pmevo", "llvm-mca"}) {
    EXPECT_TRUE(R.contains(Tool)) << Tool;
    EXPECT_FALSE(R.description(Tool).empty()) << Tool;
  }
  EXPECT_EQ(R.names().size(), 5u);
}

TEST(ApiRegistry, CreateBuildsSelfNamedPredictors) {
  MachineModel M = makeSklLike();
  PredictorContext Ctx;
  Ctx.Machine = &M;
  for (const char *Tool : {"uops.info", "iaca", "llvm-mca"}) {
    std::string Error;
    auto P = PredictorRegistry::builtin().create(Tool, Ctx, &Error);
    ASSERT_NE(P, nullptr) << Error;
    EXPECT_EQ(P->name(), Tool);
  }
}

TEST(ApiRegistry, CreateReportsMissingContext) {
  std::string Error;
  // "palmed" needs an inferred mapping.
  auto P = PredictorRegistry::builtin().create("palmed", PredictorContext(),
                                               &Error);
  EXPECT_EQ(P, nullptr);
  EXPECT_NE(Error.find("PalmedMapping"), std::string::npos) << Error;
  // "pmevo" needs a runner.
  MachineModel M = makeFig1Machine();
  PredictorContext Ctx;
  Ctx.Machine = &M;
  Error.clear();
  P = PredictorRegistry::builtin().create("pmevo", Ctx, &Error);
  EXPECT_EQ(P, nullptr);
  EXPECT_NE(Error.find("Runner"), std::string::npos) << Error;
}

TEST(ApiRegistry, CreateRejectsUnknownNames) {
  std::string Error;
  auto P = PredictorRegistry::builtin().create("osaca", PredictorContext(),
                                               &Error);
  EXPECT_EQ(P, nullptr);
  EXPECT_NE(Error.find("unknown predictor"), std::string::npos);
  EXPECT_NE(Error.find("palmed"), std::string::npos); // Lists known names.
}

TEST(ApiRegistry, UserRegistriesExtendTheBuiltin) {
  PredictorRegistry R = PredictorRegistry::builtin(); // Copy, then extend.
  R.add("const-one", "predicts IPC 1 for everything",
        [](const PredictorContext &, std::string &) {
          ResourceMapping M(0);
          return std::make_unique<MappingPredictor>("const-one",
                                                    std::move(M));
        });
  EXPECT_TRUE(R.contains("const-one"));
  EXPECT_EQ(R.names().size(), 6u);
  EXPECT_FALSE(PredictorRegistry::builtin().contains("const-one"));
}

//===----------------------------------------------------------------------===//
// EvalSession.
//===----------------------------------------------------------------------===//

namespace {

/// Deliberately non-thread-safe wrapper around a MappingPredictor,
/// optionally cloneable, for exercising the EvalSession fallbacks.
class GrumpyPredictor : public Predictor {
public:
  GrumpyPredictor(std::string Name, const MachineModel &Machine,
                  bool Cloneable)
      : Inner("inner", buildDualMapping(Machine)), Name(std::move(Name)),
        Machine(Machine), Cloneable(Cloneable) {}

  std::optional<double> predictIpc(const Microkernel &K) override {
    ++Calls; // Unsynchronized on purpose: relies on clone/mutex fallback.
    return Inner.predictIpc(K);
  }
  std::string name() const override { return Name; }
  bool isThreadSafe() const override { return false; }
  std::unique_ptr<Predictor> clone() const override {
    if (!Cloneable)
      return nullptr;
    return std::make_unique<GrumpyPredictor>(Name, Machine, Cloneable);
  }

private:
  MappingPredictor Inner;
  std::string Name;
  const MachineModel &Machine;
  bool Cloneable;
  size_t Calls = 0;
};

void expectSameOutcome(const EvalOutcome &A, const EvalOutcome &B) {
  EXPECT_EQ(A.ReferenceTool, B.ReferenceTool);
  EXPECT_EQ(A.NativeIpc, B.NativeIpc);   // Bit-identical.
  EXPECT_EQ(A.Predictions, B.Predictions); // Bit-identical.
}

} // namespace

TEST(ApiEvalSession, SerialAndParallelOutcomesAreIdentical) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  PredictorContext Ctx;
  Ctx.Machine = &M;

  WorkloadConfig WCfg;
  WCfg.NumBlocks = 200;
  auto Blocks = generateWorkload(M, WCfg);

  auto MakeSession = [&](ExecutionPolicy Policy,
                         std::vector<std::unique_ptr<Predictor>> &Owned) {
    EvalSession S(O, Policy);
    S.setReferenceTool("iaca");
    for (const char *Tool : {"uops.info", "iaca", "llvm-mca"}) {
      auto P = PredictorRegistry::builtin().create(Tool, Ctx);
      EXPECT_NE(P, nullptr);
      S.add(*P);                     // Borrowed...
      Owned.push_back(std::move(P)); // ...and kept alive by the caller.
    }
    // Add the non-reentrant predictors through both fallback paths.
    auto G1 = std::make_unique<GrumpyPredictor>("grumpy-clone", M, true);
    auto G2 = std::make_unique<GrumpyPredictor>("grumpy-mutex", M, false);
    S.add(std::move(G1));
    S.add(std::move(G2));
    return S;
  };

  std::vector<std::unique_ptr<Predictor>> OwnedA, OwnedB, OwnedC;
  EvalOutcome Serial = MakeSession(ExecutionPolicy::serial(), OwnedA)
                           .run(Blocks);
  EvalOutcome Par4 = MakeSession(ExecutionPolicy::parallel(4), OwnedB)
                         .run(Blocks);
  EvalOutcome Par11 = MakeSession(ExecutionPolicy::parallel(11), OwnedC)
                          .run(Blocks);

  EXPECT_EQ(Serial.Predictions.size(), 5u);
  expectSameOutcome(Serial, Par4);
  expectSameOutcome(Serial, Par11);

  // Sanity: the parallel run really carries predictions.
  ToolAccuracy A = Par4.accuracy("iaca");
  EXPECT_DOUBLE_EQ(A.CoveragePct, 100.0);
}

TEST(ApiEvalSession, MatchesDeprecatedRunEvaluation) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  auto Mca = makeLlvmMcaLikePredictor(M);
  WorkloadConfig WCfg;
  WCfg.NumBlocks = 120;
  auto Blocks = generateWorkload(M, WCfg);

  EvalOutcome Old = runEvaluation(O, Blocks, {Iaca.get(), Mca.get()},
                                  "iaca"); // Deprecated wrapper.

  EvalSession S(O, ExecutionPolicy::parallel(3));
  S.setReferenceTool("iaca");
  S.add(*Iaca);
  S.add(*Mca);
  expectSameOutcome(Old, S.run(Blocks));
}

TEST(ApiEvalSession, RejectsDuplicateAndNullPredictors) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  EvalSession S(O);
  S.add(*Iaca);
  auto Iaca2 = makeIacaLikePredictor(M);
  EXPECT_THROW(S.add(*Iaca2), std::invalid_argument);
  EXPECT_THROW(S.add(std::unique_ptr<Predictor>()), std::invalid_argument);
  EXPECT_EQ(S.numPredictors(), 1u);
}

TEST(ApiEvalSession, EmptyBlockSetAndZeroAutoThreads) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  EvalSession S(O, ExecutionPolicy::parallel(0)); // Auto thread count.
  EXPECT_GE(S.policy().NumThreads, 1u);
  S.add(*Iaca);
  EvalOutcome Out = S.run({});
  EXPECT_TRUE(Out.NativeIpc.empty());
  EXPECT_EQ(Out.Predictions.at("iaca").size(), 0u);
}

TEST(ApiEvalSession, PredictorClonesPredictIdentically) {
  MachineModel M = makeSklLike();
  auto Uops = makeUopsInfoPredictor(M);
  ASSERT_TRUE(Uops->isThreadSafe());
  auto Clone = Uops->clone();
  ASSERT_NE(Clone, nullptr);
  EXPECT_EQ(Clone->name(), Uops->name());
  WorkloadConfig WCfg;
  WCfg.NumBlocks = 40;
  for (const BasicBlock &B : generateWorkload(M, WCfg))
    EXPECT_EQ(Uops->predictIpc(B.K), Clone->predictIpc(B.K));
}

//===----------------------------------------------------------------------===//
// Version.
//===----------------------------------------------------------------------===//

TEST(ApiVersion, StringMatchesMacros) {
  EXPECT_STREQ(versionString(), PALMED_VERSION_STRING);
  std::string Expected = std::to_string(PALMED_VERSION_MAJOR) + "." +
                         std::to_string(PALMED_VERSION_MINOR) + "." +
                         std::to_string(PALMED_VERSION_PATCH);
  EXPECT_EQ(Expected, PALMED_VERSION_STRING);
}
