//===- tests/bwp_test.cpp - LP2/LPAUX weight problem tests ----------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/BwpSolver.h"

#include <gtest/gtest.h>

using namespace palmed;

namespace {

/// Two instructions (ids 10, 20) on two resources.
///   R0: {both}   R1: {instr 1 only}
/// Ground truth: rho(0,R0) = 0.5, rho(1,R0) = 0.5, rho(1,R1) = 1.
/// This is ADDSS/BSR on r01/r1 from the paper's running example.
struct PairFixture {
  MappingShape Shape;
  std::map<InstrId, size_t> IndexOf = {{10, 0}, {20, 1}};

  PairFixture() {
    Shape.Resources = {BitSet::fromWord(0b11), BitSet::fromWord(0b10)};
  }

  static Microkernel kernel(double A, double B) {
    Microkernel K;
    if (A > 0)
      K.add(10, A);
    if (B > 0)
      K.add(20, B);
    return K;
  }
};

} // namespace

TEST(CoreWeights, RecoversPaperExampleWeights) {
  PairFixture F;
  // Measurements from the true machine (ADDSS solo IPC 2, BSR solo 1):
  //   a^2        -> t = 1     (r01 load 1)
  //   b^1        -> t = 1     (r1 load 1)
  //   a^2 b^1    -> t = 1.5   (r01 load 1.5)
  //   a^8 b^1    -> t = 4.5
  //   a^2 b^4    -> t = 4
  std::vector<WeightKernel> Kernels = {
      {PairFixture::kernel(2, 0), 2.0, -1},
      {PairFixture::kernel(0, 1), 1.0, -1},
      {PairFixture::kernel(2, 1), 3.0 / 1.5, -1},
      {PairFixture::kernel(8, 1), 9.0 / 4.5, -1},
      {PairFixture::kernel(2, 4), 6.0 / 4.0, -1},
  };
  CoreWeights W =
      solveCoreWeights(F.Shape, F.IndexOf, Kernels, BwpMode::Pinned);
  EXPECT_NEAR(W.Rho[0][0], 0.5, 0.02); // ADDSS on r01.
  EXPECT_NEAR(W.Rho[1][0], 0.5, 0.02); // BSR on r01.
  EXPECT_NEAR(W.Rho[1][1], 1.0, 0.02); // BSR on r1.
  EXPECT_LT(W.TotalSlack, 0.05 * Kernels.size());
}

TEST(CoreWeights, ExactMilpMatchesPinnedOnCleanData) {
  PairFixture F;
  std::vector<WeightKernel> Kernels = {
      {PairFixture::kernel(2, 0), 2.0, -1},
      {PairFixture::kernel(0, 1), 1.0, -1},
      {PairFixture::kernel(2, 1), 3.0 / 1.5, -1},
      {PairFixture::kernel(8, 1), 9.0 / 4.5, -1},
  };
  CoreWeights P =
      solveCoreWeights(F.Shape, F.IndexOf, Kernels, BwpMode::Pinned);
  CoreWeights E =
      solveCoreWeights(F.Shape, F.IndexOf, Kernels, BwpMode::ExactMilp);
  for (size_t I = 0; I < 2; ++I)
    for (size_t R = 0; R < 2; ++R)
      EXPECT_NEAR(P.Rho[I][R], E.Rho[I][R], 0.05)
          << "instr " << I << " resource " << R;
  EXPECT_LE(E.TotalSlack, P.TotalSlack + 1e-6);
}

TEST(CoreWeights, LoadNeverExceedsMeasuredTime) {
  PairFixture F;
  std::vector<WeightKernel> Kernels = {
      {PairFixture::kernel(2, 0), 2.0, -1},
      {PairFixture::kernel(0, 1), 1.0, -1},
      {PairFixture::kernel(2, 1), 2.0, -1},
  };
  CoreWeights W =
      solveCoreWeights(F.Shape, F.IndexOf, Kernels, BwpMode::Pinned);
  for (const WeightKernel &K : Kernels) {
    for (size_t R = 0; R < F.Shape.numResources(); ++R) {
      double Load = 0.0;
      for (const auto &[Id, Mult] : K.K.terms())
        Load += Mult * W.Rho[F.IndexOf[Id]][R];
      EXPECT_LE(Load, K.measuredCycles() + 1e-6);
    }
  }
}

TEST(CoreWeights, RespectsShapeZeros) {
  PairFixture F;
  std::vector<WeightKernel> Kernels = {
      {PairFixture::kernel(2, 0), 2.0, -1},
      {PairFixture::kernel(0, 1), 1.0, -1},
  };
  CoreWeights W =
      solveCoreWeights(F.Shape, F.IndexOf, Kernels, BwpMode::Pinned);
  // Instruction 0 has no edge to R1 in the shape.
  EXPECT_DOUBLE_EQ(W.Rho[0][1], 0.0);
}

TEST(AuxWeights, MapsNewInstructionOntoSharedResource) {
  PairFixture F;
  // Frozen core: the ground truth weights.
  std::vector<std::vector<double>> Frozen = {{0.5, 0.0}, {0.5, 1.0}};

  // New instruction 30 behaves exactly like instruction 10 (ADDSS-like,
  // rho = 0.5 on R0): measured via saturation benchmarks.
  // Sat kernel for R0: a^2 (saturates r01). Ksat = a^8 c^2:
  //   loads: R0 = 4 + 2*0.5 = 5 -> t = 5.
  InstrId NewInstr = 30;
  std::vector<WeightKernel> Kernels;
  {
    Microkernel Solo = Microkernel::single(NewInstr, 2.0);
    Kernels.push_back({Solo, 2.0, -1}); // t = 1.
    Microkernel KsatR0 = PairFixture::kernel(8, 0);
    KsatR0.add(NewInstr, 2.0);
    Kernels.push_back({KsatR0, 10.0 / 5.0, 0}); // t = 5, pinned to R0.
    Microkernel KsatR1 = PairFixture::kernel(0, 4);
    KsatR1.add(NewInstr, 2.0);
    // b^4 c^2: R1 load 4, R0 load 2 + 1 = 3... t = 4 (R1 bottleneck).
    Kernels.push_back({KsatR1, 6.0 / 4.0, 1});
  }
  AuxWeights Aux = solveAuxWeights(F.Shape, F.IndexOf, Frozen, NewInstr,
                                   Kernels, BwpMode::Pinned);
  ASSERT_TRUE(Aux.Feasible);
  EXPECT_NEAR(Aux.Rho[0], 0.5, 0.03); // Uses R0 like ADDSS.
  EXPECT_NEAR(Aux.Rho[1], 0.0, 0.03); // No R1 usage.
}

TEST(AuxWeights, LowIpcInstructionGetsLargeRho) {
  // A divider-like instruction with solo IPC 1/4 on a single resource:
  // rho must come out ~4 (above the [0,1] range of core edges).
  MappingShape Shape;
  Shape.Resources = {BitSet::fromWord(0b1)};
  std::map<InstrId, size_t> IndexOf = {{10, 0}};
  std::vector<std::vector<double>> Frozen = {{1.0}};

  InstrId Div = 99;
  std::vector<WeightKernel> Kernels;
  Microkernel Solo = Microkernel::single(Div, 0.25);
  Kernels.push_back({Solo, 0.25, -1}); // t = 1 for 0.25 instances.
  // Ksat with sat[R0] = a^1 (solo IPC 1): a^4 d^(1/4): t = 4 + 1 = 5.
  Microkernel Ksat = Microkernel::single(10, 4.0);
  Ksat.add(Div, 0.25);
  Kernels.push_back({Ksat, 4.25 / 5.0, 0});

  AuxWeights Aux =
      solveAuxWeights(Shape, IndexOf, Frozen, Div, Kernels, BwpMode::Pinned);
  ASSERT_TRUE(Aux.Feasible);
  EXPECT_NEAR(Aux.Rho[0], 4.0, 0.1);
}

TEST(AuxWeights, UnrelatedInstructionGetsNoEdges) {
  // New instruction saturates nothing the core covers: solo t implies some
  // usage, but the saturation benchmarks show no interference, so the
  // mapped row must stay small on the core resources.
  PairFixture F;
  std::vector<std::vector<double>> Frozen = {{0.5, 0.0}, {0.5, 1.0}};
  InstrId NewInstr = 40;
  std::vector<WeightKernel> Kernels;
  // Ksat on R0: interference-free: t equals the sat part alone (4).
  Microkernel K0 = PairFixture::kernel(8, 0);
  K0.add(NewInstr, 1.0);
  Kernels.push_back({K0, 9.0 / 4.0, 0});
  Microkernel K1 = PairFixture::kernel(0, 4);
  K1.add(NewInstr, 1.0);
  Kernels.push_back({K1, 5.0 / 4.0, 1});
  AuxWeights Aux = solveAuxWeights(F.Shape, F.IndexOf, Frozen, NewInstr,
                                   Kernels, BwpMode::Pinned);
  ASSERT_TRUE(Aux.Feasible);
  EXPECT_LT(Aux.Rho[0], 0.05);
  EXPECT_LT(Aux.Rho[1], 0.05);
}
