//===- tests/support_test.cpp - Support library tests ---------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Approx.h"
#include "support/BitSet.h"
#include "support/Executor.h"
#include "support/Fraction.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

using namespace palmed;

// -------------------------------------------------------------------- BitSet

TEST(BitSet, EmptyAndSingleBit) {
  BitSet S;
  EXPECT_TRUE(S.none());
  EXPECT_FALSE(S.any());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_FALSE(S.test(0));
  EXPECT_FALSE(S.test(1000));

  S.set(5);
  EXPECT_TRUE(S.any());
  EXPECT_TRUE(S.test(5));
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.findFirst(), 5u);
  EXPECT_EQ(S.findLast(), 5u);
  EXPECT_EQ(S, BitSet::bit(5));
  S.reset(5);
  EXPECT_TRUE(S.none());
  EXPECT_EQ(S, BitSet());
}

TEST(BitSet, WordBoundarySizes) {
  // The sizes that historically broke fixed-width masks: around the old
  // 32-bit cap and around the inline 64-bit word.
  for (size_t N : {31u, 32u, 33u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    BitSet S = BitSet::firstN(N);
    EXPECT_EQ(S.count(), N) << N;
    EXPECT_EQ(S.findFirst(), 0u) << N;
    EXPECT_EQ(S.findLast(), N - 1) << N;
    EXPECT_FALSE(S.test(N)) << N;

    BitSet Top = BitSet::bit(N - 1);
    EXPECT_TRUE(Top.isSubsetOf(S)) << N;
    EXPECT_TRUE(S.intersects(Top)) << N;
    BitSet Without = S.without(Top);
    EXPECT_EQ(Without.count(), N - 1) << N;
    EXPECT_FALSE(Without.test(N - 1)) << N;
    EXPECT_EQ(Without | Top, S) << N;
    EXPECT_EQ(S & Top, Top) << N;
    EXPECT_EQ(S ^ Top, Without) << N;
    // Crossing the boundary by one more bit.
    BitSet Grown = S;
    Grown.set(N);
    EXPECT_EQ(Grown.count(), N + 1) << N;
    EXPECT_EQ(Grown.findLast(), N) << N;
    EXPECT_TRUE(S.isSubsetOf(Grown)) << N;
    EXPECT_LT(S, Grown) << N;
  }
}

TEST(BitSet, IntegerValueOrdering) {
  // Ordering must match the underlying integer value — the property that
  // keeps ordered containers iterating exactly like the old uint32_t
  // masks.
  std::vector<uint64_t> Values = {0, 1, 2, 3, 7, 8, 0x80, 0xff00ff,
                                  0x8000000000000000ull};
  for (uint64_t A : Values)
    for (uint64_t B : Values) {
      EXPECT_EQ(BitSet::fromWord(A) < BitSet::fromWord(B), A < B);
      EXPECT_EQ(BitSet::fromWord(A) == BitSet::fromWord(B), A == B);
    }
  // Multi-word values sort above any single-word value.
  EXPECT_LT(BitSet::fromWord(~uint64_t{0}), BitSet::bit(64));
  EXPECT_LT(BitSet::bit(64), BitSet::bit(64) | BitSet::bit(0));
  EXPECT_LT(BitSet::bit(64) | BitSet::bit(0), BitSet::bit(65));
}

TEST(BitSet, ShiftBasics) {
  BitSet S = BitSet::fromWord(0b1011);
  EXPECT_EQ(S << 2, BitSet::fromWord(0b101100));
  EXPECT_EQ(S >> 1, BitSet::fromWord(0b101));
  EXPECT_EQ(S >> 4, BitSet());
  // Shifting across the inline-word boundary and back.
  BitSet Wide = S << 62;
  EXPECT_EQ(Wide.count(), 3u);
  EXPECT_EQ(Wide.findLast(), 65u);
  EXPECT_EQ(Wide >> 62, S);
  EXPECT_EQ(BitSet::bit(0) << 200, BitSet::bit(200));
  EXPECT_EQ(BitSet::bit(200) >> 200, BitSet::bit(0));
}

TEST(BitSet, IterationAndIndices) {
  BitSet S;
  std::vector<size_t> Expected = {0, 31, 32, 63, 64, 65, 200};
  for (size_t I : Expected)
    S.set(I);
  EXPECT_EQ(S.toIndices(), Expected);
  EXPECT_EQ(S.str(), "{0, 31, 32, 63, 64, 65, 200}");
}

TEST(BitSet, HashingEqualValuesAgree) {
  // Same value reached via different construction histories (including a
  // spill to the heap and back) must hash identically.
  BitSet A = BitSet::fromWord(0b1010);
  BitSet B;
  B.set(1);
  B.set(3);
  B.set(100);
  B.reset(100); // Shrinks back to one word.
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(std::hash<BitSet>()(A), A.hash());
  EXPECT_NE(BitSet::bit(64).hash(), BitSet::bit(63).hash());
}

/// Property: BitSet agrees with a std::vector<bool> reference model under
/// random set/reset/union/intersection/difference/shift/subset ops.
class BitSetProperty : public ::testing::TestWithParam<uint64_t> {};

namespace {

std::vector<bool> refModel(const BitSet &S, size_t N) {
  std::vector<bool> Out(N, false);
  S.forEachSetBit([&](size_t I) { Out[I] = true; });
  return Out;
}

} // namespace

TEST_P(BitSetProperty, MatchesVectorBoolModel) {
  Rng R(GetParam());
  // Universe straddling two words keeps every op crossing the boundary.
  const size_t N = 65 + R.uniformInt(80);
  BitSet A, B;
  std::vector<bool> RefA(N, false), RefB(N, false);
  for (int Op = 0; Op < 200; ++Op) {
    size_t I = R.uniformInt(N);
    switch (R.uniformInt(6)) {
    case 0:
      A.set(I);
      RefA[I] = true;
      break;
    case 1:
      A.reset(I);
      RefA[I] = false;
      break;
    case 2:
      B.set(I);
      RefB[I] = true;
      break;
    case 3:
      B.flip(I);
      RefB[I] = !RefB[I];
      break;
    case 4: { // Shift A left by a small amount within the universe.
      size_t Sh = R.uniformInt(5);
      if (A.any() && A.findLast() + Sh < N) {
        A <<= Sh;
        std::vector<bool> Next(N, false);
        for (size_t X = 0; X + Sh < N; ++X)
          if (RefA[X])
            Next[X + Sh] = true;
        RefA = Next;
      }
      break;
    }
    case 5: { // Shift B right.
      size_t Sh = R.uniformInt(70);
      B >>= Sh;
      std::vector<bool> Next(N, false);
      for (size_t X = Sh; X < N; ++X)
        if (RefB[X])
          Next[X - Sh] = true;
      RefB = Next;
      break;
    }
    }

    ASSERT_EQ(refModel(A, N), RefA);
    ASSERT_EQ(refModel(B, N), RefB);

    // Derived ops against the model.
    std::vector<bool> RefOr(N), RefAnd(N), RefDiff(N);
    bool RefIntersects = false, RefSubset = true;
    size_t RefCount = 0;
    for (size_t X = 0; X < N; ++X) {
      RefOr[X] = RefA[X] || RefB[X];
      RefAnd[X] = RefA[X] && RefB[X];
      RefDiff[X] = RefA[X] && !RefB[X];
      RefIntersects |= RefA[X] && RefB[X];
      RefSubset &= !RefA[X] || RefB[X];
      RefCount += RefA[X];
    }
    ASSERT_EQ(refModel(A | B, N), RefOr);
    ASSERT_EQ(refModel(A & B, N), RefAnd);
    ASSERT_EQ(refModel(A.without(B), N), RefDiff);
    ASSERT_EQ(A.intersects(B), RefIntersects);
    ASSERT_EQ(A.isSubsetOf(B), RefSubset);
    ASSERT_EQ(A.count(), RefCount);
    ASSERT_EQ((A ^ B) ^ B, A);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitSetProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// -------------------------------------------------------------------- Approx

TEST(Approx, RelDiff) {
  EXPECT_DOUBLE_EQ(relDiff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relDiff(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(relDiff(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(relDiff(2.0, 1.0), 0.5); // Symmetric.
  EXPECT_TRUE(approxEqual(1.0, 1.04, 0.05));
  EXPECT_FALSE(approxEqual(1.0, 1.06, 0.05));
}

TEST(Approx, IsAdditivePair) {
  EXPECT_TRUE(isAdditivePair(3.0, 1.0, 2.0, 0.05));
  EXPECT_TRUE(isAdditivePair(2.9, 1.0, 2.0, 0.05));
  EXPECT_FALSE(isAdditivePair(2.0, 1.0, 2.0, 0.05));
}

// ---------------------------------------------------------------- Statistics

TEST(Statistics, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Statistics, RmsErrorExactPrediction) {
  EXPECT_DOUBLE_EQ(weightedRmsRelativeError({1.0, 2.0}, {1.0, 2.0}), 0.0);
}

TEST(Statistics, RmsErrorKnownValue) {
  // Single sample, 10% over-prediction.
  EXPECT_NEAR(weightedRmsRelativeError({1.1}, {1.0}), 0.1, 1e-12);
}

TEST(Statistics, RmsErrorUsesWeights) {
  // The heavy sample dominates: err = sqrt(0.9*0.01 + 0.1*0.04).
  double E = weightedRmsRelativeError({1.1, 1.2}, {1.0, 1.0}, {9.0, 1.0});
  EXPECT_NEAR(E, std::sqrt(0.9 * 0.01 + 0.1 * 0.04), 1e-12);
}

TEST(Statistics, RmsErrorSkipsZeroNative) {
  EXPECT_NEAR(weightedRmsRelativeError({5.0, 1.1}, {0.0, 1.0}), 0.1, 1e-12);
}

TEST(Statistics, KendallPerfectCorrelation) {
  std::vector<double> A = {1, 2, 3, 4, 5};
  std::vector<double> B = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(kendallTau(A, B), 1.0);
  EXPECT_DOUBLE_EQ(kendallTauNaive(A, B), 1.0);
}

TEST(Statistics, KendallAntiCorrelation) {
  std::vector<double> A = {1, 2, 3, 4};
  std::vector<double> B = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendallTau(A, B), -1.0);
}

TEST(Statistics, KendallTiny) {
  EXPECT_DOUBLE_EQ(kendallTau({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(kendallTau({1.0}, {2.0}), 0.0);
}

/// Property: the O(n log n) implementation agrees with the naive one on
/// random data with ties.
class KendallProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KendallProperty, MatchesNaive) {
  Rng R(GetParam());
  size_t N = 5 + R.uniformInt(60);
  std::vector<double> A(N), B(N);
  for (size_t I = 0; I < N; ++I) {
    // Small integer values provoke plenty of ties.
    A[I] = static_cast<double>(R.uniformInt(8));
    B[I] = static_cast<double>(R.uniformInt(8));
  }
  EXPECT_NEAR(kendallTau(A, B), kendallTauNaive(A, B), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

TEST(Statistics, RunningStats) {
  RunningStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.uniformInt(10);
    EXPECT_LT(V, 10u);
  }
}

TEST(Rng, UniformRealCoversUnitInterval) {
  Rng R(5);
  double Min = 1.0, Max = 0.0;
  for (int I = 0; I < 10000; ++I) {
    double V = R.uniformReal();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  EXPECT_LT(Min, 0.01);
  EXPECT_GT(Max, 0.99);
}

TEST(Rng, NormalMoments) {
  Rng R(11);
  RunningStats S;
  for (int I = 0; I < 20000; ++I)
    S.add(R.normal());
  EXPECT_NEAR(S.mean(), 0.0, 0.05);
  EXPECT_NEAR(S.stddev(), 1.0, 0.05);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng R(13);
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 30000; ++I)
    ++Counts[R.pickWeighted({1.0, 2.0, 7.0})];
  EXPECT_NEAR(Counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(Counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(Counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng R(17);
  int First = 0, Last = 0;
  for (int I = 0; I < 5000; ++I) {
    uint64_t K = R.zipf(100, 1.2);
    EXPECT_GE(K, 1u);
    EXPECT_LE(K, 100u);
    First += K == 1;
    Last += K == 100;
  }
  EXPECT_GT(First, Last * 10);
}

// ------------------------------------------------------------------ Fraction

TEST(Fraction, Gcd) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(7, 0), 7);
  EXPECT_EQ(gcd(1, 1), 1);
}

TEST(Fraction, Lcm) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(1, 9), 9);
  EXPECT_EQ(lcm(0, 9), 0);
}

TEST(Fraction, ApproximateExactValues) {
  Fraction F = approximateRatio(0.5, 10);
  EXPECT_EQ(F.Num, 1);
  EXPECT_EQ(F.Den, 2);
  F = approximateRatio(3.0, 10);
  EXPECT_EQ(F.Num, 3);
  EXPECT_EQ(F.Den, 1);
}

TEST(Fraction, ApproximateThird) {
  Fraction F = approximateRatio(1.0 / 3.0, 10);
  EXPECT_EQ(F.Num, 1);
  EXPECT_EQ(F.Den, 3);
}

TEST(Fraction, BoundedDenominator) {
  Fraction F = approximateRatio(M_PI, 7);
  EXPECT_LE(F.Den, 7);
  EXPECT_NEAR(F.toDouble(), M_PI, 0.01); // 22/7.
}

TEST(Fraction, PaperStyleRounding) {
  // Sec. VI-A: a = 0.06 rounds to a small fraction within ~5%.
  Fraction F = approximateRatio(0.06, 20);
  EXPECT_NEAR(F.toDouble(), 0.06, 0.06 * 0.06);
}

// --------------------------------------------------------------------- Table

TEST(Table, AlignsColumns) {
  TextTable T({"tool", "err"});
  T.addRow({"palmed", "7.8"});
  T.addRow({"uops.info", "40.3"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("tool"), std::string::npos);
  EXPECT_NE(Out.find("palmed"), std::string::npos);
  EXPECT_NE(Out.find("40.3"), std::string::npos);
}

TEST(Table, CsvEscapes) {
  TextTable T({"a", "b"});
  T.addRow({"x,y", "plain"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_NE(OS.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(int64_t{42}), "42");
}

// ------------------------------------------------------------------ Executor

TEST(Executor, ResolveThreadCount) {
  EXPECT_EQ(Executor::resolveThreadCount(3), 3u);
  EXPECT_EQ(Executor::resolveThreadCount(1), 1u);
  // 0 = auto: a concrete width in [1, MaxAutoThreads], whatever the host.
  unsigned Auto = Executor::resolveThreadCount(0);
  EXPECT_GE(Auto, 1u);
  EXPECT_LE(Auto, Executor::MaxAutoThreads);
  // Explicit requests are taken as-is, even above the auto clamp.
  EXPECT_EQ(Executor::resolveThreadCount(Executor::MaxAutoThreads + 7),
            Executor::MaxAutoThreads + 7);
}

TEST(Executor, CoversEveryIndexExactlyOnce) {
  Executor E(4);
  EXPECT_EQ(E.numWorkers(), 4u);
  constexpr size_t N = 4096;
  // Each index is claimed exactly once, so unsynchronized per-slot writes
  // are race-free; the join at the end of parallelFor publishes them.
  std::vector<int> Hits(N, 0);
  std::vector<unsigned> Worker(N, ~0u);
  E.parallelFor(N, [&](size_t I, unsigned W) {
    ++Hits[I];
    Worker[I] = W;
  });
  for (size_t I = 0; I < N; ++I) {
    EXPECT_EQ(Hits[I], 1) << I;
    EXPECT_LT(Worker[I], 4u) << I;
  }
}

TEST(Executor, SerialWidthRunsInlineInOrder) {
  Executor E(1);
  EXPECT_EQ(E.numWorkers(), 1u);
  std::vector<size_t> Order;
  E.parallelFor(5, [&](size_t I, unsigned W) {
    EXPECT_EQ(W, 0u);
    Order.push_back(I);
  });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(Executor, PropagatesFirstExceptionAndStaysUsable) {
  Executor E(3);
  std::atomic<int> Ran{0};
  auto Boom = [&](size_t I, unsigned) {
    if (I == 17)
      throw std::runtime_error("boom");
    ++Ran;
  };
  EXPECT_THROW(E.parallelFor(64, Boom), std::runtime_error);
  // Unclaimed items were abandoned, claimed ones completed.
  EXPECT_LT(Ran.load(), 64);

  // The pool survives an exception and runs the next job normally.
  std::atomic<int> Count{0};
  E.parallelFor(100, [&](size_t, unsigned) { ++Count; });
  EXPECT_EQ(Count.load(), 100);
}

TEST(Executor, ZeroAndSingleItemJobs) {
  Executor E(4);
  int Calls = 0;
  E.parallelFor(0, [&](size_t, unsigned) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  E.parallelFor(1, [&](size_t I, unsigned W) {
    EXPECT_EQ(I, 0u);
    EXPECT_EQ(W, 0u); // Single items run inline on the caller.
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(Executor, BackToBackJobsReuseThePool) {
  Executor E(4);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<size_t> Sum{0};
    E.parallelFor(257, [&](size_t I, unsigned) { Sum += I; });
    EXPECT_EQ(Sum.load(), 257u * 256u / 2u);
  }
}
