//===- tests/dual_test.cpp - Dual-equivalence theorem tests ---------------===//
//
// Part of the PALMED reproduction.
//
// Validates the paper's central theoretical claim (Appendix A, Thm. A.2):
// the conjunctive dual of a disjunctive port mapping predicts, in closed
// form, exactly the optimal-schedule execution time.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"
#include "machine/StandardMachines.h"
#include "machine/SyntheticIsa.h"
#include "sim/AnalyticOracle.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace palmed;

namespace {

InstrId idOf(const MachineModel &M, const std::string &Name) {
  InstrId Id = M.isa().findByName(Name);
  EXPECT_NE(Id, InvalidInstr) << Name;
  return Id;
}

} // namespace

// ------------------------------------------------------------------- Closure

TEST(ResourceClosure, Fig1MachineHasPaperResources) {
  MachineModel M = makeFig1Machine();
  // Port sets: {p0}, {p0,p1}, {p1}, {p0,p6}, {p6}; closure adds {p0,p1,p6}.
  std::vector<PortMask> Closure = computeResourceClosure(M, 64);
  EXPECT_EQ(Closure.size(), 6u);
  PortMask All = portMask({0, 1, 2});
  EXPECT_NE(std::count(Closure.begin(), Closure.end(), All), 0);
  // r16 = {p1,p6} must NOT appear: no µOP set generates it (the paper notes
  // it is not needed).
  PortMask R16 = portMask({1, 2});
  EXPECT_EQ(std::count(Closure.begin(), Closure.end(), R16), 0);
}

TEST(ResourceClosure, DisjointSetsStayUnmerged) {
  MachineBuilder B("disjoint");
  B.addPort("a");
  B.addPort("b");
  B.addSimpleInstruction({"X", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({0}));
  B.addSimpleInstruction({"Y", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({1}));
  MachineModel M = B.build();
  EXPECT_EQ(computeResourceClosure(M, 64).size(), 2u);
}

// ------------------------------------------------------- Fig. 1b reproduction

TEST(DualMapping, Fig1NormalizedWeights) {
  MachineModel M = makeFig1Machine();
  ResourceMapping Dual = buildDualMapping(M);

  auto ResourceByName = [&](const std::string &Name) -> ResourceId {
    for (ResourceId R = 0; R < Dual.numResources(); ++R)
      if (Dual.resourceName(R) == Name)
        return R;
    ADD_FAILURE() << "missing resource " << Name;
    return 0;
  };
  // Port indices: p0=0, p1=1, p6=2 -> names r0, r01, r016 ("2" is p6).
  ResourceId R0 = ResourceByName("r0");
  ResourceId R01 = ResourceByName("r01");
  ResourceId R012 = ResourceByName("r012");

  InstrId Addss = idOf(M, "ADDSS");
  InstrId Bsr = idOf(M, "BSR");
  InstrId Vcvtt = idOf(M, "VCVTT");

  // Paper Fig. 1c: rho(ADDSS, r01) = 1/2, rho(ADDSS, r016) = 1/3.
  EXPECT_NEAR(Dual.rho(Addss, R01), 0.5, 1e-12);
  EXPECT_NEAR(Dual.rho(Addss, R012), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Dual.rho(Addss, R0), 0.0);
  // BSR: rho(r1) = 1, rho(r01) = 1/2, rho(r016) = 1/3.
  EXPECT_NEAR(Dual.rho(Bsr, R01), 0.5, 1e-12);
  // VCVTT uses r01 twice: normalized 2/2 = 1.
  EXPECT_NEAR(Dual.rho(Vcvtt, R01), 1.0, 1e-12);
}

TEST(DualMapping, Fig1ThroughputExamples) {
  MachineModel M = makeFig1Machine();
  ResourceMapping Dual = buildDualMapping(M);
  Microkernel K1;
  K1.add(idOf(M, "ADDSS"), 2.0);
  K1.add(idOf(M, "BSR"), 1.0);
  EXPECT_NEAR(Dual.predictCycles(K1), 1.5, 1e-12);
  EXPECT_NEAR(*Dual.predictIpc(K1), 2.0, 1e-12);

  Microkernel K2;
  K2.add(idOf(M, "ADDSS"), 1.0);
  K2.add(idOf(M, "BSR"), 2.0);
  EXPECT_NEAR(*Dual.predictIpc(K2), 1.5, 1e-12);
}

// ------------------------------------------- Equivalence theorem (Thm. A.2)

/// Property: dual closed-form time == flow-LP optimal time, on random
/// machines and random kernels (without front-end, which the flow LP part
/// does not include).
class DualEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualEquivalence, ClosedFormEqualsFlowOptimum) {
  Rng R(GetParam());
  MachineModel M =
      makeRandomMachine(R, 2 + R.uniformInt(5), 5 + R.uniformInt(10));
  AnalyticOracle Oracle(M);
  DualOptions Options;
  Options.IncludeFrontEnd = false;
  ResourceMapping Dual = buildDualMapping(M, Options);

  for (int Trial = 0; Trial < 8; ++Trial) {
    Microkernel K;
    size_t Terms = 1 + R.uniformInt(4);
    for (size_t T = 0; T < Terms; ++T)
      K.add(static_cast<InstrId>(R.uniformInt(M.numInstructions())),
            0.5 + R.uniformReal() * 3.0);
    double FlowT = Oracle.portCycles(K);
    double DualT = Dual.predictCycles(K);
    EXPECT_NEAR(FlowT, DualT, 1e-6 * std::max(1.0, FlowT))
        << "machine seed " << GetParam() << " trial " << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{50}));

/// With the front-end resource enabled, the dual must equal the full
/// analytic oracle (which also applies the decode-width bound).
class DualFrontEnd : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualFrontEnd, MatchesOracleWithDecodeBound) {
  Rng R(GetParam());
  MachineModel M =
      makeRandomMachine(R, 2 + R.uniformInt(5), 5 + R.uniformInt(10));
  AnalyticOracle Oracle(M);
  ResourceMapping Dual = buildDualMapping(M);

  for (int Trial = 0; Trial < 5; ++Trial) {
    Microkernel K;
    size_t Terms = 1 + R.uniformInt(4);
    for (size_t T = 0; T < Terms; ++T)
      K.add(static_cast<InstrId>(R.uniformInt(M.numInstructions())),
            0.5 + R.uniformReal() * 3.0);
    double OracleIpc = Oracle.measureIpc(K);
    ASSERT_TRUE(Dual.predictIpc(K).has_value());
    EXPECT_NEAR(OracleIpc, *Dual.predictIpc(K), 1e-6 * OracleIpc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualFrontEnd,
                         ::testing::Range(uint64_t{100}, uint64_t{130}));

// ------------------------------------------------------- optimalPortCycles

TEST(OptimalPortCycles, SingleMask) {
  EXPECT_NEAR(optimalPortCycles({{portMask({0, 1}), 3.0}}), 1.5, 1e-12);
}

TEST(OptimalPortCycles, MergesDuplicates) {
  EXPECT_NEAR(
      optimalPortCycles({{portMask({0}), 1.0}, {portMask({0}), 2.0}}), 3.0,
      1e-12);
}

TEST(OptimalPortCycles, DisjointTakesMax) {
  double T = optimalPortCycles({{portMask({0}), 2.0}, {portMask({1}), 5.0}});
  EXPECT_NEAR(T, 5.0, 1e-12);
}

TEST(OptimalPortCycles, UnionBindsWhenShared) {
  // 2 on {0}, 2 on {0,1}: the union {0,1} carries 4 demand over 2 ports.
  double T =
      optimalPortCycles({{portMask({0}), 2.0}, {portMask({0, 1}), 2.0}});
  EXPECT_NEAR(T, 2.0, 1e-12);
}

// --------------------------------------------------------- Mapping round-trip

TEST(ResourceMapping, TextRoundTrip) {
  MachineModel M = makeFig1Machine();
  ResourceMapping Dual = buildDualMapping(M);
  std::string Text = Dual.toText(M.isa());
  auto Parsed = ResourceMapping::fromText(Text, M.isa());
  ASSERT_TRUE(Parsed.has_value());
  ASSERT_EQ(Parsed->numResources(), Dual.numResources());
  Microkernel K;
  K.add(idOf(M, "ADDSS"), 2.0);
  K.add(idOf(M, "BSR"), 1.0);
  EXPECT_NEAR(Parsed->predictCycles(K), Dual.predictCycles(K), 1e-9);
}

TEST(ResourceMapping, FromTextRejectsGarbage) {
  MachineModel M = makeFig1Machine();
  EXPECT_FALSE(ResourceMapping::fromText("not a mapping", M.isa()));
  EXPECT_FALSE(ResourceMapping::fromText(
      "palmed-mapping v1\nresources 1\nbogus line\n", M.isa()));
}

TEST(ResourceMapping, UnsupportedKernelDeclined) {
  ResourceMapping Map(3);
  Map.addResource("R0");
  Map.setUsage(0, 0, 0.5);
  Microkernel K;
  K.add(0, 1.0);
  K.add(2, 1.0); // Instruction 2 unmapped.
  EXPECT_FALSE(Map.supports(K));
  EXPECT_FALSE(Map.predictIpc(K).has_value());
}
