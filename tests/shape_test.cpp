//===- tests/shape_test.cpp - LP1 shape solver tests ----------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/ShapeSolver.h"
#include "machine/MachineModel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace palmed;

namespace {

InstrIndexMask mask(uint64_t Bits) { return BitSet::fromWord(Bits); }

ShapeConstraint sharedAll(std::initializer_list<unsigned> Members) {
  ShapeConstraint C;
  for (unsigned I : Members)
    C.Required.set(I);
  return C;
}

ShapeConstraint privateWithin(unsigned Owner,
                              std::initializer_list<unsigned> Others) {
  ShapeConstraint C;
  C.Required = InstrIndexMask::bit(Owner);
  C.Owner = static_cast<int>(Owner);
  for (unsigned I : Others)
    if (I != Owner)
      C.Forbidden.set(I);
  return C;
}

/// Builds a symmetric share matrix from (i, j, kind) triples; unlisted
/// pairs default to Partial (permissive).
ShareMatrix
shareMatrix(size_t N,
            std::initializer_list<std::tuple<unsigned, unsigned, ShareKind>>
                Entries) {
  ShareMatrix M(N, std::vector<ShareKind>(N, ShareKind::Partial));
  for (size_t I = 0; I < N; ++I)
    M[I][I] = ShareKind::Full;
  for (const auto &[A, B, Kind] : Entries) {
    M[A][B] = Kind;
    M[B][A] = Kind;
  }
  return M;
}

bool hasResource(const MappingShape &S, const InstrIndexMask &Members) {
  return std::count(S.Resources.begin(), S.Resources.end(), Members) != 0;
}

bool satisfies(const MappingShape &S, const ShapeConstraint &C) {
  for (const InstrIndexMask &R : S.Resources)
    if (C.Required.isSubsetOf(R) && !R.intersects(C.Forbidden))
      return true;
  return false;
}

} // namespace

TEST(ShapeConstraints, DeriveSharedWhenNothingSaturates) {
  // Kernel a^2 b^1 with IPC 2 -> t = 1.5; solo IPCs 2 and 1 mean each
  // instruction alone needs 1 cycle: nobody saturates -> SharedAll.
  std::map<InstrId, size_t> IndexOf = {{10, 0}, {20, 1}};
  std::vector<double> Solo = {2.0, 1.0};
  Microkernel K;
  K.add(10, 2.0);
  K.add(20, 1.0);
  auto Cs = deriveKernelConstraints({K, 2.0}, IndexOf, Solo, 0.05);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].Required, mask(0b11));
  EXPECT_TRUE(Cs[0].Forbidden.none());
}

TEST(ShapeConstraints, DerivePrivateWhenSaturating) {
  // Kernel a^4 b^1 with IPC 5/4 -> t = 4; a alone takes 4/1 = 4: a
  // saturates -> a needs a resource private from b.
  std::map<InstrId, size_t> IndexOf = {{10, 0}, {20, 1}};
  std::vector<double> Solo = {1.0, 1.0};
  Microkernel K;
  K.add(10, 4.0);
  K.add(20, 1.0);
  auto Cs = deriveKernelConstraints({K, 5.0 / 4.0}, IndexOf, Solo, 0.05);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].Required, mask(0b01));
  EXPECT_EQ(Cs[0].Forbidden, mask(0b10));
}

TEST(ShapeConstraints, AdditivePairSaturatesBoth) {
  std::map<InstrId, size_t> IndexOf = {{1, 0}, {2, 1}};
  std::vector<double> Solo = {1.0, 2.0};
  Microkernel K;
  K.add(1, 1.0);
  K.add(2, 2.0);
  auto Cs = deriveKernelConstraints({K, 3.0}, IndexOf, Solo, 0.05);
  EXPECT_EQ(Cs.size(), 2u); // Both instructions saturate.
}

TEST(ShapeConstraints, SimplifyDropsImplied) {
  std::vector<ShapeConstraint> Cs = {
      sharedAll({0, 1}),
      sharedAll({0, 1, 2}), // Implies the first.
      privateWithin(0, {1}),
      privateWithin(0, {1, 2}), // Implies the third.
  };
  auto Out = simplifyConstraints(Cs);
  EXPECT_EQ(Out.size(), 2u);
}

TEST(ShapeSolver, SingleSharedResource) {
  MappingShape S = solveShapeExact({sharedAll({0, 1, 2})});
  EXPECT_EQ(S.numResources(), 1u);
  EXPECT_TRUE(hasResource(S, mask(0b111)));
}

TEST(ShapeSolver, PrivateForcesSplit) {
  std::vector<ShapeConstraint> Cs = {
      sharedAll({0, 1}),
      privateWithin(0, {1}),
      privateWithin(1, {0}),
  };
  MappingShape S = solveShapeExact(Cs);
  EXPECT_EQ(S.numResources(), 3u);
  for (const ShapeConstraint &C : Cs)
    EXPECT_TRUE(satisfies(S, C));
}

TEST(ShapeSolver, MergesCompatibleConstraints) {
  // Shared {0,1} and shared {1,2} can share one resource {0,1,2}.
  MappingShape S = solveShapeExact({sharedAll({0, 1}), sharedAll({1, 2})});
  EXPECT_EQ(S.numResources(), 1u);
  EXPECT_TRUE(hasResource(S, mask(0b111)));
}

TEST(ShapeSolver, ForbiddenBlocksMerge) {
  // Shared {0,1} and shared {1,2}, but 0 and 2 may not share with each
  // other... expressed via a private constraint keeping them apart.
  std::vector<ShapeConstraint> Cs = {
      sharedAll({0, 1}),
      sharedAll({1, 2}),
      privateWithin(0, {2}),
  };
  MappingShape S = solveShapeExact(Cs);
  // {0,1} cannot merge with {1,2} if the private({0}, not 2) merges with
  // the first; optimal is 2 resources: {0,1} (satisfies private too? no —
  // private forbids 2 only, so resource {0,1} satisfies both shared {0,1}
  // and private(0, !2)) and {1,2}.
  EXPECT_EQ(S.numResources(), 2u);
  for (const ShapeConstraint &C : Cs)
    EXPECT_TRUE(satisfies(S, C));
}

TEST(ShapeSolver, Fig1PaperStructure) {
  // The hand-derived constraint system of the paper's Fig. 1 example
  // (indices: 0=DIVPS 1=BSR 2=JMP 3=ADDSS 4=JNLE), from Sec. III-D's
  // quadratic + amplified benchmarks. With the pairwise share
  // classification the minimal shape has exactly the six resources of
  // Fig. 1b.
  std::vector<ShapeConstraint> Cs = {
      // Disjoint pairs: private resources.
      privateWithin(0, {1}), privateWithin(1, {0}), // DIVPS/BSR
      privateWithin(0, {2}), privateWithin(2, {0}), // DIVPS/JMP
      privateWithin(1, {2}), privateWithin(2, {1}), // BSR/JMP
      privateWithin(1, {4}), privateWithin(4, {1}), // BSR/JNLE
      privateWithin(2, {3}), privateWithin(3, {2}), // JMP/ADDSS
      // Overlapping pairs: shared resources.
      sharedAll({0, 3}), sharedAll({0, 4}), sharedAll({1, 3}),
      sharedAll({2, 4}), sharedAll({3, 4}),
      // Amplified aMb observations.
      privateWithin(0, {3}), privateWithin(0, {4}),
      privateWithin(1, {3}),
      privateWithin(3, {4}), privateWithin(4, {3}),
      privateWithin(2, {4}),
      // Greedier instructions' global sharing.
      sharedAll({3, 0, 1}),    // ADDSS with its overlap set.
      sharedAll({4, 0, 2}),    // JNLE with its overlap set.
  };
  // Pairwise classification from the machine's true behaviour.
  ShareMatrix Shares = shareMatrix(
      5, {{0, 1, ShareKind::Additive},
          {0, 2, ShareKind::Additive},
          {1, 2, ShareKind::Additive},
          {1, 4, ShareKind::Additive},
          {2, 3, ShareKind::Additive},
          {0, 3, ShareKind::Partial},
          {0, 4, ShareKind::Partial},
          {1, 3, ShareKind::Partial},
          {2, 4, ShareKind::Partial},
          {3, 4, ShareKind::Partial}});
  MappingShape S = solveShapeExact(Cs, Shares);
  EXPECT_EQ(S.numResources(), 6u);
  // The port-exclusive instructions keep dedicated resources:
  // r0 = {DIVPS}, r1 = {BSR}, r6 = {JMP}.
  EXPECT_TRUE(hasResource(S, mask(0b00001)));
  EXPECT_TRUE(hasResource(S, mask(0b00010)));
  EXPECT_TRUE(hasResource(S, mask(0b00100)));
  // Every constraint holds (after owner expansion, as the solver sees it).
  for (const ShapeConstraint &C : expandOwnerForbidden(Cs, Shares))
    EXPECT_TRUE(satisfies(S, C));
}

TEST(ShapeSolver, OwnerRulesBlockDegenerateMerges) {
  // Without share information the solver may merge an owner's private
  // resource into a shared one (fewer resources, but no consistent
  // weights); the share matrix must prevent it.
  std::vector<ShapeConstraint> Cs = {
      privateWithin(0, {1}), // 0 saturates without 1.
      sharedAll({0, 2}),     // 0 and 2 share.
      sharedAll({1, 2}),     // 1 and 2 share.
  };
  // 0 and 2 are additive: 2 may not sit on the resource 0 saturates.
  ShareMatrix Shares =
      shareMatrix(3, {{0, 2, ShareKind::Additive}});
  MappingShape Strict = solveShapeExact(Cs, Shares);
  // The private resource of 0 must exclude both 1 (explicit) and 2
  // (additive partner): it is the singleton {0}.
  EXPECT_TRUE(hasResource(Strict, mask(0b001)));
  for (const ShapeConstraint &C : expandOwnerForbidden(Cs, Shares))
    EXPECT_TRUE(satisfies(Strict, C));
}

TEST(ShapeSolver, FullSharePermitsJointSaturation) {
  // Two owners whose pair fully serializes may saturate one resource.
  std::vector<ShapeConstraint> Cs = {
      privateWithin(0, {2}),
      privateWithin(1, {2}),
  };
  ShareMatrix Full = shareMatrix(3, {{0, 1, ShareKind::Full}});
  ShareMatrix Partial = shareMatrix(3, {{0, 1, ShareKind::Partial}});
  EXPECT_EQ(solveShapeExact(Cs, Full).numResources(), 1u);
  EXPECT_EQ(solveShapeExact(Cs, Partial).numResources(), 2u);
}

TEST(ShapeSolver, ClassifyShare) {
  EXPECT_EQ(classifyShare(1.0, 1.0, 1.0, 0.05), ShareKind::Additive);
  EXPECT_EQ(classifyShare(2.0, 1.0, 1.0, 0.05), ShareKind::Full);
  EXPECT_EQ(classifyShare(1.5, 1.0, 1.0, 0.05), ShareKind::Partial);
  // Asymmetric solo times: kernel dominated by the slower side.
  EXPECT_EQ(classifyShare(4.05, 4.0, 1.0, 0.05), ShareKind::Additive);
  EXPECT_EQ(classifyShare(5.0, 4.0, 1.0, 0.05), ShareKind::Full);
}

TEST(ShapeSolver, MilpAgreesOnFig1) {
  std::vector<ShapeConstraint> Cs = {
      privateWithin(0, {1}), privateWithin(1, {0}),
      privateWithin(0, {2}), privateWithin(2, {0}),
      privateWithin(1, {2}), privateWithin(2, {1}),
      sharedAll({0, 3}), sharedAll({1, 3}),
      sharedAll({0, 4}), sharedAll({2, 4}),
      privateWithin(3, {4}), privateWithin(4, {3}),
  };
  MappingShape Exact = solveShapeExact(Cs);
  MappingShape Milp = solveShapeMilp(Cs, 5, Exact.numResources() + 2);
  EXPECT_EQ(Exact.numResources(), Milp.numResources());
  for (const ShapeConstraint &C : Cs) {
    EXPECT_TRUE(satisfies(Exact, C));
    EXPECT_TRUE(satisfies(Milp, C));
  }
}

// The regressions below exercise shape problems the historical 32-bit
// InstrIndexMask could not even represent (indices >= 32); they pin the
// tentpole guarantee that the dynamic BitSet lifted the basic-instruction
// wall without changing the solver's semantics.

TEST(ShapeSolver, BeyondThirtyTwoBasics) {
  // 40 port-exclusive basics: every instruction owns a resource private
  // from all the others, so the minimal shape is 40 singletons.
  const unsigned N = 40;
  std::vector<ShapeConstraint> Cs;
  for (unsigned I = 0; I < N; ++I) {
    ShapeConstraint C;
    C.Required = InstrIndexMask::bit(I);
    C.Forbidden = BitSet::firstN(N).without(C.Required);
    C.Owner = static_cast<int>(I);
    Cs.push_back(C);
  }
  MappingShape S = solveShapeExact(Cs);
  EXPECT_EQ(S.numResources(), N);
  for (unsigned I = 0; I < N; ++I)
    EXPECT_TRUE(hasResource(S, InstrIndexMask::bit(I))) << I;
}

TEST(ShapeSolver, MergesAcrossHighIndices) {
  // Shared constraints straddling the old 32-bit boundary merge into one
  // resource exactly like their low-index counterparts.
  MappingShape S =
      solveShapeExact({sharedAll({30, 35}), sharedAll({35, 40})});
  EXPECT_EQ(S.numResources(), 1u);
  InstrIndexMask Merged;
  Merged.set(30);
  Merged.set(35);
  Merged.set(40);
  EXPECT_TRUE(hasResource(S, Merged));
  // A private constraint keeping 30 and 40 apart forces the split.
  MappingShape Split = solveShapeExact(
      {sharedAll({30, 35}), sharedAll({35, 40}), privateWithin(30, {40})});
  EXPECT_EQ(Split.numResources(), 2u);
}

TEST(ShapeConstraints, DeriveAtHighIndices) {
  // A saturating instruction sitting at basic index 33 derives a
  // PrivateWithin whose Required bit the old mask could not hold.
  std::map<InstrId, size_t> IndexOf;
  std::vector<double> Solo(34, 1.0);
  for (InstrId Id = 0; Id < 34; ++Id)
    IndexOf[Id] = Id;
  Microkernel K;
  K.add(33, 4.0); // Saturates: t = 4, alone = 4.
  K.add(7, 1.0);
  auto Cs = deriveKernelConstraints({K, 5.0 / 4.0}, IndexOf, Solo, 0.05);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].Required, InstrIndexMask::bit(33));
  EXPECT_EQ(Cs[0].Forbidden, InstrIndexMask::bit(7));
  EXPECT_EQ(Cs[0].Owner, 33);
}

TEST(ShapeSolver, FortyBasicRandomSystemsSatisfiable) {
  // Random satisfiable systems over 40 basics: the solver must satisfy
  // every constraint and never beat the trivially-optimal lower bound
  // (each pairwise-incompatible owner needs its own resource).
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    const unsigned N = 33 + static_cast<unsigned>(R.uniformInt(16));
    std::vector<ShapeConstraint> Cs;
    for (unsigned C = 0; C < 12; ++C) {
      ShapeConstraint S;
      if (R.chance(0.5)) {
        unsigned Count = 2 + static_cast<unsigned>(R.uniformInt(3));
        while (S.Required.count() < Count)
          S.Required.set(R.uniformInt(N));
      } else {
        unsigned Owner = static_cast<unsigned>(R.uniformInt(N));
        S.Required = InstrIndexMask::bit(Owner);
        for (unsigned O = 0; O < 3; ++O) {
          unsigned X = static_cast<unsigned>(R.uniformInt(N));
          if (X != Owner)
            S.Forbidden.set(X);
        }
      }
      Cs.push_back(S);
    }
    MappingShape S = solveShapeExact(Cs);
    for (const ShapeConstraint &C : Cs)
      EXPECT_TRUE(satisfies(S, C)) << "seed " << Seed;
    EXPECT_LE(S.numResources(), Cs.size()) << "seed " << Seed;
  }
}

/// Property: exact solver and MILP find the same minimum on random
/// satisfiable systems, and both satisfy every constraint.
class ShapeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapeProperty, ExactMatchesMilp) {
  Rng R(GetParam());
  const unsigned N = 3 + static_cast<unsigned>(R.uniformInt(3)); // 3-5.
  std::vector<ShapeConstraint> Cs;
  const unsigned NumCs = 3 + static_cast<unsigned>(R.uniformInt(6));
  for (unsigned C = 0; C < NumCs; ++C) {
    ShapeConstraint S;
    if (R.chance(0.5)) {
      // SharedAll over 2-3 members.
      unsigned Count = 2 + static_cast<unsigned>(R.uniformInt(2));
      while (S.Required.count() < Count)
        S.Required.set(R.uniformInt(N));
    } else {
      unsigned Owner = static_cast<unsigned>(R.uniformInt(N));
      S.Required = InstrIndexMask::bit(Owner);
      unsigned Others = 1 + static_cast<unsigned>(R.uniformInt(2));
      for (unsigned O = 0; O < Others; ++O) {
        unsigned X = static_cast<unsigned>(R.uniformInt(N));
        if (X != Owner)
          S.Forbidden.set(X);
      }
    }
    Cs.push_back(S);
  }
  MappingShape Exact = solveShapeExact(Cs);
  MappingShape Milp = solveShapeMilp(Cs, N, Exact.numResources() + 1);
  EXPECT_EQ(Exact.numResources(), Milp.numResources()) << "seed "
                                                       << GetParam();
  for (const ShapeConstraint &C : Cs) {
    EXPECT_TRUE(satisfies(Exact, C));
    EXPECT_TRUE(satisfies(Milp, C));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));
