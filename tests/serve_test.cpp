//===- tests/serve_test.cpp - Serving subsystem tests ---------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
//
// Covers the serving subsystem end to end: the versioned binary mapping
// format (bit-identical round trips, typed rejection of every corruption
// mode), the wire protocol codecs, the sharded prediction cache, and the
// daemon itself over a real AF_UNIX socket with concurrent client
// sessions against multiple machines. Concurrency tests carry "Serve" in
// the suite name so the CI TSan job picks them up by regex.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"
#include "eval/Workload.h"
#include "machine/StandardMachines.h"
#include "machine/SyntheticIsa.h"
#include "serve/Client.h"
#include "serve/MappingIO.h"
#include "serve/PredictionCache.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace palmed;
using namespace palmed::serve;

namespace {

/// Kernels with single instructions, pairs, and fractional multiplicities
/// over the first few instructions of \p M's ISA.
std::vector<Microkernel> probeKernels(const MachineModel &M) {
  std::vector<Microkernel> Out;
  size_t N = std::min<size_t>(M.isa().size(), 8);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Microkernel::single(static_cast<InstrId>(I)));
  for (size_t I = 0; I + 1 < N; ++I) {
    Microkernel K;
    K.add(static_cast<InstrId>(I), 2.0);
    K.add(static_cast<InstrId>(I + 1), 0.5);
    Out.push_back(K);
  }
  return Out;
}

/// Exact-bits comparison: the round-trip criterion is byte equality of
/// predictions, not approximate equality.
bool sameBits(double A, double B) {
  uint64_t Ba, Bb;
  std::memcpy(&Ba, &A, sizeof(Ba));
  std::memcpy(&Bb, &B, sizeof(Bb));
  return Ba == Bb;
}

std::string tempPath(const std::string &Leaf) {
  return testing::TempDir() + "/" + Leaf;
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(OS.is_open());
  OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

//===----------------------------------------------------------------------===//
// MappingIO: the binary format.
//===----------------------------------------------------------------------===//

TEST(ServeMappingIO, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(ServeMappingIO, RoundTripIsBitIdentical) {
  // skl, zen, and stress duals: fractional rhos, hundreds of
  // instructions, multi-µop entries.
  std::vector<MachineModel> Machines;
  Machines.push_back(makeSklLike());
  Machines.push_back(makeZenLike());
  Machines.push_back(makeStressMachine(StressIsaConfig()));
  for (const MachineModel &M : Machines) {
    ResourceMapping Mapping = buildDualMapping(M);
    std::string Bytes = serializeMapping(Mapping, M);
    MappingIOError Err;
    auto Reloaded = deserializeMapping(Bytes, M, &Err);
    ASSERT_TRUE(Reloaded) << M.name() << ": " << Err.Message;
    EXPECT_EQ(Reloaded->toText(M.isa()), Mapping.toText(M.isa()))
        << M.name();
    for (const Microkernel &K : probeKernels(M)) {
      auto A = Mapping.predictIpc(K);
      auto B = Reloaded->predictIpc(K);
      ASSERT_EQ(A.has_value(), B.has_value()) << M.name();
      if (A) {
        EXPECT_TRUE(sameBits(*A, *B))
            << M.name() << ": " << K.str(M.isa());
      }
    }
    // Re-serializing the reloaded mapping reproduces the exact file.
    EXPECT_EQ(serializeMapping(*Reloaded, M), Bytes) << M.name();
  }
}

TEST(ServeMappingIO, SaveLoadThroughFile) {
  MachineModel M = makeFig1Machine();
  ResourceMapping Mapping = buildDualMapping(M);
  std::string Path = tempPath("fig1_roundtrip.palmedmap");
  MappingIOError Err;
  ASSERT_TRUE(saveMapping(Path, Mapping, M, &Err)) << Err.Message;
  auto Reloaded = loadMapping(Path, M, &Err);
  ASSERT_TRUE(Reloaded) << Err.Message;
  EXPECT_EQ(Reloaded->toText(M.isa()), Mapping.toText(M.isa()));
  std::remove(Path.c_str());
}

TEST(ServeMappingIO, PartiallyMappedRoundTrip) {
  // Unmapped instructions must stay unmapped after a round trip (the
  // mapped flag is data, not derivable from the rho row).
  MachineModel M = makeFig1Machine();
  ResourceMapping Mapping(M.isa().size());
  ResourceId R = Mapping.addResource("r0", 2.0);
  Mapping.setUsage(0, R, 0.5);
  Mapping.markMapped(1); // Mapped with an all-zero row.
  auto Reloaded = deserializeMapping(serializeMapping(Mapping, M), M);
  ASSERT_TRUE(Reloaded);
  EXPECT_TRUE(Reloaded->isMapped(0));
  EXPECT_TRUE(Reloaded->isMapped(1));
  for (InstrId I = 2; I < M.isa().size(); ++I)
    EXPECT_FALSE(Reloaded->isMapped(I));
  EXPECT_EQ(Reloaded->resourceThroughput(R), 2.0);
}

TEST(ServeMappingIO, RejectsTruncatedFile) {
  MachineModel M = makeFig1Machine();
  std::string Bytes = serializeMapping(buildDualMapping(M), M);
  // Chop inside the payload and inside the header.
  for (size_t Keep : {Bytes.size() - 1, Bytes.size() / 2, size_t(10)}) {
    MappingIOError Err;
    auto R = deserializeMapping(Bytes.substr(0, Keep), M, &Err);
    EXPECT_FALSE(R) << "kept " << Keep;
    EXPECT_EQ(Err.Status, MappingIOStatus::Truncated) << "kept " << Keep;
  }
}

TEST(ServeMappingIO, RejectsChecksumCorruption) {
  MachineModel M = makeFig1Machine();
  std::string Bytes = serializeMapping(buildDualMapping(M), M);
  // Flip one bit in the last payload byte.
  std::string Bad = Bytes;
  Bad.back() = static_cast<char>(Bad.back() ^ 0x01);
  MappingIOError Err;
  EXPECT_FALSE(deserializeMapping(Bad, M, &Err));
  EXPECT_EQ(Err.Status, MappingIOStatus::BadChecksum);
}

TEST(ServeMappingIO, RejectsWrongVersion) {
  MachineModel M = makeFig1Machine();
  std::string Bytes = serializeMapping(buildDualMapping(M), M);
  // The u32 format version sits right after the 8-byte magic.
  std::string Bad = Bytes;
  Bad[8] = static_cast<char>(MappingFormatVersion + 1);
  MappingIOError Err;
  EXPECT_FALSE(deserializeMapping(Bad, M, &Err));
  EXPECT_EQ(Err.Status, MappingIOStatus::BadVersion);
}

TEST(ServeMappingIO, RejectsWrongMachine) {
  MachineModel Skl = makeSklLike();
  MachineModel Zen = makeZenLike();
  ASSERT_NE(machineDigest(Skl), machineDigest(Zen));
  std::string Bytes = serializeMapping(buildDualMapping(Skl), Skl);
  MappingIOError Err;
  EXPECT_FALSE(deserializeMapping(Bytes, Zen, &Err));
  EXPECT_EQ(Err.Status, MappingIOStatus::MachineMismatch);
}

TEST(ServeMappingIO, RejectsBadMagic) {
  MachineModel M = makeFig1Machine();
  MappingIOError Err;
  EXPECT_FALSE(deserializeMapping("definitely not a mapping", M, &Err));
  EXPECT_EQ(Err.Status, MappingIOStatus::BadMagic);
}

TEST(ServeMappingIO, AutoLoadAcceptsTextFallback) {
  MachineModel M = makeFig1Machine();
  ResourceMapping Mapping = buildDualMapping(M);
  std::string Path = tempPath("fig1_text.mapping");
  writeFile(Path, Mapping.toText(M.isa()));
  MappingIOError Err;
  auto R = loadMappingAuto(Path, M, &Err);
  ASSERT_TRUE(R) << Err.Message;
  EXPECT_EQ(R->toText(M.isa()), Mapping.toText(M.isa()));

  // Unparseable text reports Malformed; a missing file reports IoError.
  writeFile(Path, "not a mapping at all\n");
  EXPECT_FALSE(loadMappingAuto(Path, M, &Err));
  EXPECT_EQ(Err.Status, MappingIOStatus::Malformed);
  std::remove(Path.c_str());
  EXPECT_FALSE(loadMappingAuto(Path, M, &Err));
  EXPECT_EQ(Err.Status, MappingIOStatus::IoError);
}

//===----------------------------------------------------------------------===//
// Protocol codecs.
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, QueryRoundTrip) {
  QueryRequest Req;
  Req.Machine = "skl";
  Req.Kernels = {"ADD_0", "ADD_0^2 LOAD_0", ""};
  auto Decoded = decodeQueryRequest(encodeQueryRequest(Req));
  ASSERT_TRUE(Decoded);
  EXPECT_EQ(Decoded->Machine, Req.Machine);
  EXPECT_EQ(Decoded->Kernels, Req.Kernels);

  QueryResponse Resp;
  KernelAnswer A;
  A.S = KernelAnswer::Status::Ok;
  A.Ipc = 3.14159;
  A.Bottlenecks = {"r01", "r0"};
  Resp.Answers.push_back(A);
  A.S = KernelAnswer::Status::ParseError;
  A.Ipc = 0.0;
  A.Bottlenecks.clear();
  Resp.Answers.push_back(A);
  auto DecodedResp = decodeQueryResponse(encodeQueryResponse(Resp));
  ASSERT_TRUE(DecodedResp);
  ASSERT_EQ(DecodedResp->Answers.size(), 2u);
  EXPECT_EQ(DecodedResp->Answers[0].S, KernelAnswer::Status::Ok);
  EXPECT_TRUE(sameBits(DecodedResp->Answers[0].Ipc, 3.14159));
  EXPECT_EQ(DecodedResp->Answers[0].Bottlenecks,
            (std::vector<std::string>{"r01", "r0"}));
  EXPECT_EQ(DecodedResp->Answers[1].S, KernelAnswer::Status::ParseError);
}

TEST(ServeProtocol, RejectsMalformedPayloads) {
  QueryRequest Req;
  Req.Machine = "skl";
  Req.Kernels = {"ADD_0"};
  std::string Bytes = encodeQueryRequest(Req);
  // Truncations and trailing garbage must both fail to decode.
  for (size_t Keep = 0; Keep < Bytes.size(); ++Keep)
    EXPECT_FALSE(decodeQueryRequest(Bytes.substr(0, Keep)))
        << "kept " << Keep;
  EXPECT_FALSE(decodeQueryRequest(Bytes + "x"));
  // A different message type is not a query request.
  EXPECT_FALSE(decodeQueryRequest(encodeStatsRequest()));
  EXPECT_TRUE(decodeQueryRequest(Bytes));

  EXPECT_FALSE(peekType(""));
  EXPECT_FALSE(peekType(std::string(1, '\x63')));
  EXPECT_EQ(peekType(Bytes), MsgType::QueryRequest);
}

TEST(ServeProtocol, ErrorAndListRoundTrip) {
  auto Err = decodeErrorResponse(encodeErrorResponse({"boom"}));
  ASSERT_TRUE(Err);
  EXPECT_EQ(Err->Message, "boom");

  ListResponse L;
  MachineInfo Info;
  Info.Name = "fig1";
  Info.Digest = 0x0123456789abcdefull;
  Info.NumResources = 6;
  Info.NumMapped = 6;
  L.Machines.push_back(Info);
  auto Decoded = decodeListResponse(encodeListResponse(L));
  ASSERT_TRUE(Decoded);
  ASSERT_EQ(Decoded->Machines.size(), 1u);
  EXPECT_EQ(Decoded->Machines[0].Name, "fig1");
  EXPECT_EQ(Decoded->Machines[0].Digest, 0x0123456789abcdefull);
  EXPECT_EQ(Decoded->Machines[0].NumResources, 6u);
  EXPECT_EQ(Decoded->Machines[0].NumMapped, 6u);
}

TEST(ServeProtocol, OversizedStringsTruncateToDecodableFrames) {
  // 16-bit-length strings past 64 KiB must truncate, not emit a record
  // whose length prefix disagrees with its body (an undecodable frame).
  ErrorResponse E;
  E.Message.assign(100000, 'x');
  auto Decoded = decodeErrorResponse(encodeErrorResponse(E));
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_EQ(Decoded->Message.size(), 65535u);
  EXPECT_EQ(Decoded->Message, E.Message.substr(0, 65535));
}

//===----------------------------------------------------------------------===//
// PredictionCache.
//===----------------------------------------------------------------------===//

TEST(ServeCache, ComputesOncePerKey) {
  PredictionCache Cache;
  int Calls = 0;
  auto Compute = [&] {
    ++Calls;
    Prediction P;
    P.Ipc = 4.0;
    return P;
  };
  bool Hit = true;
  EXPECT_EQ(Cache.getOrCompute("k", Compute, &Hit).Ipc, 4.0);
  EXPECT_FALSE(Hit);
  EXPECT_EQ(Cache.getOrCompute("k", Compute, &Hit).Ipc, 4.0);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(Cache.size(), 1u);

  Prediction Out;
  EXPECT_TRUE(Cache.lookup("k", Out));
  EXPECT_EQ(Out.Ipc, 4.0);
  EXPECT_FALSE(Cache.lookup("other", Out));
}

TEST(ServeCacheConcurrency, ExactlyOnceUnderContention) {
  PredictionCache Cache;
  constexpr int NumThreads = 8;
  constexpr int KeysPerThread = 64;
  std::atomic<int> Computes{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int K = 0; K < KeysPerThread; ++K) {
        std::string Key = "kernel-" + std::to_string(K);
        Prediction P = Cache.getOrCompute(Key, [&] {
          Computes.fetch_add(1);
          Prediction Q;
          Q.Ipc = static_cast<double>(K);
          return Q;
        });
        EXPECT_EQ(P.Ipc, static_cast<double>(K));
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Computes.load(), KeysPerThread);
  EXPECT_EQ(Cache.size(), static_cast<size_t>(KeysPerThread));
}

//===----------------------------------------------------------------------===//
// Server + Client over a real socket.
//===----------------------------------------------------------------------===//

namespace {

/// A daemon serving fig1 + skl duals on a temp socket, torn down on
/// destruction the same way palmed_serve's SIGTERM path does.
struct ServerFixture {
  MachineModel Fig1 = makeFig1Machine();
  MachineModel Skl = makeSklLike();
  ResourceMapping Fig1Map = buildDualMapping(Fig1);
  ResourceMapping SklMap = buildDualMapping(Skl);
  std::string Socket = tempPath("serve_test_" + std::to_string(::getpid()) +
                                ".sock");
  Server S;
  std::thread ServeThread;

  explicit ServerFixture(unsigned Threads = 2)
      : S([&] {
          ServerConfig C;
          C.SocketPath = Socket;
          C.NumThreads = Threads;
          return C;
        }()) {
    S.addMachine("fig1", Fig1, Fig1Map);
    S.addMachine("skl", Skl, SklMap);
    S.bind();
    ServeThread = std::thread([this] { S.serve(); });
  }

  ~ServerFixture() {
    S.requestStop();
    ServeThread.join();
  }
};

} // namespace

TEST(ServeServer, ServesTwoMachinesConcurrently) {
  ServerFixture F;
  const std::vector<std::string> Fig1Kernels = {"ADDSS", "ADDSS^2 VCVTT",
                                                "BSR ADDSS", "ADDSS"};
  const std::vector<std::string> SklKernels = {"ADD_0", "ADD_0^2 LOAD_0",
                                               "STORE_0", "ADD_0"};

  auto ExpectIpc = [](const MachineModel &M, const ResourceMapping &Map,
                      const std::string &Text) {
    auto K = Microkernel::parse(Text, M.isa());
    EXPECT_TRUE(K.has_value());
    auto Ipc = Map.predictIpc(*K);
    EXPECT_TRUE(Ipc.has_value());
    return *Ipc;
  };

  constexpr int NumClients = 4;
  std::vector<std::thread> Clients;
  std::atomic<int> Failures{0};
  for (int T = 0; T < NumClients; ++T)
    Clients.emplace_back([&, T] {
      Client C;
      if (!C.connect(F.Socket)) {
        ++Failures;
        return;
      }
      bool UseFig1 = (T % 2) == 0;
      const auto &Kernels = UseFig1 ? Fig1Kernels : SklKernels;
      const MachineModel &M = UseFig1 ? F.Fig1 : F.Skl;
      const ResourceMapping &Map = UseFig1 ? F.Fig1Map : F.SklMap;
      for (int Round = 0; Round < 8; ++Round) {
        auto R = C.query(UseFig1 ? "fig1" : "skl", Kernels);
        if (!R || R->Answers.size() != Kernels.size()) {
          ++Failures;
          return;
        }
        for (size_t I = 0; I < Kernels.size(); ++I) {
          if (R->Answers[I].S != KernelAnswer::Status::Ok ||
              !sameBits(R->Answers[I].Ipc, ExpectIpc(M, Map, Kernels[I])))
            ++Failures;
        }
      }
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  ServerTotals Totals = F.S.totals();
  EXPECT_EQ(Totals.Connections, static_cast<uint64_t>(NumClients));
  EXPECT_EQ(Totals.Requests, static_cast<uint64_t>(NumClients * 8));
  // 4 kernels per request, one a duplicate: 3 distinct per machine, and
  // every kernel beyond the first computation is a hit.
  EXPECT_EQ(Totals.CacheMisses, 6u);
  EXPECT_EQ(Totals.CacheHits + Totals.CacheMisses, Totals.Kernels);
}

TEST(ServeServer, ReportsErrorsAndStatuses) {
  ServerFixture F(/*Threads=*/1);
  Client C;
  ASSERT_TRUE(C.connect(F.Socket)) << C.lastError();

  // Unknown machine: typed server error naming the roster.
  EXPECT_FALSE(C.query("nope", {"ADDSS"}));
  EXPECT_NE(C.lastError().find("unknown machine 'nope'"), std::string::npos)
      << C.lastError();
  EXPECT_NE(C.lastError().find("fig1"), std::string::npos);

  // The connection survives the error; per-kernel failures are statuses,
  // not connection errors.
  auto R = C.query("fig1", {"ADDSS", "NO_SUCH_INSTR", ""});
  ASSERT_TRUE(R) << C.lastError();
  EXPECT_EQ(R->Answers[0].S, KernelAnswer::Status::Ok);
  EXPECT_EQ(R->Answers[1].S, KernelAnswer::Status::ParseError);
  EXPECT_NE(R->Answers[2].S, KernelAnswer::Status::Ok);

  // An unmapped instruction is Unsupported, not an error.
  {
    ResourceMapping Partial(F.Fig1.isa().size());
    ResourceId Res = Partial.addResource("r0");
    Partial.setUsage(F.Fig1.isa().findByName("ADDSS"), Res, 0.5);
    ServerConfig C2;
    C2.SocketPath = F.Socket + ".partial";
    Server S2(C2);
    S2.addMachine("partial", F.Fig1, Partial);
    uint64_t Hits = 0, Misses = 0;
    std::string Error;
    QueryRequest Req;
    Req.Machine = "partial";
    // The mixed kernel exercises the release-safety regression: BSR has no
    // row entries at all in the ragged partial mapping, and the old serve
    // path reached predictCycles' unchecked rho reads for it. It must come
    // back Unsupported, never garbage or a crash.
    Req.Kernels = {"ADDSS", "BSR", "ADDSS BSR"};
    QueryResponse Resp = S2.evaluate(Req, &Hits, &Misses, &Error);
    EXPECT_TRUE(Error.empty()) << Error;
    ASSERT_EQ(Resp.Answers.size(), 3u);
    EXPECT_EQ(Resp.Answers[0].S, KernelAnswer::Status::Ok);
    EXPECT_EQ(Resp.Answers[1].S, KernelAnswer::Status::Unsupported);
    EXPECT_EQ(Resp.Answers[2].S, KernelAnswer::Status::Unsupported);
    // The batch engine behind the serve path must agree bit for bit with
    // the scalar mapping on the kernel it does support.
    auto K = Microkernel::parse("ADDSS", F.Fig1.isa());
    ASSERT_TRUE(K);
    auto Want = Partial.predictIpc(*K);
    ASSERT_TRUE(Want);
    EXPECT_EQ(Resp.Answers[0].Ipc, *Want);
  }

  // Stats and list round-trip with sane values.
  auto Stats = C.stats();
  ASSERT_TRUE(Stats) << C.lastError();
  auto Find = [&](const std::string &Key) -> double {
    for (const auto &[K, V] : Stats->Counters)
      if (K == Key)
        return V;
    ADD_FAILURE() << "missing counter " << Key;
    return -1.0;
  };
  EXPECT_EQ(Find("conn.requests"), 1.0); // The error reply doesn't count.
  EXPECT_EQ(Find("conn.kernels"), 3.0);
  EXPECT_EQ(Find("server.machines"), 2.0);
  EXPECT_GT(Find("conn.qps"), 0.0);
  EXPECT_GE(Find("conn.p99_us"), Find("conn.p50_us"));

  auto List = C.list();
  ASSERT_TRUE(List) << C.lastError();
  ASSERT_EQ(List->Machines.size(), 2u);
  EXPECT_EQ(List->Machines[0].Name, "fig1");
  EXPECT_EQ(List->Machines[0].Digest, machineDigest(F.Fig1));
  EXPECT_EQ(List->Machines[1].Name, "skl");
}

TEST(ServeServer, BatchDedupesWithinRequest) {
  ServerFixture F(/*Threads=*/1);
  uint64_t Hits = 0, Misses = 0;
  std::string Error;
  QueryRequest Req;
  Req.Machine = "fig1";
  Req.Kernels.assign(100, "ADDSS^3 BSR");
  QueryResponse R = F.S.evaluate(Req, &Hits, &Misses, &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(R.Answers.size(), 100u);
  EXPECT_EQ(Misses, 1u);
  EXPECT_EQ(Hits, 99u);
  for (const KernelAnswer &A : R.Answers)
    EXPECT_TRUE(sameBits(A.Ipc, R.Answers[0].Ipc));
}

TEST(ServeServer, DuplicateMachineNameThrows) {
  ServerConfig C;
  C.SocketPath = tempPath("dup.sock");
  Server S(C);
  MachineModel M = makeFig1Machine();
  S.addMachine("fig1", M, buildDualMapping(M));
  EXPECT_THROW(S.addMachine("fig1", M, buildDualMapping(M)),
               std::invalid_argument);
}

TEST(ServeServer, SurvivesClientClosingBeforeResponse) {
  ServerFixture F(/*Threads=*/1);
  // A client that sends a query and disconnects without reading forces
  // the server to write into a closed socket. That must surface as a
  // dropped connection (EPIPE), not a SIGPIPE killing the process.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(F.Socket.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, F.Socket.c_str(), F.Socket.size() + 1);
  for (int Round = 0; Round < 4; ++Round) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)),
              0);
    QueryRequest Req;
    Req.Machine = "fig1";
    // Fresh kernels each round so the server computes (not just appends
    // cached bytes), widening the window where the close wins the race.
    Req.Kernels.assign(64, "ADDSS^" + std::to_string(Round + 2) + " BSR");
    ASSERT_TRUE(writeFrame(Fd, encodeQueryRequest(Req)));
    ::close(Fd); // Gone before the response.
  }
  // The daemon is still alive and serving.
  Client C;
  ASSERT_TRUE(C.connect(F.Socket)) << C.lastError();
  auto R = C.query("fig1", {"ADDSS"});
  ASSERT_TRUE(R) << C.lastError();
  EXPECT_EQ(R->Answers[0].S, KernelAnswer::Status::Ok);
}

TEST(ServeServer, ListResponseIsByteIdenticalAcrossInsertionOrder) {
  // The list response is part of the determinism surface: two servers
  // configured with the same machines must answer `list` with identical
  // bytes regardless of the order addMachine() was called in. This is
  // what the determinism lint's unordered-iter rule guards at the code
  // level; here it is pinned at the wire level.
  MachineModel Fig1 = makeFig1Machine();
  MachineModel Skl = makeSklLike();
  ResourceMapping Fig1Map = buildDualMapping(Fig1);
  ResourceMapping SklMap = buildDualMapping(Skl);

  auto listBytes = [&](bool Fig1First) {
    ServerConfig C;
    C.SocketPath = "/unused-never-bound";
    C.NumThreads = 1;
    Server S(C);
    if (Fig1First) {
      S.addMachine("fig1", Fig1, Fig1Map);
      S.addMachine("skl", Skl, SklMap);
    } else {
      S.addMachine("skl", Skl, SklMap);
      S.addMachine("fig1", Fig1, Fig1Map);
    }
    Server::ConnectionState Conn;
    return S.dispatchPayload(encodeListRequest(), Conn);
  };

  std::string A = listBytes(/*Fig1First=*/true);
  std::string B = listBytes(/*Fig1First=*/false);
  EXPECT_EQ(A, B);
  auto L = decodeListResponse(A);
  ASSERT_TRUE(L);
  ASSERT_EQ(L->Machines.size(), 2u);
  EXPECT_EQ(L->Machines[0].Name, "fig1"); // Sorted by name, not insertion.
  EXPECT_EQ(L->Machines[1].Name, "skl");
}

TEST(ServeProtocol, QueryRequestDeclaredCountBombRegression) {
  // Found while fuzzing: a 16-byte frame can declare 2^32-1 kernel
  // records, and reserve(N) on the declared count tried to allocate
  // tens of gigabytes before the first record failed to parse. Decoders
  // now clamp reserves to what the remaining bytes could possibly hold.
  std::string Bomb = encodeQueryRequest({/*Machine=*/"fig1", {}});
  ASSERT_GE(Bomb.size(), 4u);
  for (size_t I = 0; I < 4; ++I)
    Bomb[Bomb.size() - 4 + I] = '\xff';
  EXPECT_FALSE(decodeQueryRequest(Bomb));

  QueryResponse Empty;
  std::string RespBomb = encodeQueryResponse(Empty);
  ASSERT_GE(RespBomb.size(), 4u);
  for (size_t I = 0; I < 4; ++I)
    RespBomb[RespBomb.size() - 4 + I] = '\xff';
  EXPECT_FALSE(decodeQueryResponse(RespBomb));
}

TEST(ServeMappingIO, FromTextRejectsNonFiniteValuesRegression) {
  // Found while fuzzing loadMappingAuto: the text parser accepted
  // resource throughputs and edge weights the binary loader rejects
  // (non-finite, non-positive throughput; negative/NaN edges), so a
  // hostile text mapping could smuggle values that break the
  // serialize/deserialize round-trip invariant. Both loaders now apply
  // the same rules.
  MachineModel M = makeFig1Machine();
  MappingIOError Err;
  const char *Header = "palmed-mapping v1\nresources 1\n";
  for (const char *Body : {
           "resource r0 nan\n",                      // non-finite throughput
           "resource r0 inf\n",                      //
           "resource r0 0\n",                        // non-positive
           "resource r0 -1.5\n",                     //
           "resource r0 1.5\ninstr ADDSS 0:nan\n",   // non-finite edge
           "resource r0 1.5\ninstr ADDSS 0:-2\n",    // negative edge
           "resource r0 1.5\ninstr ADDSS 99:1\n",    // out-of-range resource
           // A resource index that overflows size_t used to be UB in
           // sscanf("%zu"); it must now be a clean parse failure.
           "resource r0 1.5\ninstr ADDSS 99999999999999999999:1\n",
       }) {
    std::string Text = std::string(Header) + Body;
    EXPECT_FALSE(deserializeMappingAuto(Text, M, &Err)) << Body;
    EXPECT_EQ(Err.Status, MappingIOStatus::Malformed) << Body;
  }
  // The well-formed equivalent still loads.
  std::string Good = std::string(Header) +
                     "resource r0 1.5\ninstr ADDSS 0:0.5\n";
  EXPECT_TRUE(deserializeMappingAuto(Good, M, &Err)) << Err.Message;
}

TEST(ServeMappingIO, DeserializeAutoMatchesLoadAuto) {
  // deserializeMappingAuto is the byte-level core the fuzz_mapping_io
  // harness drives; it must accept exactly what loadMappingAuto accepts
  // from a file, for both the binary and the legacy text form.
  MachineModel M = makeFig1Machine();
  ResourceMapping Mapping = buildDualMapping(M);
  MappingIOError Err;
  auto FromBinary = deserializeMappingAuto(serializeMapping(Mapping, M), M,
                                           &Err);
  ASSERT_TRUE(FromBinary) << Err.Message;
  EXPECT_EQ(FromBinary->toText(M.isa()), Mapping.toText(M.isa()));
  auto FromText = deserializeMappingAuto(Mapping.toText(M.isa()), M, &Err);
  ASSERT_TRUE(FromText) << Err.Message;
  EXPECT_EQ(FromText->toText(M.isa()), Mapping.toText(M.isa()));
  EXPECT_FALSE(deserializeMappingAuto("neither binary nor text", M, &Err));
  EXPECT_EQ(Err.Status, MappingIOStatus::Malformed);
}

TEST(ServeServer, ZeroLatencySampleConfigIsClamped) {
  MachineModel M = makeFig1Machine();
  ServerConfig C;
  C.SocketPath = tempPath("serve_lat0_" + std::to_string(::getpid()) +
                          ".sock");
  C.NumThreads = 1;
  C.MaxLatencySamples = 0; // Must not divide by zero in the latency ring.
  Server S(C);
  S.addMachine("fig1", M, buildDualMapping(M));
  S.bind();
  std::thread Serve([&] { S.serve(); });
  {
    Client Cl;
    ASSERT_TRUE(Cl.connect(C.SocketPath)) << Cl.lastError();
    for (int I = 0; I < 3; ++I)
      ASSERT_TRUE(Cl.query("fig1", {"ADDSS"})) << Cl.lastError();
    auto Stats = Cl.stats();
    ASSERT_TRUE(Stats) << Cl.lastError();
  }
  S.requestStop();
  Serve.join();
}
