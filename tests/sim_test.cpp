//===- tests/sim_test.cpp - Oracle and simulator tests --------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/StandardMachines.h"
#include "machine/SyntheticIsa.h"
#include "sim/AnalyticOracle.h"
#include "sim/BenchmarkRunner.h"
#include "sim/EventSimulator.h"
#include "support/Executor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace palmed;

namespace {

InstrId idOf(const MachineModel &M, const std::string &Name) {
  InstrId Id = M.isa().findByName(Name);
  EXPECT_NE(Id, InvalidInstr) << Name;
  return Id;
}

} // namespace

// ---------------------------------------------------- AnalyticOracle (Fig 2)

TEST(AnalyticOracle, PaperFig2aAddssSquaredBsr) {
  // ADDSS^2 BSR: ports p0+p1 saturated, 3 instructions / 1.5 cycles = IPC 2.
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  Microkernel K;
  K.add(idOf(M, "ADDSS"), 2.0);
  K.add(idOf(M, "BSR"), 1.0);
  EXPECT_NEAR(O.measureCycles(K), 1.5, 1e-9);
  EXPECT_NEAR(O.measureIpc(K), 2.0, 1e-9);
}

TEST(AnalyticOracle, PaperFig2bAddssBsrSquared) {
  // ADDSS BSR^2: p1 is the bottleneck, IPC 1.5.
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  Microkernel K;
  K.add(idOf(M, "ADDSS"), 1.0);
  K.add(idOf(M, "BSR"), 2.0);
  EXPECT_NEAR(O.measureCycles(K), 2.0, 1e-9);
  EXPECT_NEAR(O.measureIpc(K), 1.5, 1e-9);
}

TEST(AnalyticOracle, SoloThroughputsOfFig1) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  auto Ipc = [&](const char *Name) {
    return O.measureIpc(Microkernel::single(idOf(M, Name)));
  };
  EXPECT_NEAR(Ipc("DIVPS"), 1.0, 1e-9);
  EXPECT_NEAR(Ipc("VCVTT"), 1.0, 1e-9); // Two µOPs over two ports.
  EXPECT_NEAR(Ipc("ADDSS"), 2.0, 1e-9);
  EXPECT_NEAR(Ipc("BSR"), 1.0, 1e-9);
  EXPECT_NEAR(Ipc("JNLE"), 2.0, 1e-9);
  EXPECT_NEAR(Ipc("JMP"), 1.0, 1e-9);
}

TEST(AnalyticOracle, OccupancyLimitsThroughput) {
  // A divider with occupancy 4 on one port: IPC 0.25.
  MachineBuilder B("div");
  B.addPort("p0");
  InstrId Div = B.addSimpleInstruction(
      {"DIV", ExtClass::Base, InstrCategory::IntDiv}, portMask({0}), 4.0);
  MachineModel M = B.build();
  AnalyticOracle O(M);
  EXPECT_NEAR(O.measureIpc(Microkernel::single(Div)), 0.25, 1e-9);
}

TEST(AnalyticOracle, FrontEndCapsIpc) {
  MachineBuilder B("fe");
  for (int P = 0; P < 6; ++P)
    B.addPort("p" + std::to_string(P));
  B.setDecodeWidth(4);
  InstrId Add = B.addSimpleInstruction(
      {"ADD", ExtClass::Base, InstrCategory::IntAlu},
      portMask({0, 1, 2, 3, 4, 5}));
  MachineModel M = B.build();
  AnalyticOracle O(M);
  // Six ports available but the decoder feeds only four per cycle.
  EXPECT_NEAR(O.measureIpc(Microkernel::single(Add)), 4.0, 1e-9);
}

TEST(AnalyticOracle, MixPenaltyApplies) {
  MachineBuilder B("mix");
  B.addPort("p0");
  B.addPort("p1");
  B.setExtMixPenalty(0.5);
  InstrId S = B.addSimpleInstruction(
      {"SSEOP", ExtClass::Sse, InstrCategory::FpAdd}, portMask({0}));
  InstrId A = B.addSimpleInstruction(
      {"AVXOP", ExtClass::Avx, InstrCategory::FpAdd}, portMask({1}));
  MachineModel M = B.build();
  AnalyticOracle O(M);
  Microkernel K;
  K.add(S, 1.0);
  K.add(A, 1.0);
  // Without penalty IPC would be 2; the 1.5x slowdown gives 4/3.
  EXPECT_NEAR(O.measureIpc(K), 2.0 / 1.5, 1e-9);
}

TEST(AnalyticOracle, ScaleInvariance) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  Microkernel K;
  K.add(0, 1.0);
  K.add(5, 2.0);
  double I1 = O.measureIpc(K);
  double I2 = O.measureIpc(K.scaled(7.0));
  EXPECT_NEAR(I1, I2, 1e-9);
}

// ------------------------------------------------------------ EventSimulator

TEST(EventSimulator, MatchesAnalyticOnFig1Kernels) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle Exact(M);
  EventSimulator Sim(M);
  Microkernel K;
  K.add(idOf(M, "ADDSS"), 2.0);
  K.add(idOf(M, "BSR"), 1.0);
  EXPECT_NEAR(Sim.measureIpc(K), Exact.measureIpc(K), 0.05 * 2.0);
}

/// Property: the greedy cycle-level simulator lands within a few percent of
/// the LP-optimal steady state on random machines and kernels — validating
/// the paper's optimal-scheduler assumption for dependency-free kernels.
class SimulatorOptimality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorOptimality, CloseToAnalytic) {
  Rng R(GetParam());
  MachineModel M = makeRandomMachine(R, 2 + R.uniformInt(4),
                                     4 + R.uniformInt(8),
                                     /*AllowOccupancy=*/false);
  AnalyticOracle Exact(M);
  EventSimConfig Cfg;
  Cfg.Iterations = 400;
  Cfg.WarmupIterations = 50;
  EventSimulator Sim(M, Cfg);

  Microkernel K;
  size_t Terms = 1 + R.uniformInt(3);
  for (size_t T = 0; T < Terms; ++T)
    K.add(static_cast<InstrId>(R.uniformInt(M.numInstructions())),
          static_cast<double>(1 + R.uniformInt(3)));

  double Ref = Exact.measureIpc(K);
  double Measured = Sim.measureIpc(K);
  // Greedy scheduling may be mildly suboptimal but must be close, and can
  // never beat the optimum by more than discretization noise.
  EXPECT_LE(Measured, Ref * 1.02);
  EXPECT_GE(Measured, Ref * 0.85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOptimality,
                         ::testing::Range(uint64_t{1}, uint64_t{30}));

// ------------------------------------------------------------ BenchmarkRunner

TEST(BenchmarkRunner, CachesAndCounts) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Microkernel K = Microkernel::single(idOf(M, "ADDSS"));
  double A = Runner.measureIpc(K);
  double B = Runner.measureIpc(K);
  EXPECT_DOUBLE_EQ(A, B);
  EXPECT_EQ(Runner.numDistinctBenchmarks(), 1u);
  Runner.measureIpc(Microkernel::single(idOf(M, "BSR")));
  EXPECT_EQ(Runner.numDistinctBenchmarks(), 2u);
}

TEST(BenchmarkRunner, NoiseIsDeterministicAndBounded) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkConfig Cfg;
  Cfg.NoiseStdDev = 0.02;
  BenchmarkRunner R1(M, O, Cfg), R2(M, O, Cfg);
  Microkernel K = Microkernel::single(idOf(M, "ADDSS"));
  double A = R1.measureIpc(K);
  double B = R2.measureIpc(K);
  EXPECT_DOUBLE_EQ(A, B); // Same seed, same kernel: same noise.
  EXPECT_NEAR(A, 2.0, 2.0 * 0.15);
}

TEST(BenchmarkRunner, RejectsMixedExtensions) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Microkernel K;
  K.add(idOf(M, "ADDSS_0"), 1.0);  // SSE.
  K.add(idOf(M, "VADDPS_0"), 1.0); // AVX.
  EXPECT_FALSE(Runner.accepts(K));
  Microkernel Base;
  Base.add(idOf(M, "ADD_0"), 1.0);
  Base.add(idOf(M, "ADDSS_0"), 1.0);
  EXPECT_TRUE(Runner.accepts(Base)); // Base + SSE is fine.
}

TEST(BenchmarkRunner, RoundsFractionalKernels) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  Microkernel K;
  K.add(idOf(M, "ADDSS"), 1.5);
  K.add(idOf(M, "BSR"), 1.0);
  // IPC is scale invariant, so rounding (x2) must not change the result.
  EXPECT_NEAR(Runner.measureIpc(K), O.measureIpc(K), 1e-9);
}

// --------------------------------------------- BenchmarkRunner concurrency

namespace {

/// Thread-safe backend that counts how often the runner actually reaches
/// it, for asserting the concurrent cache's exactly-once guarantee.
class CountingOracle : public ThroughputOracle {
public:
  explicit CountingOracle(const MachineModel &M) : Inner(M) {}
  double measureIpc(const Microkernel &K) override {
    Calls.fetch_add(1, std::memory_order_relaxed);
    return Inner.measureIpc(K);
  }
  std::string name() const override { return "counting"; }
  bool isThreadSafe() const override { return true; }
  long calls() const { return Calls.load(); }

private:
  AnalyticOracle Inner;
  std::atomic<long> Calls{0};
};

} // namespace

TEST(BenchmarkRunnerConcurrency, HammerDedupesAndMatchesSerial) {
  MachineModel M = makeSklLike();

  // A few hundred overlapping kernels: solos plus same-extension pairs.
  std::vector<Microkernel> Kernels;
  const auto Ids = M.isa().allIds();
  for (size_t I = 0; I < Ids.size(); I += 2)
    Kernels.push_back(Microkernel::single(Ids[I]));
  for (size_t I = 0; I + 7 < Ids.size(); I += 5) {
    Microkernel K;
    K.add(Ids[I], 2.0);
    K.add(Ids[I + 7], 1.0);
    Microkernel Probe;
    Probe.add(Ids[I], 1.0);
    Probe.add(Ids[I + 7], 1.0);
    if (!M.kernelMixesExtensions(Probe))
      Kernels.push_back(std::move(K));
  }
  ASSERT_GT(Kernels.size(), 100u);

  // Serial reference values, with measurement noise enabled so the noisy
  // path is covered too.
  BenchmarkConfig Cfg;
  Cfg.NoiseStdDev = 0.02;
  std::vector<double> Reference(Kernels.size());
  {
    AnalyticOracle O(M);
    BenchmarkRunner Serial(M, O, Cfg);
    for (size_t K = 0; K < Kernels.size(); ++K)
      Reference[K] = Serial.measureIpc(Kernels[K]);
  }

  // Hammer one runner from 8 threads, every thread measuring the full
  // kernel list starting at a different offset so identical kernels are
  // requested concurrently.
  CountingOracle Backend(M);
  BenchmarkRunner Runner(M, Backend, Cfg);
  constexpr unsigned NumThreads = 8;
  std::vector<std::vector<double>> Got(
      NumThreads, std::vector<double>(Kernels.size()));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (size_t I = 0; I < Kernels.size(); ++I) {
        size_t K = (I + T * 37) % Kernels.size();
        Got[T][K] = Runner.measureIpc(Kernels[K]);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  // Exactly-once backend traffic, bit-identical values on every thread.
  EXPECT_EQ(Backend.calls(), static_cast<long>(Kernels.size()));
  EXPECT_EQ(Runner.numDistinctBenchmarks(), Kernels.size());
  for (unsigned T = 0; T < NumThreads; ++T)
    for (size_t K = 0; K < Kernels.size(); ++K)
      EXPECT_DOUBLE_EQ(Got[T][K], Reference[K]) << "thread " << T
                                                << " kernel " << K;
}

TEST(BenchmarkRunnerConcurrency, SerializesNonThreadSafeBackends) {
  MachineModel M = makeFig1Machine();

  // A backend that detects concurrent entry.
  class TouchyOracle : public ThroughputOracle {
  public:
    explicit TouchyOracle(const MachineModel &M) : Inner(M) {}
    double measureIpc(const Microkernel &K) override {
      EXPECT_FALSE(Busy.exchange(true)) << "backend entered concurrently";
      double Ipc = Inner.measureIpc(K);
      Busy.store(false);
      return Ipc;
    }
    std::string name() const override { return "touchy"; }
    bool isThreadSafe() const override { return false; }

  private:
    AnalyticOracle Inner;
    std::atomic<bool> Busy{false};
  } Backend(M);

  BenchmarkRunner Runner(M, Backend);
  const auto Ids = M.isa().allIds();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 6; ++T)
    Threads.emplace_back([&, T] {
      for (int Round = 0; Round < 20; ++Round)
        for (InstrId Id : Ids)
          Runner.measureIpc(
              Microkernel::single(Id, 1.0 + ((Round + T) % 3)));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Runner.numDistinctBenchmarks(), Ids.size() * 3);
}

TEST(AnalyticOracle, BatchMatchesSerialOnExecutor) {
  MachineModel M = makeSklLike();
  AnalyticOracle Oracle(M);
  std::vector<Microkernel> Kernels;
  for (InstrId I = 0; I < 12; ++I) {
    Kernels.push_back(Microkernel::single(I));
    Microkernel K;
    K.add(I, 2.0);
    K.add((I + 5) % 12, 1.0);
    Kernels.push_back(K);
  }
  std::vector<double> Serial;
  for (const Microkernel &K : Kernels)
    Serial.push_back(Oracle.measureIpc(K));

  // Inline (no executor) and fanned-out results must be bit-identical to
  // the serial measurements: batching may not perturb the pipeline.
  std::vector<double> Inline = Oracle.measureIpcBatch(Kernels, nullptr);
  Executor Exec(4);
  std::vector<double> Parallel = Oracle.measureIpcBatch(Kernels, &Exec);
  ASSERT_EQ(Inline.size(), Serial.size());
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Inline[I], Serial[I]) << I;
    EXPECT_EQ(Parallel[I], Serial[I]) << I;
  }
}
