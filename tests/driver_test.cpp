//===- tests/driver_test.cpp - End-to-end pipeline tests ------------------===//
//
// Part of the PALMED reproduction.
//
// The decisive integration tests: run the full Palmed pipeline against the
// simulated machines and check that the inferred resource mapping predicts
// throughput accurately — something the paper can only validate
// statistically, but which the simulator's known ground truth lets us
// check directly.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"
#include "support/Rng.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace palmed;

namespace {

/// Relative prediction error of the mapping on kernel \p K.
double relError(const ResourceMapping &Map, AnalyticOracle &Oracle,
                const Microkernel &K) {
  auto Pred = Map.predictIpc(K);
  EXPECT_TRUE(Pred.has_value());
  if (!Pred)
    return 1.0;
  double Native = Oracle.measureIpc(K);
  return std::abs(*Pred - Native) / Native;
}

} // namespace

TEST(PalmedFig1, RecoversAccurateMapping) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);

  PalmedResult R = Pipeline(Runner).run();

  // All six instructions mapped.
  EXPECT_EQ(R.Stats.NumMapped, 6u);
  // The resource count matches the paper's six (r0, r1, r6, r01, r06,
  // r016) within one (the shape search may fold the global resource).
  EXPECT_GE(R.Stats.NumResources, 5u);
  EXPECT_LE(R.Stats.NumResources, 7u);

  // The paper's two running-example kernels must be predicted accurately.
  InstrId Addss = M.isa().findByName("ADDSS");
  InstrId Bsr = M.isa().findByName("BSR");
  Microkernel K1;
  K1.add(Addss, 2.0);
  K1.add(Bsr, 1.0);
  EXPECT_NEAR(*R.Mapping.predictIpc(K1), 2.0, 0.1);
  Microkernel K2;
  K2.add(Addss, 1.0);
  K2.add(Bsr, 2.0);
  EXPECT_NEAR(*R.Mapping.predictIpc(K2), 1.5, 0.1);

  // Solo throughputs are reproduced for every instruction.
  for (InstrId Id = 0; Id < M.numInstructions(); ++Id) {
    Microkernel Solo = Microkernel::single(Id, 2.0);
    EXPECT_LT(relError(R.Mapping, O, Solo), 0.06) << M.isa().name(Id);
  }
}

TEST(PalmedFig1, RandomKernelAccuracy) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedResult R = Pipeline(Runner).run();

  Rng Rand(7);
  std::vector<double> Pred, Native;
  for (int Trial = 0; Trial < 60; ++Trial) {
    Microkernel K;
    size_t Terms = 1 + Rand.uniformInt(4);
    for (size_t T = 0; T < Terms; ++T)
      K.add(static_cast<InstrId>(Rand.uniformInt(M.numInstructions())),
            static_cast<double>(1 + Rand.uniformInt(3)));
    auto P = R.Mapping.predictIpc(K);
    ASSERT_TRUE(P.has_value());
    Pred.push_back(*P);
    Native.push_back(O.measureIpc(K));
  }
  // Paper-grade accuracy: sub-10% RMS error on the running example machine.
  EXPECT_LT(weightedRmsRelativeError(Pred, Native), 0.10);
  EXPECT_GT(kendallTau(Pred, Native), 0.85);
}

TEST(PalmedFig1, SaturatingKernelsSaturate) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedResult R = Pipeline(Runner).run();

  // Every resource's chosen saturating kernel must indeed have its highest
  // inferred load on some resource close to 1 (within the 5% tolerance
  // plus rounding slack).
  for (size_t Res = 0; Res < R.SaturatingKernels.size(); ++Res) {
    const Microkernel &S = R.SaturatingKernels[Res];
    if (S.empty())
      continue;
    double T = S.size() / Runner.measureIpc(S);
    double Load = 0.0;
    for (const auto &[Id, Mult] : S.terms()) {
      EXPECT_TRUE(R.Mapping.isMapped(Id));
      Load += Mult * R.Mapping.rho(Id, Res);
    }
    EXPECT_GT(Load / T, 0.80) << "resource " << Res;
  }
}

TEST(PalmedSkl, FullPipelineQuality) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);

  PalmedConfig Cfg;
  Cfg.Selection.NumBasicPerGroup = 8;
  PalmedResult R = Pipeline(Runner, Cfg).run();

  // Everything benchmarkable is mapped.
  EXPECT_EQ(R.Stats.NumMapped, R.Selection.Survivors.size());
  EXPECT_GT(R.Stats.NumMapped, 150u);
  // A sensible number of abstract resources. The paper finds 17 on real
  // SKL; we allow more because the SSE/AVX benchmark restriction prevents
  // merging the vector resources across extensions, and the refinement
  // keeps one resource per observed bottleneck pattern.
  EXPECT_GE(R.Stats.NumResources, 8u);
  EXPECT_LE(R.Stats.NumResources, 64u);

  // Accuracy on random same-extension kernels over the whole ISA.
  Rng Rand(21);
  std::vector<double> Pred, Native;
  for (int Trial = 0; Trial < 80; ++Trial) {
    Microkernel K;
    size_t Terms = 1 + Rand.uniformInt(5);
    for (size_t T = 0; T < Terms; ++T) {
      InstrId Id =
          static_cast<InstrId>(Rand.uniformInt(M.numInstructions()));
      if (!R.Mapping.isMapped(Id))
        continue;
      K.add(Id, static_cast<double>(1 + Rand.uniformInt(3)));
    }
    if (K.empty() || M.kernelMixesExtensions(K))
      continue;
    auto P = R.Mapping.predictIpc(K);
    if (!P)
      continue;
    Pred.push_back(*P);
    Native.push_back(O.measureIpc(K));
  }
  ASSERT_GT(Pred.size(), 40u);
  EXPECT_LT(weightedRmsRelativeError(Pred, Native), 0.20);
  EXPECT_GT(kendallTau(Pred, Native), 0.6);
}

TEST(PalmedSkl, LowIpcInstructionsAreMapped) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedConfig Cfg;
  Cfg.Selection.NumBasicPerGroup = 8;
  PalmedResult R = Pipeline(Runner, Cfg).run();

  // Dividers (IPC < 1) are excluded from the core but mapped by LPAUX,
  // with solo prediction close to native.
  InstrId Div = M.isa().findByName("DIV32_0");
  ASSERT_NE(Div, InvalidInstr);
  EXPECT_TRUE(R.Mapping.isMapped(Div));
  Microkernel Solo = Microkernel::single(Div, 1.0);
  auto P = R.Mapping.predictIpc(Solo);
  ASSERT_TRUE(P.has_value());
  EXPECT_NEAR(*P, O.measureIpc(Solo), 0.15 * O.measureIpc(Solo));
}

TEST(PalmedFig1, RobustToMeasurementNoise) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkConfig BCfg;
  BCfg.NoiseStdDev = 0.01;
  BenchmarkRunner Runner(M, O, BCfg);
  PalmedResult R = Pipeline(Runner).run();

  Rng Rand(9);
  std::vector<double> Pred, Native;
  for (int Trial = 0; Trial < 40; ++Trial) {
    Microkernel K;
    size_t Terms = 1 + Rand.uniformInt(3);
    for (size_t T = 0; T < Terms; ++T)
      K.add(static_cast<InstrId>(Rand.uniformInt(M.numInstructions())),
            static_cast<double>(1 + Rand.uniformInt(3)));
    auto P = R.Mapping.predictIpc(K);
    ASSERT_TRUE(P.has_value());
    Pred.push_back(*P);
    Native.push_back(O.measureIpc(K));
  }
  EXPECT_LT(weightedRmsRelativeError(Pred, Native), 0.15);
}

TEST(PalmedStats, TableTwoCountersPopulated) {
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedResult R = Pipeline(Runner).run();
  EXPECT_GT(R.Stats.NumBenchmarks, 20u);
  EXPECT_GT(R.Stats.NumCoreKernels, 10u);
  EXPECT_GT(R.Stats.NumShapeConstraints, 5u);
  EXPECT_EQ(R.Stats.NumBasic, 6u);
  EXPECT_GE(R.Stats.SelectionSeconds, 0.0);
  EXPECT_GT(R.Stats.CoreMappingSeconds, 0.0);
}

TEST(PalmedZen, SplitPipelineQuality) {
  // The ZEN1-like machine has disjoint integer and FP pipelines — the
  // structure the paper blames for Palmed's higher error there. The
  // pipeline must still produce a usable mapping.
  MachineModel M = makeZenLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedResult R = Pipeline(Runner).run();

  EXPECT_EQ(R.Stats.NumMapped, R.Selection.Survivors.size());
  EXPECT_GT(R.Stats.NumMapped, 100u);

  // Evaluate on workload-profile blocks (the paper's metric) rather than
  // uniform random mixes, which over-sample the divider corner cases.
  WorkloadConfig WCfg;
  WCfg.Profile = WorkloadProfile::SpecLike;
  WCfg.NumBlocks = 150;
  std::vector<double> Pred, Native, Weights;
  for (const BasicBlock &B : generateWorkload(M, WCfg)) {
    auto P = R.Mapping.predictIpc(B.K);
    if (!P)
      continue;
    Pred.push_back(*P);
    Native.push_back(O.measureIpc(B.K));
    Weights.push_back(B.Weight);
  }
  ASSERT_GT(Pred.size(), 100u);
  // Looser threshold than SKL, mirroring the paper's ZEN1 observation
  // (29.9% / 32.6% measured there).
  EXPECT_LT(weightedRmsRelativeError(Pred, Native, Weights), 0.35);
  EXPECT_GT(kendallTau(Pred, Native), 0.5);
}

/// Property: the whole pipeline stays sound on random machines — every
/// benchmarkable instruction gets mapped, solo predictions are good, and
/// random-kernel accuracy is sane.
class PalmedRandomMachine : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PalmedRandomMachine, EndToEndSoundness) {
  Rng R(GetParam());
  // Pipelined machines only: with mostly low-IPC instructions the basic
  // set degenerates and the mapping rightfully loses accuracy (no
  // measurement diversity to learn from).
  MachineModel M = makeRandomMachine(R, 3 + R.uniformInt(3),
                                     6 + R.uniformInt(6),
                                     /*AllowOccupancy=*/false);
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedConfig Cfg;
  Cfg.Selection.NumBasicPerGroup = 8;
  PalmedResult Res = Pipeline(Runner, Cfg).run();

  EXPECT_EQ(Res.Stats.NumMapped, Res.Selection.Survivors.size());

  std::vector<double> Pred, Native;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Microkernel K;
    size_t Terms = 1 + R.uniformInt(3);
    for (size_t T = 0; T < Terms; ++T) {
      InstrId Id = static_cast<InstrId>(R.uniformInt(M.numInstructions()));
      if (Res.Mapping.isMapped(Id))
        K.add(Id, static_cast<double>(1 + R.uniformInt(3)));
    }
    if (K.empty())
      continue;
    auto P = Res.Mapping.predictIpc(K);
    if (!P)
      continue;
    Pred.push_back(*P);
    Native.push_back(O.measureIpc(K));
  }
  ASSERT_GT(Pred.size(), 10u);
  EXPECT_LT(weightedRmsRelativeError(Pred, Native), 0.40)
      << "machine seed " << GetParam();
  EXPECT_GT(kendallTau(Pred, Native), 0.3) << "machine seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PalmedRandomMachine,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

/// Occupancy-heavy random machines: the pipeline must stay *complete*
/// (everything benchmarkable mapped, solo predictions never over-estimate
/// native throughput by more than the model tolerance) even when accuracy
/// on arbitrary mixes degrades.
class PalmedRandomOccupancy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PalmedRandomOccupancy, PipelineCompletes) {
  Rng R(GetParam());
  MachineModel M = makeRandomMachine(R, 3 + R.uniformInt(3),
                                     6 + R.uniformInt(6),
                                     /*AllowOccupancy=*/true);
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedResult Res = Pipeline(Runner).run();
  EXPECT_EQ(Res.Stats.NumMapped, Res.Selection.Survivors.size());
  // Solo throughputs: every prediction within a factor of two (hard model
  // soundness), and most within 10% (pathological machines may leave a few
  // non-pipelined bottlenecks unprobeable).
  size_t Total = 0, Accurate = 0;
  for (InstrId Id : Res.Selection.Survivors) {
    Microkernel Solo = Microkernel::single(Id, 1.0);
    auto P = Res.Mapping.predictIpc(Solo);
    if (!P)
      continue;
    double Native = O.measureIpc(Solo);
    // Loose hard bounds: an unprobeable non-pipelined bottleneck can be
    // over-estimated by up to its occupancy ratio (the same failure mode
    // port-mapping tools exhibit on dividers).
    EXPECT_GT(*P, 0.25 * Native)
        << "machine seed " << GetParam() << " instr " << M.isa().name(Id);
    EXPECT_LT(*P, 4.0 * Native)
        << "machine seed " << GetParam() << " instr " << M.isa().name(Id);
    ++Total;
    Accurate += std::abs(*P - Native) <= 0.10 * Native;
  }
  ASSERT_GT(Total, 0u);
  EXPECT_GE(static_cast<double>(Accurate) / Total, 0.6)
      << "machine seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PalmedRandomOccupancy,
                         ::testing::Range(uint64_t{20}, uint64_t{30}));

TEST(PalmedBeyondThirtyTwoBasics, SixGroupPipelineEndToEnd) {
  // A six-extension-group synthetic machine drives selection to
  // 6 x NumBasicPerGroup = 48 basic instructions — a shape problem the
  // historical uint32_t InstrIndexMask could not represent. The whole
  // pipeline (shape, weights, LPAUX) must run through it and produce an
  // accurate mapping, with the pruned selection keeping the quadratic
  // sweep in check.
  StressIsaConfig C;
  C.Name = "six-ext";
  C.NumPorts = 12;
  C.NumCategories = 36;
  C.VariantsPerCategory = 2;
  C.MemVariantsPerCategory = 1;
  C.NumExtensions = NumExtClasses;
  MachineModel M = makeStressMachine(C);
  AnalyticOracle Oracle(M);
  BenchmarkRunner Runner(M, Oracle);
  PalmedConfig Cfg;
  Cfg.Selection.ClusterPairPruning = true;
  PalmedResult R = Pipeline(Runner, Cfg).run();

  EXPECT_GT(R.Stats.NumBasic, 32u)
      << "profile failed to cross the historical basic-instruction wall";
  EXPECT_EQ(R.Stats.NumMapped, M.numInstructions());
  EXPECT_GT(R.Stats.NumResources, 0u);
  EXPECT_LT(R.Stats.PairBenchmarks, R.Stats.PairBenchmarksQuadratic);

  // Spot-check prediction quality on solo kernels of every extension
  // group (the coarse guarantee: the mapping is usable, not just built).
  RunningStats Err;
  for (InstrId Id : M.isa().allIds())
    if (Id % 17 == 0) {
      Microkernel K = Microkernel::single(Id, 1.0);
      Err.add(relError(R.Mapping, Oracle, K));
    }
  EXPECT_LT(Err.mean(), 0.10) << "mean solo-kernel error too high";
}
