//===- tests/lp_test.cpp - LP/MILP solver tests ---------------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "lp/Milp.h"
#include "lp/Simplex.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace palmed;
using namespace palmed::lp;

namespace {

LinearExpr expr(std::initializer_list<std::pair<VarId, double>> Terms) {
  LinearExpr E;
  for (const auto &[V, C] : Terms)
    E.add(V, C);
  return E;
}

} // namespace

// ------------------------------------------------------------------ Simplex

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum (2, 6) = 36.
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  M.addConstraint(expr({{X, 1}}), Sense::LE, 4);
  M.addConstraint(expr({{Y, 2}}), Sense::LE, 12);
  M.addConstraint(expr({{X, 3}, {Y, 2}}), Sense::LE, 18);
  M.setObjective(expr({{X, 3}, {Y, 5}}), Goal::Maximize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 36.0, 1e-7);
  EXPECT_NEAR(S.value(X), 2.0, 1e-7);
  EXPECT_NEAR(S.value(Y), 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGe) {
  // min x + 2y s.t. x + y >= 3, y >= 1. Optimum (2, 1) = 4.
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  M.addConstraint(expr({{X, 1}, {Y, 1}}), Sense::GE, 3);
  M.addConstraint(expr({{Y, 1}}), Sense::GE, 1);
  M.setObjective(expr({{X, 1}, {Y, 2}}), Goal::Minimize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 4.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 4, x >= 1. Optimum (1, 1.5) = 2.5.
  Model M;
  VarId X = M.addVar("x", 1.0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  M.addConstraint(expr({{X, 1}, {Y, 2}}), Sense::EQ, 4);
  M.setObjective(expr({{X, 1}, {Y, 1}}), Goal::Minimize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.5, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  M.addConstraint(expr({{X, 1}}), Sense::LE, 1);
  M.addConstraint(expr({{X, 1}}), Sense::GE, 2);
  M.setObjective(expr({{X, 1}}), Goal::Minimize);
  EXPECT_EQ(solveLp(M).Status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  EXPECT_EQ(solveLp(M).Status, SolveStatus::Unbounded);
}

TEST(Simplex, RespectsVariableBounds) {
  // max x + y with x in [0, 2], y in [1, 3]: optimum 5.
  Model M;
  VarId X = M.addVar("x", 0, 2);
  VarId Y = M.addVar("y", 1, 3);
  M.setObjective(expr({{X, 1}, {Y, 1}}), Goal::Maximize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 5.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x,y in [0,5]: maximize x gives x = 4 (y = 5).
  Model M;
  VarId X = M.addVar("x", 0, 5);
  VarId Y = M.addVar("y", 0, 5);
  M.addConstraint(expr({{X, 1}, {Y, -1}}), Sense::LE, -1);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.value(X), 4.0, 1e-7);
}

TEST(Simplex, BoundOverridesTighten) {
  Model M;
  VarId X = M.addVar("x", 0, 10);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  Solution S = solveLp(M, {{X, 0.0, 3.0}}, SimplexOptions());
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-7);
}

TEST(Simplex, BealeCyclingTerminatesBothPricings) {
  // Beale's classic cycling instance: Dantzig pricing without an
  // anti-cycling guard loops forever at the origin. Both solver flavors
  // must escape via the Bland fallback and reach the optimum -1/20.
  for (lp::LpPricing Pricing : {LpPricing::Devex, LpPricing::Dantzig}) {
    Model M;
    VarId X1 = M.addVar("x1", 0, Infinity);
    VarId X2 = M.addVar("x2", 0, Infinity);
    VarId X3 = M.addVar("x3", 0, Infinity);
    VarId X4 = M.addVar("x4", 0, Infinity);
    M.addConstraint(
        expr({{X1, 0.25}, {X2, -60.0}, {X3, -1.0 / 25.0}, {X4, 9.0}}),
        Sense::LE, 0.0);
    M.addConstraint(
        expr({{X1, 0.5}, {X2, -90.0}, {X3, -1.0 / 50.0}, {X4, 3.0}}),
        Sense::LE, 0.0);
    M.addConstraint(expr({{X3, 1.0}}), Sense::LE, 1.0);
    M.setObjective(
        expr({{X1, -0.75}, {X2, 150.0}, {X3, -1.0 / 50.0}, {X4, 6.0}}),
        Goal::Minimize);

    SimplexOptions Options;
    Options.Pricing = Pricing;
    Solution S = solveLp(M, {}, Options);
    ASSERT_EQ(S.Status, SolveStatus::Optimal);
    EXPECT_NEAR(S.Objective, -0.05, 1e-9);
  }
}

TEST(Simplex, CompatAndFastAgreeOnRandomBoundedLps) {
  // The two solver flavors must agree on status and optimal value (the
  // optimal vertex may legitimately differ on degenerate faces).
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    Rng R(Seed);
    int N = 1 + static_cast<int>(R.uniformInt(6));
    int Rows = 1 + static_cast<int>(R.uniformInt(6));
    Model M;
    std::vector<VarId> V;
    for (int I = 0; I < N; ++I) {
      double Lo = std::floor(R.uniformRealIn(-3.0, 3.0));
      double Hi = R.uniformInt(3) == 0
                      ? Infinity
                      : Lo + std::floor(R.uniformRealIn(0.0, 6.0));
      V.push_back(M.addVar("x", Lo, Hi));
    }
    for (int Row = 0; Row < Rows; ++Row) {
      LinearExpr E;
      for (int I = 0; I < N; ++I) {
        double C = std::floor(R.uniformRealIn(-4.0, 5.0));
        if (C != 0.0)
          E.add(V[static_cast<size_t>(I)], C);
      }
      Sense S = R.uniformInt(4) == 0
                    ? Sense::EQ
                    : (R.uniformInt(2) ? Sense::LE : Sense::GE);
      M.addConstraint(std::move(E), S, std::floor(R.uniformRealIn(-8.0, 12.0)));
    }
    LinearExpr Obj;
    for (int I = 0; I < N; ++I)
      Obj.add(V[static_cast<size_t>(I)], std::floor(R.uniformRealIn(-5.0, 6.0)));
    M.setObjective(std::move(Obj),
                   R.uniformInt(2) ? Goal::Maximize : Goal::Minimize);

    SimplexOptions Fast;
    SimplexOptions Compat;
    Compat.Pricing = LpPricing::Dantzig;
    Solution A = solveLp(M, {}, Fast);
    Solution B = solveLp(M, {}, Compat);
    ASSERT_EQ(A.Status, B.Status) << "seed " << Seed;
    if (A.Status == SolveStatus::Optimal) {
      EXPECT_NEAR(A.Objective, B.Objective,
                  1e-6 * std::max(1.0, std::abs(B.Objective)))
          << "seed " << Seed;
    }
  }
}

TEST(Simplex, WarmStartAfterObjectiveChangeMatchesCold) {
  // Re-solving with a new objective from the previous basis must agree
  // with a cold solve (and actually take the warm path).
  Model M;
  VarId X = M.addVar("x", 0, 4);
  VarId Y = M.addVar("y", 0, 3);
  M.addConstraint(expr({{X, 1}, {Y, 2}}), Sense::LE, 8);
  M.addConstraint(expr({{X, 3}, {Y, 1}}), Sense::LE, 9);
  M.setObjective(expr({{X, 1}, {Y, 1}}), Goal::Maximize);

  SimplexOptions Options;
  SimplexBasis Basis;
  Solution First = solveLp(M, {}, Options, nullptr, &Basis);
  ASSERT_EQ(First.Status, SolveStatus::Optimal);
  ASSERT_FALSE(Basis.empty());

  M.setObjective(expr({{X, -2}, {Y, 5}}), Goal::Maximize);
  LpRunStats Stats;
  Solution Warm = solveLp(M, {}, Options, &Basis, nullptr, &Stats);
  Solution Cold = solveLp(M, {}, Options);
  ASSERT_EQ(Warm.Status, SolveStatus::Optimal);
  EXPECT_TRUE(Stats.WarmStarted);
  EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-9);
}

TEST(Simplex, WarmStartAfterBoundTighteningMatchesCold) {
  // Branch-and-bound's pattern: tighten one bound and re-solve from the
  // parent basis; the dual simplex restores feasibility and the result
  // must match a cold solve of the child.
  Model M;
  VarId X = M.addVar("x", 0, 10);
  VarId Y = M.addVar("y", 0, 10);
  M.addConstraint(expr({{X, 2}, {Y, 3}}), Sense::LE, 12);
  M.addConstraint(expr({{X, 1}, {Y, -1}}), Sense::GE, -4);
  M.setObjective(expr({{X, 3}, {Y, 4}}), Goal::Maximize);

  SimplexOptions Options;
  SimplexBasis Basis;
  Solution Parent = solveLp(M, {}, Options, nullptr, &Basis);
  ASSERT_EQ(Parent.Status, SolveStatus::Optimal);

  std::vector<BoundOverride> Child = {{X, 0.0, 1.0}};
  LpRunStats Stats;
  Solution Warm = solveLp(M, Child, Options, &Basis, nullptr, &Stats);
  Solution Cold = solveLp(M, Child, Options);
  ASSERT_EQ(Warm.Status, SolveStatus::Optimal);
  EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-9);
  EXPECT_NEAR(Warm.value(X), 1.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: many redundant constraints through the origin.
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  for (int I = 1; I <= 8; ++I)
    M.addConstraint(expr({{X, static_cast<double>(I)}, {Y, 1.0}}), Sense::LE,
                    0.0);
  M.setObjective(expr({{X, 1}, {Y, 1}}), Goal::Maximize);
  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 0.0, 1e-7);
}

/// Property: on random transportation-style LPs, the simplex optimum equals
/// the combinatorial bottleneck bound (which is what the analytic oracle
/// relies on).
class SimplexTransportProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexTransportProperty, MatchesBottleneckBound) {
  Rng R(GetParam());
  unsigned NumPorts = 2 + static_cast<unsigned>(R.uniformInt(4));
  unsigned NumOps = 1 + static_cast<unsigned>(R.uniformInt(6));

  struct Op {
    uint32_t Mask;
    double Demand;
  };
  std::vector<Op> Ops;
  for (unsigned U = 0; U < NumOps; ++U) {
    uint32_t Mask = 0;
    while (Mask == 0)
      Mask = static_cast<uint32_t>(R.next()) & ((1u << NumPorts) - 1);
    Ops.push_back({Mask, 0.5 + R.uniformReal() * 4.0});
  }

  // LP: min t subject to routing demands; port load <= t.
  Model M;
  VarId T = M.addVar("t", 0, Infinity);
  std::vector<LinearExpr> Load(NumPorts);
  for (const Op &O : Ops) {
    LinearExpr Routed;
    for (unsigned P = 0; P < NumPorts; ++P) {
      if (!(O.Mask & (1u << P)))
        continue;
      VarId X = M.addVar("x", 0, Infinity);
      Routed.add(X, 1.0);
      Load[P].add(X, 1.0);
    }
    M.addConstraint(std::move(Routed), Sense::EQ, O.Demand);
  }
  for (unsigned P = 0; P < NumPorts; ++P) {
    LinearExpr C = Load[P];
    C.add(T, -1.0);
    M.addConstraint(std::move(C), Sense::LE, 0.0);
  }
  M.setObjective(expr({{T, 1.0}}), Goal::Minimize);
  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);

  // Bottleneck bound: max over port subsets J of demand-inside / |J|.
  double Bound = 0.0;
  for (uint32_t J = 1; J < (1u << NumPorts); ++J) {
    double Inside = 0.0;
    for (const Op &O : Ops)
      if ((O.Mask & ~J) == 0)
        Inside += O.Demand;
    Bound = std::max(Bound, Inside / __builtin_popcount(J));
  }
  EXPECT_NEAR(S.Objective, Bound, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexTransportProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{40}));

// --------------------------------------------------------------------- MILP

TEST(Milp, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary). Optimum a=b=1: 16.
  Model M;
  VarId A = M.addBoolVar("a");
  VarId B = M.addBoolVar("b");
  VarId C = M.addBoolVar("c");
  M.addConstraint(expr({{A, 1}, {B, 1}, {C, 1}}), Sense::LE, 2);
  M.setObjective(expr({{A, 10}, {B, 6}, {C, 4}}), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 16.0, 1e-6);
  EXPECT_NEAR(S.value(A), 1.0, 1e-9);
  EXPECT_NEAR(S.value(B), 1.0, 1e-9);
  EXPECT_NEAR(S.value(C), 0.0, 1e-9);
}

TEST(Milp, IntegerRounding) {
  // max x s.t. 2x <= 7, x integer: x = 3 (LP relaxation 3.5).
  Model M;
  VarId X = M.addVar("x", 0, Infinity, /*IsInteger=*/true);
  M.addConstraint(expr({{X, 2}}), Sense::LE, 7);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-9);
}

TEST(Milp, InfeasibleIntegral) {
  // 0.4 <= x <= 0.6 integral has no solution.
  Model M;
  VarId X = M.addVar("x", 0, 1, /*IsInteger=*/true);
  M.addConstraint(expr({{X, 1}}), Sense::GE, 0.4);
  M.addConstraint(expr({{X, 1}}), Sense::LE, 0.6);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  EXPECT_EQ(solveMilp(M).Status, SolveStatus::Infeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2x + y, x binary, y <= 1.5 continuous, x + y <= 2.
  Model M;
  VarId X = M.addBoolVar("x");
  VarId Y = M.addVar("y", 0, 1.5);
  M.addConstraint(expr({{X, 1}, {Y, 1}}), Sense::LE, 2);
  M.setObjective(expr({{X, 2}, {Y, 1}}), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-6); // x = 1, y = 1.
}

/// Property: branch-and-bound agrees with brute force on random small 0/1
/// problems.
class MilpProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MilpProperty, MatchesBruteForce) {
  Rng R(GetParam());
  const int N = 3 + static_cast<int>(R.uniformInt(5));
  const int Rows = 2 + static_cast<int>(R.uniformInt(3));

  std::vector<double> Costs(N);
  for (double &C : Costs)
    C = std::floor(R.uniformRealIn(-5.0, 10.0));
  std::vector<std::vector<double>> A(Rows, std::vector<double>(N));
  std::vector<double> Rhs(Rows);
  for (int Row = 0; Row < Rows; ++Row) {
    for (int I = 0; I < N; ++I)
      A[Row][I] = std::floor(R.uniformRealIn(0.0, 4.0));
    Rhs[Row] = std::floor(R.uniformRealIn(1.0, 8.0));
  }

  Model M;
  std::vector<VarId> Vars;
  for (int I = 0; I < N; ++I)
    Vars.push_back(M.addBoolVar("b"));
  for (int Row = 0; Row < Rows; ++Row) {
    LinearExpr E;
    for (int I = 0; I < N; ++I)
      E.add(Vars[I], A[Row][I]);
    M.addConstraint(std::move(E), Sense::LE, Rhs[Row]);
  }
  LinearExpr Obj;
  for (int I = 0; I < N; ++I)
    Obj.add(Vars[I], Costs[I]);
  M.setObjective(std::move(Obj), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_TRUE(S.ok());

  double Best = -1e18;
  for (uint32_t Bits = 0; Bits < (1u << N); ++Bits) {
    bool Ok = true;
    for (int Row = 0; Row < Rows && Ok; ++Row) {
      double Sum = 0.0;
      for (int I = 0; I < N; ++I)
        if (Bits & (1u << I))
          Sum += A[Row][I];
      Ok = Sum <= Rhs[Row] + 1e-9;
    }
    if (!Ok)
      continue;
    double Value = 0.0;
    for (int I = 0; I < N; ++I)
      if (Bits & (1u << I))
        Value += Costs[I];
    Best = std::max(Best, Value);
  }
  EXPECT_NEAR(S.Objective, Best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{30}));

/// Property: agreement with brute force on random *general-integer*
/// problems (bounded integer ranges, mixed LE/GE/EQ rows) — exercises the
/// bounded-variable machinery and multi-level branching, with and without
/// warm-started child nodes.
class MilpGeneralIntProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MilpGeneralIntProperty, MatchesBruteForce) {
  Rng R(GetParam());
  const int N = 2 + static_cast<int>(R.uniformInt(3));
  const int Rows = 1 + static_cast<int>(R.uniformInt(3));
  const int Range = 3; // Each variable in [0, 3].

  std::vector<double> Costs(static_cast<size_t>(N));
  for (double &C : Costs)
    C = std::floor(R.uniformRealIn(-5.0, 10.0));
  std::vector<std::vector<double>> A(static_cast<size_t>(Rows),
                                     std::vector<double>(static_cast<size_t>(N)));
  std::vector<double> Rhs(static_cast<size_t>(Rows));
  std::vector<Sense> Dirs(static_cast<size_t>(Rows));
  for (int Row = 0; Row < Rows; ++Row) {
    for (int I = 0; I < N; ++I)
      A[Row][I] = std::floor(R.uniformRealIn(-2.0, 4.0));
    Dirs[Row] = R.uniformInt(5) == 0
                    ? Sense::EQ
                    : (R.uniformInt(2) ? Sense::LE : Sense::GE);
    Rhs[Row] = std::floor(R.uniformRealIn(Dirs[Row] == Sense::LE ? 2.0 : -6.0,
                                          12.0));
  }

  Model M;
  std::vector<VarId> Vars;
  for (int I = 0; I < N; ++I)
    Vars.push_back(M.addVar("n", 0, Range, /*IsInteger=*/true));
  for (int Row = 0; Row < Rows; ++Row) {
    LinearExpr E;
    for (int I = 0; I < N; ++I)
      E.add(Vars[static_cast<size_t>(I)], A[Row][I]);
    M.addConstraint(std::move(E), Dirs[Row], Rhs[Row]);
  }
  LinearExpr Obj;
  for (int I = 0; I < N; ++I)
    Obj.add(Vars[static_cast<size_t>(I)], Costs[static_cast<size_t>(I)]);
  M.setObjective(std::move(Obj), Goal::Maximize);

  // Brute force over the integer grid.
  double Best = -1e18;
  std::vector<int> X(static_cast<size_t>(N), 0);
  bool Done = false;
  while (!Done) {
    bool Ok = true;
    for (int Row = 0; Row < Rows && Ok; ++Row) {
      double Sum = 0.0;
      for (int I = 0; I < N; ++I)
        Sum += A[Row][I] * X[static_cast<size_t>(I)];
      switch (Dirs[Row]) {
      case Sense::LE:
        Ok = Sum <= Rhs[Row] + 1e-9;
        break;
      case Sense::GE:
        Ok = Sum >= Rhs[Row] - 1e-9;
        break;
      case Sense::EQ:
        Ok = std::abs(Sum - Rhs[Row]) <= 1e-9;
        break;
      }
    }
    if (Ok) {
      double Value = 0.0;
      for (int I = 0; I < N; ++I)
        Value += Costs[static_cast<size_t>(I)] * X[static_cast<size_t>(I)];
      Best = std::max(Best, Value);
    }
    int I = 0;
    for (; I < N; ++I) {
      if (++X[static_cast<size_t>(I)] <= Range)
        break;
      X[static_cast<size_t>(I)] = 0;
    }
    Done = I == N;
  }

  for (bool Warm : {true, false}) {
    MilpOptions Options;
    Options.UseWarmStart = Warm;
    MilpStats Stats;
    Solution S = solveMilp(M, Options, &Stats);
    if (Best == -1e18) {
      EXPECT_EQ(S.Status, SolveStatus::Infeasible) << "warm " << Warm;
    } else {
      ASSERT_EQ(S.Status, SolveStatus::Optimal) << "warm " << Warm;
      EXPECT_NEAR(S.Objective, Best, 1e-6) << "warm " << Warm;
      EXPECT_EQ(Stats.DroppedSubtrees, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpGeneralIntProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{40}));

TEST(Milp, WarmStartsAreUsedAndAgreeWithCold) {
  // A model with enough branching to exercise parent-basis reuse.
  Rng R(7);
  Model M;
  LinearExpr Obj;
  std::vector<LinearExpr> Caps(3);
  for (int V = 0; V < 16; ++V) {
    VarId Id = M.addBoolVar("b");
    Obj.add(Id, R.uniformRealIn(1.0, 9.0));
    for (LinearExpr &Cap : Caps)
      Cap.add(Id, R.uniformRealIn(1.0, 5.0));
  }
  for (LinearExpr &Cap : Caps)
    M.addConstraint(std::move(Cap), Sense::LE, 20.0);
  M.setObjective(std::move(Obj), Goal::Maximize);

  MilpOptions WarmOptions;
  MilpStats WarmStats;
  Solution Warm = solveMilp(M, WarmOptions, &WarmStats);

  MilpOptions ColdOptions;
  ColdOptions.UseWarmStart = false;
  MilpStats ColdStats;
  Solution Cold = solveMilp(M, ColdOptions, &ColdStats);

  ASSERT_EQ(Warm.Status, SolveStatus::Optimal);
  ASSERT_EQ(Cold.Status, SolveStatus::Optimal);
  EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-6);
  EXPECT_GT(WarmStats.WarmStartAttempts, 0);
  EXPECT_GT(WarmStats.WarmStartHits, 0);
  EXPECT_EQ(ColdStats.WarmStartAttempts, 0);
  EXPECT_GT(WarmStats.LpSolves, 0);
  EXPECT_GT(WarmStats.LpPivots, 0);
}

TEST(Milp, IterationStarvedSearchNeverReportsOptimal) {
  // Regression for the silent-pruning bug: when a child LP dies at its
  // iteration limit, the subtree's content is unknown — the search must
  // not claim Optimal (or, with no incumbent, Infeasible). Sweep the
  // iteration budget from "root cannot even solve" to "everything
  // solves" over a family of general-integer models with GE rows (whose
  // children need phase-1 work, so starving them is easy) and check the
  // status contract at every point. On the pre-fix solver several of
  // these sweeps report Optimal with a sub-optimal incumbent.
  bool SawDroppedSubtree = false;
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    Rng R(Seed);
    int N = 6 + static_cast<int>(R.uniformInt(8));
    int Rows = 3 + static_cast<int>(R.uniformInt(4));
    Model M;
    std::vector<VarId> V;
    for (int I = 0; I < N; ++I)
      V.push_back(M.addVar("n", 0, 3, /*IsInteger=*/true));
    for (int Row = 0; Row < Rows; ++Row) {
      LinearExpr E;
      for (int I = 0; I < N; ++I)
        E.add(V[static_cast<size_t>(I)], std::floor(R.uniformRealIn(-2.0, 4.0)));
      Sense S = R.uniformInt(3) == 0 ? Sense::GE : Sense::LE;
      M.addConstraint(std::move(E), S, std::floor(R.uniformRealIn(2.0, 14.0)));
    }
    LinearExpr Obj;
    for (int I = 0; I < N; ++I)
      Obj.add(V[static_cast<size_t>(I)], std::floor(R.uniformRealIn(-3.0, 8.0)));
    M.setObjective(std::move(Obj), Goal::Maximize);

    Solution Reference = solveMilp(M);
    if (Reference.Status != SolveStatus::Optimal)
      continue;

    for (int MaxIter = 1; MaxIter <= 40; ++MaxIter) {
      MilpOptions Options;
      Options.Lp.MaxIterations = MaxIter;
      Options.UseWarmStart = false; // Starve every child equally.
      MilpStats Stats;
      Solution S = solveMilp(M, Options, &Stats);
      if (Stats.DroppedSubtrees > 0) {
        SawDroppedSubtree = true;
        EXPECT_NE(S.Status, SolveStatus::Optimal)
            << "seed " << Seed << " MaxIter " << MaxIter;
        EXPECT_NE(S.Status, SolveStatus::Infeasible)
            << "seed " << Seed << " MaxIter " << MaxIter;
      }
      if (S.Status == SolveStatus::Optimal) {
        EXPECT_EQ(Stats.DroppedSubtrees, 0)
            << "seed " << Seed << " MaxIter " << MaxIter;
        EXPECT_FALSE(Stats.NodeLimitHit)
            << "seed " << Seed << " MaxIter " << MaxIter;
        EXPECT_NEAR(S.Objective, Reference.Objective, 1e-6)
            << "seed " << Seed << " MaxIter " << MaxIter;
      }
    }
  }
  // The sweep must actually cross the interesting regime.
  EXPECT_TRUE(SawDroppedSubtree);
}

TEST(Milp, NodeLimitYieldsFeasibleNotOptimal) {
  Rng R(13);
  Model M;
  LinearExpr Obj, Cap;
  for (int V = 0; V < 18; ++V) {
    VarId Id = M.addBoolVar("b");
    Obj.add(Id, R.uniformRealIn(1.0, 9.0));
    Cap.add(Id, R.uniformRealIn(1.0, 5.0));
  }
  M.addConstraint(std::move(Cap), Sense::LE, 25.0);
  M.setObjective(std::move(Obj), Goal::Maximize);

  MilpOptions Options;
  Options.MaxNodes = 4;
  MilpStats Stats;
  Solution S = solveMilp(M, Options, &Stats);
  EXPECT_NE(S.Status, SolveStatus::Optimal);
  if (S.ok()) {
    EXPECT_EQ(S.Status, SolveStatus::Feasible);
  }
}

// -------------------------------------------------------------------- Model

TEST(Model, NormalizeMergesTerms) {
  LinearExpr E;
  E.add(0, 1.0).add(1, 2.0).add(0, 3.0).add(1, -2.0);
  E.normalize();
  ASSERT_EQ(E.terms().size(), 1u);
  EXPECT_EQ(E.terms()[0].first, 0);
  EXPECT_DOUBLE_EQ(E.terms()[0].second, 4.0);
}

TEST(Model, ConstantFoldedIntoRhs) {
  Model M;
  VarId X = M.addVar("x", 0, 10);
  LinearExpr E;
  E.add(X, 1.0).addConstant(5.0);
  M.addConstraint(std::move(E), Sense::LE, 8.0);
  // x + 5 <= 8 -> x <= 3.
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-7);
}

TEST(Model, HasIntegerVars) {
  Model M;
  M.addVar("x", 0, 1);
  EXPECT_FALSE(M.hasIntegerVars());
  M.addBoolVar("b");
  EXPECT_TRUE(M.hasIntegerVars());
}
