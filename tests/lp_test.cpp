//===- tests/lp_test.cpp - LP/MILP solver tests ---------------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "lp/Milp.h"
#include "lp/Simplex.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace palmed;
using namespace palmed::lp;

namespace {

LinearExpr expr(std::initializer_list<std::pair<VarId, double>> Terms) {
  LinearExpr E;
  for (const auto &[V, C] : Terms)
    E.add(V, C);
  return E;
}

} // namespace

// ------------------------------------------------------------------ Simplex

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum (2, 6) = 36.
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  M.addConstraint(expr({{X, 1}}), Sense::LE, 4);
  M.addConstraint(expr({{Y, 2}}), Sense::LE, 12);
  M.addConstraint(expr({{X, 3}, {Y, 2}}), Sense::LE, 18);
  M.setObjective(expr({{X, 3}, {Y, 5}}), Goal::Maximize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 36.0, 1e-7);
  EXPECT_NEAR(S.value(X), 2.0, 1e-7);
  EXPECT_NEAR(S.value(Y), 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGe) {
  // min x + 2y s.t. x + y >= 3, y >= 1. Optimum (2, 1) = 4.
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  M.addConstraint(expr({{X, 1}, {Y, 1}}), Sense::GE, 3);
  M.addConstraint(expr({{Y, 1}}), Sense::GE, 1);
  M.setObjective(expr({{X, 1}, {Y, 2}}), Goal::Minimize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 4.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 4, x >= 1. Optimum (1, 1.5) = 2.5.
  Model M;
  VarId X = M.addVar("x", 1.0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  M.addConstraint(expr({{X, 1}, {Y, 2}}), Sense::EQ, 4);
  M.setObjective(expr({{X, 1}, {Y, 1}}), Goal::Minimize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.5, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  M.addConstraint(expr({{X, 1}}), Sense::LE, 1);
  M.addConstraint(expr({{X, 1}}), Sense::GE, 2);
  M.setObjective(expr({{X, 1}}), Goal::Minimize);
  EXPECT_EQ(solveLp(M).Status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  EXPECT_EQ(solveLp(M).Status, SolveStatus::Unbounded);
}

TEST(Simplex, RespectsVariableBounds) {
  // max x + y with x in [0, 2], y in [1, 3]: optimum 5.
  Model M;
  VarId X = M.addVar("x", 0, 2);
  VarId Y = M.addVar("y", 1, 3);
  M.setObjective(expr({{X, 1}, {Y, 1}}), Goal::Maximize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 5.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x,y in [0,5]: maximize x gives x = 4 (y = 5).
  Model M;
  VarId X = M.addVar("x", 0, 5);
  VarId Y = M.addVar("y", 0, 5);
  M.addConstraint(expr({{X, 1}, {Y, -1}}), Sense::LE, -1);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);

  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.value(X), 4.0, 1e-7);
}

TEST(Simplex, BoundOverridesTighten) {
  Model M;
  VarId X = M.addVar("x", 0, 10);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  Solution S = solveLp(M, {{X, 0.0, 3.0}}, SimplexOptions());
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: many redundant constraints through the origin.
  Model M;
  VarId X = M.addVar("x", 0, Infinity);
  VarId Y = M.addVar("y", 0, Infinity);
  for (int I = 1; I <= 8; ++I)
    M.addConstraint(expr({{X, static_cast<double>(I)}, {Y, 1.0}}), Sense::LE,
                    0.0);
  M.setObjective(expr({{X, 1}, {Y, 1}}), Goal::Maximize);
  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 0.0, 1e-7);
}

/// Property: on random transportation-style LPs, the simplex optimum equals
/// the combinatorial bottleneck bound (which is what the analytic oracle
/// relies on).
class SimplexTransportProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexTransportProperty, MatchesBottleneckBound) {
  Rng R(GetParam());
  unsigned NumPorts = 2 + static_cast<unsigned>(R.uniformInt(4));
  unsigned NumOps = 1 + static_cast<unsigned>(R.uniformInt(6));

  struct Op {
    uint32_t Mask;
    double Demand;
  };
  std::vector<Op> Ops;
  for (unsigned U = 0; U < NumOps; ++U) {
    uint32_t Mask = 0;
    while (Mask == 0)
      Mask = static_cast<uint32_t>(R.next()) & ((1u << NumPorts) - 1);
    Ops.push_back({Mask, 0.5 + R.uniformReal() * 4.0});
  }

  // LP: min t subject to routing demands; port load <= t.
  Model M;
  VarId T = M.addVar("t", 0, Infinity);
  std::vector<LinearExpr> Load(NumPorts);
  for (const Op &O : Ops) {
    LinearExpr Routed;
    for (unsigned P = 0; P < NumPorts; ++P) {
      if (!(O.Mask & (1u << P)))
        continue;
      VarId X = M.addVar("x", 0, Infinity);
      Routed.add(X, 1.0);
      Load[P].add(X, 1.0);
    }
    M.addConstraint(std::move(Routed), Sense::EQ, O.Demand);
  }
  for (unsigned P = 0; P < NumPorts; ++P) {
    LinearExpr C = Load[P];
    C.add(T, -1.0);
    M.addConstraint(std::move(C), Sense::LE, 0.0);
  }
  M.setObjective(expr({{T, 1.0}}), Goal::Minimize);
  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);

  // Bottleneck bound: max over port subsets J of demand-inside / |J|.
  double Bound = 0.0;
  for (uint32_t J = 1; J < (1u << NumPorts); ++J) {
    double Inside = 0.0;
    for (const Op &O : Ops)
      if ((O.Mask & ~J) == 0)
        Inside += O.Demand;
    Bound = std::max(Bound, Inside / __builtin_popcount(J));
  }
  EXPECT_NEAR(S.Objective, Bound, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexTransportProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{40}));

// --------------------------------------------------------------------- MILP

TEST(Milp, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary). Optimum a=b=1: 16.
  Model M;
  VarId A = M.addBoolVar("a");
  VarId B = M.addBoolVar("b");
  VarId C = M.addBoolVar("c");
  M.addConstraint(expr({{A, 1}, {B, 1}, {C, 1}}), Sense::LE, 2);
  M.setObjective(expr({{A, 10}, {B, 6}, {C, 4}}), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 16.0, 1e-6);
  EXPECT_NEAR(S.value(A), 1.0, 1e-9);
  EXPECT_NEAR(S.value(B), 1.0, 1e-9);
  EXPECT_NEAR(S.value(C), 0.0, 1e-9);
}

TEST(Milp, IntegerRounding) {
  // max x s.t. 2x <= 7, x integer: x = 3 (LP relaxation 3.5).
  Model M;
  VarId X = M.addVar("x", 0, Infinity, /*IsInteger=*/true);
  M.addConstraint(expr({{X, 2}}), Sense::LE, 7);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-9);
}

TEST(Milp, InfeasibleIntegral) {
  // 0.4 <= x <= 0.6 integral has no solution.
  Model M;
  VarId X = M.addVar("x", 0, 1, /*IsInteger=*/true);
  M.addConstraint(expr({{X, 1}}), Sense::GE, 0.4);
  M.addConstraint(expr({{X, 1}}), Sense::LE, 0.6);
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  EXPECT_EQ(solveMilp(M).Status, SolveStatus::Infeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2x + y, x binary, y <= 1.5 continuous, x + y <= 2.
  Model M;
  VarId X = M.addBoolVar("x");
  VarId Y = M.addVar("y", 0, 1.5);
  M.addConstraint(expr({{X, 1}, {Y, 1}}), Sense::LE, 2);
  M.setObjective(expr({{X, 2}, {Y, 1}}), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-6); // x = 1, y = 1.
}

/// Property: branch-and-bound agrees with brute force on random small 0/1
/// problems.
class MilpProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MilpProperty, MatchesBruteForce) {
  Rng R(GetParam());
  const int N = 3 + static_cast<int>(R.uniformInt(5));
  const int Rows = 2 + static_cast<int>(R.uniformInt(3));

  std::vector<double> Costs(N);
  for (double &C : Costs)
    C = std::floor(R.uniformRealIn(-5.0, 10.0));
  std::vector<std::vector<double>> A(Rows, std::vector<double>(N));
  std::vector<double> Rhs(Rows);
  for (int Row = 0; Row < Rows; ++Row) {
    for (int I = 0; I < N; ++I)
      A[Row][I] = std::floor(R.uniformRealIn(0.0, 4.0));
    Rhs[Row] = std::floor(R.uniformRealIn(1.0, 8.0));
  }

  Model M;
  std::vector<VarId> Vars;
  for (int I = 0; I < N; ++I)
    Vars.push_back(M.addBoolVar("b"));
  for (int Row = 0; Row < Rows; ++Row) {
    LinearExpr E;
    for (int I = 0; I < N; ++I)
      E.add(Vars[I], A[Row][I]);
    M.addConstraint(std::move(E), Sense::LE, Rhs[Row]);
  }
  LinearExpr Obj;
  for (int I = 0; I < N; ++I)
    Obj.add(Vars[I], Costs[I]);
  M.setObjective(std::move(Obj), Goal::Maximize);

  Solution S = solveMilp(M);
  ASSERT_TRUE(S.ok());

  double Best = -1e18;
  for (uint32_t Bits = 0; Bits < (1u << N); ++Bits) {
    bool Ok = true;
    for (int Row = 0; Row < Rows && Ok; ++Row) {
      double Sum = 0.0;
      for (int I = 0; I < N; ++I)
        if (Bits & (1u << I))
          Sum += A[Row][I];
      Ok = Sum <= Rhs[Row] + 1e-9;
    }
    if (!Ok)
      continue;
    double Value = 0.0;
    for (int I = 0; I < N; ++I)
      if (Bits & (1u << I))
        Value += Costs[I];
    Best = std::max(Best, Value);
  }
  EXPECT_NEAR(S.Objective, Best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{30}));

// -------------------------------------------------------------------- Model

TEST(Model, NormalizeMergesTerms) {
  LinearExpr E;
  E.add(0, 1.0).add(1, 2.0).add(0, 3.0).add(1, -2.0);
  E.normalize();
  ASSERT_EQ(E.terms().size(), 1u);
  EXPECT_EQ(E.terms()[0].first, 0);
  EXPECT_DOUBLE_EQ(E.terms()[0].second, 4.0);
}

TEST(Model, ConstantFoldedIntoRhs) {
  Model M;
  VarId X = M.addVar("x", 0, 10);
  LinearExpr E;
  E.add(X, 1.0).addConstant(5.0);
  M.addConstraint(std::move(E), Sense::LE, 8.0);
  // x + 5 <= 8 -> x <= 3.
  M.setObjective(expr({{X, 1}}), Goal::Maximize);
  Solution S = solveLp(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-7);
}

TEST(Model, HasIntegerVars) {
  Model M;
  M.addVar("x", 0, 1);
  EXPECT_FALSE(M.hasIntegerVars());
  M.addBoolVar("b");
  EXPECT_TRUE(M.hasIntegerVars());
}
