//===- tests/machine_test.cpp - Machine model tests -----------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineBuilder.h"
#include "machine/StandardMachines.h"
#include "machine/SyntheticIsa.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace palmed;

TEST(PortMask, Basics) {
  EXPECT_EQ(portMask({0, 2}), BitSet::fromWord(0b101));
  EXPECT_EQ(portCount(BitSet::fromWord(0b101)), 2u);
  EXPECT_EQ(portCount(PortMask()), 0u);
  EXPECT_THROW(portMask({MaxPortIndex}), std::out_of_range);
}

TEST(PortMask, BeyondThirtyTwoPorts) {
  // The historical uint32_t cap is gone: masks address arbitrary ports.
  PortMask M = portMask({0, 31, 32, 40, 63});
  EXPECT_EQ(portCount(M), 5u);
  EXPECT_TRUE(M.test(40));
  PortMask Wide = portMask({100});
  EXPECT_TRUE(Wide.test(100));
  EXPECT_EQ(portCount(Wide), 1u);
  EXPECT_LT(M, Wide); // Integer-value order extends past one word.
}

TEST(MachineBuilder, BuildsValidMachine) {
  MachineBuilder B("test");
  unsigned P0 = B.addPort("p0");
  unsigned P1 = B.addPort("p1");
  EXPECT_EQ(P0, 0u);
  EXPECT_EQ(P1, 1u);
  B.setDecodeWidth(2);
  InstrId Add = B.addSimpleInstruction(
      {"ADD", ExtClass::Base, InstrCategory::IntAlu}, portMask({0, 1}));
  MachineModel M = B.build();
  EXPECT_EQ(M.numPorts(), 2u);
  EXPECT_EQ(M.numInstructions(), 1u);
  EXPECT_EQ(M.decodeWidth(), 2u);
  EXPECT_TRUE(M.validate());
  EXPECT_EQ(M.exec(Add).MicroOps.size(), 1u);
}

TEST(MachineModel, MixDetection) {
  MachineModel M = makeSklLike();
  InstrId Sse = M.isa().findByName("ADDSS_0");
  InstrId Avx = M.isa().findByName("VADDPS_0");
  InstrId Base = M.isa().findByName("ADD_0");
  ASSERT_NE(Sse, InvalidInstr);
  ASSERT_NE(Avx, InvalidInstr);
  ASSERT_NE(Base, InvalidInstr);

  Microkernel Mixed;
  Mixed.add(Sse, 1.0);
  Mixed.add(Avx, 1.0);
  EXPECT_TRUE(M.kernelMixesExtensions(Mixed));
  EXPECT_GT(M.mixFactor(Mixed), 1.0);

  Microkernel Fine;
  Fine.add(Sse, 1.0);
  Fine.add(Base, 1.0);
  EXPECT_FALSE(M.kernelMixesExtensions(Fine));
  EXPECT_DOUBLE_EQ(M.mixFactor(Fine), 1.0);
}

TEST(StandardMachines, Fig1Structure) {
  MachineModel M = makeFig1Machine();
  EXPECT_EQ(M.numPorts(), 3u);
  EXPECT_EQ(M.numInstructions(), 6u);
  EXPECT_EQ(M.decodeWidth(), 0u);
  // VCVTT decomposes into two µOPs.
  InstrId Vcvtt = M.isa().findByName("VCVTT");
  EXPECT_EQ(M.exec(Vcvtt).MicroOps.size(), 2u);
}

TEST(StandardMachines, SklLikeShape) {
  MachineModel M = makeSklLike();
  EXPECT_EQ(M.numPorts(), 8u);
  EXPECT_EQ(M.decodeWidth(), 4u);
  EXPECT_GT(M.extMixPenalty(), 0.0);
  EXPECT_GT(M.numInstructions(), 150u);
  EXPECT_TRUE(M.validate());
  // Dividers are present and non-pipelined.
  InstrId Div = M.isa().findByName("DIV32_0");
  ASSERT_NE(Div, InvalidInstr);
  EXPECT_GT(M.exec(Div).MicroOps[0].Occupancy, 1.0);
  // Stores decompose into address + data µOPs.
  InstrId St = M.isa().findByName("STORE_0");
  ASSERT_NE(St, InvalidInstr);
  EXPECT_EQ(M.exec(St).MicroOps.size(), 2u);
}

TEST(StandardMachines, SklScaleGrowsIsa) {
  MachineModel S1 = makeSklLike(1);
  MachineModel S2 = makeSklLike(2);
  EXPECT_GT(S2.numInstructions(), 1.8 * S1.numInstructions());
}

TEST(StandardMachines, ZenLikeSplitPipelines) {
  MachineModel M = makeZenLike();
  EXPECT_EQ(M.decodeWidth(), 5u);
  EXPECT_TRUE(M.validate());
  // Integer and FP port sets must be disjoint (the split-pipeline
  // structure the paper blames for Palmed's higher ZEN1 error).
  InstrId Add = M.isa().findByName("ADD_0");
  InstrId Fp = M.isa().findByName("ADDSS_0");
  ASSERT_NE(Add, InvalidInstr);
  ASSERT_NE(Fp, InvalidInstr);
  PortMask IntPorts = M.exec(Add).MicroOps[0].Ports;
  PortMask FpPorts = M.exec(Fp).MicroOps[0].Ports;
  EXPECT_FALSE(IntPorts.intersects(FpPorts));
  // AVX splits into two µOPs on Zen1.
  InstrId Vadd = M.isa().findByName("VADDPS_0");
  ASSERT_NE(Vadd, InvalidInstr);
  EXPECT_EQ(M.exec(Vadd).MicroOps.size(), 2u);
}

TEST(StandardMachines, VariantsShareDecomposition) {
  MachineModel M = makeSklLike();
  InstrId A0 = M.isa().findByName("ADD_0");
  InstrId A1 = M.isa().findByName("ADD_1");
  ASSERT_NE(A0, InvalidInstr);
  ASSERT_NE(A1, InvalidInstr);
  ASSERT_EQ(M.exec(A0).MicroOps.size(), M.exec(A1).MicroOps.size());
  EXPECT_EQ(M.exec(A0).MicroOps[0].Ports, M.exec(A1).MicroOps[0].Ports);
}

TEST(StandardMachines, MemVariantsAddLoadMicroOp) {
  MachineModel M = makeSklLike();
  InstrId Reg = M.isa().findByName("ADD_0");
  InstrId Mem = M.isa().findByName("ADD_M0");
  ASSERT_NE(Mem, InvalidInstr);
  EXPECT_EQ(M.exec(Mem).MicroOps.size(), M.exec(Reg).MicroOps.size() + 1);
}

TEST(SyntheticIsa, RandomMachineIsValid) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng R(Seed);
    MachineModel M = makeRandomMachine(R, 2 + R.uniformInt(6),
                                       3 + R.uniformInt(12));
    EXPECT_TRUE(M.validate()) << "seed " << Seed;
    EXPECT_GE(M.numInstructions(), 3u);
  }
}

TEST(SyntheticIsa, StressMachineMatchesConfig) {
  StressIsaConfig C;
  C.Name = "stress-test";
  C.NumPorts = 8;
  C.NumCategories = 9;
  C.VariantsPerCategory = 4;
  C.MemVariantsPerCategory = 2;
  C.NumExtensions = 3;
  C.DecodeWidth = 5;
  MachineModel M = makeStressMachine(C);
  EXPECT_TRUE(M.validate());
  EXPECT_EQ(M.name(), "stress-test");
  EXPECT_EQ(M.numPorts(), 8u);
  EXPECT_EQ(M.numInstructions(), 9u * (4u + 2u));

  // All requested extension groups are populated.
  size_t PerExt[3] = {0, 0, 0};
  for (InstrId Id : M.isa().allIds())
    ++PerExt[static_cast<size_t>(M.isa().info(Id).Ext)];
  EXPECT_GT(PerExt[0], 0u);
  EXPECT_GT(PerExt[1], 0u);
  EXPECT_GT(PerExt[2], 0u);

  // Memory variants carry the fused load µOP on the AGU pair (the last
  // two ports).
  InstrId Reg = M.isa().findByName("S0_0");
  InstrId Mem = M.isa().findByName("S0_M0");
  ASSERT_NE(Reg, InvalidInstr);
  ASSERT_NE(Mem, InvalidInstr);
  EXPECT_EQ(M.exec(Mem).MicroOps.size(), M.exec(Reg).MicroOps.size() + 1);
  EXPECT_EQ(M.exec(Mem).MicroOps.back().Ports, portMask({6, 7}));
}

TEST(SyntheticIsa, StressMachineIsDeterministic) {
  StressIsaConfig C;
  C.NumCategories = 6;
  C.VariantsPerCategory = 2;
  MachineModel A = makeStressMachine(C);
  MachineModel B = makeStressMachine(C);
  ASSERT_EQ(A.numInstructions(), B.numInstructions());
  for (InstrId Id : A.isa().allIds()) {
    EXPECT_EQ(A.isa().info(Id).Name, B.isa().info(Id).Name);
    ASSERT_EQ(A.exec(Id).MicroOps.size(), B.exec(Id).MicroOps.size());
    for (size_t U = 0; U < A.exec(Id).MicroOps.size(); ++U) {
      EXPECT_EQ(A.exec(Id).MicroOps[U].Ports, B.exec(Id).MicroOps[U].Ports);
      EXPECT_EQ(A.exec(Id).MicroOps[U].Occupancy,
                B.exec(Id).MicroOps[U].Occupancy);
    }
  }
}

TEST(MachineBuilder, RejectsOutOfRangePorts) {
  MachineBuilder B("bad");
  B.addPort("p0");
  B.addPort("p1");
  // Port 2 is undeclared: loud error instead of the historical silent UB
  // shift / invalid machine.
  EXPECT_THROW(B.addSimpleInstruction(
                   {"ADD", ExtClass::Base, InstrCategory::IntAlu},
                   portMask({0, 2})),
               std::out_of_range);
  // Empty port sets are rejected too.
  EXPECT_THROW(B.addInstruction(
                   {"NOP", ExtClass::Base, InstrCategory::Other},
                   {{PortMask(), 1.0}}),
               std::invalid_argument);
  // The builder survives the rejection and still builds a valid machine.
  B.addSimpleInstruction({"ADD", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({0, 1}));
  EXPECT_TRUE(B.build().validate());
}

TEST(MachineBuilder, BuildsWidePortMachine) {
  // 40 ports: past the historical 32-port wall.
  MachineBuilder B("wide");
  for (unsigned P = 0; P < 40; ++P)
    B.addPort("p" + std::to_string(P));
  InstrId Hi = B.addSimpleInstruction(
      {"HI", ExtClass::Base, InstrCategory::IntAlu}, portMask({38, 39}));
  MachineModel M = B.build();
  EXPECT_EQ(M.numPorts(), 40u);
  EXPECT_TRUE(M.validate());
  EXPECT_TRUE(M.exec(Hi).MicroOps[0].Ports.test(39));
}

TEST(SyntheticIsa, HugeProfileShape) {
  StressIsaConfig C = hugeStressConfig();
  EXPECT_GE(C.NumCategories * (C.VariantsPerCategory +
                               C.MemVariantsPerCategory),
            2000u);
  EXPECT_EQ(C.NumPorts, 24u);
  EXPECT_EQ(C.NumExtensions, NumExtClasses);
  MachineModel M = makeStressMachine(C);
  EXPECT_TRUE(M.validate());
  EXPECT_EQ(M.name(), "huge");
  EXPECT_EQ(M.numPorts(), 24u);
  EXPECT_GE(M.numInstructions(), 2000u);
  // All six extension groups are populated (this is what pushes the basic
  // set past the historical 32-basic shape cap: 8 basics per group).
  size_t PerExt[NumExtClasses] = {};
  for (InstrId Id : M.isa().allIds())
    ++PerExt[static_cast<size_t>(M.isa().info(Id).Ext)];
  for (size_t E = 0; E < NumExtClasses; ++E)
    EXPECT_GT(PerExt[E], 0u) << extClassName(static_cast<ExtClass>(E));
  // Deterministic like every stress profile.
  MachineModel M2 = makeStressMachine(C);
  EXPECT_EQ(M.numInstructions(), M2.numInstructions());
  for (InstrId Id : {InstrId{0}, InstrId{1000}, InstrId{2000}})
    EXPECT_EQ(M.isa().info(Id).Name, M2.isa().info(Id).Name);
}

TEST(SyntheticIsa, StressMachineRejectsBadConfigs) {
  StressIsaConfig C;
  C.NumPorts = 2; // Too few for the AGU pair.
  EXPECT_THROW(makeStressMachine(C), std::invalid_argument);
  C = StressIsaConfig();
  C.NumExtensions = NumExtClasses + 1;
  EXPECT_THROW(makeStressMachine(C), std::invalid_argument);
  C = StressIsaConfig();
  C.VariantsPerCategory = 0;
  C.MemVariantsPerCategory = 0;
  EXPECT_THROW(makeStressMachine(C), std::invalid_argument);
}
