//===- tests/eval_test.cpp - Workload and harness tests -------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"
#include "support/Compat.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

using namespace palmed;

namespace {

/// Serial EvalSession shorthand with the old free-function signature.
EvalOutcome evaluate(ThroughputOracle &Native,
                     const std::vector<BasicBlock> &Blocks,
                     std::initializer_list<Predictor *> Predictors,
                     const std::string &ReferenceTool) {
  EvalSession Session(Native);
  Session.setReferenceTool(ReferenceTool);
  for (Predictor *P : Predictors)
    Session.add(*P);
  return Session.run(Blocks);
}

} // namespace

TEST(Workload, DeterministicGivenSeed) {
  MachineModel M = makeSklLike();
  WorkloadConfig Cfg;
  Cfg.NumBlocks = 50;
  auto A = generateWorkload(M, Cfg);
  auto B = generateWorkload(M, Cfg);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_TRUE(A[I].K == B[I].K);
    EXPECT_DOUBLE_EQ(A[I].Weight, B[I].Weight);
  }
  Cfg.Seed = 43;
  auto C = generateWorkload(M, Cfg);
  size_t Same = 0;
  for (size_t I = 0; I < A.size(); ++I)
    Same += A[I].K == C[I].K;
  EXPECT_LT(Same, A.size() / 2);
}

TEST(Workload, RespectsSizeBounds) {
  MachineModel M = makeSklLike();
  WorkloadConfig Cfg;
  Cfg.NumBlocks = 200;
  Cfg.MinDistinct = 2;
  Cfg.MaxDistinct = 6;
  for (const BasicBlock &B : generateWorkload(M, Cfg)) {
    EXPECT_GE(B.K.numDistinct(), 1u);
    EXPECT_LE(B.K.numDistinct(), 6u);
    EXPECT_GT(B.Weight, 0.0);
  }
}

TEST(Workload, ProfilesDifferInMix) {
  MachineModel M = makeSklLike();
  auto CountFp = [&](WorkloadProfile P) {
    WorkloadConfig Cfg;
    Cfg.Profile = P;
    Cfg.NumBlocks = 300;
    double Fp = 0, Total = 0;
    for (const BasicBlock &B : generateWorkload(M, Cfg)) {
      for (const auto &[Id, Mult] : B.K.terms()) {
        InstrCategory C = M.isa().info(Id).Category;
        bool IsFp = C == InstrCategory::FpAdd || C == InstrCategory::FpMul ||
                    C == InstrCategory::VecInt ||
                    C == InstrCategory::VecShuffle;
        Fp += IsFp ? Mult : 0;
        Total += Mult;
      }
    }
    return Fp / Total;
  };
  double SpecFp = CountFp(WorkloadProfile::SpecLike);
  double PolyFp = CountFp(WorkloadProfile::PolybenchLike);
  EXPECT_GT(PolyFp, 2.5 * SpecFp)
      << "Polybench-like must be much more FP-heavy";
}

TEST(Workload, MixedExtensionBlocksAreRare) {
  MachineModel M = makeSklLike();
  WorkloadConfig Cfg;
  Cfg.Profile = WorkloadProfile::PolybenchLike;
  Cfg.NumBlocks = 400;
  size_t Mixed = 0;
  for (const BasicBlock &B : generateWorkload(M, Cfg))
    Mixed += M.kernelMixesExtensions(B.K);
  EXPECT_LT(Mixed, 400u / 4);
}

TEST(Harness, PerfectPredictorScoresPerfectly) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);

  WorkloadConfig Cfg;
  Cfg.NumBlocks = 100;
  auto Blocks = generateWorkload(M, Cfg);
  // Drop mixed blocks so the IACA stand-in is exact.
  eraseIf(Blocks, [&](const BasicBlock &B) {
    return M.kernelMixesExtensions(B.K);
  });

  EvalOutcome Out = evaluate(O, Blocks, {Iaca.get()}, "iaca");
  ToolAccuracy A = Out.accuracy("iaca");
  EXPECT_DOUBLE_EQ(A.CoveragePct, 100.0);
  EXPECT_LT(A.ErrPct, 0.01);
  EXPECT_GT(A.KendallTau, 0.99);
}

TEST(Harness, CoverageReflectsDeclines) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  auto Mca = makeLlvmMcaLikePredictor(M); // Declines "Other" category.

  // Build blocks guaranteeing some contain CVT (category Other).
  std::vector<BasicBlock> Blocks;
  InstrId Cvt = M.isa().findByName("CVT_0");
  InstrId Add = M.isa().findByName("ADD_0");
  for (int I = 0; I < 10; ++I) {
    BasicBlock B;
    B.K.add(Add, 1.0 + I);
    if (I < 4)
      B.K.add(Cvt, 1.0);
    Blocks.push_back(B);
  }
  EvalOutcome Out =
      evaluate(O, Blocks, {Iaca.get(), Mca.get()}, "iaca");
  EXPECT_DOUBLE_EQ(Out.accuracy("iaca").CoveragePct, 100.0);
  EXPECT_NEAR(Out.accuracy("llvm-mca").CoveragePct, 60.0, 1e-9);
}

TEST(Harness, ErrAndTauComputedOverCoveredOnly) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Mca = makeLlvmMcaLikePredictor(M);
  InstrId Cvt = M.isa().findByName("CVT_0");
  InstrId Add = M.isa().findByName("ADD_0");
  std::vector<BasicBlock> Blocks;
  for (int I = 1; I <= 6; ++I) {
    BasicBlock B;
    B.K.add(Add, static_cast<double>(I));
    Blocks.push_back(B);
  }
  {
    BasicBlock B;
    B.K.add(Cvt, 1.0); // Declined by mca.
    Blocks.push_back(B);
  }
  EvalOutcome Out = evaluate(O, Blocks, {Mca.get()}, "llvm-mca");
  ToolAccuracy A = Out.accuracy("llvm-mca");
  EXPECT_EQ(A.NumCovered, 6u);
  EXPECT_GE(A.KendallTau, -1.0);
  EXPECT_LE(A.KendallTau, 1.0);
}

TEST(Harness, HeatmapMassOnDiagonalForExactTool) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  WorkloadConfig Cfg;
  Cfg.NumBlocks = 80;
  auto Blocks = generateWorkload(M, Cfg);
  eraseIf(Blocks, [&](const BasicBlock &B) {
    return M.kernelMixesExtensions(B.K);
  });
  EvalOutcome Out = evaluate(O, Blocks, {Iaca.get()}, "iaca");

  auto Grid = Out.heatmap("iaca", 8, 10, 5.0, 2.0);
  // All mass lands in the ratio==1 row (row index 5 of 10 for [0,2)).
  double OnDiag = 0.0, Total = 0.0;
  for (size_t Y = 0; Y < Grid.size(); ++Y)
    for (double V : Grid[Y]) {
      Total += V;
      if (Y == 5)
        OnDiag += V;
    }
  ASSERT_GT(Total, 0.0);
  EXPECT_GT(OnDiag / Total, 0.999);
}

TEST(Harness, HeatmapPrintsAscii) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  auto Iaca = makeIacaLikePredictor(M);
  WorkloadConfig Cfg;
  Cfg.NumBlocks = 30;
  auto Blocks = generateWorkload(M, Cfg);
  EvalOutcome Out = evaluate(O, Blocks, {Iaca.get()}, "iaca");
  std::ostringstream OS;
  Out.printHeatmap(OS, "iaca", 20, 10, 5.0, 2.0);
  EXPECT_NE(OS.str().find('>'), std::string::npos); // Ratio-1 marker row.
  EXPECT_GT(OS.str().size(), 200u);
}

TEST(Workload, ProfileNames) {
  EXPECT_STREQ(workloadProfileName(WorkloadProfile::SpecLike),
               "SPEC2017-like");
  EXPECT_STREQ(workloadProfileName(WorkloadProfile::PolybenchLike),
               "Polybench-like");
}
