//===- tests/analysis_test.cpp - Bottleneck analysis tests ----------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"
#include "core/MappingAnalysis.h"
#include "machine/StandardMachines.h"
#include "support/Approx.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace palmed;

namespace {

/// Fig. 1 dual as the analysis substrate: weights are known exactly.
struct Fixture {
  MachineModel M = makeFig1Machine();
  ResourceMapping Dual = buildDualMapping(M);

  InstrId id(const char *Name) const {
    InstrId I = M.isa().findByName(Name);
    EXPECT_NE(I, InvalidInstr);
    return I;
  }
};

} // namespace

TEST(MappingAnalysis, IdentifiesBottleneckResource) {
  Fixture F;
  // ADDSS^2 BSR: the paper's Fig. 2a — r01 binds at 1.5 cycles.
  Microkernel K;
  K.add(F.id("ADDSS"), 2.0);
  K.add(F.id("BSR"), 1.0);
  BottleneckReport R = analyzeKernel(F.Dual, K);
  ASSERT_TRUE(R.valid());
  EXPECT_NEAR(R.PredictedCycles, 1.5, 1e-9);
  EXPECT_NEAR(R.PredictedIpc, 2.0, 1e-9);
  EXPECT_EQ(R.Loads.front().Name, "r01");
}

TEST(MappingAnalysis, ContributionsSumToBottleneckLoad) {
  Fixture F;
  Microkernel K;
  K.add(F.id("ADDSS"), 2.0);
  K.add(F.id("BSR"), 2.0);
  K.add(F.id("JMP"), 1.0);
  BottleneckReport R = analyzeKernel(F.Dual, K);
  ASSERT_TRUE(R.valid());
  double Sum = 0.0;
  for (const InstrContribution &C : R.BottleneckContributions)
    Sum += C.Cycles;
  EXPECT_NEAR(Sum, R.PredictedCycles, 1e-9);
  double FracSum = 0.0;
  for (const InstrContribution &C : R.BottleneckContributions)
    FracSum += C.Fraction;
  EXPECT_NEAR(FracSum, 1.0, 1e-9);
}

TEST(MappingAnalysis, LoadsSortedAndNormalized) {
  Fixture F;
  Microkernel K;
  K.add(F.id("DIVPS"), 1.0);
  K.add(F.id("JMP"), 1.0);
  BottleneckReport R = analyzeKernel(F.Dual, K);
  ASSERT_TRUE(R.valid());
  for (size_t I = 1; I < R.Loads.size(); ++I)
    EXPECT_LE(R.Loads[I].Load, R.Loads[I - 1].Load);
  EXPECT_DOUBLE_EQ(R.Loads.front().RelativeToBottleneck, 1.0);
}

TEST(MappingAnalysis, CoBottlenecksCountTies) {
  Fixture F;
  Microkernel K;
  K.add(F.id("DIVPS"), 1.0);
  K.add(F.id("JMP"), 1.0);
  BottleneckReport R = analyzeKernel(F.Dual, K);
  ASSERT_TRUE(R.valid());
  // The count uses the shared relDiff tolerance: at least the bottleneck
  // itself, and exactly the loads within 5% of it.
  ASSERT_GE(R.NumCoBottlenecks, 1u);
  size_t Expected = 0;
  for (const ResourceLoad &L : R.Loads)
    if (relDiff(L.Load, R.Loads.front().Load) <= 0.05)
      ++Expected;
  EXPECT_EQ(R.NumCoBottlenecks, Expected);
  // A tighter epsilon can only shrink the count.
  EXPECT_LE(analyzeKernel(F.Dual, K, 1e-9).NumCoBottlenecks,
            R.NumCoBottlenecks);
}

TEST(MappingAnalysis, HeadroomMatchesSecondResource) {
  Fixture F;
  Microkernel K;
  K.add(F.id("ADDSS"), 2.0);
  K.add(F.id("BSR"), 1.0);
  BottleneckReport R = analyzeKernel(F.Dual, K);
  ASSERT_TRUE(R.valid());
  ASSERT_GE(R.Loads.size(), 2u);
  EXPECT_NEAR(R.HeadroomToNextResource,
              1.0 - R.Loads[1].Load / R.Loads[0].Load, 1e-12);
}

TEST(MappingAnalysis, UnsupportedKernelIsInvalid) {
  Fixture F;
  ResourceMapping Empty(F.M.numInstructions());
  Microkernel K = Microkernel::single(F.id("BSR"), 1.0);
  EXPECT_FALSE(analyzeKernel(Empty, K).valid());
}

TEST(MappingAnalysis, PrintsReadableReport) {
  Fixture F;
  Microkernel K;
  K.add(F.id("ADDSS"), 2.0);
  K.add(F.id("BSR"), 1.0);
  std::ostringstream OS;
  printReport(OS, analyzeKernel(F.Dual, K), F.M.isa());
  std::string Out = OS.str();
  EXPECT_NE(Out.find("bottleneck: r01"), std::string::npos);
  EXPECT_NE(Out.find("ADDSS"), std::string::npos);
  EXPECT_NE(Out.find("IPC 2.000"), std::string::npos);
}
