//===- tests/selection_test.cpp - Algorithm 1 tests -----------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/Selection.h"
#include "machine/MachineBuilder.h"
#include "machine/StandardMachines.h"
#include "machine/SyntheticIsa.h"
#include "sim/AnalyticOracle.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace palmed;

namespace {

struct Fixture {
  MachineModel M;
  AnalyticOracle O;
  BenchmarkRunner Runner;

  explicit Fixture(MachineModel Machine)
      : M(std::move(Machine)), O(M), Runner(M, O) {}
};

bool contains(const std::vector<InstrId> &V, InstrId Id) {
  return std::count(V.begin(), V.end(), Id) != 0;
}

} // namespace

TEST(Selection, HelpersAdditivity) {
  EXPECT_TRUE(isAdditivePair(3.0, 1.0, 2.0, 0.05));
  EXPECT_TRUE(isAdditivePair(2.9, 1.0, 2.0, 0.05));
  EXPECT_FALSE(isAdditivePair(2.0, 1.0, 2.0, 0.05));
}

TEST(Selection, PairKernelUsesIpcMultiplicities) {
  Microkernel K = makePairKernel(3, 2.0, 7, 1.0);
  EXPECT_DOUBLE_EQ(K.multiplicity(3), 2.0);
  EXPECT_DOUBLE_EQ(K.multiplicity(7), 1.0);
}

TEST(Selection, Fig1SelectsEveryClass) {
  Fixture F(makeFig1Machine());
  SelectionConfig Cfg;
  SelectionResult R = F.Runner.machine().numInstructions() == 6
                          ? selectBasicInstructions(
                                F.Runner, F.M.isa().allIds(), Cfg)
                          : SelectionResult{};
  // All six instructions are benchmarkable and behaviourally distinct.
  EXPECT_EQ(R.Survivors.size(), 6u);
  EXPECT_EQ(R.Basic.size(), 6u);
  // Very basic must include the port-exclusive base instructions BSR and
  // JMP (pairwise disjoint).
  InstrId Bsr = F.M.isa().findByName("BSR");
  InstrId Jmp = F.M.isa().findByName("JMP");
  EXPECT_TRUE(contains(R.VeryBasic, Bsr));
  EXPECT_TRUE(contains(R.VeryBasic, Jmp));
}

TEST(Selection, SoloIpcsOnFig1) {
  Fixture F(makeFig1Machine());
  SelectionResult R =
      selectBasicInstructions(F.Runner, F.M.isa().allIds(), {});
  EXPECT_NEAR(R.soloIpc(F.M.isa().findByName("ADDSS")), 2.0, 1e-9);
  EXPECT_NEAR(R.soloIpc(F.M.isa().findByName("JMP")), 1.0, 1e-9);
}

TEST(Selection, EquivalenceClassesCollapseTwins) {
  // Two instructions with identical decompositions must land in one class.
  MachineBuilder B("twins");
  B.addPort("p0");
  B.addPort("p1");
  B.addSimpleInstruction({"A1", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({0, 1}));
  B.addSimpleInstruction({"A2", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({0, 1}));
  B.addSimpleInstruction({"B1", ExtClass::Base, InstrCategory::IntMul},
                         portMask({0}));
  Fixture F(B.build());
  SelectionResult R =
      selectBasicInstructions(F.Runner, F.M.isa().allIds(), {});
  // Classes: {A1, A2} and {B1}.
  ASSERT_EQ(R.Classes.size(), 2u);
  size_t TwinClass = R.Classes[0].size() == 2 ? 0 : 1;
  EXPECT_EQ(R.Classes[TwinClass].size(), 2u);
  EXPECT_EQ(R.Classes[1 - TwinClass].size(), 1u);
  // Only one representative of the twins is a candidate.
  EXPECT_EQ(R.Candidates.size(), 2u);
}

TEST(Selection, LowIpcExcludedFromBasicButSurvives) {
  MachineBuilder B("div");
  B.addPort("p0");
  B.addPort("p1");
  B.addSimpleInstruction({"DIV", ExtClass::Base, InstrCategory::IntDiv},
                         portMask({0}), 4.0); // IPC 0.25.
  B.addSimpleInstruction({"ADD", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({0, 1}));
  Fixture F(B.build());
  SelectionResult R =
      selectBasicInstructions(F.Runner, F.M.isa().allIds(), {});
  InstrId Div = F.M.isa().findByName("DIV");
  EXPECT_TRUE(contains(R.Survivors, Div));
  EXPECT_FALSE(contains(R.Basic, Div));
  EXPECT_FALSE(contains(R.Candidates, Div));
}

TEST(Selection, UnbenchmarkableDiscarded) {
  MachineBuilder B("slow");
  B.addPort("p0");
  B.addSimpleInstruction({"WBINVD", ExtClass::Base, InstrCategory::Other},
                         portMask({0}), 40.0); // IPC 0.025 < 0.05.
  B.addSimpleInstruction({"ADD", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({0}));
  Fixture F(B.build());
  SelectionResult R =
      selectBasicInstructions(F.Runner, F.M.isa().allIds(), {});
  EXPECT_EQ(R.Survivors.size(), 1u);
}

TEST(Selection, RespectsPerGroupBudget) {
  Fixture F(makeSklLike());
  SelectionConfig Cfg;
  Cfg.NumBasicPerGroup = 4;
  SelectionResult R =
      selectBasicInstructions(F.Runner, F.M.isa().allIds(), Cfg);
  // Three extension groups, at most 4 each.
  EXPECT_LE(R.Basic.size(), 12u);
  EXPECT_GE(R.Basic.size(), 4u);
  // No mixed pair was ever measured.
  const InstructionSet &Isa = F.M.isa();
  for (const auto &[Pair, Ipc] : R.PairIpc) {
    (void)Ipc;
    ExtClass EA = Isa.info(Pair.first).Ext;
    ExtClass EB = Isa.info(Pair.second).Ext;
    EXPECT_EQ(EA, EB) << "cross-group quadratic benchmark";
  }
}

TEST(Selection, SklCollapsesVariantClasses) {
  Fixture F(makeSklLike());
  SelectionResult R =
      selectBasicInstructions(F.Runner, F.M.isa().allIds(), {});
  // The synthetic ISA has many identical variants (ADD_0, ADD_1, ...);
  // classes must be far fewer than candidates' source population.
  size_t TotalClassed = 0;
  for (const auto &C : R.Classes)
    TotalClassed += C.size();
  EXPECT_LT(R.Classes.size(), TotalClassed / 4)
      << "equivalence classes failed to collapse variants";
}

TEST(Selection, DisjointnessDrivesVeryBasic) {
  // IMUL (p1 only), LOAD (p2/p3), JMP (p6) are pairwise disjoint on the
  // SKL-like machine and should be strong very-basic candidates.
  Fixture F(makeSklLike());
  SelectionConfig Cfg;
  Cfg.NumBasicPerGroup = 6;
  SelectionResult R =
      selectBasicInstructions(F.Runner, F.M.isa().allIds(), Cfg);
  EXPECT_GE(R.VeryBasic.size(), 2u);
  // Every pair of base-group very-basic instructions must be additive.
  const InstructionSet &Isa = F.M.isa();
  for (InstrId A : R.VeryBasic) {
    for (InstrId B : R.VeryBasic) {
      if (A >= B || Isa.info(A).Ext != Isa.info(B).Ext)
        continue;
      double Pair = R.pairIpc(A, B);
      if (Pair < 0.0)
        continue;
      EXPECT_TRUE(
          isAdditivePair(Pair, R.soloIpc(A), R.soloIpc(B), 0.05))
          << Isa.name(A) << " vs " << Isa.name(B);
    }
  }
}

// ------------------------------------------------- Cluster-first pruning

TEST(Selection, PrunedMatchesFullOnFig1) {
  // On a small machine the pruned mode must reach the same selection (the
  // six fig1 instructions are pairwise distinguishable by direct pairs).
  Fixture Full(makeFig1Machine()), Pruned(makeFig1Machine());
  SelectionConfig Cfg;
  SelectionResult RF =
      selectBasicInstructions(Full.Runner, Full.M.isa().allIds(), Cfg);
  Cfg.ClusterPairPruning = true;
  SelectionResult RP =
      selectBasicInstructions(Pruned.Runner, Pruned.M.isa().allIds(), Cfg);
  EXPECT_EQ(RF.Basic, RP.Basic);
  EXPECT_EQ(RF.Candidates, RP.Candidates);
  EXPECT_LE(RP.PairBenchmarks, RF.PairBenchmarks);
  EXPECT_EQ(RF.PairBenchmarksQuadratic, RP.PairBenchmarksQuadratic);
  EXPECT_EQ(RF.PairBenchmarks, RF.PairBenchmarksQuadratic);
}

TEST(Selection, PrunedCollapsesSklVariantsWithFewerPairs) {
  // SKL's large variant classes are exactly what the pruning exploits:
  // every variant fully serializes with its class representative, so the
  // measured pair count drops well below the quadratic sweep. Pruned
  // classes may be slightly coarser than the full sweep's (the documented
  // approximation: only representative pairs are measured, so peer-vector
  // differences between fully-serializing candidates go unseen), but they
  // must stay internally consistent.
  Fixture Full(makeSklLike()), Pruned(makeSklLike());
  SelectionConfig Cfg;
  SelectionResult RF =
      selectBasicInstructions(Full.Runner, Full.M.isa().allIds(), Cfg);
  Cfg.ClusterPairPruning = true;
  SelectionResult RP =
      selectBasicInstructions(Pruned.Runner, Pruned.M.isa().allIds(), Cfg);

  EXPECT_EQ(RF.Survivors, RP.Survivors);
  // Coarser is allowed, finer is not — and the collapse must stay in the
  // same ballpark (SKL's variant classes are unambiguous).
  EXPECT_LE(RP.Classes.size(), RF.Classes.size());
  EXPECT_GE(RP.Classes.size(), RF.Classes.size() - 3);
  EXPECT_FALSE(RP.Basic.empty());
  EXPECT_LT(RP.PairBenchmarks, RF.PairBenchmarks / 2);
  EXPECT_EQ(RF.PairBenchmarks, RF.PairBenchmarksQuadratic);
  // Every class member fully serializes with its representative at equal
  // solo IPC — the join criterion, re-checked from the recorded data.
  for (const auto &Class : RP.Classes) {
    InstrId Rep = Class.front();
    for (InstrId A : Class) {
      if (A == Rep)
        continue;
      EXPECT_LE(relDiff(RP.soloIpc(A), RP.soloIpc(Rep)), 0.05);
      double Direct = RP.pairIpc(A, Rep);
      ASSERT_GE(Direct, 0.0);
      double PairT = (RP.soloIpc(A) + RP.soloIpc(Rep)) / Direct;
      EXPECT_GE(PairT, 2.0 * 0.95);
    }
  }
  // Every measured pair the pruned mode kept agrees with the full sweep
  // (same runner determinism, sparser key set).
  for (const auto &[Key, Ipc] : RP.PairIpc) {
    auto It = RF.PairIpc.find(Key);
    ASSERT_NE(It, RF.PairIpc.end());
    EXPECT_DOUBLE_EQ(It->second, Ipc);
  }
}

TEST(Selection, PrunedScalesOnStressIsa) {
  // The deterministic stress profile: pruning must stay well under the
  // quadratic count while still filling every group's basic budget.
  Fixture Pruned(makeStressMachine(StressIsaConfig()));
  SelectionConfig Cfg;
  Cfg.ClusterPairPruning = true;
  SelectionResult RP =
      selectBasicInstructions(Pruned.Runner, Pruned.M.isa().allIds(), Cfg);
  // Coarser pruned classes can leave a group a representative or two
  // short of its budget; the aggregate must stay close to full.
  EXPECT_LE(RP.Basic.size(), 3u * Cfg.NumBasicPerGroup);
  EXPECT_GE(RP.Basic.size(), 3u * Cfg.NumBasicPerGroup - 3u);
  EXPECT_GE(RP.PairBenchmarksQuadratic, 5 * RP.PairBenchmarks)
      << "pruning lost its >=5x headroom";
  // Basics are drawn from the candidate representatives.
  for (InstrId Id : RP.Basic)
    EXPECT_TRUE(contains(RP.Candidates, Id));
}
