//===- tests/predict_test.cpp - Batch prediction engine tests -------------===//
//
// Part of the PALMED reproduction.
//
// The engine's contract is bit-identity: predicting a KernelBatch through
// a CompiledMapping must produce, slot for slot, the exact double bits of
// the scalar ResourceMapping::predictIpc path — across machines, random
// kernels, partial mappings, worker counts, and the detailed
// (co-bottleneck) path vs analyzeKernel. Suites are named Predict* so the
// TSan CI job's suite regex picks them up.
//
//===----------------------------------------------------------------------===//

#include "baselines/Predictor.h"
#include "core/DualConstruction.h"
#include "core/MappingAnalysis.h"
#include "eval/Workload.h"
#include "machine/StandardMachines.h"
#include "machine/SyntheticIsa.h"
#include "predict/BatchEngine.h"
#include "predict/CompiledMapping.h"
#include "predict/KernelBatch.h"
#include "support/Executor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <set>
#include <vector>

using namespace palmed;
using predict::CompiledMapping;
using predict::KernelBatch;

namespace {

uint64_t bitsOf(double V) {
  uint64_t B = 0;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}

/// Exact (bitwise) equality of two optional predictions.
::testing::AssertionResult bitEqual(const std::optional<double> &A,
                                    const std::optional<double> &B) {
  if (A.has_value() != B.has_value())
    return ::testing::AssertionFailure()
           << "engagement mismatch: " << A.has_value() << " vs "
           << B.has_value();
  if (A && bitsOf(*A) != bitsOf(*B))
    return ::testing::AssertionFailure()
           << "bit mismatch: " << *A << " (0x" << std::hex << bitsOf(*A)
           << ") vs " << *B << " (0x" << bitsOf(*B) << ")";
  return ::testing::AssertionSuccess();
}

/// Asserts batch == scalar, slot by slot, for one mapping and kernel set;
/// exercises both the raw engine and the MappingPredictor override.
void expectBatchMatchesScalar(const ResourceMapping &M,
                              const std::vector<Microkernel> &Kernels) {
  CompiledMapping CM = CompiledMapping::compile(M);
  KernelBatch B;
  for (const Microkernel &K : Kernels)
    B.add(K);
  std::vector<std::optional<double>> Out(B.size());
  predict::predictIpcBatch(CM, B, Out.data());

  MappingPredictor P("m", M);
  std::vector<std::optional<double>> ViaPredictor =
      P.predictIpcBatch(Kernels);

  for (size_t I = 0; I < Kernels.size(); ++I) {
    std::optional<double> Scalar = M.predictIpc(Kernels[I]);
    EXPECT_TRUE(bitEqual(Out[I], Scalar)) << "kernel " << I;
    EXPECT_TRUE(bitEqual(ViaPredictor[I], Scalar))
        << "predictor kernel " << I;
  }
}

std::vector<Microkernel> workloadKernels(const MachineModel &M,
                                         size_t NumBlocks) {
  WorkloadConfig Cfg;
  Cfg.NumBlocks = NumBlocks;
  std::vector<Microkernel> Out;
  for (const BasicBlock &B : generateWorkload(M, Cfg))
    Out.push_back(B.K);
  return Out;
}

} // namespace

// ------------------------------------------------------------- KernelBatch

TEST(PredictKernelBatch, SoALayoutAndSizes) {
  KernelBatch B;
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.size(), 0u);

  Microkernel K1;
  K1.add(3, 2.0);
  K1.add(1, 0.5);
  Microkernel K2 = Microkernel::single(7, 1.0);
  Microkernel K3; // Empty kernel is a valid batch member.

  EXPECT_EQ(B.add(K1), 0u);
  EXPECT_EQ(B.add(K2), 1u);
  EXPECT_EQ(B.add(K3), 2u);
  EXPECT_EQ(B.size(), 3u);
  EXPECT_EQ(B.numTerms(), 3u);

  // Terms flattened in each kernel's own sorted order.
  auto [B1, E1] = B.termRange(0);
  ASSERT_EQ(E1 - B1, 2u);
  EXPECT_EQ(B.termIds()[B1], 1u);
  EXPECT_EQ(B.termMults()[B1], 0.5);
  EXPECT_EQ(B.termIds()[B1 + 1], 3u);
  auto [B3, E3] = B.termRange(2);
  EXPECT_EQ(B3, E3);

  // |K| accumulated in term order: bit-identical to Microkernel::size().
  EXPECT_EQ(bitsOf(B.kernelSize(0)), bitsOf(K1.size()));
  EXPECT_EQ(bitsOf(B.kernelSize(1)), bitsOf(K2.size()));
  EXPECT_EQ(B.kernelSize(2), 0.0);

  B.clear();
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.numTerms(), 0u);
}

// --------------------------------------------------------- CompiledMapping

TEST(PredictCompiledMapping, DropsZeroUsageResources) {
  ResourceMapping M(4);
  ResourceId R0 = M.addResource("used0");
  M.addResource("dead");
  ResourceId R2 = M.addResource("used2");
  M.setUsage(0, R0, 0.5);
  M.setUsage(1, R2, 1.0);
  M.markMapped(2); // Mapped, zero usage everywhere.

  CompiledMapping CM = CompiledMapping::compile(M);
  ASSERT_EQ(CM.numLiveResources(), 2u);
  // Live indices preserve the original resource order.
  EXPECT_EQ(CM.liveResourceId(0), R0);
  EXPECT_EQ(CM.liveResourceId(1), R2);
  EXPECT_TRUE(CM.predictable(0));
  EXPECT_TRUE(CM.predictable(2));
  EXPECT_FALSE(CM.predictable(3)); // Unmapped.
  EXPECT_FALSE(CM.predictable(99)); // Out of range.

  // The zero-usage-but-mapped instruction predicts like the scalar path:
  // supported, zero cycles, nullopt IPC.
  KernelBatch B;
  B.add(Microkernel::single(2));
  double Loads[2], Cycles = -1.0;
  EXPECT_TRUE(CM.kernelCycles(B, 0, Loads, &Cycles));
  EXPECT_EQ(Cycles, 0.0);
  EXPECT_FALSE(CM.kernelIpc(B, 0, Loads).has_value());
  EXPECT_FALSE(M.predictIpc(Microkernel::single(2)).has_value());
}

TEST(PredictCompiledMapping, UnsupportedSetDeclinesLikeMappingPredictor) {
  MachineModel M = makeFig1Machine();
  ResourceMapping Dual = buildDualMapping(M);
  InstrId Addss = M.isa().findByName("ADDSS");
  InstrId Bsr = M.isa().findByName("BSR");
  ASSERT_NE(Addss, InvalidInstr);
  ASSERT_NE(Bsr, InvalidInstr);

  std::set<InstrId> Unsupported = {Bsr};
  CompiledMapping CM = CompiledMapping::compile(Dual, Unsupported);
  MappingPredictor P("partial-tool", Dual, Unsupported);

  std::vector<Microkernel> Kernels;
  Kernels.push_back(Microkernel::single(Addss, 2.0));
  Microkernel Mixed;
  Mixed.add(Addss, 1.0);
  Mixed.add(Bsr, 1.0);
  Kernels.push_back(Mixed);

  KernelBatch B;
  for (const Microkernel &K : Kernels)
    B.add(K);
  std::vector<std::optional<double>> Out(B.size());
  predict::predictIpcBatch(CM, B, Out.data());
  std::vector<std::optional<double>> Want = P.predictIpcBatch(Kernels);
  ASSERT_TRUE(Out[0].has_value());
  EXPECT_FALSE(Out[1].has_value()); // Declined via the Unsupported set.
  for (size_t I = 0; I < Kernels.size(); ++I)
    EXPECT_TRUE(bitEqual(Out[I], Want[I])) << I;
}

// -------------------------------------------------- Bitwise equivalence

TEST(PredictEquivalence, SklDualBitwise) {
  MachineModel M = makeSklLike();
  expectBatchMatchesScalar(buildDualMapping(M), workloadKernels(M, 200));
}

TEST(PredictEquivalence, ZenDualBitwise) {
  MachineModel M = makeZenLike();
  expectBatchMatchesScalar(buildDualMapping(M), workloadKernels(M, 200));
}

TEST(PredictEquivalence, StressDualBitwise) {
  MachineModel M = makeStressMachine(StressIsaConfig());
  expectBatchMatchesScalar(buildDualMapping(M), workloadKernels(M, 150));
}

TEST(PredictEquivalence, HugeDualBitwise) {
  MachineModel M = makeStressMachine(hugeStressConfig());
  expectBatchMatchesScalar(buildDualMapping(M), workloadKernels(M, 100));
}

TEST(PredictEquivalence, RandomKernelProperty) {
  MachineModel M = makeSklLike();
  ResourceMapping Dual = buildDualMapping(M);
  Rng R(0x9e3779b97f4a7c15ull);
  std::vector<Microkernel> Kernels;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Microkernel K;
    size_t Distinct = R.uniformIntIn(1, 12);
    for (size_t D = 0; D < Distinct; ++D) {
      InstrId Id = static_cast<InstrId>(R.uniformInt(M.isa().size()));
      // Mix integral and fractional multiplicities (the paper's kernels
      // carry fractional coefficients mid-construction).
      double Mult = R.chance(0.5)
                        ? static_cast<double>(R.uniformIntIn(1, 4))
                        : R.uniformRealIn(0.25, 3.0);
      K.add(Id, Mult);
    }
    Kernels.push_back(std::move(K));
  }
  expectBatchMatchesScalar(Dual, Kernels);
}

TEST(PredictEquivalence, EmptyBatchAndSingleKernel) {
  MachineModel M = makeFig1Machine();
  ResourceMapping Dual = buildDualMapping(M);
  CompiledMapping CM = CompiledMapping::compile(Dual);

  KernelBatch Empty;
  predict::predictIpcBatch(CM, Empty, nullptr); // Must be a no-op.

  expectBatchMatchesScalar(
      Dual, {Microkernel::single(M.isa().findByName("ADDSS"), 3.0)});
}

TEST(PredictEquivalence, UnmappedInstructionKernels) {
  MachineModel M = makeFig1Machine();
  // Partial mapping: only ADDSS is mapped; everything else must decline
  // through the checked API — identically in scalar and batch form, and
  // without UB in release builds (the release-safety regression for the
  // serve daemon's old unchecked predictCycles path).
  ResourceMapping Partial(M.isa().size());
  ResourceId R0 = Partial.addResource("r0");
  InstrId Addss = M.isa().findByName("ADDSS");
  InstrId Bsr = M.isa().findByName("BSR");
  Partial.setUsage(Addss, R0, 0.5);

  std::vector<Microkernel> Kernels;
  Kernels.push_back(Microkernel::single(Addss, 2.0));
  Kernels.push_back(Microkernel::single(Bsr));
  Microkernel Mixed;
  Mixed.add(Addss, 1.0);
  Mixed.add(Bsr, 2.0);
  Kernels.push_back(Mixed);
  expectBatchMatchesScalar(Partial, Kernels);

  CompiledMapping CM = CompiledMapping::compile(Partial);
  KernelBatch B;
  for (const Microkernel &K : Kernels)
    B.add(K);
  EXPECT_TRUE(CM.supports(B, 0));
  EXPECT_FALSE(CM.supports(B, 1));
  EXPECT_FALSE(CM.supports(B, 2));
}

// ------------------------------------------------------------ Executor fan

TEST(PredictEngine, SerialEqualsParallelFanOut) {
  MachineModel M = makeSklLike();
  ResourceMapping Dual = buildDualMapping(M);
  CompiledMapping CM = CompiledMapping::compile(Dual);
  // Enough kernels to span several chunks per worker.
  std::vector<Microkernel> Kernels = workloadKernels(M, 400);
  KernelBatch B;
  for (const Microkernel &K : Kernels)
    B.add(K);

  std::vector<std::optional<double>> Serial(B.size());
  predict::predictIpcBatch(CM, B, Serial.data(), /*Exec=*/nullptr);

  Executor Exec(4);
  std::vector<std::optional<double>> Parallel(B.size());
  predict::predictIpcBatch(CM, B, Parallel.data(), &Exec);
  for (size_t I = 0; I < B.size(); ++I)
    EXPECT_TRUE(bitEqual(Serial[I], Parallel[I])) << I;

  std::vector<predict::KernelDetail> DSerial(B.size()), DPar(B.size());
  predict::predictDetailedBatch(CM, B, 0.05, DSerial.data());
  predict::predictDetailedBatch(CM, B, 0.05, DPar.data(), &Exec);
  for (size_t I = 0; I < B.size(); ++I) {
    EXPECT_EQ(DSerial[I].Supported, DPar[I].Supported) << I;
    EXPECT_EQ(bitsOf(DSerial[I].Cycles), bitsOf(DPar[I].Cycles)) << I;
    EXPECT_EQ(bitsOf(DSerial[I].Ipc), bitsOf(DPar[I].Ipc)) << I;
    EXPECT_EQ(DSerial[I].CoBottlenecks, DPar[I].CoBottlenecks) << I;
  }
}

// ------------------------------------------------------------ Detailed path

TEST(PredictDetailed, MatchesAnalyzeKernel) {
  MachineModel M = makeSklLike();
  ResourceMapping Dual = buildDualMapping(M);
  CompiledMapping CM = CompiledMapping::compile(Dual);
  std::vector<Microkernel> Kernels = workloadKernels(M, 150);
  KernelBatch B;
  for (const Microkernel &K : Kernels)
    B.add(K);
  std::vector<predict::KernelDetail> Details(B.size());
  predict::predictDetailedBatch(CM, B, /*Eps=*/0.05, Details.data());

  for (size_t I = 0; I < Kernels.size(); ++I) {
    BottleneckReport Report = analyzeKernel(Dual, Kernels[I], 0.05);
    ASSERT_EQ(Details[I].Supported, Report.valid()) << I;
    if (!Report.valid())
      continue;
    EXPECT_EQ(bitsOf(Details[I].Cycles), bitsOf(Report.PredictedCycles))
        << I;
    EXPECT_EQ(bitsOf(Details[I].Ipc), bitsOf(Report.PredictedIpc)) << I;
    size_t N = std::min(Report.NumCoBottlenecks, Report.Loads.size());
    ASSERT_EQ(Details[I].CoBottlenecks.size(), N) << I;
    for (size_t J = 0; J < N; ++J)
      EXPECT_EQ(Details[I].CoBottlenecks[J],
                static_cast<uint32_t>(Report.Loads[J].Resource))
          << I << "/" << J;
  }
}

// ------------------------------------------------------- Predictor surface

namespace {

/// A predictor that only implements the scalar virtual call — exercises
/// the documented default predictIpcBatch (the literal serial loop).
class ScalarOnlyPredictor : public Predictor {
public:
  explicit ScalarOnlyPredictor(ResourceMapping M) : M(std::move(M)) {}
  std::optional<double> predictIpc(const Microkernel &K) override {
    return M.predictIpc(K);
  }
  std::string name() const override { return "scalar-only"; }

private:
  ResourceMapping M;
};

} // namespace

TEST(PredictPredictor, DefaultBatchEqualsOverride) {
  MachineModel M = makeZenLike();
  ResourceMapping Dual = buildDualMapping(M);
  std::vector<Microkernel> Kernels = workloadKernels(M, 120);

  ScalarOnlyPredictor Default(Dual);
  MappingPredictor Engine("palmed", Dual);
  std::vector<std::optional<double>> A = Default.predictIpcBatch(Kernels);
  std::vector<std::optional<double>> B = Engine.predictIpcBatch(Kernels);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(bitEqual(A[I], B[I])) << I;

  // clone() keeps predicting identically through the batch surface.
  auto Clone = Engine.clone();
  ASSERT_NE(Clone, nullptr);
  std::vector<std::optional<double>> C = Clone->predictIpcBatch(Kernels);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(bitEqual(A[I], C[I])) << I;
}

// ------------------------------------------------- Ragged ResourceMapping

TEST(PredictResourceMapping, RaggedRowsReadAsZero) {
  ResourceMapping M(3);
  ResourceId R0 = M.addResource("a");
  M.setUsage(0, R0, 1.0);
  // Adding more resources later must not disturb existing rows, and the
  // never-written entries must read as zero.
  ResourceId R1 = M.addResource("b");
  ResourceId R2 = M.addResource("c");
  EXPECT_EQ(M.rho(0, R0), 1.0);
  EXPECT_EQ(M.rho(0, R1), 0.0);
  EXPECT_EQ(M.rho(0, R2), 0.0);
  EXPECT_EQ(M.rho(1, R2), 0.0); // Unmapped row.
  // Out-of-range reads are defined (release-safety satellite).
  EXPECT_EQ(M.rho(0, 57), 0.0);
  EXPECT_EQ(M.rho(99, R0), 0.0);

  // Writing a high resource then a low one keeps both.
  M.setUsage(1, R2, 0.25);
  M.setUsage(1, R0, 0.75);
  EXPECT_EQ(M.rho(1, R0), 0.75);
  EXPECT_EQ(M.rho(1, R1), 0.0);
  EXPECT_EQ(M.rho(1, R2), 0.25);
  EXPECT_EQ(M.consumption(1), 1.0);
}

TEST(PredictResourceMapping, RaggedRowsRoundTripThroughText) {
  MachineModel Machine = makeFig1Machine();
  ResourceMapping M(Machine.isa().size());
  ResourceId RA = M.addResource("ra");
  M.setUsage(0, RA, 0.5); // Row 0 is short: only 1 entry.
  ResourceId RB = M.addResource("rb");
  M.setUsage(1, RB, 1.5); // Row 1 skips ra entirely.
  M.markMapped(2);        // Mapped with no usage at all.

  std::string Text = M.toText(Machine.isa());
  auto Back = ResourceMapping::fromText(Text, Machine.isa());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->numResources(), 2u);
  EXPECT_EQ(Back->rho(0, RA), 0.5);
  EXPECT_EQ(Back->rho(0, RB), 0.0);
  EXPECT_EQ(Back->rho(1, RA), 0.0);
  EXPECT_EQ(Back->rho(1, RB), 1.5);
  EXPECT_TRUE(Back->isMapped(2));
  EXPECT_EQ(Back->toText(Machine.isa()), Text);
}
