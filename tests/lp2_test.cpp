//===- tests/lp2_test.cpp - Warm-started, decomposed LP2 tests ------------===//
//
// Part of the PALMED reproduction.
//
// The stage-2 fit accepts solve-strategy knobs (BwpSolveOptions: component
// decomposition, subproblem cache, model-buffer reuse, executor fan-out)
// whose contract is that every combination produces bit-identical weights
// — they only trade work. These tests pin that contract down, both on
// direct solveCoreWeights calls (where pivot counts can be bracketed
// exactly) and end-to-end through the pipeline on the shipped machine
// profiles.
//
//===----------------------------------------------------------------------===//

#include "core/BwpSolver.h"
#include "lp/Model.h"
#include "lp/Simplex.h"
#include "palmed/palmed.h"
#include "support/Executor.h"

#include <gtest/gtest.h>

using namespace palmed;

namespace {

/// Two independent instruction pairs on disjoint resource pairs — the
/// minimal problem with two coupling components. Instructions 10/20 play
/// ADDSS/BSR on resources {R0 = both, R1 = instr 1} (the paper's running
/// example), and instructions 30/40 mirror them on resources {R2, R3}.
struct TwoComponentFixture {
  MappingShape Shape;
  std::map<InstrId, size_t> IndexOf = {{10, 0}, {20, 1}, {30, 2}, {40, 3}};

  TwoComponentFixture() {
    Shape.Resources = {BitSet::fromWord(0b0011), BitSet::fromWord(0b0010),
                       BitSet::fromWord(0b1100), BitSet::fromWord(0b1000)};
  }

  static Microkernel kernel(InstrId A, double MA, InstrId B, double MB) {
    Microkernel K;
    if (MA > 0)
      K.add(A, MA);
    if (MB > 0)
      K.add(B, MB);
    return K;
  }

  /// The paper-example measurement set, instantiated on both pairs.
  std::vector<WeightKernel> kernels() const {
    std::vector<WeightKernel> Out;
    for (InstrId Base : {InstrId(10), InstrId(30)}) {
      InstrId A = Base, B = Base + 10;
      Out.push_back({kernel(A, 2, B, 0), 2.0, -1});
      Out.push_back({kernel(A, 0, B, 1), 1.0, -1});
      Out.push_back({kernel(A, 2, B, 1), 3.0 / 1.5, -1});
      Out.push_back({kernel(A, 8, B, 1), 9.0 / 4.5, -1});
      Out.push_back({kernel(A, 2, B, 4), 6.0 / 4.0, -1});
    }
    return Out;
  }
};

/// Runs solveCoreWeights under \p Opts and returns the weights plus the
/// exact LP telemetry delta of the call.
CoreWeights solveWith(const TwoComponentFixture &F,
                      const BwpSolveOptions &Opts, lp::LpTelemetry &Delta,
                      const std::vector<double> &SoloIpc = {}) {
  const lp::LpTelemetry Before = lp::lpTelemetry();
  CoreWeights W = solveCoreWeights(F.Shape, F.IndexOf, F.kernels(),
                                   BwpMode::Pinned, Opts,
                                   /*MaxPinIterations=*/6, SoloIpc);
  const lp::LpTelemetry &Now = lp::lpTelemetry();
  Delta.Solves = Now.Solves - Before.Solves;
  Delta.Pivots = Now.Pivots - Before.Pivots;
  Delta.WarmStartAttempts = Now.WarmStartAttempts - Before.WarmStartAttempts;
  Delta.WarmStartHits = Now.WarmStartHits - Before.WarmStartHits;
  return W;
}

/// Bitwise equality of two weight matrices (the contract is bit-identical,
/// not approximately equal).
void expectBitwiseEqual(const CoreWeights &A, const CoreWeights &B) {
  ASSERT_EQ(A.Rho.size(), B.Rho.size());
  for (size_t I = 0; I < A.Rho.size(); ++I) {
    ASSERT_EQ(A.Rho[I].size(), B.Rho[I].size());
    for (size_t R = 0; R < A.Rho[I].size(); ++R)
      EXPECT_EQ(A.Rho[I][R], B.Rho[I][R]) << "instr " << I << " res " << R;
  }
  EXPECT_EQ(A.TotalSlack, B.TotalSlack);
}

} // namespace

//===----------------------------------------------------------------------===//
// Structural digest properties.
//===----------------------------------------------------------------------===//

TEST(Lp2Digest, LengthPrefixingSeparatesFieldBoundaries) {
  // [1,2][3] vs [1][2,3]: same flat stream, different boundaries. The
  // length prefixes must keep the digests apart.
  lp::StructuralDigest A;
  A.addSize(2);
  A.addU64(1);
  A.addU64(2);
  A.addSize(1);
  A.addU64(3);
  lp::StructuralDigest B;
  B.addSize(1);
  B.addU64(1);
  B.addSize(2);
  B.addU64(2);
  B.addU64(3);
  EXPECT_NE(A.value(), B.value());
}

TEST(Lp2Digest, OrderSensitive) {
  lp::StructuralDigest A, B;
  A.addU64(1);
  A.addU64(2);
  B.addU64(2);
  B.addU64(1);
  EXPECT_NE(A.value(), B.value());
}

TEST(Lp2Digest, DoubleBitPatterns) {
  // The digest hashes bit patterns: -0.0 and 0.0 compare equal as doubles
  // but must digest differently (a solver pivoting on signed zeros is
  // hypothetical, but a miss is always safe and an alias never is).
  lp::StructuralDigest Pos, Neg;
  Pos.addDouble(0.0);
  Neg.addDouble(-0.0);
  EXPECT_NE(Pos.value(), Neg.value());

  // One-ulp perturbations must separate too.
  lp::StructuralDigest X, Y;
  X.addDouble(1.0);
  Y.addDouble(std::nextafter(1.0, 2.0));
  EXPECT_NE(X.value(), Y.value());
}

TEST(Lp2Digest, BothWordsReactToSingleInput) {
  // The two 64-bit streams evolve independently; a single-input change
  // must disturb both words, otherwise the effective width is 64 bits.
  lp::StructuralDigest A, B;
  A.addU64(42);
  B.addU64(43);
  EXPECT_NE(A.value().Lo, B.value().Lo);
  EXPECT_NE(A.value().Hi, B.value().Hi);
}

TEST(Lp2Digest, ValueOrderingIsStrictWeak) {
  lp::StructuralDigest A, B;
  A.addU64(1);
  B.addU64(2);
  const lp::StructuralDigest::Value VA = A.value(), VB = B.value();
  EXPECT_TRUE(VA == VA);
  EXPECT_NE(VA, VB);
  EXPECT_TRUE((VA < VB) != (VB < VA)); // Exactly one direction.
  EXPECT_FALSE(VA < VA);
}

TEST(Lp2Digest, EmptyStreamsCollide) {
  // Sanity: two untouched digests agree (the basis constants are fixed).
  EXPECT_EQ(lp::StructuralDigest().value(), lp::StructuralDigest().value());
}

//===----------------------------------------------------------------------===//
// Subproblem cache semantics.
//===----------------------------------------------------------------------===//

TEST(Lp2Cache, FirstInsertWinsAndMergeIsOrdered) {
  lp::StructuralDigest D;
  D.addU64(7);
  const lp::StructuralDigest::Value K = D.value();

  BwpSubproblemCache C;
  C.insert(K, {{1.0}});
  C.insert(K, {{2.0}}); // Ignored: entries are immutable once published.
  ASSERT_NE(C.find(K), nullptr);
  EXPECT_EQ(C.find(K)->Values[0], 1.0);

  BwpSubproblemCache Overlay;
  Overlay.insert(K, {{3.0}}); // Loses to the existing entry on merge.
  C.merge(std::move(Overlay));
  EXPECT_EQ(C.find(K)->Values[0], 1.0);
  EXPECT_EQ(C.numEntries(), 1u);
}

//===----------------------------------------------------------------------===//
// Direct-solve equivalences (exact pivot accounting).
//===----------------------------------------------------------------------===//

TEST(Lp2Equivalence, DecomposeOnOffBitwise) {
  TwoComponentFixture F;
  lp::LpTelemetry On, Off;
  BwpSolveOptions Decomposed;
  Decomposed.Decompose = true;
  BwpSolveOptions Monolithic;
  Monolithic.Decompose = false;
  CoreWeights WOn = solveWith(F, Decomposed, On);
  CoreWeights WOff = solveWith(F, Monolithic, Off);
  expectBitwiseEqual(WOn, WOff);
  // With no cache in play the per-component fixpoints replay exactly the
  // monolithic loop's solves (a converged component's objectives stop
  // changing, so the monolithic loop skips them as identical
  // subproblems).
  EXPECT_EQ(On.Pivots, Off.Pivots);
  EXPECT_EQ(On.Solves, Off.Solves);
}

TEST(Lp2Equivalence, ReuseModelsOnOffBitwise) {
  // The satellite bugfix: per-iteration lp::Model reconstruction replaced
  // by row patching. Identical model content must mean identical pivots.
  TwoComponentFixture F;
  lp::LpTelemetry On, Off;
  BwpSolveOptions Reuse;
  Reuse.ReuseModels = true;
  BwpSolveOptions Fresh;
  Fresh.ReuseModels = false;
  // SoloIpc enables the balancing passes — the path that patches the
  // primary-floor row and truncates the CapZ tail between iterations.
  const std::vector<double> SoloIpc = {2.0, 1.0, 2.0, 1.0};
  CoreWeights WOn = solveWith(F, Reuse, On, SoloIpc);
  CoreWeights WOff = solveWith(F, Fresh, Off, SoloIpc);
  expectBitwiseEqual(WOn, WOff);
  EXPECT_EQ(On.Pivots, Off.Pivots);
  EXPECT_EQ(On.Solves, Off.Solves);
}

TEST(Lp2Equivalence, CacheOnOffBitwiseValues) {
  TwoComponentFixture F;
  BwpSubproblemCache Cache;
  lp::LpTelemetry Warm, Cold;
  BwpSolveOptions Cached;
  Cached.Cache = &Cache;
  BwpSolveOptions Uncached;
  CoreWeights WCold = solveWith(F, Uncached, Cold);
  CoreWeights WWarm = solveWith(F, Cached, Warm);
  expectBitwiseEqual(WWarm, WCold);
  EXPECT_GT(Warm.WarmStartAttempts, 0);
  EXPECT_EQ(Cold.WarmStartAttempts, 0);
  // A second cached solve of the identical problem replays every block.
  lp::LpTelemetry Replay;
  CoreWeights WReplay = solveWith(F, Cached, Replay);
  expectBitwiseEqual(WReplay, WCold);
  EXPECT_GT(Replay.WarmStartHits, 0);
  EXPECT_LT(Replay.Pivots, Cold.Pivots);
}

TEST(Lp2Equivalence, ExecutorFanOutBitwise) {
  // Decomposed solve fanned over a real two-worker executor vs inline:
  // identical weights, identical telemetry (the fan-out compensates
  // thread-local telemetry into index-ordered slots).
  TwoComponentFixture F;
  lp::LpTelemetry Inline, Fanned;
  BwpSolveOptions Serial;
  CoreWeights WSerial = solveWith(F, Serial, Inline);
  Executor Exec(2);
  BwpSolveStats Stats;
  BwpSolveOptions Parallel;
  Parallel.Exec = &Exec;
  Parallel.Stats = &Stats;
  CoreWeights WParallel = solveWith(F, Parallel, Fanned);
  expectBitwiseEqual(WParallel, WSerial);
  EXPECT_EQ(Fanned.Pivots, Inline.Pivots);
  EXPECT_EQ(Fanned.Solves, Inline.Solves);
  EXPECT_EQ(Stats.Components, 2);
  EXPECT_TRUE(Stats.Decomposed);
}

//===----------------------------------------------------------------------===//
// Pipeline-level equivalences on the shipped profiles.
//===----------------------------------------------------------------------===//

namespace {

struct ProfileRun {
  std::string MappingText;
  double CoreSlack = 0.0;
  long CorePivots = 0;
  long CompletePivots = 0;
  long WarmAttempts = 0;
  long WarmHits = 0;
  long Components = 0;
};

ProfileRun runProfile(const MachineModel &M, PalmedConfig Config) {
  AnalyticOracle Oracle(M);
  BenchmarkRunner Runner(M, Oracle);
  Pipeline P(Runner, Config);
  const PalmedResult &R = P.run();
  ProfileRun Out;
  Out.MappingText = R.Mapping.toText(M.isa());
  Out.CoreSlack = R.Stats.CoreSlack;
  Out.CorePivots = R.Stats.CoreLpPivots;
  Out.CompletePivots = R.Stats.CompleteLpPivots;
  Out.WarmAttempts = R.Stats.LpWarmStartAttempts;
  Out.WarmHits = R.Stats.LpWarmStartHits;
  Out.Components = R.Stats.Lp2Components;
  return Out;
}

/// Decompose on vs off must agree bitwise on the mapping text (which
/// carries the rho traces) and — with the cache off, so hit patterns
/// cannot shift work — on the exact LP pivot counts.
void checkDecomposeEquivalence(const MachineModel &M, PalmedConfig Config) {
  Config.Lp2Cache = false;
  PalmedConfig Mono = Config;
  Mono.Lp2Decompose = false;
  ProfileRun On = runProfile(M, Config);
  ProfileRun Off = runProfile(M, Mono);
  EXPECT_EQ(On.MappingText, Off.MappingText);
  EXPECT_EQ(On.CoreSlack, Off.CoreSlack);
  EXPECT_EQ(On.CorePivots, Off.CorePivots);
  EXPECT_EQ(On.CompletePivots, Off.CompletePivots);
  EXPECT_GE(On.Components, 1);
}

} // namespace

TEST(Lp2Pipeline, DecomposeEquivalenceFig1) {
  checkDecomposeEquivalence(makeFig1Machine(), PalmedConfig());
}

TEST(Lp2Pipeline, DecomposeEquivalenceSkl) {
  checkDecomposeEquivalence(makeSklLike(), PalmedConfig());
}

TEST(Lp2Pipeline, DecomposeEquivalenceStress) {
  checkDecomposeEquivalence(makeStressMachine(StressIsaConfig()),
                            PalmedConfig());
}

TEST(Lp2Pipeline, DecomposeEquivalenceHuge) {
  PalmedConfig Config;
  Config.Selection.ClusterPairPruning = true;
  checkDecomposeEquivalence(makeStressMachine(hugeStressConfig()), Config);
}

TEST(Lp2Pipeline, WarmVsColdBitwiseSkl) {
  MachineModel M = makeSklLike();
  PalmedConfig Warm;
  PalmedConfig Cold;
  Cold.Lp2Cache = false;
  ProfileRun W = runProfile(M, Warm);
  ProfileRun C = runProfile(M, Cold);
  // The cache only skips work; the mapping and its weights are bitwise
  // unchanged.
  EXPECT_EQ(W.MappingText, C.MappingText);
  EXPECT_EQ(W.CoreSlack, C.CoreSlack);
  // The warm run probes and hits; the cold run never counts an attempt.
  EXPECT_GT(W.WarmAttempts, 0);
  EXPECT_GT(W.WarmHits, 0);
  EXPECT_EQ(C.WarmAttempts, 0);
  EXPECT_EQ(C.WarmHits, 0);
  EXPECT_LT(W.CorePivots + W.CompletePivots,
            C.CorePivots + C.CompletePivots);
  EXPECT_GE(W.Components, 1);
}
