//===- tests/isa_test.cpp - Instruction set and microkernel tests ---------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "isa/InstructionSet.h"
#include "isa/Microkernel.h"

#include <gtest/gtest.h>

using namespace palmed;

namespace {

InstructionSet makeIsa() {
  InstructionSet Isa;
  Isa.add({"ADD", ExtClass::Base, InstrCategory::IntAlu});
  Isa.add({"MUL", ExtClass::Base, InstrCategory::IntMul});
  Isa.add({"ADDSS", ExtClass::Sse, InstrCategory::FpAdd});
  return Isa;
}

} // namespace

TEST(InstructionSet, AddAndLookup) {
  InstructionSet Isa = makeIsa();
  EXPECT_EQ(Isa.size(), 3u);
  EXPECT_EQ(Isa.findByName("MUL"), 1u);
  EXPECT_EQ(Isa.findByName("NOPE"), InvalidInstr);
  EXPECT_EQ(Isa.name(2), "ADDSS");
  EXPECT_EQ(Isa.info(2).Ext, ExtClass::Sse);
}

TEST(InstructionSet, AllIdsInOrder) {
  InstructionSet Isa = makeIsa();
  std::vector<InstrId> Ids = Isa.allIds();
  ASSERT_EQ(Ids.size(), 3u);
  EXPECT_EQ(Ids[0], 0u);
  EXPECT_EQ(Ids[2], 2u);
}

TEST(InstructionSet, CategoryNames) {
  EXPECT_STREQ(categoryName(InstrCategory::IntAlu), "int-alu");
  EXPECT_STREQ(categoryName(InstrCategory::FpDiv), "fp-div");
  EXPECT_STREQ(extClassName(ExtClass::Avx), "avx");
}

TEST(Microkernel, AddMergesTerms) {
  Microkernel K;
  K.add(3, 1.0);
  K.add(1, 2.0);
  K.add(3, 0.5);
  ASSERT_EQ(K.numDistinct(), 2u);
  EXPECT_DOUBLE_EQ(K.multiplicity(3), 1.5);
  EXPECT_DOUBLE_EQ(K.multiplicity(1), 2.0);
  EXPECT_DOUBLE_EQ(K.multiplicity(7), 0.0);
  EXPECT_DOUBLE_EQ(K.size(), 3.5);
  // Terms stay sorted by instruction id.
  EXPECT_EQ(K.terms()[0].first, 1u);
  EXPECT_EQ(K.terms()[1].first, 3u);
}

TEST(Microkernel, OrderIndependentEquality) {
  Microkernel A, B;
  A.add(1, 1.0);
  A.add(2, 2.0);
  B.add(2, 2.0);
  B.add(1, 1.0);
  EXPECT_TRUE(A == B);
}

TEST(Microkernel, MergeKernels) {
  Microkernel A = Microkernel::single(0, 1.0);
  Microkernel B = Microkernel::single(1, 2.0);
  A.add(B);
  EXPECT_DOUBLE_EQ(A.size(), 3.0);
  EXPECT_TRUE(A.contains(1));
}

TEST(Microkernel, Scaled) {
  Microkernel K;
  K.add(0, 1.0);
  K.add(1, 2.0);
  Microkernel S = K.scaled(4.0);
  EXPECT_DOUBLE_EQ(S.multiplicity(0), 4.0);
  EXPECT_DOUBLE_EQ(S.multiplicity(1), 8.0);
  EXPECT_DOUBLE_EQ(K.multiplicity(0), 1.0); // Original untouched.
}

TEST(Microkernel, IntegralityCheck) {
  Microkernel K;
  K.add(0, 2.0);
  EXPECT_TRUE(K.isIntegral());
  K.add(1, 0.5);
  EXPECT_FALSE(K.isIntegral());
}

TEST(Microkernel, RoundingPreservesRatios) {
  Microkernel K;
  K.add(0, 1.5);
  K.add(1, 1.0);
  Microkernel R = K.roundedToIntegers(20);
  EXPECT_TRUE(R.isIntegral());
  // Ratio 1.5 must be preserved exactly (3 : 2).
  EXPECT_DOUBLE_EQ(R.multiplicity(0) / R.multiplicity(1), 1.5);
}

TEST(Microkernel, RoundingPaperExample) {
  // Sec. VI-A: "a benchmark aabb with a=0.06 and b=1 will be rounded to
  // a^1 b^20" style integer scaling within 5%.
  Microkernel K;
  K.add(0, 0.06);
  K.add(1, 1.0);
  Microkernel R = K.roundedToIntegers(20);
  EXPECT_TRUE(R.isIntegral());
  double Ratio = R.multiplicity(1) / R.multiplicity(0);
  EXPECT_NEAR(Ratio, 1.0 / 0.06, 1.0 / 0.06 * 0.06);
}

TEST(Microkernel, RoundingKeepsTinyTerms) {
  Microkernel K;
  K.add(0, 0.001); // Below the denominator resolution.
  K.add(1, 1.0);
  Microkernel R = K.roundedToIntegers(10);
  EXPECT_GT(R.multiplicity(0), 0.0); // Never silently dropped.
}

TEST(Microkernel, StrFormatting) {
  InstructionSet Isa = makeIsa();
  Microkernel K;
  K.add(0, 2.0);
  K.add(1, 1.0);
  EXPECT_EQ(K.str(Isa), "ADD^2 MUL");
}

TEST(Microkernel, ParseRoundTrip) {
  InstructionSet Isa = makeIsa();
  Microkernel K;
  K.add(0, 2.0);
  K.add(2, 1.0);
  auto Parsed = Microkernel::parse(K.str(Isa), Isa);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_TRUE(*Parsed == K);
}

TEST(Microkernel, ParseFractionalAndImplicitMultiplicity) {
  InstructionSet Isa = makeIsa();
  auto K = Microkernel::parse("ADD^0.5 MUL", Isa);
  ASSERT_TRUE(K.has_value());
  EXPECT_DOUBLE_EQ(K->multiplicity(0), 0.5);
  EXPECT_DOUBLE_EQ(K->multiplicity(1), 1.0);
}

TEST(Microkernel, ParseMergesRepeatedNames) {
  InstructionSet Isa = makeIsa();
  auto K = Microkernel::parse("ADD ADD^2", Isa);
  ASSERT_TRUE(K.has_value());
  EXPECT_DOUBLE_EQ(K->multiplicity(0), 3.0);
}

TEST(Microkernel, ParseRejectsGarbage) {
  InstructionSet Isa = makeIsa();
  EXPECT_FALSE(Microkernel::parse("", Isa).has_value());
  EXPECT_FALSE(Microkernel::parse("NOPE", Isa).has_value());
  EXPECT_FALSE(Microkernel::parse("ADD^", Isa).has_value());
  EXPECT_FALSE(Microkernel::parse("ADD^-2", Isa).has_value());
  EXPECT_FALSE(Microkernel::parse("ADD^x", Isa).has_value());
}

TEST(Microkernel, ParseRejectsNonFiniteMultiplicityRegression) {
  // Found by fuzz_protocol: strtod parses "inf"/"nan", and NaN slips
  // past a `Mult <= 0.0` check because every comparison with NaN is
  // false. Such kernels poisoned predictions with non-finite IPCs.
  InstructionSet Isa = makeIsa();
  EXPECT_FALSE(Microkernel::parse("ADD^inf", Isa).has_value());
  EXPECT_FALSE(Microkernel::parse("ADD^nan", Isa).has_value());
  EXPECT_FALSE(Microkernel::parse("ADD^1e999", Isa).has_value());
}
