//===- eval/Workload.cpp - Synthetic basic-block workloads ----------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "eval/Workload.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace palmed;

const char *palmed::workloadProfileName(WorkloadProfile Profile) {
  switch (Profile) {
  case WorkloadProfile::SpecLike:
    return "SPEC2017-like";
  case WorkloadProfile::PolybenchLike:
    return "Polybench-like";
  }
  return "unknown";
}

namespace {

/// Category weights per profile; categories absent from the machine are
/// renormalized away.
std::map<InstrCategory, double> profileMix(WorkloadProfile Profile) {
  switch (Profile) {
  case WorkloadProfile::SpecLike:
    return {
        {InstrCategory::IntAlu, 0.30},     {InstrCategory::Load, 0.20},
        {InstrCategory::Store, 0.08},      {InstrCategory::Branch, 0.12},
        {InstrCategory::Shift, 0.06},      {InstrCategory::IntMul, 0.05},
        {InstrCategory::AddressGen, 0.07}, {InstrCategory::IntDiv, 0.02},
        {InstrCategory::FpAdd, 0.03},      {InstrCategory::FpMul, 0.03},
        {InstrCategory::VecInt, 0.02},     {InstrCategory::VecShuffle, 0.01},
        {InstrCategory::FpDiv, 0.005},     {InstrCategory::Other, 0.005},
    };
  case WorkloadProfile::PolybenchLike:
    return {
        {InstrCategory::FpAdd, 0.18},      {InstrCategory::FpMul, 0.18},
        {InstrCategory::VecInt, 0.10},     {InstrCategory::VecShuffle, 0.05},
        {InstrCategory::Load, 0.20},       {InstrCategory::Store, 0.07},
        {InstrCategory::AddressGen, 0.08}, {InstrCategory::IntAlu, 0.07},
        {InstrCategory::Branch, 0.04},     {InstrCategory::IntMul, 0.01},
        {InstrCategory::FpDiv, 0.01},      {InstrCategory::Other, 0.01},
    };
  }
  return {};
}

} // namespace

std::vector<BasicBlock>
palmed::generateWorkload(const MachineModel &Machine,
                         const WorkloadConfig &Config) {
  const InstructionSet &Isa = Machine.isa();
  Rng R(Config.Seed);

  // Index instructions by (category, extension class).
  std::map<InstrCategory, std::vector<InstrId>> Scalar, Sse, Avx;
  for (InstrId Id = 0; Id < Machine.numInstructions(); ++Id) {
    const InstrInfo &Info = Isa.info(Id);
    switch (Info.Ext) {
    case ExtClass::Base:
    case ExtClass::Mmx:
    case ExtClass::X87:
      // Legacy classes ride the scalar bucket: no mixing rule applies and
      // the workload profiles only distinguish scalar vs SSE vs AVX mixes.
      Scalar[Info.Category].push_back(Id);
      break;
    case ExtClass::Sse:
      Sse[Info.Category].push_back(Id);
      break;
    case ExtClass::Avx:
    case ExtClass::Avx512:
      Avx[Info.Category].push_back(Id);
      break;
    }
  }

  std::map<InstrCategory, double> Mix = profileMix(Config.Profile);
  std::vector<InstrCategory> Categories;
  std::vector<double> Weights;
  for (const auto &[Cat, W] : Mix) {
    bool Present = Scalar.count(Cat) || Sse.count(Cat) || Avx.count(Cat);
    if (!Present)
      continue;
    Categories.push_back(Cat);
    Weights.push_back(W);
  }
  assert(!Categories.empty() && "machine has no usable categories");

  std::vector<BasicBlock> Blocks;
  Blocks.reserve(Config.NumBlocks);
  while (Blocks.size() < Config.NumBlocks) {
    // Per-block vector flavor, as produced by one compilation mode.
    bool Mixed = R.chance(Config.MixedFlavorProbability);
    bool UseAvx = R.chance(0.4);

    auto PickFrom = [&](InstrCategory Cat) -> InstrId {
      // Vector categories draw from the block's flavor; scalar categories
      // from the base ISA; fall back across classes when a class lacks the
      // category.
      std::vector<const std::vector<InstrId> *> Sources;
      bool AvxNow = Mixed ? R.chance(0.5) : UseAvx;
      if (AvxNow) {
        Sources = {&Avx[Cat], &Sse[Cat], &Scalar[Cat]};
      } else {
        Sources = {&Sse[Cat], &Avx[Cat], &Scalar[Cat]};
      }
      if (Scalar.count(Cat) && !Scalar[Cat].empty())
        Sources.insert(Sources.begin(), &Scalar[Cat]);
      for (const auto *Src : Sources)
        if (!Src->empty())
          return (*Src)[R.uniformInt(Src->size())];
      return InvalidInstr;
    };

    int Distinct = static_cast<int>(
        R.uniformIntIn(Config.MinDistinct, Config.MaxDistinct));
    Microkernel K;
    for (int D = 0; D < Distinct; ++D) {
      InstrCategory Cat = Categories[R.pickWeighted(Weights)];
      InstrId Id = PickFrom(Cat);
      if (Id == InvalidInstr)
        continue;
      K.add(Id, static_cast<double>(
                    R.uniformIntIn(1, Config.MaxMultiplicity)));
    }
    if (K.empty())
      continue;
    BasicBlock B;
    B.K = std::move(K);
    B.Weight = 1.0 / static_cast<double>(
                         R.zipf(Config.NumBlocks, Config.ZipfExponent));
    Blocks.push_back(std::move(B));
  }
  return Blocks;
}
