//===- eval/Harness.h - Accuracy evaluation harness ------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig. 4 harness: run every predictor over a weighted block set,
/// compare against native (simulated) execution, and compute the paper's
/// three metrics — coverage, weighted root-mean-square relative IPC error,
/// and Kendall's tau rank correlation — plus the heatmap histogram of
/// predicted/native IPC ratio against native IPC (Fig. 4a).
///
/// Coverage follows the paper's definition: the fraction of *blocks
/// supported by Palmed* that the tool could process.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_EVAL_HARNESS_H
#define PALMED_EVAL_HARNESS_H

#include "baselines/Predictor.h"
#include "eval/Workload.h"
#include "sim/ThroughputOracle.h"

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace palmed {

/// Per-tool accuracy summary (one row of the Fig. 4b table).
struct ToolAccuracy {
  std::string Tool;
  /// Percent of reference-supported blocks this tool processed.
  double CoveragePct = 0.0;
  /// Weighted RMS relative IPC error, in percent.
  double ErrPct = 0.0;
  /// Kendall's tau over the covered blocks.
  double KendallTau = 0.0;
  /// Number of blocks covered.
  size_t NumCovered = 0;
};

/// Full evaluation outcome.
struct EvalOutcome {
  std::vector<BasicBlock> Blocks;
  std::vector<double> NativeIpc;
  /// Per tool, per block (nullopt = not processed).
  std::map<std::string, std::vector<std::optional<double>>> Predictions;
  /// Name of the coverage-reference tool (normally "palmed").
  std::string ReferenceTool;

  /// Computes the Fig. 4b row for \p Tool.
  ToolAccuracy accuracy(const std::string &Tool) const;

  /// 2D histogram for Fig. 4a: X = native IPC in [0, MaxIpc), Y =
  /// predicted/native ratio in [0, MaxRatio); weights accumulated per cell.
  std::vector<std::vector<double>> heatmap(const std::string &Tool,
                                           size_t XBins, size_t YBins,
                                           double MaxIpc,
                                           double MaxRatio) const;

  /// Renders a heatmap as ASCII art (densest cell = '@').
  void printHeatmap(std::ostream &OS, const std::string &Tool, size_t XBins,
                    size_t YBins, double MaxIpc, double MaxRatio) const;
};

/// Runs \p Predictors over \p Blocks; native IPC comes from \p Native.
/// \p ReferenceTool names the predictor defining the coverage denominator.
/// Equivalent to a serial palmed::EvalSession (see palmed/EvalSession.h),
/// which adds the Parallel execution policy.
[[deprecated("use palmed::EvalSession (see palmed/palmed.h)")]] EvalOutcome
runEvaluation(ThroughputOracle &Native,
              const std::vector<BasicBlock> &Blocks,
              const std::vector<Predictor *> &Predictors,
              const std::string &ReferenceTool);

} // namespace palmed

#endif // PALMED_EVAL_HARNESS_H
