//===- eval/Harness.cpp - Accuracy evaluation harness ---------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"

#include "palmed/EvalSession.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

using namespace palmed;

// Defining the deprecated symbol is intentional; only *calls* should warn.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

EvalOutcome palmed::runEvaluation(ThroughputOracle &Native,
                                  const std::vector<BasicBlock> &Blocks,
                                  const std::vector<Predictor *> &Predictors,
                                  const std::string &ReferenceTool) {
  EvalSession Session(Native, ExecutionPolicy::serial());
  Session.setReferenceTool(ReferenceTool);
  for (Predictor *P : Predictors)
    Session.add(*P);
  return Session.run(Blocks);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

ToolAccuracy EvalOutcome::accuracy(const std::string &Tool) const {
  ToolAccuracy A;
  A.Tool = Tool;
  auto ToolIt = Predictions.find(Tool);
  assert(ToolIt != Predictions.end() && "unknown tool");
  const auto &Preds = ToolIt->second;

  // Coverage denominator: blocks the reference tool supports.
  const auto *RefPreds = &Preds;
  auto RefIt = Predictions.find(ReferenceTool);
  if (RefIt != Predictions.end())
    RefPreds = &RefIt->second;

  size_t RefSupported = 0;
  std::vector<double> Pred, Nat, Weights;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    bool RefOk = (*RefPreds)[I].has_value();
    if (RefOk)
      ++RefSupported;
    if (!Preds[I].has_value())
      continue;
    if (RefOk)
      ++A.NumCovered;
    Pred.push_back(*Preds[I]);
    Nat.push_back(NativeIpc[I]);
    Weights.push_back(Blocks[I].Weight);
  }
  A.CoveragePct = RefSupported == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(A.NumCovered) /
                            static_cast<double>(RefSupported);
  A.ErrPct = 100.0 * weightedRmsRelativeError(Pred, Nat, Weights);
  A.KendallTau = kendallTau(Pred, Nat);
  return A;
}

std::vector<std::vector<double>>
EvalOutcome::heatmap(const std::string &Tool, size_t XBins, size_t YBins,
                     double MaxIpc, double MaxRatio) const {
  std::vector<std::vector<double>> Grid(YBins,
                                        std::vector<double>(XBins, 0.0));
  const auto &Preds = Predictions.at(Tool);
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (!Preds[I].has_value() || NativeIpc[I] <= 0.0)
      continue;
    double X = NativeIpc[I] / MaxIpc;
    double Y = (*Preds[I] / NativeIpc[I]) / MaxRatio;
    size_t XI = std::min(XBins - 1,
                         static_cast<size_t>(std::max(0.0, X) * XBins));
    size_t YI = std::min(YBins - 1,
                         static_cast<size_t>(std::max(0.0, Y) * YBins));
    Grid[YI][XI] += Blocks[I].Weight;
  }
  return Grid;
}

void EvalOutcome::printHeatmap(std::ostream &OS, const std::string &Tool,
                               size_t XBins, size_t YBins, double MaxIpc,
                               double MaxRatio) const {
  auto Grid = heatmap(Tool, XBins, YBins, MaxIpc, MaxRatio);
  double Peak = 0.0;
  for (const auto &Row : Grid)
    for (double V : Row)
      Peak = std::max(Peak, V);
  static const char Shades[] = " .:-=+*#%@";
  OS << Tool << " (y: predicted/native in [0," << MaxRatio
     << "), x: native IPC in [0," << MaxIpc << "))\n";
  for (size_t Y = YBins; Y-- > 0;) {
    // The y = 1 ratio line is the accuracy reference (red line in Fig. 4a).
    double RowLo = MaxRatio * static_cast<double>(Y) / YBins;
    double RowHi = MaxRatio * static_cast<double>(Y + 1) / YBins;
    OS << (RowLo <= 1.0 && 1.0 < RowHi ? '>' : '|');
    for (size_t X = 0; X < XBins; ++X) {
      double V = Grid[Y][X];
      size_t Shade =
          Peak == 0.0
              ? 0
              : std::min<size_t>(9, static_cast<size_t>(
                                        std::ceil(9.0 * V / Peak)));
      OS << Shades[Shade];
    }
    OS << "|\n";
  }
}
