//===- eval/Workload.h - Synthetic basic-block workloads -------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block workload generation. The paper extracts weighted basic
/// blocks from SPECint2017 (static binary analysis + perf counters) and
/// PolyBench (QEMU translation blocks) and evaluates each tool on a
/// microkernel with the block's instruction mix. This reproduction
/// generates seeded synthetic block sets with the corresponding mix
/// profiles instead (see DESIGN.md):
///
///  * SpecLike — scalar-integer / branch / memory heavy, few FP ops;
///  * PolybenchLike — FP and SIMD heavy with address arithmetic and loads.
///
/// Blocks draw a per-block vector "flavor" (scalar / SSE / AVX) the way
/// compiled code does, with a small fraction of mixed blocks; block weights
/// follow a Zipf law like real execution-frequency profiles.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_EVAL_WORKLOAD_H
#define PALMED_EVAL_WORKLOAD_H

#include "isa/Microkernel.h"
#include "machine/MachineModel.h"

#include <cstdint>
#include <vector>

namespace palmed {

/// One weighted basic block.
struct BasicBlock {
  Microkernel K;
  /// Execution-frequency weight (the paper's per-block weight in the RMS
  /// error metric).
  double Weight = 1.0;
};

/// Workload instruction-mix profile.
enum class WorkloadProfile {
  SpecLike,
  PolybenchLike,
};

const char *workloadProfileName(WorkloadProfile Profile);

/// Generation knobs.
struct WorkloadConfig {
  WorkloadProfile Profile = WorkloadProfile::SpecLike;
  size_t NumBlocks = 1000;
  /// Distinct instructions per block (inclusive range).
  int MinDistinct = 3;
  int MaxDistinct = 14;
  /// Multiplicity per drawn instruction (inclusive range).
  int MaxMultiplicity = 4;
  /// Zipf exponent of the block-weight distribution.
  double ZipfExponent = 1.1;
  /// Probability that a vector block mixes SSE and AVX (rare in compiled
  /// code).
  double MixedFlavorProbability = 0.05;
  uint64_t Seed = 42;
};

/// Generates a deterministic block set over \p Machine's ISA.
std::vector<BasicBlock> generateWorkload(const MachineModel &Machine,
                                         const WorkloadConfig &Config);

} // namespace palmed

#endif // PALMED_EVAL_WORKLOAD_H
