//===- lp/Model.h - Linear/integer optimization model -----------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small LP/MILP modelling layer. Palmed's three optimization problems
/// (LP1 "shape", LP2 "bipartite weight problem", LPAUX per-instruction
/// mapping — paper Algs. 3, 4, 5) are expressed as Model instances and
/// solved by the bundled simplex (Simplex.h) and branch-and-bound (Milp.h).
/// The paper uses an off-the-shelf solver; this reproduction ships its own.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_LP_MODEL_H
#define PALMED_LP_MODEL_H

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace palmed {
namespace lp {

/// Index of a variable within its Model.
using VarId = int;

constexpr double Infinity = std::numeric_limits<double>::infinity();

/// A sparse linear expression sum_k Coeff_k * Var_k + Constant.
class LinearExpr {
public:
  LinearExpr() = default;
  /*implicit*/ LinearExpr(double Constant) : Constant(Constant) {}

  LinearExpr &add(VarId Var, double Coeff);
  LinearExpr &addConstant(double C) {
    Constant += C;
    return *this;
  }

  LinearExpr &operator+=(const LinearExpr &O);

  const std::vector<std::pair<VarId, double>> &terms() const { return Terms; }
  double constant() const { return Constant; }

  /// Merges duplicate variable terms and drops zero coefficients.
  void normalize();

  /// Evaluates against a full assignment vector.
  double evaluate(const std::vector<double> &Values) const;

private:
  std::vector<std::pair<VarId, double>> Terms;
  double Constant = 0.0;
};

/// Constraint comparison sense.
enum class Sense { LE, GE, EQ };

/// One linear constraint: Expr (sense) Rhs, with Expr's constant folded into
/// the right-hand side at build time.
struct Constraint {
  LinearExpr Expr;
  Sense Dir = Sense::LE;
  double Rhs = 0.0;
  std::string Name;
};

/// Variable metadata.
struct Variable {
  std::string Name;
  double LowerBound = 0.0;
  double UpperBound = Infinity;
  bool IsInteger = false;
};

/// Objective direction.
enum class Goal { Minimize, Maximize };

/// An LP/MILP model: variables with bounds, linear constraints, and one
/// linear objective.
class Model {
public:
  /// Adds a variable; \p LowerBound must be finite (the solvers shift
  /// variables by their lower bound).
  VarId addVar(std::string Name, double LowerBound, double UpperBound,
               bool IsInteger = false);

  /// Convenience: a 0/1 integer variable.
  VarId addBoolVar(std::string Name) {
    return addVar(std::move(Name), 0.0, 1.0, /*IsInteger=*/true);
  }

  void addConstraint(LinearExpr Expr, Sense Dir, double Rhs,
                     std::string Name = "");

  void setObjective(LinearExpr Expr, Goal Direction);

  size_t numVars() const { return Vars.size(); }
  size_t numConstraints() const { return Constraints_.size(); }
  const Variable &var(VarId Id) const { return Vars[static_cast<size_t>(Id)]; }
  const std::vector<Variable> &vars() const { return Vars; }
  const std::vector<Constraint> &constraints() const { return Constraints_; }
  const LinearExpr &objective() const { return Objective; }
  Goal goal() const { return Direction; }
  bool hasIntegerVars() const;

private:
  std::vector<Variable> Vars;
  std::vector<Constraint> Constraints_;
  LinearExpr Objective;
  Goal Direction = Goal::Minimize;
};

/// Solver outcome. The MILP solver only reports Optimal (and only proves
/// Infeasible) when the branch-and-bound tree was explored exhaustively:
/// any subtree dropped for a reason other than its bound — a node LP
/// hitting its iteration limit, or the node budget running out — degrades
/// the result to Feasible (best incumbent) or IterLimit (no incumbent).
enum class SolveStatus {
  Optimal,
  Feasible,   ///< MILP only: incumbent found but search truncated.
  Infeasible,
  Unbounded,
  IterLimit,
};

/// A (possibly partial) solution to a Model.
struct Solution {
  SolveStatus Status = SolveStatus::Infeasible;
  double Objective = 0.0;
  std::vector<double> Values;

  bool ok() const {
    return Status == SolveStatus::Optimal || Status == SolveStatus::Feasible;
  }
  double value(VarId Id) const { return Values[static_cast<size_t>(Id)]; }
};

} // namespace lp
} // namespace palmed

#endif // PALMED_LP_MODEL_H
