//===- lp/Model.h - Linear/integer optimization model -----------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small LP/MILP modelling layer. Palmed's three optimization problems
/// (LP1 "shape", LP2 "bipartite weight problem", LPAUX per-instruction
/// mapping — paper Algs. 3, 4, 5) are expressed as Model instances and
/// solved by the bundled simplex (Simplex.h) and branch-and-bound (Milp.h).
/// The paper uses an off-the-shelf solver; this reproduction ships its own.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_LP_MODEL_H
#define PALMED_LP_MODEL_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace palmed {
namespace lp {

/// Index of a variable within its Model.
using VarId = int;

constexpr double Infinity = std::numeric_limits<double>::infinity();

/// A sparse linear expression sum_k Coeff_k * Var_k + Constant.
class LinearExpr {
public:
  LinearExpr() = default;
  /*implicit*/ LinearExpr(double Constant) : Constant(Constant) {}

  LinearExpr &add(VarId Var, double Coeff);
  LinearExpr &addConstant(double C) {
    Constant += C;
    return *this;
  }

  LinearExpr &operator+=(const LinearExpr &O);

  const std::vector<std::pair<VarId, double>> &terms() const { return Terms; }
  double constant() const { return Constant; }

  /// Merges duplicate variable terms and drops zero coefficients.
  void normalize();

  /// Evaluates against a full assignment vector.
  double evaluate(const std::vector<double> &Values) const;

private:
  std::vector<std::pair<VarId, double>> Terms;
  double Constant = 0.0;
};

/// Constraint comparison sense.
enum class Sense { LE, GE, EQ };

/// One linear constraint: Expr (sense) Rhs, with Expr's constant folded into
/// the right-hand side at build time.
struct Constraint {
  LinearExpr Expr;
  Sense Dir = Sense::LE;
  double Rhs = 0.0;
  std::string Name;
};

/// Variable metadata.
struct Variable {
  std::string Name;
  double LowerBound = 0.0;
  double UpperBound = Infinity;
  bool IsInteger = false;
};

/// Objective direction.
enum class Goal { Minimize, Maximize };

/// An LP/MILP model: variables with bounds, linear constraints, and one
/// linear objective.
class Model {
public:
  /// Adds a variable; \p LowerBound must be finite (the solvers shift
  /// variables by their lower bound).
  VarId addVar(std::string Name, double LowerBound, double UpperBound,
               bool IsInteger = false);

  /// Convenience: a 0/1 integer variable.
  VarId addBoolVar(std::string Name) {
    return addVar(std::move(Name), 0.0, 1.0, /*IsInteger=*/true);
  }

  void addConstraint(LinearExpr Expr, Sense Dir, double Rhs,
                     std::string Name = "");

  /// Replaces constraint \p Idx in place, applying the same
  /// normalization/constant-folding as addConstraint. Together with
  /// truncateConstraints this supports incremental rederivation: a caller
  /// re-solving a model whose rows mostly survive between solves patches
  /// the changed rows instead of rebuilding the whole model.
  void replaceConstraint(size_t Idx, LinearExpr Expr, Sense Dir, double Rhs,
                         std::string Name = "");

  /// Drops constraints [\p N, numConstraints()). \p N must not exceed the
  /// current count. Capacity is kept for row reuse.
  void truncateConstraints(size_t N);

  void setObjective(LinearExpr Expr, Goal Direction);

  size_t numVars() const { return Vars.size(); }
  size_t numConstraints() const { return Constraints_.size(); }
  const Variable &var(VarId Id) const { return Vars[static_cast<size_t>(Id)]; }
  const std::vector<Variable> &vars() const { return Vars; }
  const std::vector<Constraint> &constraints() const { return Constraints_; }
  const LinearExpr &objective() const { return Objective; }
  Goal goal() const { return Direction; }
  bool hasIntegerVars() const;

private:
  std::vector<Variable> Vars;
  std::vector<Constraint> Constraints_;
  LinearExpr Objective;
  Goal Direction = Goal::Minimize;
};

/// A 128-bit structural digest: two independent 64-bit streams (an FNV-1a
/// variant and an FNV-1 variant over 64-bit lanes, distinct offset bases)
/// accumulated word-at-a-time. Solver-side memoization keys problems by
/// the exact bit patterns of their coefficient structure — never by
/// pointer identity — so a digest match means "same bytes"; hashing bit
/// patterns distinguishes strictly more than double equality (-0.0 vs
/// 0.0, NaN payloads), which can only turn a would-be hit into a miss,
/// never alias two different problems. Variable-length fields must be
/// length-prefixed by the caller (addSize) so adjacent fields cannot
/// re-associate into the same word stream. Not cryptographic: collision
/// odds are ~2^-128 per pair on non-adversarial data. Containers keyed by
/// Value must be ordered (std::map) to keep iteration deterministic.
class StructuralDigest {
public:
  struct Value {
    uint64_t Lo = 0;
    uint64_t Hi = 0;
    friend bool operator==(const Value &A, const Value &B) {
      return A.Lo == B.Lo && A.Hi == B.Hi;
    }
    friend bool operator!=(const Value &A, const Value &B) {
      return !(A == B);
    }
    friend bool operator<(const Value &A, const Value &B) {
      if (A.Hi != B.Hi)
        return A.Hi < B.Hi;
      return A.Lo < B.Lo;
    }
  };

  void addU64(uint64_t V) {
    // Stream A: xor-then-multiply (FNV-1a order); stream B:
    // multiply-then-xor (FNV-1 order). The different operation orders
    // decorrelate the two streams without a second pass.
    A = (A ^ V) * Prime;
    B = (B * Prime) ^ V;
  }
  void addSize(size_t V) { addU64(static_cast<uint64_t>(V)); }
  void addInt(long V) { addU64(static_cast<uint64_t>(V)); }
  void addDouble(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    addU64(Bits);
  }

  Value value() const { return {A, B}; }

private:
  static constexpr uint64_t Prime = 1099511628211ULL;
  uint64_t A = 14695981039346656037ULL; // FNV-1a 64-bit offset basis.
  uint64_t B = 0x6C62272E07BB0142ULL;   // Distinct basis for stream B.
};

/// Solver outcome. The MILP solver only reports Optimal (and only proves
/// Infeasible) when the branch-and-bound tree was explored exhaustively:
/// any subtree dropped for a reason other than its bound — a node LP
/// hitting its iteration limit, or the node budget running out — degrades
/// the result to Feasible (best incumbent) or IterLimit (no incumbent).
enum class SolveStatus {
  Optimal,
  Feasible,   ///< MILP only: incumbent found but search truncated.
  Infeasible,
  Unbounded,
  IterLimit,
};

/// A (possibly partial) solution to a Model.
struct Solution {
  SolveStatus Status = SolveStatus::Infeasible;
  double Objective = 0.0;
  std::vector<double> Values;

  bool ok() const {
    return Status == SolveStatus::Optimal || Status == SolveStatus::Feasible;
  }
  double value(VarId Id) const { return Values[static_cast<size_t>(Id)]; }
};

} // namespace lp
} // namespace palmed

#endif // PALMED_LP_MODEL_H
