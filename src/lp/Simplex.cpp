//===- lp/Simplex.cpp - Bounded-variable primal/dual simplex --------------===//
//
// Part of the PALMED reproduction.
//
// Implementation notes: variables are shifted by their (finite) lower bound
// so the working variables live in [0, upper-lower]. Finite upper bounds are
// handled implicitly: a nonbasic variable rests at either bound (bound flips
// move it across without a pivot), so no explicit upper-bound rows are ever
// materialized. Phase 1 minimizes the sum of artificial variables; phase 2
// the user objective. Pricing is Devex with a Bland fallback after a
// degenerate stall. Artificial columns are dead after phase 1: they are
// never priced and never swept by phase-2 eliminations.
//
// Warm starts: the column numbering is stable across solves of the same
// model (structural variables, then one slack id per row, then one
// artificial id per row), so a final basis can seed a re-solve after bound
// overrides change (branch-and-bound children; the bounded dual simplex
// restores primal feasibility) or after the objective changes (BWP pin
// iterations; the basis stays primal feasible and phase 1 is skipped).
// Whenever the warm basis does not fit, the solver silently falls back to a
// cold two-phase solve, so warm starts never change results, only work.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

using namespace palmed;
using namespace palmed::lp;

LpTelemetry &lp::lpTelemetry() {
  thread_local LpTelemetry Tel;
  return Tel;
}

namespace {

enum class ColStatus : uint8_t { AtLower, AtUpper, Basic };

constexpr size_t None = static_cast<size_t>(-1);

/// Dense tableau over the physical columns actually materialized:
/// [0, NumVars) structural, [NumVars, ArtStart) slacks for LE/GE rows, and
/// [ArtStart, NumCols) artificials for the rows that need one to form the
/// initial basis. Rhs holds the *actual value* of each row's basic variable
/// (nonbasic-at-upper contributions folded in), except transiently during
/// warm-basis replay where it is treated as a plain algebraic column.
class Tableau {
public:
  size_t NumRows = 0;
  size_t NumVars = 0;
  size_t ArtStart = 0; ///< Live-column sweep bound: pricing and phase
                       ///< eliminations never touch [ArtStart, NumCols).
  size_t NumCols = 0;

  std::vector<double> Data; ///< NumRows x NumCols, row-major.
  std::vector<double> Rhs;
  std::vector<double> Cost;  ///< Reduced costs of the current phase.
  double CostRhs = 0.0; ///< Compat mode only: the cost row's rhs entry
                        ///< (-objective), swept like the historical code.
  std::vector<double> Upper; ///< Shifted upper bound (Infinity if none).
  std::vector<ColStatus> Status;
  std::vector<int> Basis;     ///< Per row: physical basic column.
  std::vector<double> Weight; ///< Devex reference weights.

  std::vector<int> SlackPhysOfRow; ///< -1 when the row has no slack column.
  std::vector<int> ArtPhysOfRow;   ///< -1 when the row has no artificial.
  std::vector<int> RowOfPhys;      ///< For cols >= NumVars: owning row.

  double *row(size_t R) { return &Data[R * NumCols]; }
  const double *row(size_t R) const { return &Data[R * NumCols]; }
  double &at(size_t R, size_t C) { return Data[R * NumCols + C]; }
  double at(size_t R, size_t C) const { return Data[R * NumCols + C]; }

  int logicalOf(int Phys) const {
    if (static_cast<size_t>(Phys) < NumVars)
      return Phys;
    size_t R = static_cast<size_t>(RowOfPhys[static_cast<size_t>(Phys)]);
    bool IsArt = static_cast<size_t>(Phys) >= ArtStart;
    return static_cast<int>(NumVars + (IsArt ? NumRows : 0) + R);
  }

  /// Maps a stable logical column id back to this instance's physical
  /// column, or -1 when the column was not materialized.
  int physOf(int Logical) const {
    if (Logical < 0)
      return -1;
    size_t L = static_cast<size_t>(Logical);
    if (L < NumVars)
      return Logical;
    if (L < NumVars + NumRows)
      return SlackPhysOfRow[L - NumVars];
    if (L < NumVars + 2 * NumRows)
      return ArtPhysOfRow[L - NumVars - NumRows];
    return -1;
  }
};

/// Builds the tableau for \p M under effective bounds Lo/Hi. The initial
/// basis is the slack of every row whose (sign-normalized) slack coefficient
/// is +1, and an artificial elsewhere. With \p ExplicitBounds (compat mode)
/// every finite upper bound becomes one extra LE row, exactly like the
/// historical solver, and the implicit-bound machinery stays inert.
void buildTableau(Tableau &T, const Model &M, const std::vector<double> &Lo,
                  const std::vector<double> &Hi, bool ExplicitBounds) {
  const size_t NumVars = M.numVars();
  const size_t NumCons = M.numConstraints();
  std::vector<size_t> UbVars;
  if (ExplicitBounds)
    for (size_t V = 0; V < NumVars; ++V)
      if (std::isfinite(Hi[V]))
        UbVars.push_back(V);
  const size_t NumRows = NumCons + UbVars.size();
  T.NumRows = NumRows;
  T.NumVars = NumVars;

  thread_local std::vector<double> EffRhs, RowSign, SlackCoeff;
  thread_local std::vector<uint8_t> NeedArt;
  EffRhs.assign(NumRows, 0.0);
  RowSign.assign(NumRows, 1.0);
  SlackCoeff.assign(NumRows, 0.0);
  NeedArt.assign(NumRows, 0);

  size_t NumSlack = 0;
  for (size_t R = 0; R < NumRows; ++R) {
    double Rhs;
    Sense Dir;
    if (R < NumCons) {
      const Constraint &C = M.constraints()[R];
      double Shift = 0.0;
      for (const auto &[Var, Coeff] : C.Expr.terms())
        Shift += Coeff * Lo[static_cast<size_t>(Var)];
      Rhs = C.Rhs - Shift;
      Dir = C.Dir;
    } else {
      size_t V = UbVars[R - NumCons];
      Rhs = Hi[V] - Lo[V];
      Dir = Sense::LE;
    }
    if (Rhs < 0.0) {
      Rhs = -Rhs;
      RowSign[R] = -1.0;
    }
    EffRhs[R] = Rhs;
    if (Dir != Sense::EQ) {
      ++NumSlack;
      SlackCoeff[R] = RowSign[R] * (Dir == Sense::LE ? 1.0 : -1.0);
    }
    NeedArt[R] = SlackCoeff[R] != 1.0;
  }
  T.ArtStart = NumVars + NumSlack;

  T.SlackPhysOfRow.assign(NumRows, -1);
  T.ArtPhysOfRow.assign(NumRows, -1);
  size_t NextSlack = NumVars;
  size_t NumArt = 0;
  for (size_t R = 0; R < NumRows; ++R) {
    if (SlackCoeff[R] != 0.0)
      T.SlackPhysOfRow[R] = static_cast<int>(NextSlack++);
    if (NeedArt[R])
      T.ArtPhysOfRow[R] = static_cast<int>(T.ArtStart + NumArt++);
  }
  T.NumCols = T.ArtStart + NumArt;

  // The tableau is thread_local scratch; keep capacity for the common
  // stream of similarly-sized LPs but release it when one outsized solve
  // would otherwise pin its allocation for the thread's lifetime.
  size_t Need = NumRows * T.NumCols;
  if (T.Data.capacity() > (size_t{1} << 20) &&
      T.Data.capacity() > 8 * Need) {
    T.Data.clear();
    T.Data.shrink_to_fit();
  }
  T.Data.assign(Need, 0.0);
  T.Rhs.assign(NumRows, 0.0);
  T.Upper.assign(T.NumCols, Infinity);
  T.Status.assign(T.NumCols, ColStatus::AtLower);
  T.Basis.assign(NumRows, -1);
  T.RowOfPhys.assign(T.NumCols, -1);
  T.CostRhs = 0.0;

  if (!ExplicitBounds)
    for (size_t V = 0; V < NumVars; ++V)
      T.Upper[V] = std::isfinite(Hi[V]) ? Hi[V] - Lo[V] : Infinity;

  for (size_t R = 0; R < NumRows; ++R) {
    if (R < NumCons) {
      const Constraint &C = M.constraints()[R];
      for (const auto &[Var, Coeff] : C.Expr.terms())
        T.at(R, static_cast<size_t>(Var)) += RowSign[R] * Coeff;
    } else {
      T.at(R, UbVars[R - NumCons]) = RowSign[R];
    }
    T.Rhs[R] = EffRhs[R];
    if (T.SlackPhysOfRow[R] >= 0) {
      size_t S = static_cast<size_t>(T.SlackPhysOfRow[R]);
      T.at(R, S) = SlackCoeff[R];
      T.RowOfPhys[S] = static_cast<int>(R);
    }
    if (T.ArtPhysOfRow[R] >= 0) {
      size_t A = static_cast<size_t>(T.ArtPhysOfRow[R]);
      T.at(R, A) = 1.0;
      T.RowOfPhys[A] = static_cast<int>(R);
      T.Basis[R] = static_cast<int>(A);
      T.Status[A] = ColStatus::Basic;
    } else {
      size_t S = static_cast<size_t>(T.SlackPhysOfRow[R]);
      T.Basis[R] = static_cast<int>(S);
      T.Status[S] = ColStatus::Basic;
    }
  }
}

enum class PhaseResult { Optimal, Unbounded, IterLimit, Infeasible };

/// Column-compressed compat tableau. Palmed's compat-mode LPs are extreme
/// in one dimension: the core BWP subproblems have thousands of capacity
/// rows but only a few dozen structural variables, so a dense
/// NumRows x NumCols tableau is ~99% slack/artificial columns that never
/// leave their initial single-diagonal state (an unpromoted column is
/// touched by an elimination only when its own row is the pivot row). This
/// tableau stores structural columns densely (column-major, one slot per
/// column) and keeps each slack/artificial column *implicit* — just its
/// diagonal coefficient — until its row first pivots, at which point the
/// column is promoted to a real slot. All bookkeeping (Cost, Status, Basis,
/// physical column numbering) matches the dense compat tableau exactly, so
/// pivot selection and pivot arithmetic are value-for-value identical; only
/// the storage of never-touched zeros changed.
class CompatTableau {
public:
  size_t NumRows = 0;
  size_t NumVars = 0;
  size_t ArtStart = 0;
  size_t NumCols = 0;
  size_t NumSlots = 0;

  std::vector<double> Cols; ///< Slot-major: slot * NumRows + row.
  std::vector<int> SlotOfPhys;       ///< Physical col -> slot, -1 implicit.
  std::vector<uint32_t> PhysOfSlot;
  std::vector<double> DiagOfPhys; ///< Implicit slack/art diagonal value.
  std::vector<double> Rhs;
  std::vector<double> Cost;
  double CostRhs = 0.0;
  std::vector<ColStatus> Status;
  std::vector<int> Basis; ///< Per row: physical basic column.

  std::vector<int> SlackPhysOfRow;
  std::vector<int> ArtPhysOfRow;
  std::vector<int> RowOfPhys;

  double *col(size_t S) { return &Cols[S * NumRows]; }
  const double *col(size_t S) const { return &Cols[S * NumRows]; }
  double at(size_t R, size_t C) const {
    int S = SlotOfPhys[C];
    if (S >= 0)
      return Cols[static_cast<size_t>(S) * NumRows + R];
    return RowOfPhys[C] == static_cast<int>(R) ? DiagOfPhys[C] : 0.0;
  }
  /// Materializes an implicit column into a dense slot. Until its owning
  /// row pivots, an implicit column's only nonzero is its untouched initial
  /// diagonal, so the promoted slot reproduces the exact dense contents.
  size_t promote(size_t C) {
    size_t S = NumSlots++;
    Cols.resize(NumSlots * NumRows, 0.0);
    if (RowOfPhys[C] >= 0)
      Cols[S * NumRows + static_cast<size_t>(RowOfPhys[C])] = DiagOfPhys[C];
    SlotOfPhys[C] = static_cast<int>(S);
    PhysOfSlot.push_back(static_cast<uint32_t>(C));
    return S;
  }

  int logicalOf(int Phys) const {
    if (static_cast<size_t>(Phys) < NumVars)
      return Phys;
    size_t R = static_cast<size_t>(RowOfPhys[static_cast<size_t>(Phys)]);
    bool IsArt = static_cast<size_t>(Phys) >= ArtStart;
    return static_cast<int>(NumVars + (IsArt ? NumRows : 0) + R);
  }
};

/// Compat-mode tableau build: identical row normalization, physical column
/// assignment, and initial basis as the dense ExplicitBounds build (every
/// finite upper bound becomes one extra LE row).
void buildCompat(CompatTableau &T, const Model &M,
                 const std::vector<double> &Lo, const std::vector<double> &Hi) {
  const size_t NumVars = M.numVars();
  const size_t NumCons = M.numConstraints();
  thread_local std::vector<size_t> UbVars;
  UbVars.clear();
  for (size_t V = 0; V < NumVars; ++V)
    if (std::isfinite(Hi[V]))
      UbVars.push_back(V);
  const size_t NumRows = NumCons + UbVars.size();
  T.NumRows = NumRows;
  T.NumVars = NumVars;

  thread_local std::vector<double> EffRhs, RowSign, SlackCoeff;
  thread_local std::vector<uint8_t> NeedArt;
  EffRhs.assign(NumRows, 0.0);
  RowSign.assign(NumRows, 1.0);
  SlackCoeff.assign(NumRows, 0.0);
  NeedArt.assign(NumRows, 0);

  size_t NumSlack = 0;
  for (size_t R = 0; R < NumRows; ++R) {
    double Rhs;
    Sense Dir;
    if (R < NumCons) {
      const Constraint &C = M.constraints()[R];
      double Shift = 0.0;
      for (const auto &[Var, Coeff] : C.Expr.terms())
        Shift += Coeff * Lo[static_cast<size_t>(Var)];
      Rhs = C.Rhs - Shift;
      Dir = C.Dir;
    } else {
      size_t V = UbVars[R - NumCons];
      Rhs = Hi[V] - Lo[V];
      Dir = Sense::LE;
    }
    if (Rhs < 0.0) {
      Rhs = -Rhs;
      RowSign[R] = -1.0;
    }
    EffRhs[R] = Rhs;
    if (Dir != Sense::EQ) {
      ++NumSlack;
      SlackCoeff[R] = RowSign[R] * (Dir == Sense::LE ? 1.0 : -1.0);
    }
    NeedArt[R] = SlackCoeff[R] != 1.0;
  }
  T.ArtStart = NumVars + NumSlack;

  T.SlackPhysOfRow.assign(NumRows, -1);
  T.ArtPhysOfRow.assign(NumRows, -1);
  size_t NextSlack = NumVars;
  size_t NumArt = 0;
  for (size_t R = 0; R < NumRows; ++R) {
    if (SlackCoeff[R] != 0.0)
      T.SlackPhysOfRow[R] = static_cast<int>(NextSlack++);
    if (NeedArt[R])
      T.ArtPhysOfRow[R] = static_cast<int>(T.ArtStart + NumArt++);
  }
  T.NumCols = T.ArtStart + NumArt;

  // Structural columns are always materialized; slack/artificial columns
  // start implicit. The slot pool is thread_local scratch like the dense
  // tableau's Data; trim it when one outsized solve would otherwise pin the
  // allocation.
  size_t Need = NumRows * (NumVars + 64);
  if (T.Cols.capacity() > (size_t{1} << 20) && T.Cols.capacity() > 8 * Need) {
    T.Cols.clear();
    T.Cols.shrink_to_fit();
  }
  T.Cols.assign(NumRows * NumVars, 0.0);
  T.NumSlots = NumVars;
  T.SlotOfPhys.assign(T.NumCols, -1);
  T.PhysOfSlot.resize(NumVars);
  for (size_t V = 0; V < NumVars; ++V) {
    T.SlotOfPhys[V] = static_cast<int>(V);
    T.PhysOfSlot[V] = static_cast<uint32_t>(V);
  }
  T.DiagOfPhys.assign(T.NumCols, 0.0);
  T.Rhs.assign(NumRows, 0.0);
  T.Status.assign(T.NumCols, ColStatus::AtLower);
  T.Basis.assign(NumRows, -1);
  T.RowOfPhys.assign(T.NumCols, -1);
  T.CostRhs = 0.0;

  for (size_t R = 0; R < NumRows; ++R) {
    if (R < NumCons) {
      const Constraint &C = M.constraints()[R];
      for (const auto &[Var, Coeff] : C.Expr.terms())
        T.Cols[static_cast<size_t>(Var) * NumRows + R] += RowSign[R] * Coeff;
    } else {
      T.Cols[UbVars[R - NumCons] * NumRows + R] = RowSign[R];
    }
    T.Rhs[R] = EffRhs[R];
    if (T.SlackPhysOfRow[R] >= 0) {
      size_t S = static_cast<size_t>(T.SlackPhysOfRow[R]);
      T.DiagOfPhys[S] = SlackCoeff[R];
      T.RowOfPhys[S] = static_cast<int>(R);
    }
    if (T.ArtPhysOfRow[R] >= 0) {
      size_t A = static_cast<size_t>(T.ArtPhysOfRow[R]);
      T.DiagOfPhys[A] = 1.0;
      T.RowOfPhys[A] = static_cast<int>(R);
      T.Basis[R] = static_cast<int>(A);
      T.Status[A] = ColStatus::Basic;
    } else {
      size_t S = static_cast<size_t>(T.SlackPhysOfRow[R]);
      T.Basis[R] = static_cast<int>(S);
      T.Status[S] = ColStatus::Basic;
    }
  }
}

/// Compat-mode pivot: the historical arithmetic, with Rhs (and the cost
/// row's rhs) swept as plain algebraic columns — the pivot row is scaled by
/// the reciprocal, other rows subtract Factor times the scaled row. Only
/// columns below \p SweepEnd are touched; phase 2 passes ArtStart, which
/// skips the dead artificial columns without changing any value ever read.
/// Loop order is columns-outer over the pivot row's nonzeros (each affected
/// entry still receives the single identical `a -= f * p` update), and
/// zero-factor rows are skipped exactly like the dense sweep.
void compatPivot(CompatTableau &T, size_t PR, size_t Q, size_t SweepEnd) {
  const size_t M = T.NumRows;
  // The columns this pivot can fill beyond their implicit diagonal are the
  // entering column and the pivot row's own slack/artificial; promote them
  // so the sweep below sees real storage.
  if (T.SlotOfPhys[Q] < 0)
    T.promote(Q);
  int SP = T.SlackPhysOfRow[PR];
  if (SP >= 0 && static_cast<size_t>(SP) < SweepEnd && T.SlotOfPhys[SP] < 0)
    T.promote(static_cast<size_t>(SP));
  int AP = T.ArtPhysOfRow[PR];
  if (AP >= 0 && static_cast<size_t>(AP) < SweepEnd && T.SlotOfPhys[AP] < 0)
    T.promote(static_cast<size_t>(AP));

  const size_t SQ = static_cast<size_t>(T.SlotOfPhys[Q]);
  double Inv = 1.0 / T.Cols[SQ * M + PR];
  // Scale the pivot row's nonzeros. Any nonzero below SweepEnd lives in a
  // slot: implicit columns are nonzero only in their own row, and the pivot
  // row's were just promoted.
  thread_local std::vector<uint32_t> NzSlots;
  NzSlots.clear();
  for (size_t S = 0; S < T.NumSlots; ++S) {
    if (T.PhysOfSlot[S] >= SweepEnd)
      continue;
    double &V = T.Cols[S * M + PR];
    if (V != 0.0) {
      V *= Inv;
      if (S != SQ)
        NzSlots.push_back(static_cast<uint32_t>(S));
    }
  }
  T.Cols[SQ * M + PR] = 1.0;
  T.Rhs[PR] *= Inv;

  // Gather the rows with a nonzero entering-column factor, then eliminate
  // column-by-column (entering column becomes exactly the unit column).
  thread_local std::vector<uint32_t> NzRows;
  thread_local std::vector<double> Factors;
  NzRows.clear();
  Factors.clear();
  double *CQ = T.col(SQ);
  for (size_t R = 0; R < M; ++R) {
    if (R == PR)
      continue;
    double Factor = CQ[R];
    if (Factor == 0.0)
      continue;
    NzRows.push_back(static_cast<uint32_t>(R));
    Factors.push_back(Factor);
    CQ[R] = 0.0;
  }
  for (uint32_t S : NzSlots) {
    double P = T.Cols[static_cast<size_t>(S) * M + PR];
    double *CD = T.col(S);
    for (size_t I = 0; I < NzRows.size(); ++I)
      CD[NzRows[I]] -= Factors[I] * P;
  }
  for (size_t I = 0; I < NzRows.size(); ++I)
    T.Rhs[NzRows[I]] -= Factors[I] * T.Rhs[PR];

  double Factor = T.Cost[Q];
  if (Factor != 0.0) {
    for (uint32_t S : NzSlots)
      T.Cost[T.PhysOfSlot[S]] -= Factor * T.Cols[static_cast<size_t>(S) * M + PR];
    T.CostRhs -= Factor * T.Rhs[PR];
    T.Cost[Q] = 0.0;
  }
  T.Status[static_cast<size_t>(T.Basis[PR])] = ColStatus::AtLower;
  T.Basis[PR] = static_cast<int>(Q);
  T.Status[Q] = ColStatus::Basic;
}

/// Compat-mode phase runner: Dantzig pricing with the historical stall
/// detection and ratio-test tie-breaks, reproducing the seed solver's pivot
/// sequence value-for-value. \p PriceEnd bounds the entering-column scan
/// (phase 1 may re-enter artificials, phase 2 may not); \p SweepEnd bounds
/// the elimination sweep.
PhaseResult runCompat(CompatTableau &T, const SimplexOptions &Options,
                      LpRunStats &RS, size_t PriceEnd, size_t SweepEnd) {
  const double Tol = Options.Tolerance;
  LpTelemetry &Tel = lpTelemetry();
  int StallCount = 0;
  bool UseBland = false;
  double LastObjective = -T.CostRhs;

  for (int Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    size_t Entering = None;
    double BestCost = -Tol;
    for (size_t C = 0; C < PriceEnd; ++C) {
      if (T.Status[C] == ColStatus::Basic)
        continue;
      double RC = T.Cost[C];
      if (RC < BestCost) {
        BestCost = RC;
        Entering = C;
        if (UseBland)
          break;
      }
    }
    if (Entering == None)
      return PhaseResult::Optimal;

    size_t Leaving = None;
    double BestRatio = 0.0;
    int SE = T.SlotOfPhys[Entering];
    if (SE >= 0) {
      const double *CE = T.col(static_cast<size_t>(SE));
      for (size_t R = 0; R < T.NumRows; ++R) {
        double A = CE[R];
        if (A <= Tol)
          continue;
        double Ratio = T.Rhs[R] / A;
        if (Leaving == None || Ratio < BestRatio - Tol ||
            (Ratio < BestRatio + Tol && T.Basis[R] < T.Basis[Leaving])) {
          BestRatio = Ratio;
          Leaving = R;
        }
      }
    } else {
      // Implicit column: its only nonzero is the diagonal in its own row,
      // so the dense row scan reduces to at most one candidate.
      int R0 = T.RowOfPhys[Entering];
      if (R0 >= 0 && T.DiagOfPhys[Entering] > Tol) {
        BestRatio = T.Rhs[static_cast<size_t>(R0)] / T.DiagOfPhys[Entering];
        Leaving = static_cast<size_t>(R0);
      }
    }
    if (Leaving == None)
      return PhaseResult::Unbounded;

    compatPivot(T, Leaving, Entering, SweepEnd);
    ++RS.Pivots;
    ++Tel.Pivots;

    double Objective = -T.CostRhs;
    if (Objective < LastObjective - Tol) {
      LastObjective = Objective;
      StallCount = 0;
    } else if (++StallCount > 200) {
      UseBland = true;
    }
  }
  return PhaseResult::IterLimit;
}

/// Full compat-mode solve: the historical two-phase dense solver,
/// value-for-value, over the column-compressed tableau. Warm starts are
/// ignored in this mode (see LpPricing::Dantzig); the cost of a cold solve
/// is what the compression attacks.
Solution solveCompatLp(const Model &M, const std::vector<double> &Lo,
                       const std::vector<double> &Hi,
                       const SimplexOptions &Options, LpRunStats &RS,
                       SimplexBasis *FinalBasis) {
  const double Tol = Options.Tolerance;
  const size_t NumVars = M.numVars();
  LpTelemetry &Tel = lpTelemetry();
  Solution Result;

  thread_local CompatTableau T;
  buildCompat(T, M, Lo, Hi);
  const size_t NumRows = T.NumRows;

  if (T.NumCols > T.ArtStart) {
    // Phase 1 over all columns (artificials are priced and swept like the
    // historical code until they are retired). The initial cost row is
    // accumulated from each artificial-basic row's nonzeros: structural
    // entries live in slots, and the row's own slack/artificial diagonals
    // are still implicit (no other implicit column has a nonzero here), so
    // skipping the zeros reproduces the dense subtraction value-for-value.
    T.Cost.assign(T.NumCols, 0.0);
    for (size_t C = T.ArtStart; C < T.NumCols; ++C)
      T.Cost[C] = 1.0;
    T.CostRhs = 0.0;
    for (size_t R = 0; R < NumRows; ++R) {
      if (static_cast<size_t>(T.Basis[R]) < T.ArtStart)
        continue;
      for (size_t S = 0; S < T.NumSlots; ++S) {
        double V = T.Cols[S * NumRows + R];
        if (V != 0.0)
          T.Cost[T.PhysOfSlot[S]] -= V;
      }
      int SP = T.SlackPhysOfRow[R];
      if (SP >= 0 && T.SlotOfPhys[SP] < 0)
        T.Cost[static_cast<size_t>(SP)] -= T.DiagOfPhys[static_cast<size_t>(SP)];
      int AP = T.ArtPhysOfRow[R];
      if (AP >= 0 && T.SlotOfPhys[AP] < 0)
        T.Cost[static_cast<size_t>(AP)] -= T.DiagOfPhys[static_cast<size_t>(AP)];
      T.CostRhs -= T.Rhs[R];
    }
    PhaseResult P1 = runCompat(T, Options, RS, /*PriceEnd=*/T.NumCols,
                               /*SweepEnd=*/T.NumCols);
    if (P1 == PhaseResult::IterLimit) {
      Result.Status = SolveStatus::IterLimit;
      return Result;
    }
    if (-T.CostRhs > 1e-7) {
      Result.Status = SolveStatus::Infeasible;
      return Result;
    }
    // Drive residual basic artificials out where possible; redundant rows
    // keep theirs basic at zero.
    for (size_t R = 0; R < NumRows; ++R) {
      if (static_cast<size_t>(T.Basis[R]) < T.ArtStart)
        continue;
      size_t PivotCol = None;
      for (size_t C = 0; C < T.ArtStart; ++C) {
        if (std::abs(T.at(R, C)) > Tol) {
          PivotCol = C;
          break;
        }
      }
      if (PivotCol != None) {
        compatPivot(T, R, PivotCol, T.ArtStart);
        ++RS.Pivots;
        ++Tel.Pivots;
      }
    }
  }

  // Phase 2: dead artificial columns are no longer priced or swept (the
  // values they would have received are never read). A row whose basic
  // column carries cost has pivoted, so its slack already lives in a slot;
  // the implicit-diagonal term is kept for form's sake.
  {
    T.Cost.assign(T.NumCols, 0.0);
    double ObjSign = M.goal() == Goal::Minimize ? 1.0 : -1.0;
    LinearExpr Obj = M.objective();
    Obj.normalize();
    for (const auto &[Var, Coeff] : Obj.terms())
      T.Cost[static_cast<size_t>(Var)] = ObjSign * Coeff;
    thread_local std::vector<double> Costs;
    Costs = T.Cost;
    T.CostRhs = 0.0;
    for (size_t R = 0; R < NumRows; ++R) {
      size_t B = static_cast<size_t>(T.Basis[R]);
      double CB = Costs[B];
      if (CB == 0.0)
        continue;
      for (size_t S = 0; S < T.NumSlots; ++S) {
        if (T.PhysOfSlot[S] >= T.ArtStart)
          continue;
        double V = T.Cols[S * NumRows + R];
        if (V != 0.0)
          T.Cost[T.PhysOfSlot[S]] -= CB * V;
      }
      int SP = T.SlackPhysOfRow[R];
      if (SP >= 0 && T.SlotOfPhys[SP] < 0)
        T.Cost[static_cast<size_t>(SP)] -=
            CB * T.DiagOfPhys[static_cast<size_t>(SP)];
      T.CostRhs -= CB * T.Rhs[R];
    }
  }
  PhaseResult PR = runCompat(T, Options, RS, /*PriceEnd=*/T.ArtStart,
                             /*SweepEnd=*/T.ArtStart);

  if (PR == PhaseResult::IterLimit) {
    Result.Status = SolveStatus::IterLimit;
    return Result;
  }
  if (PR == PhaseResult::Unbounded) {
    Result.Status = SolveStatus::Unbounded;
    return Result;
  }

  // Extract the solution (shift lower bounds back in). Compat mode has no
  // nonbasic-at-upper statuses (bounds are explicit rows).
  Result.Values.assign(NumVars, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    int B = T.Basis[R];
    if (B >= 0 && static_cast<size_t>(B) < NumVars)
      Result.Values[static_cast<size_t>(B)] = T.Rhs[R];
  }
  for (size_t V = 0; V < NumVars; ++V) {
    Result.Values[V] += Lo[V];
    Result.Values[V] = std::max(Result.Values[V], Lo[V]);
    if (std::isfinite(Hi[V]))
      Result.Values[V] = std::min(Result.Values[V], Hi[V]);
  }
  Result.Objective = M.objective().evaluate(Result.Values);
  Result.Status = SolveStatus::Optimal;

  if (FinalBasis) {
    FinalBasis->BasicCols.resize(NumRows);
    for (size_t R = 0; R < NumRows; ++R)
      FinalBasis->BasicCols[R] = T.logicalOf(T.Basis[R]);
    FinalBasis->AtUpper.assign(NumVars, 0);
  }
  return Result;
}

/// Executes the basis change for entering column \p Q moving by step \p T0
/// in direction \p Dir (+1 from lower, -1 from upper), pivoting in row
/// \p PR; the leaving variable becomes nonbasic at \p LeaveAt. Rhs keeps
/// actual-value semantics throughout.
void applyPivot(Tableau &T, size_t PR, size_t Q, int Dir, double T0,
                ColStatus LeaveAt) {
  for (size_t R = 0; R < T.NumRows; ++R) {
    if (R == PR)
      continue;
    double A = T.at(R, Q);
    if (A != 0.0)
      T.Rhs[R] -= Dir * A * T0;
  }
  double NewVal = Dir > 0 ? T0 : T.Upper[Q] - T0;

  int Leaving = T.Basis[PR];
  T.Status[static_cast<size_t>(Leaving)] = LeaveAt;

  double *PRow = T.row(PR);
  double Inv = 1.0 / PRow[Q];
  for (size_t C = 0; C < T.ArtStart; ++C)
    PRow[C] *= Inv;
  PRow[Q] = 1.0;
  for (size_t R = 0; R < T.NumRows; ++R) {
    if (R == PR)
      continue;
    double *Other = T.row(R);
    double Factor = Other[Q];
    if (Factor == 0.0)
      continue;
    for (size_t C = 0; C < T.ArtStart; ++C)
      Other[C] -= Factor * PRow[C];
    Other[Q] = 0.0;
  }
  double Factor = T.Cost[Q];
  if (Factor != 0.0) {
    for (size_t C = 0; C < T.ArtStart; ++C)
      T.Cost[C] -= Factor * PRow[C];
    T.Cost[Q] = 0.0;
  }
  T.Basis[PR] = static_cast<int>(Q);
  T.Status[Q] = ColStatus::Basic;
  T.Rhs[PR] = NewVal;
}

/// Devex reference-weight update; must run on the pre-elimination pivot row.
void devexUpdate(Tableau &T, size_t PR, size_t Q) {
  const double *PRow = T.row(PR);
  double AQ = PRow[Q];
  double WQ = T.Weight[Q] / (AQ * AQ);
  for (size_t C = 0; C < T.ArtStart; ++C) {
    if (C == Q || T.Status[C] == ColStatus::Basic)
      continue;
    double A = PRow[C];
    if (A == 0.0)
      continue;
    double Cand = A * A * WQ;
    if (Cand > T.Weight[C])
      T.Weight[C] = Cand;
  }
  T.Weight[static_cast<size_t>(T.Basis[PR])] = std::max(WQ, 1.0);
  // Reset the reference framework when weights explode.
  if (WQ > 1e10)
    std::fill(T.Weight.begin(), T.Weight.end(), 1.0);
}

/// Bounded-variable primal simplex on the current cost row.
PhaseResult runPrimal(Tableau &T, const SimplexOptions &Options,
                      LpRunStats &RS) {
  const double Tol = Options.Tolerance;
  LpTelemetry &Tel = lpTelemetry();
  T.Weight.assign(T.NumCols, 1.0);
  int Stall = 0;
  bool UseBland = false;

  for (int Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    // --- Pricing: Devex score d^2/w, or first eligible under Bland. ---
    size_t Entering = None;
    int Dir = 0;
    double BestScore = 0.0;
    for (size_t C = 0; C < T.ArtStart; ++C) {
      ColStatus St = T.Status[C];
      if (St == ColStatus::Basic || T.Upper[C] == 0.0)
        continue;
      double RC = T.Cost[C];
      int D;
      if (St == ColStatus::AtLower) {
        if (RC >= -Tol)
          continue;
        D = 1;
      } else {
        if (RC <= Tol)
          continue;
        D = -1;
      }
      if (UseBland) {
        Entering = C;
        Dir = D;
        break;
      }
      double Score = RC * RC / T.Weight[C];
      if (Score > BestScore) {
        BestScore = Score;
        Entering = C;
        Dir = D;
      }
    }
    if (Entering == None)
      return PhaseResult::Optimal;

    // --- Ratio test over the basic rows. ---
    double RowT = Infinity;
    size_t PivotRow = None;
    double PivotAbs = 0.0;
    ColStatus LeaveAt = ColStatus::AtLower;
    for (size_t R = 0; R < T.NumRows; ++R) {
      double A = T.at(R, Entering);
      double S = Dir > 0 ? A : -A;
      double Lim;
      ColStatus LA;
      if (S > Tol) {
        Lim = T.Rhs[R] > 0.0 ? T.Rhs[R] / S : 0.0;
        LA = ColStatus::AtLower;
      } else if (S < -Tol) {
        double U = T.Upper[static_cast<size_t>(T.Basis[R])];
        if (U == Infinity)
          continue;
        double Room = U - T.Rhs[R];
        Lim = Room > 0.0 ? Room / (-S) : 0.0;
        LA = ColStatus::AtUpper;
      } else {
        continue;
      }
      bool Take;
      if (PivotRow == None || Lim < RowT - Tol)
        Take = true;
      else if (Lim < RowT + Tol)
        Take = UseBland ? T.Basis[R] < T.Basis[PivotRow]
                        : std::abs(A) > PivotAbs;
      else
        Take = false;
      if (Take) {
        RowT = Lim;
        PivotRow = R;
        PivotAbs = std::abs(A);
        LeaveAt = LA;
      }
    }

    double FlipT = T.Upper[Entering];
    if (PivotRow == None && FlipT == Infinity)
      return PhaseResult::Unbounded;

    if (FlipT <= RowT) {
      // Bound flip: the entering variable crosses to its other bound
      // without any basis change.
      for (size_t R = 0; R < T.NumRows; ++R) {
        double A = T.at(R, Entering);
        if (A != 0.0)
          T.Rhs[R] -= Dir * A * FlipT;
      }
      T.Status[Entering] = Dir > 0 ? ColStatus::AtUpper : ColStatus::AtLower;
      ++RS.BoundFlips;
      ++Tel.BoundFlips;
      if (FlipT > Tol)
        Stall = 0;
      else if (++Stall > 200)
        UseBland = true;
      continue;
    }

    double Step = RowT > 0.0 ? RowT : 0.0;
    devexUpdate(T, PivotRow, Entering);
    applyPivot(T, PivotRow, Entering, Dir, Step, LeaveAt);
    ++RS.Pivots;
    ++Tel.Pivots;
    if (Step > Tol)
      Stall = 0;
    else if (++Stall > 200)
      UseBland = true;
  }
  return PhaseResult::IterLimit;
}

/// Bounded-variable dual simplex: starting from a dual-feasible basis,
/// drives out primal bound violations (used to re-solve after branching
/// tightens a bound). Terminating primal-feasible certifies optimality up
/// to the primal polish that follows; "no entering column" certifies
/// infeasibility.
PhaseResult runDual(Tableau &T, const SimplexOptions &Options, int MaxPivots,
                    LpRunStats &RS) {
  const double Tol = Options.Tolerance;
  const double FeasTol = 1e-7;
  LpTelemetry &Tel = lpTelemetry();
  bool UseBland = false;

  for (int Iter = 0; Iter < MaxPivots; ++Iter) {
    // Leaving row: most violated basic bound.
    size_t PR = None;
    double BestViol = FeasTol;
    bool AboveUpper = false;
    for (size_t R = 0; R < T.NumRows; ++R) {
      double V = T.Rhs[R];
      if (-V > BestViol) {
        BestViol = -V;
        PR = R;
        AboveUpper = false;
      }
      double U = T.Upper[static_cast<size_t>(T.Basis[R])];
      if (U != Infinity && V - U > BestViol) {
        BestViol = V - U;
        PR = R;
        AboveUpper = true;
      }
    }
    if (PR == None)
      return PhaseResult::Optimal;

    // Entering: bound-flipping dual ratio test. Collect the columns that
    // can absorb the violation, walk their breakpoints in increasing
    // dual-ratio |d|/|a| order, and flip across any candidate whose own
    // upper bound is exhausted before the violation is (its reduced cost
    // crosses zero at its breakpoint, so the eventual pivot — whose ratio
    // is no smaller — leaves it dual feasible at the flipped bound). The
    // first candidate that can absorb the remainder becomes basic; without
    // the flips, a bounded entering column would overshoot its bound and
    // the restore would grind through one violation per pivot on exactly
    // the all-variables-bounded models warm starts target.
    const double *PRow = T.row(PR);
    struct Candidate {
      uint32_t Col;
      double Ratio;
      double Abs;
    };
    thread_local std::vector<Candidate> Candidates;
    Candidates.clear();
    for (size_t C = 0; C < T.ArtStart; ++C) {
      ColStatus St = T.Status[C];
      if (St == ColStatus::Basic || T.Upper[C] == 0.0)
        continue;
      double A = PRow[C];
      bool Ok = AboveUpper ? (St == ColStatus::AtLower && A > Tol) ||
                                 (St == ColStatus::AtUpper && A < -Tol)
                           : (St == ColStatus::AtLower && A < -Tol) ||
                                 (St == ColStatus::AtUpper && A > Tol);
      if (!Ok)
        continue;
      double AbsA = std::abs(A);
      Candidates.push_back(
          {static_cast<uint32_t>(C), std::abs(T.Cost[C]) / AbsA, AbsA});
    }
    if (Candidates.empty())
      return PhaseResult::Infeasible;
    std::sort(Candidates.begin(), Candidates.end(),
              [UseBland](const Candidate &A, const Candidate &B) {
                if (A.Ratio != B.Ratio)
                  return A.Ratio < B.Ratio;
                if (!UseBland && A.Abs != B.Abs)
                  return A.Abs > B.Abs;
                return A.Col < B.Col;
              });

    double Remaining = BestViol;
    bool Pivoted = false;
    for (const Candidate &Cand : Candidates) {
      size_t C = Cand.Col;
      int Dir = T.Status[C] == ColStatus::AtLower ? 1 : -1;
      double U = T.Upper[C];
      double StepFull = Remaining > 0.0 ? Remaining / Cand.Abs : 0.0;
      if (U == Infinity || StepFull <= U) {
        applyPivot(T, PR, C, Dir, StepFull,
                   AboveUpper ? ColStatus::AtUpper : ColStatus::AtLower);
        ++RS.Pivots;
        ++RS.DualPivots;
        ++Tel.Pivots;
        ++Tel.DualPivots;
        Pivoted = true;
        break;
      }
      // Flip: absorbs |a| * U of the violation without a basis change.
      for (size_t R = 0; R < T.NumRows; ++R) {
        double A = T.at(R, C);
        if (A != 0.0)
          T.Rhs[R] -= Dir * A * U;
      }
      T.Status[C] = Dir > 0 ? ColStatus::AtUpper : ColStatus::AtLower;
      ++RS.BoundFlips;
      ++Tel.BoundFlips;
      Remaining -= Cand.Abs * U;
    }
    if (!Pivoted)
      return PhaseResult::Infeasible; // Even all bounds flipped cannot
                                      // close the violation.
    if (Iter > 500)
      UseBland = true;
  }
  return PhaseResult::IterLimit;
}

/// Reduced costs of \p Costs under the current basis (artificial columns
/// keep cost zero and are never priced).
void computeReducedCosts(Tableau &T, const std::vector<double> &Costs) {
  T.Cost = Costs;
  for (size_t R = 0; R < T.NumRows; ++R) {
    size_t B = static_cast<size_t>(T.Basis[R]);
    double CB = B < Costs.size() ? Costs[B] : 0.0;
    if (CB == 0.0)
      continue;
    const double *Row = T.row(R);
    for (size_t C = 0; C < T.ArtStart; ++C)
      T.Cost[C] -= CB * Row[C];
  }
  // Basic columns are unit columns, so their entries are exactly zero now;
  // enforce it against accumulated noise.
  for (size_t R = 0; R < T.NumRows; ++R) {
    size_t B = static_cast<size_t>(T.Basis[R]);
    if (B < T.ArtStart)
      T.Cost[B] = 0.0;
  }
}

/// Plain algebraic pivot used only while replaying a warm basis: Rhs is
/// treated as one more column (B^-1 b semantics; actual-value semantics are
/// restored afterwards by folding in the nonbasic-at-upper contributions).
void replayPivot(Tableau &T, size_t PR, size_t P, size_t SweepEnd) {
  double *PRow = T.row(PR);
  double Inv = 1.0 / PRow[P];
  for (size_t C = 0; C < SweepEnd; ++C)
    PRow[C] *= Inv;
  PRow[P] = 1.0;
  T.Rhs[PR] *= Inv;
  for (size_t R = 0; R < T.NumRows; ++R) {
    if (R == PR)
      continue;
    double *Other = T.row(R);
    double Factor = Other[P];
    if (Factor == 0.0)
      continue;
    for (size_t C = 0; C < SweepEnd; ++C)
      Other[C] -= Factor * PRow[C];
    Other[P] = 0.0;
    T.Rhs[R] -= Factor * T.Rhs[PR];
  }
  T.Status[static_cast<size_t>(T.Basis[PR])] = ColStatus::AtLower;
  T.Basis[PR] = static_cast<int>(P);
  T.Status[P] = ColStatus::Basic;
}

/// Installs \p W into a freshly built tableau: maps logical ids, realizes
/// the basis by Gaussian elimination with partial pivoting, restores
/// nonbasic-at-upper statuses, and recomputes actual basic values. Returns
/// false (tableau unusable) when the basis does not fit this instance.
bool replayBasis(Tableau &T, const SimplexBasis &W) {
  if (W.BasicCols.size() != T.NumRows ||
      W.AtUpper.size() != T.NumVars)
    return false;

  std::vector<int> Phys(T.NumRows);
  std::vector<uint8_t> Seen(T.NumCols, 0);
  bool NeedArts = false;
  for (size_t R = 0; R < T.NumRows; ++R) {
    int P = T.physOf(W.BasicCols[R]);
    if (P < 0 || Seen[static_cast<size_t>(P)])
      return false;
    Seen[static_cast<size_t>(P)] = 1;
    Phys[R] = P;
    NeedArts |= static_cast<size_t>(P) >= T.ArtStart;
  }
  size_t SweepEnd = NeedArts ? T.NumCols : T.ArtStart;

  std::vector<int> RowOfBasic(T.NumCols, -1);
  for (size_t R = 0; R < T.NumRows; ++R)
    RowOfBasic[static_cast<size_t>(T.Basis[R])] = static_cast<int>(R);

  std::vector<uint8_t> RowFixed(T.NumRows, 0);
  std::vector<size_t> Pending;
  for (size_t I = 0; I < T.NumRows; ++I) {
    size_t P = static_cast<size_t>(Phys[I]);
    int R = RowOfBasic[P];
    if (R >= 0 && !RowFixed[static_cast<size_t>(R)])
      RowFixed[static_cast<size_t>(R)] = 1;
    else
      Pending.push_back(P);
  }
  for (size_t P : Pending) {
    size_t BestRow = None;
    double BestAbs = 1e-8;
    for (size_t R = 0; R < T.NumRows; ++R) {
      if (RowFixed[R])
        continue;
      double A = std::abs(T.at(R, P));
      if (A > BestAbs) {
        BestAbs = A;
        BestRow = R;
      }
    }
    if (BestRow == None)
      return false; // Singular under the new bounds.
    replayPivot(T, BestRow, P, SweepEnd);
    RowFixed[BestRow] = 1;
  }

  // Restore nonbasic-at-upper statuses and fold their contribution into
  // the basic values (actual-value semantics from here on).
  for (size_t V = 0; V < T.NumVars; ++V) {
    if (!W.AtUpper[V] || T.Status[V] == ColStatus::Basic ||
        T.Upper[V] == Infinity)
      continue;
    T.Status[V] = ColStatus::AtUpper;
    double U = T.Upper[V];
    if (U == 0.0)
      continue;
    for (size_t R = 0; R < T.NumRows; ++R) {
      double A = T.at(R, V);
      if (A != 0.0)
        T.Rhs[R] -= A * U;
    }
  }
  return true;
}

} // namespace

Solution lp::solveLp(const Model &M, const std::vector<BoundOverride> &Overrides,
                     const SimplexOptions &Options,
                     const SimplexBasis *WarmStart, SimplexBasis *FinalBasis,
                     LpRunStats *Stats) {
  const double Tol = Options.Tolerance;
  const size_t NumVars = M.numVars();
  LpRunStats LocalStats;
  LpRunStats &RS = Stats ? *Stats : LocalStats;
  RS = LpRunStats();
  LpTelemetry &Tel = lpTelemetry();
  ++Tel.Solves;
  if (FinalBasis)
    FinalBasis->clear();

  // Effective bounds after overrides.
  std::vector<double> Lo(NumVars), Hi(NumVars);
  for (size_t V = 0; V < NumVars; ++V) {
    Lo[V] = M.var(static_cast<VarId>(V)).LowerBound;
    Hi[V] = M.var(static_cast<VarId>(V)).UpperBound;
  }
  for (const BoundOverride &O : Overrides) {
    assert(O.Var >= 0 && static_cast<size_t>(O.Var) < NumVars);
    Lo[static_cast<size_t>(O.Var)] = O.LowerBound;
    Hi[static_cast<size_t>(O.Var)] = O.UpperBound;
  }
  Solution Result;
  for (size_t V = 0; V < NumVars; ++V) {
    if (Lo[V] > Hi[V] + Tol) {
      Result.Status = SolveStatus::Infeasible;
      return Result;
    }
  }

  // Phase-2 costs over physical columns (as minimization).
  auto makeCosts = [&](const Tableau &T) {
    std::vector<double> Costs(T.NumCols, 0.0);
    double ObjSign = M.goal() == Goal::Minimize ? 1.0 : -1.0;
    LinearExpr Obj = M.objective();
    Obj.normalize();
    for (const auto &[Var, Coeff] : Obj.terms())
      Costs[static_cast<size_t>(Var)] = ObjSign * Coeff;
    return Costs;
  };

  // ---- Compat path: the historical solver, value-for-value, over the
  // column-compressed tableau. Warm starts are ignored in this mode. ----
  if (Options.Pricing == LpPricing::Dantzig)
    return solveCompatLp(M, Lo, Hi, Options, RS, FinalBasis);

  // Thread-local scratch: the hot callers solve tens of thousands of
  // small LPs, and reusing vector capacity across solves removes the
  // allocation churn (buildTableau fully re-initializes every field).
  thread_local Tableau T;
  PhaseResult PR = PhaseResult::IterLimit;
  bool Solved = false;

  // ---- Warm path: replay the caller's basis, then re-optimize. ----
  if (!Solved && WarmStart && !WarmStart->empty()) {
    ++Tel.WarmStartAttempts;
    buildTableau(T, M, Lo, Hi, /*ExplicitBounds=*/false);
    if (replayBasis(T, *WarmStart)) {
      std::vector<double> Costs = makeCosts(T);
      computeReducedCosts(T, Costs);

      const double FeasTol = 1e-7;
      bool PrimalFeasible = true;
      for (size_t R = 0; R < T.NumRows && PrimalFeasible; ++R) {
        double V = T.Rhs[R];
        double U = T.Upper[static_cast<size_t>(T.Basis[R])];
        PrimalFeasible = V >= -FeasTol && (U == Infinity || V <= U + FeasTol);
      }
      bool DualFeasible = true;
      for (size_t C = 0; C < T.ArtStart && DualFeasible; ++C) {
        // Fixed columns (ancestor branching fixations) can never enter;
        // their reduced-cost sign is immaterial.
        if (T.Status[C] == ColStatus::Basic || T.Upper[C] == 0.0)
          continue;
        DualFeasible = T.Status[C] == ColStatus::AtLower
                           ? T.Cost[C] >= -FeasTol
                           : T.Cost[C] <= FeasTol;
      }

      if (PrimalFeasible) {
        // Objective-only change (or nothing changed): phase 1 is free.
        PR = runPrimal(T, Options, RS);
        // A warm IterLimit falls through to the cold path below: warm
        // starts must never change results, only work.
        Solved = PR != PhaseResult::IterLimit;
      } else if (DualFeasible) {
        // Bound change: restore primal feasibility dually, then polish.
        int DualCap = static_cast<int>(std::min<long>(
            Options.MaxIterations, 5 * static_cast<long>(T.NumRows) + 100));
        PhaseResult DR = runDual(T, Options, DualCap, RS);
        if (DR == PhaseResult::Optimal) {
          PR = runPrimal(T, Options, RS);
          Solved = PR != PhaseResult::IterLimit;
        } else if (DR == PhaseResult::Infeasible) {
          // Dual unboundedness certifies primal infeasibility (same trust
          // level as phase 1's certificate); re-solving cold here would
          // make every pruned branch-and-bound child pay twice.
          PR = DR;
          Solved = true;
        }
        // Dual IterLimit: retry cold rather than reporting a starved
        // restore as the solve's outcome.
      }
    }
    if (Solved) {
      RS.WarmStarted = true;
      ++Tel.WarmStartHits;
    }
  }

  // ---- Cold path: two-phase from the slack/artificial basis. ----
  if (!Solved) {
    buildTableau(T, M, Lo, Hi, /*ExplicitBounds=*/false);

    if (T.NumCols > T.ArtStart) {
      // Phase 1: minimize the sum of artificials. Their reduced costs are
      // never needed (artificials are never priced), so the cost row only
      // spans the live columns.
      T.Cost.assign(T.NumCols, 0.0);
      for (size_t R = 0; R < T.NumRows; ++R) {
        size_t B = static_cast<size_t>(T.Basis[R]);
        if (B < T.ArtStart)
          continue;
        const double *Row = T.row(R);
        for (size_t C = 0; C < T.ArtStart; ++C)
          T.Cost[C] -= Row[C];
      }
      PhaseResult P1 = runPrimal(T, Options, RS);
      if (P1 != PhaseResult::Optimal) {
        Result.Status = SolveStatus::IterLimit;
        return Result;
      }
      double Phase1Obj = 0.0;
      for (size_t R = 0; R < T.NumRows; ++R)
        if (static_cast<size_t>(T.Basis[R]) >= T.ArtStart)
          Phase1Obj += T.Rhs[R];
      if (Phase1Obj > 1e-7) {
        Result.Status = SolveStatus::Infeasible;
        return Result;
      }
      // Drive residual basic artificials out of the basis where possible;
      // a row that offers no live pivot is redundant and keeps its
      // artificial basic at zero (the dead column is never touched again).
      for (size_t R = 0; R < T.NumRows; ++R) {
        size_t B = static_cast<size_t>(T.Basis[R]);
        if (B < T.ArtStart)
          continue;
        size_t PivotCol = None;
        for (size_t C = 0; C < T.ArtStart; ++C) {
          if (T.Status[C] != ColStatus::Basic &&
              std::abs(T.at(R, C)) > Tol) {
            PivotCol = C;
            break;
          }
        }
        if (PivotCol == None)
          continue;
        int Dir = T.Status[PivotCol] == ColStatus::AtLower ? 1 : -1;
        double A = T.at(R, PivotCol);
        double Step = T.Rhs[R] / (Dir * A);
        applyPivot(T, R, PivotCol, Dir, Step, ColStatus::AtLower);
        ++RS.Pivots;
        ++Tel.Pivots;
      }
    }

    computeReducedCosts(T, makeCosts(T));
    PR = runPrimal(T, Options, RS);
  }

  if (PR == PhaseResult::IterLimit || PR == PhaseResult::Infeasible) {
    // Infeasible here comes from the warm dual's certificate; the primal
    // phases report infeasibility via the phase-1 objective instead.
    Result.Status = PR == PhaseResult::Infeasible ? SolveStatus::Infeasible
                                                  : SolveStatus::IterLimit;
    return Result;
  }
  if (PR == PhaseResult::Unbounded) {
    Result.Status = SolveStatus::Unbounded;
    return Result;
  }

  // Extract the solution (shift lower bounds back in).
  Result.Values.assign(NumVars, 0.0);
  for (size_t V = 0; V < NumVars; ++V)
    if (T.Status[V] == ColStatus::AtUpper)
      Result.Values[V] = T.Upper[V];
  for (size_t R = 0; R < T.NumRows; ++R) {
    int B = T.Basis[R];
    if (B >= 0 && static_cast<size_t>(B) < NumVars)
      Result.Values[static_cast<size_t>(B)] = T.Rhs[R];
  }
  for (size_t V = 0; V < NumVars; ++V) {
    Result.Values[V] += Lo[V];
    // Clamp tiny numerical overshoot back into the variable's domain.
    Result.Values[V] = std::max(Result.Values[V], Lo[V]);
    if (std::isfinite(Hi[V]))
      Result.Values[V] = std::min(Result.Values[V], Hi[V]);
  }
  Result.Objective = M.objective().evaluate(Result.Values);
  Result.Status = SolveStatus::Optimal;

  if (FinalBasis) {
    FinalBasis->BasicCols.resize(T.NumRows);
    for (size_t R = 0; R < T.NumRows; ++R)
      FinalBasis->BasicCols[R] = T.logicalOf(T.Basis[R]);
    FinalBasis->AtUpper.assign(NumVars, 0);
    for (size_t V = 0; V < NumVars; ++V)
      FinalBasis->AtUpper[V] = T.Status[V] == ColStatus::AtUpper;
  }
  return Result;
}

Solution lp::solveLp(const Model &M) {
  return solveLp(M, {}, SimplexOptions());
}
