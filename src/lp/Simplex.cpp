//===- lp/Simplex.cpp - Dense two-phase primal simplex -------------------===//
//
// Part of the PALMED reproduction.
//
// Implementation notes: variables are shifted by their (finite) lower bound
// so the working variables are non-negative; finite upper bounds become
// explicit rows. Phase 1 minimizes the sum of artificial variables, phase 2
// the user objective. Dantzig pricing with a Bland fallback after a stall
// guards against cycling on degenerate bases.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace palmed;
using namespace palmed::lp;

namespace {

/// Dense row-major tableau with an explicit reduced-cost row.
class Tableau {
public:
  Tableau(size_t NumRows, size_t NumCols)
      : NumRows(NumRows), NumCols(NumCols),
        Data(NumRows * (NumCols + 1), 0.0), Cost(NumCols + 1, 0.0),
        Basis(NumRows, -1), Enterable(NumCols, true) {}

  double &at(size_t Row, size_t Col) { return Data[Row * (NumCols + 1) + Col]; }
  double at(size_t Row, size_t Col) const {
    return Data[Row * (NumCols + 1) + Col];
  }
  double &rhs(size_t Row) { return at(Row, NumCols); }
  double rhs(size_t Row) const { return at(Row, NumCols); }

  void pivot(size_t PivotRow, size_t PivotCol) {
    double *RowP = &Data[PivotRow * (NumCols + 1)];
    double Inv = 1.0 / RowP[PivotCol];
    for (size_t C = 0; C <= NumCols; ++C)
      RowP[C] *= Inv;
    RowP[PivotCol] = 1.0;
    for (size_t R = 0; R < NumRows; ++R) {
      if (R == PivotRow)
        continue;
      double *Other = &Data[R * (NumCols + 1)];
      double Factor = Other[PivotCol];
      if (Factor == 0.0)
        continue;
      for (size_t C = 0; C <= NumCols; ++C)
        Other[C] -= Factor * RowP[C];
      Other[PivotCol] = 0.0;
    }
    double Factor = Cost[PivotCol];
    if (Factor != 0.0) {
      for (size_t C = 0; C <= NumCols; ++C)
        Cost[C] -= Factor * RowP[C];
      Cost[PivotCol] = 0.0;
    }
    Basis[PivotRow] = static_cast<int>(PivotCol);
  }

  size_t NumRows;
  size_t NumCols;
  std::vector<double> Data;
  std::vector<double> Cost; ///< Reduced costs; last entry is -objective.
  std::vector<int> Basis;
  std::vector<bool> Enterable;
};

enum class PhaseResult { Optimal, Unbounded, IterLimit };

/// Runs primal simplex iterations until optimality of the current cost row.
PhaseResult runPhase(Tableau &T, const SimplexOptions &Options) {
  const double Tol = Options.Tolerance;
  int StallCount = 0;
  bool UseBland = false;
  double LastObjective = -T.Cost[T.NumCols];

  for (int Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    // Entering column: most negative reduced cost (Dantzig) or first
    // negative (Bland) among enterable columns.
    size_t Entering = T.NumCols;
    double BestCost = -Tol;
    for (size_t C = 0; C < T.NumCols; ++C) {
      if (!T.Enterable[C])
        continue;
      double RC = T.Cost[C];
      if (RC < BestCost) {
        BestCost = RC;
        Entering = C;
        if (UseBland)
          break;
      }
    }
    if (Entering == T.NumCols)
      return PhaseResult::Optimal;

    // Ratio test; ties broken by smallest basis variable index (helps
    // termination together with Bland pricing).
    size_t Leaving = T.NumRows;
    double BestRatio = 0.0;
    for (size_t R = 0; R < T.NumRows; ++R) {
      double A = T.at(R, Entering);
      if (A <= Tol)
        continue;
      double Ratio = T.rhs(R) / A;
      if (Leaving == T.NumRows || Ratio < BestRatio - Tol ||
          (Ratio < BestRatio + Tol && T.Basis[R] < T.Basis[Leaving])) {
        BestRatio = Ratio;
        Leaving = R;
      }
    }
    if (Leaving == T.NumRows)
      return PhaseResult::Unbounded;

    T.pivot(Leaving, Entering);

    double Objective = -T.Cost[T.NumCols];
    if (Objective < LastObjective - Tol) {
      LastObjective = Objective;
      StallCount = 0;
    } else if (++StallCount > 200) {
      UseBland = true;
    }
  }
  return PhaseResult::IterLimit;
}

} // namespace

Solution lp::solveLp(const Model &M, const std::vector<BoundOverride> &Overrides,
                     const SimplexOptions &Options) {
  const double Tol = Options.Tolerance;
  const size_t NumVars = M.numVars();

  // Effective bounds after overrides.
  std::vector<double> Lo(NumVars), Hi(NumVars);
  for (size_t V = 0; V < NumVars; ++V) {
    Lo[V] = M.var(static_cast<VarId>(V)).LowerBound;
    Hi[V] = M.var(static_cast<VarId>(V)).UpperBound;
  }
  for (const BoundOverride &O : Overrides) {
    assert(O.Var >= 0 && static_cast<size_t>(O.Var) < NumVars);
    Lo[static_cast<size_t>(O.Var)] = O.LowerBound;
    Hi[static_cast<size_t>(O.Var)] = O.UpperBound;
  }
  Solution Result;
  for (size_t V = 0; V < NumVars; ++V) {
    if (Lo[V] > Hi[V] + Tol) {
      Result.Status = SolveStatus::Infeasible;
      return Result;
    }
  }

  // Row inventory: model constraints + one row per finite upper bound.
  struct RowSpec {
    const Constraint *C = nullptr; ///< Null for upper-bound rows.
    size_t UbVar = 0;
    Sense Dir = Sense::LE;
    double Rhs = 0.0;
  };
  std::vector<RowSpec> RowSpecs;
  for (const Constraint &C : M.constraints()) {
    RowSpec S;
    S.C = &C;
    S.Dir = C.Dir;
    double Shift = 0.0;
    for (const auto &[Var, Coeff] : C.Expr.terms())
      Shift += Coeff * Lo[static_cast<size_t>(Var)];
    S.Rhs = C.Rhs - Shift;
    RowSpecs.push_back(S);
  }
  for (size_t V = 0; V < NumVars; ++V) {
    if (!std::isfinite(Hi[V]))
      continue;
    RowSpec S;
    S.UbVar = V;
    S.Dir = Sense::LE;
    S.Rhs = Hi[V] - Lo[V];
    RowSpecs.push_back(S);
  }

  const size_t NumRows = RowSpecs.size();
  // Count auxiliary columns. After rhs-sign normalization:
  //   LE -> slack (basic);  GE -> surplus + artificial;  EQ -> artificial.
  size_t NumSlack = 0, NumArtificial = 0;
  std::vector<Sense> EffDir(NumRows);
  std::vector<double> EffRhs(NumRows);
  std::vector<double> RowSign(NumRows, 1.0);
  for (size_t R = 0; R < NumRows; ++R) {
    Sense Dir = RowSpecs[R].Dir;
    double Rhs = RowSpecs[R].Rhs;
    if (Rhs < 0.0) {
      Rhs = -Rhs;
      RowSign[R] = -1.0;
      if (Dir == Sense::LE)
        Dir = Sense::GE;
      else if (Dir == Sense::GE)
        Dir = Sense::LE;
    }
    EffDir[R] = Dir;
    EffRhs[R] = Rhs;
    switch (Dir) {
    case Sense::LE:
      ++NumSlack;
      break;
    case Sense::GE:
      ++NumSlack; // Surplus column.
      ++NumArtificial;
      break;
    case Sense::EQ:
      ++NumArtificial;
      break;
    }
  }

  const size_t SlackStart = NumVars;
  const size_t ArtStart = SlackStart + NumSlack;
  const size_t NumCols = ArtStart + NumArtificial;

  Tableau T(NumRows, NumCols);
  size_t NextSlack = SlackStart, NextArt = ArtStart;
  for (size_t R = 0; R < NumRows; ++R) {
    const RowSpec &S = RowSpecs[R];
    if (S.C) {
      for (const auto &[Var, Coeff] : S.C->Expr.terms())
        T.at(R, static_cast<size_t>(Var)) += RowSign[R] * Coeff;
    } else {
      T.at(R, S.UbVar) = RowSign[R];
    }
    T.rhs(R) = EffRhs[R];
    switch (EffDir[R]) {
    case Sense::LE:
      T.at(R, NextSlack) = 1.0;
      T.Basis[R] = static_cast<int>(NextSlack);
      ++NextSlack;
      break;
    case Sense::GE:
      T.at(R, NextSlack) = -1.0;
      ++NextSlack;
      T.at(R, NextArt) = 1.0;
      T.Basis[R] = static_cast<int>(NextArt);
      ++NextArt;
      break;
    case Sense::EQ:
      T.at(R, NextArt) = 1.0;
      T.Basis[R] = static_cast<int>(NextArt);
      ++NextArt;
      break;
    }
  }

  // ---- Phase 1: minimize the sum of artificials. ----
  if (NumArtificial > 0) {
    std::fill(T.Cost.begin(), T.Cost.end(), 0.0);
    for (size_t C = ArtStart; C < NumCols; ++C)
      T.Cost[C] = 1.0;
    // Canonicalize: basic artificials must have zero reduced cost.
    for (size_t R = 0; R < NumRows; ++R) {
      int B = T.Basis[R];
      if (B >= 0 && static_cast<size_t>(B) >= ArtStart)
        for (size_t C = 0; C <= NumCols; ++C)
          T.Cost[C] -= T.at(R, C);
    }
    PhaseResult PR = runPhase(T, Options);
    if (PR == PhaseResult::IterLimit) {
      Result.Status = SolveStatus::IterLimit;
      return Result;
    }
    double Phase1Obj = -T.Cost[NumCols];
    if (Phase1Obj > 1e-7) {
      Result.Status = SolveStatus::Infeasible;
      return Result;
    }
    // Drive residual basic artificials out of the basis where possible.
    for (size_t R = 0; R < NumRows; ++R) {
      int B = T.Basis[R];
      if (B < 0 || static_cast<size_t>(B) < ArtStart)
        continue;
      size_t PivotCol = NumCols;
      for (size_t C = 0; C < ArtStart; ++C) {
        if (std::abs(T.at(R, C)) > Tol) {
          PivotCol = C;
          break;
        }
      }
      if (PivotCol != NumCols)
        T.pivot(R, PivotCol);
      // Otherwise the row is redundant; the artificial stays basic at zero.
    }
    for (size_t C = ArtStart; C < NumCols; ++C)
      T.Enterable[C] = false;
  }

  // ---- Phase 2: the user objective (as minimization). ----
  std::vector<double> Costs(NumCols, 0.0);
  double ObjSign = M.goal() == Goal::Minimize ? 1.0 : -1.0;
  LinearExpr Obj = M.objective();
  Obj.normalize();
  for (const auto &[Var, Coeff] : Obj.terms())
    Costs[static_cast<size_t>(Var)] = ObjSign * Coeff;
  std::fill(T.Cost.begin(), T.Cost.end(), 0.0);
  for (size_t C = 0; C < NumCols; ++C)
    T.Cost[C] = Costs[C];
  for (size_t R = 0; R < NumRows; ++R) {
    int B = T.Basis[R];
    if (B < 0)
      continue;
    double CB = Costs[static_cast<size_t>(B)];
    if (CB == 0.0)
      continue;
    for (size_t C = 0; C <= NumCols; ++C)
      T.Cost[C] -= CB * T.at(R, C);
  }

  PhaseResult PR = runPhase(T, Options);
  if (PR == PhaseResult::IterLimit) {
    Result.Status = SolveStatus::IterLimit;
    return Result;
  }
  if (PR == PhaseResult::Unbounded) {
    Result.Status = SolveStatus::Unbounded;
    return Result;
  }

  // Extract the solution (shift lower bounds back in).
  Result.Values.assign(NumVars, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    int B = T.Basis[R];
    if (B >= 0 && static_cast<size_t>(B) < NumVars)
      Result.Values[static_cast<size_t>(B)] = T.rhs(R);
  }
  for (size_t V = 0; V < NumVars; ++V) {
    Result.Values[V] += Lo[V];
    // Clamp tiny numerical overshoot back into the variable's domain.
    Result.Values[V] = std::max(Result.Values[V], Lo[V]);
    if (std::isfinite(Hi[V]))
      Result.Values[V] = std::min(Result.Values[V], Hi[V]);
  }
  Result.Objective = M.objective().evaluate(Result.Values);
  Result.Status = SolveStatus::Optimal;
  return Result;
}

Solution lp::solveLp(const Model &M) {
  return solveLp(M, {}, SimplexOptions());
}
