//===- lp/Model.cpp - Linear/integer optimization model ------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "lp/Model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace palmed;
using namespace palmed::lp;

LinearExpr &LinearExpr::add(VarId Var, double Coeff) {
  assert(Var >= 0 && "invalid variable");
  if (Coeff != 0.0)
    Terms.emplace_back(Var, Coeff);
  return *this;
}

LinearExpr &LinearExpr::operator+=(const LinearExpr &O) {
  Terms.insert(Terms.end(), O.Terms.begin(), O.Terms.end());
  Constant += O.Constant;
  return *this;
}

void LinearExpr::normalize() {
  std::sort(Terms.begin(), Terms.end());
  size_t Out = 0;
  for (size_t I = 0; I < Terms.size();) {
    VarId Var = Terms[I].first;
    double Coeff = 0.0;
    while (I < Terms.size() && Terms[I].first == Var)
      Coeff += Terms[I++].second;
    if (Coeff != 0.0)
      Terms[Out++] = {Var, Coeff};
  }
  Terms.resize(Out);
}

double LinearExpr::evaluate(const std::vector<double> &Values) const {
  double Sum = Constant;
  for (const auto &[Var, Coeff] : Terms)
    Sum += Coeff * Values[static_cast<size_t>(Var)];
  return Sum;
}

VarId Model::addVar(std::string Name, double LowerBound, double UpperBound,
                    bool IsInteger) {
  assert(std::isfinite(LowerBound) && "lower bound must be finite");
  assert(LowerBound <= UpperBound && "empty variable domain");
  Variable V;
  V.Name = std::move(Name);
  V.LowerBound = LowerBound;
  V.UpperBound = UpperBound;
  V.IsInteger = IsInteger;
  Vars.push_back(std::move(V));
  return static_cast<VarId>(Vars.size() - 1);
}

void Model::addConstraint(LinearExpr Expr, Sense Dir, double Rhs,
                          std::string Name) {
  Constraint C;
  Rhs -= Expr.constant();
  Expr.addConstant(-Expr.constant());
  Expr.normalize();
  C.Expr = std::move(Expr);
  C.Dir = Dir;
  C.Rhs = Rhs;
  C.Name = std::move(Name);
  Constraints_.push_back(std::move(C));
}

void Model::replaceConstraint(size_t Idx, LinearExpr Expr, Sense Dir,
                              double Rhs, std::string Name) {
  assert(Idx < Constraints_.size() && "replaceConstraint out of range");
  Constraint &C = Constraints_[Idx];
  Rhs -= Expr.constant();
  Expr.addConstant(-Expr.constant());
  Expr.normalize();
  C.Expr = std::move(Expr);
  C.Dir = Dir;
  C.Rhs = Rhs;
  C.Name = std::move(Name);
}

void Model::truncateConstraints(size_t N) {
  assert(N <= Constraints_.size() && "truncateConstraints growing");
  Constraints_.resize(N);
}

void Model::setObjective(LinearExpr Expr, Goal Dir) {
  Expr.normalize();
  Objective = std::move(Expr);
  Direction = Dir;
}

bool Model::hasIntegerVars() const {
  for (const Variable &V : Vars)
    if (V.IsInteger)
      return true;
  return false;
}
