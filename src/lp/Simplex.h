//===- lp/Simplex.h - Bounded-variable primal/dual simplex ------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense bounded-variable simplex over a Model (integrality relaxed).
/// Finite upper bounds are handled implicitly (nonbasic-at-upper-bound
/// statuses and bound flips) instead of materializing one row per bounded
/// variable, which matters on Palmed models where nearly every variable is
/// bounded. Devex pricing with a Bland fallback guards degenerate bases; a
/// bounded dual simplex restores feasibility when re-solving from a warm
/// basis after bound changes (branch-and-bound nodes) or objective changes
/// (BWP pin iterations). Sized for Palmed's LP instances: a few thousand
/// rows/columns at most.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_LP_SIMPLEX_H
#define PALMED_LP_SIMPLEX_H

#include "lp/Model.h"

#include <cstdint>

namespace palmed {
namespace lp {

/// Solver flavor.
enum class LpPricing {
  /// Bounded-variable simplex with Devex pricing, implicit upper bounds,
  /// and warm-start support: the fast path.
  Devex,
  /// Compatibility mode: reproduces the historical dense two-phase solver
  /// value-for-value — explicit upper-bound rows, Dantzig pricing with
  /// smallest-basis-index ratio ties, and the original pivot arithmetic.
  /// Degenerate optima are vertex-ambiguous, and Palmed's refinement loop
  /// consumes raw vertices (maximal-weight BWP solutions, oracle
  /// measurement bits that feed integer rounding of kernel
  /// multiplicities), so the call sites whose vertex choice shapes the
  /// final mapping pin this mode to keep mapping outcomes reproducible.
  /// Warm starts are ignored in this mode.
  Dantzig,
};

/// Options controlling the simplex run.
struct SimplexOptions {
  /// Hard cap on pivots per phase (and per dual-simplex restore).
  int MaxIterations = 200000;
  /// Numerical tolerance for feasibility / reduced-cost tests.
  double Tolerance = 1e-9;
  LpPricing Pricing = LpPricing::Devex;
};

/// Per-variable bound overrides used by branch-and-bound nodes; entries with
/// Var < 0 terminate scanning early and are not allowed.
struct BoundOverride {
  VarId Var = -1;
  double LowerBound = 0.0;
  double UpperBound = Infinity;
};

/// A simplex basis in solver-stable "logical" column numbering: columns
/// [0, numVars) are the model variables, [numVars, numVars + numRows) the
/// per-row slack/surplus columns, and [numVars + numRows, numVars +
/// 2*numRows) the per-row artificial columns. The numbering depends only on
/// the model's shape, never on bound overrides, so a basis exported from one
/// solve can seed another solve of the same model with different bounds or a
/// different objective.
struct SimplexBasis {
  /// One basic logical column per tableau row.
  std::vector<int> BasicCols;
  /// Per model variable: nonbasic at its upper (instead of lower) bound.
  std::vector<uint8_t> AtUpper;

  bool empty() const { return BasicCols.empty(); }
  void clear() {
    BasicCols.clear();
    AtUpper.clear();
  }
};

/// Per-solve statistics.
struct LpRunStats {
  int Pivots = 0;     ///< Primal + dual pivots.
  int DualPivots = 0; ///< Dual-simplex share of Pivots.
  int BoundFlips = 0; ///< Nonbasic bound flips (no basis change).
  /// True when the caller-provided warm basis was accepted and drove the
  /// solve (false on fallback to a cold two-phase solve).
  bool WarmStarted = false;
};

/// Cheap thread-local accumulation of simplex work, for surfacing LP
/// hot-path cost through PalmedStats and the benches without threading a
/// stats object through every call site. Snapshot before / after a region
/// and subtract.
struct LpTelemetry {
  long Solves = 0;
  long Pivots = 0;
  long DualPivots = 0;
  long BoundFlips = 0;
  long WarmStartAttempts = 0;
  long WarmStartHits = 0;
};

/// The calling thread's telemetry accumulator.
LpTelemetry &lpTelemetry();

/// Solves the LP relaxation of \p M. \p Overrides optionally tightens
/// variable bounds (used by branch-and-bound); overridden bounds fully
/// replace the model's bounds for that variable.
///
/// \p WarmStart, when non-null and non-empty, seeds the solve with a basis
/// previously exported (via \p FinalBasis) from a solve of the same model —
/// possibly under different bound overrides or a different objective. The
/// warm path falls back to a cold solve automatically when the basis does
/// not fit (dimension mismatch, singular after bound changes, neither
/// primal nor dual feasible). \p FinalBasis, when non-null, receives the
/// final basis of a solve that ended Optimal (cleared otherwise).
Solution solveLp(const Model &M, const std::vector<BoundOverride> &Overrides,
                 const SimplexOptions &Options,
                 const SimplexBasis *WarmStart = nullptr,
                 SimplexBasis *FinalBasis = nullptr,
                 LpRunStats *Stats = nullptr);

/// Convenience overload without overrides and with default options.
Solution solveLp(const Model &M);

} // namespace lp
} // namespace palmed

#endif // PALMED_LP_SIMPLEX_H
