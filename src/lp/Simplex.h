//===- lp/Simplex.h - Dense two-phase primal simplex ------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense two-phase primal simplex over a Model (integrality relaxed).
/// Sized for Palmed's LP instances: a few thousand rows/columns at most.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_LP_SIMPLEX_H
#define PALMED_LP_SIMPLEX_H

#include "lp/Model.h"

namespace palmed {
namespace lp {

/// Options controlling the simplex run.
struct SimplexOptions {
  /// Hard cap on pivots per phase.
  int MaxIterations = 200000;
  /// Numerical tolerance for feasibility / reduced-cost tests.
  double Tolerance = 1e-9;
};

/// Per-variable bound overrides used by branch-and-bound nodes; entries with
/// Var < 0 terminate scanning early and are not allowed.
struct BoundOverride {
  VarId Var = -1;
  double LowerBound = 0.0;
  double UpperBound = Infinity;
};

/// Solves the LP relaxation of \p M. \p Overrides optionally tightens
/// variable bounds (used by branch-and-bound); overridden bounds fully
/// replace the model's bounds for that variable.
Solution solveLp(const Model &M, const std::vector<BoundOverride> &Overrides,
                 const SimplexOptions &Options);

/// Convenience overload without overrides and with default options.
Solution solveLp(const Model &M);

} // namespace lp
} // namespace palmed

#endif // PALMED_LP_SIMPLEX_H
