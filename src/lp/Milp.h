//===- lp/Milp.h - Branch-and-bound MILP solver -----------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Best-first branch-and-bound over the simplex relaxation. Used for
/// Palmed's LP1 shape problem (0/1 edges) and the exact-MILP mode of the
/// bipartite weight problem (LP2 / LPAUX argmax indicators).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_LP_MILP_H
#define PALMED_LP_MILP_H

#include "lp/Model.h"
#include "lp/Simplex.h"

namespace palmed {
namespace lp {

/// Options controlling the branch-and-bound search.
struct MilpOptions {
  /// Hard cap on explored nodes; exceeding it yields SolveStatus::Feasible
  /// (best incumbent) or SolveStatus::IterLimit (no incumbent).
  int MaxNodes = 200000;
  /// Integrality tolerance.
  double IntTolerance = 1e-6;
  /// Absolute optimality gap at which the search stops early.
  double AbsGap = 1e-7;
  SimplexOptions Lp;
};

/// Statistics from a branch-and-bound run.
struct MilpStats {
  int NodesExplored = 0;
  int Incumbents = 0;
};

/// Solves \p M to integer optimality (or best effort under the node limit).
Solution solveMilp(const Model &M, const MilpOptions &Options,
                   MilpStats *Stats = nullptr);

/// Convenience overload with default options.
Solution solveMilp(const Model &M);

} // namespace lp
} // namespace palmed

#endif // PALMED_LP_MILP_H
