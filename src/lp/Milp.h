//===- lp/Milp.h - Branch-and-bound MILP solver -----------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Best-first branch-and-bound over the simplex relaxation. Used for
/// Palmed's LP1 shape problem (0/1 edges) and the exact-MILP mode of the
/// bipartite weight problem (LP2 / LPAUX argmax indicators). Child node
/// relaxations are warm-started from the parent's final basis (the bounded
/// dual simplex restores feasibility after the branching bound change).
///
/// Status contract: SolveStatus::Optimal is returned only when the search
/// tree was explored exhaustively — every pruned subtree was justified by
/// its relaxation bound or by infeasibility. Whenever any subtree was
/// dropped for another reason (a node LP hit its iteration limit, or the
/// node budget ran out), the best incumbent is reported as
/// SolveStatus::Feasible, and with no incumbent the result is
/// SolveStatus::IterLimit — never Infeasible.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_LP_MILP_H
#define PALMED_LP_MILP_H

#include "lp/Model.h"
#include "lp/Simplex.h"

#include <cmath>

namespace palmed {
namespace lp {

/// Options controlling the branch-and-bound search.
struct MilpOptions {
  /// Hard cap on explored nodes; exceeding it yields SolveStatus::Feasible
  /// (best incumbent) or SolveStatus::IterLimit (no incumbent).
  int MaxNodes = 200000;
  /// Integrality tolerance.
  double IntTolerance = 1e-6;
  /// Absolute optimality gap at which the search stops early.
  double AbsGap = 1e-7;
  /// Warm-start child relaxations from the parent's final basis. Off is
  /// only useful for testing and for comparing against cold solves.
  bool UseWarmStart = true;
  SimplexOptions Lp;
};

/// Statistics from a branch-and-bound run.
struct MilpStats {
  int NodesExplored = 0;
  int Incumbents = 0;
  /// LP relaxations solved (root + children that were not pre-pruned).
  int LpSolves = 0;
  /// Simplex pivots across all node LPs (primal + dual).
  long LpPivots = 0;
  /// Dual-simplex share of LpPivots (warm-start feasibility restores).
  long LpDualPivots = 0;
  /// Nonbasic bound flips across all node LPs.
  long LpBoundFlips = 0;
  /// Child LPs attempted with the parent's basis / accepted by the warm
  /// path (a miss fell back to a cold solve).
  int WarmStartAttempts = 0;
  int WarmStartHits = 0;
  /// Subtrees dropped because a child relaxation hit its iteration limit.
  /// Any drop downgrades the final status (see the status contract above).
  int DroppedSubtrees = 0;
  /// The MaxNodes budget ran out with open nodes remaining.
  bool NodeLimitHit = false;
};

/// True when \p X is integral within \p Tol. The single integrality
/// predicate shared by the branch-variable choice and the incumbent test,
/// so a value at exactly the tolerance cannot be "integral" to one check
/// and "fractional" to the other.
inline bool isIntegral(double X, double Tol) {
  return std::abs(X - std::round(X)) <= Tol;
}

/// Solves \p M to integer optimality (or best effort under the node limit).
Solution solveMilp(const Model &M, const MilpOptions &Options,
                   MilpStats *Stats = nullptr);

/// Convenience overload with default options.
Solution solveMilp(const Model &M);

/// Exact structural fingerprint of a model — variables (bounds,
/// integrality), constraints (terms, sense, right-hand side), objective
/// and goal, all by coefficient bit pattern with length-prefixed fields.
/// Two models with equal fingerprints are byte-identical inputs to the
/// (deterministic) solvers, so memoizing a solve on the fingerprint
/// replays the exact solution. Names are deliberately excluded: they
/// never influence a solve.
StructuralDigest::Value fingerprintModel(const Model &M);

} // namespace lp
} // namespace palmed

#endif // PALMED_LP_MILP_H
