//===- lp/Milp.cpp - Branch-and-bound MILP solver -------------------------===//
//
// Part of the PALMED reproduction.
//
// Node bookkeeping: each node owns its relaxation solution and final basis,
// indexed by a slot id carried on the best-first heap (no linear pool
// scans). A child LP starts from its parent's basis; only the branching
// variable's bound changed, so the bounded dual simplex usually restores
// feasibility in a handful of pivots.
//
//===----------------------------------------------------------------------===//

#include "lp/Milp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <utility>
#include <vector>

using namespace palmed;
using namespace palmed::lp;

namespace {

/// A branch-and-bound node: the bound overrides defining its subproblem
/// plus the relaxation solution and basis computed at creation time (each
/// node solves its LP exactly once).
struct Node {
  std::vector<BoundOverride> Overrides;
  double Bound = 0.0; ///< Relaxation objective (minimization-normalized).
  int Depth = 0;
  Solution Relax;
  SimplexBasis Basis;
};

/// Heap entry referencing a pool slot; ordering mirrors the node fields so
/// the pool is only touched when a node is actually expanded.
struct HeapEntry {
  double Bound = 0.0;
  int Depth = 0;
  size_t Slot = 0;
};

struct HeapOrder {
  bool operator()(const HeapEntry &A, const HeapEntry &B) const {
    if (A.Bound != B.Bound)
      return A.Bound > B.Bound; // Best bound first.
    return A.Depth < B.Depth;   // Then deepest first (dive).
  }
};

/// Picks the integer variable whose relaxation value is most fractional,
/// using the shared isIntegral predicate: returns -1 exactly when every
/// integer variable passes the incumbent integrality test.
VarId pickBranchVar(const Model &M, const std::vector<double> &Values,
                    double Tol) {
  VarId Best = -1;
  double BestFrac = 0.0;
  for (size_t V = 0; V < M.numVars(); ++V) {
    if (!M.var(static_cast<VarId>(V)).IsInteger)
      continue;
    double X = Values[V];
    if (isIntegral(X, Tol))
      continue;
    double Frac = std::abs(X - std::round(X));
    if (Frac > BestFrac) {
      BestFrac = Frac;
      Best = static_cast<VarId>(V);
    }
  }
  return Best;
}

} // namespace

Solution lp::solveMilp(const Model &M, const MilpOptions &Options,
                       MilpStats *Stats) {
  MilpStats LocalStats;
  MilpStats &S = Stats ? *Stats : LocalStats;
  S = MilpStats();

  const double Sign = M.goal() == Goal::Minimize ? 1.0 : -1.0;

  Solution Incumbent;
  Incumbent.Status = SolveStatus::Infeasible;
  double IncumbentBound = Infinity; // Minimization-normalized.

  std::vector<Node> Pool;
  std::vector<size_t> FreeSlots;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder> Open;

  auto Alloc = [&]() -> size_t {
    if (!FreeSlots.empty()) {
      size_t Slot = FreeSlots.back();
      FreeSlots.pop_back();
      return Slot;
    }
    Pool.emplace_back();
    return Pool.size() - 1;
  };

  {
    Node Root;
    LpRunStats LS;
    Solution RootSol =
        solveLp(M, Root.Overrides, Options.Lp, nullptr, &Root.Basis, &LS);
    ++S.LpSolves;
    S.LpPivots += LS.Pivots;
    S.LpDualPivots += LS.DualPivots;
    S.LpBoundFlips += LS.BoundFlips;
    if (RootSol.Status == SolveStatus::Infeasible ||
        RootSol.Status == SolveStatus::IterLimit) {
      return RootSol;
    }
    if (RootSol.Status == SolveStatus::Unbounded) {
      // With integer variables we do not attempt to certify integer
      // unboundedness; report it as-is.
      return RootSol;
    }
    Root.Bound = Sign * RootSol.Objective;
    Root.Relax = std::move(RootSol);
    size_t Slot = Alloc();
    Open.push({Root.Bound, Root.Depth, Slot});
    Pool[Slot] = std::move(Root);
  }

  while (!Open.empty()) {
    if (S.NodesExplored >= Options.MaxNodes) {
      S.NodeLimitHit = true;
      break;
    }
    HeapEntry Top = Open.top();
    Open.pop();
    ++S.NodesExplored;

    Node N = std::move(Pool[Top.Slot]);
    FreeSlots.push_back(Top.Slot);

    if (N.Bound >= IncumbentBound - Options.AbsGap)
      continue; // Cannot improve on the incumbent.

    VarId Branch = pickBranchVar(M, N.Relax.Values, Options.IntTolerance);
    if (Branch < 0) {
      // Integral: new incumbent.
      double Normalized = Sign * N.Relax.Objective;
      if (Normalized < IncumbentBound - Options.AbsGap) {
        IncumbentBound = Normalized;
        Incumbent = std::move(N.Relax);
        Incumbent.Status = SolveStatus::Optimal;
        ++S.Incumbents;
      }
      continue;
    }

    double X = N.Relax.Values[static_cast<size_t>(Branch)];
    double Floor = std::floor(X);
    const Variable &BV = M.var(Branch);

    // Current effective bounds of the branch variable at this node.
    double CurLo = BV.LowerBound, CurHi = BV.UpperBound;
    for (const BoundOverride &O : N.Overrides) {
      if (O.Var == Branch) {
        CurLo = O.LowerBound;
        CurHi = O.UpperBound;
      }
    }

    auto MakeChild = [&](double NewLo, double NewHi) {
      if (NewLo > NewHi)
        return;
      Node Child;
      Child.Overrides = N.Overrides;
      bool Replaced = false;
      for (BoundOverride &O : Child.Overrides) {
        if (O.Var == Branch) {
          O.LowerBound = NewLo;
          O.UpperBound = NewHi;
          Replaced = true;
        }
      }
      if (!Replaced)
        Child.Overrides.push_back({Branch, NewLo, NewHi});
      Child.Depth = N.Depth + 1;

      const SimplexBasis *Warm =
          Options.UseWarmStart && !N.Basis.empty() ? &N.Basis : nullptr;
      if (Warm)
        ++S.WarmStartAttempts;
      LpRunStats LS;
      Solution ChildSol =
          solveLp(M, Child.Overrides, Options.Lp, Warm, &Child.Basis, &LS);
      ++S.LpSolves;
      S.LpPivots += LS.Pivots;
      S.LpDualPivots += LS.DualPivots;
      S.LpBoundFlips += LS.BoundFlips;
      if (LS.WarmStarted)
        ++S.WarmStartHits;

      if (ChildSol.Status == SolveStatus::Infeasible)
        return; // Genuinely pruned.
      if (!ChildSol.ok()) {
        // IterLimit (or an unexpected Unbounded on a subproblem of a
        // bounded parent): the subtree's content is unknown, not empty.
        // Dropping it truncates the search, which the final status must
        // reflect — this is the headline fix: the old code treated these
        // children as infeasible and could report Optimal over a
        // truncated tree.
        ++S.DroppedSubtrees;
        return;
      }
      Child.Bound = Sign * ChildSol.Objective;
      if (Child.Bound >= IncumbentBound - Options.AbsGap)
        return;
      Child.Relax = std::move(ChildSol);
      size_t Slot = Alloc();
      Open.push({Child.Bound, Child.Depth, Slot});
      Pool[Slot] = std::move(Child);
    };

    MakeChild(CurLo, Floor);       // x <= floor
    MakeChild(Floor + 1.0, CurHi); // x >= floor + 1
  }

  const bool Truncated = S.DroppedSubtrees > 0 || !Open.empty();
  if (!Incumbent.ok()) {
    // No incumbent: only a fully explored tree proves infeasibility.
    Incumbent.Status =
        Truncated ? SolveStatus::IterLimit : SolveStatus::Infeasible;
    return Incumbent;
  }
  Incumbent.Status =
      Truncated ? SolveStatus::Feasible : SolveStatus::Optimal;
  // Round integer variables exactly.
  for (size_t V = 0; V < M.numVars(); ++V)
    if (M.var(static_cast<VarId>(V)).IsInteger)
      Incumbent.Values[V] = std::round(Incumbent.Values[V]);
  Incumbent.Objective = M.objective().evaluate(Incumbent.Values);
  return Incumbent;
}

Solution lp::solveMilp(const Model &M) { return solveMilp(M, MilpOptions()); }

lp::StructuralDigest::Value lp::fingerprintModel(const Model &M) {
  StructuralDigest D;
  D.addSize(M.numVars());
  for (const Variable &V : M.vars()) {
    D.addDouble(V.LowerBound);
    D.addDouble(V.UpperBound);
    D.addU64(V.IsInteger ? 1 : 0);
  }
  D.addSize(M.numConstraints());
  for (const Constraint &C : M.constraints()) {
    D.addSize(C.Expr.terms().size());
    for (const auto &[Var, Coeff] : C.Expr.terms()) {
      D.addInt(Var);
      D.addDouble(Coeff);
    }
    D.addU64(static_cast<uint64_t>(C.Dir));
    D.addDouble(C.Rhs);
  }
  D.addSize(M.objective().terms().size());
  for (const auto &[Var, Coeff] : M.objective().terms()) {
    D.addInt(Var);
    D.addDouble(Coeff);
  }
  D.addDouble(M.objective().constant());
  D.addU64(static_cast<uint64_t>(M.goal()));
  return D.value();
}
