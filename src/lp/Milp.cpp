//===- lp/Milp.cpp - Branch-and-bound MILP solver -------------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "lp/Milp.h"
#include "support/Compat.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <queue>

using namespace palmed;
using namespace palmed::lp;

namespace {

struct Node {
  std::vector<BoundOverride> Overrides;
  double Bound = 0.0; ///< Relaxation objective (minimization-normalized).
  int Depth = 0;
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node> &A,
                  const std::shared_ptr<Node> &B) const {
    if (A->Bound != B->Bound)
      return A->Bound > B->Bound; // Best bound first.
    return A->Depth < B->Depth;   // Then deepest first (dive).
  }
};

/// Picks the integer variable whose relaxation value is most fractional.
VarId pickBranchVar(const Model &M, const std::vector<double> &Values,
                    double Tol) {
  VarId Best = -1;
  double BestFrac = Tol;
  for (size_t V = 0; V < M.numVars(); ++V) {
    if (!M.var(static_cast<VarId>(V)).IsInteger)
      continue;
    double X = Values[V];
    double Frac = std::abs(X - std::round(X));
    if (Frac > BestFrac) {
      BestFrac = Frac;
      Best = static_cast<VarId>(V);
    }
  }
  return Best;
}

} // namespace

Solution lp::solveMilp(const Model &M, const MilpOptions &Options,
                       MilpStats *Stats) {
  MilpStats LocalStats;
  MilpStats &S = Stats ? *Stats : LocalStats;
  S = MilpStats();

  const double Sign = M.goal() == Goal::Minimize ? 1.0 : -1.0;

  Solution Incumbent;
  Incumbent.Status = SolveStatus::Infeasible;
  double IncumbentBound = Infinity; // Minimization-normalized.

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      Open;

  auto Root = std::make_shared<Node>();
  Solution RootSol = solveLp(M, Root->Overrides, Options.Lp);
  if (RootSol.Status == SolveStatus::Infeasible ||
      RootSol.Status == SolveStatus::IterLimit) {
    return RootSol;
  }
  if (RootSol.Status == SolveStatus::Unbounded) {
    // With integer variables we do not attempt to certify integer
    // unboundedness; report it as-is.
    return RootSol;
  }
  Root->Bound = Sign * RootSol.Objective;

  // Stash relaxation solutions alongside nodes so each node solves its LP
  // exactly once (at creation time).
  struct OpenEntry {
    std::shared_ptr<Node> N;
    Solution Relax;
  };
  std::vector<OpenEntry> Pool;
  Pool.push_back({Root, std::move(RootSol)});
  Open.push(Root);

  auto FindEntry = [&Pool](const std::shared_ptr<Node> &N) -> OpenEntry * {
    for (OpenEntry &E : Pool)
      if (E.N == N)
        return &E;
    return nullptr;
  };

  while (!Open.empty()) {
    if (S.NodesExplored >= Options.MaxNodes)
      break;
    std::shared_ptr<Node> N = Open.top();
    Open.pop();
    ++S.NodesExplored;

    OpenEntry *Entry = FindEntry(N);
    assert(Entry && "node missing from pool");
    Solution Relax = std::move(Entry->Relax);
    // Compact the pool lazily.
    Entry->N = nullptr;
    eraseIf(Pool, [](const OpenEntry &E) { return !E.N; });

    if (N->Bound >= IncumbentBound - Options.AbsGap)
      continue; // Cannot improve on the incumbent.

    VarId Branch = pickBranchVar(M, Relax.Values, Options.IntTolerance);
    if (Branch < 0) {
      // Integral: new incumbent.
      double Normalized = Sign * Relax.Objective;
      if (Normalized < IncumbentBound - Options.AbsGap) {
        IncumbentBound = Normalized;
        Incumbent = Relax;
        Incumbent.Status = SolveStatus::Optimal;
        ++S.Incumbents;
      }
      continue;
    }

    double X = Relax.Values[static_cast<size_t>(Branch)];
    double Floor = std::floor(X);
    const Variable &BV = M.var(Branch);

    // Current effective bounds of the branch variable at this node.
    double CurLo = BV.LowerBound, CurHi = BV.UpperBound;
    for (const BoundOverride &O : N->Overrides) {
      if (O.Var == Branch) {
        CurLo = O.LowerBound;
        CurHi = O.UpperBound;
      }
    }

    auto MakeChild = [&](double NewLo, double NewHi) {
      if (NewLo > NewHi)
        return;
      auto Child = std::make_shared<Node>();
      Child->Overrides = N->Overrides;
      bool Replaced = false;
      for (BoundOverride &O : Child->Overrides) {
        if (O.Var == Branch) {
          O.LowerBound = NewLo;
          O.UpperBound = NewHi;
          Replaced = true;
        }
      }
      if (!Replaced)
        Child->Overrides.push_back({Branch, NewLo, NewHi});
      Child->Depth = N->Depth + 1;
      Solution ChildSol = solveLp(M, Child->Overrides, Options.Lp);
      if (!ChildSol.ok())
        return;
      Child->Bound = Sign * ChildSol.Objective;
      if (Child->Bound >= IncumbentBound - Options.AbsGap)
        return;
      Pool.push_back({Child, std::move(ChildSol)});
      Open.push(Child);
    };

    MakeChild(CurLo, Floor);        // x <= floor
    MakeChild(Floor + 1.0, CurHi);  // x >= floor + 1
  }

  if (!Incumbent.ok()) {
    Incumbent.Status =
        Open.empty() ? SolveStatus::Infeasible : SolveStatus::IterLimit;
    return Incumbent;
  }
  if (!Open.empty())
    Incumbent.Status = SolveStatus::Feasible; // Search truncated.
  // Round integer variables exactly.
  for (size_t V = 0; V < M.numVars(); ++V)
    if (M.var(static_cast<VarId>(V)).IsInteger)
      Incumbent.Values[V] = std::round(Incumbent.Values[V]);
  Incumbent.Objective = M.objective().evaluate(Incumbent.Values);
  return Incumbent;
}

Solution lp::solveMilp(const Model &M) { return solveMilp(M, MilpOptions()); }
