//===- baselines/PMEvo.cpp - Evolutionary port-mapping inference ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/PMEvo.h"

#include "core/DualConstruction.h"
#include "core/Selection.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace palmed;

namespace {

/// One candidate mapping: per trained instruction, its µOP port sets.
using Genome = std::vector<std::vector<PortMask>>;

/// A training sample: a kernel over trained instructions with its measured
/// execution time per iteration.
struct Sample {
  /// (instruction index in pool, multiplicity) pairs.
  std::vector<std::pair<size_t, double>> Terms;
  double MeasuredCycles = 0.0;
};

double predictedCycles(const Genome &G, const Sample &S) {
  std::vector<std::pair<PortMask, double>> Demands;
  for (const auto &[Index, Mult] : S.Terms)
    for (PortMask Mask : G[Index])
      Demands.push_back({Mask, Mult});
  return optimalPortCycles(Demands);
}

double fitness(const Genome &G, const std::vector<Sample> &Samples) {
  double Err = 0.0;
  for (const Sample &S : Samples) {
    double Pred = predictedCycles(G, S);
    double Rel = (Pred - S.MeasuredCycles) / S.MeasuredCycles;
    Err += Rel * Rel;
  }
  return Err;
}

PortMask randomMask(Rng &R, unsigned NumPorts, unsigned PreferredCount) {
  unsigned Count = PreferredCount;
  if (Count == 0 || R.chance(0.3))
    Count = 1 + static_cast<unsigned>(R.uniformInt(4)) %
                    std::max(1u, NumPorts);
  Count = std::min(std::max(Count, 1u), NumPorts);
  PortMask Mask;
  while (portCount(Mask) < Count)
    Mask.set(R.uniformInt(NumPorts));
  return Mask;
}

/// Initial genomes are seeded with the solo-IPC heuristic: an instruction
/// with solo IPC k most likely maps to a single µOP over about k ports.
Genome randomGenome(Rng &R, const std::vector<double> &SoloIpc,
                    const PMEvoConfig &Config) {
  Genome G(SoloIpc.size());
  for (size_t I = 0; I < G.size(); ++I) {
    int NumOps;
    unsigned Preferred;
    if (SoloIpc[I] < 0.9) {
      // Sub-1 IPC: seed with round(1/IPC) µOPs on one port (a serialized
      // chain is the only way the port model can express it).
      NumOps = static_cast<int>(std::lround(1.0 / SoloIpc[I]));
      Preferred = 1;
    } else {
      NumOps = R.chance(0.2) ? 2 : 1;
      Preferred = static_cast<unsigned>(
          std::min<double>(Config.NumPorts, std::lround(SoloIpc[I])));
    }
    NumOps = std::max(1, std::min(NumOps, Config.MaxMicroOps));
    for (int U = 0; U < NumOps; ++U)
      G[I].push_back(randomMask(R, Config.NumPorts, Preferred));
  }
  return G;
}

void mutate(Rng &R, Genome &G, const PMEvoConfig &Config) {
  for (auto &MicroOps : G) {
    if (!R.chance(Config.MutationRate))
      continue;
    double Action = R.uniformReal();
    if (Action < 0.6) {
      // Toggle one port bit of one µOP, keeping the set non-empty.
      auto &Mask = MicroOps[R.uniformInt(MicroOps.size())];
      PortMask Next = Mask;
      Next.flip(R.uniformInt(Config.NumPorts));
      if (Next.any())
        Mask = Next;
    } else if (Action < 0.8 &&
               static_cast<int>(MicroOps.size()) < Config.MaxMicroOps) {
      MicroOps.push_back(randomMask(R, Config.NumPorts, 0));
    } else if (MicroOps.size() > 1) {
      MicroOps.erase(MicroOps.begin() +
                     static_cast<long>(R.uniformInt(MicroOps.size())));
    }
  }
}

Genome crossover(Rng &R, const Genome &A, const Genome &B) {
  Genome Child(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Child[I] = R.chance(0.5) ? A[I] : B[I];
  return Child;
}

} // namespace

std::unique_ptr<PMEvoPredictor>
PMEvoPredictor::train(BenchmarkRunner &Runner,
                      const std::vector<InstrId> &Pool,
                      const PMEvoConfig &Config) {
  Rng R(Config.Seed);

  // Trainable subset: benchmarkable instructions, capped (see header).
  std::vector<InstrId> Trained;
  std::vector<double> SoloIpc;
  {
    std::vector<InstrId> Shuffled = Pool;
    R.shuffle(Shuffled);
    for (InstrId Id : Shuffled) {
      if (Config.MaxTrainInstructions != 0 &&
          Trained.size() >= Config.MaxTrainInstructions)
        break;
      double Ipc = Runner.measureIpc(Microkernel::single(Id));
      if (Ipc < 0.05)
        continue;
      Trained.push_back(Id);
      SoloIpc.push_back(Ipc);
    }
  }
  assert(!Trained.empty() && "nothing to train on");

  // Training set: solo kernels and all admissible pairs (PMEvo uses at
  // most two distinct instructions per benchmark).
  std::vector<Sample> Samples;
  for (size_t I = 0; I < Trained.size(); ++I) {
    Microkernel K = Microkernel::single(Trained[I], SoloIpc[I]);
    Sample S;
    S.Terms = {{I, K.multiplicity(Trained[I])}};
    S.MeasuredCycles = K.size() / Runner.measureIpc(K);
    Samples.push_back(std::move(S));
  }
  {
    std::vector<std::pair<size_t, size_t>> Pairs;
    for (size_t I = 0; I < Trained.size(); ++I)
      for (size_t J = I + 1; J < Trained.size(); ++J)
        Pairs.push_back({I, J});
    if (Config.PairSampleLimit != 0 &&
        Pairs.size() > Config.PairSampleLimit) {
      R.shuffle(Pairs);
      Pairs.resize(Config.PairSampleLimit);
    }
    for (const auto &[I, J] : Pairs) {
      Microkernel K =
          makePairKernel(Trained[I], SoloIpc[I], Trained[J], SoloIpc[J]);
      if (!Runner.accepts(K))
        continue;
      Sample S;
      S.Terms = {{I, SoloIpc[I]}, {J, SoloIpc[J]}};
      S.MeasuredCycles = K.size() / Runner.measureIpc(K);
      Samples.push_back(std::move(S));
    }
  }

  // Evolutionary search.
  std::vector<Genome> Population;
  std::vector<double> Fitness;
  for (int P = 0; P < Config.PopulationSize; ++P) {
    Population.push_back(randomGenome(R, SoloIpc, Config));
    Fitness.push_back(fitness(Population.back(), Samples));
  }

  auto Tournament = [&]() -> const Genome & {
    size_t Best = R.uniformInt(Population.size());
    for (int T = 1; T < Config.TournamentSize; ++T) {
      size_t C = R.uniformInt(Population.size());
      if (Fitness[C] < Fitness[Best])
        Best = C;
    }
    return Population[Best];
  };

  for (int Gen = 0; Gen < Config.Generations; ++Gen) {
    // Elitism: keep the two fittest genomes.
    std::vector<size_t> Order(Population.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(),
              [&](size_t A, size_t B) { return Fitness[A] < Fitness[B]; });

    std::vector<Genome> Next;
    Next.push_back(Population[Order[0]]);
    if (Order.size() > 1)
      Next.push_back(Population[Order[1]]);
    while (static_cast<int>(Next.size()) < Config.PopulationSize) {
      Genome Child = crossover(R, Tournament(), Tournament());
      mutate(R, Child, Config);
      Next.push_back(std::move(Child));
    }
    Population = std::move(Next);
    Fitness.resize(Population.size());
    for (size_t P = 0; P < Population.size(); ++P)
      Fitness[P] = fitness(Population[P], Samples);
  }

  size_t Best = 0;
  for (size_t P = 1; P < Population.size(); ++P)
    if (Fitness[P] < Fitness[Best])
      Best = P;

  auto Result = std::unique_ptr<PMEvoPredictor>(new PMEvoPredictor());
  for (size_t I = 0; I < Trained.size(); ++I)
    Result->Inferred[Trained[I]] = Population[Best][I];
  Result->TrainingError = Fitness[Best];
  return Result;
}

std::optional<double> PMEvoPredictor::predictIpc(const Microkernel &K) {
  // Unsupported instructions are treated as consuming nothing (paper
  // Sec. VI-B's handling of PMEvo); decline only if nothing is supported.
  std::vector<std::pair<PortMask, double>> Demands;
  bool AnySupported = false;
  for (const auto &[Id, Mult] : K.terms()) {
    auto It = Inferred.find(Id);
    if (It == Inferred.end())
      continue;
    AnySupported = true;
    for (PortMask Mask : It->second)
      Demands.push_back({Mask, Mult});
  }
  if (!AnySupported)
    return std::nullopt;
  double Cycles = optimalPortCycles(Demands);
  if (Cycles <= 0.0)
    return std::nullopt;
  return K.size() / Cycles;
}

std::unique_ptr<Predictor> PMEvoPredictor::clone() const {
  std::unique_ptr<PMEvoPredictor> Copy(new PMEvoPredictor());
  Copy->Inferred = Inferred;
  Copy->TrainingError = TrainingError;
  return Copy;
}

std::vector<InstrId> PMEvoPredictor::supportedInstructions() const {
  std::vector<InstrId> Ids;
  for (const auto &[Id, MicroOps] : Inferred)
    Ids.push_back(Id);
  return Ids;
}

const std::vector<PortMask> &PMEvoPredictor::microOps(InstrId Id) const {
  static const std::vector<PortMask> Empty;
  auto It = Inferred.find(Id);
  return It == Inferred.end() ? Empty : It->second;
}
