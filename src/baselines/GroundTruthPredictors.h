//===- baselines/GroundTruthPredictors.h - Tool stand-ins ------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-ins for the evaluation's comparison tools, built from the
/// ground-truth machine with each tool's characteristic *model
/// idealisations* (see DESIGN.md substitution table):
///
///  * uops.info-style: the exact port mapping run as a conjunctive dual —
///    ports only: no front-end bound, dividers assumed fully pipelined.
///    The paper observes exactly this class of tool "tend[s] to
///    over-estimate the IPC".
///  * IACA-like: port mapping + front-end + non-pipelined units (closest to
///    native among the port-based tools, as in the paper), but supports
///    only the instructions of the vendor's own ISA extensions era — here:
///    everything (full coverage, like the paper's 100%).
///  * llvm-mca-like: port mapping + front-end, pipelined-divider
///    assumption, and a small unsupported-instruction set (the paper
///    reports 96.8% coverage) — here the "Other"-category instructions.
///
/// All three read the MachineModel directly: they represent tools with
/// manual expertise / hardware counters, which Palmed must match without
/// either.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_BASELINES_GROUNDTRUTHPREDICTORS_H
#define PALMED_BASELINES_GROUNDTRUTHPREDICTORS_H

#include "baselines/Predictor.h"
#include "machine/MachineModel.h"

#include <memory>

namespace palmed {

/// uops.info-style predictor (see file comment).
std::unique_ptr<Predictor> makeUopsInfoPredictor(const MachineModel &Machine);

/// IACA-like predictor (see file comment).
std::unique_ptr<Predictor> makeIacaLikePredictor(const MachineModel &Machine);

/// llvm-mca-like predictor (see file comment).
std::unique_ptr<Predictor>
makeLlvmMcaLikePredictor(const MachineModel &Machine);

} // namespace palmed

#endif // PALMED_BASELINES_GROUNDTRUTHPREDICTORS_H
