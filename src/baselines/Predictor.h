//===- baselines/Predictor.h - Throughput predictor interface --*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface shared by every throughput prediction tool in the
/// evaluation (paper Sec. VI): Palmed's inferred mapping, the
/// ground-truth-based stand-ins for uops.info / IACA / llvm-mca, and PMEvo.
/// A predictor may decline a kernel (unsupported instructions), which the
/// harness reports as lost coverage.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_BASELINES_PREDICTOR_H
#define PALMED_BASELINES_PREDICTOR_H

#include "core/ResourceMapping.h"
#include "isa/Microkernel.h"
#include "predict/CompiledMapping.h"

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace palmed {

/// Abstract throughput predictor.
class Predictor {
public:
  virtual ~Predictor();

  /// Predicted IPC of \p K, or nullopt when the kernel cannot be processed.
  virtual std::optional<double> predictIpc(const Microkernel &K) = 0;

  /// Predicts \p N kernels into \p Out (room for N slots). Contract:
  /// Out[I] must be bit-identical to predictIpc(Kernels[I]) — the batch
  /// form exists so implementations can amortize per-kernel overhead
  /// (SoA batching, compiled mappings), never to change answers. The
  /// default is the literal serial loop; MappingPredictor overrides it
  /// with the predict/ batch engine.
  virtual void predictIpcBatch(const Microkernel *Kernels, size_t N,
                               std::optional<double> *Out);

  /// Convenience vector form of predictIpcBatch.
  std::vector<std::optional<double>>
  predictIpcBatch(const std::vector<Microkernel> &Kernels);

  virtual std::string name() const = 0;

  /// True when predictIpc may be called concurrently from several threads.
  /// Conservative default; purely-functional predictors override it.
  /// palmed::EvalSession consults this to decide between sharing, cloning,
  /// and mutex-guarding a predictor.
  virtual bool isThreadSafe() const { return false; }

  /// Deep copy for per-thread use, or null when cloning is unsupported.
  /// A clone must predict identically to the original.
  virtual std::unique_ptr<Predictor> clone() const { return nullptr; }
};

/// Predicts through a conjunctive ResourceMapping (the paper's closed-form
/// t(K) = max_r sum sigma*rho). Used both for Palmed's inferred mapping and
/// for the dual-of-ground-truth baselines. Instructions in \p Unsupported
/// are treated as unknown: the kernel is declined, reproducing the coverage
/// limitations of the modelled tools.
class MappingPredictor : public Predictor {
public:
  MappingPredictor(std::string Name, ResourceMapping Mapping,
                   std::set<InstrId> Unsupported = {});

  std::optional<double> predictIpc(const Microkernel &K) override;

  /// Batch entry point backed by the predict/ engine: the mapping is
  /// compiled once at construction (with the Unsupported decline set
  /// folded in) and the whole batch streams through it. Bit-identical to
  /// the scalar predictIpc per the engine's determinism contract.
  using Predictor::predictIpcBatch; // Keep the vector convenience visible.
  void predictIpcBatch(const Microkernel *Kernels, size_t N,
                       std::optional<double> *Out) override;

  std::string name() const override { return Name; }

  /// Prediction is a pure function of the immutable mapping.
  bool isThreadSafe() const override { return true; }
  std::unique_ptr<Predictor> clone() const override;

  const ResourceMapping &mapping() const { return Mapping; }

private:
  std::string Name;
  ResourceMapping Mapping;
  std::set<InstrId> Unsupported;
  /// Immutable compiled form backing predictIpcBatch (shares nothing
  /// mutable, so thread safety and clone() semantics are unchanged).
  predict::CompiledMapping Compiled;
};

} // namespace palmed

#endif // PALMED_BASELINES_PREDICTOR_H
