//===- baselines/PMEvo.h - Evolutionary port-mapping inference -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of PMEvo (Ritter & Hack, PLDI 2020), the paper's
/// closest related work and main automated-inference baseline: infer a
/// *disjunctive* port mapping (instruction -> µOPs -> port sets) from
/// runtime measurements only, via an evolutionary algorithm over candidate
/// mappings. Training benchmarks contain at most two distinct instructions,
/// as in the original. Fitness is the squared relative error between the
/// candidate's optimal-schedule cycles and the measured cycles.
///
/// Two deliberate fidelity choices reproduce the paper's findings:
///  * the model class is ports-only (no front-end / non-pipelined
///    resources), so kernels bottlenecked elsewhere are mispredicted;
///  * training covers only a subset of the ISA (the original's mapping was
///    collected from differently-compiled binaries), so block coverage is
///    partial; unsupported instructions are treated as consuming nothing.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_BASELINES_PMEVO_H
#define PALMED_BASELINES_PMEVO_H

#include "baselines/Predictor.h"
#include "sim/BenchmarkRunner.h"

#include <map>
#include <memory>
#include <vector>

namespace palmed {

/// Evolutionary-search configuration.
struct PMEvoConfig {
  /// Number of ports the candidate mappings may use.
  unsigned NumPorts = 8;
  /// Maximum µOPs per instruction in a genome.
  int MaxMicroOps = 8;
  int PopulationSize = 48;
  int Generations = 120;
  int TournamentSize = 3;
  /// Per-instruction mutation probability.
  double MutationRate = 0.25;
  uint64_t Seed = 1;
  /// Cap on the number of instructions trained (coverage limitation; 0 =
  /// train on the whole pool).
  size_t MaxTrainInstructions = 0;
  /// Cap on the number of pairwise benchmarks (the original samples its
  /// benchmark set rather than measuring all pairs; 0 = all pairs).
  size_t PairSampleLimit = 1500;
};

/// Inferred disjunctive mapping + predictor.
class PMEvoPredictor : public Predictor {
public:
  /// Trains on solo and pairwise benchmarks over \p Pool drawn through
  /// \p Runner. Deterministic given the config seed.
  static std::unique_ptr<PMEvoPredictor>
  train(BenchmarkRunner &Runner, const std::vector<InstrId> &Pool,
        const PMEvoConfig &Config = PMEvoConfig());

  std::optional<double> predictIpc(const Microkernel &K) override;
  std::string name() const override { return "pmevo"; }

  /// Prediction only reads the frozen inferred mapping.
  bool isThreadSafe() const override { return true; }
  std::unique_ptr<Predictor> clone() const override;

  /// Final training fitness (sum of squared relative cycle errors).
  double trainingError() const { return TrainingError; }

  /// Instructions the inferred mapping covers.
  std::vector<InstrId> supportedInstructions() const;

  /// Inferred µOP port sets of \p Id (empty if unsupported).
  const std::vector<PortMask> &microOps(InstrId Id) const;

private:
  PMEvoPredictor() = default;

  std::map<InstrId, std::vector<PortMask>> Inferred;
  double TrainingError = 0.0;
};

} // namespace palmed

#endif // PALMED_BASELINES_PMEVO_H
