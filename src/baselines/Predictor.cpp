//===- baselines/Predictor.cpp - Throughput predictor interface -----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/Predictor.h"

using namespace palmed;

Predictor::~Predictor() = default;

MappingPredictor::MappingPredictor(std::string Name, ResourceMapping Mapping,
                                   std::set<InstrId> Unsupported)
    : Name(std::move(Name)), Mapping(std::move(Mapping)),
      Unsupported(std::move(Unsupported)) {}

std::optional<double> MappingPredictor::predictIpc(const Microkernel &K) {
  for (const auto &[Id, Mult] : K.terms())
    if (Unsupported.count(Id))
      return std::nullopt;
  return Mapping.predictIpc(K);
}

std::unique_ptr<Predictor> MappingPredictor::clone() const {
  return std::make_unique<MappingPredictor>(*this);
}
