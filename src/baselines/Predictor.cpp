//===- baselines/Predictor.cpp - Throughput predictor interface -----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/Predictor.h"

#include "predict/BatchEngine.h"

using namespace palmed;

Predictor::~Predictor() = default;

void Predictor::predictIpcBatch(const Microkernel *Kernels, size_t N,
                                std::optional<double> *Out) {
  // The documented default: the literal serial loop, so any subclass that
  // does not opt into batching keeps byte-for-byte scalar behavior.
  for (size_t I = 0; I < N; ++I)
    Out[I] = predictIpc(Kernels[I]);
}

std::vector<std::optional<double>>
Predictor::predictIpcBatch(const std::vector<Microkernel> &Kernels) {
  std::vector<std::optional<double>> Out(Kernels.size());
  predictIpcBatch(Kernels.data(), Kernels.size(), Out.data());
  return Out;
}

MappingPredictor::MappingPredictor(std::string Name, ResourceMapping Mapping,
                                   std::set<InstrId> Unsupported)
    : Name(std::move(Name)), Mapping(std::move(Mapping)),
      Unsupported(std::move(Unsupported)),
      Compiled(predict::CompiledMapping::compile(this->Mapping,
                                                 this->Unsupported)) {}

std::optional<double> MappingPredictor::predictIpc(const Microkernel &K) {
  for (const auto &[Id, Mult] : K.terms())
    if (Unsupported.count(Id))
      return std::nullopt;
  return Mapping.predictIpc(K);
}

void MappingPredictor::predictIpcBatch(const Microkernel *Kernels, size_t N,
                                       std::optional<double> *Out) {
  predict::KernelBatch B;
  B.reserve(N, N * 4);
  for (size_t I = 0; I < N; ++I)
    B.add(Kernels[I]);
  predict::predictIpcBatch(Compiled, B, Out);
}

std::unique_ptr<Predictor> MappingPredictor::clone() const {
  return std::make_unique<MappingPredictor>(*this);
}
