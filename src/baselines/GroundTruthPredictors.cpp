//===- baselines/GroundTruthPredictors.cpp - Tool stand-ins ---------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "baselines/GroundTruthPredictors.h"

#include "core/DualConstruction.h"

using namespace palmed;

std::unique_ptr<Predictor>
palmed::makeUopsInfoPredictor(const MachineModel &Machine) {
  DualOptions Options;
  Options.IncludeFrontEnd = false;
  Options.IncludeOccupancy = false;
  return std::make_unique<MappingPredictor>(
      "uops.info", buildDualMapping(Machine, Options));
}

std::unique_ptr<Predictor>
palmed::makeIacaLikePredictor(const MachineModel &Machine) {
  DualOptions Options;
  Options.IncludeFrontEnd = true;
  Options.IncludeOccupancy = true;
  return std::make_unique<MappingPredictor>(
      "iaca", buildDualMapping(Machine, Options));
}

std::unique_ptr<Predictor>
palmed::makeLlvmMcaLikePredictor(const MachineModel &Machine) {
  DualOptions Options;
  Options.IncludeFrontEnd = true;
  Options.IncludeOccupancy = false;
  std::set<InstrId> Unsupported;
  for (InstrId Id = 0; Id < Machine.numInstructions(); ++Id)
    if (Machine.isa().info(Id).Category == InstrCategory::Other)
      Unsupported.insert(Id);
  return std::make_unique<MappingPredictor>(
      "llvm-mca", buildDualMapping(Machine, Options),
      std::move(Unsupported));
}
