//===- sim/BenchmarkRunner.cpp - Measurement front door --------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "sim/BenchmarkRunner.h"

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace palmed;

BenchmarkRunner::BenchmarkRunner(const MachineModel &Machine,
                                 ThroughputOracle &Backend,
                                 BenchmarkConfig Config)
    : Machine(Machine), Backend(Backend), Config(Config) {}

bool BenchmarkRunner::accepts(const Microkernel &K) const {
  return !Config.ForbidMixedExtensions || !Machine.kernelMixesExtensions(K);
}

namespace {

/// Order-independent hash of a rounded kernel, used to pick the cache
/// shard and to seed per-kernel measurement noise deterministically.
uint64_t kernelHash(const Microkernel &K) {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ULL;
  };
  for (const auto &[Id, Mult] : K.terms()) {
    Mix(Id);
    Mix(static_cast<uint64_t>(std::llround(Mult * 4096.0)));
  }
  return H;
}

} // namespace

BenchmarkRunner::Shard &BenchmarkRunner::shardFor(const Microkernel &Rounded) {
  return Shards[kernelHash(Rounded) % NumShards];
}

size_t BenchmarkRunner::numDistinctBenchmarks() const {
  size_t Total = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Total += S.Done.size();
  }
  return Total;
}

double BenchmarkRunner::measureIpc(const Microkernel &K) {
  assert(!K.empty() && "cannot benchmark an empty kernel");
  assert(accepts(K) &&
         "benchmark mixes vector extensions; generator refuses it");

  Microkernel Rounded =
      K.isIntegral() ? K : K.roundedToIntegers(Config.MaxDenominator);

  Shard &S = shardFor(Rounded);
  {
    std::unique_lock<std::mutex> Lock(S.M);
    for (;;) {
      auto It = S.Done.find(Rounded);
      if (It != S.Done.end())
        return It->second;
      if (!S.InFlight.count(Rounded))
        break;
      // Another worker is measuring this very kernel: wait and replay its
      // result instead of burning a duplicate benchmark.
      S.Cv.wait(Lock);
    }
    S.InFlight.insert(Rounded);
  }

  double Ipc;
  try {
    if (Backend.isThreadSafe()) {
      Ipc = Backend.measureIpc(Rounded);
    } else {
      std::lock_guard<std::mutex> Lock(BackendMutex);
      Ipc = Backend.measureIpc(Rounded);
    }
  } catch (...) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.InFlight.erase(Rounded);
    S.Cv.notify_all();
    throw;
  }
  if (Config.NoiseStdDev > 0.0) {
    Rng Noise(kernelHash(Rounded) ^ Config.NoiseSeed);
    double Factor = 1.0 + Config.NoiseStdDev * Noise.normal();
    // Clamp to a sane band so pathological draws cannot flip signs.
    Factor = std::min(std::max(Factor, 0.5), 1.5);
    Ipc *= Factor;
  }

  std::lock_guard<std::mutex> Lock(S.M);
  S.InFlight.erase(Rounded);
  S.Done.emplace(std::move(Rounded), Ipc);
  S.Cv.notify_all();
  return Ipc;
}
