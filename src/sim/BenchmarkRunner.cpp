//===- sim/BenchmarkRunner.cpp - Measurement front door --------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "sim/BenchmarkRunner.h"

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace palmed;

BenchmarkRunner::BenchmarkRunner(const MachineModel &Machine,
                                 ThroughputOracle &Backend,
                                 BenchmarkConfig Config)
    : Machine(Machine), Backend(Backend), Config(Config) {}

bool BenchmarkRunner::accepts(const Microkernel &K) const {
  return !Config.ForbidMixedExtensions || !Machine.kernelMixesExtensions(K);
}

namespace {

/// Order-independent hash of a rounded kernel, used to seed per-kernel
/// measurement noise deterministically.
uint64_t kernelHash(const Microkernel &K) {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ULL;
  };
  for (const auto &[Id, Mult] : K.terms()) {
    Mix(Id);
    Mix(static_cast<uint64_t>(std::llround(Mult * 4096.0)));
  }
  return H;
}

} // namespace

double BenchmarkRunner::measureIpc(const Microkernel &K) {
  assert(!K.empty() && "cannot benchmark an empty kernel");
  assert(accepts(K) &&
         "benchmark mixes vector extensions; generator refuses it");

  Microkernel Rounded =
      K.isIntegral() ? K : K.roundedToIntegers(Config.MaxDenominator);

  // Whole-call lock: measurement is deterministic and the backend may not
  // be reentrant, so serializing here is both safe and result-preserving.
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Cache.find(Rounded);
  if (It != Cache.end())
    return It->second;

  double Ipc = Backend.measureIpc(Rounded);
  if (Config.NoiseStdDev > 0.0) {
    Rng Noise(kernelHash(Rounded) ^ Config.NoiseSeed);
    double Factor = 1.0 + Config.NoiseStdDev * Noise.normal();
    // Clamp to a sane band so pathological draws cannot flip signs.
    Factor = std::min(std::max(Factor, 0.5), 1.5);
    Ipc *= Factor;
  }
  Cache.emplace(std::move(Rounded), Ipc);
  return Ipc;
}
