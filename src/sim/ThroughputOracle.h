//===- sim/ThroughputOracle.h - Kernel throughput interface ----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single interface Palmed has to "hardware": measure the steady-state
/// throughput (IPC) of a dependency-free microkernel. On the paper's real
/// machines this is a PAPI cycle counter around an unrolled loop; here it
/// is implemented by the analytic optimal scheduler and by the cycle-level
/// event simulator.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SIM_THROUGHPUTORACLE_H
#define PALMED_SIM_THROUGHPUTORACLE_H

#include "isa/Microkernel.h"

#include <string>

namespace palmed {

/// Abstract throughput measurement backend.
class ThroughputOracle {
public:
  virtual ~ThroughputOracle();

  /// Steady-state instructions-per-cycle of \p K (paper Def. IV.3).
  virtual double measureIpc(const Microkernel &K) = 0;

  /// Cycles per loop iteration t(K) = |K| / IPC(K).
  double measureCycles(const Microkernel &K) {
    return K.size() / measureIpc(K);
  }

  virtual std::string name() const = 0;

  /// True when measureIpc may be called concurrently from several threads.
  /// Conservative default; stateless oracles override it. Consumers (e.g.
  /// palmed::EvalSession) serialize access to non-thread-safe oracles.
  virtual bool isThreadSafe() const { return false; }
};

} // namespace palmed

#endif // PALMED_SIM_THROUGHPUTORACLE_H
