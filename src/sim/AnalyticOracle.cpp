//===- sim/AnalyticOracle.cpp - Optimal steady-state scheduler ------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "sim/AnalyticOracle.h"

#include "lp/Simplex.h"
#include "support/Executor.h"

#include <cassert>
#include <cmath>

using namespace palmed;

ThroughputOracle::~ThroughputOracle() = default;

double AnalyticOracle::portCycles(const Microkernel &K) const {
  assert(!K.empty() && "cannot schedule an empty kernel");

  // Minimize t subject to: each µOP's demand is fully routed to admissible
  // ports, and each port's weighted load is at most t.
  lp::Model M;
  lp::VarId T = M.addVar("t", 0.0, lp::Infinity);

  unsigned NumPorts = Machine.numPorts();
  std::vector<lp::LinearExpr> PortLoad(NumPorts);

  for (const auto &[Id, Mult] : K.terms()) {
    const InstrExec &E = Machine.exec(Id);
    for (size_t U = 0; U < E.MicroOps.size(); ++U) {
      const MicroOpDesc &Op = E.MicroOps[U];
      lp::LinearExpr Routed;
      for (unsigned P = 0; P < NumPorts; ++P) {
        if (!Op.Ports.test(P))
          continue;
        lp::VarId X = M.addVar("x", 0.0, lp::Infinity);
        Routed.add(X, 1.0);
        PortLoad[P].add(X, Op.Occupancy);
      }
      M.addConstraint(std::move(Routed), lp::Sense::EQ, Mult);
    }
  }
  for (unsigned P = 0; P < NumPorts; ++P) {
    lp::LinearExpr C = PortLoad[P];
    C.add(T, -1.0);
    M.addConstraint(std::move(C), lp::Sense::LE, 0.0);
  }
  lp::LinearExpr Obj;
  Obj.add(T, 1.0);
  M.setObjective(std::move(Obj), lp::Goal::Minimize);

  // Dantzig pricing keeps the pivot sequence (and so the exact measurement
  // bits) stable across solver generations: oracle IPCs feed integer
  // rounding of kernel multiplicities, where a last-ulp difference on a
  // .5 boundary changes the generated benchmark set.
  lp::SimplexOptions Options;
  Options.Pricing = lp::LpPricing::Dantzig;
  lp::Solution Sol = lp::solveLp(M, {}, Options);
  assert(Sol.Status == lp::SolveStatus::Optimal &&
         "port scheduling LP must be feasible and bounded");
  return Sol.value(T);
}

std::vector<double>
AnalyticOracle::measureIpcBatch(const std::vector<Microkernel> &Kernels,
                                Executor *Exec) {
  std::vector<double> Ipcs(Kernels.size());
  auto Work = [&](size_t I, unsigned) { Ipcs[I] = measureIpc(Kernels[I]); };
  if (Exec && Exec->numWorkers() > 1 && Kernels.size() > 1)
    Exec->parallelFor(Kernels.size(), Work);
  else
    for (size_t I = 0; I < Kernels.size(); ++I)
      Work(I, 0);
  return Ipcs;
}

double AnalyticOracle::measureIpc(const Microkernel &K) {
  double Cycles = portCycles(K);
  if (unsigned W = Machine.decodeWidth())
    Cycles = std::max(Cycles, K.size() / static_cast<double>(W));
  Cycles *= Machine.mixFactor(K);
  assert(Cycles > 0.0 && "zero execution time");
  return K.size() / Cycles;
}
