//===- sim/BenchmarkRunner.h - Measurement front door -----------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement front door used by every mapping algorithm: wraps a
/// backend oracle with (a) multiplicity rounding within the paper's 5%
/// benchmark-coefficient tolerance (Sec. VI-A), (b) deterministic
/// multiplicative measurement noise, (c) a concurrent result cache, and
/// (d) the benchmark counter reported in Table II. Optionally rejects
/// kernels mixing SSE and AVX, mirroring the paper's benchmark generator
/// restriction.
///
/// Concurrency: the cache is sharded by a canonical kernel hash, so
/// workers measuring different kernels rarely contend. A kernel being
/// measured is marked in-flight in its shard; a second worker asking for
/// the same kernel blocks until the first finishes and then replays the
/// cached value, so every distinct kernel hits the backend exactly once
/// regardless of the worker count. Measurement (rounding, backend, noise)
/// is a deterministic function of the kernel, which makes every cached
/// value — and the distinct-benchmark counter — independent of
/// measurement order.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SIM_BENCHMARKRUNNER_H
#define PALMED_SIM_BENCHMARKRUNNER_H

#include "machine/MachineModel.h"
#include "sim/ThroughputOracle.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>

namespace palmed {

/// Runner configuration.
struct BenchmarkConfig {
  /// Relative standard deviation of the multiplicative measurement noise
  /// (0 = exact measurements).
  double NoiseStdDev = 0.0;
  /// Seed for the per-kernel deterministic noise.
  uint64_t NoiseSeed = 0x9a1fed;
  /// Maximum denominator when rounding fractional multiplicities; bounds
  /// the per-term relative perturbation to roughly 1/MaxDenominator.
  int64_t MaxDenominator = 20;
  /// Reject kernels mixing SSE and AVX instructions (paper Sec. VI-A).
  bool ForbidMixedExtensions = true;
};

/// Caching, noise-injecting measurement wrapper.
class BenchmarkRunner : public ThroughputOracle {
public:
  /// \p Machine and \p Backend must outlive the runner.
  BenchmarkRunner(const MachineModel &Machine, ThroughputOracle &Backend,
                  BenchmarkConfig Config = BenchmarkConfig());

  /// Measures (or returns the cached measurement of) \p K. The kernel is
  /// first rounded to integral multiplicities. Asserts if the kernel mixes
  /// extensions while ForbidMixedExtensions is set.
  double measureIpc(const Microkernel &K) override;

  /// True if the runner would accept \p K (extension-mixing policy).
  bool accepts(const Microkernel &K) const;

  std::string name() const override { return "runner:" + Backend.name(); }

  /// The cache is sharded and in-flight measurements are deduplicated, so
  /// concurrent measurement is safe regardless of the backend (a
  /// non-thread-safe backend is additionally serialized behind one mutex).
  bool isThreadSafe() const override { return true; }

  /// Number of distinct microbenchmarks executed so far (Table II's
  /// "Gen. microbenchmarks").
  size_t numDistinctBenchmarks() const;

  const MachineModel &machine() const { return Machine; }

private:
  /// One cache shard: finished measurements plus the set of kernels some
  /// worker is currently measuring. Waiters sleep on Cv.
  struct Shard {
    mutable std::mutex M;
    std::condition_variable Cv;
    std::map<Microkernel, double> Done;
    std::set<Microkernel> InFlight;
  };
  static constexpr size_t NumShards = 16;

  Shard &shardFor(const Microkernel &Rounded);

  const MachineModel &Machine;
  ThroughputOracle &Backend;
  BenchmarkConfig Config;
  Shard Shards[NumShards];
  /// Serializes backend calls when the backend is not reentrant.
  std::mutex BackendMutex;
};

} // namespace palmed

#endif // PALMED_SIM_BENCHMARKRUNNER_H
