//===- sim/BenchmarkRunner.h - Measurement front door -----------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement front door used by every mapping algorithm: wraps a
/// backend oracle with (a) multiplicity rounding within the paper's 5%
/// benchmark-coefficient tolerance (Sec. VI-A), (b) deterministic
/// multiplicative measurement noise, (c) a result cache, and (d) the
/// benchmark counter reported in Table II. Optionally rejects kernels
/// mixing SSE and AVX, mirroring the paper's benchmark generator
/// restriction.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SIM_BENCHMARKRUNNER_H
#define PALMED_SIM_BENCHMARKRUNNER_H

#include "machine/MachineModel.h"
#include "sim/ThroughputOracle.h"

#include <map>
#include <memory>
#include <mutex>

namespace palmed {

/// Runner configuration.
struct BenchmarkConfig {
  /// Relative standard deviation of the multiplicative measurement noise
  /// (0 = exact measurements).
  double NoiseStdDev = 0.0;
  /// Seed for the per-kernel deterministic noise.
  uint64_t NoiseSeed = 0x9a1fed;
  /// Maximum denominator when rounding fractional multiplicities; bounds
  /// the per-term relative perturbation to roughly 1/MaxDenominator.
  int64_t MaxDenominator = 20;
  /// Reject kernels mixing SSE and AVX instructions (paper Sec. VI-A).
  bool ForbidMixedExtensions = true;
};

/// Caching, noise-injecting measurement wrapper.
class BenchmarkRunner : public ThroughputOracle {
public:
  /// \p Machine and \p Backend must outlive the runner.
  BenchmarkRunner(const MachineModel &Machine, ThroughputOracle &Backend,
                  BenchmarkConfig Config = BenchmarkConfig());

  /// Measures (or returns the cached measurement of) \p K. The kernel is
  /// first rounded to integral multiplicities. Asserts if the kernel mixes
  /// extensions while ForbidMixedExtensions is set.
  double measureIpc(const Microkernel &K) override;

  /// True if the runner would accept \p K (extension-mixing policy).
  bool accepts(const Microkernel &K) const;

  std::string name() const override { return "runner:" + Backend.name(); }

  /// The cache (and the backend call) are guarded by an internal mutex,
  /// so concurrent measurement is safe regardless of the backend.
  bool isThreadSafe() const override { return true; }

  /// Number of distinct microbenchmarks executed so far (Table II's
  /// "Gen. microbenchmarks").
  size_t numDistinctBenchmarks() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Cache.size();
  }

  const MachineModel &machine() const { return Machine; }

private:
  const MachineModel &Machine;
  ThroughputOracle &Backend;
  BenchmarkConfig Config;
  mutable std::mutex Mutex;
  std::map<Microkernel, double> Cache;
};

} // namespace palmed

#endif // PALMED_SIM_BENCHMARKRUNNER_H
