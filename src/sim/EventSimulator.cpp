//===- sim/EventSimulator.cpp - Cycle-level issue simulator ---------------===//
//
// Part of the PALMED reproduction.
//
// Steady-state extraction runs the simulation twice (warmup-only and
// warmup+measured iterations) and differences the cycle counts, the same
// technique real microbenchmark harnesses use to cancel ramp-up effects.
//
//===----------------------------------------------------------------------===//

#include "sim/EventSimulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <vector>

using namespace palmed;

namespace {

/// A µOP instance waiting to issue.
struct PendingOp {
  PortMask Ports;
  double Occupancy = 1.0;
  unsigned Flexibility = 0; ///< Number of admissible ports (cached).
};

/// Flattens one iteration of \p K into an interleaved instruction stream,
/// mimicking how the benchmark generator interleaves independent instances.
std::vector<InstrId> flattenIteration(const Microkernel &K) {
  std::vector<std::pair<InstrId, int64_t>> Remaining;
  for (const auto &[Id, Mult] : K.terms())
    Remaining.emplace_back(Id, static_cast<int64_t>(std::llround(Mult)));
  std::vector<InstrId> Stream;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (auto &[Id, Count] : Remaining) {
      if (Count > 0) {
        Stream.push_back(Id);
        --Count;
        Progress = true;
      }
    }
  }
  return Stream;
}

} // namespace

namespace palmed {
namespace detail {

/// Simulates \p NumIters iterations of \p Stream on \p Machine and returns
/// the cycle count until every µOP has issued.
long simulateIssueCycles(const MachineModel &Machine,
                         const std::vector<InstrId> &Stream, int NumIters,
                         const EventSimConfig &Config) {
  const unsigned NumPorts = Machine.numPorts();
  std::vector<double> PortBusyUntil(NumPorts, 0.0);
  std::deque<PendingOp> Pool;

  const size_t TotalInstrs = Stream.size() * static_cast<size_t>(NumIters);
  size_t NextInstr = 0;
  long Cycle = 0;

  while (NextInstr < TotalInstrs || !Pool.empty()) {
    // Decode: up to W instructions per cycle (unlimited if W == 0),
    // bounded by the scheduler window.
    unsigned Budget = Machine.decodeWidth() ? Machine.decodeWidth()
                                            : static_cast<unsigned>(-1);
    while (NextInstr < TotalInstrs && Budget > 0 &&
           (Config.SchedulerWindow == 0 ||
            Pool.size() < Config.SchedulerWindow)) {
      InstrId Id = Stream[NextInstr % Stream.size()];
      for (const MicroOpDesc &Op : Machine.exec(Id).MicroOps) {
        PendingOp P;
        P.Ports = Op.Ports;
        P.Occupancy = Op.Occupancy;
        P.Flexibility = portCount(Op.Ports);
        Pool.push_back(P);
      }
      ++NextInstr;
      --Budget;
    }

    // Issue: serve least-flexible µOPs first so single-port µOPs are not
    // starved by flexible ones; each picks its least-loaded free port.
    std::stable_sort(Pool.begin(), Pool.end(),
                     [](const PendingOp &A, const PendingOp &B) {
                       return A.Flexibility < B.Flexibility;
                     });
    for (auto It = Pool.begin(); It != Pool.end();) {
      unsigned BestPort = NumPorts;
      for (unsigned P = 0; P < NumPorts; ++P) {
        if (!It->Ports.test(P))
          continue;
        if (PortBusyUntil[P] > static_cast<double>(Cycle))
          continue;
        if (BestPort == NumPorts ||
            PortBusyUntil[P] < PortBusyUntil[BestPort])
          BestPort = P;
      }
      if (BestPort == NumPorts) {
        ++It;
        continue;
      }
      PortBusyUntil[BestPort] = static_cast<double>(Cycle) + It->Occupancy;
      It = Pool.erase(It);
    }

    ++Cycle;
    assert(Cycle < static_cast<long>(TotalInstrs) * 64 + 4096 &&
           "simulator failed to make progress");
  }
  return Cycle;
}

} // namespace detail
} // namespace palmed

double EventSimulator::measureIpc(const Microkernel &K) {
  assert(!K.empty() && "cannot simulate an empty kernel");
  Microkernel Rounded = K.isIntegral() ? K : K.roundedToIntegers();
  std::vector<InstrId> Stream = flattenIteration(Rounded);
  assert(!Stream.empty() && "empty instruction stream");

  const int Warmup = Config.WarmupIterations;
  const int Total = Warmup + Config.Iterations;
  long WarmCycles =
      Warmup > 0
          ? detail::simulateIssueCycles(Machine, Stream, Warmup, Config)
          : 0;
  long TotalCycles =
      detail::simulateIssueCycles(Machine, Stream, Total, Config);
  double MeasuredCycles = static_cast<double>(TotalCycles - WarmCycles);
  assert(MeasuredCycles > 0.0 && "no measured cycles");

  double MeasuredInstrs =
      static_cast<double>(Stream.size()) * Config.Iterations;
  return MeasuredInstrs / (MeasuredCycles * Machine.mixFactor(K));
}
