//===- sim/AnalyticOracle.h - Optimal steady-state scheduler ---*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact steady-state throughput of a microkernel on the ground-truth
/// disjunctive machine, assuming an optimal µOP-to-port assignment — the
/// paper's standing assumption ("we assume the CPU scheduler is able to
/// optimally schedule these simple kernels", Sec. III-A). Computed as a
/// small LP: fractionally route each µOP's demand to its admissible ports,
/// minimizing the makespan, then apply the front-end bound |K|/W and the
/// extension-mixing penalty.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SIM_ANALYTICORACLE_H
#define PALMED_SIM_ANALYTICORACLE_H

#include "machine/MachineModel.h"
#include "sim/ThroughputOracle.h"

#include <vector>

namespace palmed {

class Executor;

/// LP-based optimal-schedule oracle.
class AnalyticOracle : public ThroughputOracle {
public:
  /// \p Machine must outlive the oracle.
  explicit AnalyticOracle(const MachineModel &Machine) : Machine(Machine) {}

  double measureIpc(const Microkernel &K) override;

  /// Batch entry point: one LP per kernel, fanned over \p Exec when given
  /// (the oracle is stateless, so the kernels solve independently).
  /// Results are in input order and bit-identical to serial measureIpc
  /// calls. Pass Exec = nullptr (or a one-worker executor) to run inline.
  std::vector<double> measureIpcBatch(const std::vector<Microkernel> &Kernels,
                                      Executor *Exec = nullptr);

  std::string name() const override { return "analytic"; }

  /// Stateless per call: safe to share across threads.
  bool isThreadSafe() const override { return true; }

  /// Port-contention-only makespan of one iteration (no front-end, no
  /// mixing penalty); exposed for the dual-equivalence tests.
  double portCycles(const Microkernel &K) const;

private:
  const MachineModel &Machine;
};

} // namespace palmed

#endif // PALMED_SIM_ANALYTICORACLE_H
