//===- sim/EventSimulator.h - Cycle-level issue simulator ------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-level out-of-order issue simulator over the ground-truth machine:
/// instructions are decoded W per cycle, their µOPs wait in a reservation
/// pool, and each cycle free ports greedily pick waiting µOPs
/// (least-flexible-first). It validates the analytic oracle's optimality
/// assumption — the greedy schedule must land within a few percent of the
/// LP optimum for dependency-free kernels — and serves as an alternative
/// measurement backend with realistic scheduling imperfection.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SIM_EVENTSIMULATOR_H
#define PALMED_SIM_EVENTSIMULATOR_H

#include "machine/MachineModel.h"
#include "sim/ThroughputOracle.h"

namespace palmed {

/// Configuration of the event simulator.
struct EventSimConfig {
  /// Number of measured kernel iterations.
  int Iterations = 200;
  /// Iterations executed before measurement starts (pipeline fill).
  int WarmupIterations = 20;
  /// Size of the reservation pool (pending µOPs); models a scheduler
  /// window. Zero means unlimited.
  unsigned SchedulerWindow = 64;
};

/// Greedy cycle-level simulator.
class EventSimulator : public ThroughputOracle {
public:
  explicit EventSimulator(const MachineModel &Machine,
                          EventSimConfig Config = EventSimConfig())
      : Machine(Machine), Config(Config) {}

  /// Measures IPC by simulation. Fractional multiplicities are first
  /// rounded to integers (Microkernel::roundedToIntegers).
  double measureIpc(const Microkernel &K) override;

  std::string name() const override { return "event-sim"; }

  /// Stateless per call: safe to share across threads.
  bool isThreadSafe() const override { return true; }

private:
  const MachineModel &Machine;
  EventSimConfig Config;
};

} // namespace palmed

#endif // PALMED_SIM_EVENTSIMULATOR_H
