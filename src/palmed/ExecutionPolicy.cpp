//===- palmed/ExecutionPolicy.cpp - Threading knob ------------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "palmed/ExecutionPolicy.h"

#include "support/Executor.h"

using namespace palmed;

ExecutionPolicy ExecutionPolicy::parallel(unsigned NumThreads) {
  return ExecutionPolicy{Executor::resolveThreadCount(NumThreads)};
}
