//===- palmed/Pipeline.cpp - Staged Palmed pipeline -----------------------===//
//
// Part of the PALMED reproduction.
//
// The end-to-end pipeline of paper Fig. 3, split into the three explicit
// stages of the public API:
//
//   1. basic-instruction selection (Algo 1, Selection.h);
//   2. core mapping (Algo 2): seed benchmarks {a, aabb, aMb}, iterated
//      shape inference with benchmark enrichment (LP1, ShapeSolver.h),
//      edge weights (LP2, BwpSolver.h), and saturating-kernel selection;
//   3. complete mapping (Algo 5): every remaining benchmarkable
//      instruction is mapped against the frozen core via per-resource
//      saturation benchmarks Ksat(i, r) = i^IPC(i) sat[r]^(L * IPC(sat[r])).
//
// The only interaction with the target machine is through a
// BenchmarkRunner; no performance counters are used, mirroring the
// paper's core claim.
//
//===----------------------------------------------------------------------===//

#include "palmed/Pipeline.h"

#include "lp/Simplex.h"
#include "support/Executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>

using namespace palmed;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Measures \p K after integer rounding; returns the rounded kernel and its
/// IPC so LP coefficients match what was actually benchmarked.
std::pair<Microkernel, double> measureRounded(BenchmarkRunner &Runner,
                                              const Microkernel &K) {
  Microkernel Rounded = K.isIntegral() ? K : K.roundedToIntegers();
  double Ipc = Runner.measureIpc(Rounded);
  return {std::move(Rounded), Ipc};
}

/// Splits \p Members into kernels acceptable by the runner: if the member
/// set mixes SSE and AVX, one kernel drops the AVX part and one drops the
/// SSE part; otherwise a single kernel results. Multiplicities are the
/// members' solo IPCs. Kernels with fewer than two instructions are
/// dropped (solo kernels are seeded separately).
std::vector<Microkernel>
makeEnrichmentKernels(const std::vector<InstrId> &Members,
                      const std::map<InstrId, double> &SoloIpc,
                      const MachineModel &Machine) {
  const InstructionSet &Isa = Machine.isa();
  auto Build = [&](ExtClass Excluded) {
    Microkernel K;
    for (InstrId Id : Members)
      if (Isa.info(Id).Ext != Excluded)
        K.add(Id, SoloIpc.at(Id));
    return K;
  };
  Microkernel Full;
  for (InstrId Id : Members)
    Full.add(Id, SoloIpc.at(Id));

  std::vector<Microkernel> Out;
  if (!Machine.kernelMixesExtensions(Full)) {
    if (Full.numDistinct() >= 2)
      Out.push_back(std::move(Full));
    return Out;
  }
  Microkernel NoAvx = Build(ExtClass::Avx);
  Microkernel NoSse = Build(ExtClass::Sse);
  if (NoAvx.numDistinct() >= 2)
    Out.push_back(std::move(NoAvx));
  if (NoSse.numDistinct() >= 2)
    Out.push_back(std::move(NoSse));
  return Out;
}

} // namespace

const char *palmed::pipelineStageName(PipelineStage Stage) {
  switch (Stage) {
  case PipelineStage::SelectBasics:
    return "select-basics";
  case PipelineStage::SolveCoreMapping:
    return "solve-core-mapping";
  case PipelineStage::CompleteMapping:
    return "complete-mapping";
  }
  return "?";
}

PipelineObserver::~PipelineObserver() = default;

CancelledError::CancelledError()
    : std::runtime_error("palmed pipeline cancelled") {}

//===----------------------------------------------------------------------===//
// Pipeline implementation.
//===----------------------------------------------------------------------===//

struct Pipeline::Impl {
  BenchmarkRunner &Runner;
  const MachineModel &Machine;
  PalmedConfig Config;

  /// Shared worker pool for the stage-1 and stage-3 fan-outs (width 1
  /// under the Serial policy, in which case everything runs inline).
  Executor Exec;

  PipelineObserver *Observer = nullptr;
  CancellationToken *Cancel = nullptr;

  /// Number of stages completed so far (0..3).
  int StagesDone = 0;

  PalmedResult Result;
  CoreMappingResult Core;

  // Cross-stage working state (stage 2 builds it, stage 3 consumes it).
  std::map<InstrId, size_t> IndexOf;
  std::vector<double> BasicIpc;
  std::set<Microkernel> SeenKernels;
  std::vector<KernelObservation> Observations;
  std::vector<WeightKernel> CoreKernels;
  CoreWeights Weights;
  MappingShape Shape;
  std::vector<Microkernel> Sat;
  std::vector<bool> Genuine;

  /// Cross-solve memo for the stage-2 LP2 fits: the shape-refinement loop
  /// re-solves largely identical per-resource blocks every iteration, and
  /// the final refits repeat most of the last loop iteration's blocks.
  /// Stage 3 deliberately does NOT share this cache: its LPAUX solves run
  /// inside a parallelFor, and a shared memo would make the solve/pivot
  /// stats depend on scheduling, breaking the Serial==Parallel stats
  /// contract.
  BwpSubproblemCache CoreLpCache;

  /// LP2 solve options for the stage-2 call sites (cache, decomposition,
  /// model reuse, fan-out over the pipeline's executor).
  BwpSolveOptions lp2Options(BwpSolveStats *Stats = nullptr) {
    BwpSolveOptions O;
    O.Exec = &Exec;
    O.Cache = Config.Lp2Cache ? &CoreLpCache : nullptr;
    O.ReuseModels = Config.Lp2ReuseModels;
    O.Decompose = Config.Lp2Decompose;
    O.Stats = Stats;
    return O;
  }

  // NumThreads <= 1 (including a raw 0) is serial, matching EvalSession;
  // the "0 = auto" convention is resolved by ExecutionPolicy::parallel()
  // before a policy ever reaches the pipeline.
  Impl(BenchmarkRunner &Runner, PalmedConfig Config)
      : Runner(Runner), Machine(Runner.machine()), Config(Config),
        Exec(std::max(1u, Config.Execution.NumThreads)),
        Result{ResourceMapping(Runner.machine().numInstructions()),
               SelectionResult(),
               MappingShape(),
               {},
               PalmedStats()} {
    Result.Stats.NumThreads = Exec.numWorkers();
  }

  void checkCancelled() const {
    if (Cancel && Cancel->cancelRequested())
      throw CancelledError();
  }

  void requireStage(PipelineStage Stage) const {
    int Want = static_cast<int>(Stage);
    if (StagesDone == Want)
      return;
    std::string Msg = std::string("palmed::Pipeline: stage '") +
                      pipelineStageName(Stage) + "' cannot run now (" +
                      (StagesDone > Want ? "already done"
                                         : "earlier stages pending") +
                      ")";
    throw std::logic_error(Msg);
  }

  void beginStage(PipelineStage Stage) {
    requireStage(Stage);
    checkCancelled();
    if (Observer)
      Observer->onStageBegin(Stage);
  }

  void endStage(PipelineStage Stage) {
    ++StagesDone;
    // Keep the benchmark counter live for stage-end observers (stage 3
    // re-derives the same value for the final stats).
    Result.Stats.NumBenchmarks = Runner.numDistinctBenchmarks();
    if (Observer)
      Observer->onStageEnd(Stage, Result.Stats);
  }

  /// Builds the per-resource saturation benchmark Ksat(i, r).
  Microkernel makeKsat(InstrId Inst, double InstIpc, const Microkernel &S) {
    double SatIpc = Runner.measureIpc(S);
    Microkernel K = S.scaled(Config.LSat * SatIpc);
    K.add(Inst, InstIpc);
    return K;
  }

  void selectBasics();
  void solveCoreMapping();
  void completeMapping();
};

// ---- Stage 1: basic instruction selection (Algo 1). ----
void Pipeline::Impl::selectBasics() {
  beginStage(PipelineStage::SelectBasics);
  auto T0 = std::chrono::steady_clock::now();
  Result.Selection = selectBasicInstructions(Runner, Machine.isa().allIds(),
                                             Config.Selection, &Exec);
  const SelectionResult &Sel = Result.Selection;
  Result.Stats.SelectionSeconds = secondsSince(T0);
  Result.Stats.PairBenchmarks = Sel.PairBenchmarks;
  Result.Stats.PairBenchmarksQuadratic = Sel.PairBenchmarksQuadratic;

  const std::vector<InstrId> &Basic = Sel.Basic;
  assert(!Basic.empty() && "selection produced no basic instructions");
  Result.Stats.NumBasic = Basic.size();

  BasicIpc.resize(Basic.size());
  for (size_t I = 0; I < Basic.size(); ++I) {
    IndexOf[Basic[I]] = I;
    BasicIpc[I] = Sel.soloIpc(Basic[I]);
  }
  endStage(PipelineStage::SelectBasics);
}

// ---- Stage 2: core mapping (Algo 2). ----
void Pipeline::Impl::solveCoreMapping() {
  beginStage(PipelineStage::SolveCoreMapping);
  const SelectionResult &Sel = Result.Selection;
  const std::vector<InstrId> &Basic = Sel.Basic;
  const double Eps = Config.Epsilon;
  auto T1 = std::chrono::steady_clock::now();
  const lp::LpTelemetry LpBefore = lp::lpTelemetry();

  // Seed benchmarks: {a}, {aabb}, {aMb} per compatible pair (Algo 2 line 2).
  auto AddKernel = [&](const Microkernel &K) {
    if (K.empty() || !Runner.accepts(K))
      return;
    auto [Rounded, Ipc] = measureRounded(Runner, K);
    if (!SeenKernels.insert(Rounded).second)
      return;
    Observations.push_back({std::move(Rounded), Ipc});
  };

  for (InstrId A : Basic)
    AddKernel(Microkernel::single(A, Sel.soloIpc(A)));
  for (InstrId A : Basic) {
    for (InstrId B : Basic) {
      if (A >= B)
        continue;
      AddKernel(makePairKernel(A, Sel.soloIpc(A), B, Sel.soloIpc(B)));
    }
  }
  for (InstrId A : Basic) {
    for (InstrId B : Basic) {
      if (A == B)
        continue;
      // aMb: amplify a by M to expose a's private resources (Algo 3's
      // anti-collapse benchmarks).
      Microkernel K;
      K.add(A, Config.MRepeat * Sel.soloIpc(A));
      K.add(B, Sel.soloIpc(B));
      AddKernel(K);
    }
  }

  // Selection-derived constraints (Algo 3 lines 4-5), expressed per
  // extension group exactly as they were measured.
  std::vector<ShapeConstraint> FixedConstraints;
  {
    // Very basic: a resource private within the group's very-basic set.
    std::map<ExtClass, InstrIndexMask> VbMaskByExt;
    for (InstrId Id : Sel.VeryBasic) {
      if (!IndexOf.count(Id))
        continue;
      VbMaskByExt[Machine.isa().info(Id).Ext].set(IndexOf.at(Id));
    }
    for (InstrId Id : Sel.VeryBasic) {
      if (!IndexOf.count(Id))
        continue;
      InstrIndexMask Bit = InstrIndexMask::bit(IndexOf.at(Id));
      InstrIndexMask Others =
          VbMaskByExt[Machine.isa().info(Id).Ext].without(Bit);
      FixedConstraints.push_back(
          {Bit, Others, static_cast<int>(IndexOf.at(Id))});
    }
    // Most greedy: a resource shared with every overlapping peer.
    for (InstrId Id : Sel.MostGreedy) {
      if (!IndexOf.count(Id))
        continue;
      InstrIndexMask Req = InstrIndexMask::bit(IndexOf.at(Id));
      for (InstrId Peer : Basic) {
        if (Peer == Id)
          continue;
        double Pair = Sel.pairIpc(Id, Peer);
        if (Pair < 0.0)
          continue;
        if (!isAdditivePair(Pair, Sel.soloIpc(Id), Sel.soloIpc(Peer), Eps))
          Req.set(IndexOf.at(Peer));
      }
      FixedConstraints.push_back({Req, {}, -1});
    }
  }

  // Pairwise share classification over the basic set, from the quadratic
  // benchmarks (cross-extension pairs the generator refuses stay Unknown).
  ShareMatrix Shares(Basic.size(),
                     std::vector<ShareKind>(Basic.size(),
                                            ShareKind::Unknown));
  for (size_t I = 0; I < Basic.size(); ++I) {
    Shares[I][I] = ShareKind::Full;
    for (size_t J = I + 1; J < Basic.size(); ++J) {
      Microkernel K = makePairKernel(Basic[I], BasicIpc[I], Basic[J],
                                     BasicIpc[J]);
      if (!Runner.accepts(K))
        continue;
      auto [Rounded, Ipc] = measureRounded(Runner, K);
      double T = Rounded.size() / Ipc;
      double TAloneI = Rounded.multiplicity(Basic[I]) / BasicIpc[I];
      double TAloneJ = Rounded.multiplicity(Basic[J]) / BasicIpc[J];
      Shares[I][J] = Shares[J][I] = classifyShare(T, TAloneI, TAloneJ, Eps);
    }
  }

  // Shape iteration with benchmark enrichment (Algo 2 lines 3-7).
  std::map<InstrId, double> BasicSolo;
  for (InstrId Id : Basic)
    BasicSolo[Id] = Sel.soloIpc(Id);

  // The shape/weights refinement loop. Each round: (1) re-derive the LP1
  // constraints and solve for a minimal shape; (2) append previously forced
  // resources; (3) enrich the benchmark set with one kernel per resource;
  // (4) fit the weights (LP2) and look for kernels the mapping cannot
  // saturate — the paper's "undesired merges". Each such kernel's member
  // set is forced to become a dedicated resource in the next round, giving
  // LP2 a place to express that bottleneck.
  std::vector<ShapeConstraint> Constraints;
  std::vector<InstrIndexMask> ForcedResources;
  for (int Iter = 0; Iter < Config.MaxShapeIterations; ++Iter) {
    checkCancelled();
    Constraints = FixedConstraints;
    for (const KernelObservation &Obs : Observations) {
      auto Derived = deriveKernelConstraints(Obs, IndexOf, BasicIpc, Eps);
      Constraints.insert(Constraints.end(), Derived.begin(), Derived.end());
    }
    Constraints =
        simplifyConstraints(expandOwnerForbidden(Constraints, Shares));
    Shape = solveShapeExact(Constraints, Shares);
    for (const InstrIndexMask &Forced : ForcedResources)
      if (!std::count(Shape.Resources.begin(), Shape.Resources.end(),
                      Forced))
        Shape.Resources.push_back(Forced);

    // Enrichment: one benchmark per resource combining all its members —
    // over the *closure* of the member sets under union-of-intersecting
    // (the binding sets of the dual theory are such unions), so that
    // under-fitted unions can be discovered and forced below.
    size_t ObservationsBefore = Observations.size();
    std::set<InstrIndexMask> EnrichSets(Shape.Resources.begin(),
                                        Shape.Resources.end());
    {
      constexpr size_t ClosureCap = 96;
      bool Grew = true;
      while (Grew && EnrichSets.size() < ClosureCap) {
        Grew = false;
        std::vector<InstrIndexMask> Current(EnrichSets.begin(),
                                            EnrichSets.end());
        for (size_t A = 0; A < Current.size() && !Grew; ++A)
          for (size_t B = A + 1; B < Current.size(); ++B)
            if (Current[A].intersects(Current[B]) &&
                EnrichSets.insert(Current[A] | Current[B]).second) {
              Grew = true;
              break;
            }
      }
    }
    for (const InstrIndexMask &Members : EnrichSets) {
      std::vector<InstrId> Ids;
      Members.forEachSetBit([&](size_t I) { Ids.push_back(Basic[I]); });
      for (const Microkernel &K :
           makeEnrichmentKernels(Ids, BasicSolo, Machine))
        AddKernel(K);
    }

    // Fit the weights and detect unsaturable kernels. No balanced
    // tie-break here: the refinement's underfit detection needs the
    // maximal-weight vertex.
    CoreKernels.clear();
    for (const KernelObservation &Obs : Observations)
      CoreKernels.push_back({Obs.K, Obs.Ipc, -1});
    Weights =
        solveCoreWeights(Shape, IndexOf, CoreKernels, Config.Mode,
                         lp2Options());

    size_t ForcedBefore = ForcedResources.size();
    {
      // Collect under-fitted kernels and force the *largest* member sets
      // first (a few per round): the union resources they demand usually
      // absorb the smaller ones, which the final pruning then removes.
      struct Candidate {
        InstrIndexMask Members;
        double Slack;
      };
      std::vector<Candidate> Candidates;
      for (const KernelObservation &Obs : Observations) {
        double T = Obs.K.size() / Obs.Ipc;
        double MaxLoad = 0.0;
        InstrIndexMask Members;
        for (size_t R = 0; R < Shape.numResources(); ++R) {
          double Load = 0.0;
          for (const auto &[Id, Mult] : Obs.K.terms())
            Load += Mult * Weights.Rho[IndexOf.at(Id)][R];
          MaxLoad = std::max(MaxLoad, Load);
        }
        for (const auto &[Id, Mult] : Obs.K.terms())
          Members.set(IndexOf.at(Id));
        if (MaxLoad < (1.0 - 2.0 * Eps) * T &&
            !std::count(ForcedResources.begin(), ForcedResources.end(),
                        Members) &&
            !std::count(Shape.Resources.begin(), Shape.Resources.end(),
                        Members))
          Candidates.push_back({Members, 1.0 - MaxLoad / T});
      }
      std::sort(Candidates.begin(), Candidates.end(),
                [](const Candidate &A, const Candidate &B) {
                  size_t CA = A.Members.count();
                  size_t CB = B.Members.count();
                  if (CA != CB)
                    return CA > CB; // Largest member sets first.
                  return A.Slack > B.Slack;
                });
      constexpr size_t MaxForcedPerRound = 8;
      for (size_t C = 0;
           C < Candidates.size() && C < MaxForcedPerRound; ++C)
        if (!std::count(ForcedResources.begin(), ForcedResources.end(),
                        Candidates[C].Members))
          ForcedResources.push_back(Candidates[C].Members);
    }

    if (Observer)
      Observer->onShapeIteration(Iter, Constraints.size(),
                                 Shape.numResources(),
                                 Runner.numDistinctBenchmarks());

    if (Observations.size() == ObservationsBefore &&
        ForcedResources.size() == ForcedBefore)
      break; // Fixpoint: nothing new to benchmark, nothing to split.
  }
  // NOTE: Shape.Resources and Weights.Rho columns are index-aligned from
  // here on; every later filtering step must touch both together.
  Result.Shape = Shape;
  Result.Stats.NumShapeConstraints = Constraints.size();

  // ---- Final weights: refit with the balanced tie-break. ----
  // In the dual, a resource r_J charges every µOP it serves uniformly
  // (1/|J|), so among the measurement-equivalent optima the most *balanced*
  // raw weights are the best estimate (and they keep saturating kernels
  // exclusive, which the LPAUX probes below require).
  CoreKernels.clear();
  for (const KernelObservation &Obs : Observations)
    CoreKernels.push_back({Obs.K, Obs.Ipc, -1});
  Weights = solveCoreWeights(Shape, IndexOf, CoreKernels, Config.Mode,
                             lp2Options(), /*MaxPinIterations=*/6,
                             std::vector<double>(Basic.size(), 1.0));

  // ---- Set-cover trim. ----
  // The refinement loop leaves redundant fragment resources behind; keep a
  // minimal subset that still *explains* (nearly saturates) every kernel
  // some resource explains, preferring resources that explain many kernels.
  {
    const size_t Total = Shape.numResources();
    std::vector<std::vector<size_t>> Explains(Total);
    std::vector<bool> Covered(Observations.size(), false);
    size_t NumExplainable = 0;
    std::vector<bool> Explainable(Observations.size(), false);
    for (size_t O = 0; O < Observations.size(); ++O) {
      const KernelObservation &Obs = Observations[O];
      double T = Obs.K.size() / Obs.Ipc;
      for (size_t R = 0; R < Total; ++R) {
        double Load = 0.0;
        for (const auto &[Id, Mult] : Obs.K.terms())
          Load += Mult * Weights.Rho[IndexOf.at(Id)][R];
        if (Load >= (1.0 - 2.0 * Eps) * T)
          Explains[R].push_back(O);
      }
    }
    for (size_t R = 0; R < Total; ++R)
      for (size_t O : Explains[R])
        if (!Explainable[O]) {
          Explainable[O] = true;
          ++NumExplainable;
        }
    std::vector<bool> Keep(Total, false);
    size_t NumCovered = 0;
    while (NumCovered < NumExplainable) {
      size_t BestR = Total, BestGain = 0;
      for (size_t R = 0; R < Total; ++R) {
        if (Keep[R])
          continue;
        size_t Gain = 0;
        for (size_t O : Explains[R])
          Gain += !Covered[O];
        if (Gain > BestGain) {
          BestGain = Gain;
          BestR = R;
        }
      }
      if (BestR == Total)
        break;
      Keep[BestR] = true;
      for (size_t O : Explains[BestR])
        if (!Covered[O]) {
          Covered[O] = true;
          ++NumCovered;
        }
    }
    MappingShape Trimmed;
    std::vector<std::vector<double>> TrimmedRho(Basic.size());
    for (size_t R = 0; R < Total; ++R) {
      if (!Keep[R])
        continue;
      Trimmed.Resources.push_back(Shape.Resources[R]);
      for (size_t I = 0; I < Basic.size(); ++I)
        TrimmedRho[I].push_back(Weights.Rho[I][R]);
    }
    if (!Trimmed.Resources.empty()) {
      Shape = std::move(Trimmed);
      Weights.Rho = std::move(TrimmedRho);
    }
  }

  // Collapse the refinement fragments: a resource whose fitted basic
  // column is pointwise dominated by another's can never be the unique
  // bottleneck of any kernel over basic instructions, and — crucial for
  // the saturation probes below — its existence breaks the exclusivity of
  // every saturating kernel of its dominator. Exact duplicates keep the
  // first copy.
  {
    const size_t Total = Shape.numResources();
    std::vector<bool> Keep(Total, true);
    auto DominatesOrEqual = [&](size_t R2, size_t R) {
      for (size_t I = 0; I < Basic.size(); ++I)
        if (Weights.Rho[I][R] > Weights.Rho[I][R2] + 1e-6)
          return false;
      return true;
    };
    for (size_t R = 0; R < Total; ++R) {
      for (size_t R2 = 0; R2 < Total && Keep[R]; ++R2) {
        if (R2 == R || !Keep[R2])
          continue;
        if (!DominatesOrEqual(R2, R))
          continue;
        // Tie-break exact duplicates towards the smaller index.
        if (DominatesOrEqual(R, R2) && R < R2)
          continue;
        Keep[R] = false;
      }
    }
    MappingShape NewShape;
    std::vector<std::vector<double>> NewRho(Basic.size());
    for (size_t R = 0; R < Total; ++R) {
      if (!Keep[R])
        continue;
      NewShape.Resources.push_back(Shape.Resources[R]);
      for (size_t I = 0; I < Basic.size(); ++I)
        NewRho[I].push_back(Weights.Rho[I][R]);
    }
    Shape = std::move(NewShape);
    Weights.Rho = std::move(NewRho);
  }
  Result.Shape = Shape;

  // ---- Saturating kernels (Algo 2 lines 9-12). ----
  const size_t NumRes = Shape.numResources();
  auto LoadOn = [&](const Microkernel &K, size_t R,
                    const std::vector<std::vector<double>> &Rho) {
    double L = 0.0;
    for (const auto &[Id, Mult] : K.terms()) {
      auto It = IndexOf.find(Id);
      if (It != IndexOf.end())
        L += Mult * Rho[It->second][R];
    }
    return L;
  };
  auto Consumption = [&](const Microkernel &K,
                         const std::vector<std::vector<double>> &Rho) {
    double C = 0.0;
    for (const auto &[Id, Mult] : K.terms()) {
      auto It = IndexOf.find(Id);
      if (It == IndexOf.end())
        continue;
      for (size_t R = 0; R < NumRes; ++R)
        C += Mult * Rho[It->second][R];
    }
    return C;
  };
  // Genuine[r] records whether sat[r] truly saturates r; saturation
  // probes against non-genuine kernels would mis-attribute the residual
  // time to the probed instruction, so they are skipped.
  Genuine.assign(NumRes, false);
  auto PickSaturating = [&](const std::vector<std::vector<double>> &Rho) {
    std::vector<Microkernel> Chosen(NumRes);
    for (size_t R = 0; R < NumRes; ++R) {
      double BestCons = 0.0;
      bool Found = false;
      double BestRatio = 0.0;
      const Microkernel *Fallback = nullptr;
      for (const KernelObservation &Obs : Observations) {
        double T = Obs.K.size() / Obs.Ipc;
        double Ratio = LoadOn(Obs.K, R, Rho) / T;
        if (Ratio > BestRatio) {
          BestRatio = Ratio;
          Fallback = &Obs.K;
        }
        if (Ratio < 1.0 - 2.0 * Eps)
          continue;
        // Exclusive saturation (paper Def. A.11 / Thm. A.3): the kernel
        // must leave every other resource at most 3/4 loaded, otherwise a
        // saturation probe against it would attribute the probed
        // instruction's pressure on *other* resources to this one.
        bool Exclusive = true;
        for (size_t R2 = 0; R2 < NumRes && Exclusive; ++R2)
          if (R2 != R && LoadOn(Obs.K, R2, Rho) / T > 0.75 + Eps)
            Exclusive = false;
        if (!Exclusive)
          continue;
        double Cons = Consumption(Obs.K, Rho);
        if (!Found || Cons < BestCons) {
          Found = true;
          BestCons = Cons;
          Chosen[R] = Obs.K;
        }
      }
      Genuine[R] = Found;
      if (!Found && Fallback)
        Chosen[R] = *Fallback; // Closest-to-saturating kernel.
    }
    return Chosen;
  };
  Sat = PickSaturating(Weights.Rho);

  // Enrich LP2 with Ksat(i, r) for basic instructions missing from sat[r]
  // and re-solve once (Algo 2 lines 11-12).
  for (size_t R = 0; R < NumRes; ++R) {
    if (Sat[R].empty() || !Genuine[R])
      continue;
    for (InstrId Id : Basic) {
      if (Sat[R].contains(Id))
        continue;
      Microkernel K = makeKsat(Id, Sel.soloIpc(Id), Sat[R]);
      if (!Runner.accepts(K))
        continue;
      auto [Rounded, Ipc] = measureRounded(Runner, K);
      if (SeenKernels.insert(Rounded).second) {
        Observations.push_back({Rounded, Ipc});
        CoreKernels.push_back({Rounded, Ipc, static_cast<int>(R)});
      }
    }
  }
  BwpSolveStats FinalFit;
  Weights = solveCoreWeights(Shape, IndexOf, CoreKernels, Config.Mode,
                             lp2Options(&FinalFit),
                             /*MaxPinIterations=*/6, BasicIpc);
  Result.Stats.Lp2Components = FinalFit.Components;
  Sat = PickSaturating(Weights.Rho);
  Result.SaturatingKernels = Sat;
  Result.Stats.NumCoreKernels = CoreKernels.size();
  Result.Stats.CoreSlack = Weights.TotalSlack;
  Result.Stats.CoreMappingSeconds = secondsSince(T1);
  {
    const lp::LpTelemetry &LpNow = lp::lpTelemetry();
    Result.Stats.CoreLpSolves = LpNow.Solves - LpBefore.Solves;
    Result.Stats.CoreLpPivots = LpNow.Pivots - LpBefore.Pivots;
    Result.Stats.LpWarmStartAttempts +=
        LpNow.WarmStartAttempts - LpBefore.WarmStartAttempts;
    Result.Stats.LpWarmStartHits +=
        LpNow.WarmStartHits - LpBefore.WarmStartHits;
  }

  // ---- Materialize the core mapping. ----
  for (size_t R = 0; R < NumRes; ++R)
    Result.Mapping.addResource("R" + std::to_string(R));
  for (size_t I = 0; I < Basic.size(); ++I) {
    Result.Mapping.markMapped(Basic[I]);
    for (size_t R = 0; R < NumRes; ++R)
      if (Weights.Rho[I][R] > 1e-9)
        Result.Mapping.setUsage(Basic[I], R, Weights.Rho[I][R]);
  }

  // Freeze the inspectable stage result.
  Core.Shape = Shape;
  Core.SaturatingKernels = Sat;
  Core.NumCoreKernels = CoreKernels.size();
  Core.CoreSlack = Weights.TotalSlack;
  Core.Seconds = Result.Stats.CoreMappingSeconds;
  endStage(PipelineStage::SolveCoreMapping);
}

// ---- Stage 3: complete mapping (Algo 5 / LPAUX). ----
void Pipeline::Impl::completeMapping() {
  beginStage(PipelineStage::CompleteMapping);
  const SelectionResult &Sel = Result.Selection;
  const size_t NumRes = Shape.numResources();
  auto T2 = std::chrono::steady_clock::now();

  // The instructions this stage maps: non-basic survivors, in selection
  // order. Basics were mapped by stage 2 and are excluded from the
  // progress denominator, so NumDone runs 1..NumTotal without jumps.
  std::vector<InstrId> AuxInstrs;
  for (InstrId Inst : Sel.Survivors)
    if (!IndexOf.count(Inst))
      AuxInstrs.push_back(Inst);
  const size_t NumTotal = AuxInstrs.size();

  // Per-instruction work (solo + saturation benchmarks, LPAUX solve) fans
  // out over the executor in two phases. Phase A measures every
  // instruction's aux kernels; the main thread then groups instructions
  // whose aux problems are bit-identical (same measured kernels after
  // normalizing the instruction's own id — frozen core, shape and index
  // map are constant across the stage) and phase B solves one LPAUX per
  // group, scattering the representative's weights to the duplicates.
  // Many instructions are measurement-equivalent (identical port usage),
  // so the dedup removes most of the stage's LP work; each group probe
  // counts as a warm-start attempt and each duplicate as a hit. Grouping
  // happens serially from index-ordered phase-A slots and every task
  // writes only its own slot — including its thread-local LP telemetry
  // delta — so the mapping and the stats are bit-identical to a serial
  // run.
  struct AuxSlot {
    std::vector<WeightKernel> Kernels; ///< Phase A output.
    AuxWeights Aux;
    lp::LpTelemetry Lp;
    size_t Rep = 0; ///< Group representative (== own index for uniques).
  };
  std::vector<AuxSlot> Slots(NumTotal);
  size_t NumDone = 0;       // Guarded by ProgressMutex.
  std::mutex ProgressMutex; // Serializes observer delivery (see Observer.h).

  // ---- Phase A: benchmarks. ----
  Exec.parallelFor(NumTotal, [&](size_t Idx, unsigned) {
    checkCancelled();
    const InstrId Inst = AuxInstrs[Idx];
    const double InstIpc = Sel.soloIpc(Inst);

    std::vector<WeightKernel> &AuxKernels = Slots[Idx].Kernels;
    // Solo kernel: capacity constraints only. Attributing its bottleneck
    // to a specific resource without probe evidence would be speculation.
    {
      auto [Rounded, Ipc] =
          measureRounded(Runner, Microkernel::single(Inst, InstIpc));
      AuxKernels.push_back({Rounded, Ipc, WeightKernel::ConstraintOnly});
    }
    // One saturation benchmark per resource (pinned to that resource).
    for (size_t R = 0; R < NumRes; ++R) {
      if (Sat[R].empty() || !Genuine[R])
        continue;
      Microkernel K = makeKsat(Inst, InstIpc, Sat[R]);
      if (!Runner.accepts(K))
        continue; // Extension conflict: no evidence for this resource.
      auto [Rounded, Ipc] = measureRounded(Runner, K);
      AuxKernels.push_back({Rounded, Ipc, static_cast<int>(R)});
    }
  });

  // ---- Group measurement-equivalent instructions. ----
  // The digest covers everything an aux solve depends on that varies per
  // instruction: the kernel list with the instruction's own id replaced
  // by a sentinel (its basic ids resolve through the shared frozen core).
  std::vector<size_t> UniqueIdx;
  if (!Config.Lp2Cache) {
    // Cache disabled: every instruction solves its own problem (the true
    // cold baseline the warm-vs-cold tests compare against).
    UniqueIdx.resize(NumTotal);
    std::iota(UniqueIdx.begin(), UniqueIdx.end(), size_t{0});
    for (size_t Idx = 0; Idx < NumTotal; ++Idx)
      Slots[Idx].Rep = Idx;
  } else {
    std::map<lp::StructuralDigest::Value, size_t> FirstOf;
    for (size_t Idx = 0; Idx < NumTotal; ++Idx) {
      const InstrId Inst = AuxInstrs[Idx];
      lp::StructuralDigest D;
      D.addSize(Slots[Idx].Kernels.size());
      for (const WeightKernel &WK : Slots[Idx].Kernels) {
        D.addDouble(WK.Ipc);
        D.addInt(WK.PinnedResource);
        D.addSize(WK.K.terms().size());
        for (const auto &[Id, Mult] : WK.K.terms()) {
          D.addU64(Id == Inst ? ~uint64_t{0} : Id);
          D.addDouble(Mult);
        }
      }
      auto [It, Inserted] = FirstOf.try_emplace(D.value(), Idx);
      Slots[Idx].Rep = It->second;
      if (Inserted)
        UniqueIdx.push_back(Idx);
    }
  }

  // ---- Phase B: one LPAUX solve per group. ----
  Exec.parallelFor(UniqueIdx.size(), [&](size_t U, unsigned) {
    checkCancelled();
    const size_t Idx = UniqueIdx[U];
    const InstrId Inst = AuxInstrs[Idx];
    const lp::LpTelemetry TelBefore = lp::lpTelemetry();

    BwpSolveOptions AuxOpts;
    AuxOpts.ReuseModels = Config.Lp2ReuseModels;
    AuxOpts.Decompose = Config.Lp2Decompose;
    Slots[Idx].Aux =
        solveAuxWeights(Shape, IndexOf, Weights.Rho, Inst, Slots[Idx].Kernels,
                        Config.Mode, /*MaxPinIterations=*/4, AuxOpts);
    {
      // The solve is a deterministic function of the instruction, so the
      // per-task delta (and the index-ordered sum below) is independent
      // of scheduling.
      const lp::LpTelemetry &TelNow = lp::lpTelemetry();
      Slots[Idx].Lp.Solves = TelNow.Solves - TelBefore.Solves;
      Slots[Idx].Lp.Pivots = TelNow.Pivots - TelBefore.Pivots;
      Slots[Idx].Lp.WarmStartAttempts =
          TelNow.WarmStartAttempts - TelBefore.WarmStartAttempts;
      Slots[Idx].Lp.WarmStartHits =
          TelNow.WarmStartHits - TelBefore.WarmStartHits;
    }

    if (Observer) {
      std::lock_guard<std::mutex> Lock(ProgressMutex);
      Observer->onInstructionMapped(Inst, ++NumDone, NumTotal);
    }
  });

  // Serial reduction, in selection order. Duplicates replay their
  // representative's weights (bit-identical by construction: the solver is
  // deterministic and their problems are structurally equal) and report
  // their progress here, after the fan-out.
  for (size_t Idx = 0; Idx < NumTotal; ++Idx) {
    const InstrId Inst = AuxInstrs[Idx];
    AuxSlot &Slot = Slots[Idx];
    Result.Mapping.markMapped(Inst);
    if (Config.Lp2Cache)
      ++Result.Stats.LpWarmStartAttempts; // Group probe.
    if (Slot.Rep != Idx) {
      Slot.Aux = Slots[Slot.Rep].Aux;
      ++Result.Stats.LpWarmStartHits; // Deduplicated against the group.
      if (Observer)
        Observer->onInstructionMapped(Inst, ++NumDone, NumTotal);
    }
    Result.Stats.CompleteLpSolves += Slot.Lp.Solves;
    Result.Stats.CompleteLpPivots += Slot.Lp.Pivots;
    Result.Stats.LpWarmStartAttempts += Slot.Lp.WarmStartAttempts;
    Result.Stats.LpWarmStartHits += Slot.Lp.WarmStartHits;
    if (!Slot.Aux.Feasible)
      continue; // Mapped with no usage: visible as an explicit gap.
    for (size_t R = 0; R < NumRes; ++R)
      if (Slot.Aux.Rho[R] > 1e-9)
        Result.Mapping.setUsage(Inst, R, Slot.Aux.Rho[R]);
  }
  Result.Stats.CompleteMappingSeconds = secondsSince(T2);

  // ---- Prune dominated resources. ----
  // A resource whose usage column is pointwise dominated by another's can
  // never be the unique bottleneck (the paper: "some combined resources
  // are not needed as their usage is already perfectly described").
  {
    const ResourceMapping &Map = Result.Mapping;
    std::vector<bool> Keep(NumRes, true);
    for (size_t R = 0; R < NumRes; ++R) {
      bool AllZero = true;
      for (InstrId Id = 0; Id < Machine.numInstructions() && AllZero; ++Id)
        if (Map.isMapped(Id) && Map.rho(Id, R) > 1e-9)
          AllZero = false;
      if (AllZero) {
        Keep[R] = false;
        continue;
      }
      for (size_t R2 = 0; R2 < NumRes && Keep[R]; ++R2) {
        if (R2 == R || !Keep[R2])
          continue;
        bool Dominates = true;
        for (InstrId Id = 0; Id < Machine.numInstructions() && Dominates;
             ++Id)
          if (Map.isMapped(Id) &&
              Map.rho(Id, R) > Map.rho(Id, R2) + 1e-9)
            Dominates = false;
        if (Dominates)
          Keep[R] = false;
      }
    }
    ResourceMapping Pruned(Machine.numInstructions());
    std::vector<Microkernel> PrunedSat;
    MappingShape PrunedShape;
    for (size_t R = 0; R < NumRes; ++R) {
      if (!Keep[R])
        continue;
      Pruned.addResource("R" + std::to_string(PrunedSat.size()));
      PrunedSat.push_back(Sat[R]);
      PrunedShape.Resources.push_back(Shape.Resources[R]);
    }
    for (InstrId Id = 0; Id < Machine.numInstructions(); ++Id) {
      if (!Map.isMapped(Id))
        continue;
      Pruned.markMapped(Id);
      size_t Out = 0;
      for (size_t R = 0; R < NumRes; ++R) {
        if (!Keep[R])
          continue;
        if (Map.rho(Id, R) > 1e-9)
          Pruned.setUsage(Id, Out, Map.rho(Id, R));
        ++Out;
      }
    }
    Result.Mapping = std::move(Pruned);
    Result.SaturatingKernels = std::move(PrunedSat);
    Result.Shape = std::move(PrunedShape);
  }

  Result.Stats.NumBenchmarks = Runner.numDistinctBenchmarks();
  Result.Stats.NumResources = Result.Mapping.numResources();
  Result.Stats.NumMapped = Result.Mapping.numMappedInstructions();
  endStage(PipelineStage::CompleteMapping);
}

//===----------------------------------------------------------------------===//
// Public surface.
//===----------------------------------------------------------------------===//

Pipeline::Pipeline(BenchmarkRunner &Runner, PalmedConfig Config)
    : I(std::make_unique<Impl>(Runner, std::move(Config))) {}

Pipeline::~Pipeline() = default;
Pipeline::Pipeline(Pipeline &&) noexcept = default;
Pipeline &Pipeline::operator=(Pipeline &&) noexcept = default;

void Pipeline::setObserver(PipelineObserver *Observer) {
  I->Observer = Observer;
}

void Pipeline::setCancellationToken(CancellationToken *Token) {
  I->Cancel = Token;
}

PipelineStage Pipeline::nextStage() const {
  if (finished())
    throw std::logic_error("palmed::Pipeline: already finished");
  return static_cast<PipelineStage>(I->StagesDone);
}

bool Pipeline::finished() const { return I->StagesDone >= 3; }

const SelectionResult &Pipeline::selectBasics() {
  I->selectBasics();
  return I->Result.Selection;
}

const CoreMappingResult &Pipeline::solveCoreMapping() {
  I->solveCoreMapping();
  return I->Core;
}

const PalmedResult &Pipeline::completeMapping() {
  I->completeMapping();
  return I->Result;
}

const PalmedResult &Pipeline::run() {
  if (I->StagesDone == 0)
    I->selectBasics();
  if (I->StagesDone == 1)
    I->solveCoreMapping();
  if (I->StagesDone == 2)
    I->completeMapping();
  return I->Result;
}

const PalmedResult &Pipeline::result() const {
  if (!finished())
    throw std::logic_error("palmed::Pipeline: result() before completion");
  return I->Result;
}

PalmedResult Pipeline::takeResult() {
  if (!finished())
    throw std::logic_error(
        "palmed::Pipeline: takeResult() before completion");
  return std::move(I->Result);
}

const PalmedStats &Pipeline::stats() const { return I->Result.Stats; }

const PalmedConfig &Pipeline::config() const { return I->Config; }
