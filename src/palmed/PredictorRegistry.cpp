//===- palmed/PredictorRegistry.cpp - Named predictor factories -----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "palmed/PredictorRegistry.h"

#include "baselines/GroundTruthPredictors.h"
#include "palmed/Version.h"

#include <sstream>

using namespace palmed;

const char *palmed::versionString() { return PALMED_VERSION_STRING; }

void PredictorRegistry::add(std::string Name, std::string Description,
                            Factory Make) {
  Entries[std::move(Name)] = {std::move(Description), std::move(Make)};
}

bool PredictorRegistry::contains(const std::string &Name) const {
  return Entries.count(Name) != 0;
}

std::vector<std::string> PredictorRegistry::names() const {
  std::vector<std::string> Names;
  Names.reserve(Entries.size());
  for (const auto &[Name, Entry] : Entries)
    Names.push_back(Name);
  return Names;
}

const std::string &
PredictorRegistry::description(const std::string &Name) const {
  static const std::string Empty;
  auto It = Entries.find(Name);
  return It == Entries.end() ? Empty : It->second.Description;
}

std::unique_ptr<Predictor>
PredictorRegistry::create(const std::string &Name,
                          const PredictorContext &Ctx,
                          std::string *Error) const {
  std::string Reason;
  auto It = Entries.find(Name);
  std::unique_ptr<Predictor> P;
  if (It == Entries.end()) {
    std::ostringstream OS;
    OS << "unknown predictor '" << Name << "' (known:";
    for (const auto &[Known, Entry] : Entries)
      OS << ' ' << Known;
    OS << ')';
    Reason = OS.str();
  } else {
    P = It->second.Make(Ctx, Reason);
    if (!P && Reason.empty())
      Reason = "factory for '" + Name + "' returned nothing";
  }
  if (!P && Error)
    *Error = Reason;
  return P;
}

const PredictorRegistry &PredictorRegistry::builtin() {
  static const PredictorRegistry Registry = [] {
    PredictorRegistry R;
    auto NeedMachine =
        [](const PredictorContext &Ctx,
           std::string &Error) -> const MachineModel * {
      if (!Ctx.Machine)
        Error = "requires PredictorContext::Machine";
      return Ctx.Machine;
    };
    R.add("palmed",
          "the Palmed-inferred conjunctive resource mapping "
          "(measurements only)",
          [](const PredictorContext &Ctx, std::string &Error)
              -> std::unique_ptr<Predictor> {
            if (!Ctx.PalmedMapping) {
              Error = "requires PredictorContext::PalmedMapping (run the "
                      "Pipeline first)";
              return nullptr;
            }
            return std::make_unique<MappingPredictor>("palmed",
                                                      *Ctx.PalmedMapping);
          });
    R.add("uops.info",
          "uops.info-style port-only dual of the ground-truth machine "
          "(no front-end, pipelined dividers)",
          [NeedMachine](const PredictorContext &Ctx, std::string &Error)
              -> std::unique_ptr<Predictor> {
            const MachineModel *M = NeedMachine(Ctx, Error);
            return M ? makeUopsInfoPredictor(*M) : nullptr;
          });
    R.add("iaca",
          "IACA-like dual with front-end and non-pipelined units (full "
          "manual-expertise model)",
          [NeedMachine](const PredictorContext &Ctx, std::string &Error)
              -> std::unique_ptr<Predictor> {
            const MachineModel *M = NeedMachine(Ctx, Error);
            return M ? makeIacaLikePredictor(*M) : nullptr;
          });
    R.add("llvm-mca",
          "llvm-mca-like dual with front-end, pipelined-divider "
          "assumption, and partial ISA coverage",
          [NeedMachine](const PredictorContext &Ctx, std::string &Error)
              -> std::unique_ptr<Predictor> {
            const MachineModel *M = NeedMachine(Ctx, Error);
            return M ? makeLlvmMcaLikePredictor(*M) : nullptr;
          });
    R.add("pmevo",
          "PMEvo: evolutionary disjunctive port-mapping inference trained "
          "on solo/pair benchmarks",
          [NeedMachine](const PredictorContext &Ctx, std::string &Error)
              -> std::unique_ptr<Predictor> {
            const MachineModel *M = NeedMachine(Ctx, Error);
            if (!M)
              return nullptr;
            if (!Ctx.Runner) {
              Error = "requires PredictorContext::Runner (pmevo trains on "
                      "measurements)";
              return nullptr;
            }
            return PMEvoPredictor::train(*Ctx.Runner, M->isa().allIds(),
                                         Ctx.PMEvo);
          });
    return R;
  }();
  return Registry;
}
