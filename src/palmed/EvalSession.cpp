//===- palmed/EvalSession.cpp - Parallel evaluation session ---------------===//
//
// Part of the PALMED reproduction.
//
// Scheduling model: the work is blocks x lanes, where lane 0 is the
// native oracle and lane i >= 1 is predictor i-1. Work is cut into
// fixed-size block chunks per lane, fanned out over a palmed::Executor.
// Every work item writes one pre-allocated slot (NativeIpc[b] or
// Predictions[tool][b]), so the outcome is bit-identical for any worker
// count, including the in-place serial path.
//
//===----------------------------------------------------------------------===//

#include "palmed/EvalSession.h"

#include "support/Executor.h"

#include <mutex>
#include <stdexcept>

using namespace palmed;

EvalSession::EvalSession(ThroughputOracle &Native, ExecutionPolicy Policy)
    : Native(Native), Policy(Policy) {
  // Eager pool construction keeps run() const safe to call from several
  // threads (a lazy first-use init would race on the pointer); helper
  // threads still spawn lazily inside the Executor itself.
  if (Policy.NumThreads > 1)
    Exec = std::make_unique<Executor>(Policy.NumThreads);
}

EvalSession::~EvalSession() = default;
EvalSession::EvalSession(EvalSession &&) noexcept = default;

void EvalSession::setReferenceTool(std::string Tool) {
  ReferenceTool = std::move(Tool);
}

void EvalSession::add(Predictor &P) {
  for (const Predictor *Existing : Lanes)
    if (Existing->name() == P.name())
      throw std::invalid_argument("palmed::EvalSession: duplicate predictor"
                                  " name '" +
                                  P.name() + "'");
  Lanes.push_back(&P);
}

Predictor &EvalSession::add(std::unique_ptr<Predictor> P) {
  if (!P)
    throw std::invalid_argument("palmed::EvalSession: null predictor");
  Predictor &Ref = *P;
  add(Ref); // Duplicate check + lane registration.
  Owned.push_back(std::move(P));
  return Ref;
}

EvalOutcome EvalSession::run(const std::vector<BasicBlock> &Blocks) const {
  EvalOutcome Out;
  Out.Blocks = Blocks;
  Out.ReferenceTool = ReferenceTool;
  Out.NativeIpc.assign(Blocks.size(), 0.0);

  // Pre-create every row so the map is never mutated concurrently.
  std::vector<std::vector<std::optional<double>> *> Rows;
  Rows.reserve(Lanes.size());
  for (Predictor *P : Lanes) {
    auto &Row = Out.Predictions[P->name()];
    Row.assign(Blocks.size(), std::nullopt);
    Rows.push_back(&Row);
  }

  // One contiguous kernel array: predictor lanes run through the batch
  // entry point (Predictor::predictIpcBatch), whose contract is
  // bit-identity with the scalar predictIpc loop — MappingPredictor lanes
  // amortize their work through the compiled batch engine, everything
  // else falls back to the default serial loop.
  std::vector<Microkernel> Ks;
  Ks.reserve(Blocks.size());
  for (const BasicBlock &B : Blocks)
    Ks.push_back(B.K);

  if (Policy.NumThreads <= 1 || Blocks.empty()) {
    for (size_t B = 0; B < Blocks.size(); ++B)
      Out.NativeIpc[B] = Native.measureIpc(Blocks[B].K);
    for (size_t L = 0; L < Lanes.size(); ++L)
      Lanes[L]->predictIpcBatch(Ks.data(), Ks.size(), Rows[L]->data());
    return Out;
  }

  const unsigned NumWorkers = Exec->numWorkers();

  // Per-lane concurrency strategy (lane 0 = native oracle).
  const size_t NumLanes = Lanes.size() + 1;
  std::vector<std::unique_ptr<std::mutex>> LaneMutex(NumLanes);
  // Clones[lane][worker]: per-thread deep copies for non-reentrant
  // predictors that support cloning.
  std::vector<std::vector<std::unique_ptr<Predictor>>> Clones(NumLanes);
  if (!Native.isThreadSafe())
    LaneMutex[0] = std::make_unique<std::mutex>();
  for (size_t L = 0; L < Lanes.size(); ++L) {
    if (Lanes[L]->isThreadSafe())
      continue;
    std::vector<std::unique_ptr<Predictor>> PerWorker(NumWorkers);
    bool Cloned = true;
    for (unsigned W = 0; W < NumWorkers && Cloned; ++W) {
      PerWorker[W] = Lanes[L]->clone();
      Cloned = PerWorker[W] != nullptr;
    }
    if (Cloned)
      Clones[L + 1] = std::move(PerWorker);
    else
      LaneMutex[L + 1] = std::make_unique<std::mutex>();
  }

  // Chunked task list: big enough chunks to amortize the atomic pull,
  // small enough to balance lanes of uneven cost.
  struct Task {
    size_t Lane;
    size_t Begin;
    size_t End;
  };
  const size_t ChunkSize = std::max<size_t>(
      1, std::min<size_t>(32, Blocks.size() / (NumWorkers * 4) + 1));
  std::vector<Task> Tasks;
  for (size_t L = 0; L < NumLanes; ++L)
    for (size_t B = 0; B < Blocks.size(); B += ChunkSize)
      Tasks.push_back({L, B, std::min(B + ChunkSize, Blocks.size())});

  Exec->parallelFor(Tasks.size(), [&](size_t T, unsigned WorkerId) {
    const Task &Tk = Tasks[T];
    std::unique_lock<std::mutex> Guard;
    if (LaneMutex[Tk.Lane])
      Guard = std::unique_lock<std::mutex>(*LaneMutex[Tk.Lane]);
    if (Tk.Lane == 0) {
      for (size_t B = Tk.Begin; B < Tk.End; ++B)
        Out.NativeIpc[B] = Native.measureIpc(Blocks[B].K);
    } else {
      Predictor *P = Clones[Tk.Lane].empty()
                         ? Lanes[Tk.Lane - 1]
                         : Clones[Tk.Lane][WorkerId].get();
      auto &Row = *Rows[Tk.Lane - 1];
      // Chunk results land in the chunk's own slots; batch==scalar
      // bit-identity makes the chunking invisible in the outcome.
      P->predictIpcBatch(&Ks[Tk.Begin], Tk.End - Tk.Begin, &Row[Tk.Begin]);
    }
  });
  return Out;
}
