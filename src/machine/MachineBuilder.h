//===- machine/MachineBuilder.h - Fluent machine construction --*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental construction of MachineModel instances; used by the shipped
/// SKL-like / ZEN-like descriptions, the synthetic ISA generator, the
/// property tests (random machines) and the custom_machine example.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_MACHINE_MACHINEBUILDER_H
#define PALMED_MACHINE_MACHINEBUILDER_H

#include "machine/MachineModel.h"

#include <string>
#include <vector>

namespace palmed {

/// Builder for MachineModel.
class MachineBuilder {
public:
  explicit MachineBuilder(std::string Name) : Name(std::move(Name)) {}

  /// Adds an execution port; returns its index.
  unsigned addPort(std::string PortName);

  /// Sets the front-end decode width (0 = unlimited).
  MachineBuilder &setDecodeWidth(unsigned Width) {
    DecodeWidth = Width;
    return *this;
  }

  /// Sets the SSE/AVX mixing penalty factor (default 0: no penalty).
  MachineBuilder &setExtMixPenalty(double Penalty) {
    ExtMixPenalty = Penalty;
    return *this;
  }

  /// Registers an instruction with its µOP decomposition. Ports must be
  /// declared first: throws std::out_of_range when a µOP references a port
  /// index >= numPorts(), and std::invalid_argument on an empty port set.
  InstrId addInstruction(InstrInfo Info, std::vector<MicroOpDesc> MicroOps);

  /// Convenience: single-µOP instruction on \p Ports with \p Occupancy.
  /// Same port-range validation as addInstruction.
  InstrId addSimpleInstruction(InstrInfo Info, PortMask Ports,
                               double Occupancy = 1.0);

  unsigned numPorts() const { return static_cast<unsigned>(Ports.size()); }
  size_t numInstructions() const { return Isa.size(); }

  /// Finalizes the machine. The builder is left in a moved-from state.
  MachineModel build();

private:
  std::string Name;
  std::vector<std::string> Ports;
  InstructionSet Isa;
  std::vector<InstrExec> Execs;
  unsigned DecodeWidth = 0;
  double ExtMixPenalty = 0.0;
};

} // namespace palmed

#endif // PALMED_MACHINE_MACHINEBUILDER_H
