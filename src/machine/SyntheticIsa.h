//===- machine/SyntheticIsa.h - Synthetic instruction sets -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic ISA population. The paper benchmarks thousands of x86
/// instructions enumerated via Intel XED; this reproduction generates a
/// synthetic ISA over the simulated ports instead (see DESIGN.md,
/// substitution table). Variants within a recipe share the exact same µOP
/// decomposition, reproducing the large equivalence classes Palmed's
/// selection stage collapses (754 instructions -> 9 classes in the paper's
/// p0/p1/p6 example).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_MACHINE_SYNTHETICISA_H
#define PALMED_MACHINE_SYNTHETICISA_H

#include "machine/MachineBuilder.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace palmed {

/// A family of instructions sharing one µOP decomposition.
struct CategoryRecipe {
  std::string BaseName;
  InstrCategory Category = InstrCategory::Other;
  ExtClass Ext = ExtClass::Base;
  std::vector<MicroOpDesc> MicroOps;
  /// Number of register-only variants emitted (BaseName_0, BaseName_1, ...).
  int NumVariants = 1;
  /// Number of additional variants with a fused load µOP (BaseName_M0, ...).
  int NumMemVariants = 0;
};

/// Instantiates every recipe's variants into \p B. \p LoadMicroOp is the
/// µOP appended to memory variants (the machine's load AGU/port set).
void populateSyntheticIsa(MachineBuilder &B,
                          const std::vector<CategoryRecipe> &Recipes,
                          const MicroOpDesc &LoadMicroOp);

/// Builds a random machine for property tests: \p NumPorts ports and
/// \p NumInstructions instructions with 1-3 µOPs over random non-empty port
/// sets; occasionally a non-pipelined µOP. Decode width is random in
/// {0 (off), 3..6}.
MachineModel makeRandomMachine(Rng &R, unsigned NumPorts,
                               unsigned NumInstructions,
                               bool AllowOccupancy = true);

} // namespace palmed

#endif // PALMED_MACHINE_SYNTHETICISA_H
