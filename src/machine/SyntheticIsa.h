//===- machine/SyntheticIsa.h - Synthetic instruction sets -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic ISA population. The paper benchmarks thousands of x86
/// instructions enumerated via Intel XED; this reproduction generates a
/// synthetic ISA over the simulated ports instead (see DESIGN.md,
/// substitution table). Variants within a recipe share the exact same µOP
/// decomposition, reproducing the large equivalence classes Palmed's
/// selection stage collapses (754 instructions -> 9 classes in the paper's
/// p0/p1/p6 example).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_MACHINE_SYNTHETICISA_H
#define PALMED_MACHINE_SYNTHETICISA_H

#include "machine/MachineBuilder.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace palmed {

/// A family of instructions sharing one µOP decomposition.
struct CategoryRecipe {
  std::string BaseName;
  InstrCategory Category = InstrCategory::Other;
  ExtClass Ext = ExtClass::Base;
  std::vector<MicroOpDesc> MicroOps;
  /// Number of register-only variants emitted (BaseName_0, BaseName_1, ...).
  int NumVariants = 1;
  /// Number of additional variants with a fused load µOP (BaseName_M0, ...).
  int NumMemVariants = 0;
};

/// Instantiates every recipe's variants into \p B. \p LoadMicroOp is the
/// µOP appended to memory variants (the machine's load AGU/port set).
void populateSyntheticIsa(MachineBuilder &B,
                          const std::vector<CategoryRecipe> &Recipes,
                          const MicroOpDesc &LoadMicroOp);

/// Builds a random machine for property tests: \p NumPorts ports and
/// \p NumInstructions instructions with 1-3 µOPs over random non-empty port
/// sets; occasionally a non-pipelined µOP. Decode width is random in
/// {0 (off), 3..6}.
MachineModel makeRandomMachine(Rng &R, unsigned NumPorts,
                               unsigned NumInstructions,
                               bool AllowOccupancy = true);

/// Parameterized stress profile: a machine substantially larger than the
/// shipped skl/zen models, for scaling the selection and LPAUX fan-outs
/// beyond the paper's two machines (ROADMAP "scale the machine
/// substrate"). Construction is deterministic in the config (seeded Rng),
/// so two calls with equal configs produce identical machines.
struct StressIsaConfig {
  std::string Name = "stress";
  /// Execution ports (uncapped: PortMask is a dynamic BitSet). The last
  /// two double as the load AGUs.
  unsigned NumPorts = 10;
  /// Distinct µOP decompositions (selection sees one equivalence class
  /// per category and extension).
  unsigned NumCategories = 30;
  /// Register-only variants instantiated per category.
  int VariantsPerCategory = 12;
  /// Additional variants with a fused load µOP per category.
  int MemVariantsPerCategory = 3;
  /// Extension groups drawn from the ExtClass roster (Base, Sse, Avx,
  /// Avx512, Mmx, X87), in that order: 1 = Base only, ...,
  /// NumExtClasses = all. Selection runs per group, so this scales the
  /// number of independent quadratic-benchmark fan-outs — and the basic
  /// set (NumBasicPerGroup per group), which is what pushes shape
  /// problems past the historical 32-basic wall.
  unsigned NumExtensions = 3;
  /// Front-end width; 0 disables the decode cap.
  unsigned DecodeWidth = 6;
  /// Fraction of categories whose µOP is non-pipelined (occupancy 2..5),
  /// exercising the low-IPC LPAUX-only path.
  double NonPipelinedChance = 0.1;
  uint64_t Seed = 0x57e55a11;
};

/// Instantiates the stress profile. Instruction count is
/// NumCategories * (VariantsPerCategory + MemVariantsPerCategory).
/// Throws std::invalid_argument on out-of-range configs (NumPorts outside
/// [3, MaxPortIndex], NumExtensions outside [1, NumExtClasses], or an
/// empty ISA).
MachineModel makeStressMachine(const StressIsaConfig &Config);

/// The "huge" profile: a thousand-instruction-class ISA (2048
/// instructions over 128 µOP decompositions, 24 ports, all 6 extension
/// groups) proving the lifted caps end to end — its 48 basic
/// instructions exceed the historical 32-basic shape limit. Map it with
/// SelectionConfig::ClusterPairPruning on; the full quadratic sweep at
/// this size is the scaling bottleneck the pruning exists to remove.
StressIsaConfig hugeStressConfig();

} // namespace palmed

#endif // PALMED_MACHINE_SYNTHETICISA_H
