//===- machine/MachineModel.cpp - Ground-truth disjunctive model ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"

#include "support/Compat.h"

using namespace palmed;

PortMask palmed::portMask(std::initializer_list<unsigned> Ports) {
  PortMask Mask = 0;
  for (unsigned P : Ports) {
    assert(P < MaxPorts && "port index out of range");
    Mask |= PortMask{1} << P;
  }
  return Mask;
}

unsigned palmed::portCount(PortMask Mask) {
  return popCount(Mask);
}

MachineModel::MachineModel(std::string Name,
                           std::vector<std::string> PortNames,
                           InstructionSet Isa, std::vector<InstrExec> Execs,
                           unsigned DecodeWidth, double ExtMixPenalty)
    : Name(std::move(Name)), PortNames(std::move(PortNames)),
      Isa(std::move(Isa)), Execs(std::move(Execs)), DecodeWidth(DecodeWidth),
      ExtMixPenalty(ExtMixPenalty) {
  assert(this->Execs.size() == this->Isa.size() &&
         "one execution description per instruction required");
  assert(validate() && "invalid machine description");
}

bool MachineModel::kernelMixesExtensions(const Microkernel &K) const {
  bool HasSse = false, HasAvx = false;
  for (const auto &[Id, Mult] : K.terms()) {
    ExtClass Ext = Isa.info(Id).Ext;
    HasSse |= Ext == ExtClass::Sse;
    HasAvx |= Ext == ExtClass::Avx;
  }
  return HasSse && HasAvx;
}

bool MachineModel::validate() const {
  if (PortNames.empty() || PortNames.size() > MaxPorts)
    return false;
  PortMask AllPorts =
      PortNames.size() == MaxPorts
          ? ~PortMask{0}
          : ((PortMask{1} << PortNames.size()) - 1);
  for (const InstrExec &E : Execs) {
    if (E.MicroOps.empty())
      return false;
    for (const MicroOpDesc &U : E.MicroOps) {
      if (U.Ports == 0 || (U.Ports & ~AllPorts) != 0)
        return false;
      if (U.Occupancy <= 0.0)
        return false;
    }
  }
  return ExtMixPenalty >= 0.0;
}
