//===- machine/MachineModel.cpp - Ground-truth disjunctive model ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"

#include <stdexcept>

using namespace palmed;

PortMask palmed::portMask(std::initializer_list<unsigned> Ports) {
  PortMask Mask;
  for (unsigned P : Ports) {
    if (P >= MaxPortIndex)
      throw std::out_of_range("portMask: port index " + std::to_string(P) +
                              " out of range (max " +
                              std::to_string(MaxPortIndex - 1) + ")");
    Mask.set(P);
  }
  return Mask;
}

unsigned palmed::portCount(const PortMask &Mask) {
  return static_cast<unsigned>(Mask.count());
}

MachineModel::MachineModel(std::string Name,
                           std::vector<std::string> PortNames,
                           InstructionSet Isa, std::vector<InstrExec> Execs,
                           unsigned DecodeWidth, double ExtMixPenalty)
    : Name(std::move(Name)), PortNames(std::move(PortNames)),
      Isa(std::move(Isa)), Execs(std::move(Execs)), DecodeWidth(DecodeWidth),
      ExtMixPenalty(ExtMixPenalty) {
  assert(this->Execs.size() == this->Isa.size() &&
         "one execution description per instruction required");
  assert(validate() && "invalid machine description");
}

bool MachineModel::kernelMixesExtensions(const Microkernel &K) const {
  bool HasSse = false, HasAvx = false;
  for (const auto &[Id, Mult] : K.terms()) {
    ExtClass Ext = Isa.info(Id).Ext;
    HasSse |= Ext == ExtClass::Sse;
    HasAvx |= Ext == ExtClass::Avx;
  }
  return HasSse && HasAvx;
}

bool MachineModel::validate() const {
  if (PortNames.empty())
    return false;
  PortMask AllPorts = BitSet::firstN(PortNames.size());
  for (const InstrExec &E : Execs) {
    if (E.MicroOps.empty())
      return false;
    for (const MicroOpDesc &U : E.MicroOps) {
      if (U.Ports.none() || !U.Ports.isSubsetOf(AllPorts))
        return false;
      if (U.Occupancy <= 0.0)
        return false;
    }
  }
  return ExtMixPenalty >= 0.0;
}
