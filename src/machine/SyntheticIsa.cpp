//===- machine/SyntheticIsa.cpp - Synthetic instruction sets -------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/SyntheticIsa.h"

#include <string>

using namespace palmed;

void palmed::populateSyntheticIsa(MachineBuilder &B,
                                  const std::vector<CategoryRecipe> &Recipes,
                                  const MicroOpDesc &LoadMicroOp) {
  for (const CategoryRecipe &Recipe : Recipes) {
    for (int V = 0; V < Recipe.NumVariants; ++V) {
      InstrInfo Info;
      Info.Name = Recipe.BaseName + "_" + std::to_string(V);
      Info.Ext = Recipe.Ext;
      Info.Category = Recipe.Category;
      B.addInstruction(std::move(Info), Recipe.MicroOps);
    }
    for (int V = 0; V < Recipe.NumMemVariants; ++V) {
      InstrInfo Info;
      Info.Name = Recipe.BaseName + "_M" + std::to_string(V);
      Info.Ext = Recipe.Ext;
      Info.Category = Recipe.Category;
      std::vector<MicroOpDesc> MicroOps = Recipe.MicroOps;
      MicroOps.push_back(LoadMicroOp);
      B.addInstruction(std::move(Info), std::move(MicroOps));
    }
  }
}

MachineModel palmed::makeRandomMachine(Rng &R, unsigned NumPorts,
                                       unsigned NumInstructions,
                                       bool AllowOccupancy) {
  assert(NumPorts >= 1 && NumPorts <= MaxPorts && "bad port count");
  MachineBuilder B("random");
  for (unsigned P = 0; P < NumPorts; ++P)
    B.addPort("p" + std::to_string(P));

  // Random decode width: off in half the cases, else 3..6.
  if (R.chance(0.5))
    B.setDecodeWidth(static_cast<unsigned>(R.uniformIntIn(3, 6)));

  PortMask AllPorts = NumPorts == MaxPorts
                          ? ~PortMask{0}
                          : ((PortMask{1} << NumPorts) - 1);
  for (unsigned I = 0; I < NumInstructions; ++I) {
    unsigned NumMicroOps = static_cast<unsigned>(R.uniformIntIn(1, 3));
    std::vector<MicroOpDesc> MicroOps;
    for (unsigned U = 0; U < NumMicroOps; ++U) {
      MicroOpDesc D;
      do {
        D.Ports = static_cast<PortMask>(R.next()) & AllPorts;
      } while (D.Ports == 0);
      if (AllowOccupancy && R.chance(0.15))
        D.Occupancy = static_cast<double>(R.uniformIntIn(2, 6));
      MicroOps.push_back(D);
    }
    InstrInfo Info;
    Info.Name = "I" + std::to_string(I);
    Info.Ext = ExtClass::Base;
    Info.Category = InstrCategory::Other;
    B.addInstruction(std::move(Info), std::move(MicroOps));
  }
  return B.build();
}
