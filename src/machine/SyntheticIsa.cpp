//===- machine/SyntheticIsa.cpp - Synthetic instruction sets -------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/SyntheticIsa.h"

#include <cassert>
#include <stdexcept>
#include <string>

using namespace palmed;

void palmed::populateSyntheticIsa(MachineBuilder &B,
                                  const std::vector<CategoryRecipe> &Recipes,
                                  const MicroOpDesc &LoadMicroOp) {
  for (const CategoryRecipe &Recipe : Recipes) {
    for (int V = 0; V < Recipe.NumVariants; ++V) {
      InstrInfo Info;
      Info.Name = Recipe.BaseName + "_" + std::to_string(V);
      Info.Ext = Recipe.Ext;
      Info.Category = Recipe.Category;
      B.addInstruction(std::move(Info), Recipe.MicroOps);
    }
    for (int V = 0; V < Recipe.NumMemVariants; ++V) {
      InstrInfo Info;
      Info.Name = Recipe.BaseName + "_M" + std::to_string(V);
      Info.Ext = Recipe.Ext;
      Info.Category = Recipe.Category;
      std::vector<MicroOpDesc> MicroOps = Recipe.MicroOps;
      MicroOps.push_back(LoadMicroOp);
      B.addInstruction(std::move(Info), std::move(MicroOps));
    }
  }
}

MachineModel palmed::makeStressMachine(const StressIsaConfig &Config) {
  // StressIsaConfig is a public knob; reject bad values loudly even in
  // Release builds (the bounds below guard array indexing and the
  // NumPorts - 2 AGU computation). Port counts are uncapped now that
  // PortMask is a dynamic BitSet; MaxPortIndex only fences off garbage.
  if (Config.NumPorts < 3 || Config.NumPorts > MaxPortIndex)
    throw std::invalid_argument(
        "makeStressMachine: NumPorts must be in [3, " +
        std::to_string(MaxPortIndex) + "]");
  if (Config.NumExtensions < 1 || Config.NumExtensions > NumExtClasses)
    throw std::invalid_argument(
        "makeStressMachine: NumExtensions must be in [1, " +
        std::to_string(NumExtClasses) + "]");
  if (Config.NumCategories == 0 || Config.VariantsPerCategory < 0 ||
      Config.MemVariantsPerCategory < 0 ||
      Config.VariantsPerCategory + Config.MemVariantsPerCategory <= 0)
    throw std::invalid_argument(
        "makeStressMachine: need at least one category and one variant");
  Rng R(Config.Seed);
  MachineBuilder B(Config.Name);
  for (unsigned P = 0; P < Config.NumPorts; ++P)
    B.addPort("p" + std::to_string(P));
  if (Config.DecodeWidth > 0)
    B.setDecodeWidth(Config.DecodeWidth);

  // The last two ports double as the load AGUs (every memory variant's
  // fused µOP lands there), mirroring the shipped machines' dedicated
  // AGU pair.
  const MicroOpDesc LoadOp{
      portMask({Config.NumPorts - 2, Config.NumPorts - 1}), 1.0};

  // Real machines issue a functional class to a small *contiguous* group
  // of ports (p0/p1, p2/p3, ...). Mirror that: each category draws a
  // random port-group width (narrow groups dominate) and start, so
  // categories overlap partially — the structure that forces the shape
  // refinement to discover combined resources.
  auto RandomGroupMask = [&]() {
    unsigned Width = static_cast<unsigned>(R.chance(0.5)   ? 1
                                           : R.chance(0.6) ? 2
                                                           : 3);
    unsigned Start = static_cast<unsigned>(
        R.uniformIntIn(0, static_cast<int64_t>(Config.NumPorts) - 1));
    PortMask Mask;
    for (unsigned W = 0; W < Width; ++W)
      Mask.set((Start + W) % Config.NumPorts);
    return Mask;
  };

  const ExtClass Exts[] = {ExtClass::Base,   ExtClass::Sse,
                           ExtClass::Avx,    ExtClass::Avx512,
                           ExtClass::Mmx,    ExtClass::X87};
  static_assert(sizeof(Exts) / sizeof(Exts[0]) == NumExtClasses,
                "extension roster out of sync with ExtClass");
  const InstrCategory Cats[] = {
      InstrCategory::IntAlu, InstrCategory::Shift,  InstrCategory::IntMul,
      InstrCategory::FpAdd,  InstrCategory::FpMul,  InstrCategory::VecInt,
      InstrCategory::Branch, InstrCategory::AddressGen,
      InstrCategory::VecShuffle};

  std::vector<CategoryRecipe> Recipes;
  Recipes.reserve(Config.NumCategories);
  for (unsigned C = 0; C < Config.NumCategories; ++C) {
    CategoryRecipe Recipe;
    Recipe.BaseName = "S" + std::to_string(C);
    Recipe.Ext = Exts[C % Config.NumExtensions];
    Recipe.Category = Cats[C % (sizeof(Cats) / sizeof(Cats[0]))];
    unsigned NumMicroOps = R.chance(0.3) ? 2 : 1;
    for (unsigned U = 0; U < NumMicroOps; ++U)
      Recipe.MicroOps.push_back({RandomGroupMask(), 1.0});
    if (R.chance(Config.NonPipelinedChance)) {
      // Non-pipelined single-µOP divider-style category: low IPC, never
      // basic, mapped by LPAUX only.
      Recipe.MicroOps.resize(1);
      Recipe.MicroOps[0].Occupancy =
          static_cast<double>(R.uniformIntIn(2, 5));
    }
    Recipe.NumVariants = Config.VariantsPerCategory;
    Recipe.NumMemVariants = Config.MemVariantsPerCategory;
    Recipes.push_back(std::move(Recipe));
  }

  populateSyntheticIsa(B, Recipes, LoadOp);
  return B.build();
}

StressIsaConfig palmed::hugeStressConfig() {
  StressIsaConfig C;
  C.Name = "huge";
  C.NumPorts = 24;
  C.NumCategories = 128;
  C.VariantsPerCategory = 12;
  C.MemVariantsPerCategory = 4;
  C.NumExtensions = NumExtClasses;
  C.DecodeWidth = 8;
  C.Seed = 0x8f1e5c01;
  return C;
}

MachineModel palmed::makeRandomMachine(Rng &R, unsigned NumPorts,
                                       unsigned NumInstructions,
                                       bool AllowOccupancy) {
  assert(NumPorts >= 1 && "bad port count");
  MachineBuilder B("random");
  for (unsigned P = 0; P < NumPorts; ++P)
    B.addPort("p" + std::to_string(P));

  // Random decode width: off in half the cases, else 3..6.
  if (R.chance(0.5))
    B.setDecodeWidth(static_cast<unsigned>(R.uniformIntIn(3, 6)));

  for (unsigned I = 0; I < NumInstructions; ++I) {
    unsigned NumMicroOps = static_cast<unsigned>(R.uniformIntIn(1, 3));
    std::vector<MicroOpDesc> MicroOps;
    for (unsigned U = 0; U < NumMicroOps; ++U) {
      MicroOpDesc D;
      do {
        // One RNG draw per 64-port word, truncated to the port universe:
        // for <= 32 ports this consumes the same draws and yields the same
        // machines as the historical uint32_t cast.
        PortMask Draw;
        for (unsigned P = 0; P < NumPorts; P += 64)
          Draw |= BitSet::fromWord(R.next(), std::min(64u, NumPorts - P))
                  << P;
        D.Ports = Draw;
      } while (D.Ports.none());
      if (AllowOccupancy && R.chance(0.15))
        D.Occupancy = static_cast<double>(R.uniformIntIn(2, 6));
      MicroOps.push_back(D);
    }
    InstrInfo Info;
    Info.Name = "I" + std::to_string(I);
    Info.Ext = ExtClass::Base;
    Info.Category = InstrCategory::Other;
    B.addInstruction(std::move(Info), std::move(MicroOps));
  }
  return B.build();
}
