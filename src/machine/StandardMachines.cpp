//===- machine/StandardMachines.cpp - Shipped machine models --------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/StandardMachines.h"

#include "machine/MachineBuilder.h"
#include "machine/SyntheticIsa.h"

using namespace palmed;

MachineModel palmed::makeFig1Machine() {
  MachineBuilder B("fig1");
  B.addPort("p0");
  B.addPort("p1");
  B.addPort("p6");
  // Paper Fig. 1: instructions restricted to ports p0, p1, p6. Port indices
  // here: p0 = 0, p1 = 1, p6 = 2.
  B.addSimpleInstruction({"DIVPS", ExtClass::Sse, InstrCategory::FpDiv},
                         portMask({0}));
  B.addInstruction({"VCVTT", ExtClass::Sse, InstrCategory::Other},
                   {{portMask({0, 1}), 1.0}, {portMask({0, 1}), 1.0}});
  B.addSimpleInstruction({"ADDSS", ExtClass::Sse, InstrCategory::FpAdd},
                         portMask({0, 1}));
  B.addSimpleInstruction({"BSR", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({1}));
  B.addSimpleInstruction({"JNLE", ExtClass::Base, InstrCategory::Branch},
                         portMask({0, 2}));
  B.addSimpleInstruction({"JMP", ExtClass::Base, InstrCategory::Branch},
                         portMask({2}));
  return B.build();
}

MachineModel palmed::makeSklLike(int Scale) {
  assert(Scale >= 1 && "scale must be positive");
  const int S = Scale;
  MachineBuilder B("skl-like");
  for (const char *Name :
       {"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"})
    B.addPort(Name);
  // The paper reports a maximal measured IPC of 4 on SKL-SP (front-end).
  B.setDecodeWidth(4);
  // SSE/AVX transition penalty (paper Sec. VI-A forbids mixed benchmarks).
  B.setExtMixPenalty(0.3);

  const PortMask Alu = portMask({0, 1, 5, 6});
  const PortMask Shift = portMask({0, 6});
  const PortMask Mul = portMask({1});
  const PortMask Lea = portMask({1, 5});
  const PortMask BranchOnly = portMask({6});
  const PortMask BranchWide = portMask({0, 6});
  const PortMask LoadAgu = portMask({2, 3});
  const PortMask StoreAgu = portMask({2, 3, 7});
  const PortMask StoreData = portMask({4});
  const PortMask FpVec = portMask({0, 1});
  const PortMask VecAll = portMask({0, 1, 5});
  const PortMask ShuffleOnly = portMask({5});
  const PortMask Div = portMask({0});

  const MicroOpDesc LoadOp{LoadAgu, 1.0};

  std::vector<CategoryRecipe> Recipes = {
      // Scalar integer.
      {"ADD", InstrCategory::IntAlu, ExtClass::Base, {{Alu, 1.0}}, 10 * S,
       4 * S},
      {"SUB", InstrCategory::IntAlu, ExtClass::Base, {{Alu, 1.0}}, 8 * S,
       2 * S},
      {"AND", InstrCategory::IntAlu, ExtClass::Base, {{Alu, 1.0}}, 6 * S, 0},
      {"ORR", InstrCategory::IntAlu, ExtClass::Base, {{Alu, 1.0}}, 6 * S, 0},
      {"XOR", InstrCategory::IntAlu, ExtClass::Base, {{Alu, 1.0}}, 4 * S, 0},
      {"CMP", InstrCategory::IntAlu, ExtClass::Base, {{Alu, 1.0}}, 6 * S, 0},
      {"MOVR", InstrCategory::IntAlu, ExtClass::Base, {{Alu, 1.0}}, 4 * S, 0},
      {"SHL", InstrCategory::Shift, ExtClass::Base, {{Shift, 1.0}}, 6 * S, 0},
      {"ROL", InstrCategory::Shift, ExtClass::Base, {{Shift, 1.0}}, 4 * S, 0},
      {"IMUL", InstrCategory::IntMul, ExtClass::Base, {{Mul, 1.0}}, 5 * S, 0},
      {"BSR", InstrCategory::IntAlu, ExtClass::Base, {{Mul, 1.0}}, 4 * S, 0},
      // p0-exclusive pipelined ops (real SKL has these, e.g. AES); they
      // let the core mapping isolate p0, which the divider mapping needs.
      {"AES", InstrCategory::Other, ExtClass::Base, {{Div, 1.0}}, 3 * S, 0},
      // Non-pipelined dividers (low IPC; exercise Palmed's low-IPC path).
      {"DIV8", InstrCategory::IntDiv, ExtClass::Base, {{Div, 3.0}}, 2 * S, 0},
      {"DIV32", InstrCategory::IntDiv, ExtClass::Base, {{Div, 6.0}}, 2 * S,
       0},
      {"DIV64", InstrCategory::IntDiv, ExtClass::Base, {{Div, 9.0}}, 1 * S,
       0},
      {"LEA", InstrCategory::AddressGen, ExtClass::Base, {{Lea, 1.0}}, 6 * S,
       0},
      // Control flow.
      {"JMP", InstrCategory::Branch, ExtClass::Base, {{BranchOnly, 1.0}},
       2 * S, 0},
      {"JCC", InstrCategory::Branch, ExtClass::Base, {{BranchWide, 1.0}},
       6 * S, 0},
      // Memory.
      {"LOAD", InstrCategory::Load, ExtClass::Base, {{LoadAgu, 1.0}}, 8 * S,
       0},
      {"STORE", InstrCategory::Store, ExtClass::Base,
       {{StoreAgu, 1.0}, {StoreData, 1.0}}, 6 * S, 0},
      // SSE.
      {"ADDSS", InstrCategory::FpAdd, ExtClass::Sse, {{FpVec, 1.0}}, 6 * S,
       3 * S},
      {"MULSS", InstrCategory::FpMul, ExtClass::Sse, {{FpVec, 1.0}}, 6 * S,
       2 * S},
      {"DIVSS", InstrCategory::FpDiv, ExtClass::Sse, {{Div, 4.0}}, 2 * S, 0},
      {"PADD", InstrCategory::VecInt, ExtClass::Sse, {{VecAll, 1.0}}, 8 * S,
       3 * S},
      {"PSHUF", InstrCategory::VecShuffle, ExtClass::Sse,
       {{ShuffleOnly, 1.0}}, 4 * S, 0},
      {"CVT", InstrCategory::Other, ExtClass::Sse,
       {{FpVec, 1.0}, {FpVec, 1.0}}, 3 * S, 0},
      // AVX.
      {"VADDPS", InstrCategory::FpAdd, ExtClass::Avx, {{FpVec, 1.0}}, 6 * S,
       3 * S},
      {"VMULPS", InstrCategory::FpMul, ExtClass::Avx, {{FpVec, 1.0}}, 6 * S,
       2 * S},
      {"VDIVPS", InstrCategory::FpDiv, ExtClass::Avx, {{Div, 5.0}}, 2 * S, 0},
      {"VPADD", InstrCategory::VecInt, ExtClass::Avx, {{VecAll, 1.0}}, 6 * S,
       2 * S},
      {"VPERM", InstrCategory::VecShuffle, ExtClass::Avx,
       {{ShuffleOnly, 1.0}}, 3 * S, 0},
      {"VFMA", InstrCategory::FpMul, ExtClass::Avx, {{FpVec, 1.0}}, 4 * S,
       2 * S},
  };

  populateSyntheticIsa(B, Recipes, LoadOp);
  return B.build();
}

MachineModel palmed::makeZenLike(int Scale) {
  assert(Scale >= 1 && "scale must be positive");
  const int S = Scale;
  MachineBuilder B("zen-like");
  // Split pipelines: i0..i3 integer ALUs, ag0/ag1 AGUs, sd store data,
  // f0..f3 floating-point pipes.
  for (const char *Name : {"i0", "i1", "i2", "i3", "ag0", "ag1", "sd", "f0",
                           "f1", "f2", "f3"})
    B.addPort(Name);
  // The paper reports a maximal measured IPC of 5 on ZEN1 (front-end).
  B.setDecodeWidth(5);

  const PortMask IntAlu = portMask({0, 1, 2, 3});
  const PortMask Shift = portMask({0, 1});
  const PortMask Mul = portMask({3});
  const PortMask Lea = portMask({1, 2});
  const PortMask BranchOnly = portMask({0});
  const PortMask BranchWide = portMask({0, 3});
  const PortMask LoadAgu = portMask({4, 5});
  const PortMask StoreData = portMask({6});
  const PortMask IntDiv = portMask({3});
  const PortMask FpAdd = portMask({9, 10});
  const PortMask FpMul = portMask({7, 8});
  const PortMask FpDiv = portMask({10});
  const PortMask VecInt = portMask({7, 8, 9});
  const PortMask Shuffle = portMask({8});

  const MicroOpDesc LoadOp{LoadAgu, 1.0};
  const MicroOpDesc Fp128Add{FpAdd, 1.0};
  const MicroOpDesc Fp128Mul{FpMul, 1.0};
  const MicroOpDesc Vec128{VecInt, 1.0};

  std::vector<CategoryRecipe> Recipes = {
      {"ADD", InstrCategory::IntAlu, ExtClass::Base, {{IntAlu, 1.0}}, 10 * S,
       3 * S},
      {"SUB", InstrCategory::IntAlu, ExtClass::Base, {{IntAlu, 1.0}}, 8 * S,
       2 * S},
      {"AND", InstrCategory::IntAlu, ExtClass::Base, {{IntAlu, 1.0}}, 6 * S,
       0},
      {"ORR", InstrCategory::IntAlu, ExtClass::Base, {{IntAlu, 1.0}}, 4 * S,
       0},
      {"CMP", InstrCategory::IntAlu, ExtClass::Base, {{IntAlu, 1.0}}, 6 * S,
       0},
      {"MOVR", InstrCategory::IntAlu, ExtClass::Base, {{IntAlu, 1.0}}, 4 * S,
       0},
      {"SHL", InstrCategory::Shift, ExtClass::Base, {{Shift, 1.0}}, 5 * S, 0},
      {"IMUL", InstrCategory::IntMul, ExtClass::Base, {{Mul, 1.0}}, 5 * S, 0},
      {"DIV32", InstrCategory::IntDiv, ExtClass::Base, {{IntDiv, 6.0}}, 2 * S,
       0},
      {"CRC", InstrCategory::Other, ExtClass::Base, {{IntDiv, 1.0}}, 2 * S,
       0},
      {"DIV64", InstrCategory::IntDiv, ExtClass::Base, {{IntDiv, 9.0}}, 1 * S,
       0},
      {"LEA", InstrCategory::AddressGen, ExtClass::Base, {{Lea, 1.0}}, 4 * S,
       0},
      {"JMP", InstrCategory::Branch, ExtClass::Base, {{BranchOnly, 1.0}},
       2 * S, 0},
      {"JCC", InstrCategory::Branch, ExtClass::Base, {{BranchWide, 1.0}},
       5 * S, 0},
      {"LOAD", InstrCategory::Load, ExtClass::Base, {{LoadAgu, 1.0}}, 8 * S,
       0},
      {"STORE", InstrCategory::Store, ExtClass::Base,
       {{LoadAgu, 1.0}, {StoreData, 1.0}}, 6 * S, 0},
      // SSE (single 128-bit µOP).
      {"ADDSS", InstrCategory::FpAdd, ExtClass::Sse, {Fp128Add}, 6 * S,
       3 * S},
      {"MULSS", InstrCategory::FpMul, ExtClass::Sse, {Fp128Mul}, 6 * S,
       2 * S},
      {"DIVSS", InstrCategory::FpDiv, ExtClass::Sse, {{FpDiv, 5.0}}, 2 * S,
       0},
      {"PADD", InstrCategory::VecInt, ExtClass::Sse, {Vec128}, 6 * S, 2 * S},
      {"PSHUF", InstrCategory::VecShuffle, ExtClass::Sse, {{Shuffle, 1.0}},
       4 * S, 0},
      // f3-exclusive pipelined op, isolating the divider pipe.
      {"FCVT", InstrCategory::Other, ExtClass::Sse, {{FpDiv, 1.0}}, 3 * S,
       0},
      // AVX: 256-bit operations split into two 128-bit µOPs on Zen1.
      {"VADDPS", InstrCategory::FpAdd, ExtClass::Avx, {Fp128Add, Fp128Add},
       5 * S, 2 * S},
      {"VMULPS", InstrCategory::FpMul, ExtClass::Avx, {Fp128Mul, Fp128Mul},
       5 * S, 2 * S},
      {"VPADD", InstrCategory::VecInt, ExtClass::Avx, {Vec128, Vec128},
       4 * S, 0},
      {"VDIVPS", InstrCategory::FpDiv, ExtClass::Avx,
       {{FpDiv, 5.0}, {FpDiv, 5.0}}, 1 * S, 0},
  };

  populateSyntheticIsa(B, Recipes, LoadOp);
  return B.build();
}
