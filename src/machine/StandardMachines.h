//===- machine/StandardMachines.h - Shipped machine models -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shipped simulated machines standing in for the paper's evaluation
/// hardware:
///
///  * makeFig1Machine — the six-instruction p0/p1/p6 Skylake subset used as
///    the running example (paper Fig. 1 / Fig. 2).
///  * makeSklLike     — an 8-port Skylake-flavoured machine: unified
///    scheduler, decode width 4 (the paper's "maximal IPC of 4 on SKL-SP"),
///    non-pipelined dividers on p0, and an SSE/AVX mixing penalty.
///  * makeZenLike     — a Zen1-flavoured machine with *split* integer and
///    floating-point pipelines and decode width 5; AVX instructions split
///    into two 128-bit µOPs as on real Zen1. The split pipeline is the
///    structure the paper blames for Palmed's higher error on ZEN1.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_MACHINE_STANDARDMACHINES_H
#define PALMED_MACHINE_STANDARDMACHINES_H

#include "machine/MachineModel.h"

namespace palmed {

/// Paper Fig. 1 running example: ports p0, p1, p6 and instructions
/// DIVPS, VCVTT, ADDSS, BSR, JNLE, JMP.
MachineModel makeFig1Machine();

/// Skylake-like machine. \p Scale >= 1 multiplies the number of synthetic
/// instruction variants per recipe (Scale 1 yields roughly 300
/// instructions).
MachineModel makeSklLike(int Scale = 1);

/// Zen1-like machine with split int/FP pipelines (see file comment).
MachineModel makeZenLike(int Scale = 1);

} // namespace palmed

#endif // PALMED_MACHINE_STANDARDMACHINES_H
