//===- machine/MachineBuilder.cpp - Fluent machine construction ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineBuilder.h"

#include <stdexcept>

using namespace palmed;

unsigned MachineBuilder::addPort(std::string PortName) {
  Ports.push_back(std::move(PortName));
  return static_cast<unsigned>(Ports.size() - 1);
}

InstrId MachineBuilder::addInstruction(InstrInfo Info,
                                       std::vector<MicroOpDesc> MicroOps) {
  assert(!MicroOps.empty() && "instruction needs at least one micro-op");
  // Reject out-of-range port references loudly (historically a silent UB
  // shift past the mask width, and in Release builds an invalid machine
  // that only tripped downstream). Ports must be declared before the
  // instructions that use them.
  for (const MicroOpDesc &Op : MicroOps) {
    if (Op.Ports.none())
      throw std::invalid_argument("MachineBuilder: instruction '" +
                                  Info.Name + "' has a µOP with an empty "
                                  "port set");
    if (size_t Last = Op.Ports.findLast(); Last >= Ports.size())
      throw std::out_of_range(
          "MachineBuilder: instruction '" + Info.Name +
          "' references port " + std::to_string(Last) + " but only " +
          std::to_string(Ports.size()) +
          " ports are declared (declare ports before instructions)");
  }
  InstrId Id = Isa.add(std::move(Info));
  InstrExec E;
  E.MicroOps = std::move(MicroOps);
  Execs.push_back(std::move(E));
  return Id;
}

InstrId MachineBuilder::addSimpleInstruction(InstrInfo Info, PortMask Ports,
                                             double Occupancy) {
  return addInstruction(std::move(Info), {{Ports, Occupancy}});
}

MachineModel MachineBuilder::build() {
  return MachineModel(std::move(Name), std::move(Ports), std::move(Isa),
                      std::move(Execs), DecodeWidth, ExtMixPenalty);
}
