//===- machine/MachineBuilder.cpp - Fluent machine construction ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineBuilder.h"

using namespace palmed;

unsigned MachineBuilder::addPort(std::string PortName) {
  assert(Ports.size() < MaxPorts && "too many ports");
  Ports.push_back(std::move(PortName));
  return static_cast<unsigned>(Ports.size() - 1);
}

InstrId MachineBuilder::addInstruction(InstrInfo Info,
                                       std::vector<MicroOpDesc> MicroOps) {
  assert(!MicroOps.empty() && "instruction needs at least one micro-op");
  InstrId Id = Isa.add(std::move(Info));
  InstrExec E;
  E.MicroOps = std::move(MicroOps);
  Execs.push_back(std::move(E));
  return Id;
}

InstrId MachineBuilder::addSimpleInstruction(InstrInfo Info, PortMask Ports,
                                             double Occupancy) {
  return addInstruction(std::move(Info), {{Ports, Occupancy}});
}

MachineModel MachineBuilder::build() {
  return MachineModel(std::move(Name), std::move(Ports), std::move(Isa),
                      std::move(Execs), DecodeWidth, ExtMixPenalty);
}
