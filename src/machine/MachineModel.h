//===- machine/MachineModel.h - Ground-truth disjunctive model -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground-truth CPU description: a *disjunctive port mapping* (paper
/// Def. A.2) — instructions decompose into µOPs, each µOP may execute on any
/// port of its port set — extended with the non-port bottlenecks the paper
/// highlights (decode width, non-pipelined units via per-µOP occupancy, and
/// the SSE/AVX mixing penalty of Sec. VI-A).
///
/// This plays the role of the physical SKL-SP / ZEN1 chips in the paper:
/// Palmed never reads it directly; it only observes cycle measurements
/// produced from it by the sim/ oracles. Baselines with "manual expertise"
/// (uops.info, IACA stand-ins) *are* allowed to read it.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_MACHINE_MACHINEMODEL_H
#define PALMED_MACHINE_MACHINEMODEL_H

#include "isa/InstructionSet.h"
#include "isa/Microkernel.h"
#include "support/BitSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace palmed {

/// Bit set of execution ports; bit i corresponds to port i. A dynamic
/// BitSet: machines are no longer capped at 32 ports (sets of up to 64
/// ports stay allocation-free in the small buffer).
using PortMask = BitSet;

/// Sanity bound on port indices accepted by portMask(); far above any
/// plausible machine, it exists only to turn garbage indices (the old
/// silent-UB shifts) into a loud error.
constexpr unsigned MaxPortIndex = 4096;

/// Returns a mask with the given port indices set. Throws
/// std::out_of_range on indices >= MaxPortIndex.
PortMask portMask(std::initializer_list<unsigned> Ports);

/// Number of ports in \p Mask.
unsigned portCount(const PortMask &Mask);

/// One µOP: a set of admissible ports and the number of cycles the chosen
/// port stays busy (1 for fully pipelined units; >1 models non-pipelined
/// units such as dividers, paper Sec. II "non-pipelined instructions like
/// division").
struct MicroOpDesc {
  PortMask Ports;
  double Occupancy = 1.0;
};

/// Execution resources of one instruction: its µOP decomposition.
struct InstrExec {
  std::vector<MicroOpDesc> MicroOps;

  double totalMicroOps() const {
    return static_cast<double>(MicroOps.size());
  }
};

/// A complete machine: ports, per-instruction µOP decomposition, front-end
/// width, and the vector-extension mixing penalty.
class MachineModel {
public:
  MachineModel(std::string Name, std::vector<std::string> PortNames,
               InstructionSet Isa, std::vector<InstrExec> Execs,
               unsigned DecodeWidth, double ExtMixPenalty);

  const std::string &name() const { return Name; }
  unsigned numPorts() const { return static_cast<unsigned>(PortNames.size()); }
  const std::string &portName(unsigned Port) const {
    return PortNames[Port];
  }

  const InstructionSet &isa() const { return Isa; }
  size_t numInstructions() const { return Isa.size(); }

  const InstrExec &exec(InstrId Id) const {
    assert(Id < Execs.size() && "instruction id out of range");
    return Execs[Id];
  }

  /// Decode width W: at most W instructions enter the back-end per cycle.
  /// Zero means "unlimited" (no front-end bottleneck).
  unsigned decodeWidth() const { return DecodeWidth; }

  /// Multiplier applied to the execution time of kernels mixing SSE and AVX
  /// instructions (1.0 + penalty); models the transition stalls that made
  /// the paper forbid such benchmarks.
  double extMixPenalty() const { return ExtMixPenalty; }

  /// True if \p K contains both an Sse and an Avx instruction.
  bool kernelMixesExtensions(const Microkernel &K) const;

  /// Slowdown factor for \p K (1.0, or 1 + extMixPenalty() when mixing).
  double mixFactor(const Microkernel &K) const {
    return kernelMixesExtensions(K) ? 1.0 + ExtMixPenalty : 1.0;
  }

  /// Checks structural invariants (non-empty decompositions, masks within
  /// numPorts, positive occupancies). Asserts in debug builds; returns
  /// false on violation in release builds.
  bool validate() const;

private:
  std::string Name;
  std::vector<std::string> PortNames;
  InstructionSet Isa;
  std::vector<InstrExec> Execs;
  unsigned DecodeWidth;
  double ExtMixPenalty;
};

} // namespace palmed

#endif // PALMED_MACHINE_MACHINEMODEL_H
