//===- support/Statistics.h - Accuracy and summary statistics --*- C++ -*-===//
//
// Part of the PALMED reproduction. Statistical helpers used by the
// evaluation harness (paper Sec. VI) and by tests.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics: weighted root-mean-square relative error (the paper's
/// Err metric), Kendall's tau rank-correlation coefficient (both the naive
/// quadratic form and an O(n log n) merge-sort form), and small helpers.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_STATISTICS_H
#define PALMED_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace palmed {

/// Arithmetic mean of \p Values. Returns 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Weighted root-mean-square of the relative error between \p Predicted and
/// \p Native, following the paper's Fig. 4b definition:
///
///   Err = sqrt( sum_i (w_i / sum_j w_j) * ((pred_i - native_i)/native_i)^2 )
///
/// Entries whose native value is zero are skipped (they carry no defined
/// relative error). If \p Weights is empty, uniform weights are used.
double weightedRmsRelativeError(const std::vector<double> &Predicted,
                                const std::vector<double> &Native,
                                const std::vector<double> &Weights = {});

/// Kendall's tau-a rank correlation between \p A and \p B, computed naively
/// in O(n^2). Pairs tied in either sequence contribute zero. Used as a
/// reference implementation in tests.
double kendallTauNaive(const std::vector<double> &A,
                       const std::vector<double> &B);

/// Kendall's tau-b rank correlation in O(n log n) via merge-sort inversion
/// counting, with the standard tie correction. For tie-free inputs tau-a and
/// tau-b coincide.
double kendallTau(const std::vector<double> &A, const std::vector<double> &B);

/// Running mean/variance accumulator (Welford's algorithm).
class RunningStats {
public:
  void add(double X);
  size_t count() const { return N; }
  double mean() const { return N == 0 ? 0.0 : Mean; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return Min; }
  double max() const { return Max; }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

} // namespace palmed

#endif // PALMED_SUPPORT_STATISTICS_H
