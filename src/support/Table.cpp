//===- support/Table.cpp - Plain-text and CSV table printing -------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>
#include <ostream>

using namespace palmed;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() <= Header.size() && "row wider than header");
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

void TextTable::addSeparator() { Rows.emplace_back(); }

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Header.size(); ++C) {
      const std::string &Cell = C < Row.size() ? Row[C] : std::string();
      OS << Cell;
      if (C + 1 != Header.size())
        OS << std::string(Widths[C] - Cell.size() + 2, ' ');
    }
    OS << '\n';
  };

  size_t TotalWidth = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    TotalWidth += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);

  PrintRow(Header);
  OS << std::string(TotalWidth, '-') << '\n';
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      OS << std::string(TotalWidth, '-') << '\n';
      continue;
    }
    PrintRow(Row);
  }
}

void TextTable::printCsv(std::ostream &OS) const {
  auto Escape = [](const std::string &Cell) {
    bool NeedsQuote = Cell.find_first_of(",\"\n") != std::string::npos;
    if (!NeedsQuote)
      return Cell;
    std::string Out = "\"";
    for (char Ch : Cell) {
      if (Ch == '"')
        Out += '"';
      Out += Ch;
    }
    Out += '"';
    return Out;
  };
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Header.size(); ++C) {
      if (C)
        OS << ',';
      if (C < Row.size())
        OS << Escape(Row[C]);
    }
    OS << '\n';
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    if (!Row.empty())
      PrintRow(Row);
}

std::string TextTable::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string TextTable::fmt(int64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Value));
  return Buf;
}
