//===- support/BitSet.h - Small-buffer dynamic bit set ---------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically sized bit set with a one-word small buffer. PortMask and
/// InstrIndexMask are aliases of this type, lifting the historical 32-bit
/// caps on machine ports and basic instructions per shape problem: sets of
/// up to 64 bits (every shipped machine, and the basic sets of all default
/// profiles) live in the inline word with no heap allocation, while larger
/// universes spill to the heap transparently.
///
/// Semantically a BitSet is an arbitrary-precision unsigned integer whose
/// bit i is element i. All comparison operators order by that integer
/// value, independent of how much storage either operand happens to own —
/// exactly the order the old uint32_t masks induced — so every ordered
/// container, sort, and tie-break in the mapping pipeline behaves
/// bit-identically to the fixed-width era whenever the sets fit in one
/// word. Trailing zero words are never stored (the representation is
/// normalized), which keeps equality, ordering, and hashing O(words).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_BITSET_H
#define PALMED_SUPPORT_BITSET_H

#include "support/Compat.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace palmed {

class BitSet {
public:
  /// The empty set.
  BitSet() = default;

  /// The singleton {Index}.
  static BitSet bit(size_t Index) {
    BitSet S;
    S.set(Index);
    return S;
  }

  /// The set whose low 64 bits are \p Word, masked to \p NumBits.
  static BitSet fromWord(uint64_t Word, size_t NumBits = 64) {
    BitSet S;
    S.Single = NumBits >= 64 ? Word
                             : (Word & ((uint64_t{1} << NumBits) - 1));
    return S;
  }

  /// The contiguous range [0, NumBits).
  static BitSet firstN(size_t NumBits);

  bool test(size_t Index) const {
    size_t W = Index / 64;
    return W < numWords() && (word(W) >> (Index % 64)) & 1;
  }

  BitSet &set(size_t Index);
  BitSet &reset(size_t Index);
  BitSet &flip(size_t Index) {
    return test(Index) ? reset(Index) : set(Index);
  }

  bool any() const { return numWords() != 0; }
  bool none() const { return !any(); }
  bool empty() const { return none(); }

  /// Number of elements (population count).
  size_t count() const {
    size_t N = 0;
    for (size_t W = 0; W < numWords(); ++W)
      N += popCount(word(W));
    return N;
  }

  /// Smallest element; requires any().
  size_t findFirst() const;
  /// Largest element; requires any().
  size_t findLast() const;

  /// Calls \p Fn(Index) for every element in increasing order.
  template <typename Fn> void forEachSetBit(Fn &&F) const {
    for (size_t W = 0; W < numWords(); ++W)
      for (uint64_t Bits = word(W); Bits; Bits &= Bits - 1)
        F(W * 64 + countTrailingZeros(Bits));
  }

  /// The elements in increasing order.
  std::vector<size_t> toIndices() const {
    std::vector<size_t> Out;
    Out.reserve(count());
    forEachSetBit([&](size_t I) { Out.push_back(I); });
    return Out;
  }

  bool intersects(const BitSet &O) const;
  bool isSubsetOf(const BitSet &O) const;

  /// Set difference this \ O (the old `A & ~B` idiom without needing a
  /// complement over an explicit universe).
  BitSet without(const BitSet &O) const;

  BitSet &operator|=(const BitSet &O);
  BitSet &operator&=(const BitSet &O);
  BitSet &operator^=(const BitSet &O);

  friend BitSet operator|(BitSet A, const BitSet &B) { return A |= B; }
  friend BitSet operator&(BitSet A, const BitSet &B) { return A &= B; }
  friend BitSet operator^(BitSet A, const BitSet &B) { return A ^= B; }

  BitSet operator<<(size_t Shift) const;
  BitSet operator>>(size_t Shift) const;
  BitSet &operator<<=(size_t Shift) { return *this = *this << Shift; }
  BitSet &operator>>=(size_t Shift) { return *this = *this >> Shift; }

  /// Integer-value comparison (see file comment).
  friend bool operator==(const BitSet &A, const BitSet &B);
  friend bool operator!=(const BitSet &A, const BitSet &B) {
    return !(A == B);
  }
  friend bool operator<(const BitSet &A, const BitSet &B);
  friend bool operator>(const BitSet &A, const BitSet &B) { return B < A; }
  friend bool operator<=(const BitSet &A, const BitSet &B) {
    return !(B < A);
  }
  friend bool operator>=(const BitSet &A, const BitSet &B) {
    return !(A < B);
  }

  /// The value as one word; requires findLast() < 64 (or empty).
  uint64_t toUint64() const;

  /// Stable hash of the value (normalization makes equal sets hash equal
  /// regardless of construction history).
  size_t hash() const;

  /// Human-readable "{0, 3, 17}" form for diagnostics.
  std::string str() const;

private:
  static unsigned countTrailingZeros(uint64_t Bits) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(Bits));
#else
    unsigned N = 0;
    for (; !(Bits & 1); Bits >>= 1)
      ++N;
    return N;
#endif
  }

  /// Number of stored (significant) words; the invariant keeps the top
  /// stored word nonzero, so this doubles as the value's word width.
  size_t numWords() const {
    return Multi.empty() ? (Single != 0 ? 1 : 0) : Multi.size();
  }
  uint64_t word(size_t W) const {
    return Multi.empty() ? Single : Multi[W];
  }

  /// Re-establishes the invariants after arbitrary word surgery.
  void normalize();
  /// Grows storage to at least \p Words words (zero-filled) and returns a
  /// mutable view; the caller must normalize() afterwards.
  std::vector<uint64_t> &spill(size_t Words);

  // Invariants: either Multi is empty and the value is Single (possibly
  // 0), or Multi.size() >= 2 with Multi.back() != 0 and Single == 0.
  uint64_t Single = 0;
  std::vector<uint64_t> Multi;
};

bool operator==(const BitSet &A, const BitSet &B);
bool operator<(const BitSet &A, const BitSet &B);

} // namespace palmed

namespace std {
template <> struct hash<palmed::BitSet> {
  size_t operator()(const palmed::BitSet &S) const { return S.hash(); }
};
} // namespace std

#endif // PALMED_SUPPORT_BITSET_H
