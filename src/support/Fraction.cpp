//===- support/Fraction.cpp - Bounded rational approximation -------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Fraction.h"

#include <cassert>
#include <cmath>

using namespace palmed;

int64_t palmed::gcd(int64_t A, int64_t B) {
  assert(A >= 0 && B >= 0 && "gcd expects non-negative inputs");
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t palmed::lcm(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd(A, B);
  int64_t L = (A / G) * B;
  assert(L > 0 && "lcm overflow");
  return L;
}

Fraction palmed::approximateRatio(double X, int64_t MaxDenominator) {
  assert(X >= 0.0 && std::isfinite(X) && "invalid input");
  assert(MaxDenominator >= 1 && "denominator bound must be positive");

  double Integer = std::floor(X);
  double Frac = X - Integer;
  int64_t Whole = static_cast<int64_t>(Integer);

  // Stern-Brocot walk between Lo = 0/1 and Hi = 1/1 for the fractional part.
  int64_t LoN = 0, LoD = 1, HiN = 1, HiD = 1;
  int64_t BestN = 0, BestD = 1;
  double BestErr = Frac;
  if (std::abs(Frac - 1.0) < BestErr) {
    BestN = 1;
    BestD = 1;
    BestErr = std::abs(Frac - 1.0);
  }
  while (LoD + HiD <= MaxDenominator) {
    int64_t MidN = LoN + HiN;
    int64_t MidD = LoD + HiD;
    double Mid = static_cast<double>(MidN) / MidD;
    double Err = std::abs(Frac - Mid);
    if (Err < BestErr) {
      BestErr = Err;
      BestN = MidN;
      BestD = MidD;
    }
    if (Frac > Mid) {
      LoN = MidN;
      LoD = MidD;
    } else if (Frac < Mid) {
      HiN = MidN;
      HiD = MidD;
    } else {
      break;
    }
  }

  Fraction Result;
  Result.Num = Whole * BestD + BestN;
  Result.Den = BestD;
  int64_t G = gcd(Result.Num, Result.Den);
  if (G > 1) {
    Result.Num /= G;
    Result.Den /= G;
  }
  return Result;
}
