//===- support/Table.h - Plain-text and CSV table printing -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-width text table and CSV emitter used by the benchmark
/// harness to regenerate the paper's tables (Fig. 4b, Table I, Table II).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_TABLE_H
#define PALMED_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace palmed {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends a data row; it may be shorter than the header (missing cells
  /// render empty) but must not be longer.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders with two-space column gaps and a separator under the header.
  void print(std::ostream &OS) const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes escaped).
  void printCsv(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

  /// Formats a double with \p Precision digits after the decimal point.
  static std::string fmt(double Value, int Precision = 2);

  /// Formats an integer count.
  static std::string fmt(int64_t Value);

private:
  std::vector<std::string> Header;
  /// A row; an empty vector encodes a separator.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace palmed

#endif // PALMED_SUPPORT_TABLE_H
