//===- support/Executor.h - Shared worker pool -----------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrency substrate shared by every parallel fan-out in the
/// project (EvalSession lanes, selection benchmarks, LPAUX solves): a
/// fixed-width worker pool with a single primitive, parallelFor.
///
/// Determinism contract: parallelFor imposes no order on the work items,
/// so parallel-safe callers write each item's result into a pre-allocated,
/// index-addressed slot and run every order-sensitive reduction serially
/// on the calling thread afterwards. Code written that way produces
/// bit-identical results for any worker count, including the inline
/// serial path.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_EXECUTOR_H
#define PALMED_SUPPORT_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace palmed {

/// A fixed pool of NumThreads workers (the calling thread counts as worker
/// 0; NumThreads - 1 helper threads are spawned lazily on the first
/// parallel call). Not reentrant: parallelFor must not be called from
/// inside a work item, and only one thread may drive an Executor at a
/// time.
class Executor {
public:
  /// \p NumThreads is the total worker count and must already be resolved
  /// (>= 1); use resolveThreadCount for the 0 = "auto" convention.
  explicit Executor(unsigned NumThreads = 1);
  ~Executor();

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  /// Resolves a requested thread count: 0 means "auto", i.e.
  /// std::thread::hardware_concurrency() clamped to [1, MaxAutoThreads]
  /// (hardware_concurrency may legitimately return 0, in which case the
  /// historical default of 4 is used). Nonzero requests are taken as-is.
  static unsigned resolveThreadCount(unsigned Requested);

  /// Upper clamp of the "auto" thread count; explicit requests may exceed
  /// it.
  static constexpr unsigned MaxAutoThreads = 64;

  /// Total worker count (>= 1), including the calling thread.
  unsigned numWorkers() const { return NumWorkers; }

  using WorkFn = std::function<void(size_t Index, unsigned Worker)>;

  /// Runs Fn(Index, Worker) for every Index in [0, NumItems), in
  /// unspecified order, with Worker in [0, numWorkers()). With one worker
  /// (or one item) runs inline on the calling thread in index order. The
  /// calling thread participates as a worker and the call returns only
  /// after every claimed item finished. If any item throws, the remaining
  /// unclaimed items are abandoned and the first exception is rethrown on
  /// the calling thread.
  void parallelFor(size_t NumItems, const WorkFn &Fn);

private:
  void helperLoop(unsigned Worker);
  void runItems(unsigned Worker);

  const unsigned NumWorkers;
  std::vector<std::thread> Helpers;

  std::mutex M;
  std::condition_variable WakeCv; ///< Helpers sleep here between jobs.
  std::condition_variable DoneCv; ///< parallelFor waits here for helpers.
  bool Stop = false;
  uint64_t Generation = 0;   ///< Bumped per job; helpers latch it.
  unsigned HelpersBusy = 0;  ///< Helpers still inside the current job.

  // Current-job state. Fn/NumItems are published under M before the
  // generation bump; Next is claimed lock-free by the workers.
  const WorkFn *JobFn = nullptr;
  size_t JobNumItems = 0;
  std::atomic<size_t> JobNext{0};
  std::exception_ptr JobError;
};

} // namespace palmed

#endif // PALMED_SUPPORT_EXECUTOR_H
