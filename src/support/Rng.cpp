//===- support/Rng.cpp - Deterministic random number generation ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cmath>

using namespace palmed;

namespace {

uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

} // namespace

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Lane : State)
    Lane = splitmix64(S);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if (State[0] == 0 && State[1] == 0 && State[2] == 0 && State[3] == 0)
    State[0] = 1;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::uniformInt(uint64_t Bound) {
  assert(Bound > 0 && "uniformInt bound must be positive");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::uniformIntIn(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(uniformInt(Span));
}

double Rng::uniformReal() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformRealIn(double Lo, double Hi) {
  return Lo + (Hi - Lo) * uniformReal();
}

double Rng::normal() {
  if (HasSpareNormal) {
    HasSpareNormal = false;
    return SpareNormal;
  }
  double U1, U2;
  do {
    U1 = uniformReal();
  } while (U1 <= 0.0);
  U2 = uniformReal();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  SpareNormal = R * std::sin(Theta);
  HasSpareNormal = true;
  return R * std::cos(Theta);
}

double Rng::normal(double Mean, double StdDev) {
  return Mean + StdDev * normal();
}

uint64_t Rng::zipf(uint64_t N, double S) {
  assert(N > 0 && "zipf over empty support");
  // Inverse CDF by linear scan; N is small (ranks of generated blocks).
  double Norm = 0.0;
  for (uint64_t K = 1; K <= N; ++K)
    Norm += 1.0 / std::pow(static_cast<double>(K), S);
  double U = uniformReal() * Norm;
  double Acc = 0.0;
  for (uint64_t K = 1; K <= N; ++K) {
    Acc += 1.0 / std::pow(static_cast<double>(K), S);
    if (U <= Acc)
      return K;
  }
  return N;
}

size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative weight");
    Total += W;
  }
  assert(Total > 0.0 && "all weights zero");
  double U = uniformReal() * Total;
  double Acc = 0.0;
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    Acc += Weights[I];
    if (U <= Acc)
      return I;
  }
  return Weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }
