//===- support/Fraction.h - Bounded rational approximation -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rational approximation with bounded denominator, used to round microkernel
/// multiplicities within the 5% measurement tolerance of paper Sec. VI-A
/// (e.g. a benchmark "a^0.06 b^1" becomes "a^1 b^20" after scaling).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_FRACTION_H
#define PALMED_SUPPORT_FRACTION_H

#include <cstdint>

namespace palmed {

/// A non-negative rational number Num/Den with Den >= 1.
struct Fraction {
  int64_t Num = 0;
  int64_t Den = 1;

  double toDouble() const { return static_cast<double>(Num) / Den; }
  bool operator==(const Fraction &O) const {
    return Num * O.Den == O.Num * Den;
  }
};

/// Best rational approximation of \p X with denominator at most
/// \p MaxDenominator, via the Stern-Brocot tree. \p X must be non-negative
/// and finite.
Fraction approximateRatio(double X, int64_t MaxDenominator);

/// Greatest common divisor (non-negative inputs).
int64_t gcd(int64_t A, int64_t B);

/// Least common multiple; asserts on overflow-prone inputs used here.
int64_t lcm(int64_t A, int64_t B);

} // namespace palmed

#endif // PALMED_SUPPORT_FRACTION_H
