//===- support/Statistics.cpp - Accuracy and summary statistics ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

using namespace palmed;

double palmed::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return std::accumulate(Values.begin(), Values.end(), 0.0) /
         static_cast<double>(Values.size());
}

double palmed::weightedRmsRelativeError(const std::vector<double> &Predicted,
                                        const std::vector<double> &Native,
                                        const std::vector<double> &Weights) {
  assert(Predicted.size() == Native.size() && "size mismatch");
  assert((Weights.empty() || Weights.size() == Native.size()) &&
         "weight size mismatch");
  double WeightSum = 0.0;
  double ErrSum = 0.0;
  for (size_t I = 0, E = Native.size(); I != E; ++I) {
    if (Native[I] == 0.0)
      continue;
    double W = Weights.empty() ? 1.0 : Weights[I];
    double Rel = (Predicted[I] - Native[I]) / Native[I];
    WeightSum += W;
    ErrSum += W * Rel * Rel;
  }
  if (WeightSum == 0.0)
    return 0.0;
  return std::sqrt(ErrSum / WeightSum);
}

double palmed::kendallTauNaive(const std::vector<double> &A,
                               const std::vector<double> &B) {
  assert(A.size() == B.size() && "size mismatch");
  size_t N = A.size();
  if (N < 2)
    return 0.0;
  int64_t Concordant = 0, Discordant = 0;
  int64_t TiesA = 0, TiesB = 0;
  for (size_t I = 0; I + 1 < N; ++I) {
    for (size_t J = I + 1; J < N; ++J) {
      double DA = A[I] - A[J];
      double DB = B[I] - B[J];
      if (DA == 0.0 && DB == 0.0) {
        ++TiesA;
        ++TiesB;
        continue;
      }
      if (DA == 0.0) {
        ++TiesA;
        continue;
      }
      if (DB == 0.0) {
        ++TiesB;
        continue;
      }
      if ((DA > 0) == (DB > 0))
        ++Concordant;
      else
        ++Discordant;
    }
  }
  int64_t Total = static_cast<int64_t>(N) * static_cast<int64_t>(N - 1) / 2;
  double Denom = std::sqrt(static_cast<double>(Total - TiesA)) *
                 std::sqrt(static_cast<double>(Total - TiesB));
  if (Denom == 0.0)
    return 0.0;
  return static_cast<double>(Concordant - Discordant) / Denom;
}

namespace {

/// Counts inversions of \p Values in-place via merge sort.
int64_t countInversions(std::vector<double> &Values, size_t Lo, size_t Hi,
                        std::vector<double> &Scratch) {
  if (Hi - Lo < 2)
    return 0;
  size_t Mid = Lo + (Hi - Lo) / 2;
  int64_t Count = countInversions(Values, Lo, Mid, Scratch) +
                  countInversions(Values, Mid, Hi, Scratch);
  size_t I = Lo, J = Mid, K = Lo;
  while (I != Mid && J != Hi) {
    if (Values[J] < Values[I]) {
      Count += static_cast<int64_t>(Mid - I);
      Scratch[K++] = Values[J++];
    } else {
      Scratch[K++] = Values[I++];
    }
  }
  while (I != Mid)
    Scratch[K++] = Values[I++];
  while (J != Hi)
    Scratch[K++] = Values[J++];
  std::copy(Scratch.begin() + Lo, Scratch.begin() + Hi, Values.begin() + Lo);
  return Count;
}

/// Sum over groups of equal values of g*(g-1)/2, for tie correction.
int64_t countTiePairs(std::vector<double> Sorted) {
  std::sort(Sorted.begin(), Sorted.end());
  int64_t Pairs = 0;
  size_t I = 0;
  while (I < Sorted.size()) {
    size_t J = I;
    while (J < Sorted.size() && Sorted[J] == Sorted[I])
      ++J;
    int64_t G = static_cast<int64_t>(J - I);
    Pairs += G * (G - 1) / 2;
    I = J;
  }
  return Pairs;
}

} // namespace

double palmed::kendallTau(const std::vector<double> &A,
                          const std::vector<double> &B) {
  assert(A.size() == B.size() && "size mismatch");
  size_t N = A.size();
  if (N < 2)
    return 0.0;

  // Sort indices by A, breaking ties by B, then count the "swaps" needed to
  // sort the B sequence: the classic Knight O(n log n) algorithm.
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::sort(Order.begin(), Order.end(), [&](size_t X, size_t Y) {
    if (A[X] != A[Y])
      return A[X] < A[Y];
    return B[X] < B[Y];
  });

  std::vector<double> BSeq(N);
  for (size_t I = 0; I != N; ++I)
    BSeq[I] = B[Order[I]];

  // Joint ties: pairs equal in both A and B.
  int64_t TiesBoth = 0;
  {
    size_t I = 0;
    while (I < N) {
      size_t J = I;
      while (J < N && A[Order[J]] == A[Order[I]] &&
             B[Order[J]] == B[Order[I]])
        ++J;
      int64_t G = static_cast<int64_t>(J - I);
      TiesBoth += G * (G - 1) / 2;
      I = J;
    }
  }

  int64_t TiesA = countTiePairs(A);
  int64_t TiesB = countTiePairs(B);

  std::vector<double> Scratch(N);
  int64_t Swaps = countInversions(BSeq, 0, N, Scratch);

  int64_t Total = static_cast<int64_t>(N) * static_cast<int64_t>(N - 1) / 2;
  // Discordant pairs are exactly the inversions; concordant pairs are the
  // rest minus all tied pairs (inclusion-exclusion on A-ties and B-ties).
  int64_t Discordant = Swaps;
  int64_t Concordant = Total - TiesA - TiesB + TiesBoth - Discordant;

  double Denom = std::sqrt(static_cast<double>(Total - TiesA)) *
                 std::sqrt(static_cast<double>(Total - TiesB));
  if (Denom == 0.0)
    return 0.0;
  return static_cast<double>(Concordant - Discordant) / Denom;
}

void RunningStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
