//===- support/Approx.h - Shared epsilon comparisons -----------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relative-tolerance comparisons every measurement-driven decision in
/// the pipeline shares (the paper constrains measurement error to 5%).
/// Centralized here so selection, mapping analysis, and the pruned
/// clustering all agree on what "equal within eps" means.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_APPROX_H
#define PALMED_SUPPORT_APPROX_H

#include <algorithm>
#include <cmath>

namespace palmed {

/// Relative difference |X - Y| / max(|X|, |Y|), symmetric in its
/// arguments; 0 when both are 0.
inline double relDiff(double X, double Y) {
  double Scale = std::max(std::abs(X), std::abs(Y));
  if (Scale == 0.0)
    return 0.0;
  return std::abs(X - Y) / Scale;
}

/// True when X and Y agree within the relative tolerance \p Eps.
inline bool approxEqual(double X, double Y, double Eps) {
  return relDiff(X, Y) <= Eps;
}

/// True if \p Combined is additive, i.e. IPC(aabb) = IPC(a) + IPC(b)
/// within the relative tolerance \p Eps — the paper's "disjoint" test for
/// a quadratic pair benchmark.
inline bool isAdditivePair(double Combined, double IpcA, double IpcB,
                           double Eps) {
  double Expected = IpcA + IpcB;
  return std::abs(Combined - Expected) <= Eps * Expected;
}

} // namespace palmed

#endif // PALMED_SUPPORT_APPROX_H
