//===- support/Compat.h - C++17 portability shims --------------*- C++ -*-===//
//
// Part of the PALMED reproduction. Small stand-ins for C++20 library
// facilities, kept so the library also builds under -std=c++17 (the
// project default remains C++20; see the root CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_COMPAT_H
#define PALMED_SUPPORT_COMPAT_H

#include <algorithm>
#include <cstdint>

namespace palmed {

/// Number of set bits in \p Mask. Portable stand-in for C++20
/// std::popcount over raw words (BitSet builds its count() on it).
constexpr unsigned popCount(uint64_t Mask) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_popcountll(Mask));
#else
  unsigned Count = 0;
  for (; Mask; Mask &= Mask - 1)
    ++Count;
  return Count;
#endif
}

/// Erase-remove stand-in for C++20 std::erase_if on sequence containers.
template <typename Container, typename Pred>
void eraseIf(Container &C, Pred P) {
  C.erase(std::remove_if(C.begin(), C.end(), P), C.end());
}

} // namespace palmed

#endif // PALMED_SUPPORT_COMPAT_H
