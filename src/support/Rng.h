//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic, seedable random number generator (xoshiro256**)
/// used everywhere randomness is needed: synthetic ISA generation, workload
/// generation, measurement noise, and the PMEvo evolutionary baseline.
/// Determinism across platforms matters because every experiment in
/// EXPERIMENTS.md is keyed by a seed.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SUPPORT_RNG_H
#define PALMED_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace palmed {

/// Deterministic xoshiro256** generator with convenience distributions.
class Rng {
public:
  /// Seeds the four 64-bit lanes from \p Seed via splitmix64.
  explicit Rng(uint64_t Seed);

  /// Raw 64-bit output.
  uint64_t next();

  /// Uniform integer in [0, Bound), Bound > 0, via rejection sampling.
  uint64_t uniformInt(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t uniformIntIn(int64_t Lo, int64_t Hi);

  /// Uniform real in [0, 1).
  double uniformReal();

  /// Uniform real in [Lo, Hi).
  double uniformRealIn(double Lo, double Hi);

  /// Standard normal variate (Box-Muller).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double Mean, double StdDev);

  /// Zipf-distributed rank in [1, N] with exponent \p S (inverse-CDF over a
  /// precomputable small N; used for basic-block frequency weights).
  uint64_t zipf(uint64_t N, double S);

  /// Bernoulli trial with probability \p P.
  bool chance(double P) { return uniformReal() < P; }

  /// Index sampled proportionally to non-negative \p Weights (at least one
  /// weight must be positive).
  size_t pickWeighted(const std::vector<double> &Weights);

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(uniformInt(I));
      std::swap(V[I - 1], V[J]);
    }
  }

  /// Derives an independent child generator; stable given the call sequence.
  Rng fork();

private:
  uint64_t State[4];
  bool HasSpareNormal = false;
  double SpareNormal = 0.0;
};

} // namespace palmed

#endif // PALMED_SUPPORT_RNG_H
