//===- support/Executor.cpp - Shared worker pool --------------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/Executor.h"

#include <algorithm>
#include <cassert>

using namespace palmed;

unsigned Executor::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    return 4; // hardware_concurrency may legitimately return 0.
  return std::min(Hw, MaxAutoThreads);
}

Executor::Executor(unsigned NumThreads)
    : NumWorkers(NumThreads == 0 ? 1 : NumThreads) {}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Helpers)
    T.join();
}

/// Claims and runs items off the current job until the queue drains. On an
/// exception, records the first error and drains the queue so every worker
/// stops quickly.
void Executor::runItems(unsigned Worker) {
  try {
    for (size_t I = JobNext.fetch_add(1); I < JobNumItems;
         I = JobNext.fetch_add(1))
      (*JobFn)(I, Worker);
  } catch (...) {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (!JobError)
        JobError = std::current_exception();
    }
    JobNext.store(JobNumItems); // Abandon the unclaimed items.
  }
}

void Executor::helperLoop(unsigned Worker) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      WakeCv.wait(Lock, [&] { return Stop || Generation != SeenGeneration; });
      if (Stop)
        return;
      SeenGeneration = Generation;
    }
    runItems(Worker);
    {
      std::lock_guard<std::mutex> Lock(M);
      if (--HelpersBusy == 0)
        DoneCv.notify_all();
    }
  }
}

void Executor::parallelFor(size_t NumItems, const WorkFn &Fn) {
  if (NumItems == 0)
    return;
  if (NumWorkers <= 1 || NumItems == 1) {
    for (size_t I = 0; I < NumItems; ++I)
      Fn(I, 0);
    return;
  }

  // Spawn the helpers on first use.
  if (Helpers.empty()) {
    Helpers.reserve(NumWorkers - 1);
    for (unsigned W = 1; W < NumWorkers; ++W)
      Helpers.emplace_back(&Executor::helperLoop, this, W);
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    assert(HelpersBusy == 0 && "parallelFor is not reentrant");
    JobFn = &Fn;
    JobNumItems = NumItems;
    JobNext.store(0);
    JobError = nullptr;
    HelpersBusy = static_cast<unsigned>(Helpers.size());
    ++Generation;
  }
  WakeCv.notify_all();

  runItems(0); // The caller is worker 0.

  std::unique_lock<std::mutex> Lock(M);
  DoneCv.wait(Lock, [&] { return HelpersBusy == 0; });
  JobFn = nullptr;
  if (JobError) {
    std::exception_ptr E = JobError;
    JobError = nullptr;
    Lock.unlock();
    std::rethrow_exception(E);
  }
}
