//===- support/BitSet.cpp - Small-buffer dynamic bit set ------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/BitSet.h"

#include <algorithm>
#include <cassert>

using namespace palmed;

BitSet BitSet::firstN(size_t NumBits) {
  BitSet S;
  if (NumBits == 0)
    return S;
  size_t Words = (NumBits + 63) / 64;
  if (Words == 1) {
    S.Single = NumBits >= 64 ? ~uint64_t{0}
                             : ((uint64_t{1} << NumBits) - 1);
    return S;
  }
  auto &M = S.spill(Words);
  for (size_t W = 0; W + 1 < Words; ++W)
    M[W] = ~uint64_t{0};
  size_t Rem = NumBits % 64;
  M[Words - 1] = Rem == 0 ? ~uint64_t{0} : ((uint64_t{1} << Rem) - 1);
  S.normalize();
  return S;
}

std::vector<uint64_t> &BitSet::spill(size_t Words) {
  if (Multi.empty()) {
    Multi.assign(std::max<size_t>(Words, 1), 0);
    Multi[0] = Single;
    Single = 0;
  } else if (Multi.size() < Words) {
    Multi.resize(Words, 0);
  }
  return Multi;
}

void BitSet::normalize() {
  if (Multi.empty())
    return;
  while (!Multi.empty() && Multi.back() == 0)
    Multi.pop_back();
  if (Multi.size() <= 1) {
    Single = Multi.empty() ? 0 : Multi[0];
    Multi.clear();
  }
}

BitSet &BitSet::set(size_t Index) {
  size_t W = Index / 64;
  uint64_t Bit = uint64_t{1} << (Index % 64);
  if (W == 0 && Multi.empty()) {
    Single |= Bit;
    return *this;
  }
  spill(W + 1)[W] |= Bit;
  return *this; // Setting a bit cannot create trailing zero words.
}

BitSet &BitSet::reset(size_t Index) {
  size_t W = Index / 64;
  uint64_t Bit = uint64_t{1} << (Index % 64);
  if (W >= numWords())
    return *this;
  if (Multi.empty()) {
    Single &= ~Bit;
  } else {
    Multi[W] &= ~Bit;
    normalize();
  }
  return *this;
}

size_t BitSet::findFirst() const {
  assert(any() && "findFirst on empty set");
  for (size_t W = 0;; ++W)
    if (uint64_t Bits = word(W))
      return W * 64 + countTrailingZeros(Bits);
}

size_t BitSet::findLast() const {
  assert(any() && "findLast on empty set");
  size_t W = numWords() - 1;
  uint64_t Bits = word(W);
  size_t High = 63;
  while (!(Bits >> High))
    --High;
  return W * 64 + High;
}

bool BitSet::intersects(const BitSet &O) const {
  size_t N = std::min(numWords(), O.numWords());
  for (size_t W = 0; W < N; ++W)
    if (word(W) & O.word(W))
      return true;
  return false;
}

bool BitSet::isSubsetOf(const BitSet &O) const {
  for (size_t W = 0; W < numWords(); ++W)
    if (word(W) & ~(W < O.numWords() ? O.word(W) : 0))
      return false;
  return true;
}

BitSet BitSet::without(const BitSet &O) const {
  BitSet Out = *this;
  if (Out.Multi.empty()) {
    Out.Single &= ~O.word(0); // O.word(0) is 0 when O is empty.
    return Out;
  }
  size_t N = std::min(Out.Multi.size(), O.numWords());
  for (size_t W = 0; W < N; ++W)
    Out.Multi[W] &= ~O.word(W);
  Out.normalize();
  return Out;
}

BitSet &BitSet::operator|=(const BitSet &O) {
  if (O.none())
    return *this;
  if (Multi.empty() && O.numWords() <= 1) {
    Single |= O.word(0);
    return *this;
  }
  auto &M = spill(O.numWords());
  for (size_t W = 0; W < O.numWords(); ++W)
    M[W] |= O.word(W);
  return *this; // OR cannot zero the top word.
}

BitSet &BitSet::operator&=(const BitSet &O) {
  if (Multi.empty()) {
    Single &= O.word(0);
    return *this;
  }
  for (size_t W = 0; W < Multi.size(); ++W)
    Multi[W] &= W < O.numWords() ? O.word(W) : 0;
  normalize();
  return *this;
}

BitSet &BitSet::operator^=(const BitSet &O) {
  if (Multi.empty() && O.numWords() <= 1) {
    Single ^= O.word(0);
    return *this;
  }
  auto &M = spill(O.numWords());
  for (size_t W = 0; W < O.numWords(); ++W)
    M[W] ^= O.word(W);
  normalize();
  return *this;
}

BitSet BitSet::operator<<(size_t Shift) const {
  BitSet Out;
  if (none())
    return Out;
  size_t WordShift = Shift / 64, BitShift = Shift % 64;
  size_t N = numWords();
  auto &M = Out.spill(N + WordShift + 1);
  for (size_t W = 0; W < N; ++W) {
    uint64_t V = word(W);
    M[W + WordShift] |= V << BitShift;
    if (BitShift)
      M[W + WordShift + 1] |= V >> (64 - BitShift);
  }
  Out.normalize();
  return Out;
}

BitSet BitSet::operator>>(size_t Shift) const {
  BitSet Out;
  size_t WordShift = Shift / 64, BitShift = Shift % 64;
  size_t N = numWords();
  if (WordShift >= N)
    return Out;
  auto &M = Out.spill(N - WordShift);
  for (size_t W = WordShift; W < N; ++W) {
    uint64_t V = word(W);
    M[W - WordShift] |= V >> BitShift;
    if (BitShift && W - WordShift > 0)
      M[W - WordShift - 1] |= V << (64 - BitShift);
  }
  Out.normalize();
  return Out;
}

bool palmed::operator==(const BitSet &A, const BitSet &B) {
  if (A.numWords() != B.numWords())
    return false;
  for (size_t W = 0; W < A.numWords(); ++W)
    if (A.word(W) != B.word(W))
      return false;
  return true;
}

bool palmed::operator<(const BitSet &A, const BitSet &B) {
  if (A.numWords() != B.numWords())
    return A.numWords() < B.numWords();
  for (size_t W = A.numWords(); W-- > 0;)
    if (A.word(W) != B.word(W))
      return A.word(W) < B.word(W);
  return false;
}

uint64_t BitSet::toUint64() const {
  assert(numWords() <= 1 && "value does not fit in 64 bits");
  return word(0);
}

size_t BitSet::hash() const {
  // FNV-1a over the significant words; normalization guarantees equal
  // values visit identical word sequences.
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t W = 0; W < numWords(); ++W) {
    uint64_t V = word(W);
    for (int B = 0; B < 8; ++B) {
      H ^= (V >> (8 * B)) & 0xff;
      H *= 0x100000001b3ull;
    }
  }
  return static_cast<size_t>(H ^ numWords());
}

std::string BitSet::str() const {
  std::string Out = "{";
  bool First = true;
  forEachSetBit([&](size_t I) {
    if (!First)
      Out += ", ";
    First = false;
    Out += std::to_string(I);
  });
  Out += "}";
  return Out;
}
