//===- core/BwpSolver.cpp - LP2/LPAUX: bipartite weight problem -----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/BwpSolver.h"

#include "lp/Milp.h"
#include "lp/Simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

using namespace palmed;

namespace {

/// All pinned-mode BWP relaxations run the compat solver: the refinement
/// loop and the saturating-kernel choice consume raw solution *vertices*
/// (not just objective values), and degenerate optima make the vertex a
/// function of the pivot sequence — pinning the historical sequence keeps
/// mapping outcomes reproducible across solver generations.
lp::SimplexOptions compatLpOptions() {
  lp::SimplexOptions Options;
  Options.Pricing = lp::LpPricing::Dantzig;
  return Options;
}

/// Shared LP2/LPAUX machinery: free weight variables plus frozen
/// contributions, per-kernel per-resource load rows, pinned or exact-MILP
/// objective handling.
class GenericBwp {
public:
  /// \p TieBreak is a tiny signed per-weight objective coefficient:
  /// positive prefers maximal consistent weights (core problem, where every
  /// resource is capped by many measured kernels), negative prefers minimal
  /// attribution (aux problem, where only the saturation probes provide
  /// evidence).
  /// \p VarScales normalizes weights for the balancing pass (a weight w
  /// with scale s contributes s*w to the balanced maximum; callers pass the
  /// instruction's solo IPC so that "fully saturating alone" compares
  /// equally across instructions). Empty disables balancing.
  GenericBwp(size_t NumResources, size_t NumVars,
             std::vector<double> VarUpperBounds, double TieBreak,
             std::vector<double> VarScales = {})
      : NumResources(NumResources), NumVars(NumVars),
        VarUpperBounds(std::move(VarUpperBounds)), TieBreak(TieBreak),
        VarScales(std::move(VarScales)) {
    assert(this->VarUpperBounds.size() == NumVars);
  }

  struct KernelRow {
    double TMeas = 0.0;
    int Pin = -1;
    /// Frozen load per resource.
    std::vector<double> FrozenLoad;
    /// Variable load per resource: (varIndex, coefficient) terms.
    std::vector<std::vector<std::pair<size_t, double>>> VarLoad;
    /// Resources with any (frozen or variable) contribution.
    std::vector<size_t> Supported;
  };

  void addKernel(KernelRow Row) {
    assert(Row.TMeas > 0.0 && "kernel with non-positive time");
    Row.Supported.clear();
    for (size_t R = 0; R < NumResources; ++R)
      if (Row.FrozenLoad[R] > 0.0 || !Row.VarLoad[R].empty())
        Row.Supported.push_back(R);
    Rows.push_back(std::move(Row));
  }

  /// Solves and returns the variable values; sets \p TotalSlack.
  std::vector<double> solve(BwpMode Mode, int MaxPinIterations,
                            double &TotalSlack, bool &Feasible) {
    std::vector<double> Values =
        Mode == BwpMode::ExactMilp ? solveExact(Feasible)
                                   : solvePinned(MaxPinIterations, Feasible);
    TotalSlack = 0.0;
    if (Feasible)
      for (const KernelRow &Row : Rows)
        TotalSlack += 1.0 - std::min(1.0, maxLoad(Row, Values) / Row.TMeas);
    return Values;
  }

private:
  double load(const KernelRow &Row, size_t R,
              const std::vector<double> &Values) const {
    double L = Row.FrozenLoad[R];
    for (const auto &[V, C] : Row.VarLoad[R])
      L += C * Values[V];
    return L;
  }

  double maxLoad(const KernelRow &Row, const std::vector<double> &Values) const {
    double M = 0.0;
    for (size_t R : Row.Supported)
      M = std::max(M, load(Row, R, Values));
    return M;
  }

  /// Builds the common variable/constraint skeleton. Residuals are clamped
  /// at zero: measurement noise can make a kernel appear *faster* than its
  /// frozen load alone (t < frozen), which would otherwise render the
  /// problem infeasible; the correct reading is "no attributable usage".
  void buildBase(lp::Model &M, std::vector<lp::VarId> &Vars) const {
    for (size_t V = 0; V < NumVars; ++V)
      Vars.push_back(M.addVar(std::string(), 0.0, VarUpperBounds[V]));
    for (const KernelRow &Row : Rows) {
      for (size_t R : Row.Supported) {
        lp::LinearExpr Load;
        for (const auto &[V, C] : Row.VarLoad[R])
          Load.add(Vars[V], C);
        M.addConstraint(std::move(Load), lp::Sense::LE,
                        std::max(0.0, Row.TMeas - Row.FrozenLoad[R]));
      }
    }
  }

  /// Pinned mode exploits the BWP's structure: the capacity constraints
  /// sum weights *within* one resource only, and the pinned objective is a
  /// sum of per-resource terms — so each pin iteration decomposes into one
  /// small LP per resource, keeping the core problem tractable even with
  /// thousands of kernels.
  std::vector<double> solvePinned(int MaxPinIterations, bool &Feasible) {
    // Working pins; fixed pins are respected, free pins start unassigned.
    std::vector<int> Pins(Rows.size(), -1);
    for (size_t K = 0; K < Rows.size(); ++K)
      Pins[K] = Rows[K].Pin;

    // Variables touching each resource (each variable belongs to exactly
    // one resource by construction of the callers).
    std::vector<std::vector<size_t>> ResourceVars(NumResources);
    {
      std::vector<bool> Seen(NumVars, false);
      for (const KernelRow &Row : Rows)
        for (size_t R = 0; R < NumResources; ++R)
          for (const auto &[V, C] : Row.VarLoad[R]) {
            (void)C;
            if (!Seen[V]) {
              Seen[V] = true;
              ResourceVars[R].push_back(V);
            }
          }
    }

    std::vector<double> Values(NumVars, 0.0);
    // Per-resource objective of the last solved iteration: when a pin pass
    // leaves a resource's objective unchanged, its LP (and the balancing
    // passes) would reproduce the exact same solution — the solver is
    // deterministic — so the solve is skipped and Values stay as-is.
    std::vector<std::vector<std::pair<lp::VarId, double>>> PrevObj(
        NumResources);
    std::vector<uint8_t> HasPrev(NumResources, 0);
    Feasible = false;
    for (int Iter = 0; Iter < MaxPinIterations; ++Iter) {
      bool AllSolved = true;
      for (size_t R = 0; R < NumResources; ++R) {
        if (ResourceVars[R].empty())
          continue;
        std::vector<int> LocalOf(NumVars, -1);
        for (size_t I = 0; I < ResourceVars[R].size(); ++I)
          LocalOf[ResourceVars[R][I]] = static_cast<int>(I);
        // Saturation objective (pinned loads); the tie-break is kept in a
        // separate expression so the balancing pass can preserve the
        // saturation value exactly, without the tie-break distorting it.
        // Local variable ids equal their position in ResourceVars[R].
        lp::LinearExpr PinnedObj;
        for (size_t K = 0; K < Rows.size(); ++K) {
          const KernelRow &Row = Rows[K];
          if (Row.VarLoad[R].empty() && Row.FrozenLoad[R] == 0.0)
            continue;
          if (Pins[K] == static_cast<int>(R)) {
            for (const auto &[V, C] : Row.VarLoad[R])
              PinnedObj.add(LocalOf[V], C / Row.TMeas);
          } else if (Pins[K] == -1) {
            // Unpinned (first iteration): spread the objective across the
            // kernel's supported resources.
            double Scale =
                Row.TMeas *
                static_cast<double>(std::max<size_t>(1, Row.Supported.size()));
            for (const auto &[V, C] : Row.VarLoad[R])
              PinnedObj.add(LocalOf[V], C / Scale);
          }
        }
        PinnedObj.normalize();
        if (HasPrev[R] && PrevObj[R] == PinnedObj.terms())
          continue; // Identical subproblem: Values[.] already hold its
                    // solution.

        lp::Model M;
        std::vector<lp::VarId> Vars;
        for (size_t V : ResourceVars[R])
          Vars.push_back(M.addVar(std::string(), 0.0, VarUpperBounds[V]));
        for (const KernelRow &Row : Rows) {
          if (Row.VarLoad[R].empty())
            continue;
          lp::LinearExpr Load;
          for (const auto &[V, C] : Row.VarLoad[R])
            Load.add(Vars[static_cast<size_t>(LocalOf[V])], C);
          M.addConstraint(std::move(Load), lp::Sense::LE,
                          std::max(0.0, Row.TMeas - Row.FrozenLoad[R]));
        }
        lp::LinearExpr Obj = PinnedObj;
        for (lp::VarId V : Vars)
          Obj.add(V, TieBreak);
        M.setObjective(std::move(Obj), lp::Goal::Maximize);
        lp::Solution Sol = lp::solveLp(M, {}, compatLpOptions());
        if (Sol.Status == lp::SolveStatus::Optimal) {
          PrevObj[R] = PinnedObj.terms();
          HasPrev[R] = 1;
        }
        if (Sol.Status != lp::SolveStatus::Optimal) {
          AllSolved = false;
          continue;
        }
        if (!VarScales.empty()) {
          // Balancing pass: the measured kernels often leave the split of
          // a resource's capacity between instructions under-determined
          // (any vertex of the optimal face fits). The dual's weights are
          // uniform per resource (use/|J|), so among the optima prefer the
          // most balanced one: fix the primary objective and minimize the
          // largest scaled weight.
          lp::Model M2;
          std::vector<lp::VarId> Vars2;
          for (size_t V : ResourceVars[R])
            Vars2.push_back(
                M2.addVar(std::string(), 0.0, VarUpperBounds[V]));
          // Re-add the capacity rows.
          for (const KernelRow &Row : Rows) {
            if (Row.VarLoad[R].empty())
              continue;
            lp::LinearExpr Load;
            for (const auto &[V, C] : Row.VarLoad[R])
              Load.add(Vars2[static_cast<size_t>(LocalOf[V])], C);
            M2.addConstraint(std::move(Load), lp::Sense::LE,
                             std::max(0.0, Row.TMeas - Row.FrozenLoad[R]));
          }
          // Keep the saturation-objective value (remap onto the new
          // vars; model M's variable ids coincide with local indices).
          lp::LinearExpr Primary;
          double PinnedValue = 0.0;
          for (const auto &[V, C] : PinnedObj.terms()) {
            Primary.add(Vars2[static_cast<size_t>(V)], C);
            PinnedValue += C * Sol.value(V);
          }
          M2.addConstraint(std::move(Primary), lp::Sense::GE,
                           PinnedValue - 1e-9);
          lp::VarId Z = M2.addVar("z", 0.0, lp::Infinity);
          for (size_t V : ResourceVars[R]) {
            lp::LinearExpr E;
            E.add(Vars2[static_cast<size_t>(LocalOf[V])], VarScales[V])
                .add(Z, -1.0);
            M2.addConstraint(std::move(E), lp::Sense::LE, 0.0);
          }
          lp::LinearExpr Obj2;
          Obj2.add(Z, 1.0);
          M2.setObjective(std::move(Obj2), lp::Goal::Minimize);
          lp::Solution Sol2 = lp::solveLp(M2, {}, compatLpOptions());
          if (Sol2.Status == lp::SolveStatus::Optimal) {
            // Third pass: with the saturation value and the balanced
            // ceiling fixed, raise every weight to its consistent maximum
            // (min-max alone leaves the non-binding weights at arbitrary
            // vertices below the ceiling).
            lp::LinearExpr CapZ;
            CapZ.add(Z, 1.0);
            M2.addConstraint(std::move(CapZ), lp::Sense::LE,
                             Sol2.Objective + 1e-9);
            lp::LinearExpr Obj3;
            for (size_t V : ResourceVars[R])
              Obj3.add(Vars2[static_cast<size_t>(LocalOf[V])], 1.0);
            M2.setObjective(std::move(Obj3), lp::Goal::Maximize);
            lp::Solution Sol3 = lp::solveLp(M2, {}, compatLpOptions());
            const lp::Solution &Fin =
                Sol3.Status == lp::SolveStatus::Optimal ? Sol3 : Sol2;
            for (size_t V : ResourceVars[R])
              Values[V] = Fin.value(Vars2[static_cast<size_t>(LocalOf[V])]);
            continue;
          }
        }
        for (size_t V : ResourceVars[R])
          Values[V] = Sol.value(Vars[static_cast<size_t>(LocalOf[V])]);
      }
      Feasible = AllSolved;
      if (!AllSolved)
        return Values;

      // Re-derive pins for free kernels; stop at a fixed point.
      bool Changed = false;
      for (size_t K = 0; K < Rows.size(); ++K) {
        if (Rows[K].Pin != -1)
          continue; // Fixed by the caller, or constraint-only.
        const KernelRow &Row = Rows[K];
        int BestR = -1;
        double BestLoad = -1.0;
        for (size_t R : Row.Supported) {
          double L = load(Row, R, Values);
          if (L > BestLoad + 1e-12) {
            BestLoad = L;
            BestR = static_cast<int>(R);
          }
        }
        if (BestR != Pins[K]) {
          Pins[K] = BestR;
          Changed = true;
        }
      }
      if (!Changed && Iter > 0)
        break;
    }
    return Values;
  }

  std::vector<double> solveExact(bool &Feasible) {
    lp::Model M;
    std::vector<lp::VarId> Vars;
    buildBase(M, Vars);

    lp::LinearExpr Obj;
    for (size_t K = 0; K < Rows.size(); ++K) {
      const KernelRow &Row = Rows[K];
      if (Row.Supported.empty() || Row.Pin == WeightKernel::ConstraintOnly)
        continue;
      if (Row.Pin >= 0) {
        // Pinned kernels contribute their pinned saturation linearly.
        size_t R = static_cast<size_t>(Row.Pin);
        for (const auto &[V, C] : Row.VarLoad[R])
          Obj.add(Vars[V], C / Row.TMeas);
        continue;
      }
      lp::VarId S = M.addVar("S" + std::to_string(K), 0.0, 1.0);
      Obj.add(S, 1.0);
      lp::LinearExpr PickOne;
      for (size_t R : Row.Supported) {
        lp::VarId Z = M.addBoolVar("z" + std::to_string(K) + "_" +
                                   std::to_string(R));
        PickOne.add(Z, 1.0);
        // S <= load/t + (1 - z)
        lp::LinearExpr E;
        E.add(S, 1.0).add(Z, 1.0);
        for (const auto &[V, C] : Row.VarLoad[R])
          E.add(Vars[V], -C / Row.TMeas);
        M.addConstraint(std::move(E), lp::Sense::LE,
                        1.0 + Row.FrozenLoad[R] / Row.TMeas);
      }
      M.addConstraint(std::move(PickOne), lp::Sense::EQ, 1.0);
    }
    M.setObjective(std::move(Obj), lp::Goal::Maximize);

    lp::Solution Sol = lp::solveMilp(M);
    Feasible = Sol.ok();
    std::vector<double> Values(NumVars, 0.0);
    if (Feasible)
      for (size_t V = 0; V < NumVars; ++V)
        Values[V] = Sol.value(Vars[V]);
    return Values;
  }

  size_t NumResources;
  size_t NumVars;
  std::vector<double> VarUpperBounds;
  double TieBreak;
  std::vector<double> VarScales;
  std::vector<KernelRow> Rows;
};

} // namespace

CoreWeights palmed::solveCoreWeights(const MappingShape &Shape,
                                     const std::map<InstrId, size_t> &IndexOf,
                                     const std::vector<WeightKernel> &Kernels,
                                     BwpMode Mode, int MaxPinIterations,
                                     const std::vector<double> &SoloIpc) {
  const size_t NumRes = Shape.numResources();
  const size_t NumBasic = IndexOf.size();

  // Enumerate free edge variables from the shape.
  std::vector<std::vector<int>> EdgeVar(NumBasic,
                                        std::vector<int>(NumRes, -1));
  size_t NumVars = 0;
  for (size_t I = 0; I < NumBasic; ++I)
    for (size_t R = 0; R < NumRes; ++R)
      if (Shape.instrUses(I, R))
        EdgeVar[I][R] = static_cast<int>(NumVars++);

  std::vector<double> VarScales;
  if (!SoloIpc.empty()) {
    VarScales.assign(NumVars, 1.0);
    for (size_t I = 0; I < NumBasic; ++I)
      for (size_t R = 0; R < NumRes; ++R)
        if (EdgeVar[I][R] >= 0)
          VarScales[static_cast<size_t>(EdgeVar[I][R])] = SoloIpc[I];
  }
  GenericBwp Bwp(NumRes, NumVars, std::vector<double>(NumVars, 1.0),
                 /*TieBreak=*/1e-6, std::move(VarScales));
  for (const WeightKernel &WK : Kernels) {
    GenericBwp::KernelRow Row;
    Row.TMeas = WK.measuredCycles();
    Row.Pin = WK.PinnedResource;
    Row.FrozenLoad.assign(NumRes, 0.0);
    Row.VarLoad.assign(NumRes, {});
    for (const auto &[Id, Mult] : WK.K.terms()) {
      size_t I = IndexOf.at(Id);
      for (size_t R = 0; R < NumRes; ++R)
        if (EdgeVar[I][R] >= 0)
          Row.VarLoad[R].push_back({static_cast<size_t>(EdgeVar[I][R]), Mult});
    }
    Bwp.addKernel(std::move(Row));
  }

  CoreWeights Out;
  bool Feasible = false;
  std::vector<double> Values =
      Bwp.solve(Mode, MaxPinIterations, Out.TotalSlack, Feasible);
  assert(Feasible && "core BWP must be feasible (slack model)");

  Out.Rho.assign(NumBasic, std::vector<double>(NumRes, 0.0));
  for (size_t I = 0; I < NumBasic; ++I)
    for (size_t R = 0; R < NumRes; ++R)
      if (EdgeVar[I][R] >= 0)
        Out.Rho[I][R] = Values[static_cast<size_t>(EdgeVar[I][R])];
  return Out;
}

AuxWeights
palmed::solveAuxWeights(const MappingShape &Shape,
                        const std::map<InstrId, size_t> &IndexOf,
                        const std::vector<std::vector<double>> &FrozenRho,
                        InstrId Inst, const std::vector<WeightKernel> &Kernels,
                        BwpMode Mode, int MaxPinIterations) {
  const size_t NumRes = Shape.numResources();

  // One free variable per resource for the new instruction; unbounded above
  // (low-IPC instructions legitimately exceed a full resource per instance).
  GenericBwp Bwp(NumRes, NumRes, std::vector<double>(NumRes, lp::Infinity),
                 /*TieBreak=*/-1e-6);
  for (const WeightKernel &WK : Kernels) {
    GenericBwp::KernelRow Row;
    Row.TMeas = WK.measuredCycles();
    Row.Pin = WK.PinnedResource;
    Row.FrozenLoad.assign(NumRes, 0.0);
    Row.VarLoad.assign(NumRes, {});
    for (const auto &[Id, Mult] : WK.K.terms()) {
      if (Id == Inst) {
        for (size_t R = 0; R < NumRes; ++R)
          Row.VarLoad[R].push_back({R, Mult});
        continue;
      }
      size_t I = IndexOf.at(Id);
      for (size_t R = 0; R < NumRes; ++R)
        Row.FrozenLoad[R] += Mult * FrozenRho[I][R];
    }
    Bwp.addKernel(std::move(Row));
  }

  AuxWeights Out;
  Out.Rho = Bwp.solve(Mode, MaxPinIterations, Out.TotalSlack, Out.Feasible);
  return Out;
}
