//===- core/BwpSolver.cpp - LP2/LPAUX: bipartite weight problem -----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/BwpSolver.h"

#include "lp/Milp.h"
#include "lp/Simplex.h"
#include "support/Executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>

using namespace palmed;

namespace {

/// All pinned-mode BWP relaxations run the compat solver: the refinement
/// loop and the saturating-kernel choice consume raw solution *vertices*
/// (not just objective values), and degenerate optima make the vertex a
/// function of the pivot sequence — pinning the historical sequence keeps
/// mapping outcomes reproducible across solver generations.
lp::SimplexOptions compatLpOptions() {
  lp::SimplexOptions Options;
  Options.Pricing = lp::LpPricing::Dantzig;
  return Options;
}

lp::LpTelemetry telemetryDelta(const lp::LpTelemetry &Now,
                               const lp::LpTelemetry &Before) {
  lp::LpTelemetry D;
  D.Solves = Now.Solves - Before.Solves;
  D.Pivots = Now.Pivots - Before.Pivots;
  D.DualPivots = Now.DualPivots - Before.DualPivots;
  D.BoundFlips = Now.BoundFlips - Before.BoundFlips;
  D.WarmStartAttempts = Now.WarmStartAttempts - Before.WarmStartAttempts;
  D.WarmStartHits = Now.WarmStartHits - Before.WarmStartHits;
  return D;
}

void telemetryAdd(lp::LpTelemetry &T, const lp::LpTelemetry &D) {
  T.Solves += D.Solves;
  T.Pivots += D.Pivots;
  T.DualPivots += D.DualPivots;
  T.BoundFlips += D.BoundFlips;
  T.WarmStartAttempts += D.WarmStartAttempts;
  T.WarmStartHits += D.WarmStartHits;
}

/// Shared LP2/LPAUX machinery: free weight variables plus frozen
/// contributions, per-kernel per-resource load rows, pinned or exact-MILP
/// objective handling.
class GenericBwp {
public:
  /// \p TieBreak is a tiny signed per-weight objective coefficient:
  /// positive prefers maximal consistent weights (core problem, where every
  /// resource is capped by many measured kernels), negative prefers minimal
  /// attribution (aux problem, where only the saturation probes provide
  /// evidence).
  /// \p VarScales normalizes weights for the balancing pass (a weight w
  /// with scale s contributes s*w to the balanced maximum; callers pass the
  /// instruction's solo IPC so that "fully saturating alone" compares
  /// equally across instructions). Empty disables balancing.
  GenericBwp(size_t NumResources, size_t NumVars,
             std::vector<double> VarUpperBounds, double TieBreak,
             std::vector<double> VarScales = {})
      : NumResources(NumResources), NumVars(NumVars),
        VarUpperBounds(std::move(VarUpperBounds)), TieBreak(TieBreak),
        VarScales(std::move(VarScales)) {
    assert(this->VarUpperBounds.size() == NumVars);
  }

  struct KernelRow {
    double TMeas = 0.0;
    int Pin = -1;
    /// Frozen load per resource.
    std::vector<double> FrozenLoad;
    /// Variable load per resource: (varIndex, coefficient) terms.
    std::vector<std::vector<std::pair<size_t, double>>> VarLoad;
    /// Resources with any (frozen or variable) contribution.
    std::vector<size_t> Supported;
  };

  void addKernel(KernelRow Row) {
    assert(Row.TMeas > 0.0 && "kernel with non-positive time");
    Row.Supported.clear();
    for (size_t R = 0; R < NumResources; ++R)
      if (Row.FrozenLoad[R] > 0.0 || !Row.VarLoad[R].empty())
        Row.Supported.push_back(R);
    Rows.push_back(std::move(Row));
  }

  /// Solves and returns the variable values; sets \p TotalSlack.
  std::vector<double> solve(BwpMode Mode, int MaxPinIterations,
                            double &TotalSlack, bool &Feasible,
                            const BwpSolveOptions &Opts = {}) {
    std::vector<double> Values =
        Mode == BwpMode::ExactMilp
            ? solveExact(Feasible)
            : solvePinned(MaxPinIterations, Feasible, Opts);
    TotalSlack = 0.0;
    if (Feasible)
      for (const KernelRow &Row : Rows)
        TotalSlack += 1.0 - std::min(1.0, maxLoad(Row, Values) / Row.TMeas);
    return Values;
  }

private:
  double load(const KernelRow &Row, size_t R,
              const std::vector<double> &Values) const {
    double L = Row.FrozenLoad[R];
    for (const auto &[V, C] : Row.VarLoad[R])
      L += C * Values[V];
    return L;
  }

  double maxLoad(const KernelRow &Row, const std::vector<double> &Values) const {
    double M = 0.0;
    for (size_t R : Row.Supported)
      M = std::max(M, load(Row, R, Values));
    return M;
  }

  /// Builds the common variable/constraint skeleton. Residuals are clamped
  /// at zero: measurement noise can make a kernel appear *faster* than its
  /// frozen load alone (t < frozen), which would otherwise render the
  /// problem infeasible; the correct reading is "no attributable usage".
  void buildBase(lp::Model &M, std::vector<lp::VarId> &Vars) const {
    for (size_t V = 0; V < NumVars; ++V)
      Vars.push_back(M.addVar(std::string(), 0.0, VarUpperBounds[V]));
    for (const KernelRow &Row : Rows) {
      for (size_t R : Row.Supported) {
        lp::LinearExpr Load;
        for (const auto &[V, C] : Row.VarLoad[R])
          Load.add(Vars[V], C);
        M.addConstraint(std::move(Load), lp::Sense::LE,
                        std::max(0.0, Row.TMeas - Row.FrozenLoad[R]));
      }
    }
  }

  /// Reusable per-resource model buffers: the capacity rows of both the
  /// primary and the balancing model never change within one pinned solve,
  /// so each is built once per resource per call and only the objective
  /// (and, for the balancing model, the primary-floor row and the CapZ
  /// tail) is patched per pin iteration. This replaces the historical
  /// from-scratch lp::Model reconstruction on every iteration, which
  /// re-allocated identical variable/constraint storage each time.
  struct ResourceModels {
    lp::Model Primary;
    bool PrimaryBuilt = false;
    lp::Model Balance;
    bool BalanceBuilt = false;
    lp::VarId BalanceZ = -1;
    /// Constraint count of Balance without the CapZ tail row.
    size_t BalanceBase = 0;
    /// Capacity rows shared by both models (the primary-floor row index).
    size_t NumCapacityRows = 0;
  };

  /// Partitions resources (and their kernels) into coupling components.
  /// Each variable belongs to exactly one resource and each kernel only
  /// reads/constrains/pins within its Supported set, so two resources
  /// interact only when some kernel supports both: solving the union-find
  /// components separately — in any order, or in parallel — reproduces
  /// the monolithic interleaved pin loop bit for bit (a converged
  /// component's objectives stop changing, so the monolithic loop's extra
  /// passes over it are skipped as identical subproblems anyway).
  /// \p Decompose false collapses everything into one pseudo-component,
  /// which *is* the historical monolithic loop.
  void buildComponents(bool Decompose,
                       std::vector<std::vector<size_t>> &CompResources,
                       std::vector<std::vector<size_t>> &CompKernels) const {
    CompResources.clear();
    CompKernels.clear();
    if (!Decompose) {
      CompResources.emplace_back(NumResources);
      std::iota(CompResources.back().begin(), CompResources.back().end(),
                size_t{0});
      CompKernels.emplace_back(Rows.size());
      std::iota(CompKernels.back().begin(), CompKernels.back().end(),
                size_t{0});
      return;
    }
    std::vector<size_t> Parent(NumResources);
    std::iota(Parent.begin(), Parent.end(), size_t{0});
    auto Find = [&](size_t R) {
      while (Parent[R] != R) {
        Parent[R] = Parent[Parent[R]];
        R = Parent[R];
      }
      return R;
    };
    for (const KernelRow &Row : Rows)
      for (size_t I = 1; I < Row.Supported.size(); ++I)
        Parent[Find(Row.Supported[I])] = Find(Row.Supported[0]);
    // Component ids in ascending order of their smallest resource, so the
    // decomposition (and everything derived from it) is deterministic.
    std::vector<int> CompId(NumResources, -1);
    for (size_t R = 0; R < NumResources; ++R) {
      size_t Root = Find(R);
      if (CompId[Root] < 0) {
        CompId[Root] = static_cast<int>(CompResources.size());
        CompResources.emplace_back();
        CompKernels.emplace_back();
      }
      CompResources[static_cast<size_t>(CompId[Root])].push_back(R);
    }
    for (size_t K = 0; K < Rows.size(); ++K) {
      if (Rows[K].Supported.empty())
        continue; // No loads anywhere: contributes nothing to any solve.
      CompKernels[static_cast<size_t>(CompId[Find(Rows[K].Supported[0])])]
          .push_back(K);
    }
  }

  /// Pinned mode exploits the BWP's structure: the capacity constraints
  /// sum weights *within* one resource only, and the pinned objective is a
  /// sum of per-resource terms — so each pin iteration decomposes into one
  /// small LP per resource, keeping the core problem tractable even with
  /// thousands of kernels. On top of that per-resource split, the solve
  /// decomposes into resource-coupling components (see buildComponents)
  /// that run independently, optionally fanned over an Executor, and an
  /// optional cross-call cache short-circuits blocks whose exact structure
  /// was solved before.
  std::vector<double> solvePinned(int MaxPinIterations, bool &Feasible,
                                  const BwpSolveOptions &Opts) {
    // Working pins; fixed pins are respected, free pins start unassigned.
    std::vector<int> Pins(Rows.size(), -1);
    for (size_t K = 0; K < Rows.size(); ++K)
      Pins[K] = Rows[K].Pin;

    // Variables touching each resource (each variable belongs to exactly
    // one resource by construction of the callers).
    std::vector<std::vector<size_t>> ResourceVars(NumResources);
    {
      std::vector<bool> Seen(NumVars, false);
      for (const KernelRow &Row : Rows)
        for (size_t R = 0; R < NumResources; ++R)
          for (const auto &[V, C] : Row.VarLoad[R]) {
            (void)C;
            if (!Seen[V]) {
              Seen[V] = true;
              ResourceVars[R].push_back(V);
            }
          }
    }

    std::vector<double> Values(NumVars, 0.0);
    // Per-resource objective of the last solved iteration: when a pin pass
    // leaves a resource's objective unchanged, its LP (and the balancing
    // passes) would reproduce the exact same solution — the solver is
    // deterministic — so the solve is skipped and Values stay as-is.
    std::vector<std::vector<std::pair<lp::VarId, double>>> PrevObj(
        NumResources);
    std::vector<uint8_t> HasPrev(NumResources, 0);

    std::vector<std::vector<size_t>> CompResources, CompKernels;
    buildComponents(Opts.Decompose, CompResources, CompKernels);
    const size_t NumComps = CompResources.size();
    const bool FanOut = Opts.Exec && NumComps > 1;
    if (Opts.Stats) {
      Opts.Stats->Components = static_cast<int>(NumComps);
      Opts.Stats->Decomposed = FanOut;
    }

    // Per-resource scratch. Shared across components, but every component
    // only touches its own resources, so all writes are disjoint (the
    // index-slot discipline of the fan-out below).
    std::vector<std::unique_ptr<ResourceModels>> Models(NumResources);
    std::vector<lp::StructuralDigest> SkelDigest(NumResources);
    std::vector<uint8_t> HasSkel(NumResources, 0);

    // Solves one component to its own pin fixed point. Cache probes check
    // \p Sink (the component's publish target) before \p Shared (the
    // read-only pre-solve snapshot); a null \p Shared means \p Sink is
    // probed alone. Returns false when any block failed to solve — the
    // component then stops after the failing pass, like the monolithic
    // loop. (With several components the others still run to their own
    // fixed points; the divergence is benign because every caller
    // discards the weights of an infeasible solve.)
    auto RunComponent = [&](size_t CI, const BwpSubproblemCache *Shared,
                            BwpSubproblemCache *Sink) -> bool {
      // Component-local variable renumbering scratch, written and undone
      // per block instead of re-allocated NumVars-wide on every solve.
      std::vector<int> LocalOf(NumVars, -1);
      const std::vector<size_t> &Resources = CompResources[CI];
      const std::vector<size_t> &Kernels = CompKernels[CI];
      for (int Iter = 0; Iter < MaxPinIterations; ++Iter) {
        bool AllSolved = true;
        for (size_t R : Resources) {
          const std::vector<size_t> &RVars = ResourceVars[R];
          if (RVars.empty())
            continue;
          for (size_t I = 0; I < RVars.size(); ++I)
            LocalOf[RVars[I]] = static_cast<int>(I);
          bool BlockSolved = [&]() -> bool {
            // Saturation objective (pinned loads); the tie-break is kept
            // in a separate expression so the balancing pass can preserve
            // the saturation value exactly, without the tie-break
            // distorting it. Local variable ids equal their position in
            // ResourceVars[R].
            lp::LinearExpr PinnedObj;
            for (size_t K : Kernels) {
              const KernelRow &Row = Rows[K];
              if (Row.VarLoad[R].empty() && Row.FrozenLoad[R] == 0.0)
                continue;
              if (Pins[K] == static_cast<int>(R)) {
                for (const auto &[V, C] : Row.VarLoad[R])
                  PinnedObj.add(LocalOf[V], C / Row.TMeas);
              } else if (Pins[K] == -1) {
                // Unpinned (first iteration): spread the objective across
                // the kernel's supported resources.
                double Scale = Row.TMeas *
                               static_cast<double>(
                                   std::max<size_t>(1, Row.Supported.size()));
                for (const auto &[V, C] : Row.VarLoad[R])
                  PinnedObj.add(LocalOf[V], C / Scale);
              }
            }
            PinnedObj.normalize();
            if (HasPrev[R] && PrevObj[R] == PinnedObj.terms())
              return true; // Identical subproblem: Values[.] already hold
                           // its solution.

            // Cache probe: the block digest covers everything the block's
            // solution depends on (bounds, scales, tie-break, capacity
            // rows in local numbering, pinned objective), so an exact hit
            // replays the deterministic solver's output verbatim.
            lp::StructuralDigest BlockDigest;
            if (Opts.Cache) {
              if (!HasSkel[R]) {
                lp::StructuralDigest &D = SkelDigest[R];
                D.addSize(RVars.size());
                for (size_t V : RVars)
                  D.addDouble(VarUpperBounds[V]);
                D.addU64(VarScales.empty() ? 0 : 1);
                if (!VarScales.empty())
                  for (size_t V : RVars)
                    D.addDouble(VarScales[V]);
                D.addDouble(TieBreak);
                size_t NumRowsR = 0;
                for (size_t K : Kernels)
                  if (!Rows[K].VarLoad[R].empty())
                    ++NumRowsR;
                D.addSize(NumRowsR);
                for (size_t K : Kernels) {
                  const KernelRow &Row = Rows[K];
                  if (Row.VarLoad[R].empty())
                    continue;
                  D.addSize(Row.VarLoad[R].size());
                  for (const auto &[V, C] : Row.VarLoad[R]) {
                    D.addInt(LocalOf[V]);
                    D.addDouble(C);
                  }
                  D.addDouble(std::max(0.0, Row.TMeas - Row.FrozenLoad[R]));
                }
                HasSkel[R] = 1;
              }
              BlockDigest = SkelDigest[R];
              BlockDigest.addSize(PinnedObj.terms().size());
              for (const auto &[V, C] : PinnedObj.terms()) {
                BlockDigest.addInt(V);
                BlockDigest.addDouble(C);
              }
              ++lp::lpTelemetry().WarmStartAttempts;
              const lp::StructuralDigest::Value BD = BlockDigest.value();
              const BwpSubproblemCache::Entry *Hit = Sink->find(BD);
              if (!Hit && Shared)
                Hit = Shared->find(BD);
              if (Hit) {
                assert(Hit->Values.size() == RVars.size());
                ++lp::lpTelemetry().WarmStartHits;
                for (size_t I = 0; I < RVars.size(); ++I)
                  Values[RVars[I]] = Hit->Values[I];
                PrevObj[R] = PinnedObj.terms();
                HasPrev[R] = 1;
                return true;
              }
            }
            auto Publish = [&] {
              if (!Opts.Cache)
                return;
              BwpSubproblemCache::Entry E;
              E.Values.reserve(RVars.size());
              for (size_t V : RVars)
                E.Values.push_back(Values[V]);
              Sink->insert(BlockDigest.value(), std::move(E));
            };

            lp::Model FreshPrimary;
            lp::Model *MP = &FreshPrimary;
            if (Opts.ReuseModels) {
              if (!Models[R])
                Models[R] = std::make_unique<ResourceModels>();
              MP = &Models[R]->Primary;
            }
            lp::Model &M = *MP;
            if (!Opts.ReuseModels || !Models[R]->PrimaryBuilt) {
              size_t NumRowsR = 0;
              // Variable ids coincide with local indices by construction.
              for (size_t V : RVars)
                M.addVar(std::string(), 0.0, VarUpperBounds[V]);
              for (size_t K : Kernels) {
                const KernelRow &Row = Rows[K];
                if (Row.VarLoad[R].empty())
                  continue;
                lp::LinearExpr Load;
                for (const auto &[V, C] : Row.VarLoad[R])
                  Load.add(LocalOf[V], C);
                M.addConstraint(std::move(Load), lp::Sense::LE,
                                std::max(0.0, Row.TMeas - Row.FrozenLoad[R]));
                ++NumRowsR;
              }
              if (Opts.ReuseModels) {
                Models[R]->PrimaryBuilt = true;
                Models[R]->NumCapacityRows = NumRowsR;
              }
            }
            lp::LinearExpr Obj = PinnedObj;
            for (size_t I = 0; I < RVars.size(); ++I)
              Obj.add(static_cast<lp::VarId>(I), TieBreak);
            M.setObjective(std::move(Obj), lp::Goal::Maximize);
            // Warm-start plumbing: seed from the last basis exported for
            // this constraint skeleton and export this solve's final
            // basis back. The compat solver ignores the seed (its pivot
            // arithmetic is pinned — automatic cold fallback), so this
            // only changes work, never values, for any solver mode.
            const lp::SimplexBasis *Warm = nullptr;
            lp::SimplexBasis Final;
            if (Opts.Cache) {
              const lp::StructuralDigest::Value SK = SkelDigest[R].value();
              Warm = Sink->findBasis(SK);
              if (!Warm && Shared)
                Warm = Shared->findBasis(SK);
            }
            lp::Solution Sol =
                lp::solveLp(M, {}, compatLpOptions(), Warm,
                            Opts.Cache ? &Final : nullptr);
            if (Sol.Status != lp::SolveStatus::Optimal)
              return false;
            PrevObj[R] = PinnedObj.terms();
            HasPrev[R] = 1;
            if (Opts.Cache && !Final.empty())
              Sink->storeBasis(SkelDigest[R].value(), Final);
            if (!VarScales.empty()) {
              // Balancing pass: the measured kernels often leave the
              // split of a resource's capacity between instructions
              // under-determined (any vertex of the optimal face fits).
              // The dual's weights are uniform per resource (use/|J|), so
              // among the optima prefer the most balanced one: fix the
              // primary objective and minimize the largest scaled weight.
              lp::Model FreshBalance;
              lp::Model *M2P = &FreshBalance;
              lp::VarId Z = -1;
              size_t NumRowsR = 0;
              bool Build = true;
              if (Opts.ReuseModels) {
                ResourceModels &RM = *Models[R];
                M2P = &RM.Balance;
                NumRowsR = RM.NumCapacityRows;
                if (RM.BalanceBuilt) {
                  Build = false;
                  Z = RM.BalanceZ;
                  // Drop the previous iteration's CapZ tail; the rows and
                  // the primary-floor slot below survive verbatim.
                  RM.Balance.truncateConstraints(RM.BalanceBase);
                }
              }
              lp::Model &M2 = *M2P;
              if (Build) {
                NumRowsR = 0;
                for (size_t V : RVars)
                  M2.addVar(std::string(), 0.0, VarUpperBounds[V]);
                // Re-add the capacity rows.
                for (size_t K : Kernels) {
                  const KernelRow &Row = Rows[K];
                  if (Row.VarLoad[R].empty())
                    continue;
                  lp::LinearExpr Load;
                  for (const auto &[V, C] : Row.VarLoad[R])
                    Load.add(LocalOf[V], C);
                  M2.addConstraint(std::move(Load), lp::Sense::LE,
                                   std::max(0.0,
                                            Row.TMeas - Row.FrozenLoad[R]));
                  ++NumRowsR;
                }
                // Primary-objective floor: placeholder row at a stable
                // index, patched (replaceConstraint) before every solve.
                M2.addConstraint(lp::LinearExpr(), lp::Sense::GE, 0.0);
                Z = M2.addVar("z", 0.0, lp::Infinity);
                for (size_t V : RVars) {
                  lp::LinearExpr E;
                  E.add(LocalOf[V], VarScales[V]).add(Z, -1.0);
                  M2.addConstraint(std::move(E), lp::Sense::LE, 0.0);
                }
                if (Opts.ReuseModels) {
                  ResourceModels &RM = *Models[R];
                  RM.BalanceBuilt = true;
                  RM.BalanceZ = Z;
                  RM.BalanceBase = M2.numConstraints();
                  RM.NumCapacityRows = NumRowsR;
                }
              }
              // Keep the saturation-objective value (model M's variable
              // ids coincide with local indices, as do M2's).
              lp::LinearExpr Primary;
              double PinnedValue = 0.0;
              for (const auto &[V, C] : PinnedObj.terms()) {
                Primary.add(V, C);
                PinnedValue += C * Sol.value(V);
              }
              M2.replaceConstraint(NumRowsR, std::move(Primary),
                                   lp::Sense::GE, PinnedValue - 1e-9);
              lp::LinearExpr Obj2;
              Obj2.add(Z, 1.0);
              M2.setObjective(std::move(Obj2), lp::Goal::Minimize);
              lp::Solution Sol2 = lp::solveLp(M2, {}, compatLpOptions());
              if (Sol2.Status == lp::SolveStatus::Optimal) {
                // Third pass: with the saturation value and the balanced
                // ceiling fixed, raise every weight to its consistent
                // maximum (min-max alone leaves the non-binding weights
                // at arbitrary vertices below the ceiling).
                lp::LinearExpr CapZ;
                CapZ.add(Z, 1.0);
                M2.addConstraint(std::move(CapZ), lp::Sense::LE,
                                 Sol2.Objective + 1e-9);
                lp::LinearExpr Obj3;
                for (size_t V : RVars)
                  Obj3.add(LocalOf[V], 1.0);
                M2.setObjective(std::move(Obj3), lp::Goal::Maximize);
                lp::Solution Sol3 = lp::solveLp(M2, {}, compatLpOptions());
                const lp::Solution &Fin =
                    Sol3.Status == lp::SolveStatus::Optimal ? Sol3 : Sol2;
                for (size_t V : RVars)
                  Values[V] = Fin.value(LocalOf[V]);
                Publish();
                return true;
              }
            }
            for (size_t V : RVars)
              Values[V] = Sol.value(LocalOf[V]);
            Publish();
            return true;
          }();
          for (size_t V : RVars)
            LocalOf[V] = -1;
          if (!BlockSolved)
            AllSolved = false;
        }
        if (!AllSolved)
          return false;

        // Re-derive pins for free kernels; stop at a fixed point.
        bool Changed = false;
        for (size_t K : Kernels) {
          if (Rows[K].Pin != -1)
            continue; // Fixed by the caller, or constraint-only.
          const KernelRow &Row = Rows[K];
          int BestR = -1;
          double BestLoad = -1.0;
          for (size_t R : Row.Supported) {
            double L = load(Row, R, Values);
            if (L > BestLoad + 1e-12) {
              BestLoad = L;
              BestR = static_cast<int>(R);
            }
          }
          if (BestR != Pins[K]) {
            Pins[K] = BestR;
            Changed = true;
          }
        }
        if (!Changed && Iter > 0)
          break;
      }
      return true;
    };

    if (!FanOut) {
      // Monolithic fallback (dense coupling / no executor / decomposition
      // off): components run inline in index order against the shared
      // cache directly.
      bool All = true;
      for (size_t CI = 0; CI < NumComps; ++CI)
        if (!RunComponent(CI, nullptr, Opts.Cache))
          All = false;
      Feasible = All;
      return Values;
    }

    // Component fan-out. Every task writes only index-slotted state (its
    // own resources' Values/Models/digests, its own slot below), probes
    // the shared cache read-only plus a component-local overlay, and
    // parks its thread-local LP telemetry delta in its slot; the serial
    // reduction then replays deltas and merges overlays in component
    // order. Outcomes, stats, and cache contents are therefore
    // bit-identical for any executor width, including width 1.
    struct CompSlot {
      lp::LpTelemetry Tel;
      BwpSubproblemCache Local;
      uint8_t Ok = 0;
    };
    std::vector<CompSlot> Slots(NumComps);
    Opts.Exec->parallelFor(NumComps, [&](size_t CI, unsigned) {
      lp::LpTelemetry &T = lp::lpTelemetry();
      const lp::LpTelemetry Before = T;
      CompSlot &S = Slots[CI];
      S.Ok = RunComponent(CI, Opts.Cache, Opts.Cache ? &S.Local : nullptr)
                 ? 1
                 : 0;
      S.Tel = telemetryDelta(T, Before);
      T = Before; // Compensated: the reduction below re-applies the delta
                  // on the calling thread, keeping the caller's
                  // before/after telemetry bracketing exact.
    });
    bool All = true;
    lp::LpTelemetry &T = lp::lpTelemetry();
    for (size_t CI = 0; CI < NumComps; ++CI) {
      CompSlot &S = Slots[CI];
      All &= S.Ok != 0;
      telemetryAdd(T, S.Tel);
      if (Opts.Cache)
        Opts.Cache->merge(std::move(S.Local));
    }
    Feasible = All;
    return Values;
  }

  std::vector<double> solveExact(bool &Feasible) {
    lp::Model M;
    std::vector<lp::VarId> Vars;
    buildBase(M, Vars);

    lp::LinearExpr Obj;
    for (size_t K = 0; K < Rows.size(); ++K) {
      const KernelRow &Row = Rows[K];
      if (Row.Supported.empty() || Row.Pin == WeightKernel::ConstraintOnly)
        continue;
      if (Row.Pin >= 0) {
        // Pinned kernels contribute their pinned saturation linearly.
        size_t R = static_cast<size_t>(Row.Pin);
        for (const auto &[V, C] : Row.VarLoad[R])
          Obj.add(Vars[V], C / Row.TMeas);
        continue;
      }
      lp::VarId S = M.addVar("S" + std::to_string(K), 0.0, 1.0);
      Obj.add(S, 1.0);
      lp::LinearExpr PickOne;
      for (size_t R : Row.Supported) {
        lp::VarId Z = M.addBoolVar("z" + std::to_string(K) + "_" +
                                   std::to_string(R));
        PickOne.add(Z, 1.0);
        // S <= load/t + (1 - z)
        lp::LinearExpr E;
        E.add(S, 1.0).add(Z, 1.0);
        for (const auto &[V, C] : Row.VarLoad[R])
          E.add(Vars[V], -C / Row.TMeas);
        M.addConstraint(std::move(E), lp::Sense::LE,
                        1.0 + Row.FrozenLoad[R] / Row.TMeas);
      }
      M.addConstraint(std::move(PickOne), lp::Sense::EQ, 1.0);
    }
    M.setObjective(std::move(Obj), lp::Goal::Maximize);

    lp::Solution Sol = lp::solveMilp(M);
    Feasible = Sol.ok();
    std::vector<double> Values(NumVars, 0.0);
    if (Feasible)
      for (size_t V = 0; V < NumVars; ++V)
        Values[V] = Sol.value(Vars[V]);
    return Values;
  }

  size_t NumResources;
  size_t NumVars;
  std::vector<double> VarUpperBounds;
  double TieBreak;
  std::vector<double> VarScales;
  std::vector<KernelRow> Rows;
};

} // namespace

const BwpSubproblemCache::Entry *
BwpSubproblemCache::find(const lp::StructuralDigest::Value &D) const {
  auto It = Entries.find(D);
  return It == Entries.end() ? nullptr : &It->second;
}

void BwpSubproblemCache::insert(const lp::StructuralDigest::Value &D,
                                Entry E) {
  if (Entries.size() >= MaxEntries)
    clear();
  Entries.try_emplace(D, std::move(E));
}

const lp::SimplexBasis *
BwpSubproblemCache::findBasis(const lp::StructuralDigest::Value &Skeleton) const {
  auto It = Bases.find(Skeleton);
  return It == Bases.end() ? nullptr : &It->second;
}

void BwpSubproblemCache::storeBasis(const lp::StructuralDigest::Value &Skeleton,
                                    const lp::SimplexBasis &Basis) {
  if (Bases.size() >= MaxEntries)
    Bases.clear();
  Bases[Skeleton] = Basis;
}

void BwpSubproblemCache::merge(BwpSubproblemCache &&Other) {
  for (auto &[D, E] : Other.Entries)
    insert(D, std::move(E));
  for (auto &[D, B] : Other.Bases)
    storeBasis(D, B);
  Other.Entries.clear();
  Other.Bases.clear();
}

void BwpSubproblemCache::clear() {
  Entries.clear();
  Bases.clear();
}

CoreWeights palmed::solveCoreWeights(const MappingShape &Shape,
                                     const std::map<InstrId, size_t> &IndexOf,
                                     const std::vector<WeightKernel> &Kernels,
                                     BwpMode Mode, int MaxPinIterations,
                                     const std::vector<double> &SoloIpc) {
  return solveCoreWeights(Shape, IndexOf, Kernels, Mode, BwpSolveOptions(),
                          MaxPinIterations, SoloIpc);
}

CoreWeights palmed::solveCoreWeights(const MappingShape &Shape,
                                     const std::map<InstrId, size_t> &IndexOf,
                                     const std::vector<WeightKernel> &Kernels,
                                     BwpMode Mode,
                                     const BwpSolveOptions &Options,
                                     int MaxPinIterations,
                                     const std::vector<double> &SoloIpc) {
  const size_t NumRes = Shape.numResources();
  const size_t NumBasic = IndexOf.size();

  // Enumerate free edge variables from the shape.
  std::vector<std::vector<int>> EdgeVar(NumBasic,
                                        std::vector<int>(NumRes, -1));
  size_t NumVars = 0;
  for (size_t I = 0; I < NumBasic; ++I)
    for (size_t R = 0; R < NumRes; ++R)
      if (Shape.instrUses(I, R))
        EdgeVar[I][R] = static_cast<int>(NumVars++);

  std::vector<double> VarScales;
  if (!SoloIpc.empty()) {
    VarScales.assign(NumVars, 1.0);
    for (size_t I = 0; I < NumBasic; ++I)
      for (size_t R = 0; R < NumRes; ++R)
        if (EdgeVar[I][R] >= 0)
          VarScales[static_cast<size_t>(EdgeVar[I][R])] = SoloIpc[I];
  }
  GenericBwp Bwp(NumRes, NumVars, std::vector<double>(NumVars, 1.0),
                 /*TieBreak=*/1e-6, std::move(VarScales));
  for (const WeightKernel &WK : Kernels) {
    GenericBwp::KernelRow Row;
    Row.TMeas = WK.measuredCycles();
    Row.Pin = WK.PinnedResource;
    Row.FrozenLoad.assign(NumRes, 0.0);
    Row.VarLoad.assign(NumRes, {});
    for (const auto &[Id, Mult] : WK.K.terms()) {
      size_t I = IndexOf.at(Id);
      for (size_t R = 0; R < NumRes; ++R)
        if (EdgeVar[I][R] >= 0)
          Row.VarLoad[R].push_back({static_cast<size_t>(EdgeVar[I][R]), Mult});
    }
    Bwp.addKernel(std::move(Row));
  }

  CoreWeights Out;
  bool Feasible = false;
  std::vector<double> Values =
      Bwp.solve(Mode, MaxPinIterations, Out.TotalSlack, Feasible, Options);
  assert(Feasible && "core BWP must be feasible (slack model)");

  Out.Rho.assign(NumBasic, std::vector<double>(NumRes, 0.0));
  for (size_t I = 0; I < NumBasic; ++I)
    for (size_t R = 0; R < NumRes; ++R)
      if (EdgeVar[I][R] >= 0)
        Out.Rho[I][R] = Values[static_cast<size_t>(EdgeVar[I][R])];
  return Out;
}

AuxWeights
palmed::solveAuxWeights(const MappingShape &Shape,
                        const std::map<InstrId, size_t> &IndexOf,
                        const std::vector<std::vector<double>> &FrozenRho,
                        InstrId Inst, const std::vector<WeightKernel> &Kernels,
                        BwpMode Mode, int MaxPinIterations,
                        const BwpSolveOptions &Options) {
  const size_t NumRes = Shape.numResources();

  // One free variable per resource for the new instruction; unbounded above
  // (low-IPC instructions legitimately exceed a full resource per instance).
  GenericBwp Bwp(NumRes, NumRes, std::vector<double>(NumRes, lp::Infinity),
                 /*TieBreak=*/-1e-6);
  for (const WeightKernel &WK : Kernels) {
    GenericBwp::KernelRow Row;
    Row.TMeas = WK.measuredCycles();
    Row.Pin = WK.PinnedResource;
    Row.FrozenLoad.assign(NumRes, 0.0);
    Row.VarLoad.assign(NumRes, {});
    for (const auto &[Id, Mult] : WK.K.terms()) {
      if (Id == Inst) {
        for (size_t R = 0; R < NumRes; ++R)
          Row.VarLoad[R].push_back({R, Mult});
        continue;
      }
      size_t I = IndexOf.at(Id);
      for (size_t R = 0; R < NumRes; ++R)
        Row.FrozenLoad[R] += Mult * FrozenRho[I][R];
    }
    Bwp.addKernel(std::move(Row));
  }

  AuxWeights Out;
  Out.Rho = Bwp.solve(Mode, MaxPinIterations, Out.TotalSlack, Out.Feasible,
                      Options);
  return Out;
}
