//===- core/Selection.h - Basic instruction selection (Algo 1) -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Sec. V-A / Algorithm 1: trim the instruction set to a small set of
/// *basic instructions* for which the core mapping is computed.
///
///  1. Discard unbenchmarkable instructions (IPC below MinIpc).
///  2. Exclude *low-IPC* instructions (IPC < 1 - eps) from candidacy (they
///     are still mapped later by LPAUX).
///  3. Run the *quadratic benchmarks*: for every candidate pair (a, b) of
///     the same extension group, measure the kernel a^IPC(a) b^IPC(b).
///  4. Collapse *equivalence classes*: instructions behaving identically
///     (same solo IPC and same pairwise IPC against every peer, within eps)
///     keep a single representative.
///  5. Select *very basic* instructions: a greedy maximal clique of
///     pairwise-disjoint instructions (aabb = IPC(a) + IPC(b)).
///  6. Complete with the *most greedy* instructions: those whose pairwise
///     IPC vector is dominated-below most often, i.e. that interfere with
///     the most peers.
///
/// As in paper Sec. VI-A, selection runs separately per vector-extension
/// group (base / SSE / AVX / ...) and the selected sets are merged, because
/// the benchmark generator refuses mixed-extension kernels.
///
/// For thousand-instruction ISAs the full quadratic sweep of step 3 is the
/// scaling bottleneck (O(n²) microbenchmarks per group). The optional
/// cluster-first mode (SelectionConfig::ClusterPairPruning) measures pairs
/// only against cluster representatives, in the spirit of PMEvo's sampled
/// pair-measurement budget: candidates are bucketed by solo IPC, each
/// member is benchmarked against its bucket's representatives until one
/// fully serializes with it (equivalent instructions contend completely),
/// and members serializing with no existing representative seed a new
/// cluster on demand. Pair count grows ~O(n·k) for k clusters instead of
/// O(n²); all derived decisions then run over representatives exactly as
/// in the full mode.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_SELECTION_H
#define PALMED_CORE_SELECTION_H

#include "isa/Microkernel.h"
#include "sim/BenchmarkRunner.h"
#include "support/Approx.h"

#include <map>
#include <utility>
#include <vector>

namespace palmed {

class Executor;

/// Tuning knobs of the selection stage.
struct SelectionConfig {
  /// Relative tolerance used by every IPC comparison (the paper constrains
  /// measurement error to 5%).
  double Epsilon = 0.05;
  /// Number of basic instructions selected per extension group (the `n`
  /// parameter of Algorithm 1).
  int NumBasicPerGroup = 8;
  /// Instructions with IPC below this are discarded outright (Sec. VI-A
  /// discards IPC < 0.05).
  double MinIpc = 0.05;
  /// When true, replace the full quadratic pair sweep with the
  /// cluster-first pruning described in the file comment (~O(n·k) pair
  /// benchmarks). Off by default: the full sweep is the paper's algorithm
  /// and keeps small-ISA outcomes byte-identical to earlier releases.
  bool ClusterPairPruning = false;
};

/// Output of the selection stage.
struct SelectionResult {
  /// Benchmarkable instructions (IPC >= MinIpc); everything here is mapped
  /// by the end of the pipeline.
  std::vector<InstrId> Survivors;
  /// Non-low-IPC class representatives, per Algorithm 1's filtered set IF.
  std::vector<InstrId> Candidates;
  /// Equivalence classes over the filtered set (first element is the
  /// representative).
  std::vector<std::vector<InstrId>> Classes;
  std::vector<InstrId> VeryBasic;
  std::vector<InstrId> MostGreedy;
  /// Final basic instruction set IB (union over extension groups).
  std::vector<InstrId> Basic;

  /// Solo IPC of every survivor.
  std::map<InstrId, double> SoloIpc;
  /// Quadratic-benchmark IPCs, keyed by (min id, max id); only pairs within
  /// one extension group are present (a sparse subset under
  /// ClusterPairPruning).
  std::map<std::pair<InstrId, InstrId>, double> PairIpc;

  /// Distinct pair benchmarks actually measured.
  size_t PairBenchmarks = 0;
  /// Pair count the full quadratic sweep would have measured (sum of
  /// C(|group|, 2)); PairBenchmarks / PairBenchmarksQuadratic is the
  /// pruning ratio.
  size_t PairBenchmarksQuadratic = 0;

  double soloIpc(InstrId Id) const { return SoloIpc.at(Id); }
  /// Pair IPC if measured, else a negative sentinel.
  double pairIpc(InstrId A, InstrId B) const;
};

/// Runs Algorithm 1 over \p Pool (typically the whole ISA). When \p Exec
/// is non-null, the solo-IPC and quadratic pair benchmarks fan out over
/// its workers; every measurement lands in an index-ordered slot and all
/// derived decisions run serially afterwards, so the result is
/// bit-identical to a serial run.
SelectionResult selectBasicInstructions(BenchmarkRunner &Runner,
                                        const std::vector<InstrId> &Pool,
                                        const SelectionConfig &Config,
                                        Executor *Exec = nullptr);

/// Builds the paper's "a^IPC(a) b^IPC(b)" quadratic kernel.
Microkernel makePairKernel(InstrId A, double IpcA, InstrId B, double IpcB);

// isAdditivePair (the paper's "disjoint" test for a quadratic benchmark)
// lives in support/Approx.h together with the other shared epsilon
// comparisons; this header re-exports it via the include above.

} // namespace palmed

#endif // PALMED_CORE_SELECTION_H
