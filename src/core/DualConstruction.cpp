//===- core/DualConstruction.cpp - Disjunctive-to-conjunctive dual --------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>

using namespace palmed;

std::vector<PortMask>
palmed::computeResourceClosure(const MachineModel &Machine,
                               size_t MaxResources) {
  (void)MaxResources; // Only consumed by the assert below; unused when
                      // NDEBUG compiles the assert out.
  std::set<PortMask> Closure;
  for (InstrId Id = 0; Id < Machine.numInstructions(); ++Id)
    for (const MicroOpDesc &Op : Machine.exec(Id).MicroOps)
      Closure.insert(Op.Ports);

  // Fixpoint: add the union of any two intersecting members.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<PortMask> Current(Closure.begin(), Closure.end());
    for (size_t I = 0; I < Current.size() && !Changed; ++I) {
      for (size_t J = I + 1; J < Current.size(); ++J) {
        const PortMask &A = Current[I], &B = Current[J];
        if (!A.intersects(B))
          continue;
        PortMask U = A | B;
        if (Closure.insert(U).second) {
          Changed = true;
          assert(Closure.size() <= MaxResources &&
                 "resource closure exceeded cap");
          break;
        }
      }
    }
  }
  return std::vector<PortMask>(Closure.begin(), Closure.end());
}

double palmed::optimalPortCycles(
    const std::vector<std::pair<PortMask, double>> &Demands) {
  // Merge duplicate masks.
  std::map<PortMask, double> ByMask;
  for (const auto &[Mask, Demand] : Demands) {
    assert(Mask.any() && "µOP with empty port set");
    assert(Demand >= 0.0 && "negative demand");
    ByMask[Mask] += Demand;
  }
  // Closure under union-of-intersecting-sets.
  std::set<PortMask> Closure;
  for (const auto &[Mask, Demand] : ByMask)
    Closure.insert(Mask);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<PortMask> Current(Closure.begin(), Closure.end());
    for (size_t I = 0; I < Current.size() && !Changed; ++I)
      for (size_t J = I + 1; J < Current.size(); ++J)
        if (Current[I].intersects(Current[J]) &&
            Closure.insert(Current[I] | Current[J]).second) {
          Changed = true;
          break;
        }
  }
  double Best = 0.0;
  for (const PortMask &J : Closure) {
    double Inside = 0.0;
    for (const auto &[Mask, Demand] : ByMask)
      if (Mask.isSubsetOf(J))
        Inside += Demand;
    Best = std::max(Best, Inside / portCount(J));
  }
  return Best;
}

ResourceMapping palmed::buildDualMapping(const MachineModel &Machine,
                                         const DualOptions &Options) {
  std::vector<PortMask> Masks =
      computeResourceClosure(Machine, Options.MaxResources);
  // Deterministic, human-friendly order: few ports first, then numeric.
  std::sort(Masks.begin(), Masks.end(),
            [](const PortMask &A, const PortMask &B) {
              unsigned CA = portCount(A), CB = portCount(B);
              if (CA != CB)
                return CA < CB;
              return A < B;
            });

  ResourceMapping M(Machine.numInstructions());
  std::vector<ResourceId> MaskResource(Masks.size());
  for (size_t I = 0; I < Masks.size(); ++I) {
    std::string Name = "r";
    Masks[I].forEachSetBit([&](size_t P) { Name += std::to_string(P); });
    MaskResource[I] =
        M.addResource(std::move(Name), static_cast<double>(portCount(Masks[I])));
  }

  ResourceId FrontEnd = static_cast<ResourceId>(-1);
  if (Options.IncludeFrontEnd && Machine.decodeWidth() > 0)
    FrontEnd = M.addResource("frontend",
                             static_cast<double>(Machine.decodeWidth()));

  for (InstrId Id = 0; Id < Machine.numInstructions(); ++Id) {
    const InstrExec &E = Machine.exec(Id);
    for (size_t I = 0; I < Masks.size(); ++I) {
      const PortMask &J = Masks[I];
      // Usage of r_J: demand of all µOPs whose port set fits inside J,
      // normalized by the resource's throughput |J| (paper Def. A.5).
      double Use = 0.0;
      for (const MicroOpDesc &Op : E.MicroOps)
        if (Op.Ports.isSubsetOf(J))
          Use += Options.IncludeOccupancy ? Op.Occupancy : 1.0;
      if (Use > 0.0)
        M.setUsage(Id, MaskResource[I],
                   Use / static_cast<double>(portCount(J)));
    }
    if (FrontEnd != static_cast<ResourceId>(-1))
      M.setUsage(Id, FrontEnd,
                 1.0 / static_cast<double>(Machine.decodeWidth()));
    M.markMapped(Id);
  }
  return M;
}
