//===- core/MappingAnalysis.cpp - Bottleneck analysis ---------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/MappingAnalysis.h"

#include "support/Approx.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

using namespace palmed;

BottleneckReport palmed::analyzeKernel(const ResourceMapping &Mapping,
                                       const Microkernel &K, double Eps) {
  BottleneckReport Report;
  if (!Mapping.supports(K) || K.empty())
    return Report;

  for (ResourceId R = 0; R < Mapping.numResources(); ++R) {
    double Load = 0.0;
    for (const auto &[Id, Mult] : K.terms())
      Load += Mult * Mapping.rho(Id, R);
    if (Load <= 0.0)
      continue;
    ResourceLoad L;
    L.Resource = R;
    L.Name = Mapping.resourceName(R);
    L.Load = Load;
    Report.Loads.push_back(std::move(L));
  }
  if (Report.Loads.empty())
    return Report;

  std::sort(Report.Loads.begin(), Report.Loads.end(),
            [](const ResourceLoad &A, const ResourceLoad &B) {
              if (A.Load != B.Load)
                return A.Load > B.Load;
              return A.Resource < B.Resource;
            });
  double Bottleneck = Report.Loads.front().Load;
  for (ResourceLoad &L : Report.Loads) {
    L.RelativeToBottleneck = L.Load / Bottleneck;
    // Shared epsilon comparison (support/Approx.h): a resource whose load
    // is indistinguishable from the bottleneck's co-limits the kernel.
    if (approxEqual(L.Load, Bottleneck, Eps))
      ++Report.NumCoBottlenecks;
  }

  Report.PredictedCycles = Bottleneck;
  Report.PredictedIpc = K.size() / Bottleneck;
  Report.HeadroomToNextResource =
      Report.Loads.size() > 1
          ? 1.0 - Report.Loads[1].Load / Bottleneck
          : 1.0;

  ResourceId BottleneckRes = Report.Loads.front().Resource;
  for (const auto &[Id, Mult] : K.terms()) {
    double Cycles = Mult * Mapping.rho(Id, BottleneckRes);
    if (Cycles <= 0.0)
      continue;
    InstrContribution C;
    C.Instr = Id;
    C.Cycles = Cycles;
    C.Fraction = Cycles / Bottleneck;
    Report.BottleneckContributions.push_back(C);
  }
  std::sort(Report.BottleneckContributions.begin(),
            Report.BottleneckContributions.end(),
            [](const InstrContribution &A, const InstrContribution &B) {
              if (A.Cycles != B.Cycles)
                return A.Cycles > B.Cycles;
              return A.Instr < B.Instr;
            });
  return Report;
}

void palmed::printReport(std::ostream &OS, const BottleneckReport &Report,
                         const InstructionSet &Isa, size_t MaxRows) {
  if (!Report.valid()) {
    OS << "kernel not supported by the mapping\n";
    return;
  }
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "predicted: %.3f cycles/iteration, IPC %.3f\n",
                Report.PredictedCycles, Report.PredictedIpc);
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "bottleneck: %s (headroom to next resource: %.1f%%)\n",
                Report.Loads.front().Name.c_str(),
                100.0 * Report.HeadroomToNextResource);
  OS << Buf;

  OS << "bottleneck contributors:\n";
  size_t Rows = 0;
  for (const InstrContribution &C : Report.BottleneckContributions) {
    if (Rows++ >= MaxRows)
      break;
    std::snprintf(Buf, sizeof(Buf), "  %-16s %6.3f cycles  (%5.1f%%)\n",
                  Isa.name(C.Instr).c_str(), C.Cycles, 100.0 * C.Fraction);
    OS << Buf;
  }
  OS << "resource load profile:\n";
  Rows = 0;
  for (const ResourceLoad &L : Report.Loads) {
    if (Rows++ >= MaxRows)
      break;
    std::snprintf(Buf, sizeof(Buf), "  %-10s %6.3f  %5.1f%%\n",
                  L.Name.c_str(), L.Load, 100.0 * L.RelativeToBottleneck);
    OS << Buf;
  }
}
