//===- core/ResourceMapping.cpp - Conjunctive resource mapping ------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/ResourceMapping.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

using namespace palmed;

ResourceMapping::ResourceMapping(size_t NumInstructions)
    : Rho(NumInstructions), Mapped(NumInstructions, false) {}

ResourceId ResourceMapping::addResource(std::string Name, double Throughput) {
  assert(Throughput > 0.0 && "resource throughput must be positive");
  // O(1): rows are ragged (see the header) and grow lazily in setUsage,
  // so adding the Nth resource no longer rewrites every existing row.
  Resources.push_back({std::move(Name), Throughput});
  return Resources.size() - 1;
}

void ResourceMapping::setUsage(InstrId Id, ResourceId R,
                               double NormalizedRho) {
  assert(Id < Rho.size() && R < Resources.size() && "index out of range");
  assert(NormalizedRho >= 0.0 && "negative usage");
  if (Rho[Id].size() <= R)
    Rho[Id].resize(R + 1, 0.0);
  Rho[Id][R] = NormalizedRho;
  Mapped[Id] = true;
}

void ResourceMapping::markMapped(InstrId Id) {
  assert(Id < Rho.size() && "index out of range");
  Mapped[Id] = true;
}

size_t ResourceMapping::numMappedInstructions() const {
  return static_cast<size_t>(std::count(Mapped.begin(), Mapped.end(), true));
}

bool ResourceMapping::supports(const Microkernel &K) const {
  for (const auto &[Id, Mult] : K.terms())
    if (Id >= Mapped.size() || !Mapped[Id])
      return false;
  return true;
}

double ResourceMapping::predictCycles(const Microkernel &K) const {
  assert(supports(K) && "kernel contains unmapped instructions");
  double MaxLoad = 0.0;
  for (ResourceId R = 0; R < Resources.size(); ++R) {
    double Load = 0.0;
    // rho() bounds-guards both indices, so even a release build fed an
    // unsupported kernel (assert compiled out) reads defined zeros
    // instead of out-of-range memory.
    for (const auto &[Id, Mult] : K.terms())
      Load += Mult * rho(Id, R);
    MaxLoad = std::max(MaxLoad, Load);
  }
  return MaxLoad;
}

std::optional<double> ResourceMapping::predictIpc(const Microkernel &K) const {
  if (!supports(K))
    return std::nullopt;
  double Cycles = predictCycles(K);
  if (Cycles <= 0.0)
    return std::nullopt;
  return K.size() / Cycles;
}

double ResourceMapping::consumption(InstrId Id) const {
  double Sum = 0.0;
  for (double V : Rho[Id])
    Sum += V;
  return Sum;
}

void ResourceMapping::print(std::ostream &OS,
                            const InstructionSet &Isa) const {
  OS << "resources:";
  for (const Resource &R : Resources)
    OS << ' ' << R.Name << "(x" << R.Throughput << ')';
  OS << '\n';
  for (InstrId Id = 0; Id < Rho.size(); ++Id) {
    if (!Mapped[Id])
      continue;
    OS << "  " << Isa.name(Id) << ':';
    bool Any = false;
    // Rows are ragged; iterating the row itself (not Resources) stays in
    // bounds and missing trailing entries are zeros anyway.
    for (ResourceId R = 0; R < Rho[Id].size(); ++R) {
      if (Rho[Id][R] <= 0.0)
        continue;
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), " %s=%.4g", Resources[R].Name.c_str(),
                    Rho[Id][R]);
      OS << Buf;
      Any = true;
    }
    if (!Any)
      OS << " (no resource usage)";
    OS << '\n';
  }
}

std::string ResourceMapping::toText(const InstructionSet &Isa) const {
  std::ostringstream OS;
  OS << "palmed-mapping v1\n";
  OS << "resources " << Resources.size() << '\n';
  for (const Resource &R : Resources)
    OS << "resource " << R.Name << ' ' << R.Throughput << '\n';
  for (InstrId Id = 0; Id < Rho.size(); ++Id) {
    if (!Mapped[Id])
      continue;
    OS << "instr " << Isa.name(Id);
    for (ResourceId R = 0; R < Rho[Id].size(); ++R)
      if (Rho[Id][R] > 0.0)
        OS << ' ' << R << ':' << Rho[Id][R];
    OS << '\n';
  }
  return OS.str();
}

std::optional<ResourceMapping>
ResourceMapping::fromText(const std::string &Text,
                          const InstructionSet &Isa) {
  std::istringstream IS(Text);
  std::string Line;
  if (!std::getline(IS, Line) || Line != "palmed-mapping v1")
    return std::nullopt;

  ResourceMapping M(Isa.size());
  size_t DeclaredResources = 0;
  if (!(IS >> Line) || Line != "resources" || !(IS >> DeclaredResources))
    return std::nullopt;
  std::getline(IS, Line); // Consume rest of the count line.

  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Kind;
    LS >> Kind;
    if (Kind == "resource") {
      std::string Name;
      double Throughput = 1.0;
      // Same validity rules as the binary loader (deserializeMapping):
      // throughput must be finite and positive, or predictions divide by
      // zero / go non-finite. Text files are as untrusted as binary ones.
      if (!(LS >> Name >> Throughput) || !std::isfinite(Throughput) ||
          !(Throughput > 0.0))
        return std::nullopt;
      M.addResource(Name, Throughput);
    } else if (Kind == "instr") {
      std::string Name;
      if (!(LS >> Name))
        return std::nullopt;
      InstrId Id = Isa.findByName(Name);
      if (Id == InvalidInstr)
        return std::nullopt;
      M.markMapped(Id);
      std::string Edge;
      while (LS >> Edge) {
        size_t Colon = Edge.find(':');
        if (Colon == std::string::npos || Colon == 0)
          return std::nullopt;
        // strtoull instead of sscanf("%zu"): scanf on an out-of-range
        // integer is undefined behavior, and a leading '-' would silently
        // wrap. The index and value both come from an untrusted file.
        const std::string Index = Edge.substr(0, Colon);
        if (Index.find_first_not_of("0123456789") != std::string::npos)
          return std::nullopt;
        errno = 0;
        char *End = nullptr;
        unsigned long long R = std::strtoull(Index.c_str(), &End, 10);
        if (errno != 0 || End != Index.c_str() + Index.size() ||
            R >= M.numResources())
          return std::nullopt;
        const std::string Value = Edge.substr(Colon + 1);
        End = nullptr;
        double V = std::strtod(Value.c_str(), &End);
        if (Value.empty() || End != Value.c_str() + Value.size() ||
            !std::isfinite(V) || V < 0.0)
          return std::nullopt;
        M.setUsage(Id, static_cast<ResourceId>(R), V);
      }
    } else {
      return std::nullopt;
    }
  }
  if (M.numResources() != DeclaredResources)
    return std::nullopt;
  return M;
}
