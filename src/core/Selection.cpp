//===- core/Selection.cpp - Basic instruction selection (Algo 1) ----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/Selection.h"

#include "support/Approx.h"
#include "support/Executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

using namespace palmed;

Microkernel palmed::makePairKernel(InstrId A, double IpcA, InstrId B,
                                   double IpcB) {
  assert(A != B && "pair kernel needs two distinct instructions");
  Microkernel K;
  K.add(A, IpcA);
  K.add(B, IpcB);
  return K;
}

double SelectionResult::pairIpc(InstrId A, InstrId B) const {
  auto It = PairIpc.find({std::min(A, B), std::max(A, B)});
  return It == PairIpc.end() ? -1.0 : It->second;
}

namespace {

/// Greedy leader clustering: two candidates are equivalent when their solo
/// IPC and their pairwise IPC against every common peer agree within Eps.
std::vector<std::vector<InstrId>>
clusterEquivalent(const std::vector<InstrId> &Group,
                  const SelectionResult &R, double Eps) {
  std::vector<std::vector<InstrId>> Classes;
  for (InstrId A : Group) {
    bool Placed = false;
    for (auto &Class : Classes) {
      InstrId Rep = Class.front();
      if (relDiff(R.SoloIpc.at(A), R.SoloIpc.at(Rep)) > Eps)
        continue;
      // Equivalent instructions use identical resources, so their own pair
      // kernel must fully serialize: t(a^IPC(a) rep^IPC(rep)) ~= 2. This
      // is the only pair that can distinguish two instructions whose
      // behaviour against every *peer* coincides (e.g. two port-exclusive
      // instructions on different ports of an otherwise symmetric core).
      double Direct = R.pairIpc(A, Rep);
      if (Direct < 0.0)
        continue; // Unmeasurable: no equivalence evidence.
      double PairT = (R.SoloIpc.at(A) + R.SoloIpc.at(Rep)) / Direct;
      if (PairT < 2.0 * (1.0 - Eps))
        continue;
      bool AllMatch = true;
      for (InstrId P : Group) {
        if (P == A || P == Rep)
          continue;
        double IA = R.pairIpc(A, P);
        double IR = R.pairIpc(Rep, P);
        if (IA < 0.0 || IR < 0.0)
          continue; // Unmeasurable pair: no evidence either way.
        if (relDiff(IA, IR) > Eps) {
          AllMatch = false;
          break;
        }
      }
      if (AllMatch) {
        Class.push_back(A);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Classes.push_back({A});
  }
  return Classes;
}

/// Batches the not-yet-measured pairs of \p Pairs through the executor and
/// folds the results into R.PairIpc / R.PairBenchmarks. Measurements land
/// in index-ordered slots and the map fill runs serially, so the outcome
/// is policy-independent.
void measurePairs(BenchmarkRunner &Runner, Executor &E, SelectionResult &R,
                  std::vector<std::pair<InstrId, InstrId>> Pairs) {
  // Normalize, dedupe, and drop already-measured pairs; keep first-seen
  // order (it is deterministic and callers rely on no particular order).
  {
    std::vector<std::pair<InstrId, InstrId>> Fresh;
    std::set<std::pair<InstrId, InstrId>> Seen;
    for (auto [A, B] : Pairs) {
      std::pair<InstrId, InstrId> Key{std::min(A, B), std::max(A, B)};
      if (R.PairIpc.count(Key) || !Seen.insert(Key).second)
        continue;
      Fresh.push_back(Key);
    }
    Pairs = std::move(Fresh);
  }
  std::vector<double> Slots(Pairs.size());
  std::vector<uint8_t> Measured(Pairs.size(), 0);
  E.parallelFor(Pairs.size(), [&](size_t P, unsigned) {
    auto [A, B] = Pairs[P];
    Microkernel K = makePairKernel(A, R.SoloIpc.at(A), B, R.SoloIpc.at(B));
    if (!Runner.accepts(K))
      return;
    Slots[P] = Runner.measureIpc(K);
    Measured[P] = 1;
  });
  for (size_t P = 0; P < Pairs.size(); ++P)
    if (Measured[P]) {
      R.PairIpc[Pairs[P]] = Slots[P];
      ++R.PairBenchmarks;
    }
}

/// True when the measured pair of \p A and \p B fully serializes, i.e. the
/// quadratic kernel takes the sum of the solo times — the direct evidence
/// clusterEquivalent demands before merging two candidates.
bool fullySerializes(const SelectionResult &R, InstrId A, InstrId B,
                     double Eps) {
  double Direct = R.pairIpc(A, B);
  if (Direct < 0.0)
    return false;
  double PairT = (R.SoloIpc.at(A) + R.SoloIpc.at(B)) / Direct;
  return PairT >= 2.0 * (1.0 - Eps);
}

/// Cluster-first pruned clustering of one extension group (see the header
/// file comment). Instead of the O(n²) sweep, members are benchmarked only
/// against cluster representatives: a member joins the first representative
/// of its solo-IPC bucket whose pair with it fully serializes, and seeds a
/// new cluster once every representative of its bucket has been refuted.
/// Representative-vs-representative pairs are always measured (the derived
/// very-basic / most-greedy decisions need them), giving ~n + k² + f·k
/// pair benchmarks for k clusters and f refuted join attempts.
std::vector<std::vector<InstrId>>
clusterPruned(const std::vector<InstrId> &Group, BenchmarkRunner &Runner,
              Executor &E, SelectionResult &R, double Eps) {
  // Solo-IPC buckets (greedy leader in group order): candidates whose solo
  // IPC differs by more than Eps can never be equivalent, so clusters only
  // ever form within a bucket.
  std::vector<std::vector<InstrId>> Buckets;
  for (InstrId A : Group) {
    size_t Placed = Buckets.size();
    for (size_t B = 0; B < Buckets.size(); ++B)
      if (relDiff(R.SoloIpc.at(A), R.SoloIpc.at(Buckets[B].front())) <=
          Eps) {
        Placed = B;
        break;
      }
    if (Placed == Buckets.size())
      Buckets.push_back({});
    Buckets[Placed].push_back(A);
  }

  // One cluster per bucket to start; members join or split on demand.
  struct Cluster {
    InstrId Rep;
    std::vector<InstrId> Members; // Rep first.
  };
  std::vector<Cluster> Clusters;            // Global creation order.
  std::vector<std::vector<size_t>> ByBucket(Buckets.size());
  struct Pending {
    InstrId Id;
    size_t Bucket;
    size_t NextCandidate = 0; // Index into ByBucket[Bucket].
  };
  std::vector<Pending> Unassigned;
  for (size_t B = 0; B < Buckets.size(); ++B) {
    ByBucket[B].push_back(Clusters.size());
    Clusters.push_back({Buckets[B].front(), {Buckets[B].front()}});
    for (size_t M = 1; M < Buckets[B].size(); ++M)
      Unassigned.push_back({Buckets[B][M], B, 0});
  }

  while (!Unassigned.empty()) {
    // Batch this round's measurements: every missing rep×rep pair plus one
    // candidate probe per unassigned member.
    std::vector<std::pair<InstrId, InstrId>> Round;
    for (size_t I = 0; I < Clusters.size(); ++I)
      for (size_t J = I + 1; J < Clusters.size(); ++J)
        Round.push_back({Clusters[I].Rep, Clusters[J].Rep});
    for (const Pending &P : Unassigned)
      Round.push_back(
          {P.Id, Clusters[ByBucket[P.Bucket][P.NextCandidate]].Rep});
    measurePairs(Runner, E, R, std::move(Round));

    // Serial assignment in member order (deterministic).
    std::vector<Pending> Still;
    for (Pending P : Unassigned) {
      size_t ClusterIdx = ByBucket[P.Bucket][P.NextCandidate];
      if (fullySerializes(R, P.Id, Clusters[ClusterIdx].Rep, Eps)) {
        Clusters[ClusterIdx].Members.push_back(P.Id);
        continue;
      }
      if (++P.NextCandidate < ByBucket[P.Bucket].size()) {
        Still.push_back(P); // Probe the bucket's next cluster next round.
        continue;
      }
      // Refuted by every representative of its bucket: new cluster.
      ByBucket[P.Bucket].push_back(Clusters.size());
      Clusters.push_back({P.Id, {P.Id}});
    }
    Unassigned = std::move(Still);
  }

  // Rep×rep pairs involving clusters created in the final round.
  {
    std::vector<std::pair<InstrId, InstrId>> Round;
    for (size_t I = 0; I < Clusters.size(); ++I)
      for (size_t J = I + 1; J < Clusters.size(); ++J)
        Round.push_back({Clusters[I].Rep, Clusters[J].Rep});
    measurePairs(Runner, E, R, std::move(Round));
  }

  std::vector<std::vector<InstrId>> Classes;
  for (Cluster &C : Clusters)
    Classes.push_back(std::move(C.Members));
  return Classes;
}

} // namespace

SelectionResult
palmed::selectBasicInstructions(BenchmarkRunner &Runner,
                                const std::vector<InstrId> &Pool,
                                const SelectionConfig &Config,
                                Executor *Exec) {
  const InstructionSet &Isa = Runner.machine().isa();
  const double Eps = Config.Epsilon;
  // Serial fallback when the caller passes no executor.
  Executor SerialExec(1);
  Executor &E = Exec ? *Exec : SerialExec;
  SelectionResult R;

  // --- Solo IPC measurement and benchmarkability filter. ---
  // Measurements fan out into index-ordered slots; the filter below runs
  // serially in pool order, so the result is policy-independent.
  std::vector<double> SoloSlots(Pool.size());
  E.parallelFor(Pool.size(), [&](size_t I, unsigned) {
    SoloSlots[I] = Runner.measureIpc(Microkernel::single(Pool[I]));
  });
  for (size_t I = 0; I < Pool.size(); ++I) {
    if (SoloSlots[I] < Config.MinIpc)
      continue; // Unbenchmarkable; dropped like the paper's IPC < 0.05.
    R.Survivors.push_back(Pool[I]);
    R.SoloIpc[Pool[I]] = SoloSlots[I];
  }

  // --- Partition by extension group; exclude low-IPC from candidacy. ---
  std::map<ExtClass, std::vector<InstrId>> Groups;
  for (InstrId Id : R.Survivors) {
    if (R.SoloIpc[Id] <= 1.0 - Eps)
      continue; // Low-IPC: mapped later by LPAUX, never basic.
    Groups[Isa.info(Id).Ext].push_back(Id);
  }
  for (const auto &[Ext, Group] : Groups) {
    (void)Ext;
    R.PairBenchmarksQuadratic += Group.size() * (Group.size() - 1) / 2;
  }

  // --- Quadratic benchmarks (full mode): all groups at once. ---
  // The pair list is deterministic (group iteration order is fixed), every
  // measurement writes its own slot, and the PairIpc map is keyed — so the
  // fill order cannot affect the outcome. Under ClusterPairPruning the
  // sweep is skipped; clusterPruned measures its own (much sparser) pair
  // set per group below.
  if (!Config.ClusterPairPruning) {
    std::vector<std::pair<InstrId, InstrId>> Pairs;
    for (auto &[Ext, Group] : Groups) {
      (void)Ext;
      for (size_t I = 0; I < Group.size(); ++I)
        for (size_t J = I + 1; J < Group.size(); ++J)
          Pairs.push_back({Group[I], Group[J]});
    }
    measurePairs(Runner, E, R, std::move(Pairs));
  }

  for (auto &[Ext, Group] : Groups) {
    (void)Ext;
    // --- Equivalence classes; keep representatives. ---
    std::vector<std::vector<InstrId>> Classes =
        Config.ClusterPairPruning
            ? clusterPruned(Group, Runner, E, R, Eps)
            : clusterEquivalent(Group, R, Eps);
    std::vector<InstrId> Reps;
    for (auto &Class : Classes) {
      Reps.push_back(Class.front());
      R.Classes.push_back(Class);
    }
    R.Candidates.insert(R.Candidates.end(), Reps.begin(), Reps.end());

    // --- Very basic instructions: greedy maximal disjoint clique. ---
    // Dj[a] = peers whose pairwise IPC with a is additive.
    std::map<InstrId, std::vector<InstrId>> Dj;
    for (InstrId A : Reps) {
      for (InstrId B : Reps) {
        if (A == B)
          continue;
        double Pair = R.pairIpc(A, B);
        if (Pair < 0.0)
          continue;
        if (isAdditivePair(Pair, R.SoloIpc[A], R.SoloIpc[B], Eps))
          Dj[A].push_back(B);
      }
    }
    std::vector<InstrId> Order = Reps;
    std::sort(Order.begin(), Order.end(), [&](InstrId A, InstrId B) {
      size_t DA = Dj[A].size(), DB = Dj[B].size();
      if (DA != DB)
        return DA > DB; // Most disjoint first.
      return A > B;     // Paper's tie-break.
    });
    std::vector<InstrId> VeryBasic;
    for (InstrId A : Order) {
      if (static_cast<int>(VeryBasic.size()) >= Config.NumBasicPerGroup)
        break;
      bool DisjointFromAll = true;
      for (InstrId Chosen : VeryBasic) {
        if (!std::count(Dj[A].begin(), Dj[A].end(), Chosen)) {
          DisjointFromAll = false;
          break;
        }
      }
      if (DisjointFromAll)
        VeryBasic.push_back(A);
    }

    // --- Most greedy instructions. ---
    // "a at least as greedy as b": a's pairwise IPC vector is pointwise at
    // most b's — a interferes with everything at least as much as b does.
    auto AtLeastAsGreedy = [&](InstrId A, InstrId B) {
      for (InstrId P : Reps) {
        if (P == A || P == B)
          continue;
        double IA = R.pairIpc(A, P);
        double IB = R.pairIpc(B, P);
        if (IA < 0.0 || IB < 0.0)
          continue;
        if (IA > IB + Eps * std::max(IA, IB))
          return false;
      }
      return true;
    };
    std::vector<std::pair<int, InstrId>> GreedyScore;
    for (InstrId A : Reps) {
      int Score = 0;
      for (InstrId B : Reps)
        if (B != A && AtLeastAsGreedy(A, B))
          ++Score;
      GreedyScore.push_back({Score, A});
    }
    std::sort(GreedyScore.begin(), GreedyScore.end(),
              [](const auto &X, const auto &Y) {
                if (X.first != Y.first)
                  return X.first > Y.first;
                return X.second < Y.second;
              });

    std::vector<InstrId> GroupBasic = VeryBasic;
    std::vector<InstrId> MostGreedy;
    for (const auto &[Score, A] : GreedyScore) {
      if (static_cast<int>(GroupBasic.size()) >= Config.NumBasicPerGroup)
        break;
      if (std::count(GroupBasic.begin(), GroupBasic.end(), A))
        continue;
      GroupBasic.push_back(A);
      MostGreedy.push_back(A);
    }

    R.VeryBasic.insert(R.VeryBasic.end(), VeryBasic.begin(), VeryBasic.end());
    R.MostGreedy.insert(R.MostGreedy.end(), MostGreedy.begin(),
                        MostGreedy.end());
    R.Basic.insert(R.Basic.end(), GroupBasic.begin(), GroupBasic.end());
  }

  std::sort(R.Basic.begin(), R.Basic.end());
  std::sort(R.Candidates.begin(), R.Candidates.end());
  return R;
}
