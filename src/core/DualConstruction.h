//===- core/DualConstruction.h - Disjunctive-to-conjunctive dual -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nabla-dual construction of paper Appendix A: from a disjunctive port
/// mapping (the ground-truth MachineModel) build the equivalent conjunctive
/// resource mapping. The resource family is the closure of the µOP port
/// sets under union-of-intersecting-sets — the practical rule the paper
/// states after Theorem A.2 ("if two abstract resources have a non-empty
/// intersection, we then add their union"); disjoint unions never bind
/// because max(a/|A|, b/|B|) >= (a+b)/(|A|+|B|).
///
/// This is both (a) the formal bridge validating the equivalence theorem in
/// tests — the dual's closed-form t(K) must equal the flow-LP optimum — and
/// (b) the predictor underlying the uops.info-style baselines.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_DUALCONSTRUCTION_H
#define PALMED_CORE_DUALCONSTRUCTION_H

#include "core/ResourceMapping.h"
#include "machine/MachineModel.h"

namespace palmed {

/// Options for the dual construction.
struct DualOptions {
  /// Model the decode width as an extra abstract resource used 1/W per
  /// instruction. Port-only tools (uops.info-style) set this to false.
  bool IncludeFrontEnd = true;
  /// Honour non-pipelined µOP occupancies. Port-mapping-only tools assume
  /// fully pipelined units (occupancy 1); setting this to false reproduces
  /// their characteristic IPC over-estimation on divider-heavy kernels.
  bool IncludeOccupancy = true;
  /// Safety cap on the closure size (the paper observes <= 14 resources).
  size_t MaxResources = 4096;
};

/// Builds the conjunctive dual of \p Machine covering every instruction.
/// Resource names are "r" + concatenated port indices (e.g. "r016"), plus
/// "frontend" when enabled.
ResourceMapping buildDualMapping(const MachineModel &Machine,
                                 const DualOptions &Options = DualOptions());

/// Computes the closed set of port masks (see file comment). Exposed for
/// tests.
std::vector<PortMask> computeResourceClosure(const MachineModel &Machine,
                                             size_t MaxResources);

/// Exact port-contention makespan of a bag of µOP demands: each entry is
/// (admissible port set, total demand in cycles). Computed as
/// max over closed union sets J of sum(demand with ports within J) / |J| —
/// the combinatorial equivalent of the scheduling LP (Hall-type duality).
/// Used by the PMEvo baseline to evaluate candidate disjunctive mappings
/// without solving an LP per fitness evaluation.
double optimalPortCycles(
    const std::vector<std::pair<PortMask, double>> &Demands);

} // namespace palmed

#endif // PALMED_CORE_DUALCONSTRUCTION_H
