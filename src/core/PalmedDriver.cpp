//===- core/PalmedDriver.cpp - One-shot pipeline wrapper ------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/PalmedDriver.h"

using namespace palmed;

// Defining the deprecated symbol is intentional; only *calls* should warn.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

PalmedResult palmed::runPalmed(BenchmarkRunner &Runner,
                               const PalmedConfig &Config) {
  Pipeline P(Runner, Config);
  P.run();
  return P.takeResult();
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
