//===- core/ShapeSolver.cpp - LP1: shape of the core mapping --------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "core/ShapeSolver.h"

#include "lp/Milp.h"
#include "support/Compat.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

using namespace palmed;

std::vector<ShapeConstraint>
palmed::deriveKernelConstraints(const KernelObservation &Obs,
                                const std::map<InstrId, size_t> &IndexOf,
                                const std::vector<double> &SoloIpc,
                                double Eps) {
  std::vector<ShapeConstraint> Out;
  assert(Obs.Ipc > 0.0 && "observation with non-positive IPC");
  double T = Obs.K.size() / Obs.Ipc;

  InstrIndexMask Members;
  for (const auto &[Id, Mult] : Obs.K.terms()) {
    auto It = IndexOf.find(Id);
    assert(It != IndexOf.end() && "kernel contains a non-basic instruction");
    Members.set(It->second);
  }

  // Saturating instructions: execution time of the whole kernel equals the
  // time this instruction alone would need (paper: cycles(i_a) = cycles(k)).
  InstrIndexMask Saturating;
  for (const auto &[Id, Mult] : Obs.K.terms()) {
    size_t Index = IndexOf.at(Id);
    double TAlone = Mult / SoloIpc[Index];
    if (std::abs(TAlone - T) <= Eps * T)
      Saturating.set(Index);
  }

  if (Saturating.none()) {
    // No saturating instruction: some resource is shared by every
    // instruction of the kernel (Algo 3 line 7).
    Out.push_back({Members, {}, -1});
    return Out;
  }
  // Each saturating instruction owns a resource unused by the kernel's
  // other instructions (Algo 3 lines 9-10).
  Saturating.forEachSetBit([&](size_t I) {
    InstrIndexMask Bit = InstrIndexMask::bit(I);
    Out.push_back({Bit, Members.without(Bit), static_cast<int>(I)});
  });
  return Out;
}

ShareKind palmed::classifyShare(double T, double TAlone1, double TAlone2,
                                double Eps) {
  double Lo = std::max(TAlone1, TAlone2);
  double Hi = TAlone1 + TAlone2;
  if (T <= Lo * (1.0 + Eps))
    return ShareKind::Additive;
  if (T >= Hi * (1.0 - Eps))
    return ShareKind::Full;
  return ShareKind::Partial;
}

std::vector<ShapeConstraint>
palmed::expandOwnerForbidden(std::vector<ShapeConstraint> Constraints,
                             const ShareMatrix &Shares) {
  if (Shares.empty())
    return Constraints;
  for (ShapeConstraint &C : Constraints) {
    if (C.Owner < 0)
      continue;
    size_t O = static_cast<size_t>(C.Owner);
    for (size_t J = 0; J < Shares[O].size(); ++J) {
      if (J == O)
        continue;
      ShareKind S = Shares[O][J];
      if (S == ShareKind::Additive || S == ShareKind::Unknown)
        C.Forbidden.set(J);
    }
    assert(!C.Required.intersects(C.Forbidden) &&
           "owner constraint contradicts its own members");
  }
  return Constraints;
}

std::vector<ShapeConstraint>
palmed::simplifyConstraints(std::vector<ShapeConstraint> Constraints) {
  std::sort(Constraints.begin(), Constraints.end());
  Constraints.erase(std::unique(Constraints.begin(), Constraints.end()),
                    Constraints.end());
  // Drop constraints implied by a stronger one: c1 is implied by c2 when
  // Required1 subset-of Required2, Forbidden1 subset-of Forbidden2, and the
  // owner semantics carry over (same owner, or c1 demands none).
  std::vector<ShapeConstraint> Out;
  for (size_t I = 0; I < Constraints.size(); ++I) {
    bool Implied = false;
    for (size_t J = 0; J < Constraints.size() && !Implied; ++J) {
      if (I == J)
        continue;
      const ShapeConstraint &C1 = Constraints[I], &C2 = Constraints[J];
      bool SubReq = C1.Required.isSubsetOf(C2.Required);
      bool SubForb = C1.Forbidden.isSubsetOf(C2.Forbidden);
      bool OwnerOk = C1.Owner == -1 || C1.Owner == C2.Owner;
      bool Strictly = !(C1 == C2);
      // Ties (identical) were removed by unique(); guard against the
      // pathological equal case anyway.
      if (SubReq && SubForb && OwnerOk && Strictly)
        Implied = true;
    }
    if (!Implied)
      Out.push_back(Constraints[I]);
  }
  return Out;
}

namespace {

/// True when owners \p A and \p B may saturate one shared resource.
bool ownersCompatible(int A, int B, const ShareMatrix &Shares) {
  if (A < 0 || B < 0 || A == B)
    return true;
  if (Shares.empty())
    return true; // Permissive mode.
  return Shares[static_cast<size_t>(A)][static_cast<size_t>(B)] ==
         ShareKind::Full;
}

/// Branch-and-bound partition of constraints into resource groups.
class PartitionSearch {
public:
  PartitionSearch(const std::vector<ShapeConstraint> &Constraints,
                  const ShareMatrix &Shares)
      : Constraints(Constraints), Shares(Shares) {}

  MappingShape run() {
    // Greedy first-fit incumbent.
    Best = greedy();
    std::vector<Group> Groups;
    dfs(0, Groups);
    MappingShape Shape;
    for (const Group &G : Best)
      Shape.Resources.push_back(G.Required);
    std::sort(Shape.Resources.begin(), Shape.Resources.end(),
              [](const InstrIndexMask &A, const InstrIndexMask &B) {
                size_t CA = A.count(), CB = B.count();
                if (CA != CB)
                  return CA < CB;
                return A < B;
              });
    return Shape;
  }

private:
  struct Group {
    InstrIndexMask Required;
    InstrIndexMask Forbidden;
    /// Owners of member constraints (at most a handful in practice).
    std::vector<int> Owners;
  };

  bool compatible(const Group &G, const ShapeConstraint &C) const {
    // (G.Required | C.Required) must avoid (G.Forbidden | C.Forbidden);
    // the groups' own invariants cover the two same-side intersections.
    if (G.Required.intersects(C.Forbidden) ||
        C.Required.intersects(G.Forbidden) ||
        C.Required.intersects(C.Forbidden))
      return false;
    if (C.Owner >= 0)
      for (int O : G.Owners)
        if (!ownersCompatible(O, C.Owner, Shares))
          return false;
    return true;
  }

  /// Merges \p C into \p G; returns whether the owner list grew, so dfs
  /// can backtrack in O(1) (restore the two masks, pop at most one owner)
  /// instead of copying the whole group.
  static bool absorbTracked(Group &G, const ShapeConstraint &C) {
    G.Required |= C.Required;
    G.Forbidden |= C.Forbidden;
    if (C.Owner >= 0 &&
        std::find(G.Owners.begin(), G.Owners.end(), C.Owner) ==
            G.Owners.end()) {
      G.Owners.push_back(C.Owner);
      return true;
    }
    return false;
  }

  static void absorb(Group &G, const ShapeConstraint &C) {
    (void)absorbTracked(G, C);
  }

  std::vector<Group> greedy() const {
    std::vector<Group> Groups;
    for (const ShapeConstraint &C : Constraints) {
      bool Placed = false;
      for (Group &G : Groups) {
        if (compatible(G, C)) {
          absorb(G, C);
          Placed = true;
          break;
        }
      }
      if (!Placed) {
        Group G;
        absorb(G, C);
        Groups.push_back(std::move(G));
      }
    }
    return Groups;
  }

  void dfs(size_t Index, std::vector<Group> &Groups) {
    if (++Nodes > MaxNodes)
      return; // Keep the incumbent; still a valid (greedy-or-better) shape.
    if (Groups.size() >= Best.size())
      return; // Cannot improve.
    if (Index == Constraints.size()) {
      Best = Groups;
      return;
    }
    const ShapeConstraint &C = Constraints[Index];
    for (size_t G = 0; G < Groups.size(); ++G) {
      if (!compatible(Groups[G], C))
        continue;
      InstrIndexMask SavedReq = Groups[G].Required;
      InstrIndexMask SavedForb = Groups[G].Forbidden;
      bool GrewOwners = absorbTracked(Groups[G], C);
      dfs(Index + 1, Groups);
      Groups[G].Required = SavedReq;
      Groups[G].Forbidden = SavedForb;
      if (GrewOwners)
        Groups[G].Owners.pop_back();
    }
    // Open a new group (only as the last option to curb symmetry).
    Group Fresh;
    absorb(Fresh, C);
    Groups.push_back(std::move(Fresh));
    dfs(Index + 1, Groups);
    Groups.pop_back();
  }

  const std::vector<ShapeConstraint> &Constraints;
  const ShareMatrix &Shares;
  std::vector<Group> Best;
  size_t Nodes = 0;
  static constexpr size_t MaxNodes = 2000000;
};

/// Exact digest of a simplified constraint system plus the share matrix —
/// everything a shape solve depends on. Length-prefixed element lists keep
/// adjacent fields from aliasing (see lp::StructuralDigest).
lp::StructuralDigest::Value
digestShapeProblem(const std::vector<ShapeConstraint> &Constraints,
                   const ShareMatrix &Shares) {
  lp::StructuralDigest D;
  auto AddMask = [&D](const InstrIndexMask &M) {
    D.addSize(M.count());
    M.forEachSetBit([&D](size_t I) { D.addSize(I); });
  };
  D.addSize(Constraints.size());
  for (const ShapeConstraint &C : Constraints) {
    AddMask(C.Required);
    AddMask(C.Forbidden);
    D.addInt(C.Owner);
  }
  D.addSize(Shares.size());
  for (const std::vector<ShareKind> &Row : Shares) {
    D.addSize(Row.size());
    for (ShareKind S : Row)
      D.addU64(static_cast<uint64_t>(S));
  }
  return D.value();
}

/// Bounded thread-local memo for the (deterministic) shape solvers: the
/// refinement loop occasionally re-derives a constraint system it already
/// solved, and re-running the search would reproduce the identical shape.
/// Thread-local because shape solves only ever run on the pipeline's
/// driving thread — no cross-thread publication, so memo hits can never
/// make outcomes or stats depend on scheduling. At the cap the whole memo
/// is dropped (epoch clear), which only costs future misses.
std::map<lp::StructuralDigest::Value, MappingShape> &shapeMemo() {
  thread_local std::map<lp::StructuralDigest::Value, MappingShape> Memo;
  constexpr size_t MaxEntries = 256;
  if (Memo.size() >= MaxEntries)
    Memo.clear();
  return Memo;
}

} // namespace

MappingShape
palmed::solveShapeExact(const std::vector<ShapeConstraint> &Constraints,
                        const ShareMatrix &Shares) {
  std::vector<ShapeConstraint> Expanded =
      expandOwnerForbidden(Constraints, Shares);
  for (const ShapeConstraint &C : Expanded) {
    assert(!C.Required.intersects(C.Forbidden) &&
           "individually unsatisfiable constraint");
    (void)C;
  }
  std::vector<ShapeConstraint> Simplified = simplifyConstraints(Expanded);
  lp::StructuralDigest Key;
  Key.addU64(0x45584143u); // Domain tag: exact search vs MILP.
  lp::StructuralDigest::Value Problem = digestShapeProblem(Simplified, Shares);
  Key.addU64(Problem.Lo);
  Key.addU64(Problem.Hi);
  auto &Memo = shapeMemo();
  if (auto It = Memo.find(Key.value()); It != Memo.end())
    return It->second;
  MappingShape Shape = PartitionSearch(Simplified, Shares).run();
  Memo.emplace(Key.value(), Shape);
  return Shape;
}

MappingShape
palmed::solveShapeMilp(const std::vector<ShapeConstraint> &Constraints,
                       size_t NumInstructions, size_t MaxResources,
                       const ShareMatrix &Shares) {
  std::vector<ShapeConstraint> Cs =
      simplifyConstraints(expandOwnerForbidden(Constraints, Shares));

  lp::Model M;
  // Edge variables rho[i][r] in {0,1}.
  std::vector<std::vector<lp::VarId>> Rho(NumInstructions);
  for (size_t I = 0; I < NumInstructions; ++I)
    for (size_t R = 0; R < MaxResources; ++R)
      Rho[I].push_back(M.addBoolVar("rho_" + std::to_string(I) + "_" +
                                    std::to_string(R)));
  // Resource-used indicators.
  std::vector<lp::VarId> Used;
  for (size_t R = 0; R < MaxResources; ++R) {
    lp::VarId U = M.addBoolVar("used_" + std::to_string(R));
    Used.push_back(U);
    for (size_t I = 0; I < NumInstructions; ++I) {
      lp::LinearExpr E;
      E.add(Rho[I][R], 1.0).add(U, -1.0);
      M.addConstraint(std::move(E), lp::Sense::LE, 0.0);
    }
  }
  // Symmetry breaking: used resources come first.
  for (size_t R = 0; R + 1 < MaxResources; ++R) {
    lp::LinearExpr E;
    E.add(Used[R + 1], 1.0).add(Used[R], -1.0);
    M.addConstraint(std::move(E), lp::Sense::LE, 0.0);
  }
  // Witnesses: each constraint satisfied by at least one resource.
  std::vector<std::vector<lp::VarId>> Witness(Cs.size());
  for (size_t C = 0; C < Cs.size(); ++C) {
    lp::LinearExpr AnyWitness;
    for (size_t R = 0; R < MaxResources; ++R) {
      lp::VarId Y = M.addBoolVar("y_" + std::to_string(C) + "_" +
                                 std::to_string(R));
      Witness[C].push_back(Y);
      AnyWitness.add(Y, 1.0);
      for (size_t I = 0; I < NumInstructions; ++I) {
        if (Cs[C].Required.test(I)) {
          lp::LinearExpr E;
          E.add(Y, 1.0).add(Rho[I][R], -1.0);
          M.addConstraint(std::move(E), lp::Sense::LE, 0.0);
        } else if (Cs[C].Forbidden.test(I)) {
          lp::LinearExpr E;
          E.add(Y, 1.0).add(Rho[I][R], 1.0);
          M.addConstraint(std::move(E), lp::Sense::LE, 1.0);
        }
      }
    }
    M.addConstraint(std::move(AnyWitness), lp::Sense::GE, 1.0);
  }
  // Owner-pair incompatibility: two saturating owners may witness through
  // the same resource only if their pair fully serializes.
  for (size_t C1 = 0; C1 < Cs.size(); ++C1) {
    for (size_t C2 = C1 + 1; C2 < Cs.size(); ++C2) {
      if (Cs[C1].Owner < 0 || Cs[C2].Owner < 0)
        continue;
      if (ownersCompatible(Cs[C1].Owner, Cs[C2].Owner, Shares))
        continue;
      for (size_t R = 0; R < MaxResources; ++R) {
        lp::LinearExpr E;
        E.add(Witness[C1][R], 1.0).add(Witness[C2][R], 1.0);
        M.addConstraint(std::move(E), lp::Sense::LE, 1.0);
      }
    }
  }
  // Objective: minimize the number of resources.
  lp::LinearExpr Obj;
  for (lp::VarId U : Used)
    Obj.add(U, 1.0);
  M.setObjective(std::move(Obj), lp::Goal::Minimize);

  // Memo on the exact model fingerprint (plus the decode dimensions): an
  // identical model re-solved by the deterministic branch-and-bound would
  // reproduce the identical shape.
  lp::StructuralDigest Key;
  Key.addU64(0x4D494C50u); // Domain tag: MILP vs exact search.
  lp::StructuralDigest::Value FP = lp::fingerprintModel(M);
  Key.addU64(FP.Lo);
  Key.addU64(FP.Hi);
  Key.addSize(NumInstructions);
  Key.addSize(MaxResources);
  auto &Memo = shapeMemo();
  if (auto It = Memo.find(Key.value()); It != Memo.end())
    return It->second;

  lp::Solution Sol = lp::solveMilp(M);
  assert(Sol.ok() && "shape MILP must be feasible");

  MappingShape Shape;
  for (size_t R = 0; R < MaxResources; ++R) {
    if (Sol.value(Used[R]) < 0.5)
      continue;
    InstrIndexMask Members;
    for (size_t I = 0; I < NumInstructions; ++I)
      if (Sol.value(Rho[I][R]) > 0.5)
        Members.set(I);
    if (Members.any())
      Shape.Resources.push_back(std::move(Members));
  }
  std::sort(Shape.Resources.begin(), Shape.Resources.end(),
            [](const InstrIndexMask &A, const InstrIndexMask &B) {
              size_t CA = A.count(), CB = B.count();
              if (CA != CB)
                return CA < CB;
              return A < B;
            });
  Memo.emplace(Key.value(), Shape);
  return Shape;
}
