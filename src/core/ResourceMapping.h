//===- core/ResourceMapping.h - Conjunctive resource mapping ---*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central data structure: a *conjunctive bipartite resource
/// mapping* (Def. IV.2). Instructions use abstract resources with fixed
/// proportions rho_i,r; every resource has normalized throughput 1; the
/// execution time of a microkernel K is the closed-form
///
///   t(K) = max_r sum_i sigma_K,i * rho_i,r        (no flow problem!)
///
/// and its throughput (IPC) is |K| / t(K) (Def. IV.3). A non-normalized
/// display view (resource throughput + integer-ish "uses", as in Fig. 1b)
/// is supported for pretty-printing.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_RESOURCEMAPPING_H
#define PALMED_CORE_RESOURCEMAPPING_H

#include "isa/InstructionSet.h"
#include "isa/Microkernel.h"

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace palmed {

/// Index of an abstract resource within a ResourceMapping.
using ResourceId = size_t;

/// Conjunctive bipartite resource mapping over a fixed instruction space.
class ResourceMapping {
public:
  /// Creates a mapping for instructions [0, NumInstructions); all start
  /// unmapped.
  explicit ResourceMapping(size_t NumInstructions);

  /// Adds an abstract resource. \p Throughput is only used by the
  /// non-normalized display view; the stored rho values are normalized.
  ResourceId addResource(std::string Name, double Throughput = 1.0);

  size_t numResources() const { return Resources.size(); }
  size_t numInstructions() const { return Rho.size(); }
  const std::string &resourceName(ResourceId R) const {
    return Resources[R].Name;
  }
  double resourceThroughput(ResourceId R) const {
    return Resources[R].Throughput;
  }

  /// Sets the normalized usage rho_i,r (cycles of r consumed per instance
  /// of i) and marks \p Id mapped.
  void setUsage(InstrId Id, ResourceId R, double NormalizedRho);

  /// Marks \p Id as mapped even if all its usages are zero (an instruction
  /// the tool measured but found to use no modelled resource would predict
  /// infinite throughput; keeping the flag separate makes that explicit).
  void markMapped(InstrId Id);

  /// Normalized usage rho_i,r. Rows are ragged (they only extend to the
  /// last resource explicitly set), so entries never written — including
  /// any index of an unmapped instruction — read as 0.0. That also makes
  /// out-of-range reads well-defined in release builds instead of UB.
  double rho(InstrId Id, ResourceId R) const {
    return Id < Rho.size() && R < Rho[Id].size() ? Rho[Id][R] : 0.0;
  }

  bool isMapped(InstrId Id) const { return Mapped[Id]; }

  /// Number of instructions with at least one measurement-backed mapping.
  size_t numMappedInstructions() const;

  /// True if every distinct instruction of \p K is mapped.
  bool supports(const Microkernel &K) const;

  /// Closed-form execution time per iteration; requires supports(K).
  double predictCycles(const Microkernel &K) const;

  /// Closed-form throughput |K| / t(K); nullopt if some instruction is
  /// unmapped or the kernel stresses no modelled resource (t == 0).
  std::optional<double> predictIpc(const Microkernel &K) const;

  /// Total normalized consumption of one instance of \p Id (the cons()
  /// measure used to pick saturating kernels, paper Sec. V-B).
  double consumption(InstrId Id) const;

  /// Pretty-prints the mapping (one line per mapped instruction).
  void print(std::ostream &OS, const InstructionSet &Isa) const;

  /// Serializes to a line-oriented text format; parseable by fromText.
  std::string toText(const InstructionSet &Isa) const;

  /// Parses toText output. Returns nullopt on malformed input or unknown
  /// instruction names.
  static std::optional<ResourceMapping> fromText(const std::string &Text,
                                                 const InstructionSet &Isa);

private:
  struct Resource {
    std::string Name;
    double Throughput = 1.0;
  };
  std::vector<Resource> Resources;
  /// Ragged rho matrix, Rho[instr][resource]: each row only extends to
  /// the last resource setUsage touched for that instruction; shorter
  /// rows read as 0.0 through rho(). Keeping rows ragged makes
  /// addResource O(1) — a mapping build or load is no longer quadratic in
  /// the resource count (it used to re-resize every row per addResource).
  std::vector<std::vector<double>> Rho;
  std::vector<bool> Mapped;
};

} // namespace palmed

#endif // PALMED_CORE_RESOURCEMAPPING_H
