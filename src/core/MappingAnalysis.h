//===- core/MappingAnalysis.h - Bottleneck analysis -------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating use case beyond raw prediction (Sec. I/III-A):
/// "pinpoint the precise cause of slowdowns in highly optimized codes, and
/// measure the relative usage of the peak performance of the machine".
/// Given a conjunctive mapping and a kernel, this module reports the
/// per-resource loads, the bottleneck resource, each instruction's
/// contribution to it, and the headroom a kernel-tuner has before the next
/// resource saturates.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_MAPPINGANALYSIS_H
#define PALMED_CORE_MAPPINGANALYSIS_H

#include "core/ResourceMapping.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace palmed {

/// Load of one abstract resource under a kernel.
struct ResourceLoad {
  ResourceId Resource = 0;
  std::string Name;
  /// Cycles per iteration this resource is busy.
  double Load = 0.0;
  /// Load / bottleneck load, in [0, 1].
  double RelativeToBottleneck = 0.0;
};

/// Contribution of one instruction to a specific resource's load.
struct InstrContribution {
  InstrId Instr = InvalidInstr;
  double Cycles = 0.0;   ///< sigma_i * rho_i,r.
  double Fraction = 0.0; ///< Share of the resource's total load.
};

/// Full bottleneck report for one kernel.
struct BottleneckReport {
  /// Every resource with non-zero load, sorted by decreasing load.
  std::vector<ResourceLoad> Loads;
  /// Index into Loads of the bottleneck (always 0 when non-empty).
  double PredictedCycles = 0.0;
  double PredictedIpc = 0.0;
  /// Instructions' contributions to the bottleneck resource, sorted by
  /// decreasing share.
  std::vector<InstrContribution> BottleneckContributions;
  /// Relative slack of the second-most-loaded resource: reducing the
  /// bottleneck's load by more than this fraction shifts the bottleneck.
  double HeadroomToNextResource = 0.0;
  /// Number of resources whose load ties the bottleneck within the
  /// measurement tolerance (>= 1 when valid): a tuner shaving the top
  /// contributor must relieve all of them to gain anything.
  size_t NumCoBottlenecks = 0;

  bool valid() const { return !Loads.empty(); }
};

/// Analyzes \p K against \p Mapping. Returns an empty (invalid) report if
/// the mapping does not support the kernel. \p Eps is the relative
/// tolerance of the co-bottleneck tie test (the pipeline-wide 5% default).
BottleneckReport analyzeKernel(const ResourceMapping &Mapping,
                               const Microkernel &K, double Eps = 0.05);

/// Pretty-prints a report ("performance-debugging view"): bottleneck
/// resource, top contributors, and the load profile.
void printReport(std::ostream &OS, const BottleneckReport &Report,
                 const InstructionSet &Isa, size_t MaxRows = 8);

} // namespace palmed

#endif // PALMED_CORE_MAPPINGANALYSIS_H
