//===- core/ShapeSolver.h - LP1: shape of the core mapping -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Sec. V-B / Algorithm 3 (LP1): find the *shape* of the core
/// mapping — how many abstract resources exist and which basic instructions
/// may use each — from microbenchmark observations.
///
/// Every observation reduces to existence constraints over resources viewed
/// as member sets of basic instructions:
///
///  * a kernel with no saturating instruction needs a resource containing
///    all its instructions (SharedAll);
///  * every saturating instruction of a kernel needs a resource containing
///    it and none of the kernel's other instructions (PrivateWithin);
///  * very-basic / most-greedy selection constraints have the same two
///    forms (Algo 3 lines 4-5).
///
/// Minimizing the number of resources subject to these constraints is
/// solved two ways:
///  * solveShapeExact: branch-and-bound partition of the (deduplicated)
///    constraints into compatible groups — a group is satisfiable by one
///    resource iff the union of its Required sets avoids the union of its
///    Forbidden sets. This is the default; it is exact (up to a node
///    budget) and fast at Palmed's sizes.
///  * solveShapeMilp: the paper's 0/1 ILP formulation (witness variables
///    per constraint, resource-used indicators, symmetry breaking) solved
///    by the bundled branch-and-bound. Used by tests to certify the exact
///    solver's optimality and by the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_SHAPESOLVER_H
#define PALMED_CORE_SHAPESOLVER_H

#include "isa/Microkernel.h"
#include "support/BitSet.h"

#include <cstdint>
#include <map>
#include <vector>

namespace palmed {

/// Bit set over basic-instruction indices (not InstrIds). A dynamic
/// BitSet: shape problems are no longer capped at 32 basic instructions
/// (the ordering semantics of BitSet keep sub-64-bit problems
/// bit-identical to the historical uint32_t masks).
using InstrIndexMask = BitSet;

/// One existence constraint on some resource r (as a member set):
/// Required subset of r and r disjoint from Forbidden. When Owner >= 0,
/// the constraint came from an instruction *saturating* a kernel: the
/// resource must additionally carry rho_owner = 1/IPC(owner) — the owner
/// loads it to capacity alone. That extra weight semantics is what makes
/// owner constraints only conditionally mergeable (see ShareKind).
struct ShapeConstraint {
  InstrIndexMask Required;
  InstrIndexMask Forbidden;
  /// Basic-instruction index of the saturating owner, or -1.
  int Owner = -1;

  bool operator==(const ShapeConstraint &O) const {
    return Required == O.Required && Forbidden == O.Forbidden &&
           Owner == O.Owner;
  }
  bool operator<(const ShapeConstraint &O) const {
    if (Required != O.Required)
      return Required < O.Required;
    if (Forbidden != O.Forbidden)
      return Forbidden < O.Forbidden;
    return Owner < O.Owner;
  }
};

/// Classification of a basic-instruction pair from its quadratic benchmark
/// a^IPC(a) b^IPC(b) (each side alone needs exactly one cycle, so the
/// kernel time t lies in [1, 2]):
///  * Additive: t ~= 1 — no shared bottleneck; an additive partner can
///    never sit on a resource an owner saturates (its weight would be
///    forced to zero).
///  * Full: t ~= 2 — complete serialization; both instructions may
///    saturate the same resource.
///  * Partial: anything in between.
///  * Unknown: never measured (e.g. SSE x AVX); treated conservatively
///    like Additive for merge decisions.
enum class ShareKind : uint8_t { Unknown, Additive, Partial, Full };

/// Symmetric pairwise share classification over the basic instructions.
using ShareMatrix = std::vector<std::vector<ShareKind>>;

/// Classifies a pair from the kernel time \p T relative to the solo times
/// \p TAlone1 / \p TAlone2 of each side within the kernel.
ShareKind classifyShare(double T, double TAlone1, double TAlone2,
                        double Eps);

/// Strengthens owner constraints: an owner's resource cannot contain any
/// Additive/Unknown partner of the owner, so those are folded into
/// Forbidden. A uniform preprocessing step applied before either solver.
std::vector<ShapeConstraint>
expandOwnerForbidden(std::vector<ShapeConstraint> Constraints,
                     const ShareMatrix &Shares);

/// The inferred shape: one member set per abstract resource.
struct MappingShape {
  std::vector<InstrIndexMask> Resources;

  size_t numResources() const { return Resources.size(); }
  bool instrUses(size_t InstrIndex, size_t R) const {
    return Resources[R].test(InstrIndex);
  }
};

/// A measured kernel over basic instructions, used for constraint
/// derivation. Multiplicities must be expressed in the same units as the
/// solo IPCs.
struct KernelObservation {
  Microkernel K;
  double Ipc = 0.0;
};

/// Derives the Algorithm 3 constraints of one observation. \p IndexOf maps
/// InstrId -> basic-instruction index; \p SoloIpc is indexed by basic
/// index. \p Eps is the relative tolerance of the saturation test.
std::vector<ShapeConstraint>
deriveKernelConstraints(const KernelObservation &Obs,
                        const std::map<InstrId, size_t> &IndexOf,
                        const std::vector<double> &SoloIpc, double Eps);

/// Removes duplicates and constraints implied by stronger ones.
std::vector<ShapeConstraint>
simplifyConstraints(std::vector<ShapeConstraint> Constraints);

/// Exact minimum-resource shape (see file comment). Constraints must be
/// individually satisfiable (Required and Forbidden disjoint). \p Shares
/// gates which owner constraints may share a resource (two distinct owners
/// need ShareKind::Full); pass an empty matrix to treat every pair as
/// Partial (fully permissive).
MappingShape solveShapeExact(const std::vector<ShapeConstraint> &Constraints,
                             const ShareMatrix &Shares = {});

/// The ILP formulation solved with lp::solveMilp. \p MaxResources bounds
/// the resource pool (use solveShapeExact's answer + slack, or a greedy
/// bound). Returns the shape of an optimal solution. Owner-pair
/// compatibility is encoded as witness-exclusion rows.
MappingShape solveShapeMilp(const std::vector<ShapeConstraint> &Constraints,
                            size_t NumInstructions, size_t MaxResources,
                            const ShareMatrix &Shares = {});

} // namespace palmed

#endif // PALMED_CORE_SHAPESOLVER_H
