//===- core/PalmedDriver.h - One-shot pipeline wrapper ---------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backwards-compatibility shim for the historical one-shot entry point.
/// The pipeline itself — and the PalmedConfig / PalmedStats / PalmedResult
/// types this header used to define — now live in the public facade
/// (palmed/Pipeline.h, re-exported through palmed/palmed.h), which exposes
/// the three Fig. 3 stages individually with observation and cancellation.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_PALMEDDRIVER_H
#define PALMED_CORE_PALMEDDRIVER_H

#include "palmed/Pipeline.h"

namespace palmed {

/// Runs the full pipeline on every instruction of the runner's machine.
/// Equivalent to `Pipeline(Runner, Config).run()`.
[[deprecated("use palmed::Pipeline (see palmed/palmed.h)")]] PalmedResult
runPalmed(BenchmarkRunner &Runner,
          const PalmedConfig &Config = PalmedConfig());

} // namespace palmed

#endif // PALMED_CORE_PALMEDDRIVER_H
