//===- core/PalmedDriver.h - End-to-end Palmed pipeline --------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pipeline of paper Fig. 3:
///
///   1. basic-instruction selection (Algo 1, Selection.h);
///   2. core mapping (Algo 2): seed benchmarks {a, aabb, aMb}, iterated
///      shape inference with benchmark enrichment (LP1, ShapeSolver.h),
///      edge weights (LP2, BwpSolver.h), and saturating-kernel selection;
///   3. complete mapping (Algo 5): every remaining benchmarkable
///      instruction is mapped against the frozen core via per-resource
///      saturation benchmarks Ksat(i, r) = i^IPC(i) sat[r]^(L * IPC(sat[r])).
///
/// The only interaction with the target machine is through a
/// BenchmarkRunner; no performance counters are used, mirroring the
/// paper's core claim.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_PALMEDDRIVER_H
#define PALMED_CORE_PALMEDDRIVER_H

#include "core/BwpSolver.h"
#include "core/ResourceMapping.h"
#include "core/Selection.h"
#include "core/ShapeSolver.h"
#include "sim/BenchmarkRunner.h"

#include <vector>

namespace palmed {

/// Pipeline configuration.
struct PalmedConfig {
  SelectionConfig Selection;
  /// Relative measurement tolerance shared by all comparisons.
  double Epsilon = 0.05;
  /// Multiplicity amplification M of the aMb seed benchmarks (paper uses 4).
  int MRepeat = 4;
  /// Saturation amplification L of the Ksat benchmarks (paper uses 4).
  int LSat = 4;
  /// Weight-problem solution mode (see BwpSolver.h).
  BwpMode Mode = BwpMode::Pinned;
  /// Maximum shape/enrichment iterations (Algo 2's repeat-until loop).
  int MaxShapeIterations = 10;
};

/// Run statistics (feeds the Table II reproduction).
struct PalmedStats {
  size_t NumBenchmarks = 0;       ///< Distinct microbenchmarks executed.
  size_t NumResources = 0;        ///< Abstract resources found.
  size_t NumBasic = 0;            ///< Basic instructions selected.
  size_t NumMapped = 0;           ///< Instructions mapped.
  size_t NumCoreKernels = 0;      ///< Kernels entering LP2.
  size_t NumShapeConstraints = 0; ///< Deduplicated LP1 constraints.
  double CoreSlack = 0.0;         ///< LP2 objective sum(1 - S_K).
  double SelectionSeconds = 0.0;
  double CoreMappingSeconds = 0.0; ///< Shape + weights (the "LP solving").
  double CompleteMappingSeconds = 0.0;
};

/// Pipeline output.
struct PalmedResult {
  ResourceMapping Mapping;
  SelectionResult Selection;
  MappingShape Shape;
  /// One saturating kernel per resource (primary choice, minimal
  /// consumption); may be empty for resources nothing saturates.
  std::vector<Microkernel> SaturatingKernels;
  PalmedStats Stats;
};

/// Runs the full pipeline on every instruction of the runner's machine.
PalmedResult runPalmed(BenchmarkRunner &Runner,
                       const PalmedConfig &Config = PalmedConfig());

} // namespace palmed

#endif // PALMED_CORE_PALMEDDRIVER_H
