//===- core/BwpSolver.h - LP2/LPAUX: bipartite weight problem --*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Algorithm 4 (LP2, the Bipartite Weight Problem) and Algorithm 5
/// (LPAUX): given the shape of the mapping and a set of measured kernels,
/// compute the edge weights rho_i,r.
///
/// For kernel K with measured IPC K̄, the normalized usage of resource r is
///   rho_K,r = (sum_i sigma_K,i rho_i,r) * K̄ / |K|
/// constrained by rho_K,r <= 1, and the objective minimizes
/// sum_K (1 - S_K) with S_K = max_r rho_K,r.
///
/// The `max` in the objective is not linear. Two solution modes:
///  * Pinned (default): each kernel's bottleneck resource is fixed (for
///    saturating kernels it is known by construction; for the rest it is
///    re-derived from the previous iterate), giving a pure LP that is
///    re-solved until the pins stabilize. Matches the paper's stated
///    intent that Ksat(i,r) "forces the saturation of r".
///  * ExactMilp: one argmax indicator per kernel; exact but exponential in
///    the worst case — used by tests and the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_BWPSOLVER_H
#define PALMED_CORE_BWPSOLVER_H

#include "core/ShapeSolver.h"
#include "isa/Microkernel.h"

#include <map>
#include <vector>

namespace palmed {

/// How the BWP objective's max is handled.
enum class BwpMode { Pinned, ExactMilp };

/// A measured kernel entering a weight problem. \p PinnedResource fixes the
/// bottleneck resource; -1 = free (derived by pin iteration / argmax
/// indicators); ConstraintOnly (-2) = the kernel only contributes capacity
/// constraints and is never pinned (used for LPAUX solo kernels, whose
/// bottleneck resource is unknown and must not attract speculative
/// attribution).
struct WeightKernel {
  Microkernel K;
  double Ipc = 0.0;
  int PinnedResource = -1;
  static constexpr int ConstraintOnly = -2;

  double measuredCycles() const { return K.size() / Ipc; }
};

/// Result of the core weight problem.
struct CoreWeights {
  /// Rho[basicIndex][resource], normalized.
  std::vector<std::vector<double>> Rho;
  /// Final objective sum_K (1 - S_K) (prediction slack over the kernels).
  double TotalSlack = 0.0;
};

/// LP2: weights of the basic instructions. \p IndexOf maps InstrId to basic
/// index; kernels may only contain basic instructions. \p SoloIpc (indexed
/// by basic index) enables the balanced tie-break of under-determined
/// weight splits; empty disables it.
CoreWeights solveCoreWeights(const MappingShape &Shape,
                             const std::map<InstrId, size_t> &IndexOf,
                             const std::vector<WeightKernel> &Kernels,
                             BwpMode Mode, int MaxPinIterations = 6,
                             const std::vector<double> &SoloIpc = {});

/// Result of one LPAUX solve.
struct AuxWeights {
  /// Rho[resource] row of the newly mapped instruction.
  std::vector<double> Rho;
  double TotalSlack = 0.0;
  bool Feasible = false;
};

/// LPAUX: weights of one additional instruction \p Inst against the frozen
/// core. \p FrozenRho is indexed [basicIndex][resource]; kernels may
/// contain basic instructions and \p Inst.
AuxWeights solveAuxWeights(const MappingShape &Shape,
                           const std::map<InstrId, size_t> &IndexOf,
                           const std::vector<std::vector<double>> &FrozenRho,
                           InstrId Inst,
                           const std::vector<WeightKernel> &Kernels,
                           BwpMode Mode, int MaxPinIterations = 4);

} // namespace palmed

#endif // PALMED_CORE_BWPSOLVER_H
