//===- core/BwpSolver.h - LP2/LPAUX: bipartite weight problem --*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Algorithm 4 (LP2, the Bipartite Weight Problem) and Algorithm 5
/// (LPAUX): given the shape of the mapping and a set of measured kernels,
/// compute the edge weights rho_i,r.
///
/// For kernel K with measured IPC K̄, the normalized usage of resource r is
///   rho_K,r = (sum_i sigma_K,i rho_i,r) * K̄ / |K|
/// constrained by rho_K,r <= 1, and the objective minimizes
/// sum_K (1 - S_K) with S_K = max_r rho_K,r.
///
/// The `max` in the objective is not linear. Two solution modes:
///  * Pinned (default): each kernel's bottleneck resource is fixed (for
///    saturating kernels it is known by construction; for the rest it is
///    re-derived from the previous iterate), giving a pure LP that is
///    re-solved until the pins stabilize. Matches the paper's stated
///    intent that Ksat(i,r) "forces the saturation of r".
///  * ExactMilp: one argmax indicator per kernel; exact but exponential in
///    the worst case — used by tests and the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_CORE_BWPSOLVER_H
#define PALMED_CORE_BWPSOLVER_H

#include "core/ShapeSolver.h"
#include "isa/Microkernel.h"
#include "lp/Simplex.h"

#include <map>
#include <vector>

namespace palmed {

class Executor;

/// How the BWP objective's max is handled.
enum class BwpMode { Pinned, ExactMilp };

/// Cross-call memo of pinned per-resource BWP blocks (primary LP plus the
/// optional balancing passes), keyed by an exact 128-bit structural digest
/// of the block — capacity rows, variable bounds, balancing scales,
/// tie-break and pinned objective, all by coefficient bit pattern, never
/// by pointer identity (determinism lint). An exact hit replays the
/// stored solution verbatim, which is bit-identical to re-solving because
/// the compat solver is deterministic, and skips the LPs entirely. A
/// second, rows-only ("skeleton") index carries the last exported simplex
/// basis per constraint skeleton, used to warm-start structure-identical
/// solves under a fresh objective; compat-pinned call sites ignore the
/// seed (cold fallback) so their pivot arithmetic stays exact.
/// Both indices are ordered maps: lookups, inserts, and merges are
/// deterministic regardless of thread count.
class BwpSubproblemCache {
public:
  struct Entry {
    /// Final local values of the block, in the resource's local variable
    /// order.
    std::vector<double> Values;
  };

  const Entry *find(const lp::StructuralDigest::Value &D) const;
  /// First insert wins; entries are immutable once published.
  void insert(const lp::StructuralDigest::Value &D, Entry E);

  const lp::SimplexBasis *
  findBasis(const lp::StructuralDigest::Value &Skeleton) const;
  void storeBasis(const lp::StructuralDigest::Value &Skeleton,
                  const lp::SimplexBasis &Basis);

  /// Deterministically folds \p Other in (first insert wins). Used to
  /// publish per-component caches in component-index order after a
  /// decomposed fan-out.
  void merge(BwpSubproblemCache &&Other);

  size_t numEntries() const { return Entries.size(); }
  void clear();

private:
  /// Backstop against unbounded growth in long-lived processes; at the
  /// cap the whole memo is dropped (epoch clear), which only costs
  /// future misses.
  static constexpr size_t MaxEntries = 1u << 20;

  std::map<lp::StructuralDigest::Value, Entry> Entries;
  std::map<lp::StructuralDigest::Value, lp::SimplexBasis> Bases;
};

/// Outputs of one pinned solve, for stats plumbing.
struct BwpSolveStats {
  /// Resource-coupling components of the pinned decomposition (1 when the
  /// problem is monolithic; 0 when the solve never ran or ran ExactMilp).
  int Components = 0;
  /// True when the per-component fan-out path ran (false = monolithic
  /// fallback: dense coupling, decomposition disabled, or no executor).
  bool Decomposed = false;
};

/// Knobs threaded through the pinned BWP solve. All combinations produce
/// bit-identical weights; the knobs only trade work (see the equivalence
/// tests in tests/lp2_test.cpp).
struct BwpSolveOptions {
  /// Fan target for per-component solves; null solves components inline.
  Executor *Exec = nullptr;
  /// Cross-call block memo + skeleton basis store; null disables both.
  /// During a fan-out each component probes the shared cache read-only
  /// plus a component-local overlay, and overlays merge in component
  /// order afterwards — hit patterns are scheduling-independent.
  BwpSubproblemCache *Cache = nullptr;
  /// Reuse per-resource model buffers across pin iterations instead of
  /// reconstructing every lp::Model from scratch (row replace + truncate).
  bool ReuseModels = true;
  /// Split the solve into independent resource-coupling components.
  bool Decompose = true;
  BwpSolveStats *Stats = nullptr;
};

/// A measured kernel entering a weight problem. \p PinnedResource fixes the
/// bottleneck resource; -1 = free (derived by pin iteration / argmax
/// indicators); ConstraintOnly (-2) = the kernel only contributes capacity
/// constraints and is never pinned (used for LPAUX solo kernels, whose
/// bottleneck resource is unknown and must not attract speculative
/// attribution).
struct WeightKernel {
  Microkernel K;
  double Ipc = 0.0;
  int PinnedResource = -1;
  static constexpr int ConstraintOnly = -2;

  double measuredCycles() const { return K.size() / Ipc; }
};

/// Result of the core weight problem.
struct CoreWeights {
  /// Rho[basicIndex][resource], normalized.
  std::vector<std::vector<double>> Rho;
  /// Final objective sum_K (1 - S_K) (prediction slack over the kernels).
  double TotalSlack = 0.0;
};

/// LP2: weights of the basic instructions. \p IndexOf maps InstrId to basic
/// index; kernels may only contain basic instructions. \p SoloIpc (indexed
/// by basic index) enables the balanced tie-break of under-determined
/// weight splits; empty disables it.
CoreWeights solveCoreWeights(const MappingShape &Shape,
                             const std::map<InstrId, size_t> &IndexOf,
                             const std::vector<WeightKernel> &Kernels,
                             BwpMode Mode, int MaxPinIterations = 6,
                             const std::vector<double> &SoloIpc = {});

/// Overload threading the pinned-solve options (cache, decomposition,
/// model reuse, executor) through the solve. The defaulted overload above
/// is equivalent to passing default-constructed options.
CoreWeights solveCoreWeights(const MappingShape &Shape,
                             const std::map<InstrId, size_t> &IndexOf,
                             const std::vector<WeightKernel> &Kernels,
                             BwpMode Mode, const BwpSolveOptions &Options,
                             int MaxPinIterations = 6,
                             const std::vector<double> &SoloIpc = {});

/// Result of one LPAUX solve.
struct AuxWeights {
  /// Rho[resource] row of the newly mapped instruction.
  std::vector<double> Rho;
  double TotalSlack = 0.0;
  bool Feasible = false;
};

/// LPAUX: weights of one additional instruction \p Inst against the frozen
/// core. \p FrozenRho is indexed [basicIndex][resource]; kernels may
/// contain basic instructions and \p Inst.
///
/// \p Options threads the pinned-solve knobs through. LPAUX solves run
/// inside the stage-3 parallelFor, so a caller passing Options.Cache must
/// scope it to one call (or one task): per-call caches keep the hit
/// pattern — and hence the solve/pivot stats — independent of scheduling,
/// which a cache shared across tasks would break. Symmetric resources
/// make call-local hits frequent (the block digest excludes the resource
/// index, so structurally identical per-resource blocks collapse).
AuxWeights solveAuxWeights(const MappingShape &Shape,
                           const std::map<InstrId, size_t> &IndexOf,
                           const std::vector<std::vector<double>> &FrozenRho,
                           InstrId Inst,
                           const std::vector<WeightKernel> &Kernels,
                           BwpMode Mode, int MaxPinIterations = 4,
                           const BwpSolveOptions &Options = {});

} // namespace palmed

#endif // PALMED_CORE_BWPSOLVER_H
