//===- isa/Microkernel.h - Dependency-free instruction multiset -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A microkernel (paper Def. IV.1): an infinite loop over a finite multiset
/// of dependency-free instructions  K = I1^s1 I2^s2 ... Im^sm.  Order is
/// irrelevant; multiplicities may be fractional while a kernel is being
/// constructed (the paper's convention "a a b b" repeats each instruction
/// proportionally to its IPC) and can be rounded to integers within a
/// tolerance, mirroring Sec. VI-A's 5% benchmark-coefficient rounding.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_ISA_MICROKERNEL_H
#define PALMED_ISA_MICROKERNEL_H

#include "isa/Instruction.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace palmed {

class InstructionSet;

/// A multiset of instructions with positive (possibly fractional)
/// multiplicities, kept sorted by instruction id.
class Microkernel {
public:
  using Term = std::pair<InstrId, double>;

  Microkernel() = default;

  /// Kernel holding a single instruction with multiplicity \p Mult.
  static Microkernel single(InstrId Id, double Mult = 1.0);

  /// Adds \p Mult instances of \p Id (merging with an existing term).
  void add(InstrId Id, double Mult);

  /// Merges \p Other into this kernel.
  void add(const Microkernel &Other);

  /// Terms sorted by instruction id; multiplicities are > 0.
  const std::vector<Term> &terms() const { return Terms; }

  bool empty() const { return Terms.empty(); }

  /// Number of distinct instructions.
  size_t numDistinct() const { return Terms.size(); }

  /// Total number of instructions |K| = sum of multiplicities.
  double size() const;

  /// Multiplicity of \p Id (0 if absent).
  double multiplicity(InstrId Id) const;

  bool contains(InstrId Id) const { return multiplicity(Id) > 0.0; }

  /// Returns a copy with every multiplicity scaled by \p Factor > 0.
  Microkernel scaled(double Factor) const;

  /// Rounds multiplicities to integers: each multiplicity is approximated by
  /// a rational with denominator <= \p MaxDenominator and the kernel is
  /// scaled by the common denominator. The relative perturbation of each
  /// multiplicity is bounded by the approximation error (about 1/MaxDen).
  Microkernel roundedToIntegers(int64_t MaxDenominator = 20) const;

  /// True if all multiplicities are integral (within 1e-9).
  bool isIntegral() const;

  /// Canonical text form, e.g. "ADDSS^2 BSR", for cache keys and debugging.
  std::string str(const InstructionSet &Isa) const;

  /// Parses the str() format back ("NAME[^MULT] NAME[^MULT] ...";
  /// multiplicities may be fractional). Returns nullopt on syntax errors or
  /// unknown instruction names.
  static std::optional<Microkernel> parse(const std::string &Text,
                                          const InstructionSet &Isa);

  bool operator==(const Microkernel &O) const { return Terms == O.Terms; }
  bool operator<(const Microkernel &O) const { return Terms < O.Terms; }

private:
  std::vector<Term> Terms;
};

} // namespace palmed

#endif // PALMED_ISA_MICROKERNEL_H
