//===- isa/InstructionSet.h - Instruction registry --------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of the instructions of a target; the dense InstrId space shared
/// by the machine model, the oracles and the mapping algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_ISA_INSTRUCTIONSET_H
#define PALMED_ISA_INSTRUCTIONSET_H

#include "isa/Instruction.h"

#include <cassert>
#include <map>
#include <vector>

namespace palmed {

/// Append-only instruction registry with name lookup.
class InstructionSet {
public:
  /// Registers \p Info; names must be unique.
  InstrId add(InstrInfo Info);

  size_t size() const { return Infos.size(); }

  const InstrInfo &info(InstrId Id) const {
    assert(Id < Infos.size() && "instruction id out of range");
    return Infos[Id];
  }

  const std::string &name(InstrId Id) const { return info(Id).Name; }

  /// Returns the id for \p Name, or InvalidInstr if unknown.
  InstrId findByName(const std::string &Name) const;

  /// All ids, in registration order.
  std::vector<InstrId> allIds() const;

private:
  std::vector<InstrInfo> Infos;
  std::map<std::string, InstrId> ByName;
};

} // namespace palmed

#endif // PALMED_ISA_INSTRUCTIONSET_H
