//===- isa/InstructionSet.cpp - Instruction registry ----------------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "isa/InstructionSet.h"

using namespace palmed;

const char *palmed::categoryName(InstrCategory Cat) {
  switch (Cat) {
  case InstrCategory::IntAlu:
    return "int-alu";
  case InstrCategory::IntMul:
    return "int-mul";
  case InstrCategory::IntDiv:
    return "int-div";
  case InstrCategory::Shift:
    return "shift";
  case InstrCategory::Branch:
    return "branch";
  case InstrCategory::Load:
    return "load";
  case InstrCategory::Store:
    return "store";
  case InstrCategory::AddressGen:
    return "agu";
  case InstrCategory::FpAdd:
    return "fp-add";
  case InstrCategory::FpMul:
    return "fp-mul";
  case InstrCategory::FpDiv:
    return "fp-div";
  case InstrCategory::VecInt:
    return "vec-int";
  case InstrCategory::VecShuffle:
    return "vec-shuffle";
  case InstrCategory::Other:
    return "other";
  }
  return "unknown";
}

const char *palmed::extClassName(ExtClass Ext) {
  switch (Ext) {
  case ExtClass::Base:
    return "base";
  case ExtClass::Sse:
    return "sse";
  case ExtClass::Avx:
    return "avx";
  case ExtClass::Avx512:
    return "avx512";
  case ExtClass::Mmx:
    return "mmx";
  case ExtClass::X87:
    return "x87";
  }
  return "unknown";
}

InstrId InstructionSet::add(InstrInfo Info) {
  assert(ByName.find(Info.Name) == ByName.end() && "duplicate name");
  InstrId Id = static_cast<InstrId>(Infos.size());
  ByName.emplace(Info.Name, Id);
  Infos.push_back(std::move(Info));
  return Id;
}

InstrId InstructionSet::findByName(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? InvalidInstr : It->second;
}

std::vector<InstrId> InstructionSet::allIds() const {
  std::vector<InstrId> Ids(size());
  for (size_t I = 0; I != Ids.size(); ++I)
    Ids[I] = static_cast<InstrId>(I);
  return Ids;
}
