//===- isa/Microkernel.cpp - Dependency-free instruction multiset --------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "isa/Microkernel.h"

#include "isa/InstructionSet.h"
#include "support/Fraction.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace palmed;

Microkernel Microkernel::single(InstrId Id, double Mult) {
  Microkernel K;
  K.add(Id, Mult);
  return K;
}

void Microkernel::add(InstrId Id, double Mult) {
  assert(Mult > 0.0 && "multiplicity must be positive");
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), Id,
      [](const Term &T, InstrId Key) { return T.first < Key; });
  if (It != Terms.end() && It->first == Id) {
    It->second += Mult;
    return;
  }
  Terms.insert(It, {Id, Mult});
}

void Microkernel::add(const Microkernel &Other) {
  for (const Term &T : Other.Terms)
    add(T.first, T.second);
}

double Microkernel::size() const {
  double Sum = 0.0;
  for (const Term &T : Terms)
    Sum += T.second;
  return Sum;
}

double Microkernel::multiplicity(InstrId Id) const {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), Id,
      [](const Term &T, InstrId Key) { return T.first < Key; });
  if (It != Terms.end() && It->first == Id)
    return It->second;
  return 0.0;
}

Microkernel Microkernel::scaled(double Factor) const {
  assert(Factor > 0.0 && "scale factor must be positive");
  Microkernel K = *this;
  for (Term &T : K.Terms)
    T.second *= Factor;
  return K;
}

Microkernel Microkernel::roundedToIntegers(int64_t MaxDenominator) const {
  // Approximate each multiplicity by a bounded-denominator rational, then
  // scale the kernel by the least common multiple of the denominators.
  int64_t CommonDen = 1;
  std::vector<Fraction> Fracs;
  Fracs.reserve(Terms.size());
  for (const Term &T : Terms) {
    Fraction F = approximateRatio(T.second, MaxDenominator);
    if (F.Num == 0)
      F = {1, MaxDenominator}; // Keep a trace amount rather than dropping.
    Fracs.push_back(F);
    CommonDen = lcm(CommonDen, F.Den);
  }
  Microkernel K;
  for (size_t I = 0; I != Terms.size(); ++I) {
    int64_t Count = Fracs[I].Num * (CommonDen / Fracs[I].Den);
    K.add(Terms[I].first, static_cast<double>(Count));
  }
  return K;
}

bool Microkernel::isIntegral() const {
  for (const Term &T : Terms)
    if (std::abs(T.second - std::round(T.second)) > 1e-9)
      return false;
  return true;
}

std::string Microkernel::str(const InstructionSet &Isa) const {
  std::string Out;
  for (const Term &T : Terms) {
    if (!Out.empty())
      Out += ' ';
    Out += Isa.name(T.first);
    if (std::abs(T.second - 1.0) > 1e-12) {
      char Buf[32];
      if (std::abs(T.second - std::round(T.second)) < 1e-9)
        std::snprintf(Buf, sizeof(Buf), "^%lld",
                      static_cast<long long>(std::llround(T.second)));
      else
        std::snprintf(Buf, sizeof(Buf), "^%.4g", T.second);
      Out += Buf;
    }
  }
  return Out;
}

std::optional<Microkernel> Microkernel::parse(const std::string &Text,
                                              const InstructionSet &Isa) {
  Microkernel K;
  std::istringstream IS(Text);
  std::string Token;
  while (IS >> Token) {
    std::string Name = Token;
    double Mult = 1.0;
    size_t Caret = Token.find('^');
    if (Caret != std::string::npos) {
      Name = Token.substr(0, Caret);
      std::string MultStr = Token.substr(Caret + 1);
      char *End = nullptr;
      Mult = std::strtod(MultStr.c_str(), &End);
      // !(Mult > 0.0) also rejects NaN, which compares false against
      // everything; kernel text arrives over the wire, so "^nan"/"^inf"
      // must not leak non-finite multiplicities into predictions.
      if (End == MultStr.c_str() || *End != 0 || !std::isfinite(Mult) ||
          !(Mult > 0.0))
        return std::nullopt;
    }
    InstrId Id = Isa.findByName(Name);
    if (Id == InvalidInstr)
      return std::nullopt;
    K.add(Id, Mult);
  }
  if (K.empty())
    return std::nullopt;
  return K;
}
