//===- isa/Instruction.h - Instruction identity and metadata ---*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction identity used throughout the library. Palmed treats
/// instructions as opaque tokens to benchmark; the only metadata the
/// algorithms need are the name, the vector-extension class (the paper
/// forbids mixing SSE and AVX in one microbenchmark, Sec. VI-A) and a broad
/// functional category (used by the synthetic workload generators).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_ISA_INSTRUCTION_H
#define PALMED_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

namespace palmed {

/// Dense instruction identifier; index into an InstructionSet.
using InstrId = uint32_t;

constexpr InstrId InvalidInstr = ~InstrId{0};

/// Vector-extension class. The microbenchmark generator refuses kernels
/// mixing Sse and Avx instructions, mirroring the paper's mitigation for
/// cross-extension transition penalties; the other classes carry no mixing
/// rule and exist to partition large ISAs for selection (Algorithm 1 runs
/// per extension group).
enum class ExtClass : uint8_t {
  Base,   ///< Scalar integer / control flow / memory.
  Sse,    ///< 128-bit vector class.
  Avx,    ///< 256-bit vector class.
  Avx512, ///< 512-bit vector class.
  Mmx,    ///< 64-bit legacy vector class.
  X87,    ///< Legacy scalar floating point.
};

/// Number of ExtClass values (the maximum extension-group count a
/// synthetic ISA can spread selection over).
constexpr unsigned NumExtClasses = 6;

/// Broad functional category; drives workload generation profiles
/// (SPEC-like vs PolyBench-like instruction mixes) and synthetic ISA
/// construction. Not consulted by the mapping algorithms themselves.
enum class InstrCategory : uint8_t {
  IntAlu,
  IntMul,
  IntDiv,
  Shift,
  Branch,
  Load,
  Store,
  AddressGen,
  FpAdd,
  FpMul,
  FpDiv,
  VecInt,
  VecShuffle,
  Other,
};

/// Returns a human-readable category name.
const char *categoryName(InstrCategory Cat);

/// Returns a human-readable extension-class name.
const char *extClassName(ExtClass Ext);

/// Static description of one instruction.
struct InstrInfo {
  std::string Name;
  ExtClass Ext = ExtClass::Base;
  InstrCategory Category = InstrCategory::Other;
};

} // namespace palmed

#endif // PALMED_ISA_INSTRUCTION_H
