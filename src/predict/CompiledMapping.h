//===- predict/CompiledMapping.h - Streaming-layout mapping ----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An immutable, prediction-optimized compilation of a ResourceMapping.
/// The mutable mapping stores a row-major Rho[instr][resource] matrix that
/// is mostly zeros (each instruction uses a handful of resources) and may
/// carry resources no instruction uses at all. Compilation drops the
/// zero-usage resources, renumbers the survivors into a contiguous "live"
/// index space, and lays each instruction's usages out twice:
///
///  * CSR edges (live-resource index, rho) for sparse rows — the common
///    case; and
///  * a dense row of all live-resource rhos for high-degree instructions,
///    where streaming the contiguous row beats chasing edge indices.
///
/// Both layouts produce bit-identical loads: within one resource the
/// additions happen in kernel term order exactly as the scalar
/// ResourceMapping::predictCycles double loop performs them, skipped zero
/// edges contribute +0.0 to a non-negative accumulator (a bitwise no-op),
/// and dropped resources always carry load +0.0, which never changes a max
/// that starts at +0.0. See predict/BatchEngine.h for the batch drivers.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PREDICT_COMPILEDMAPPING_H
#define PALMED_PREDICT_COMPILEDMAPPING_H

#include "core/ResourceMapping.h"
#include "predict/KernelBatch.h"

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace palmed {
namespace predict {

/// Immutable compiled form of a ResourceMapping (plus an optional set of
/// instructions to decline, mirroring MappingPredictor's coverage model).
class CompiledMapping {
public:
  CompiledMapping() = default;

  /// Compiles \p M. Instructions in \p Unsupported predict as unsupported
  /// even when the mapping covers them (MappingPredictor's decline set).
  static CompiledMapping compile(const ResourceMapping &M,
                                 const std::set<InstrId> &Unsupported = {});

  /// Instruction-space size the mapping was compiled for.
  size_t numInstructions() const { return NumInstr; }

  /// Number of surviving (non-zero-usage) resources.
  uint32_t numLiveResources() const { return NumLive; }

  /// Original ResourceId of live resource \p Live. Live indices preserve
  /// the original resource order (ascending ResourceId).
  ResourceId liveResourceId(uint32_t Live) const { return LiveIds[Live]; }

  /// True when \p Id is mapped and not declined — i.e. kernels made of
  /// such instructions get a prediction.
  bool predictable(InstrId Id) const {
    return Id < NumInstr && Predictable[Id] != 0;
  }

  /// True when every term of batch kernel \p K is predictable.
  bool supports(const KernelBatch &B, size_t K) const;

  /// Computes kernel \p K's per-live-resource loads into \p Loads (room
  /// for numLiveResources() doubles) and the closed-form cycles
  /// max_r(load) into \p CyclesOut. Returns false — leaving the outputs
  /// unspecified — when the kernel contains an unpredictable instruction.
  /// Bit-identical to ResourceMapping::predictCycles on supported kernels.
  bool kernelCycles(const KernelBatch &B, size_t K, double *Loads,
                    double *CyclesOut) const;

  /// Checked IPC |K| / cycles; nullopt when unsupported or the kernel
  /// stresses no live resource. Bit-identical to
  /// ResourceMapping::predictIpc. \p Loads is caller-provided scratch.
  std::optional<double> kernelIpc(const KernelBatch &B, size_t K,
                                  double *Loads) const;

private:
  size_t NumInstr = 0;
  uint32_t NumLive = 0;
  /// Live index -> original ResourceId, ascending.
  std::vector<ResourceId> LiveIds;
  /// Per-instruction predictability flag (char, not vector<bool>: the
  /// support scan is on the hot path).
  std::vector<char> Predictable;

  /// CSR edges: instruction Id's usages are
  /// [EdgeBegin[Id], EdgeBegin[Id + 1]) pairs of (EdgeLive, EdgeRho),
  /// in ascending live-index order.
  std::vector<size_t> EdgeBegin;
  std::vector<uint32_t> EdgeLive;
  std::vector<double> EdgeRho;

  /// Dense rows for high-degree instructions: DenseOff[Id] is an offset
  /// into Dense of a NumLive-wide rho row, or NoDenseRow for CSR-only
  /// instructions.
  static constexpr size_t NoDenseRow = static_cast<size_t>(-1);
  std::vector<size_t> DenseOff;
  std::vector<double> Dense;
};

} // namespace predict
} // namespace palmed

#endif // PALMED_PREDICT_COMPILEDMAPPING_H
