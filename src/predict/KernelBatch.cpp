//===- predict/KernelBatch.cpp - Structure-of-arrays kernel batch ---------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "predict/KernelBatch.h"

using namespace palmed;
using namespace palmed::predict;

void KernelBatch::reserve(size_t NumKernels, size_t NumTerms) {
  Ids.reserve(NumTerms);
  Mults.reserve(NumTerms);
  Offsets.reserve(NumKernels + 1);
  Sizes.reserve(NumKernels);
}

size_t KernelBatch::add(const Microkernel &K) {
  double Size = 0.0;
  for (const auto &[Id, Mult] : K.terms()) {
    Ids.push_back(Id);
    Mults.push_back(Mult);
    Size += Mult;
  }
  Offsets.push_back(Ids.size());
  Sizes.push_back(Size);
  return Sizes.size() - 1;
}

void KernelBatch::clear() {
  Ids.clear();
  Mults.clear();
  Offsets.assign(1, 0);
  Sizes.clear();
}
