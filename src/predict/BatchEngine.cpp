//===- predict/BatchEngine.cpp - Batched prediction drivers ---------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "predict/BatchEngine.h"

#include "support/Approx.h"

#include <algorithm>

using namespace palmed;
using namespace palmed::predict;

namespace {

/// Per-worker scratch: the load vector plus the (load, live index) sort
/// buffer of the detailed path. Sized once per batch, reused per kernel.
struct WorkerScratch {
  std::vector<double> Loads;
  std::vector<std::pair<double, uint32_t>> Sorted;

  explicit WorkerScratch(uint32_t NumLive)
      // Never zero-sized: Loads.data() feeds pointer arithmetic even when
      // the mapping has no live resources.
      : Loads(std::max<uint32_t>(1, NumLive), 0.0) {}
};

/// Serial worker over kernels [Begin, End): each kernel's IPC goes to its
/// own slot, so any partition into ranges produces identical output.
void ipcRange(const CompiledMapping &CM, const KernelBatch &B, size_t Begin,
              size_t End, WorkerScratch &S, std::optional<double> *Out) {
  for (size_t K = Begin; K != End; ++K)
    Out[K] = CM.kernelIpc(B, K, S.Loads.data());
}

/// Serial detailed worker: replicates analyzeKernel's co-bottleneck
/// selection on top of the engine loads. Live indices ascend with the
/// original ResourceIds, so sorting (load desc, live index asc) matches
/// analyzeKernel's (load desc, ResourceId asc) order exactly.
void detailRange(const CompiledMapping &CM, const KernelBatch &B, double Eps,
                 size_t Begin, size_t End, WorkerScratch &S,
                 KernelDetail *Out) {
  const uint32_t NumLive = CM.numLiveResources();
  for (size_t K = Begin; K != End; ++K) {
    KernelDetail &D = Out[K];
    D = KernelDetail();
    double Cycles = 0.0;
    if (!CM.kernelCycles(B, K, S.Loads.data(), &Cycles) || Cycles <= 0.0)
      continue;
    D.Supported = true;
    D.Cycles = Cycles;
    D.Ipc = B.kernelSize(K) / Cycles;

    S.Sorted.clear();
    for (uint32_t R = 0; R < NumLive; ++R)
      if (S.Loads[R] > 0.0)
        S.Sorted.emplace_back(S.Loads[R], R);
    std::sort(S.Sorted.begin(), S.Sorted.end(),
              [](const std::pair<double, uint32_t> &A,
                 const std::pair<double, uint32_t> &B2) {
                if (A.first != B2.first)
                  return A.first > B2.first;
                return A.second < B2.second;
              });
    // Cycles == the sorted front's load (both are the same max), so this
    // is analyzeKernel's approxEqual(load, bottleneck) tie count.
    size_t NumCo = 0;
    for (const auto &[Load, Live] : S.Sorted)
      if (approxEqual(Load, Cycles, Eps))
        ++NumCo;
    size_t N = std::min(NumCo, S.Sorted.size());
    D.CoBottlenecks.reserve(N);
    for (size_t I = 0; I < N; ++I)
      D.CoBottlenecks.push_back(
          static_cast<uint32_t>(CM.liveResourceId(S.Sorted[I].second)));
  }
}

/// Contiguous chunk size for the executor fan-out: large enough to
/// amortize item claiming on million-kernel batches, small enough to
/// load-balance small ones. Purely a scheduling knob — results are
/// index-slotted, so any value is bit-safe.
size_t chunkSizeFor(size_t NumKernels, unsigned NumWorkers) {
  return std::max<size_t>(64, NumKernels / (size_t(NumWorkers) * 8) + 1);
}

/// Shared fan-out shell: runs Range(Begin, End, Scratch) serially, or in
/// contiguous chunks over the executor with one scratch per worker.
template <typename RangeFn>
void runBatch(const CompiledMapping &CM, size_t NumKernels, Executor *Exec,
              const RangeFn &Range) {
  if (NumKernels == 0)
    return;
  if (!Exec || Exec->numWorkers() == 1 || NumKernels == 1) {
    WorkerScratch S(CM.numLiveResources());
    Range(0, NumKernels, S);
    return;
  }
  const unsigned W = Exec->numWorkers();
  const size_t Chunk = chunkSizeFor(NumKernels, W);
  const size_t NumChunks = (NumKernels + Chunk - 1) / Chunk;
  std::vector<WorkerScratch> Scratch(W, WorkerScratch(CM.numLiveResources()));
  Exec->parallelFor(NumChunks, [&](size_t C, unsigned Worker) {
    const size_t Begin = C * Chunk;
    const size_t End = std::min(NumKernels, Begin + Chunk);
    Range(Begin, End, Scratch[Worker]);
  });
}

} // namespace

void palmed::predict::predictIpcBatch(const CompiledMapping &CM,
                                      const KernelBatch &B,
                                      std::optional<double> *Out,
                                      Executor *Exec) {
  runBatch(CM, B.size(), Exec,
           [&](size_t Begin, size_t End, WorkerScratch &S) {
             ipcRange(CM, B, Begin, End, S, Out);
           });
}

void palmed::predict::predictDetailedBatch(const CompiledMapping &CM,
                                           const KernelBatch &B, double Eps,
                                           KernelDetail *Out,
                                           Executor *Exec) {
  runBatch(CM, B.size(), Exec,
           [&](size_t Begin, size_t End, WorkerScratch &S) {
             detailRange(CM, B, Eps, Begin, End, S, Out);
           });
}
