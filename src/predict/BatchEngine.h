//===- predict/BatchEngine.h - Batched prediction drivers ------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch drivers over a CompiledMapping: one streaming pass predicts a
/// whole KernelBatch, optionally fanned over a palmed::Executor in
/// contiguous chunks with index-slotted results (each kernel's answer is
/// written to its own output slot, every per-kernel reduction runs on one
/// worker) — so Serial and Parallel(N) runs are bit-identical, and both
/// are bit-identical to calling ResourceMapping::predictIpc per kernel.
///
/// predictIpcBatch is the raw-throughput entry point (EvalSession lanes,
/// corpus mode, benches). predictDetailedBatch additionally reports the
/// co-bottleneck resources exactly as core/MappingAnalysis.h's
/// analyzeKernel would (same sort, same approxEqual tie test) — the serve
/// daemon's cold-miss path.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PREDICT_BATCHENGINE_H
#define PALMED_PREDICT_BATCHENGINE_H

#include "predict/CompiledMapping.h"
#include "predict/KernelBatch.h"
#include "support/Executor.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace palmed {
namespace predict {

/// Predicts every kernel of \p B into \p Out (room for B.size() slots):
/// Out[K] = IPC of kernel K, or nullopt when the kernel is unsupported or
/// stresses no live resource — exactly ResourceMapping::predictIpc's
/// contract, bit for bit. \p Exec (optional) fans the batch out in
/// contiguous chunks; results are identical for any worker count.
void predictIpcBatch(const CompiledMapping &CM, const KernelBatch &B,
                     std::optional<double> *Out, Executor *Exec = nullptr);

/// Per-kernel detailed answer of predictDetailedBatch.
struct KernelDetail {
  /// False when the kernel has an unpredictable instruction or zero
  /// cycles (then the other fields are default); mirrors predictIpc
  /// returning nullopt.
  bool Supported = false;
  double Cycles = 0.0;
  double Ipc = 0.0;
  /// Co-bottleneck resource ids (original ResourceMapping ids), most
  /// loaded first — the same prefix analyzeKernel's NumCoBottlenecks
  /// selects with tie tolerance \p Eps.
  std::vector<uint32_t> CoBottlenecks;
};

/// Like predictIpcBatch but also reports each supported kernel's
/// co-bottleneck resources, replicating analyzeKernel's load sort
/// (descending load, ascending resource id) and approxEqual(load,
/// bottleneck, Eps) tie count. \p Out must have room for B.size() slots.
void predictDetailedBatch(const CompiledMapping &CM, const KernelBatch &B,
                          double Eps, KernelDetail *Out,
                          Executor *Exec = nullptr);

} // namespace predict
} // namespace palmed

#endif // PALMED_PREDICT_BATCHENGINE_H
