//===- predict/CompiledMapping.cpp - Streaming-layout mapping -------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "predict/CompiledMapping.h"

#include <algorithm>

using namespace palmed;
using namespace palmed::predict;

CompiledMapping
CompiledMapping::compile(const ResourceMapping &M,
                         const std::set<InstrId> &Unsupported) {
  CompiledMapping C;
  C.NumInstr = M.numInstructions();

  C.Predictable.assign(C.NumInstr, 0);
  for (InstrId Id = 0; Id < C.NumInstr; ++Id)
    C.Predictable[Id] =
        (M.isMapped(Id) && Unsupported.count(Id) == 0) ? 1 : 0;

  // A resource is live when some predictable instruction uses it. Dead
  // resources always accumulate load +0.0, so dropping them cannot change
  // the max (which starts at +0.0) — see the header's bit-identity notes.
  std::vector<char> Live(M.numResources(), 0);
  for (InstrId Id = 0; Id < C.NumInstr; ++Id) {
    if (!C.Predictable[Id])
      continue;
    for (ResourceId R = 0; R < M.numResources(); ++R)
      if (M.rho(Id, R) > 0.0)
        Live[R] = 1;
  }
  std::vector<uint32_t> LiveIndexOf(M.numResources(), 0);
  for (ResourceId R = 0; R < M.numResources(); ++R) {
    if (!Live[R])
      continue;
    LiveIndexOf[R] = C.NumLive++;
    C.LiveIds.push_back(R);
  }

  // CSR edges, ascending live index per instruction (matching the scalar
  // path's ascending-ResourceId resource loop).
  C.EdgeBegin.assign(C.NumInstr + 1, 0);
  for (InstrId Id = 0; Id < C.NumInstr; ++Id) {
    if (C.Predictable[Id])
      for (ResourceId R = 0; R < M.numResources(); ++R)
        if (M.rho(Id, R) > 0.0)
          ++C.EdgeBegin[Id + 1];
    C.EdgeBegin[Id + 1] += C.EdgeBegin[Id];
  }
  C.EdgeLive.reserve(C.EdgeBegin.back());
  C.EdgeRho.reserve(C.EdgeBegin.back());
  for (InstrId Id = 0; Id < C.NumInstr; ++Id) {
    if (!C.Predictable[Id])
      continue;
    for (ResourceId R = 0; R < M.numResources(); ++R) {
      double Rho = M.rho(Id, R);
      if (Rho > 0.0) {
        C.EdgeLive.push_back(LiveIndexOf[R]);
        C.EdgeRho.push_back(Rho);
      }
    }
  }

  // Dense rows where the row is at least a quarter populated: there the
  // branch-free contiguous stream beats the indexed edge walk. Mixing the
  // two layouts is bit-safe — a dense row's extra zero entries add
  // mult * 0.0 == +0.0 to non-negative accumulators.
  C.DenseOff.assign(C.NumInstr, NoDenseRow);
  for (InstrId Id = 0; Id < C.NumInstr; ++Id) {
    size_t Edges = C.EdgeBegin[Id + 1] - C.EdgeBegin[Id];
    if (Edges == 0 || Edges * 4 < C.NumLive)
      continue;
    C.DenseOff[Id] = C.Dense.size();
    C.Dense.resize(C.Dense.size() + C.NumLive, 0.0);
    double *Row = C.Dense.data() + C.DenseOff[Id];
    for (size_t E = C.EdgeBegin[Id]; E != C.EdgeBegin[Id + 1]; ++E)
      Row[C.EdgeLive[E]] = C.EdgeRho[E];
  }
  return C;
}

bool CompiledMapping::supports(const KernelBatch &B, size_t K) const {
  auto [Begin, End] = B.termRange(K);
  const InstrId *Ids = B.termIds();
  for (size_t T = Begin; T != End; ++T)
    if (!predictable(Ids[T]))
      return false;
  return true;
}

bool CompiledMapping::kernelCycles(const KernelBatch &B, size_t K,
                                   double *Loads, double *CyclesOut) const {
  if (!supports(B, K))
    return false;
  auto [Begin, End] = B.termRange(K);
  const InstrId *Ids = B.termIds();
  const double *Mults = B.termMults();

  std::fill(Loads, Loads + NumLive, 0.0);
  // Term-outer / resource-inner: for any fixed resource the additions
  // still happen in term order, so each per-resource sum replays exactly
  // the scalar predictCycles reduction.
  for (size_t T = Begin; T != End; ++T) {
    const InstrId Id = Ids[T];
    const double Mult = Mults[T];
    const size_t Off = DenseOff[Id];
    if (Off != NoDenseRow) {
      const double *Row = Dense.data() + Off;
      for (uint32_t R = 0; R < NumLive; ++R)
        Loads[R] += Mult * Row[R];
    } else {
      for (size_t E = EdgeBegin[Id]; E != EdgeBegin[Id + 1]; ++E)
        Loads[EdgeLive[E]] += Mult * EdgeRho[E];
    }
  }

  // max over doubles is order- and duplicate-insensitive (no NaNs: the
  // loaders reject non-finite rhos and multiplicities).
  double MaxLoad = 0.0;
  for (uint32_t R = 0; R < NumLive; ++R)
    MaxLoad = std::max(MaxLoad, Loads[R]);
  *CyclesOut = MaxLoad;
  return true;
}

std::optional<double> CompiledMapping::kernelIpc(const KernelBatch &B,
                                                 size_t K,
                                                 double *Loads) const {
  double Cycles = 0.0;
  if (!kernelCycles(B, K, Loads, &Cycles))
    return std::nullopt;
  if (Cycles <= 0.0)
    return std::nullopt;
  return B.kernelSize(K) / Cycles;
}
