//===- predict/KernelBatch.h - Structure-of-arrays kernel batch -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A batch of microkernels flattened into structure-of-arrays form: one
/// contiguous term array (instruction ids + multiplicities) plus per-kernel
/// offsets into it. This is the input format of the batched prediction
/// engine (predict/BatchEngine.h): a whole corpus streams through one pass
/// without per-kernel allocations, pointer chasing, or virtual calls.
///
/// Determinism contract: terms are stored in the kernel's own (sorted)
/// term order and the per-kernel |K| is accumulated in that same order, so
/// every floating-point reduction downstream replays exactly the additions
/// the scalar ResourceMapping::predictIpc path would perform.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PREDICT_KERNELBATCH_H
#define PALMED_PREDICT_KERNELBATCH_H

#include "isa/Microkernel.h"

#include <cstddef>
#include <vector>

namespace palmed {
namespace predict {

/// Flattened batch of microkernels (SoA): term ids/multiplicities in one
/// pair of arrays, kernels delimited by an offsets table.
class KernelBatch {
public:
  /// Pre-sizes the backing arrays for \p NumKernels kernels totalling
  /// about \p NumTerms distinct terms.
  void reserve(size_t NumKernels, size_t NumTerms);

  /// Appends \p K; returns its index within the batch.
  size_t add(const Microkernel &K);

  /// Number of kernels in the batch.
  size_t size() const { return Offsets.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Total number of flattened terms across all kernels.
  size_t numTerms() const { return Ids.size(); }

  /// Half-open term range [first, second) of kernel \p K.
  std::pair<size_t, size_t> termRange(size_t K) const {
    return {Offsets[K], Offsets[K + 1]};
  }

  /// |K| = sum of multiplicities, accumulated in term order (bit-identical
  /// to Microkernel::size()).
  double kernelSize(size_t K) const { return Sizes[K]; }

  /// Raw SoA views for the engine's inner loops.
  const InstrId *termIds() const { return Ids.data(); }
  const double *termMults() const { return Mults.data(); }

  void clear();

private:
  std::vector<InstrId> Ids;
  std::vector<double> Mults;
  /// size() + 1 entries; Offsets[0] == 0.
  std::vector<size_t> Offsets{0};
  std::vector<double> Sizes;
};

} // namespace predict
} // namespace palmed

#endif // PALMED_PREDICT_KERNELBATCH_H
