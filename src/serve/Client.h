//===- serve/Client.h - Synchronous serving-protocol client ----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small synchronous client for the palmed_serve protocol: one AF_UNIX
/// connection, blocking request/response. Every call either returns the
/// decoded response or fails with a message in lastError() — including the
/// case where the server answered with an ErrorResponse frame (its text
/// becomes the error message).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SERVE_CLIENT_H
#define PALMED_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <optional>
#include <string>
#include <vector>

namespace palmed {
namespace serve {

/// Blocking client over one connection. Not thread-safe: callers issue one
/// request at a time (open one Client per thread for concurrency).
class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&O) noexcept;
  Client &operator=(Client &&O) noexcept;

  /// Connects to the server's AF_UNIX socket. Returns false (and sets
  /// lastError()) on failure.
  bool connect(const std::string &SocketPath);

  bool connected() const { return Fd >= 0; }
  void disconnect();

  /// Batched prediction query: one IPC + bottleneck answer per kernel, in
  /// request order. nullopt on transport/protocol/server error.
  std::optional<QueryResponse> query(const std::string &Machine,
                                     const std::vector<std::string> &Kernels);

  /// Per-connection + server-wide counters.
  std::optional<StatsResponse> stats();

  /// Machines the server is willing to answer for.
  std::optional<ListResponse> list();

  const std::string &lastError() const { return Error; }

private:
  /// Sends \p Request and reads one response frame into \p Response.
  /// Handles ErrorResponse frames by failing with the server's message.
  bool roundTrip(const std::string &Request, std::string &Response);

  bool fail(std::string Message);

  int Fd = -1;
  std::string Error;
};

} // namespace serve
} // namespace palmed

#endif // PALMED_SERVE_CLIENT_H
