//===- serve/Protocol.h - Length-prefixed serving protocol -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between palmed_serve and its clients: length-prefixed
/// binary frames over a local (AF_UNIX) stream socket.
///
///   frame   := u32 payload-length | payload
///   payload := u8 message-type | body
///
/// All integers are little-endian; doubles travel as their raw IEEE-754
/// bits (predictions read back byte-equal to what the server computed).
/// Requests carry kernels as text ("ADD_0^2 LOAD_0"); the server parses
/// them against the target machine's ISA, so clients need no ISA tables.
///
/// Messages:
///   QueryRequest   machine name + batch of kernel strings
///   QueryResponse  per-kernel status, IPC, bottleneck resource names
///   StatsRequest   -> StatsResponse: named f64 counters (latency, QPS,
///                  cache hits) for the connection and the whole server
///   ListRequest    -> ListResponse: served machines (name, digest, sizes)
///   ErrorResponse  request-level failure (unknown machine, bad frame)
///
/// Encode/decode here is pure byte shuffling shared by Server and Client;
/// the frame I/O helpers at the bottom do the read()/write() loops.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SERVE_PROTOCOL_H
#define PALMED_SERVE_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace palmed {
namespace serve {

/// Message type tag, first byte of every frame payload.
enum class MsgType : uint8_t {
  QueryRequest = 1,
  QueryResponse = 2,
  StatsRequest = 3,
  StatsResponse = 4,
  ListRequest = 5,
  ListResponse = 6,
  ErrorResponse = 7,
};

/// Frames larger than this are refused on both sides (a corrupted length
/// prefix must not turn into a multi-gigabyte allocation).
constexpr size_t MaxFrameBytes = 64u << 20;

/// Batched throughput/bottleneck query for one machine.
struct QueryRequest {
  std::string Machine;
  std::vector<std::string> Kernels;
};

/// Per-kernel answer within a QueryResponse.
struct KernelAnswer {
  enum class Status : uint8_t {
    Ok = 0,          ///< Ipc and Bottlenecks are valid.
    ParseError = 1,  ///< Kernel text did not parse against the ISA.
    Unsupported = 2, ///< Mapping does not cover the kernel.
  };
  Status S = Status::Ok;
  double Ipc = 0.0;
  /// Co-bottleneck abstract-resource names, most loaded first.
  std::vector<std::string> Bottlenecks;
};

struct QueryResponse {
  std::vector<KernelAnswer> Answers;
};

/// Named counters (latency percentiles, QPS, cache hit rates, ...).
struct StatsResponse {
  std::vector<std::pair<std::string, double>> Counters;
};

/// One served machine in a ListResponse.
struct MachineInfo {
  std::string Name;
  uint64_t Digest = 0;
  uint32_t NumResources = 0;
  uint32_t NumMapped = 0;
};

struct ListResponse {
  std::vector<MachineInfo> Machines;
};

struct ErrorResponse {
  std::string Message;
};

/// Encoders produce a full frame payload (type byte included).
std::string encodeQueryRequest(const QueryRequest &Msg);
std::string encodeQueryResponse(const QueryResponse &Msg);

/// Appends one KernelAnswer record (the per-kernel unit inside a
/// QueryResponse body) to \p Out. The server caches these pre-encoded
/// records so a batch slot is served by a single append.
void appendKernelAnswer(std::string &Out, const KernelAnswer &Answer);

/// Appends the QueryResponse header (type byte + answer count); the body
/// is \p NumAnswers appendKernelAnswer records.
void appendQueryResponseHeader(std::string &Out, uint32_t NumAnswers);
std::string encodeStatsRequest();
std::string encodeStatsResponse(const StatsResponse &Msg);
std::string encodeListRequest();
std::string encodeListResponse(const ListResponse &Msg);
std::string encodeErrorResponse(const ErrorResponse &Msg);

/// Type tag of an encoded payload; nullopt when empty or unknown.
std::optional<MsgType> peekType(const std::string &Payload);

/// Decoders check the type byte and full body; nullopt on any mismatch.
std::optional<QueryRequest> decodeQueryRequest(const std::string &Payload);
std::optional<QueryResponse> decodeQueryResponse(const std::string &Payload);
std::optional<StatsResponse> decodeStatsResponse(const std::string &Payload);
std::optional<ListResponse> decodeListResponse(const std::string &Payload);
std::optional<ErrorResponse> decodeErrorResponse(const std::string &Payload);

/// Writes one length-prefixed frame to \p Fd (full write loop). Returns
/// false on I/O error or oversized payload.
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one length-prefixed frame from \p Fd into \p Payload. Returns
/// false on EOF, I/O error, or a length prefix beyond MaxFrameBytes.
bool readFrame(int Fd, std::string &Payload);

} // namespace serve
} // namespace palmed

#endif // PALMED_SERVE_PROTOCOL_H
