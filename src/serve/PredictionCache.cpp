//===- serve/PredictionCache.cpp - Sharded prediction cache ---------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/PredictionCache.h"

using namespace palmed;
using namespace palmed::serve;

PredictionCache::Shard &PredictionCache::shardFor(const std::string &Key) {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

const PredictionCache::Shard &
PredictionCache::shardFor(const std::string &Key) const {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

bool PredictionCache::lookup(const std::string &KernelText,
                             Prediction &Out) const {
  const Shard &S = shardFor(KernelText);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Done.find(KernelText);
  if (It == S.Done.end())
    return false;
  Out = It->second;
  return true;
}

const Prediction *
PredictionCache::lookupPtr(const std::string &KernelText) const {
  const Shard &S = shardFor(KernelText);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Done.find(KernelText);
  return It == S.Done.end() ? nullptr : &It->second;
}

size_t PredictionCache::size() const {
  size_t Total = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Total += S.Done.size();
  }
  return Total;
}

Prediction
PredictionCache::getOrCompute(const std::string &KernelText,
                              const std::function<Prediction()> &Compute,
                              bool *WasHit) {
  Shard &S = shardFor(KernelText);
  {
    std::unique_lock<std::mutex> Lock(S.M);
    for (;;) {
      auto It = S.Done.find(KernelText);
      if (It != S.Done.end()) {
        if (WasHit)
          *WasHit = true;
        return It->second;
      }
      if (!S.InFlight.count(KernelText))
        break;
      // Another worker is predicting this very kernel: wait and replay
      // its entry instead of computing a duplicate.
      S.Cv.wait(Lock);
    }
    S.InFlight.insert(KernelText);
  }
  if (WasHit)
    *WasHit = false;

  Prediction P;
  try {
    P = Compute();
  } catch (...) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.InFlight.erase(KernelText);
    S.Cv.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> Lock(S.M);
  S.InFlight.erase(KernelText);
  S.Done.emplace(KernelText, P);
  S.Cv.notify_all();
  return P;
}
