//===- serve/MappingIO.cpp - Versioned on-disk mapping format -------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/MappingIO.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace palmed;
using namespace palmed::serve;

namespace {

constexpr char Magic[8] = {'P', 'L', 'M', 'D', 'M', 'A', 'P', 'B'};

/// Little-endian append helpers. Explicit byte packing keeps the format
/// identical across hosts (and makes the round trip bit-exact for doubles,
/// which travel as their raw IEEE-754 words).
void putU16(std::string &Out, uint16_t V) {
  for (int I = 0; I < 2; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putF64(std::string &Out, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

void putStr(std::string &Out, const std::string &S) {
  // 16-bit length prefix: truncate rather than write a record whose
  // prefix disagrees with its body. Names here (machine, resource) are
  // always far below 64 KiB in practice.
  size_t Len = std::min<size_t>(S.size(), UINT16_MAX);
  putU16(Out, static_cast<uint16_t>(Len));
  Out.append(S, 0, Len);
}

/// Bounds-checked little-endian reader over a byte string. Reads past the
/// end latch Fail instead of throwing, so a parser can run to completion
/// and report one typed error.
class ByteReader {
public:
  ByteReader(const std::string &Bytes, size_t Offset = 0)
      : Data(Bytes), Pos(Offset) {}

  bool fail() const { return Failed; }
  size_t pos() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Data.size() - Pos; }

  uint16_t u16() { return static_cast<uint16_t>(uint(2)); }
  uint32_t u32() { return static_cast<uint32_t>(uint(4)); }
  uint64_t u64() { return uint(8); }

  double f64() {
    uint64_t Bits = uint(8);
    double V = 0.0;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string str() {
    uint16_t Len = u16();
    if (Failed || Data.size() - Pos < Len) {
      Failed = true;
      return {};
    }
    std::string S = Data.substr(Pos, Len);
    Pos += Len;
    return S;
  }

private:
  uint64_t uint(int NumBytes) {
    if (Failed || Data.size() - Pos < static_cast<size_t>(NumBytes)) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < NumBytes; ++I)
      V |= static_cast<uint64_t>(
               static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += NumBytes;
    return V;
  }

  const std::string &Data;
  size_t Pos;
  bool Failed = false;
};

void setError(MappingIOError *Err, MappingIOStatus Status,
              std::string Message) {
  if (Err) {
    Err->Status = Status;
    Err->Message = std::move(Message);
  }
}

/// FNV-1a over a byte sequence, the primitive under machineDigest.
uint64_t fnv1a(uint64_t H, const void *Data, size_t Size) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

uint64_t fnv1aStr(uint64_t H, const std::string &S) {
  H = fnv1a(H, S.data(), S.size());
  // Separator byte so {"ab","c"} and {"a","bc"} hash differently.
  unsigned char Sep = 0xff;
  return fnv1a(H, &Sep, 1);
}

/// Hashes an integer's low \p NumBytes as little-endian bytes, matching
/// the rest of the format, so the digest is identical across host
/// endiannesses (hashing raw host memory would not be).
uint64_t fnv1aUintLe(uint64_t H, uint64_t V, int NumBytes) {
  unsigned char Bytes[8];
  for (int I = 0; I < NumBytes; ++I)
    Bytes[I] = static_cast<unsigned char>((V >> (8 * I)) & 0xff);
  return fnv1a(H, Bytes, static_cast<size_t>(NumBytes));
}

} // namespace

const char *palmed::serve::mappingIOStatusName(MappingIOStatus Status) {
  switch (Status) {
  case MappingIOStatus::Ok:
    return "ok";
  case MappingIOStatus::IoError:
    return "io-error";
  case MappingIOStatus::BadMagic:
    return "bad-magic";
  case MappingIOStatus::BadVersion:
    return "bad-version";
  case MappingIOStatus::Truncated:
    return "truncated";
  case MappingIOStatus::BadChecksum:
    return "bad-checksum";
  case MappingIOStatus::MachineMismatch:
    return "machine-mismatch";
  case MappingIOStatus::Malformed:
    return "malformed";
  }
  return "unknown";
}

uint32_t palmed::serve::crc32(const void *Data, size_t Size) {
  // Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = 0xFFFFFFFFu;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I)
    Crc = Table[(Crc ^ P[I]) & 0xff] ^ (Crc >> 8);
  return Crc ^ 0xFFFFFFFFu;
}

uint64_t palmed::serve::machineDigest(const MachineModel &Machine) {
  uint64_t H = 0xcbf29ce484222325ULL;
  H = fnv1aStr(H, Machine.name());
  H = fnv1aUintLe(H, Machine.numPorts(), 4);
  for (unsigned P = 0; P < Machine.numPorts(); ++P)
    H = fnv1aStr(H, Machine.portName(P));
  H = fnv1aUintLe(H, Machine.numInstructions(), 8);
  for (InstrId Id = 0; Id < Machine.numInstructions(); ++Id)
    H = fnv1aStr(H, Machine.isa().name(Id));
  return H;
}

std::string palmed::serve::serializeMapping(const ResourceMapping &Mapping,
                                            const MachineModel &Machine) {
  // Payload: resources, ISA width, then one record per *mapped*
  // instruction (zero-edge records preserve markMapped instructions).
  std::string Payload;
  putU32(Payload, static_cast<uint32_t>(Mapping.numResources()));
  for (ResourceId R = 0; R < Mapping.numResources(); ++R) {
    putStr(Payload, Mapping.resourceName(R));
    putF64(Payload, Mapping.resourceThroughput(R));
  }
  putU32(Payload, static_cast<uint32_t>(Mapping.numInstructions()));
  std::string Records;
  uint32_t NumMapped = 0;
  for (InstrId Id = 0; Id < Mapping.numInstructions(); ++Id) {
    if (!Mapping.isMapped(Id))
      continue;
    ++NumMapped;
    putU32(Records, static_cast<uint32_t>(Id));
    std::string Edges;
    uint32_t NumEdges = 0;
    for (ResourceId R = 0; R < Mapping.numResources(); ++R) {
      double V = Mapping.rho(Id, R);
      if (V == 0.0)
        continue;
      ++NumEdges;
      putU32(Edges, static_cast<uint32_t>(R));
      putF64(Edges, V);
    }
    putU32(Records, NumEdges);
    Records += Edges;
  }
  putU32(Payload, NumMapped);
  Payload += Records;

  std::string Out;
  Out.append(Magic, sizeof(Magic));
  putU32(Out, MappingFormatVersion);
  putStr(Out, Machine.name());
  putU64(Out, machineDigest(Machine));
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out += Payload;
  return Out;
}

std::optional<ResourceMapping>
palmed::serve::deserializeMapping(const std::string &Bytes,
                                  const MachineModel &Machine,
                                  MappingIOError *Err) {
  if (Bytes.size() < sizeof(Magic)) {
    setError(Err, MappingIOStatus::Truncated,
             "file shorter than the 8-byte magic");
    return std::nullopt;
  }
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0) {
    setError(Err, MappingIOStatus::BadMagic,
             "not a palmed binary mapping file");
    return std::nullopt;
  }

  ByteReader Header(Bytes, sizeof(Magic));
  uint32_t Version = Header.u32();
  if (!Header.fail() && Version != MappingFormatVersion) {
    setError(Err, MappingIOStatus::BadVersion,
             "unsupported mapping format version " +
                 std::to_string(Version) + " (this build reads version " +
                 std::to_string(MappingFormatVersion) + ")");
    return std::nullopt;
  }
  std::string MachineName = Header.str();
  uint64_t Digest = Header.u64();
  uint32_t PayloadSize = Header.u32();
  uint32_t PayloadCrc = Header.u32();
  if (Header.fail()) {
    setError(Err, MappingIOStatus::Truncated,
             "file ends inside the mapping header");
    return std::nullopt;
  }
  // Digest before the payload-length checks: a wrong-machine file should
  // say so even when it is also shorter/longer than this machine expects.
  if (Digest != machineDigest(Machine)) {
    setError(Err, MappingIOStatus::MachineMismatch,
             "mapping was saved for machine '" + MachineName +
                 "' (digest mismatch with '" + Machine.name() + "')");
    return std::nullopt;
  }
  if (Bytes.size() - Header.pos() < PayloadSize) {
    setError(Err, MappingIOStatus::Truncated,
             "payload declares " + std::to_string(PayloadSize) +
                 " bytes but only " +
                 std::to_string(Bytes.size() - Header.pos()) +
                 " are present");
    return std::nullopt;
  }
  if (crc32(Bytes.data() + Header.pos(), PayloadSize) != PayloadCrc) {
    setError(Err, MappingIOStatus::BadChecksum,
             "payload CRC32 mismatch (corrupted mapping file)");
    return std::nullopt;
  }

  ByteReader R(Bytes, Header.pos());
  auto Malformed = [&](const char *What) -> std::optional<ResourceMapping> {
    setError(Err, MappingIOStatus::Malformed,
             std::string("malformed mapping payload: ") + What);
    return std::nullopt;
  };

  ResourceMapping M(Machine.numInstructions());
  uint32_t NumResources = R.u32();
  for (uint32_t I = 0; I < NumResources && !R.fail(); ++I) {
    std::string Name = R.str();
    double Throughput = R.f64();
    if (R.fail() || Throughput <= 0.0)
      return Malformed("bad resource record");
    M.addResource(std::move(Name), Throughput);
  }
  uint32_t NumInstructions = R.u32();
  if (R.fail())
    return Malformed("unreadable resource table");
  if (NumInstructions != Machine.numInstructions())
    return Malformed("instruction-space size mismatch");
  uint32_t NumMapped = R.u32();
  for (uint32_t I = 0; I < NumMapped && !R.fail(); ++I) {
    uint32_t Id = R.u32();
    uint32_t NumEdges = R.u32();
    if (R.fail() || Id >= NumInstructions)
      return Malformed("bad instruction record");
    M.markMapped(Id);
    for (uint32_t E = 0; E < NumEdges; ++E) {
      uint32_t Res = R.u32();
      double V = R.f64();
      if (R.fail() || Res >= NumResources || V < 0.0)
        return Malformed("bad usage edge");
      M.setUsage(Id, Res, V);
    }
  }
  if (R.fail())
    return Malformed("payload ends inside a record");
  setError(Err, MappingIOStatus::Ok, "");
  return M;
}

bool palmed::serve::saveMapping(const std::string &Path,
                                const ResourceMapping &Mapping,
                                const MachineModel &Machine,
                                MappingIOError *Err) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS) {
    setError(Err, MappingIOStatus::IoError,
             "cannot open '" + Path + "' for writing");
    return false;
  }
  std::string Bytes = serializeMapping(Mapping, Machine);
  OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  OS.flush();
  if (!OS.good()) {
    setError(Err, MappingIOStatus::IoError, "failed writing '" + Path + "'");
    return false;
  }
  setError(Err, MappingIOStatus::Ok, "");
  return true;
}

namespace {

std::optional<std::string> readFile(const std::string &Path,
                                    MappingIOError *Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    setError(Err, MappingIOStatus::IoError, "cannot open '" + Path + "'");
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  if (IS.bad()) {
    setError(Err, MappingIOStatus::IoError, "failed reading '" + Path + "'");
    return std::nullopt;
  }
  return Buffer.str();
}

} // namespace

std::optional<ResourceMapping>
palmed::serve::loadMapping(const std::string &Path,
                           const MachineModel &Machine, MappingIOError *Err) {
  auto Bytes = readFile(Path, Err);
  if (!Bytes)
    return std::nullopt;
  return deserializeMapping(*Bytes, Machine, Err);
}

std::optional<ResourceMapping>
palmed::serve::deserializeMappingAuto(const std::string &Bytes,
                                      const MachineModel &Machine,
                                      MappingIOError *Err) {
  if (Bytes.size() >= sizeof(Magic) &&
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) == 0)
    return deserializeMapping(Bytes, Machine, Err);
  // Legacy line-oriented text format.
  auto M = ResourceMapping::fromText(Bytes, Machine.isa());
  if (!M) {
    setError(Err, MappingIOStatus::Malformed,
             "neither a binary nor a text mapping");
    return std::nullopt;
  }
  setError(Err, MappingIOStatus::Ok, "");
  return M;
}

std::optional<ResourceMapping>
palmed::serve::loadMappingAuto(const std::string &Path,
                               const MachineModel &Machine,
                               MappingIOError *Err) {
  auto Bytes = readFile(Path, Err);
  if (!Bytes)
    return std::nullopt;
  auto M = deserializeMappingAuto(*Bytes, Machine, Err);
  if (!M && Err && Err->Status == MappingIOStatus::Malformed &&
      Err->Message == "neither a binary nor a text mapping")
    Err->Message =
        "'" + Path + "' is neither a binary nor a text mapping file";
  return M;
}
