//===- serve/Client.cpp - Synchronous serving-protocol client -------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace palmed;
using namespace palmed::serve;

Client::~Client() { disconnect(); }

Client::Client(Client &&O) noexcept : Fd(O.Fd), Error(std::move(O.Error)) {
  O.Fd = -1;
}

Client &Client::operator=(Client &&O) noexcept {
  if (this != &O) {
    disconnect();
    Fd = O.Fd;
    Error = std::move(O.Error);
    O.Fd = -1;
  }
  return *this;
}

void Client::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::fail(std::string Message) {
  Error = std::move(Message);
  return false;
}

bool Client::connect(const std::string &SocketPath) {
  disconnect();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return fail("socket path '" + SocketPath +
                "' is empty or too long for AF_UNIX");
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return fail(std::string("socket(): ") + std::strerror(errno));
  int R;
  do {
    R = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (R < 0 && errno == EINTR);
  if (R < 0) {
    int E = errno;
    disconnect();
    return fail("connect to '" + SocketPath + "': " + std::strerror(E));
  }
  Error.clear();
  return true;
}

bool Client::roundTrip(const std::string &Request, std::string &Response) {
  if (Fd < 0)
    return fail("not connected");
  if (!writeFrame(Fd, Request))
    return fail("request write failed (server gone?)");
  if (!readFrame(Fd, Response))
    return fail("response read failed (server gone?)");
  if (auto Err = decodeErrorResponse(Response))
    return fail("server error: " + Err->Message);
  return true;
}

std::optional<QueryResponse>
Client::query(const std::string &Machine,
              const std::vector<std::string> &Kernels) {
  QueryRequest Req;
  Req.Machine = Machine;
  Req.Kernels = Kernels;
  std::string Response;
  if (!roundTrip(encodeQueryRequest(Req), Response))
    return std::nullopt;
  auto Msg = decodeQueryResponse(Response);
  if (!Msg) {
    fail("malformed query response");
    return std::nullopt;
  }
  if (Msg->Answers.size() != Kernels.size()) {
    fail("query response answer count mismatch");
    return std::nullopt;
  }
  return Msg;
}

std::optional<StatsResponse> Client::stats() {
  std::string Response;
  if (!roundTrip(encodeStatsRequest(), Response))
    return std::nullopt;
  auto Msg = decodeStatsResponse(Response);
  if (!Msg)
    fail("malformed stats response");
  return Msg;
}

std::optional<ListResponse> Client::list() {
  std::string Response;
  if (!roundTrip(encodeListRequest(), Response))
    return std::nullopt;
  auto Msg = decodeListResponse(Response);
  if (!Msg)
    fail("malformed list response");
  return Msg;
}
