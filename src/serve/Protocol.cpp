//===- serve/Protocol.cpp - Length-prefixed serving protocol --------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace palmed;
using namespace palmed::serve;

namespace {

void putU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}

void putU16(std::string &Out, uint16_t V) {
  for (int I = 0; I < 2; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putF64(std::string &Out, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

void putStr16(std::string &Out, const std::string &S) {
  // The length prefix is 16-bit; truncate rather than emit a record whose
  // prefix disagrees with its body (an undecodable frame). Reachable via
  // e.g. an ErrorResponse echoing a client-supplied machine name.
  size_t Len = std::min<size_t>(S.size(), UINT16_MAX);
  putU16(Out, static_cast<uint16_t>(Len));
  Out.append(S, 0, Len);
}

void putStr32(std::string &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

/// Bounds-checked little-endian reader (same shape as MappingIO's; kept
/// local because the two formats version independently).
class Reader {
public:
  explicit Reader(const std::string &Bytes, size_t Offset = 0)
      : Data(Bytes), Pos(Offset) {}

  bool fail() const { return Failed; }
  bool atEnd() const { return !Failed && Pos == Data.size(); }
  size_t remaining() const { return Failed ? 0 : Data.size() - Pos; }

  uint8_t u8() { return static_cast<uint8_t>(uint(1)); }
  uint16_t u16() { return static_cast<uint16_t>(uint(2)); }
  uint32_t u32() { return static_cast<uint32_t>(uint(4)); }
  uint64_t u64() { return uint(8); }

  double f64() {
    uint64_t Bits = uint(8);
    double V = 0.0;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string str16() { return bytes(u16()); }
  std::string str32() { return bytes(u32()); }

private:
  std::string bytes(size_t Len) {
    if (Failed || Data.size() - Pos < Len) {
      Failed = true;
      return {};
    }
    std::string S = Data.substr(Pos, Len);
    Pos += Len;
    return S;
  }

  uint64_t uint(int NumBytes) {
    if (Failed || Data.size() - Pos < static_cast<size_t>(NumBytes)) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < NumBytes; ++I)
      V |= static_cast<uint64_t>(
               static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += NumBytes;
    return V;
  }

  const std::string &Data;
  size_t Pos;
  bool Failed = false;
};

bool hasType(const std::string &Payload, MsgType T) {
  return !Payload.empty() &&
         static_cast<uint8_t>(Payload[0]) == static_cast<uint8_t>(T);
}

} // namespace

std::optional<MsgType> palmed::serve::peekType(const std::string &Payload) {
  if (Payload.empty())
    return std::nullopt;
  uint8_t T = static_cast<uint8_t>(Payload[0]);
  if (T < static_cast<uint8_t>(MsgType::QueryRequest) ||
      T > static_cast<uint8_t>(MsgType::ErrorResponse))
    return std::nullopt;
  return static_cast<MsgType>(T);
}

std::string palmed::serve::encodeQueryRequest(const QueryRequest &Msg) {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(MsgType::QueryRequest));
  putStr16(Out, Msg.Machine);
  putU32(Out, static_cast<uint32_t>(Msg.Kernels.size()));
  for (const std::string &K : Msg.Kernels)
    putStr32(Out, K);
  return Out;
}

std::optional<QueryRequest>
palmed::serve::decodeQueryRequest(const std::string &Payload) {
  if (!hasType(Payload, MsgType::QueryRequest))
    return std::nullopt;
  Reader R(Payload, 1);
  QueryRequest Msg;
  Msg.Machine = R.str16();
  uint32_t N = R.u32();
  // The count is untrusted: a 20-byte frame may declare 2^32-1 kernels.
  // Every kernel record needs at least its 4-byte length prefix, so cap
  // the reservation by what the body could possibly hold — the loop below
  // then fails on the truncated read instead of reserve() forcing a
  // multi-gigabyte allocation first.
  Msg.Kernels.reserve(std::min<size_t>(R.fail() ? 0 : N, R.remaining() / 4));
  for (uint32_t I = 0; I < N && !R.fail(); ++I)
    Msg.Kernels.push_back(R.str32());
  if (R.fail() || !R.atEnd())
    return std::nullopt;
  return Msg;
}

void palmed::serve::appendKernelAnswer(std::string &Out,
                                       const KernelAnswer &A) {
  putU8(Out, static_cast<uint8_t>(A.S));
  putF64(Out, A.Ipc);
  putU16(Out, static_cast<uint16_t>(A.Bottlenecks.size()));
  for (const std::string &B : A.Bottlenecks)
    putStr16(Out, B);
}

void palmed::serve::appendQueryResponseHeader(std::string &Out,
                                              uint32_t NumAnswers) {
  putU8(Out, static_cast<uint8_t>(MsgType::QueryResponse));
  putU32(Out, NumAnswers);
}

std::string palmed::serve::encodeQueryResponse(const QueryResponse &Msg) {
  std::string Out;
  appendQueryResponseHeader(Out, static_cast<uint32_t>(Msg.Answers.size()));
  for (const KernelAnswer &A : Msg.Answers)
    appendKernelAnswer(Out, A);
  return Out;
}

std::optional<QueryResponse>
palmed::serve::decodeQueryResponse(const std::string &Payload) {
  if (!hasType(Payload, MsgType::QueryResponse))
    return std::nullopt;
  Reader R(Payload, 1);
  QueryResponse Msg;
  uint32_t N = R.u32();
  // Untrusted count (see decodeQueryRequest): an answer record is at
  // least 11 bytes (status + f64 + bottleneck count).
  Msg.Answers.reserve(std::min<size_t>(R.fail() ? 0 : N, R.remaining() / 11));
  for (uint32_t I = 0; I < N && !R.fail(); ++I) {
    KernelAnswer A;
    uint8_t S = R.u8();
    if (S > static_cast<uint8_t>(KernelAnswer::Status::Unsupported))
      return std::nullopt;
    A.S = static_cast<KernelAnswer::Status>(S);
    A.Ipc = R.f64();
    uint16_t NumBottlenecks = R.u16();
    A.Bottlenecks.reserve(R.fail() ? 0 : NumBottlenecks);
    for (uint16_t B = 0; B < NumBottlenecks && !R.fail(); ++B)
      A.Bottlenecks.push_back(R.str16());
    Msg.Answers.push_back(std::move(A));
  }
  if (R.fail() || !R.atEnd())
    return std::nullopt;
  return Msg;
}

std::string palmed::serve::encodeStatsRequest() {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(MsgType::StatsRequest));
  return Out;
}

std::string palmed::serve::encodeStatsResponse(const StatsResponse &Msg) {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(MsgType::StatsResponse));
  putU32(Out, static_cast<uint32_t>(Msg.Counters.size()));
  for (const auto &[Key, Value] : Msg.Counters) {
    putStr16(Out, Key);
    putF64(Out, Value);
  }
  return Out;
}

std::optional<StatsResponse>
palmed::serve::decodeStatsResponse(const std::string &Payload) {
  if (!hasType(Payload, MsgType::StatsResponse))
    return std::nullopt;
  Reader R(Payload, 1);
  StatsResponse Msg;
  uint32_t N = R.u32();
  for (uint32_t I = 0; I < N && !R.fail(); ++I) {
    std::string Key = R.str16();
    double Value = R.f64();
    Msg.Counters.emplace_back(std::move(Key), Value);
  }
  if (R.fail() || !R.atEnd())
    return std::nullopt;
  return Msg;
}

std::string palmed::serve::encodeListRequest() {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(MsgType::ListRequest));
  return Out;
}

std::string palmed::serve::encodeListResponse(const ListResponse &Msg) {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(MsgType::ListResponse));
  putU16(Out, static_cast<uint16_t>(Msg.Machines.size()));
  for (const MachineInfo &M : Msg.Machines) {
    putStr16(Out, M.Name);
    putU64(Out, M.Digest);
    putU32(Out, M.NumResources);
    putU32(Out, M.NumMapped);
  }
  return Out;
}

std::optional<ListResponse>
palmed::serve::decodeListResponse(const std::string &Payload) {
  if (!hasType(Payload, MsgType::ListResponse))
    return std::nullopt;
  Reader R(Payload, 1);
  ListResponse Msg;
  uint16_t N = R.u16();
  for (uint16_t I = 0; I < N && !R.fail(); ++I) {
    MachineInfo M;
    M.Name = R.str16();
    M.Digest = R.u64();
    M.NumResources = R.u32();
    M.NumMapped = R.u32();
    Msg.Machines.push_back(std::move(M));
  }
  if (R.fail() || !R.atEnd())
    return std::nullopt;
  return Msg;
}

std::string palmed::serve::encodeErrorResponse(const ErrorResponse &Msg) {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(MsgType::ErrorResponse));
  putStr16(Out, Msg.Message);
  return Out;
}

std::optional<ErrorResponse>
palmed::serve::decodeErrorResponse(const std::string &Payload) {
  if (!hasType(Payload, MsgType::ErrorResponse))
    return std::nullopt;
  Reader R(Payload, 1);
  ErrorResponse Msg;
  Msg.Message = R.str16();
  if (R.fail() || !R.atEnd())
    return std::nullopt;
  return Msg;
}

namespace {

bool writeAll(int Fd, const char *Data, size_t Size) {
  while (Size > 0) {
    // MSG_NOSIGNAL: a peer that closed its socket must surface as EPIPE,
    // not deliver SIGPIPE (whose default disposition would kill the
    // process). Frames only ever travel over sockets, so send() is valid.
    ssize_t N = ::send(Fd, Data, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool readAll(int Fd, char *Data, size_t Size) {
  while (Size > 0) {
    ssize_t N = ::read(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0) // EOF mid-frame (or before one started).
      return false;
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool palmed::serve::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  char Prefix[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Prefix[I] = static_cast<char>((Len >> (8 * I)) & 0xff);
  return writeAll(Fd, Prefix, sizeof(Prefix)) &&
         writeAll(Fd, Payload.data(), Payload.size());
}

bool palmed::serve::readFrame(int Fd, std::string &Payload) {
  char Prefix[4];
  if (!readAll(Fd, Prefix, sizeof(Prefix)))
    return false;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<unsigned char>(Prefix[I]))
           << (8 * I);
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || readAll(Fd, Payload.data(), Len);
}
