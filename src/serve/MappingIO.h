//===- serve/MappingIO.h - Versioned on-disk mapping format ----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialization layer of the serving subsystem: a versioned binary
/// on-disk format for inferred resource mappings. A mapping is computed
/// once (minutes of pipeline work) and queried millions of times, so the
/// format is built for integrity, not editing:
///
///   magic "PLMDMAPB" | u32 format version | machine name | u64 machine
///   digest | u32 payload size | u32 CRC32(payload) | payload
///
/// The payload stores every rho coefficient as raw IEEE-754 bits, so a
/// save/load round trip is *bit-identical*: the reloaded mapping's
/// predictions are byte-equal to the in-memory mapping's. The machine
/// digest (a stable hash of the machine name, port roster, and ISA) ties
/// a file to the machine it was inferred on; loading it against a
/// different machine fails with a typed error instead of mis-indexing
/// instruction ids.
///
/// Every rejection path is a typed MappingIOStatus — Truncated,
/// BadChecksum, BadVersion, MachineMismatch, ... — so callers (CLI,
/// palmed_serve) can report precisely why a file was refused.
/// loadMappingAuto() additionally accepts the legacy line-oriented text
/// format (ResourceMapping::toText) for backward compatibility.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SERVE_MAPPINGIO_H
#define PALMED_SERVE_MAPPINGIO_H

#include "core/ResourceMapping.h"
#include "machine/MachineModel.h"

#include <cstdint>
#include <optional>
#include <string>

namespace palmed {
namespace serve {

/// Why a mapping file was accepted or refused.
enum class MappingIOStatus {
  Ok = 0,
  IoError,         ///< Cannot open/read/write the file.
  BadMagic,        ///< Not a binary mapping file.
  BadVersion,      ///< Binary mapping of an unsupported format version.
  Truncated,       ///< File ends before the declared payload does.
  BadChecksum,     ///< Payload CRC32 mismatch (corrupted file).
  MachineMismatch, ///< File was saved for a different machine/ISA.
  Malformed,       ///< Structurally invalid payload (or unparseable text).
};

/// Stable lower-case name of \p Status, for error messages and tests.
const char *mappingIOStatusName(MappingIOStatus Status);

/// Typed load/save error: the status plus a human-readable sentence.
struct MappingIOError {
  MappingIOStatus Status = MappingIOStatus::Ok;
  std::string Message;

  bool ok() const { return Status == MappingIOStatus::Ok; }
};

/// Current binary format version (bumped on layout changes).
constexpr uint32_t MappingFormatVersion = 1;

/// Stable digest of the machine identity a mapping is valid for: machine
/// name, port roster, and the ISA's instruction names in id order (the id
/// space is what the payload's instruction indices mean).
uint64_t machineDigest(const MachineModel &Machine);

/// Serializes \p Mapping to the full binary file image (header +
/// checksummed payload). Never fails: any mapping over \p Machine's ISA
/// is representable.
std::string serializeMapping(const ResourceMapping &Mapping,
                             const MachineModel &Machine);

/// Parses a binary file image produced by serializeMapping. On failure
/// returns nullopt and fills \p Err (when non-null) with the typed reason.
std::optional<ResourceMapping>
deserializeMapping(const std::string &Bytes, const MachineModel &Machine,
                   MappingIOError *Err = nullptr);

/// Writes \p Mapping to \p Path in the binary format. Returns false and
/// fills \p Err on I/O failure.
bool saveMapping(const std::string &Path, const ResourceMapping &Mapping,
                 const MachineModel &Machine, MappingIOError *Err = nullptr);

/// Reads a binary mapping file. Rejections are typed (see MappingIOStatus).
std::optional<ResourceMapping>
loadMapping(const std::string &Path, const MachineModel &Machine,
            MappingIOError *Err = nullptr);

/// Like loadMapping, but falls back to the legacy text format when the
/// file does not start with the binary magic. Text files that fail to
/// parse report Malformed.
std::optional<ResourceMapping>
loadMappingAuto(const std::string &Path, const MachineModel &Machine,
                MappingIOError *Err = nullptr);

/// The byte-level core of loadMappingAuto: sniffs \p Bytes for the binary
/// magic and parses binary or legacy text accordingly. This is the full
/// untrusted-input surface of the auto loader (minus file I/O); the
/// fuzz_mapping_io harness drives it directly.
std::optional<ResourceMapping>
deserializeMappingAuto(const std::string &Bytes, const MachineModel &Machine,
                       MappingIOError *Err = nullptr);

/// CRC32 (IEEE 802.3, reflected 0xEDB88320) over \p Size bytes; the
/// checksum guarding the payload. Exposed for tests.
uint32_t crc32(const void *Data, size_t Size);

} // namespace serve
} // namespace palmed

#endif // PALMED_SERVE_MAPPINGIO_H
