//===- serve/PredictionCache.h - Sharded prediction cache ------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory prediction cache fronting a served mapping, reusing the
/// 16-way sharded in-flight-dedup design of sim/BenchmarkRunner: entries
/// are keyed by the *kernel text* as received on the wire, so a cache hit
/// costs one string hash and one map probe — no kernel parsing, no
/// resource scan. A miss parses and predicts once while marked in-flight
/// in its shard; concurrent requests for the same kernel (same batch or
/// another connection) wait on the shard's condition variable and replay
/// the finished entry, so every distinct kernel is evaluated exactly once
/// regardless of how many connections hammer it.
///
/// Parse failures and unsupported kernels are cached too: hostile or
/// sloppy clients repeating a bad kernel must not re-pay the parse on
/// every request.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SERVE_PREDICTIONCACHE_H
#define PALMED_SERVE_PREDICTIONCACHE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace palmed {
namespace serve {

/// A cached per-kernel prediction (also caches the failure modes).
struct Prediction {
  enum class Status : uint8_t { Ok = 0, ParseError = 1, Unsupported = 2 };
  Status S = Status::Ok;
  double Ipc = 0.0;
  /// Co-bottleneck resource ids, most loaded first.
  std::vector<uint32_t> Bottlenecks;
  /// The answer pre-encoded as protocol bytes (one KernelAnswer record),
  /// so a cache hit serves a batch slot with a single append — no
  /// per-occurrence struct building or string encoding.
  std::string Wire;
};

/// Sharded, in-flight-deduplicating cache: kernel text -> Prediction.
class PredictionCache {
public:
  /// Returns the cached prediction for \p KernelText, computing it with
  /// \p Compute on a miss. \p WasHit reports whether this call found (or
  /// waited for) an existing entry instead of computing one. Thread-safe;
  /// \p Compute runs outside the shard lock and is invoked exactly once
  /// per distinct key.
  Prediction getOrCompute(const std::string &KernelText,
                          const std::function<Prediction()> &Compute,
                          bool *WasHit = nullptr);

  /// Peeks without computing; returns false on miss (in-flight entries
  /// count as misses — the caller is not willing to wait).
  bool lookup(const std::string &KernelText, Prediction &Out) const;

  /// Like lookup, but returns a pointer into the cache instead of a copy.
  /// Valid for the cache's lifetime: entries are never erased or mutated
  /// once published, and unordered_map values are address-stable.
  const Prediction *lookupPtr(const std::string &KernelText) const;

  /// Number of finished entries across all shards.
  size_t size() const;

private:
  struct Shard {
    mutable std::mutex M;
    std::condition_variable Cv;
    std::unordered_map<std::string, Prediction> Done;
    std::unordered_set<std::string> InFlight;
  };
  static constexpr size_t NumShards = 16;

  Shard &shardFor(const std::string &Key);
  const Shard &shardFor(const std::string &Key) const;

  Shard Shards[NumShards];
};

} // namespace serve
} // namespace palmed

#endif // PALMED_SERVE_PREDICTIONCACHE_H
