//===- serve/Server.cpp - Batched mapping prediction daemon ---------------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "predict/BatchEngine.h"
#include "serve/MappingIO.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <poll.h>
#include <stdexcept>
#include <string_view>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <unordered_map>

using namespace palmed;
using namespace palmed::serve;

Server::Server(ServerConfig C)
    : Config(std::move(C)), Exec(std::max(1u, Config.NumThreads)) {
  // The latency ring indexes LatencySeen % MaxLatencySamples once full;
  // a zero size would be a division by zero on the first query.
  Config.MaxLatencySamples = std::max<size_t>(1, Config.MaxLatencySamples);
}

Server::~Server() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Config.SocketPath.c_str());
  }
}

void Server::addMachine(std::string Name, MachineModel Machine,
                        ResourceMapping Mapping) {
  for (const auto &M : Machines)
    if (M->Name == Name)
      throw std::invalid_argument("machine '" + Name +
                                  "' is already being served");
  Machines.push_back(std::make_unique<ServedMachine>(
      std::move(Name), std::move(Machine), std::move(Mapping)));
}

Server::ServedMachine *Server::findMachine(const std::string &Name) {
  for (const auto &M : Machines)
    if (M->Name == Name)
      return M.get();
  return nullptr;
}

ServerTotals Server::totals() const {
  ServerTotals T;
  T.Connections = TotalConnections.load(std::memory_order_relaxed);
  T.Requests = TotalRequests.load(std::memory_order_relaxed);
  T.Kernels = TotalKernels.load(std::memory_order_relaxed);
  T.CacheHits = TotalCacheHits.load(std::memory_order_relaxed);
  T.CacheMisses = TotalCacheMisses.load(std::memory_order_relaxed);
  return T;
}

std::vector<Prediction>
Server::predictDistinct(ServedMachine &M,
                        const std::vector<const std::string *> &Distinct,
                        bool UseExecutor) {
  const size_t N = Distinct.size();

  // Parse fan-out, index-slotted (Microkernel::parse is a pure function
  // of the text and the immutable ISA).
  std::vector<std::optional<Microkernel>> Parsed(N);
  auto ParseOne = [&](size_t I, unsigned) {
    Parsed[I] = Microkernel::parse(*Distinct[I], M.Machine.isa());
  };
  if (UseExecutor) {
    Exec.parallelFor(N, ParseOne);
  } else {
    for (size_t I = 0; I < N; ++I)
      ParseOne(I, 0);
  }

  // One detailed batch pass over the compiled mapping for everything
  // that parsed; parse failures keep an invalid batch index.
  constexpr size_t NoKernel = static_cast<size_t>(-1);
  predict::KernelBatch B;
  B.reserve(N, N * 4);
  std::vector<size_t> BatchIndex(N, NoKernel);
  for (size_t I = 0; I < N; ++I)
    if (Parsed[I])
      BatchIndex[I] = B.add(*Parsed[I]);
  std::vector<predict::KernelDetail> Details(B.size());
  // Eps matches analyzeKernel's default co-bottleneck tie tolerance, so
  // query answers report the same bottleneck sets the analyze CLI shows.
  predict::predictDetailedBatch(M.Compiled, B, /*Eps=*/0.05, Details.data(),
                                UseExecutor ? &Exec : nullptr);

  // Serial encode: pre-build each answer's wire record once; cache hits
  // later just append the bytes.
  std::vector<Prediction> Out(N);
  for (size_t I = 0; I < N; ++I) {
    Prediction &P = Out[I];
    if (BatchIndex[I] == NoKernel) {
      P.S = Prediction::Status::ParseError;
    } else if (const predict::KernelDetail &D = Details[BatchIndex[I]];
               D.Supported) {
      P.Ipc = D.Ipc;
      P.Bottlenecks = D.CoBottlenecks;
    } else {
      P.S = Prediction::Status::Unsupported;
    }
    KernelAnswer A;
    A.S = static_cast<KernelAnswer::Status>(P.S);
    A.Ipc = P.Ipc;
    A.Bottlenecks.reserve(P.Bottlenecks.size());
    for (uint32_t R : P.Bottlenecks)
      A.Bottlenecks.push_back(M.Mapping.resourceName(R));
    appendKernelAnswer(P.Wire, A);
  }
  return Out;
}

std::optional<std::string> Server::evaluateWire(const QueryRequest &Request,
                                                uint64_t *Hits,
                                                uint64_t *Misses,
                                                std::string *Error) {
  ServedMachine *M = findMachine(Request.Machine);
  if (!M) {
    if (Error) {
      std::string Names;
      for (const auto &S : Machines)
        Names += (Names.empty() ? "" : ", ") + S->Name;
      // Cap the echoed (client-supplied) name so the error message stays
      // readable and fits an ErrorResponse's 16-bit string record.
      std::string Shown = Request.Machine.substr(0, 128);
      if (Shown.size() < Request.Machine.size())
        Shown += "...";
      *Error = "unknown machine '" + Shown + "' (serving: " + Names + ")";
    }
    return std::nullopt;
  }
  size_t N = Request.Kernels.size();
  if (N > Config.MaxBatchKernels) {
    if (Error)
      *Error = "batch of " + std::to_string(N) +
               " kernels exceeds the limit of " +
               std::to_string(Config.MaxBatchKernels);
    return std::nullopt;
  }

  // Hit path: one shard probe per kernel, then a byte append below. The
  // pointers stay valid — cache entries are never erased or mutated.
  std::vector<const Prediction *> Per(N, nullptr);
  std::vector<size_t> MissPos;
  uint64_t BatchHits = 0, BatchMisses = 0;
  for (size_t I = 0; I < N; ++I) {
    Per[I] = M->Cache->lookupPtr(Request.Kernels[I]);
    if (Per[I])
      ++BatchHits;
    else
      MissPos.push_back(I);
  }

  if (!MissPos.empty()) {
    // Dedupe the missing texts; each distinct one is computed once.
    std::unordered_map<std::string_view, uint64_t> Count;
    std::vector<const std::string *> Distinct;
    for (size_t I : MissPos) {
      auto [It, Inserted] = Count.try_emplace(
          std::string_view(Request.Kernels[I]), 0);
      if (Inserted)
        Distinct.push_back(&Request.Kernels[I]);
      ++It->second;
    }
    std::vector<char> WasHit(Distinct.size(), 0);
    {
      const bool UseExec = Distinct.size() > 1 && Exec.numWorkers() > 1;
      // The executor is single-driver: hold the mutex across both of
      // predictDistinct's fan-outs (parse + batch predict).
      std::unique_lock<std::mutex> Lock;
      if (UseExec)
        Lock = std::unique_lock<std::mutex>(ExecMutex);
      std::vector<Prediction> Computed =
          predictDistinct(*M, Distinct, UseExec);
      for (size_t I = 0; I < Distinct.size(); ++I) {
        // getOrCompute publishes the precomputed answer; if another
        // connection raced us to the same kernel we merely discard a
        // duplicate of the same deterministic result (WasHit reports it
        // as a hit, exactly as before).
        bool H = false;
        M->Cache->getOrCompute(
            *Distinct[I], [&] { return std::move(Computed[I]); }, &H);
        WasHit[I] = H ? 1 : 0;
      }
    }
    for (size_t D = 0; D < Distinct.size(); ++D) {
      uint64_t Occ = Count[std::string_view(*Distinct[D])];
      if (WasHit[D]) {
        // Raced with another connection computing the same kernel.
        BatchHits += Occ;
      } else {
        BatchMisses += 1;
        BatchHits += Occ - 1; // In-batch duplicates of a computed kernel.
      }
    }
    for (size_t I : MissPos) {
      Per[I] = M->Cache->lookupPtr(Request.Kernels[I]);
      if (!Per[I]) {
        // Unreachable after a successful getOrCompute; guard anyway so a
        // skipped compute degrades to an error instead of a null deref.
        if (Error)
          *Error = "internal error: prediction missing after compute";
        return std::nullopt;
      }
    }
  }

  std::string Out;
  size_t Bytes = 5; // Header: type byte + u32 answer count.
  for (const Prediction *P : Per)
    Bytes += P->Wire.size();
  Out.reserve(Bytes);
  appendQueryResponseHeader(Out, static_cast<uint32_t>(N));
  for (const Prediction *P : Per)
    Out += P->Wire;

  if (Hits)
    *Hits += BatchHits;
  if (Misses)
    *Misses += BatchMisses;
  TotalRequests.fetch_add(1, std::memory_order_relaxed);
  TotalKernels.fetch_add(N, std::memory_order_relaxed);
  TotalCacheHits.fetch_add(BatchHits, std::memory_order_relaxed);
  TotalCacheMisses.fetch_add(BatchMisses, std::memory_order_relaxed);
  if (Error)
    Error->clear();
  return Out;
}

QueryResponse Server::evaluate(const QueryRequest &Request, uint64_t *Hits,
                               uint64_t *Misses, std::string *Error) {
  auto Wire = evaluateWire(Request, Hits, Misses, Error);
  if (!Wire)
    return {};
  auto Decoded = decodeQueryResponse(*Wire);
  return Decoded ? std::move(*Decoded) : QueryResponse{};
}

void Server::bind() {
  if (Machines.empty())
    throw std::runtime_error("refusing to serve zero machines");
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.empty() ||
      Config.SocketPath.size() >= sizeof(Addr.sun_path))
    throw std::runtime_error("socket path '" + Config.SocketPath +
                             "' is empty or too long for AF_UNIX");
  std::memcpy(Addr.sun_path, Config.SocketPath.c_str(),
              Config.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  ::unlink(Config.SocketPath.c_str()); // Stale socket from a dead server.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    int E = errno;
    ::close(ListenFd);
    ListenFd = -1;
    throw std::runtime_error("bind/listen on '" + Config.SocketPath +
                             "': " + std::strerror(E));
  }
}

namespace {

/// Latency percentile over an (unsorted) sample buffer, in the samples'
/// unit. Q in (0, 1]; nearest-rank definition.
double percentile(std::vector<double> Samples, double Q) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  double Rank = std::ceil(Q * static_cast<double>(Samples.size()));
  size_t Idx = Rank <= 1.0 ? 0 : static_cast<size_t>(Rank) - 1;
  return Samples[std::min(Idx, Samples.size() - 1)];
}

} // namespace

std::string Server::dispatchPayload(const std::string &Payload,
                                    ConnectionState &C) {
  using Clock = std::chrono::steady_clock;
  auto Type = peekType(Payload);
  if (!Type)
    return encodeErrorResponse({"unrecognized message type"});
  switch (*Type) {
  case MsgType::QueryRequest: {
    Clock::time_point T0 = Clock::now();
    auto Req = decodeQueryRequest(Payload);
    if (!Req)
      return encodeErrorResponse({"malformed query request"});
    std::string Error;
    auto Resp = evaluateWire(*Req, &C.Hits, &C.Misses, &Error);
    if (!Resp)
      return encodeErrorResponse({Error});
    ++C.Queries;
    C.Kernels += Req->Kernels.size();
    double Us =
        std::chrono::duration<double, std::micro>(Clock::now() - T0)
            .count();
    if (C.LatencyUs.size() < Config.MaxLatencySamples)
      C.LatencyUs.push_back(Us);
    else
      C.LatencyUs[C.LatencySeen % Config.MaxLatencySamples] = Us;
    ++C.LatencySeen;
    return std::move(*Resp);
  }
  case MsgType::StatsRequest: {
    double UptimeS =
        std::chrono::duration<double>(Clock::now() - C.Opened).count();
    uint64_t ConnLookups = C.Hits + C.Misses;
    ServerTotals T = totals();
    uint64_t ServerLookups = T.CacheHits + T.CacheMisses;
    StatsResponse S;
    S.Counters = {
        {"conn.requests", static_cast<double>(C.Queries)},
        {"conn.kernels", static_cast<double>(C.Kernels)},
        {"conn.cache_hits", static_cast<double>(C.Hits)},
        {"conn.cache_misses", static_cast<double>(C.Misses)},
        {"conn.cache_hit_rate",
         ConnLookups ? static_cast<double>(C.Hits) /
                           static_cast<double>(ConnLookups)
                     : 0.0},
        {"conn.qps",
         UptimeS > 0.0 ? static_cast<double>(C.Queries) / UptimeS : 0.0},
        {"conn.kernels_per_s",
         UptimeS > 0.0 ? static_cast<double>(C.Kernels) / UptimeS : 0.0},
        {"conn.p50_us", percentile(C.LatencyUs, 0.50)},
        {"conn.p99_us", percentile(C.LatencyUs, 0.99)},
        {"conn.uptime_s", UptimeS},
        {"server.machines", static_cast<double>(Machines.size())},
        {"server.threads", static_cast<double>(Exec.numWorkers())},
        {"server.connections", static_cast<double>(T.Connections)},
        {"server.requests", static_cast<double>(T.Requests)},
        {"server.kernels", static_cast<double>(T.Kernels)},
        {"server.cache_hits", static_cast<double>(T.CacheHits)},
        {"server.cache_misses", static_cast<double>(T.CacheMisses)},
        {"server.cache_hit_rate",
         ServerLookups ? static_cast<double>(T.CacheHits) /
                             static_cast<double>(ServerLookups)
                       : 0.0},
    };
    return encodeStatsResponse(S);
  }
  case MsgType::ListRequest: {
    ListResponse L;
    L.Machines.reserve(Machines.size());
    for (const auto &M : Machines) {
      MachineInfo Info;
      Info.Name = M->Name;
      Info.Digest = machineDigest(M->Machine);
      Info.NumResources = static_cast<uint32_t>(M->Mapping.numResources());
      Info.NumMapped =
          static_cast<uint32_t>(M->Mapping.numMappedInstructions());
      L.Machines.push_back(std::move(Info));
    }
    // Canonical order: two servers configured with the same machines must
    // produce byte-identical list responses regardless of the order their
    // addMachine() calls ran in (names are unique — addMachine throws on
    // duplicates).
    std::sort(L.Machines.begin(), L.Machines.end(),
              [](const MachineInfo &A, const MachineInfo &B) {
                return A.Name < B.Name;
              });
    return encodeListResponse(L);
  }
  default:
    return encodeErrorResponse({"unexpected message type"});
  }
}

void Server::handleConnection(Connection &Conn) {
  ConnectionState C;
  std::string Payload;
  while (!stopRequested() && readFrame(Conn.Fd, Payload)) {
    bool WriteOk;
    // A handler runs on a bare std::thread: any exception escaping this
    // body (bad_alloc on a huge frame/batch, a rethrow out of
    // Executor::parallelFor) would std::terminate the whole daemon. Turn
    // it into an ErrorResponse and keep serving.
    try {
      WriteOk = writeFrame(Conn.Fd, dispatchPayload(Payload, C));
    } catch (const std::exception &E) {
      try {
        WriteOk = writeFrame(
            Conn.Fd,
            encodeErrorResponse({std::string("internal error: ") +
                                 E.what()}));
      } catch (...) {
        WriteOk = false; // Even the error reply failed; drop the client.
      }
    } catch (...) {
      try {
        WriteOk =
            writeFrame(Conn.Fd, encodeErrorResponse({"internal error"}));
      } catch (...) {
        WriteOk = false;
      }
    }
    if (!WriteOk)
      break;
  }
  Conn.Finished.store(true, std::memory_order_release);
}

void Server::reapFinishedConnections() {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (auto It = Connections.begin(); It != Connections.end();) {
    Connection &C = **It;
    if (C.Finished.load(std::memory_order_acquire)) {
      C.Handler.join();
      ::close(C.Fd);
      It = Connections.erase(It);
    } else {
      ++It;
    }
  }
}

void Server::serve() {
  if (ListenFd < 0)
    throw std::logic_error("serve() requires a successful bind()");

  while (!stopRequested()) {
    pollfd P{};
    P.fd = ListenFd;
    P.events = POLLIN;
    int R = ::poll(&P, 1, /*timeout ms=*/100);
    if (R < 0) {
      if (errno == EINTR)
        continue; // A signal (e.g. SIGTERM) — the loop re-checks the flag.
      break;
    }
    reapFinishedConnections();
    if (R == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      break;
    }
    TotalConnections.fetch_add(1, std::memory_order_relaxed);
    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Connection *Raw = Conn.get();
    Conn->Handler = std::thread([this, Raw] { handleConnection(*Raw); });
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Connections.push_back(std::move(Conn));
  }

  // Graceful wind-down: stop accepting, wake every blocked reader, join.
  ::close(ListenFd);
  ListenFd = -1;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (const auto &C : Connections)
      if (!C->Finished.load(std::memory_order_acquire))
        ::shutdown(C->Fd, SHUT_RDWR);
  }
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (const auto &C : Connections) {
    C->Handler.join();
    ::close(C->Fd);
  }
  Connections.clear();
  ::unlink(Config.SocketPath.c_str());
}
