//===- serve/Server.h - Batched mapping prediction daemon -----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running prediction service: loads N machine mappings, listens
/// on a local (AF_UNIX) stream socket, and answers batched
/// throughput/bottleneck queries over the length-prefixed protocol of
/// serve/Protocol.h.
///
/// Threading model: serve() runs the accept loop on the calling thread
/// and spawns one handler thread per connection. Batch evaluation runs
/// the distinct cache-missing kernels of a request through the batch
/// prediction engine (predict/BatchEngine.h) against a per-machine
/// CompiledMapping: a parse fan-out, then one detailed batch pass, both
/// fanned over one shared palmed::Executor (serialized by a mutex held
/// across both fans — the executor is single-driver by contract); cache
/// hits never touch the executor. Each served machine fronts its mapping
/// with a PredictionCache; results are inserted via getOrCompute, so a
/// concurrent connection racing on the same kernel at worst duplicates
/// deterministic work and still observes one canonical entry.
///
/// Lifecycle: addMachine() while stopped, bind(), then serve() until
/// requestStop() — which is async-signal-safe (it only stores a flag), so
/// a SIGTERM handler may call it directly; serve() notices within its
/// poll interval, wakes every connection, joins the handlers, and removes
/// the socket file.
///
/// Per-connection counters (requests, kernels, cache hits, latency
/// percentiles, QPS) are returned by the `stats` request together with
/// server-wide totals.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_SERVE_SERVER_H
#define PALMED_SERVE_SERVER_H

#include "core/ResourceMapping.h"
#include "machine/MachineModel.h"
#include "predict/CompiledMapping.h"
#include "serve/PredictionCache.h"
#include "serve/Protocol.h"
#include "support/Executor.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace palmed {
namespace serve {

/// Server configuration.
struct ServerConfig {
  /// Filesystem path of the AF_UNIX listening socket.
  std::string SocketPath;
  /// Executor width for batch fan-out (resolved; >= 1).
  unsigned NumThreads = 1;
  /// Largest kernel batch accepted in one query request.
  size_t MaxBatchKernels = 1u << 20;
  /// Per-connection latency samples kept for the percentile counters
  /// (a ring: old samples are overwritten once full).
  size_t MaxLatencySamples = 1u << 16;
};

/// Server-wide counters (monotonic since start).
struct ServerTotals {
  uint64_t Connections = 0;
  uint64_t Requests = 0;
  uint64_t Kernels = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
};

/// The prediction daemon. Construct, addMachine() for every served
/// mapping, bind(), then serve().
class Server {
public:
  explicit Server(ServerConfig Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Registers a machine + its inferred mapping under \p Name (the name
  /// clients put in query requests). Must be called before serve();
  /// duplicate names throw std::invalid_argument.
  void addMachine(std::string Name, MachineModel Machine,
                  ResourceMapping Mapping);

  size_t numMachines() const { return Machines.size(); }

  /// Creates, binds, and starts listening on the configured socket path
  /// (unlinking a stale socket file first). After bind() returns, clients
  /// can connect — the backlog queues them until serve() accepts. Throws
  /// std::runtime_error on socket errors.
  void bind();

  /// Accept/dispatch loop; returns once requestStop() was called (or
  /// the listening socket died). Joins every connection handler before
  /// returning and removes the socket file.
  void serve();

  /// Requests serve() to wind down. Async-signal-safe: only stores a
  /// flag, so SIGTERM handlers may call it directly.
  void requestStop() { StopFlag.store(true, std::memory_order_relaxed); }

  bool stopRequested() const {
    return StopFlag.load(std::memory_order_relaxed);
  }

  ServerTotals totals() const;

  /// Per-connection counters threaded through dispatchPayload(). One
  /// instance lives on each handler thread's stack; it is never shared.
  struct ConnectionState {
    uint64_t Queries = 0;
    uint64_t Kernels = 0;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    /// Query-latency ring, microseconds.
    std::vector<double> LatencyUs;
    uint64_t LatencySeen = 0;
    std::chrono::steady_clock::time_point Opened =
        std::chrono::steady_clock::now();
  };

  /// The server-side request dispatch: decodes one frame payload (as
  /// received from the wire — arbitrary, untrusted bytes) and returns the
  /// encoded response payload that handleConnection writes back. Malformed
  /// or unknown input produces an ErrorResponse payload, never a throw on
  /// its own; out-of-memory or executor rethrows can still escape and are
  /// turned into ErrorResponses by the connection handler. Public because
  /// it is the exact surface the protocol fuzzer drives.
  std::string dispatchPayload(const std::string &Payload,
                              ConnectionState &Conn);

  /// Evaluates one batched query in-process (the exact code path a
  /// connection runs, minus the socket). Exposed for bench_serve and
  /// direct embedding. \p Hits / \p Misses are incremented per kernel.
  QueryResponse evaluate(const QueryRequest &Request, uint64_t *Hits,
                         uint64_t *Misses, std::string *Error);

  /// The wire-level hot path: evaluates the batch straight to an encoded
  /// QueryResponse payload, serving every cache hit by appending its
  /// pre-encoded answer record. nullopt with *Error set on request-level
  /// failure (unknown machine, oversized batch).
  std::optional<std::string> evaluateWire(const QueryRequest &Request,
                                          uint64_t *Hits, uint64_t *Misses,
                                          std::string *Error);

private:
  struct ServedMachine {
    ServedMachine(std::string Name, MachineModel Machine,
                  ResourceMapping Mapping)
        : Name(std::move(Name)), Machine(std::move(Machine)),
          Mapping(std::move(Mapping)),
          Cache(std::make_unique<PredictionCache>()),
          // this->: the parameter of the same name was just moved from.
          Compiled(predict::CompiledMapping::compile(this->Mapping)) {}

    std::string Name;
    MachineModel Machine;
    ResourceMapping Mapping;
    /// Cache shards hold mutexes; keep the struct address-stable.
    std::unique_ptr<PredictionCache> Cache;
    /// Immutable streaming-layout compilation of Mapping; the cold-miss
    /// path predicts whole batches through it (and, being a checked API,
    /// it keeps unmapped kernels well-defined in release builds too).
    predict::CompiledMapping Compiled;
  };

  struct Connection {
    int Fd = -1;
    std::thread Handler;
    std::atomic<bool> Finished{false};
  };

  ServedMachine *findMachine(const std::string &Name);

  /// Predicts the distinct cache-missing kernel texts of one request in
  /// one batch: parse fan-out, one predictDetailedBatch pass over the
  /// compiled mapping, then serial wire encoding. Returns one finished
  /// Prediction per input (parse failures and unsupported kernels
  /// included). When \p UseExecutor is set the caller must hold ExecMutex
  /// for the whole call — both internal fans drive the shared executor.
  std::vector<Prediction>
  predictDistinct(ServedMachine &M,
                  const std::vector<const std::string *> &Distinct,
                  bool UseExecutor);

  void handleConnection(Connection &Conn);
  void reapFinishedConnections();

  ServerConfig Config;
  std::vector<std::unique_ptr<ServedMachine>> Machines;

  Executor Exec;
  /// The executor is single-driver; one batch fans out at a time.
  std::mutex ExecMutex;

  int ListenFd = -1;
  std::atomic<bool> StopFlag{false};

  std::mutex ConnMutex;
  std::vector<std::unique_ptr<Connection>> Connections;

  std::atomic<uint64_t> TotalConnections{0};
  std::atomic<uint64_t> TotalRequests{0};
  std::atomic<uint64_t> TotalKernels{0};
  std::atomic<uint64_t> TotalCacheHits{0};
  std::atomic<uint64_t> TotalCacheMisses{0};
};

} // namespace serve
} // namespace palmed

#endif // PALMED_SERVE_SERVER_H
