//===- fuzz/StandaloneFuzzerMain.cpp - Driver for non-clang builds --------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
//
// Minimal stand-in for the libFuzzer driver when the toolchain has no
// -fsanitize=fuzzer (e.g. gcc): replays every corpus file given as an
// argument through LLVMFuzzerTestOneInput, and optionally runs a
// deterministic mutation loop over those seeds (-mutate=N, -seed=K).
// The mutation loop is no substitute for coverage-guided fuzzing — it
// exists so the harness logic is exercised on any compiler and so the
// corpus-replay CTest entries run in every build.
//
// Exit 0 when every input ran clean (a crash aborts the process, exactly
// like libFuzzer under a sanitizer).
//
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

namespace {

/// splitmix64: tiny, deterministic; good enough to scramble seed bytes.
uint64_t nextRand(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

void runOne(const std::vector<uint8_t> &Bytes) {
  LLVMFuzzerTestOneInput(Bytes.empty() ? nullptr : Bytes.data(),
                         Bytes.size());
}

/// One random edit: byte flip, truncation, duplication, or splice of a
/// random run of random bytes.
void mutate(std::vector<uint8_t> &Bytes, uint64_t &Rng) {
  switch (nextRand(Rng) % 4) {
  case 0: // Flip bits in up to 8 random bytes.
    for (uint64_t I = 0, N = 1 + nextRand(Rng) % 8; I < N && !Bytes.empty();
         ++I)
      Bytes[nextRand(Rng) % Bytes.size()] ^=
          static_cast<uint8_t>(1u << (nextRand(Rng) % 8));
    break;
  case 1: // Truncate.
    if (!Bytes.empty())
      Bytes.resize(nextRand(Rng) % Bytes.size());
    break;
  case 2: // Duplicate a tail chunk.
    if (!Bytes.empty() && Bytes.size() < (1u << 16)) {
      size_t From = nextRand(Rng) % Bytes.size();
      Bytes.insert(Bytes.end(), Bytes.begin() + From, Bytes.end());
    }
    break;
  default: { // Overwrite a run with random bytes.
    if (Bytes.empty())
      break;
    size_t At = nextRand(Rng) % Bytes.size();
    size_t Len = 1 + nextRand(Rng) % 16;
    for (size_t I = 0; I < Len && At + I < Bytes.size(); ++I)
      Bytes[At + I] = static_cast<uint8_t>(nextRand(Rng));
    break;
  }
  }
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::vector<uint8_t>> Seeds;
  uint64_t MutateRuns = 0;
  uint64_t Rng = 0x5eed;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "-mutate=", 8) == 0) {
      MutateRuns = std::strtoull(Arg + 8, nullptr, 10);
      continue;
    }
    if (std::strncmp(Arg, "-seed=", 6) == 0) {
      Rng = std::strtoull(Arg + 6, nullptr, 10);
      continue;
    }
    if (Arg[0] == '-') {
      // Ignore libFuzzer-style flags so one CI command line fits both
      // drivers (-max_total_time=..., -runs=..., ...).
      std::fprintf(stderr, "standalone driver: ignoring flag %s\n", Arg);
      continue;
    }
    std::ifstream IS(Arg, std::ios::binary);
    if (!IS) {
      std::fprintf(stderr, "standalone driver: cannot open %s\n", Arg);
      return 2;
    }
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(IS)),
                               std::istreambuf_iterator<char>());
    Seeds.push_back(std::move(Bytes));
  }

  for (const auto &S : Seeds)
    runOne(S);
  std::fprintf(stderr, "standalone driver: replayed %zu seed(s)\n",
               Seeds.size());

  if (MutateRuns > 0 && !Seeds.empty()) {
    for (uint64_t R = 0; R < MutateRuns; ++R) {
      std::vector<uint8_t> Bytes = Seeds[nextRand(Rng) % Seeds.size()];
      for (uint64_t M = 0, N = 1 + nextRand(Rng) % 4; M < N; ++M)
        mutate(Bytes, Rng);
      runOne(Bytes);
    }
    std::fprintf(stderr, "standalone driver: ran %llu mutated input(s)\n",
                 static_cast<unsigned long long>(MutateRuns));
  }
  return 0;
}
