//===- fuzz/fuzz_protocol.cpp - Fuzz the server-side request dispatch -----===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
//
// Feeds arbitrary frame payloads through Server::dispatchPayload — the
// exact code path a connection handler runs on bytes read off the socket
// (peekType, the per-message decoders, batch evaluation against an
// in-memory fig1 mapping, response encoding).
//
// Invariant checked beyond "no crash / no UB": every response the server
// emits must itself be a decodable response-type payload (the client-side
// decoders accept it), so hostile requests can never make the server
// produce an unparseable or request-typed frame.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"
#include "machine/StandardMachines.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include <cstdint>
#include <memory>
#include <string>

using namespace palmed;
using namespace palmed::serve;

namespace {

std::unique_ptr<Server> makeServer() {
  ServerConfig C;
  C.SocketPath = "/unused-never-bound";
  C.NumThreads = 1;
  C.MaxBatchKernels = 1u << 12; // Keep a single fuzz iteration cheap.
  auto S = std::make_unique<Server>(std::move(C));
  MachineModel M = makeFig1Machine();
  ResourceMapping Mapping = buildDualMapping(M);
  S->addMachine("fig1", std::move(M), std::move(Mapping));
  return S;
}

Server &server() {
  // The prediction cache never evicts, and fuzzed kernel texts are all
  // distinct — rebuild the server periodically so a long fuzz run does
  // not mistake cache growth for a leak.
  static std::unique_ptr<Server> S = makeServer();
  static uint64_t Calls = 0;
  if (++Calls % 8192 == 0)
    S = makeServer();
  return *S;
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > (1u << 20)) // readFrame caps frames far higher; parse cost
    return 0;            // is what bounds a fuzz iteration.
  std::string Payload(reinterpret_cast<const char *>(Data), Size);
  Server::ConnectionState Conn;
  std::string Resp = server().dispatchPayload(Payload, Conn);

  auto Type = peekType(Resp);
  if (!Type)
    __builtin_trap();
  switch (*Type) {
  case MsgType::QueryResponse:
    if (!decodeQueryResponse(Resp))
      __builtin_trap();
    break;
  case MsgType::StatsResponse:
    if (!decodeStatsResponse(Resp))
      __builtin_trap();
    break;
  case MsgType::ListResponse:
    if (!decodeListResponse(Resp))
      __builtin_trap();
    break;
  case MsgType::ErrorResponse:
    if (!decodeErrorResponse(Resp))
      __builtin_trap();
    break;
  default: // Request-typed or unknown responses are server bugs.
    __builtin_trap();
  }
  return 0;
}
