//===- fuzz/gen_corpus.cpp - Regenerate the checked-in seed corpora -------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
//
// Writes the seed corpora for fuzz_mapping_io and fuzz_protocol under the
// directory given as argv[1] (corpus/mapping_io and corpus/protocol).
// Seeds are derived from real artifacts — a genuine serialized fig1
// mapping, its legacy text form, and well-formed protocol frames — plus a
// few structured near-misses (truncations, corruptions, hostile declared
// counts) so even non-coverage-guided replay exercises the deep paths.
//
// Deterministic: running it twice produces byte-identical files, so the
// checked-in corpus can be audited with `git diff` after regeneration.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"
#include "machine/StandardMachines.h"
#include "serve/MappingIO.h"
#include "serve/Protocol.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace palmed;
using namespace palmed::serve;

namespace {

void writeFile(const std::filesystem::path &Path, const std::string &Bytes) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  if (!OS.good()) {
    std::fprintf(stderr, "failed writing %s\n", Path.c_str());
    std::exit(1);
  }
}

void putU32At(std::string &Bytes, size_t Pos, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Bytes[Pos + static_cast<size_t>(I)] =
        static_cast<char>((V >> (8 * I)) & 0xff);
}

} // namespace

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  namespace fs = std::filesystem;
  fs::path Root(argv[1]);
  fs::create_directories(Root / "mapping_io");
  fs::create_directories(Root / "protocol");

  MachineModel M = makeFig1Machine();
  ResourceMapping Mapping = buildDualMapping(M);

  // --- mapping_io: the loadMappingAuto byte surface. ---
  std::string Binary = serializeMapping(Mapping, M);
  writeFile(Root / "mapping_io" / "fig1_binary.palmedmap", Binary);
  writeFile(Root / "mapping_io" / "fig1_text.mapping", Mapping.toText(M.isa()));
  writeFile(Root / "mapping_io" / "truncated_header.palmedmap",
            Binary.substr(0, 14));
  writeFile(Root / "mapping_io" / "truncated_payload.palmedmap",
            Binary.substr(0, Binary.size() - 7));
  std::string Corrupt = Binary;
  Corrupt[Corrupt.size() / 2] =
      static_cast<char>(Corrupt[Corrupt.size() / 2] ^ 0x40);
  writeFile(Root / "mapping_io" / "corrupt_payload.palmedmap", Corrupt);
  std::string BadVersion = Binary;
  putU32At(BadVersion, 8, MappingFormatVersion + 7); // Version follows magic.
  writeFile(Root / "mapping_io" / "bad_version.palmedmap", BadVersion);
  writeFile(Root / "mapping_io" / "text_header_only.mapping",
            "palmed-mapping v1\nresources 0\n");
  writeFile(Root / "mapping_io" / "text_bad_edge.mapping",
            "palmed-mapping v1\nresources 1\nresource r0 1.5\n"
            "instr ADDSS 0:nan\n");

  // --- protocol: frame payloads for the server-side dispatch. ---
  QueryRequest Query;
  Query.Machine = "fig1";
  Query.Kernels = {"ADDSS", "ADDSS^2 VCVTT", "DIVPS JMP^0.5"};
  writeFile(Root / "protocol" / "query_fig1.bin", encodeQueryRequest(Query));
  QueryRequest Hostile;
  Hostile.Machine = "fig1";
  Hostile.Kernels = {"", "NO_SUCH_INSTR", "ADDSS^0", "ADDSS^inf",
                     "ADDSS^nan", "^2", "ADDSS^-1"};
  writeFile(Root / "protocol" / "query_hostile_kernels.bin",
            encodeQueryRequest(Hostile));
  QueryRequest Unknown;
  Unknown.Machine = "no-such-machine";
  Unknown.Kernels = {"ADDSS"};
  writeFile(Root / "protocol" / "query_unknown_machine.bin",
            encodeQueryRequest(Unknown));
  writeFile(Root / "protocol" / "stats.bin", encodeStatsRequest());
  writeFile(Root / "protocol" / "list.bin", encodeListRequest());
  writeFile(Root / "protocol" / "error_as_request.bin",
            encodeErrorResponse({"client sent a response type"}));
  // The declared-count bomb: 16 bytes claiming 2^32-1 kernel records.
  // Kept as a seed so the reserve-clamp regression is replayed on every
  // corpus run (see ServeProtocol.QueryRequestDeclaredCountBombRegression).
  std::string Bomb = encodeQueryRequest({/*Machine=*/"fig1", /*Kernels=*/{}});
  putU32At(Bomb, Bomb.size() - 4, 0xFFFFFFFFu);
  writeFile(Root / "protocol" / "query_count_bomb.bin", Bomb);
  writeFile(Root / "protocol" / "empty.bin", "");
  writeFile(Root / "protocol" / "unknown_type.bin", "\x2a");

  std::printf("corpora written under %s\n", Root.c_str());
  return 0;
}
