//===- fuzz/fuzz_mapping_io.cpp - Fuzz the mapping-file parsers -----------===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
//
// Drives deserializeMappingAuto — the full untrusted-byte surface behind
// loadMappingAuto (binary-magic sniffing, the versioned binary parser, and
// the legacy text parser) — with arbitrary input against a fixed machine.
//
// Invariant checked beyond "no crash / no UB": anything the parser
// *accepts* must survive a binary round trip, i.e. serializeMapping on the
// result re-parses cleanly. Both loaders enforce the same validity rules
// (finite positive throughputs, finite non-negative usages, in-range ids),
// so an accepted-but-unserializable mapping is a parser bug.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"
#include "machine/StandardMachines.h"
#include "serve/MappingIO.h"

#include <cstdint>
#include <string>

using namespace palmed;
using namespace palmed::serve;

namespace {

const MachineModel &machine() {
  static const MachineModel M = makeFig1Machine();
  return M;
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > (1u << 20)) // Parse cost is linear; keep iterations fast.
    return 0;
  std::string Bytes(reinterpret_cast<const char *>(Data), Size);
  MappingIOError Err;
  auto M = deserializeMappingAuto(Bytes, machine(), &Err);
  if (!M) {
    if (Err.ok()) // A rejection must carry a typed reason.
      __builtin_trap();
    return 0;
  }
  std::string Reencoded = serializeMapping(*M, machine());
  MappingIOError RoundTripErr;
  if (!deserializeMapping(Reencoded, machine(), &RoundTripErr))
    __builtin_trap();
  return 0;
}
