//===- tools/palmed_serve.cpp - Batched prediction daemon -----------------===//
//
// Part of the PALMED reproduction.
//
// Long-running prediction service:
//
//   palmed_serve --socket PATH --load MACHINE=MAPPING_FILE
//                [--load MACHINE=FILE ...] [--threads N]
//
// Loads one inferred mapping per --load (binary format auto-detected, text
// accepted too; the binary header's machine digest must match), binds an
// AF_UNIX socket, and answers batched throughput/bottleneck queries until
// SIGTERM/SIGINT, then winds down gracefully and prints a traffic summary.
// Query with `palmed_cli query --socket PATH ...` or serve::Client.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

using namespace palmed;

namespace {

serve::Server *ActiveServer = nullptr;

/// Only async-signal-safe work here: requestStop() stores one atomic
/// flag; the serve() loop notices within its poll interval.
void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestStop();
}

void usage() {
  std::fprintf(
      stderr,
      "usage: palmed_serve --socket PATH --load MACHINE=MAPPING_FILE\n"
      "                    [--load MACHINE=FILE ...] [--threads N]\n"
      "MACHINE is a standard profile name (skl, zen, fig1, stress, huge);\n"
      "MAPPING_FILE is a `palmed_cli map --save` binary mapping (the text\n"
      "format is auto-detected and accepted too). --threads 0 resolves to\n"
      "the hardware thread count; default 1.\n");
}

std::optional<MachineModel> makeMachine(const std::string &Name) {
  if (Name == "skl")
    return makeSklLike();
  if (Name == "zen")
    return makeZenLike();
  if (Name == "fig1")
    return makeFig1Machine();
  if (Name == "stress")
    return makeStressMachine(StressIsaConfig());
  if (Name == "huge")
    return makeStressMachine(hugeStressConfig());
  std::fprintf(stderr, "error: unknown machine '%s'\n", Name.c_str());
  return std::nullopt;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  std::vector<std::pair<std::string, std::string>> Loads;
  unsigned Threads = 1;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--socket") {
      const char *V = Next();
      if (!V) {
        usage();
        return 1;
      }
      SocketPath = V;
    } else if (Arg == "--load") {
      const char *V = Next();
      if (!V) {
        usage();
        return 1;
      }
      std::string Spec = V;
      size_t Eq = Spec.find('=');
      if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Spec.size()) {
        std::fprintf(stderr,
                     "error: --load expects MACHINE=MAPPING_FILE, got '%s'\n",
                     Spec.c_str());
        return 1;
      }
      Loads.emplace_back(Spec.substr(0, Eq), Spec.substr(Eq + 1));
    } else if (Arg == "--threads") {
      const char *V = Next();
      if (!V) {
        usage();
        return 1;
      }
      Threads = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    }
  }
  if (SocketPath.empty() || Loads.empty()) {
    usage();
    return 1;
  }

  serve::ServerConfig Config;
  Config.SocketPath = SocketPath;
  Config.NumThreads = Executor::resolveThreadCount(Threads);
  serve::Server Server(Config);

  for (const auto &[Name, File] : Loads) {
    auto Machine = makeMachine(Name);
    if (!Machine)
      return 1;
    serve::MappingIOError Err;
    auto Mapping = serve::loadMappingAuto(File, *Machine, &Err);
    if (!Mapping) {
      std::fprintf(stderr, "error: %s [%s]\n", Err.Message.c_str(),
                   serve::mappingIOStatusName(Err.Status));
      return 1;
    }
    std::fprintf(stderr,
                 "loaded %s from %s (%zu resources, %zu instructions "
                 "mapped)\n",
                 Name.c_str(), File.c_str(), Mapping->numResources(),
                 Mapping->numMappedInstructions());
    try {
      Server.addMachine(Name, std::move(*Machine), std::move(*Mapping));
    } catch (const std::exception &E) {
      std::fprintf(stderr, "error: %s\n", E.what());
      return 1;
    }
  }

  try {
    Server.bind();
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }

  ActiveServer = &Server;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  // A client that disconnects mid-response must not SIGPIPE-kill the
  // daemon (writeFrame also passes MSG_NOSIGNAL; this covers everything
  // else that might touch a dead socket).
  SA.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &SA, nullptr);

  std::fprintf(stderr, "palmed_serve: %zu machine(s) on %s (%u threads)\n",
               Server.numMachines(), SocketPath.c_str(), Config.NumThreads);
  Server.serve();
  ActiveServer = nullptr;

  serve::ServerTotals T = Server.totals();
  std::fprintf(stderr,
               "palmed_serve: shutting down — %llu connections, %llu "
               "requests, %llu kernels, %llu cache hits / %llu misses\n",
               static_cast<unsigned long long>(T.Connections),
               static_cast<unsigned long long>(T.Requests),
               static_cast<unsigned long long>(T.Kernels),
               static_cast<unsigned long long>(T.CacheHits),
               static_cast<unsigned long long>(T.CacheMisses));
  return 0;
}
