#!/usr/bin/env python3
"""Self-tests for determinism_lint.py (regex engine).

Each test feeds a minimal known-bad C++ snippet through lint_text and
asserts the expected rule fires exactly where intended — and nowhere
else — plus the suppression machinery. Run directly, via
`python3 -m unittest`, or through the lint.self_test CTest entry.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import determinism_lint as dl  # noqa: E402


def run(snippet, extra_names=None, path="snippet.cpp"):
    return dl.lint_text(path, snippet, extra_names)


def rules(findings, suppressed=False):
    return [f.rule for f in findings if f.suppressed == suppressed]


class UnorderedIterTest(unittest.TestCase):
    def test_range_for_fires_once(self):
        findings = run(
            "#include <unordered_map>\n"
            "std::unordered_map<int, double> Stats;\n"
            "void emit(std::string &Out) {\n"
            "  for (const auto &KV : Stats)\n"
            "    Out += std::to_string(KV.second);\n"
            "}\n")
        self.assertEqual(rules(findings), ["unordered-iter"])
        self.assertEqual(findings[0].line, 4)

    def test_iterator_begin_fires(self):
        findings = run(
            "std::unordered_set<int> Seen;\n"
            "int count() {\n"
            "  int N = 0;\n"
            "  for (auto It = Seen.begin(); It != Seen.end(); ++It) ++N;\n"
            "  return N;\n"
            "}\n")
        self.assertEqual(rules(findings), ["unordered-iter"])
        self.assertEqual(findings[0].line, 4)

    def test_ordered_map_does_not_fire(self):
        findings = run(
            "#include <map>\n"
            "std::map<int, double> Stats;\n"
            "void emit(std::string &Out) {\n"
            "  for (const auto &KV : Stats) Out += 'x';\n"
            "}\n")
        self.assertEqual(findings, [])

    def test_vector_does_not_fire(self):
        findings = run(
            "std::vector<int> Items;\n"
            "void f() { for (int I : Items) (void)I; }\n")
        self.assertEqual(findings, [])

    def test_cross_file_member_fires(self):
        # The declaration lives in another file (the header); the name is
        # passed in through extra_names like main()'s cross-file pass.
        findings = run(
            "void flush(Cache &C, std::string &Out) {\n"
            "  for (const auto &KV : C.Done) Out += KV.first;\n"
            "}\n",
            extra_names={"Done"})
        self.assertEqual(rules(findings), ["unordered-iter"])

    def test_mention_in_comment_or_string_ignored(self):
        findings = run(
            "// for (auto &KV : UnorderedThing) would be bad\n"
            "const char *S = \"for (auto &X : Hash.begin())\";\n"
            "std::unordered_map<int,int> M;\n"
            "int f() { return M.count(3); }\n")
        self.assertEqual(findings, [])


class PointerKeyTest(unittest.TestCase):
    def test_pointer_keyed_map_fires_once(self):
        findings = run(
            "#include <map>\n"
            "struct Node {};\n"
            "std::map<Node *, int> ByAddr;\n")
        self.assertEqual(rules(findings), ["pointer-key"])
        self.assertEqual(findings[0].line, 3)

    def test_pointer_keyed_unordered_set_fires(self):
        findings = run("std::unordered_set<const Node *> Visited;\n")
        # The pointer key fires; declaring an unordered container alone
        # must not trip unordered-iter.
        self.assertEqual(rules(findings), ["pointer-key"])

    def test_pointer_value_does_not_fire(self):
        findings = run("std::map<int, Node *> ById;\n")
        self.assertEqual(findings, [])

    def test_smart_pointer_key_does_not_fire(self):
        findings = run(
            "std::map<std::shared_ptr<Node>, int> ByOwner;\n")
        self.assertEqual(findings, [])


class RawRandomTest(unittest.TestCase):
    def test_rand_fires_once(self):
        findings = run(
            "#include <cstdlib>\n"
            "int f() { return rand(); }\n")
        self.assertEqual(rules(findings), ["raw-random"])
        self.assertEqual(findings[0].line, 2)

    def test_random_device_fires(self):
        findings = run("std::random_device Rd;\n")
        self.assertEqual(rules(findings), ["raw-random"])

    def test_time_null_fires(self):
        findings = run("long Seed = time(nullptr);\n")
        self.assertEqual(rules(findings), ["raw-random"])

    def test_rng_h_is_exempt(self):
        findings = run("int f() { return rand(); }\n",
                       path="src/support/Rng.cpp")
        self.assertEqual(findings, [])

    def test_time_in_comment_does_not_fire(self):
        findings = run(
            "// computed at creation time (each round)\n"
            "int strand(int X); // 'strand' is not srand\n"
            "int g(int X) { return strand(X); }\n")
        self.assertEqual(findings, [])

    def test_member_time_call_does_not_fire(self):
        findings = run("double T = Clock.time();\n")
        self.assertEqual(findings, [])


class ParallelFloatAccumTest(unittest.TestCase):
    def test_shared_accumulation_fires_once(self):
        findings = run(
            "void f(Executor &E, const double *Vals) {\n"
            "  double Total = 0.0;\n"
            "  E.parallelFor(8, [&](size_t I, unsigned) {\n"
            "    Total += Vals[I];\n"
            "  });\n"
            "}\n")
        self.assertEqual(rules(findings), ["parallel-float-accum"])
        self.assertEqual(findings[0].line, 4)

    def test_indexed_slot_write_does_not_fire(self):
        findings = run(
            "void f(Executor &E, double *Slots, const double *Vals) {\n"
            "  E.parallelFor(8, [&](size_t I, unsigned) {\n"
            "    Slots[I] = Vals[I] * 2.0;\n"
            "    Slots[I] += 1.0;\n"
            "  });\n"
            "}\n")
        self.assertEqual(findings, [])

    def test_accumulation_outside_parallel_for_does_not_fire(self):
        findings = run(
            "double sum(const std::vector<double> &V) {\n"
            "  double Total = 0.0;\n"
            "  for (double X : V) Total += X;\n"
            "  return Total;\n"
            "}\n")
        self.assertEqual(findings, [])


class SuppressionTest(unittest.TestCase):
    SNIPPET = (
        "std::unordered_map<int,int> M;\n"
        "int f() {\n"
        "  int N = 0;\n"
        "  // LINT-DETERMINISM: allow(unordered-iter) order-independent sum\n"
        "  for (auto &KV : M) N += KV.second;\n"
        "  return N;\n"
        "}\n")

    def test_suppression_on_previous_line_honored(self):
        findings = run(self.SNIPPET)
        self.assertEqual(rules(findings, suppressed=True),
                         ["unordered-iter"])
        self.assertEqual(rules(findings, suppressed=False), [])
        self.assertEqual(findings[0].suppression_reason,
                         "order-independent sum")

    def test_same_line_suppression_honored(self):
        findings = run(
            "std::unordered_map<int,int> M;\n"
            "void f(int &N) {\n"
            "  for (auto &KV : M) N += KV.second; "
            "// LINT-DETERMINISM: allow(unordered-iter) sum is commutative\n"
            "}\n")
        self.assertEqual(rules(findings, suppressed=True),
                         ["unordered-iter"])
        self.assertEqual(rules(findings, suppressed=False), [])

    def test_wrong_rule_suppression_ignored(self):
        findings = run(self.SNIPPET.replace("unordered-iter", "raw-random"))
        self.assertEqual(rules(findings, suppressed=False),
                         ["unordered-iter"])

    def test_reasonless_suppression_is_itself_a_finding(self):
        findings = run(
            "std::unordered_map<int,int> M;\n"
            "void f(int &N) {\n"
            "  // LINT-DETERMINISM: allow(unordered-iter)\n"
            "  for (auto &KV : M) N += KV.second;\n"
            "}\n")
        # The iteration is waived, but the empty reason is reported as an
        # unsuppressed finding of its own (anchored at the comment line).
        unsuppressed = [f for f in findings if not f.suppressed]
        self.assertEqual(len(unsuppressed), 1)
        self.assertIn("without a reason", unsuppressed[0].message)
        self.assertEqual(unsuppressed[0].line, 3)


class StripperTest(unittest.TestCase):
    def test_line_structure_preserved(self):
        text = 'int a; // x\n/* multi\nline */ int b;\n"str\\"ing"\n'
        stripped = dl.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("multi", stripped)
        self.assertNotIn("str", stripped)
        self.assertIn("int a;", stripped)
        self.assertIn("int b;", stripped)

    def test_raw_string_stripped(self):
        text = 'auto S = R"(for (auto &X : M) rand();)"; int c;\n'
        stripped = dl.strip_comments_and_strings(text)
        self.assertNotIn("rand", stripped)
        self.assertIn("int c;", stripped)


class TreeIsCleanTest(unittest.TestCase):
    def test_src_tree_has_no_unsuppressed_findings(self):
        """The enforced invariant: the real tree lints clean (suppressed
        waivers are allowed; new unsuppressed hazards are not)."""
        root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "src")
        root = os.path.normpath(root)
        if not os.path.isdir(root):
            self.skipTest("src/ not present")
        rc = dl.main(["--root", root])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
