#!/usr/bin/env python3
"""Determinism lint for the PALMED tree.

The repo's core guarantee is bitwise reproducibility: mappings and stats
are identical across Serial/Parallel(N) execution, and mapping files
round-trip bit-exactly. Example-based tests enforce this after the fact;
this lint statically flags the code patterns that silently break it:

  unordered-iter        iteration over std::unordered_map/set (range-for
                        or .begin()): hash-table iteration order is
                        implementation- and run-dependent, so anything it
                        feeds (output, serialization, float accumulation)
                        is nondeterministic. Sort before emitting.
  pointer-key           associative container keyed by pointer value:
                        ordering/iteration follows allocation addresses,
                        which differ run to run (ASLR, allocator state).
  raw-random            rand()/srand()/std::random_device/time() outside
                        src/support/Rng: all randomness must flow through
                        the seedable deterministic Rng.
  parallel-float-accum  compound float accumulation (+=, -=, *=) onto a
                        shared, non-indexed target inside an
                        Executor::parallelFor body: float addition is not
                        associative, so thread interleaving changes the
                        result. Write per-index slots, reduce serially.

Findings carry file:line and a rule id. A justified hazard is waived with
an inline suppression on the same line or the line above:

    // LINT-DETERMINISM: allow(unordered-iter) order-independent sum

The reason is mandatory; suppressions are counted and reported so waivers
stay visible. Exit status is 1 when any unsuppressed finding remains.

Two engines produce the findings:

  --mode=regex   pure-regex scanner over comment/string-stripped source;
                 zero dependencies, runs anywhere (the CI default).
  --mode=clang   libclang (clang.cindex) over compile_commands.json for
                 type-accurate detection of the container rules; falls
                 back is NOT automatic — the mode errors out when the
                 bindings or the compilation database are missing.
  --mode=auto    clang when importable and a compilation database exists,
                 regex otherwise (the default).
"""

import argparse
import bisect
import os
import re
import sys

RULES = {
    "unordered-iter":
        "iteration over an unordered container; hash order is "
        "run-dependent — sort keys before emitting/accumulating, or "
        "suppress with the order-independence reason",
    "pointer-key":
        "associative container keyed by pointer value; iteration and "
        "ordering follow allocation addresses, which change run to run",
    "raw-random":
        "raw randomness/time source; use the seedable palmed::Rng "
        "(src/support/Rng.h) so runs are reproducible",
    "parallel-float-accum":
        "compound accumulation onto a shared target inside a parallelFor "
        "body; float reduction order depends on thread interleaving — "
        "write an index-ordered slot and reduce serially",
}

SUPPRESS_RE = re.compile(
    r"//\s*LINT-DETERMINISM:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
ASSOC_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_RE = re.compile(
    r"\b([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*"
    r"(?:\.|->)\s*c?begin\s*\(")
RAW_RANDOM_RES = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
]
PARALLEL_FOR_RE = re.compile(r"\bparallelFor\s*\(")
COMPOUND_ASSIGN_RE = re.compile(
    r"(?<![\w\]\)])([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*"
    r"(\+=|-=|\*=)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message
        self.suppressed = False
        self.suppression_reason = None

    def __str__(self):
        tag = " (suppressed: %s)" % self.suppression_reason \
            if self.suppressed else ""
        return "%s:%d: [%s] %s%s" % (
            self.path, self.line, self.rule, self.message, tag)


def strip_comments_and_strings(text):
    """Returns text of identical length/line structure with comments,
    string literals, and char literals blanked out, so regexes cannot
    match inside them. Handles //, /* */, "...", '...', and R"tag(...)tag"
    raw strings."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a, b):
        for j in range(a, b):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank(i, j)
            i = j
        elif c == "R" and text[i:i + 2] == 'R"' and \
                (i == 0 or not (text[i - 1].isalnum() or
                                text[i - 1] == "_")):
            m = re.match(r'R"([^(\s]{0,16})\(', text[i:])
            if not m:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n if j < 0 else j + len(close)
            blank(i + 1, j)
            i = j
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j = j + 2 if text[j] == "\\" else j + 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j = j + 2 if text[j] == "\\" else j + 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out)


def line_of(offsets, pos):
    """1-based line for a character offset, given sorted newline offsets."""
    return bisect.bisect_right(offsets, pos) + 1


def newline_offsets(text):
    return [m.start() for m in re.finditer(r"\n", text)]


def match_bracket(text, pos, open_ch, close_ch):
    """Offset just past the bracket matching text[pos] (which must be
    open_ch), or -1 when unbalanced. Text must be pre-stripped."""
    assert text[pos] == open_ch
    depth = 0
    for i in range(pos, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_angle(text, pos):
    """Like match_bracket for template angle brackets; tolerates >> and
    stops on obvious non-template characters ( ; { } )."""
    assert text[pos] == "<"
    depth = 0
    for i in range(pos, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1
    return -1


def split_top_level(args, sep=","):
    """Splits template-argument text on top-level separators."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(args):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(args[start:i])
            start = i + 1
    parts.append(args[start:])
    return parts


def tail_identifier(expr):
    """Last identifier component of an expression like `M->Cache->Done`,
    `S.InFlight`, or `Done` (ignoring trailing calls/subscripts)."""
    expr = expr.strip()
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return m.group(1) if m else None


def unordered_var_names(stripped):
    """Names of variables/members declared with an unordered container
    type anywhere in this file (regex engine's approximation of a type
    lookup)."""
    names = set()
    for m in UNORDERED_RE.finditer(stripped):
        lt = m.end() - 1
        end = match_angle(stripped, lt)
        if end < 0:
            continue
        decl = re.match(r"\s*(?:&|\*|const\b|\s)*([A-Za-z_]\w*)\s*[;={(\[]",
                        stripped[end:end + 160])
        if decl:
            names.add(decl.group(1))
    return names


def find_unordered_iter(path, stripped, offsets, extra_names=None):
    findings = []
    names = unordered_var_names(stripped)
    if extra_names:
        names = names | extra_names

    for m in RANGE_FOR_RE.finditer(stripped):
        paren = m.end() - 1
        end = match_bracket(stripped, paren, "(", ")")
        if end < 0:
            continue
        head = stripped[paren + 1:end - 1]
        parts = split_top_level(head, ":")
        if len(parts) != 2:
            continue
        target = tail_identifier(parts[1])
        is_unordered_decl = UNORDERED_RE.search(parts[1]) is not None
        if target in names or is_unordered_decl:
            findings.append(Finding(
                path, line_of(offsets, m.start()), "unordered-iter",
                "range-for over unordered container '%s': %s" % (
                    target, RULES["unordered-iter"])))

    for m in BEGIN_RE.finditer(stripped):
        target = tail_identifier(m.group(1))
        if target in names:
            findings.append(Finding(
                path, line_of(offsets, m.start()), "unordered-iter",
                "iterator over unordered container '%s': %s" % (
                    target, RULES["unordered-iter"])))
    return findings


def find_pointer_key(path, stripped, offsets):
    findings = []
    for m in ASSOC_RE.finditer(stripped):
        lt = m.end() - 1
        end = match_angle(stripped, lt)
        if end < 0:
            continue
        args = stripped[lt + 1:end - 1]
        key = split_top_level(args)[0].strip()
        # A pointer key is `T *` (possibly const/qualified); smart
        # pointers and `T *const` casts inside deeper args don't count.
        if re.search(r"\*\s*(?:const\s*)?$", key):
            findings.append(Finding(
                path, line_of(offsets, m.start()), "pointer-key",
                "container keyed by pointer type '%s': %s" % (
                    key, RULES["pointer-key"])))
    return findings


def find_raw_random(path, stripped, offsets):
    if re.search(r"(^|/)support/Rng\.(h|cpp)$", path.replace(os.sep, "/")):
        return []
    findings = []
    for rx, what in RAW_RANDOM_RES:
        for m in rx.finditer(stripped):
            findings.append(Finding(
                path, line_of(offsets, m.start()), "raw-random",
                "%s: %s" % (what, RULES["raw-random"])))
    return findings


def parallel_for_bodies(stripped):
    """(start, end) offset ranges of lambda bodies inside parallelFor
    call arguments."""
    bodies = []
    for m in PARALLEL_FOR_RE.finditer(stripped):
        paren = m.end() - 1
        end = match_bracket(stripped, paren, "(", ")")
        if end < 0:
            continue
        args = stripped[paren + 1:end - 1]
        brace = args.find("{")
        while brace >= 0:
            body_end = match_bracket(args, brace, "{", "}")
            if body_end < 0:
                break
            bodies.append((paren + 1 + brace, paren + 1 + body_end))
            brace = args.find("{", body_end)
    return bodies


def find_parallel_float_accum(path, stripped, offsets):
    findings = []
    for start, end in parallel_for_bodies(stripped):
        body = stripped[start:end]
        for m in COMPOUND_ASSIGN_RE.finditer(body):
            target = m.group(1)
            findings.append(Finding(
                path, line_of(offsets, start + m.start()),
                "parallel-float-accum",
                "'%s %s' inside a parallelFor body: %s" % (
                    target, m.group(2), RULES["parallel-float-accum"])))
    return findings


def apply_suppressions(findings, original_text):
    """Marks findings waived by `// LINT-DETERMINISM: allow(<rule>)
    <reason>` on the same line or the line above. Returns the list of
    (line, rule, reason) suppression comments found, used or not."""
    lines = original_text.split("\n")
    suppressions = {}
    for idx, line in enumerate(lines):
        m = SUPPRESS_RE.search(line)
        if m:
            reason = (m.group(2) or "").strip()
            suppressions[idx + 1] = (m.group(1), reason)
    for f in findings:
        for cand in (f.line, f.line - 1):
            entry = suppressions.get(cand)
            if entry and entry[0] == f.rule:
                f.suppressed = True
                f.suppression_reason = entry[1] or "<no reason given>"
                break
    return [(ln, rule, reason)
            for ln, (rule, reason) in sorted(suppressions.items())]


def lint_text(path, text, extra_names=None):
    """All findings for one file's contents (regex engine).

    extra_names: unordered-container member/variable names declared in
    *other* files under the lint root (headers, most importantly), so a
    .cpp iterating a member its header declares is still caught. The
    union trades some precision for recall — a same-named ordered
    container elsewhere would misfire — but misfires are visible and
    suppressible, while silent misses are not.
    """
    stripped = strip_comments_and_strings(text)
    offsets = newline_offsets(stripped)
    findings = []
    findings += find_unordered_iter(path, stripped, offsets, extra_names)
    findings += find_pointer_key(path, stripped, offsets)
    findings += find_raw_random(path, stripped, offsets)
    findings += find_parallel_float_accum(path, stripped, offsets)
    suppression_comments = apply_suppressions(findings, text)
    bad_reason = [s for s in suppression_comments if not s[2]]
    for ln, rule, _ in bad_reason:
        findings.append(Finding(
            path, ln, rule,
            "suppression without a reason; write "
            "`// LINT-DETERMINISM: allow(%s) <why this is safe>`" % rule))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# libclang engine (optional): type-accurate container rules driven from
# compile_commands.json. The parallel-float-accum rule stays regex-based —
# it is a structural heuristic either way.
# ---------------------------------------------------------------------------

def lint_file_clang(path, text, compile_db_dir):
    from clang import cindex  # May raise ImportError — caller handles.

    db = cindex.CompilationDatabase.fromDirectory(compile_db_dir)
    cmds = db.getCompileCommands(os.path.abspath(path))
    args = []
    if cmds:
        # Drop the compiler argv0 and the -c/-o/source arguments.
        it = iter(list(cmds[0].arguments)[1:])
        for a in it:
            if a in ("-c", "-o"):
                next(it, None)
            elif a != os.path.abspath(path) and a != cmds[0].filename:
                args.append(a)
    index = cindex.Index.create()
    tu = index.parse(path, args=args)
    findings = []

    def type_spelling(node):
        try:
            return node.type.get_canonical().spelling or ""
        except Exception:
            return ""

    for node in tu.cursor.walk_preorder():
        if node.location.file is None or \
                os.path.abspath(str(node.location.file)) != \
                os.path.abspath(path):
            continue
        line = node.location.line
        if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            if children:
                range_expr = children[-2] if len(children) >= 2 else None
                spelling = type_spelling(range_expr) if range_expr else ""
                if "unordered_map" in spelling or \
                        "unordered_set" in spelling or \
                        "unordered_multi" in spelling:
                    findings.append(Finding(
                        path, line, "unordered-iter",
                        "range-for over '%s': %s" % (
                            spelling[:80], RULES["unordered-iter"])))
        elif node.kind in (cindex.CursorKind.VAR_DECL,
                           cindex.CursorKind.FIELD_DECL):
            spelling = type_spelling(node)
            m = re.search(r"\b(?:unordered_)?(?:map|set|multimap|multiset)"
                          r"<([^,>]*\*)\s*(?:,|>)", spelling)
            if m:
                findings.append(Finding(
                    path, line, "pointer-key",
                    "container keyed by pointer type '%s': %s" % (
                        m.group(1).strip(), RULES["pointer-key"])))
        elif node.kind == cindex.CursorKind.CALL_EXPR:
            if node.spelling in ("rand", "srand", "time") and \
                    not re.search(r"(^|/)support/Rng\.(h|cpp)$",
                                  path.replace(os.sep, "/")):
                findings.append(Finding(
                    path, line, "raw-random",
                    "%s(): %s" % (node.spelling, RULES["raw-random"])))
        elif node.kind == cindex.CursorKind.DECL_REF_EXPR:
            if node.spelling == "random_device":
                findings.append(Finding(
                    path, line, "raw-random",
                    "std::random_device: %s" % RULES["raw-random"]))

    stripped = strip_comments_and_strings(text)
    offsets = newline_offsets(stripped)
    findings += find_parallel_float_accum(path, stripped, offsets)
    apply_suppressions(findings, text)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def collect_files(root):
    exts = (".h", ".hpp", ".cpp", ".cc", ".cxx")
    out = []
    for dirpath, _, files in os.walk(root):
        for name in sorted(files):
            if name.endswith(exts):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__.split("\n", 1)[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default="src",
                    help="directory (or single file) to lint [src]")
    ap.add_argument("--mode", choices=["auto", "regex", "clang"],
                    default="auto")
    ap.add_argument("--compile-commands", default="build",
                    help="directory containing compile_commands.json "
                         "(clang mode) [build]")
    ap.add_argument("--list-suppressions", action="store_true",
                    help="also print every active suppression")
    args = ap.parse_args(argv)

    mode = args.mode
    if mode == "auto":
        have_db = os.path.exists(
            os.path.join(args.compile_commands, "compile_commands.json"))
        try:
            import clang.cindex  # noqa: F401
            mode = "clang" if have_db else "regex"
        except ImportError:
            mode = "regex"
    if mode == "clang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("determinism_lint: --mode=clang requires the libclang "
                  "python bindings (python3-clang)", file=sys.stderr)
            return 2

    files = [args.root] if os.path.isfile(args.root) \
        else collect_files(args.root)
    texts = {}
    for path in files:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            texts[path] = fh.read()
    # Cross-file pass: unordered declarations anywhere under the root are
    # visible when linting every file (headers declare, .cpps iterate).
    global_names = set()
    for path, text in texts.items():
        global_names |= unordered_var_names(
            strip_comments_and_strings(text))
    all_findings = []
    for path in files:
        text = texts[path]
        if mode == "clang":
            all_findings += lint_file_clang(path, text,
                                            args.compile_commands)
        else:
            all_findings += lint_text(path, text, global_names)

    unsuppressed = [f for f in all_findings if not f.suppressed]
    suppressed = [f for f in all_findings if f.suppressed]
    for f in unsuppressed:
        print(f)
    if args.list_suppressions or suppressed:
        for f in suppressed:
            print(f)
    print("determinism_lint (%s mode): %d file(s), %d finding(s), "
          "%d suppressed" % (mode, len(files), len(unsuppressed),
                             len(suppressed)))
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
