//===- tools/palmed_cli.cpp - Command-line front end ----------------------===//
//
// Part of the PALMED reproduction.
//
// A small CLI exposing the library's workflow:
//
//   palmed_cli map     --machine skl|zen|fig1 [--noise S] [--out FILE]
//   palmed_cli predict --machine skl --mapping FILE "ADD_0^2 LOAD_0"
//   palmed_cli analyze --machine skl --mapping FILE "ADD_0^2 LOAD_0"
//   palmed_cli dual    --machine skl
//
// `map` infers a resource mapping from (simulated) measurements and writes
// the portable text format; `predict` and `analyze` consume it; `dual`
// prints the ground-truth conjunctive dual for comparison.
//
//===----------------------------------------------------------------------===//

#include "core/DualConstruction.h"
#include "core/MappingAnalysis.h"
#include "core/PalmedDriver.h"
#include "machine/StandardMachines.h"
#include "sim/AnalyticOracle.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

using namespace palmed;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  palmed_cli map     --machine skl|zen|fig1 [--noise S] [--out F]\n"
      "  palmed_cli predict --machine M --mapping F \"KERNEL\"\n"
      "  palmed_cli analyze --machine M --mapping F \"KERNEL\"\n"
      "  palmed_cli dual    --machine M\n"
      "KERNEL is e.g. \"ADD_0^2 LOAD_0\" (instruction names with optional\n"
      "^multiplicity). Machines: skl (Skylake-like), zen (Zen1-like),\n"
      "fig1 (the paper's running example).\n");
}

std::optional<MachineModel> makeMachine(const std::string &Name) {
  if (Name == "skl")
    return makeSklLike();
  if (Name == "zen")
    return makeZenLike();
  if (Name == "fig1")
    return makeFig1Machine();
  std::fprintf(stderr, "error: unknown machine '%s'\n", Name.c_str());
  return std::nullopt;
}

struct Options {
  std::string Command;
  std::string Machine = "skl";
  std::string MappingFile;
  std::string OutFile;
  std::string Kernel;
  double Noise = 0.0;
};

std::optional<Options> parseArgs(int Argc, char **Argv) {
  if (Argc < 2)
    return std::nullopt;
  Options O;
  O.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--machine") {
      if (const char *V = Next())
        O.Machine = V;
      else
        return std::nullopt;
    } else if (Arg == "--mapping") {
      if (const char *V = Next())
        O.MappingFile = V;
      else
        return std::nullopt;
    } else if (Arg == "--out") {
      if (const char *V = Next())
        O.OutFile = V;
      else
        return std::nullopt;
    } else if (Arg == "--noise") {
      if (const char *V = Next())
        O.Noise = std::strtod(V, nullptr);
      else
        return std::nullopt;
    } else if (!Arg.empty() && Arg[0] != '-') {
      O.Kernel = Arg;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return std::nullopt;
    }
  }
  return O;
}

std::optional<ResourceMapping> loadMapping(const std::string &File,
                                           const InstructionSet &Isa) {
  std::ifstream IS(File);
  if (!IS) {
    std::fprintf(stderr, "error: cannot open mapping file '%s'\n",
                 File.c_str());
    return std::nullopt;
  }
  std::stringstream Buffer;
  Buffer << IS.rdbuf();
  auto M = ResourceMapping::fromText(Buffer.str(), Isa);
  if (!M)
    std::fprintf(stderr, "error: malformed mapping file '%s'\n",
                 File.c_str());
  return M;
}

int cmdMap(const Options &O) {
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;
  AnalyticOracle Oracle(*Machine);
  BenchmarkConfig BCfg;
  BCfg.NoiseStdDev = O.Noise;
  BenchmarkRunner Runner(*Machine, Oracle, BCfg);

  std::fprintf(stderr, "inferring mapping for '%s'...\n",
               Machine->name().c_str());
  PalmedResult R = runPalmed(Runner);
  std::fprintf(stderr,
               "%zu resources, %zu instructions mapped, %zu benchmarks, "
               "%.1fs total\n",
               R.Stats.NumResources, R.Stats.NumMapped,
               R.Stats.NumBenchmarks,
               R.Stats.SelectionSeconds + R.Stats.CoreMappingSeconds +
                   R.Stats.CompleteMappingSeconds);

  std::string Text = R.Mapping.toText(Machine->isa());
  if (O.OutFile.empty()) {
    std::cout << Text;
    return 0;
  }
  std::ofstream OS(O.OutFile);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write '%s'\n", O.OutFile.c_str());
    return 1;
  }
  OS << Text;
  std::fprintf(stderr, "mapping written to %s\n", O.OutFile.c_str());
  return 0;
}

int cmdPredictOrAnalyze(const Options &O, bool Analyze) {
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;
  if (O.MappingFile.empty() || O.Kernel.empty()) {
    usage();
    return 1;
  }
  auto Mapping = loadMapping(O.MappingFile, Machine->isa());
  if (!Mapping)
    return 1;
  auto K = Microkernel::parse(O.Kernel, Machine->isa());
  if (!K) {
    std::fprintf(stderr, "error: cannot parse kernel '%s'\n",
                 O.Kernel.c_str());
    return 1;
  }
  auto Ipc = Mapping->predictIpc(*K);
  if (!Ipc) {
    std::fprintf(stderr,
                 "kernel contains instructions the mapping does not cover\n");
    return 1;
  }
  AnalyticOracle Oracle(*Machine);
  std::printf("kernel        : %s\n", K->str(Machine->isa()).c_str());
  std::printf("predicted IPC : %.3f  (t = %.3f cycles/iter)\n", *Ipc,
              K->size() / *Ipc);
  std::printf("simulated IPC : %.3f\n", Oracle.measureIpc(*K));
  if (Analyze) {
    std::printf("\n");
    printReport(std::cout, analyzeKernel(*Mapping, *K), Machine->isa());
  }
  return 0;
}

int cmdDual(const Options &O) {
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;
  ResourceMapping Dual = buildDualMapping(*Machine);
  std::cout << Dual.toText(Machine->isa());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  auto O = parseArgs(Argc, Argv);
  if (!O) {
    usage();
    return 1;
  }
  if (O->Command == "map")
    return cmdMap(*O);
  if (O->Command == "predict")
    return cmdPredictOrAnalyze(*O, /*Analyze=*/false);
  if (O->Command == "analyze")
    return cmdPredictOrAnalyze(*O, /*Analyze=*/true);
  if (O->Command == "dual")
    return cmdDual(*O);
  usage();
  return 1;
}
