//===- tools/palmed_cli.cpp - Command-line front end ----------------------===//
//
// Part of the PALMED reproduction.
//
// A small CLI exposing the public palmed/ facade:
//
//   palmed_cli map     --machine skl|zen|fig1 [--noise S] [--out FILE]
//                      [--save FILE] [--progress]
//   palmed_cli predict --machine skl --mapping FILE "ADD_0^2 LOAD_0"
//   palmed_cli analyze --machine skl --mapping FILE "ADD_0^2 LOAD_0"
//   palmed_cli eval    --machine skl [--threads N] [--blocks N]
//                      [--suite spec|poly] [--tools a,b,c | --tools help]
//   palmed_cli dual    --machine skl
//   palmed_cli query   --socket PATH [--machine M] [KERNEL...]
//                      [--stats] [--list]
//
// `map` infers a resource mapping (palmed::Pipeline) and writes the
// portable text format (--out) and/or the versioned binary format
// (--save); `predict` and `analyze` consume either; `eval` runs the
// Fig. 4b accuracy harness through the PredictorRegistry and a
// (optionally parallel) EvalSession; `dual` prints the ground-truth
// conjunctive dual for comparison; `query` talks to a running
// palmed_serve daemon.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"
#include "support/Table.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace palmed;

namespace {

/// Machine roster shared by construction, the usage text, and the
/// unknown-name error message.
constexpr const char *MachineNames[] = {"skl", "zen", "fig1", "stress",
                                        "huge"};

std::string machineNameList() {
  std::string Out;
  for (const char *Name : MachineNames) {
    if (!Out.empty())
      Out += ", ";
    Out += Name;
  }
  return Out;
}

void usage() {
  std::fprintf(
      stderr,
      "palmed_cli %s\n"
      "usage:\n"
      "  palmed_cli map     --machine MACHINE [--noise S] [--out F]\n"
      "                     [--save F] [--threads N] [--progress]\n"
      "                     [--prune-pairs | --no-prune-pairs]\n"
      "  palmed_cli predict --machine M --mapping F \"KERNEL\"\n"
      "  palmed_cli analyze --machine M --mapping F \"KERNEL\"\n"
      "  palmed_cli eval    --machine M [--threads N] [--blocks N]\n"
      "                     [--suite spec|poly] [--tools a,b,c|help]\n"
      "  palmed_cli eval    --machine M --corpus FILE [--mapping F]\n"
      "                     [--threads N]\n"
      "  palmed_cli dual    --machine M\n"
      "  palmed_cli query   --socket PATH [--machine M] [KERNEL...]\n"
      "                     [--stats] [--list]\n"
      "  palmed_cli help\n"
      "KERNEL is e.g. \"ADD_0^2 LOAD_0\" (instruction names with optional\n"
      "^multiplicity). Machines: skl (Skylake-like), zen (Zen1-like),\n"
      "fig1 (the paper's running example), stress (large synthetic ISA),\n"
      "huge (2048-instruction / 24-port synthetic ISA).\n"
      "--threads 0 resolves to the hardware thread count.\n"
      "--prune-pairs / --no-prune-pairs toggle the cluster-first selection\n"
      "pruning that replaces the quadratic pair sweep; the default is ON\n"
      "for the huge profile and OFF everywhere else.\n"
      "map --out writes the portable text mapping; map --save writes the\n"
      "versioned binary format (checksummed, machine-stamped) that\n"
      "palmed_serve loads. predict/analyze auto-detect either format.\n"
      "query sends the kernels to a palmed_serve daemon in one batch;\n"
      "--stats prints 'key value' counter lines, --list the served\n"
      "machines.\n"
      "eval --corpus batch-predicts a file of kernel lines (one KERNEL\n"
      "per line; blank lines and # comments skipped) through the batch\n"
      "prediction engine and reports blocks/s; --mapping uses a saved\n"
      "mapping instead of inferring one.\n",
      versionString());
}

std::optional<MachineModel> makeMachine(const std::string &Name) {
  if (Name == "skl")
    return makeSklLike();
  if (Name == "zen")
    return makeZenLike();
  if (Name == "fig1")
    return makeFig1Machine();
  if (Name == "stress")
    return makeStressMachine(StressIsaConfig());
  if (Name == "huge")
    return makeStressMachine(hugeStressConfig());
  std::fprintf(stderr, "error: unknown machine '%s' (valid machines: %s)\n",
               Name.c_str(), machineNameList().c_str());
  return std::nullopt;
}

/// The CLI threading convention shared by map and eval: 1 = serial
/// (default), 0 = auto (hardware concurrency), N = that many workers.
ExecutionPolicy policyFor(unsigned Threads) {
  return Threads == 1 ? ExecutionPolicy::serial()
                      : ExecutionPolicy::parallel(Threads);
}

struct Options {
  std::string Command;
  std::string Machine = "skl";
  std::string MappingFile;
  std::string CorpusFile;
  std::string OutFile;
  std::string SaveFile;
  std::string SocketPath;
  /// Positional kernel arguments; predict/analyze use the first, query
  /// sends the whole batch.
  std::vector<std::string> Kernels;
  std::string Tools;
  std::string Suite = "spec";
  double Noise = 0.0;
  unsigned Threads = 1;
  size_t Blocks = 300;
  bool Progress = false;
  bool Stats = false;
  bool List = false;
  /// Cluster-first selection pruning: unset = default (on for huge, off
  /// otherwise), overridable with --prune-pairs / --no-prune-pairs.
  std::optional<bool> PrunePairs;
};

std::optional<Options> parseArgs(int Argc, char **Argv) {
  if (Argc < 2)
    return std::nullopt;
  Options O;
  O.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--machine") {
      if (const char *V = Next())
        O.Machine = V;
      else
        return std::nullopt;
    } else if (Arg == "--mapping") {
      if (const char *V = Next())
        O.MappingFile = V;
      else
        return std::nullopt;
    } else if (Arg == "--corpus") {
      if (const char *V = Next())
        O.CorpusFile = V;
      else
        return std::nullopt;
    } else if (Arg == "--out") {
      if (const char *V = Next())
        O.OutFile = V;
      else
        return std::nullopt;
    } else if (Arg == "--save") {
      if (const char *V = Next())
        O.SaveFile = V;
      else
        return std::nullopt;
    } else if (Arg == "--socket") {
      if (const char *V = Next())
        O.SocketPath = V;
      else
        return std::nullopt;
    } else if (Arg == "--noise") {
      if (const char *V = Next())
        O.Noise = std::strtod(V, nullptr);
      else
        return std::nullopt;
    } else if (Arg == "--threads") {
      if (const char *V = Next())
        O.Threads =
            static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      else
        return std::nullopt;
    } else if (Arg == "--blocks") {
      if (const char *V = Next())
        O.Blocks = std::strtoul(V, nullptr, 10);
      else
        return std::nullopt;
    } else if (Arg == "--tools") {
      if (const char *V = Next())
        O.Tools = V;
      else
        return std::nullopt;
    } else if (Arg == "--suite") {
      if (const char *V = Next())
        O.Suite = V;
      else
        return std::nullopt;
    } else if (Arg == "--progress") {
      O.Progress = true;
    } else if (Arg == "--stats") {
      O.Stats = true;
    } else if (Arg == "--list") {
      O.List = true;
    } else if (Arg == "--prune-pairs") {
      O.PrunePairs = true;
    } else if (Arg == "--no-prune-pairs") {
      O.PrunePairs = false;
    } else if (!Arg.empty() && Arg[0] != '-') {
      O.Kernels.push_back(Arg);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return std::nullopt;
    }
  }
  return O;
}

/// Loads a mapping file in either format (binary auto-detected by magic,
/// text otherwise), reporting MappingIO's typed error on failure.
std::optional<ResourceMapping> loadMapping(const std::string &File,
                                           const MachineModel &Machine) {
  serve::MappingIOError Err;
  auto M = serve::loadMappingAuto(File, Machine, &Err);
  if (!M)
    std::fprintf(stderr, "error: %s [%s]\n", Err.Message.c_str(),
                 serve::mappingIOStatusName(Err.Status));
  return M;
}

const char *bwpModeName(BwpMode Mode) {
  return Mode == BwpMode::Pinned ? "pinned" : "exact-milp";
}

/// Banner naming the library version and the effective pipeline config,
/// printed at the top of `map` output.
void printConfigBanner(const PalmedConfig &Cfg, const Options &O) {
  std::fprintf(stderr,
               "palmed %s | machine=%s epsilon=%g M=%d L=%d mode=%s "
               "max-iter=%d noise=%g threads=%u prune-pairs=%d\n",
               versionString(), O.Machine.c_str(), Cfg.Epsilon, Cfg.MRepeat,
               Cfg.LSat, bwpModeName(Cfg.Mode), Cfg.MaxShapeIterations,
               O.Noise, Cfg.Execution.NumThreads,
               Cfg.Selection.ClusterPairPruning ? 1 : 0);
}

/// Stage-progress printer for `map --progress`.
class StderrObserver : public PipelineObserver {
public:
  void onStageBegin(PipelineStage Stage) override {
    std::fprintf(stderr, "[%s] ...\n", pipelineStageName(Stage));
  }
  void onStageEnd(PipelineStage Stage, const PalmedStats &Stats) override {
    std::fprintf(stderr, "[%s] done (%zu benchmarks so far)\n",
                 pipelineStageName(Stage), Stats.NumBenchmarks);
  }
  void onShapeIteration(int Iteration, size_t NumConstraints,
                        size_t NumResources,
                        size_t NumBenchmarks) override {
    std::fprintf(stderr,
                 "  shape round %d: %zu constraints, %zu resources, "
                 "%zu benchmarks\n",
                 Iteration, NumConstraints, NumResources, NumBenchmarks);
  }
};

int cmdMap(const Options &O) {
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;
  AnalyticOracle Oracle(*Machine);
  BenchmarkConfig BCfg;
  BCfg.NoiseStdDev = O.Noise;
  BenchmarkRunner Runner(*Machine, Oracle, BCfg);

  PalmedConfig Cfg;
  Cfg.Execution = policyFor(O.Threads);
  // The huge profile's full quadratic sweep is the wall the pruning
  // removes; everywhere else the paper's full sweep stays the default.
  Cfg.Selection.ClusterPairPruning =
      O.PrunePairs.value_or(O.Machine == "huge");
  printConfigBanner(Cfg, O);
  std::fprintf(stderr, "inferring mapping for '%s'...\n",
               Machine->name().c_str());
  Pipeline P(Runner, Cfg);
  StderrObserver Observer;
  if (O.Progress)
    P.setObserver(&Observer);
  const PalmedResult &R = P.run();
  std::fprintf(stderr,
               "%zu resources, %zu instructions mapped, %zu benchmarks "
               "(%zu of %zu quadratic pairs), %.1fs total\n",
               R.Stats.NumResources, R.Stats.NumMapped,
               R.Stats.NumBenchmarks, R.Stats.PairBenchmarks,
               R.Stats.PairBenchmarksQuadratic,
               R.Stats.SelectionSeconds + R.Stats.CoreMappingSeconds +
                   R.Stats.CompleteMappingSeconds);
  std::fprintf(stderr,
               "LP2: %ld components, %ld/%ld warm-start hits (%.1f%% of "
               "probes), %ld+%ld pivots\n",
               R.Stats.Lp2Components, R.Stats.LpWarmStartHits,
               R.Stats.LpWarmStartAttempts,
               R.Stats.LpWarmStartAttempts > 0
                   ? 100.0 * static_cast<double>(R.Stats.LpWarmStartHits) /
                         static_cast<double>(R.Stats.LpWarmStartAttempts)
                   : 0.0,
               R.Stats.CoreLpPivots, R.Stats.CompleteLpPivots);

  if (!O.SaveFile.empty()) {
    serve::MappingIOError Err;
    if (!serve::saveMapping(O.SaveFile, R.Mapping, *Machine, &Err)) {
      std::fprintf(stderr, "error: %s [%s]\n", Err.Message.c_str(),
                   serve::mappingIOStatusName(Err.Status));
      return 1;
    }
    std::fprintf(stderr, "binary mapping written to %s\n",
                 O.SaveFile.c_str());
  }

  std::string Text = R.Mapping.toText(Machine->isa());
  if (O.OutFile.empty()) {
    if (O.SaveFile.empty())
      std::cout << Text;
    return 0;
  }
  std::ofstream OS(O.OutFile);
  if (!OS) {
    std::fprintf(stderr, "error: cannot write '%s'\n", O.OutFile.c_str());
    return 1;
  }
  OS << Text;
  std::fprintf(stderr, "mapping written to %s\n", O.OutFile.c_str());
  return 0;
}

int cmdPredictOrAnalyze(const Options &O, bool Analyze) {
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;
  if (O.MappingFile.empty() || O.Kernels.empty()) {
    usage();
    return 1;
  }
  auto Mapping = loadMapping(O.MappingFile, *Machine);
  if (!Mapping)
    return 1;
  const std::string &Kernel = O.Kernels.front();
  auto K = Microkernel::parse(Kernel, Machine->isa());
  if (!K) {
    std::fprintf(stderr, "error: cannot parse kernel '%s'\n",
                 Kernel.c_str());
    return 1;
  }
  auto Ipc = Mapping->predictIpc(*K);
  if (!Ipc) {
    std::fprintf(stderr,
                 "kernel contains instructions the mapping does not cover\n");
    return 1;
  }
  AnalyticOracle Oracle(*Machine);
  std::printf("kernel        : %s\n", K->str(Machine->isa()).c_str());
  std::printf("predicted IPC : %.3f  (t = %.3f cycles/iter)\n", *Ipc,
              K->size() / *Ipc);
  std::printf("simulated IPC : %.3f\n", Oracle.measureIpc(*K));
  if (Analyze) {
    std::printf("\n");
    printReport(std::cout, analyzeKernel(*Mapping, *K), Machine->isa());
  }
  return 0;
}

std::vector<std::string> splitList(const std::string &Csv) {
  std::vector<std::string> Out;
  std::stringstream SS(Csv);
  std::string Item;
  while (std::getline(SS, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

/// `eval --corpus`: batch-predicts a file of microkernel lines through
/// the compiled batch engine and reports corpus-prediction throughput.
/// One kernel per line in Microkernel::parse syntax; blank lines and
/// lines starting with '#' are skipped. Any malformed line aborts with a
/// nonzero exit naming the line. The mapping comes from --mapping when
/// given, otherwise it is inferred by the pipeline.
int cmdEvalCorpus(const Options &O) {
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;

  std::ifstream In(O.CorpusFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot open corpus file '%s'\n",
                 O.CorpusFile.c_str());
    return 1;
  }
  predict::KernelBatch Batch;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    auto K = Microkernel::parse(Line, Machine->isa());
    if (!K) {
      std::fprintf(stderr,
                   "error: corpus line %zu: cannot parse kernel '%s'\n",
                   LineNo, Line.c_str());
      return 1;
    }
    Batch.add(*K);
  }
  if (Batch.empty()) {
    std::fprintf(stderr, "error: corpus file '%s' contains no kernels\n",
                 O.CorpusFile.c_str());
    return 1;
  }

  std::optional<ResourceMapping> Mapping;
  if (!O.MappingFile.empty()) {
    Mapping = loadMapping(O.MappingFile, *Machine);
    if (!Mapping)
      return 1;
  } else {
    std::fprintf(stderr, "inferring mapping for '%s'...\n",
                 Machine->name().c_str());
    AnalyticOracle Oracle(*Machine);
    BenchmarkRunner Runner(*Machine, Oracle);
    Pipeline P(Runner);
    Mapping = P.run().Mapping;
  }

  ExecutionPolicy Pol = policyFor(O.Threads);
  std::unique_ptr<Executor> Exec;
  if (Pol.isParallel())
    Exec = std::make_unique<Executor>(Pol.NumThreads);

  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  predict::CompiledMapping CM = predict::CompiledMapping::compile(*Mapping);
  Clock::time_point T1 = Clock::now();
  std::vector<std::optional<double>> Ipc(Batch.size());
  predict::predictIpcBatch(CM, Batch, Ipc.data(), Exec.get());
  Clock::time_point T2 = Clock::now();

  size_t Supported = 0;
  double IpcSum = 0.0;
  for (const auto &V : Ipc) {
    if (!V)
      continue;
    ++Supported;
    IpcSum += *V;
  }
  double CompileUs =
      std::chrono::duration<double, std::micro>(T1 - T0).count();
  double PredictS = std::chrono::duration<double>(T2 - T1).count();
  double BlocksPerS =
      PredictS > 0.0 ? static_cast<double>(Batch.size()) / PredictS : 0.0;
  std::printf("corpus %s: %zu blocks, %zu supported (%.1f%%), machine %s\n",
              O.CorpusFile.c_str(), Batch.size(), Supported,
              100.0 * static_cast<double>(Supported) /
                  static_cast<double>(Batch.size()),
              Machine->name().c_str());
  if (Supported)
    std::printf("mean predicted IPC: %.3f\n",
                IpcSum / static_cast<double>(Supported));
  std::printf("compile: %.1f us; predicted %zu blocks in %.3f ms: "
              "%.0f blocks/s\n",
              CompileUs, Batch.size(), PredictS * 1e3, BlocksPerS);
  return 0;
}

int cmdEval(const Options &O) {
  if (!O.CorpusFile.empty())
    return cmdEvalCorpus(O);
  const PredictorRegistry &Registry = PredictorRegistry::builtin();
  if (O.Tools == "help" || O.Tools == "list") {
    std::printf("registered predictors:\n");
    for (const std::string &Name : Registry.names())
      std::printf("  %-10s %s\n", Name.c_str(),
                  Registry.description(Name).c_str());
    return 0;
  }
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;
  WorkloadConfig WCfg;
  if (O.Suite == "spec")
    WCfg.Profile = WorkloadProfile::SpecLike;
  else if (O.Suite == "poly")
    WCfg.Profile = WorkloadProfile::PolybenchLike;
  else {
    std::fprintf(stderr, "error: unknown suite '%s' (spec|poly)\n",
                 O.Suite.c_str());
    return 1;
  }
  WCfg.NumBlocks = O.Blocks;

  // Validate and dedupe the tool roster before the (expensive) mapping
  // inference, so bad --tools input fails fast.
  std::vector<std::string> Tools =
      O.Tools.empty() ? Registry.names() : splitList(O.Tools);
  {
    std::vector<std::string> Unique;
    for (const std::string &Tool : Tools) {
      if (!Registry.contains(Tool)) {
        std::string Known;
        for (const std::string &Name : Registry.names())
          Known += (Known.empty() ? "" : ", ") + Name;
        std::fprintf(stderr,
                     "error: unknown tool '%s' (valid tools: %s; "
                     "see --tools help)\n",
                     Tool.c_str(), Known.c_str());
        return 1;
      }
      if (std::find(Unique.begin(), Unique.end(), Tool) == Unique.end())
        Unique.push_back(Tool);
    }
    Tools = std::move(Unique);
  }

  AnalyticOracle Oracle(*Machine);
  BenchmarkRunner Runner(*Machine, Oracle);

  std::fprintf(stderr, "palmed %s | eval machine=%s suite=%s blocks=%zu "
                       "threads=%u\n",
               versionString(), O.Machine.c_str(), O.Suite.c_str(),
               O.Blocks, O.Threads);
  std::fprintf(stderr, "inferring mapping for '%s'...\n",
               Machine->name().c_str());
  Pipeline P(Runner);
  const PalmedResult &R = P.run();

  PredictorContext Ctx;
  Ctx.Machine = &*Machine;
  Ctx.Runner = &Runner;
  Ctx.PalmedMapping = &R.Mapping;

  EvalSession Session(Oracle, policyFor(O.Threads));
  Session.setReferenceTool("palmed");
  std::vector<std::string> Added;
  for (const std::string &Tool : Tools) {
    std::string Error;
    auto Pred = Registry.create(Tool, Ctx, &Error);
    if (!Pred) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    Added.push_back(Pred->name());
    Session.add(std::move(Pred));
  }

  auto Blocks = generateWorkload(*Machine, WCfg);
  EvalOutcome Out = Session.run(Blocks);

  TextTable T({"tool", "coverage %", "RMS err %", "Kendall tau"});
  for (const std::string &Tool : Added) {
    ToolAccuracy A = Out.accuracy(Tool);
    T.addRow({A.Tool, TextTable::fmt(A.CoveragePct, 1),
              TextTable::fmt(A.ErrPct, 1),
              TextTable::fmt(A.KendallTau, 2)});
  }
  std::printf("%s workload, %zu blocks, machine %s:\n\n",
              workloadProfileName(WCfg.Profile), Blocks.size(),
              Machine->name().c_str());
  T.print(std::cout);
  return 0;
}

/// Talks to a running palmed_serve daemon: a batched prediction query for
/// the positional kernels, plus optional --stats / --list dumps. Returns
/// nonzero if the transport fails or any kernel in the batch fails.
int cmdQuery(const Options &O) {
  if (O.SocketPath.empty() ||
      (O.Kernels.empty() && !O.Stats && !O.List)) {
    usage();
    return 1;
  }
  serve::Client C;
  if (!C.connect(O.SocketPath)) {
    std::fprintf(stderr, "error: %s\n", C.lastError().c_str());
    return 1;
  }

  if (O.List) {
    auto L = C.list();
    if (!L) {
      std::fprintf(stderr, "error: %s\n", C.lastError().c_str());
      return 1;
    }
    for (const serve::MachineInfo &M : L->Machines)
      std::printf("%-10s digest=%016llx resources=%u mapped=%u\n",
                  M.Name.c_str(),
                  static_cast<unsigned long long>(M.Digest),
                  M.NumResources, M.NumMapped);
  }

  int Rc = 0;
  if (!O.Kernels.empty()) {
    auto R = C.query(O.Machine, O.Kernels);
    if (!R) {
      std::fprintf(stderr, "error: %s\n", C.lastError().c_str());
      return 1;
    }
    for (size_t I = 0; I < O.Kernels.size(); ++I) {
      const serve::KernelAnswer &A = R->Answers[I];
      switch (A.S) {
      case serve::KernelAnswer::Status::Ok: {
        std::string Bottlenecks;
        for (const std::string &B : A.Bottlenecks)
          Bottlenecks += (Bottlenecks.empty() ? "" : ",") + B;
        std::printf("%s : ipc=%.3f bottleneck=%s\n", O.Kernels[I].c_str(),
                    A.Ipc, Bottlenecks.c_str());
        break;
      }
      case serve::KernelAnswer::Status::ParseError:
        std::printf("%s : parse-error\n", O.Kernels[I].c_str());
        Rc = 1;
        break;
      case serve::KernelAnswer::Status::Unsupported:
        std::printf("%s : unsupported\n", O.Kernels[I].c_str());
        Rc = 1;
        break;
      }
    }
  }

  if (O.Stats) {
    auto S = C.stats();
    if (!S) {
      std::fprintf(stderr, "error: %s\n", C.lastError().c_str());
      return 1;
    }
    for (const auto &[Key, Value] : S->Counters)
      std::printf("%s %g\n", Key.c_str(), Value);
  }
  return Rc;
}

int cmdDual(const Options &O) {
  auto Machine = makeMachine(O.Machine);
  if (!Machine)
    return 1;
  ResourceMapping Dual = buildDualMapping(*Machine);
  std::cout << Dual.toText(Machine->isa());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  auto O = parseArgs(Argc, Argv);
  if (!O) {
    usage();
    return 1;
  }
  if (O->Command == "map")
    return cmdMap(*O);
  if (O->Command == "predict")
    return cmdPredictOrAnalyze(*O, /*Analyze=*/false);
  if (O->Command == "analyze")
    return cmdPredictOrAnalyze(*O, /*Analyze=*/true);
  if (O->Command == "eval")
    return cmdEval(*O);
  if (O->Command == "dual")
    return cmdDual(*O);
  if (O->Command == "query")
    return cmdQuery(*O);
  if (O->Command == "help" || O->Command == "--help" || O->Command == "-h") {
    usage();
    return 0;
  }
  usage();
  return 1;
}
