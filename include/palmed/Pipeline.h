//===- palmed/Pipeline.h - Staged Palmed pipeline --------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public, staged form of the paper's Fig. 3 pipeline. Where the
/// historical runPalmed() free function runs everything in one shot,
/// Pipeline exposes the three stages individually:
///
///   Pipeline P(Runner, Config);
///   P.selectBasics();      // Algo 1 -> SelectionResult
///   P.solveCoreMapping();  // Algo 2 -> CoreMappingResult (shape, sat)
///   P.completeMapping();   // Algo 5 -> PalmedResult
///
/// Stages must run in order and each runs once; run() drives whatever is
/// left, so `Pipeline(R).run()` is equivalent to the one-shot function,
/// and a caller can stop after any stage, inspect its result, and resume
/// later. Progress is observable through PipelineObserver and the whole
/// pipeline is cooperatively cancellable through CancellationToken (see
/// palmed/Observer.h).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PALMED_PIPELINE_H
#define PALMED_PALMED_PIPELINE_H

#include "core/BwpSolver.h"
#include "core/ResourceMapping.h"
#include "core/Selection.h"
#include "core/ShapeSolver.h"
#include "palmed/ExecutionPolicy.h"
#include "palmed/Observer.h"
#include "sim/BenchmarkRunner.h"

#include <memory>
#include <vector>

namespace palmed {

/// Pipeline configuration.
struct PalmedConfig {
  SelectionConfig Selection;
  /// Relative measurement tolerance shared by all comparisons.
  double Epsilon = 0.05;
  /// Multiplicity amplification M of the aMb seed benchmarks (paper uses 4).
  int MRepeat = 4;
  /// Saturation amplification L of the Ksat benchmarks (paper uses 4).
  int LSat = 4;
  /// Weight-problem solution mode (see BwpSolver.h).
  BwpMode Mode = BwpMode::Pinned;
  /// Maximum shape/enrichment iterations (Algo 2's repeat-until loop).
  int MaxShapeIterations = 10;
  /// How the per-instruction fan-outs (stage 1 selection benchmarks and
  /// stage 3 LPAUX solves) are scheduled. Mapping outcomes are
  /// bit-identical between Serial and any Parallel(N); see the observer
  /// threading contract in palmed/Observer.h.
  ExecutionPolicy Execution = ExecutionPolicy::serial();
  /// Stage-2 LP2 solve strategy (see BwpSolveOptions in core/BwpSolver.h).
  /// All combinations produce bit-identical mappings; the knobs only trade
  /// work. Lp2Decompose splits each pinned solve into independent
  /// resource-coupling components (fanned over the execution policy when
  /// more than one); Lp2Cache memoizes per-resource subproblem blocks and
  /// warm-start bases across the shape-refinement iterations; Lp2ReuseModels
  /// patches per-resource LP models across pin iterations instead of
  /// rebuilding them.
  bool Lp2Decompose = true;
  bool Lp2Cache = true;
  bool Lp2ReuseModels = true;
};

/// Run statistics (feeds the Table II reproduction).
struct PalmedStats {
  size_t NumBenchmarks = 0;       ///< Distinct microbenchmarks executed.
  /// Stage-1 quadratic pair benchmarks actually measured, and the count
  /// the full O(n²) sweep would have needed (equal unless
  /// SelectionConfig::ClusterPairPruning trimmed the sweep).
  size_t PairBenchmarks = 0;
  size_t PairBenchmarksQuadratic = 0;
  size_t NumResources = 0;        ///< Abstract resources found.
  size_t NumBasic = 0;            ///< Basic instructions selected.
  size_t NumMapped = 0;           ///< Instructions mapped.
  size_t NumCoreKernels = 0;      ///< Kernels entering LP2.
  size_t NumShapeConstraints = 0; ///< Deduplicated LP1 constraints.
  double CoreSlack = 0.0;         ///< LP2 objective sum(1 - S_K).
  double SelectionSeconds = 0.0;
  double CoreMappingSeconds = 0.0; ///< Shape + weights (the "LP solving").
  double CompleteMappingSeconds = 0.0;
  /// LP solver work during the two mapping stages (from lp::lpTelemetry):
  /// solve counts and simplex pivots for core mapping (LP2) and mapping
  /// completion (LPAUX), plus warm-start traffic (nonzero only for code
  /// paths that re-solve from a saved basis, e.g. branch-and-bound).
  long CoreLpSolves = 0;
  long CoreLpPivots = 0;
  long CompleteLpSolves = 0;
  long CompleteLpPivots = 0;
  long LpWarmStartAttempts = 0;
  long LpWarmStartHits = 0;
  /// Resource-coupling components of the final LP2 refit (1 = monolithic;
  /// 0 = the refit never ran). A structural property of the shape, so it
  /// is part of the Serial==Parallel bitwise stats contract.
  long Lp2Components = 0;
  /// Resolved executor width the pipeline ran with (1 = serial). A thread
  /// counter, not a mapping outcome: it is the one stats field allowed to
  /// differ between Serial and Parallel runs (besides the *Seconds
  /// timings).
  unsigned NumThreads = 1;
};

/// Pipeline output.
struct PalmedResult {
  ResourceMapping Mapping;
  SelectionResult Selection;
  MappingShape Shape;
  /// One saturating kernel per resource (primary choice, minimal
  /// consumption); may be empty for resources nothing saturates.
  std::vector<Microkernel> SaturatingKernels;
  PalmedStats Stats;
};

/// Inspectable result of the core-mapping stage (Algo 2), frozen before
/// the complete-mapping stage runs (whose final pruning may drop
/// resources).
struct CoreMappingResult {
  /// Shape at the end of the refinement (one member set per resource).
  MappingShape Shape;
  /// Saturating kernel per resource (may be empty where nothing
  /// saturates).
  std::vector<Microkernel> SaturatingKernels;
  /// Kernels that entered the final LP2 solve.
  size_t NumCoreKernels = 0;
  /// LP2 objective sum(1 - S_K).
  double CoreSlack = 0.0;
  /// Wall-clock of the stage.
  double Seconds = 0.0;
};

/// The staged pipeline. Not thread-safe: drive it from one thread (the
/// CancellationToken may be flipped from any other thread). Move-only.
/// Under a Parallel execution policy the pipeline owns internal worker
/// threads for the stage-1/stage-3 fan-outs; observer callbacks may then
/// arrive from those workers under the contract documented in
/// palmed/Observer.h, while mapping outcomes stay bit-identical to a
/// serial run.
class Pipeline {
public:
  /// \p Runner must outlive the pipeline.
  explicit Pipeline(BenchmarkRunner &Runner,
                    PalmedConfig Config = PalmedConfig());
  ~Pipeline();
  Pipeline(Pipeline &&) noexcept;
  Pipeline &operator=(Pipeline &&) noexcept;

  /// Installs a progress observer (borrowed; null to clear). Callbacks run
  /// synchronously on the pipeline's thread.
  void setObserver(PipelineObserver *Observer);

  /// Installs a cancellation token (borrowed; null to clear).
  void setCancellationToken(CancellationToken *Token);

  /// The stage the next selectBasics/solveCoreMapping/completeMapping (or
  /// run()) call will execute. Invalid once finished().
  PipelineStage nextStage() const;
  /// True once all three stages have run.
  bool finished() const;

  /// Stage 1 (Algo 1): basic-instruction selection. Throws
  /// std::logic_error when called out of order, CancelledError when the
  /// token fired.
  const SelectionResult &selectBasics();

  /// Stage 2 (Algo 2): seed benchmarks, shape/weights refinement,
  /// saturating-kernel choice, core weights.
  const CoreMappingResult &solveCoreMapping();

  /// Stage 3 (Algo 5): map every remaining instruction against the frozen
  /// core and prune dominated resources.
  const PalmedResult &completeMapping();

  /// Runs every stage that has not run yet and returns the final result.
  const PalmedResult &run();

  /// Final result; requires finished().
  const PalmedResult &result() const;
  /// Moves the final result out (the pipeline is spent afterwards);
  /// requires finished().
  PalmedResult takeResult();

  /// Statistics populated so far (complete once finished()).
  const PalmedStats &stats() const;

  const PalmedConfig &config() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace palmed

#endif // PALMED_PALMED_PIPELINE_H
