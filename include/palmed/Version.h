//===- palmed/Version.h - Library version ----------------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Library version, kept in sync with the CMake project version. Bumped on
/// every public-API change under include/palmed/.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PALMED_VERSION_H
#define PALMED_PALMED_VERSION_H

#define PALMED_VERSION_MAJOR 0
#define PALMED_VERSION_MINOR 3
#define PALMED_VERSION_PATCH 0
#define PALMED_VERSION_STRING "0.3.0"

namespace palmed {

/// Returns PALMED_VERSION_STRING (for callers linking against a different
/// header vintage than the library they load).
const char *versionString();

} // namespace palmed

#endif // PALMED_PALMED_VERSION_H
