//===- palmed/palmed.h - Public umbrella header ----------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one header applications include. Pulls in the stable public facade:
///
///   * palmed::Pipeline — the staged Fig. 3 pipeline (selection, core
///     mapping, complete mapping) with observers and cancellation;
///   * palmed::PredictorRegistry — named construction of the Sec. VI
///     evaluation tools;
///   * palmed::EvalSession — the Fig. 4 harness with Serial/Parallel
///     execution policies;
///
/// plus the substrate a caller needs to drive them: machine models
/// (builders and the paper's standard machines), the simulated measurement
/// oracles, workload generation, and mapping analysis utilities.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PALMED_PALMED_H
#define PALMED_PALMED_PALMED_H

// The facade.
#include "palmed/EvalSession.h"
#include "palmed/ExecutionPolicy.h"
#include "palmed/Observer.h"
#include "palmed/Pipeline.h"
#include "palmed/PredictorRegistry.h"
#include "palmed/Version.h"

// Machine substrate: describe or pick a target machine.
#include "machine/MachineBuilder.h"
#include "machine/StandardMachines.h"
#include "machine/SyntheticIsa.h"

// Measurement substrate: the simulated "hardware".
#include "sim/AnalyticOracle.h"
#include "sim/BenchmarkRunner.h"
#include "sim/EventSimulator.h"

// Evaluation substrate: workloads, baselines, ground-truth duals.
#include "baselines/GroundTruthPredictors.h"
#include "core/DualConstruction.h"
#include "core/MappingAnalysis.h"
#include "eval/Workload.h"

// Batch prediction substrate: compiled mappings + SoA corpus batches.
#include "predict/BatchEngine.h"
#include "predict/CompiledMapping.h"
#include "predict/KernelBatch.h"

// Serving substrate: mapping (de)serialization and the prediction daemon.
#include "serve/Client.h"
#include "serve/MappingIO.h"
#include "serve/Server.h"

#endif // PALMED_PALMED_PALMED_H
