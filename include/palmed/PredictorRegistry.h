//===- palmed/PredictorRegistry.h - Named predictor factories --*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string-keyed registry of throughput-predictor factories, so the CLI,
/// examples, benches, and evaluation harness construct tools uniformly by
/// name instead of hand-wiring constructors. Factories receive a
/// PredictorContext carrying whatever a tool may need — the ground-truth
/// machine, a BenchmarkRunner (for trained tools like pmevo), and the
/// Palmed-inferred mapping — and fail gracefully (null + error message)
/// when a required ingredient is missing.
///
/// PredictorRegistry::builtin() exposes the five standard tools of the
/// paper's Sec. VI evaluation: "palmed", "uops.info", "iaca", "pmevo",
/// and "llvm-mca". User code can register additional factories on its own
/// registry instances (copy builtin() and extend it).
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PALMED_PREDICTORREGISTRY_H
#define PALMED_PALMED_PREDICTORREGISTRY_H

#include "baselines/PMEvo.h"
#include "baselines/Predictor.h"
#include "machine/MachineModel.h"
#include "sim/BenchmarkRunner.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace palmed {

/// Everything a predictor factory may draw from. Pointers are borrowed and
/// may be null; each factory checks for what it needs.
struct PredictorContext {
  /// Ground-truth machine (needed by the tool stand-ins and pmevo).
  const MachineModel *Machine = nullptr;
  /// Measurement front door (needed by trained tools: pmevo).
  BenchmarkRunner *Runner = nullptr;
  /// The Palmed-inferred mapping (needed by "palmed").
  const ResourceMapping *PalmedMapping = nullptr;
  /// Training knobs for "pmevo".
  PMEvoConfig PMEvo;
};

/// String-keyed predictor factory table.
class PredictorRegistry {
public:
  /// Builds a predictor from \p Ctx, or returns null and sets \p Error.
  using Factory = std::function<std::unique_ptr<Predictor>(
      const PredictorContext &Ctx, std::string &Error)>;

  PredictorRegistry() = default;

  /// The process-wide registry pre-populated with the paper's five tools.
  /// The returned reference is to an immutable singleton; copy it to
  /// extend it.
  static const PredictorRegistry &builtin();

  /// Registers (or replaces) a factory. \p Description is a one-line
  /// self-description shown by `palmed_cli eval --tools help`.
  void add(std::string Name, std::string Description, Factory Make);

  bool contains(const std::string &Name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// One-line description of \p Name (empty when unknown).
  const std::string &description(const std::string &Name) const;

  /// Instantiates \p Name from \p Ctx. Returns null on unknown name or
  /// missing context ingredient; the reason lands in \p Error when
  /// non-null.
  std::unique_ptr<Predictor> create(const std::string &Name,
                                    const PredictorContext &Ctx,
                                    std::string *Error = nullptr) const;

private:
  struct Entry {
    std::string Description;
    Factory Make;
  };
  std::map<std::string, Entry> Entries;
};

} // namespace palmed

#endif // PALMED_PALMED_PREDICTORREGISTRY_H
