//===- palmed/ExecutionPolicy.h - Threading knob ---------------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public threading knob shared by every parallel entry point of the
/// facade: EvalSession (block x predictor fan-out) and Pipeline (selection
/// benchmarks, LPAUX solves). A policy only chooses *how* work is
/// scheduled; outcomes are bit-identical between Serial and any
/// Parallel(N) — see the "Threading model" section of the README.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PALMED_EXECUTIONPOLICY_H
#define PALMED_PALMED_EXECUTIONPOLICY_H

namespace palmed {

/// How a session or pipeline schedules its independent work items.
struct ExecutionPolicy {
  /// Number of worker threads; <= 1 (including a raw aggregate-initialized
  /// 0) means serial in-place execution everywhere. "0 = auto" exists only
  /// as the parallel() factory argument, which resolves it to a concrete
  /// width immediately — a policy never carries an unresolved 0 into a
  /// session or pipeline.
  unsigned NumThreads = 1;

  static ExecutionPolicy serial() { return ExecutionPolicy{1}; }

  /// \p NumThreads = 0 picks std::thread::hardware_concurrency(), clamped
  /// to a sane maximum (Executor::MaxAutoThreads, 64) and falling back to
  /// 4 when the runtime reports 0 cores.
  static ExecutionPolicy parallel(unsigned NumThreads = 0);

  bool isParallel() const { return NumThreads > 1; }
};

} // namespace palmed

#endif // PALMED_PALMED_EXECUTIONPOLICY_H
