//===- palmed/EvalSession.h - Parallel evaluation session ------*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public successor of the historical runEvaluation() free function:
/// an evaluation session that owns (or borrows) a set of predictors and
/// runs them over a weighted block set under an ExecutionPolicy. The
/// Parallel policy fans the blocks x (native + predictors) work items out
/// over a small internal thread pool; every work item writes its own
/// pre-allocated slot, so Serial and Parallel produce bit-identical
/// EvalOutcomes.
///
/// Thread-safety contract: predictors declare reentrancy through
/// Predictor::isThreadSafe(). A non-reentrant predictor is either cloned
/// per worker thread (when Predictor::clone() is supported) or guarded by
/// a per-predictor mutex. The native oracle is handled the same way via
/// ThroughputOracle::isThreadSafe().
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PALMED_EVALSESSION_H
#define PALMED_PALMED_EVALSESSION_H

#include "baselines/Predictor.h"
#include "eval/Harness.h"
#include "eval/Workload.h"
#include "palmed/ExecutionPolicy.h"
#include "sim/ThroughputOracle.h"

#include <memory>
#include <string>
#include <vector>

namespace palmed {

class Executor;

/// A configured evaluation run: native oracle + predictors + policy.
class EvalSession {
public:
  /// \p Native measures ground-truth IPC per block; it must outlive the
  /// session.
  explicit EvalSession(ThroughputOracle &Native,
                       ExecutionPolicy Policy = ExecutionPolicy::serial());
  ~EvalSession();
  EvalSession(EvalSession &&) noexcept;

  /// Names the predictor defining the coverage denominator (default
  /// "palmed"; harmless when absent).
  void setReferenceTool(std::string Tool);

  /// Adds an owned predictor; returns it for further configuration.
  /// Throws std::invalid_argument on duplicate predictor names.
  Predictor &add(std::unique_ptr<Predictor> P);

  /// Adds a borrowed predictor (must outlive the session).
  void add(Predictor &P);

  size_t numPredictors() const { return Lanes.size(); }
  const ExecutionPolicy &policy() const { return Policy; }

  /// Runs every predictor (and the native oracle) over \p Blocks.
  /// Deterministic: the outcome does not depend on the policy.
  EvalOutcome run(const std::vector<BasicBlock> &Blocks) const;

private:
  ThroughputOracle &Native;
  ExecutionPolicy Policy;
  std::string ReferenceTool = "palmed";
  std::vector<Predictor *> Lanes;
  std::vector<std::unique_ptr<Predictor>> Owned;
  /// Worker pool under a parallel policy (null when serial), built in
  /// the constructor so it never races a lazy first-use init, and reused
  /// by every run. Executor::parallelFor is not reentrant, so concurrent
  /// run() calls on one *parallel* session are still unsupported —
  /// callers wanting concurrent evaluation use one session per thread
  /// (serial-policy sessions are safe to share).
  std::unique_ptr<Executor> Exec;
};

} // namespace palmed

#endif // PALMED_PALMED_EVALSESSION_H
