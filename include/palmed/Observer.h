//===- palmed/Observer.h - Pipeline observation & cancellation -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation and cooperative-cancellation hooks for palmed::Pipeline.
/// An observer receives stage begin/end events, one event per
/// shape/enrichment round of the core-mapping refinement (the "LP
/// progress" of Algo 2), and one event per instruction mapped by LPAUX. A
/// CancellationToken can be flipped from any thread; the pipeline polls it
/// at stage entry, between refinement rounds, and between LPAUX solves
/// (on every worker under a Parallel policy), and raises CancelledError
/// when it is set.
///
/// Threading contract (Parallel execution policies): stage begin/end and
/// shape-iteration events always run on the thread driving the pipeline,
/// but onInstructionMapped may be invoked from an internal worker thread.
/// The pipeline serializes these calls — two callbacks never run
/// concurrently — and guarantees monotone progress: NumDone takes each
/// value 1..NumTotal exactly once, in increasing order, with one event
/// per instruction. Which instruction carries which NumDone value (and
/// the thread a callback runs on) may vary between runs; everything else
/// the observer can see is deterministic. An observer that touches state
/// shared with other threads must synchronize that state itself.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_PALMED_OBSERVER_H
#define PALMED_PALMED_OBSERVER_H

#include "isa/Instruction.h"

#include <atomic>
#include <cstddef>
#include <stdexcept>

namespace palmed {

struct PalmedStats;

/// The three explicit stages of the paper's Fig. 3 pipeline.
enum class PipelineStage {
  SelectBasics,     ///< Algo 1: basic-instruction selection.
  SolveCoreMapping, ///< Algo 2: shape (LP1) + weights (LP2) refinement.
  CompleteMapping,  ///< Algo 5: LPAUX over the remaining instructions.
};

/// Human-readable stage name ("select-basics", ...).
const char *pipelineStageName(PipelineStage Stage);

/// Callback interface for pipeline progress. All methods have empty
/// default implementations; override what you need. Callbacks run
/// synchronously with the pipeline's work: on the driving thread, except
/// onInstructionMapped, which a Parallel pipeline may deliver from a
/// worker thread (serialized and with monotone NumDone; see the file
/// comment).
class PipelineObserver {
public:
  virtual ~PipelineObserver();

  virtual void onStageBegin(PipelineStage Stage) { (void)Stage; }

  /// \p Stats carries everything populated so far (later-stage fields are
  /// still zero).
  virtual void onStageEnd(PipelineStage Stage, const PalmedStats &Stats) {
    (void)Stage;
    (void)Stats;
  }

  /// One shape/enrichment round of the core-mapping refinement.
  virtual void onShapeIteration(int Iteration, size_t NumConstraints,
                                size_t NumResources, size_t NumBenchmarks) {
    (void)Iteration;
    (void)NumConstraints;
    (void)NumResources;
    (void)NumBenchmarks;
  }

  /// One instruction mapped during complete mapping (LPAUX). NumTotal
  /// counts only the instructions stage 3 actually maps — basic
  /// instructions, mapped by stage 2, are excluded from the denominator —
  /// so NumDone runs 1..NumTotal without jumps. May be delivered from a
  /// worker thread under a Parallel policy (see the file comment).
  virtual void onInstructionMapped(InstrId Id, size_t NumDone,
                                   size_t NumTotal) {
    (void)Id;
    (void)NumDone;
    (void)NumTotal;
  }
};

/// Cooperative cancellation flag shared between a pipeline and its
/// controller. Thread-safe; cancellation is sticky.
class CancellationToken {
public:
  void requestCancel() { Cancelled.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Cancelled{false};
};

/// Thrown by Pipeline when its CancellationToken fires. The pipeline is
/// left in a consistent but unfinished state; completed stage results
/// remain inspectable.
class CancelledError : public std::runtime_error {
public:
  CancelledError();
};

} // namespace palmed

#endif // PALMED_PALMED_OBSERVER_H
