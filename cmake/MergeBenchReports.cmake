# Merges the per-bench JSON files produced via bench/BenchReport.h into one
# machine-readable document. Invoked by the `bench_all` target as:
#
#   cmake -DREPORT_DIR=<dir> -DOUTPUT=<file> -P MergeBenchReports.cmake

if(NOT REPORT_DIR OR NOT OUTPUT)
  message(FATAL_ERROR "usage: cmake -DREPORT_DIR=<dir> -DOUTPUT=<file> -P MergeBenchReports.cmake")
endif()

file(GLOB _reports "${REPORT_DIR}/*.json")
if(NOT _reports)
  message(FATAL_ERROR "no bench reports found under ${REPORT_DIR}")
endif()
list(SORT _reports)

# Accumulate as a plain string (not a CMake list) so report contents can
# never be split on embedded semicolons.
set(_body "")
set(_sep "")
foreach(_report IN LISTS _reports)
  file(READ "${_report}" _content)
  string(STRIP "${_content}" _content)
  string(APPEND _body "${_sep}    ${_content}")
  set(_sep ",\n")
endforeach()
list(LENGTH _reports _count)

string(TIMESTAMP _now "%Y-%m-%dT%H:%M:%SZ" UTC)
file(WRITE "${OUTPUT}" "{
  \"schema\": \"palmed-bench-v1\",
  \"generated\": \"${_now}\",
  \"benches\": [
${_body}
  ]
}
")
message(STATUS "Merged ${_count} bench report(s) into ${OUTPUT}")
