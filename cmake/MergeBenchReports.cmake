# Merges the per-bench JSON files produced via bench/BenchReport.h into one
# machine-readable document. Invoked by the `bench_all` target as:
#
#   cmake -DREPORT_DIR=<dir> -DOUTPUT=<file> -P MergeBenchReports.cmake

if(NOT REPORT_DIR OR NOT OUTPUT)
  message(FATAL_ERROR "usage: cmake -DREPORT_DIR=<dir> -DOUTPUT=<file> -P MergeBenchReports.cmake")
endif()

file(GLOB _reports "${REPORT_DIR}/*.json")
if(NOT _reports)
  message(FATAL_ERROR "no bench reports found under ${REPORT_DIR}")
endif()
list(SORT _reports)

# Accumulate as a plain string (not a CMake list) so report contents can
# never be split on embedded semicolons. Each per-bench report carries its
# own schema_version / palmed_version / host block (BenchReport.h v2),
# which the verbatim embedding below carries through unchanged.
set(_body "")
set(_sep "")
foreach(_report IN LISTS _reports)
  file(READ "${_report}" _content)
  string(STRIP "${_content}" _content)
  string(APPEND _body "${_sep}    ${_content}")
  set(_sep ",\n")
endforeach()
list(LENGTH _reports _count)

# Hoist the host metadata of the first report to the top level so a reader
# can identify the measurement environment without descending into the
# per-bench entries (all benches of one run share the same host).
set(_host "")
list(GET _reports 0 _first)
file(READ "${_first}" _first_content)
string(REGEX MATCH "\"host\": ({[^}]*})" _host_match "${_first_content}")
if(CMAKE_MATCH_1)
  set(_host "  \"host\": ${CMAKE_MATCH_1},\n")
endif()

string(TIMESTAMP _now "%Y-%m-%dT%H:%M:%SZ" UTC)
file(WRITE "${OUTPUT}" "{
  \"schema\": \"palmed-bench-v2\",
  \"schema_version\": 2,
  \"generated\": \"${_now}\",
${_host}  \"benches\": [
${_body}
  ]
}
")
message(STATUS "Merged ${_count} bench report(s) into ${OUTPUT}")
