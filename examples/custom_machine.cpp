//===- examples/custom_machine.cpp - Characterize your own machine --------===//
//
// Part of the PALMED reproduction.
//
// Shows how a user describes a new CPU with MachineBuilder (here a small
// dual-issue embedded-style core with a non-pipelined multiplier), runs
// Palmed against it, and checks the inferred model against ground truth.
// On real hardware, the AnalyticOracle would be replaced by a measurement
// backend implementing ThroughputOracle.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"
#include "support/Rng.h"
#include "support/Statistics.h"

#include <cstdio>
#include <iostream>

using namespace palmed;

int main() {
  // A small 4-port core: two ALU pipes, one load/store pipe, one branch
  // pipe, a non-pipelined multiplier on ALU0, decode width 2.
  MachineBuilder B("embedded");
  unsigned Alu0 = B.addPort("alu0");
  unsigned Alu1 = B.addPort("alu1");
  unsigned Mem = B.addPort("mem");
  unsigned Br = B.addPort("br");
  B.setDecodeWidth(2);

  B.addSimpleInstruction({"ADD", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({Alu0, Alu1}));
  B.addSimpleInstruction({"SUB", ExtClass::Base, InstrCategory::IntAlu},
                         portMask({Alu0, Alu1}));
  B.addSimpleInstruction({"SHIFT", ExtClass::Base, InstrCategory::Shift},
                         portMask({Alu1}));
  B.addSimpleInstruction({"MUL", ExtClass::Base, InstrCategory::IntMul},
                         portMask({Alu0}), /*Occupancy=*/3.0);
  B.addSimpleInstruction({"LOAD", ExtClass::Base, InstrCategory::Load},
                         portMask({Mem}));
  B.addInstruction({"STORE", ExtClass::Base, InstrCategory::Store},
                   {{portMask({Mem}), 1.0}, {portMask({Alu0, Alu1}), 1.0}});
  B.addSimpleInstruction({"BR", ExtClass::Base, InstrCategory::Branch},
                         portMask({Br}));
  MachineModel M = B.build();

  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedConfig Cfg;
  Cfg.Selection.NumBasicPerGroup = 7;
  PalmedResult R = Pipeline(Runner, Cfg).run();

  std::printf("Inferred mapping for '%s':\n", M.name().c_str());
  R.Mapping.print(std::cout, M.isa());

  // Validate on random kernels against ground truth.
  Rng Rand(99);
  std::vector<double> Pred, Native;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Microkernel K;
    size_t Terms = 1 + Rand.uniformInt(4);
    for (size_t T = 0; T < Terms; ++T)
      K.add(static_cast<InstrId>(Rand.uniformInt(M.numInstructions())),
            static_cast<double>(1 + Rand.uniformInt(3)));
    auto P = R.Mapping.predictIpc(K);
    if (!P)
      continue;
    Pred.push_back(*P);
    Native.push_back(O.measureIpc(K));
  }
  std::printf("\nValidation over %zu random kernels: RMS error %.1f%%, "
              "Kendall tau %.3f\n",
              Pred.size(), 100.0 * weightedRmsRelativeError(Pred, Native),
              kendallTau(Pred, Native));
  return 0;
}
