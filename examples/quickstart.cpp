//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the PALMED reproduction.
//
// Infers a resource mapping for the Skylake-like simulated machine with
// the staged public Pipeline API and uses it to predict the throughput of
// a few kernels — the end-to-end workflow a compiler or
// performance-debugging tool would follow. Everything used here comes
// from the single public header palmed/palmed.h.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"

#include <cstdio>

using namespace palmed;

int main() {
  // 1. The target machine. On real hardware this would be the CPU under
  //    the benchmark harness; here it is the simulated Skylake-like core.
  MachineModel Machine = makeSklLike();
  AnalyticOracle Oracle(Machine);
  BenchmarkRunner Runner(Machine, Oracle);

  // 2. Run the Palmed pipeline stage by stage: selection, core mapping,
  //    complete mapping. Only cycle measurements are consumed — no
  //    performance counters. Each stage returns an inspectable result;
  //    run() would drive all remaining stages in one call.
  std::printf("Inferring resource mapping for '%s' (%zu instructions)...\n",
              Machine.name().c_str(), Machine.numInstructions());
  Pipeline P(Runner);
  const SelectionResult &Sel = P.selectBasics();
  std::printf("  stage 1: %zu basic instructions out of %zu survivors\n",
              Sel.Basic.size(), Sel.Survivors.size());
  const CoreMappingResult &Core = P.solveCoreMapping();
  std::printf("  stage 2: %zu core resources from %zu kernels (%.1fs)\n",
              Core.Shape.numResources(), Core.NumCoreKernels, Core.Seconds);
  const PalmedResult &Result = P.completeMapping();
  std::printf("  stage 3: %zu resources, %zu instructions mapped, "
              "%zu microbenchmarks\n\n",
              Result.Stats.NumResources, Result.Stats.NumMapped,
              Result.Stats.NumBenchmarks);

  // 3. Predict kernels with the closed-form conjunctive model and compare
  //    against native (simulated) execution.
  auto Predict = [&](std::initializer_list<std::pair<const char *, double>>
                         Terms) {
    Microkernel K;
    for (const auto &[InstrName, Mult] : Terms) {
      InstrId Id = Machine.isa().findByName(InstrName);
      if (Id == InvalidInstr) {
        std::printf("unknown instruction %s\n", InstrName);
        return;
      }
      K.add(Id, Mult);
    }
    auto Pred = Result.Mapping.predictIpc(K);
    double Native = Oracle.measureIpc(K);
    std::printf("  %-42s predicted IPC %5.2f   native %5.2f\n",
                K.str(Machine.isa()).c_str(), Pred ? *Pred : -1.0, Native);
  };

  std::printf("Throughput predictions:\n");
  Predict({{"ADD_0", 2.0}, {"LOAD_0", 1.0}});
  Predict({{"ADDSS_0", 2.0}, {"MULSS_0", 2.0}});
  Predict({{"DIV32_0", 1.0}, {"ADD_0", 4.0}});
  Predict({{"VADDPS_0", 2.0}, {"VPERM_0", 1.0}, {"LOAD_0", 2.0}});
  Predict({{"STORE_0", 2.0}, {"LEA_0", 2.0}, {"JCC_0", 1.0}});

  // 4. The mapping serializes to a portable text format.
  std::string Text = Result.Mapping.toText(Machine.isa());
  std::printf("\nSerialized mapping: %zu bytes (ResourceMapping::fromText "
              "round-trips it).\n",
              Text.size());
  return 0;
}
