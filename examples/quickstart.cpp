//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the PALMED reproduction.
//
// Infers a resource mapping for the Skylake-like simulated machine and uses
// it to predict the throughput of a few kernels — the end-to-end workflow a
// compiler or performance-debugging tool would follow.
//
//===----------------------------------------------------------------------===//

#include "core/PalmedDriver.h"
#include "machine/StandardMachines.h"
#include "sim/AnalyticOracle.h"

#include <cstdio>

using namespace palmed;

int main() {
  // 1. The target machine. On real hardware this would be the CPU under
  //    the benchmark harness; here it is the simulated Skylake-like core.
  MachineModel Machine = makeSklLike();
  AnalyticOracle Oracle(Machine);
  BenchmarkRunner Runner(Machine, Oracle);

  // 2. Run the Palmed pipeline: selection, core mapping, complete mapping.
  //    Only cycle measurements are consumed — no performance counters.
  std::printf("Inferring resource mapping for '%s' (%zu instructions)...\n",
              Machine.name().c_str(), Machine.numInstructions());
  PalmedResult Result = runPalmed(Runner);
  std::printf("  %zu abstract resources, %zu instructions mapped, "
              "%zu microbenchmarks, %.1fs\n\n",
              Result.Stats.NumResources, Result.Stats.NumMapped,
              Result.Stats.NumBenchmarks,
              Result.Stats.SelectionSeconds +
                  Result.Stats.CoreMappingSeconds +
                  Result.Stats.CompleteMappingSeconds);

  // 3. Predict kernels with the closed-form conjunctive model and compare
  //    against native (simulated) execution.
  auto Predict = [&](std::initializer_list<std::pair<const char *, double>>
                         Terms) {
    Microkernel K;
    std::string Name;
    for (const auto &[InstrName, Mult] : Terms) {
      InstrId Id = Machine.isa().findByName(InstrName);
      if (Id == InvalidInstr) {
        std::printf("unknown instruction %s\n", InstrName);
        return;
      }
      K.add(Id, Mult);
    }
    auto P = Result.Mapping.predictIpc(K);
    double Native = Oracle.measureIpc(K);
    std::printf("  %-42s predicted IPC %5.2f   native %5.2f\n",
                K.str(Machine.isa()).c_str(), P ? *P : -1.0, Native);
  };

  std::printf("Throughput predictions:\n");
  Predict({{"ADD_0", 2.0}, {"LOAD_0", 1.0}});
  Predict({{"ADDSS_0", 2.0}, {"MULSS_0", 2.0}});
  Predict({{"DIV32_0", 1.0}, {"ADD_0", 4.0}});
  Predict({{"VADDPS_0", 2.0}, {"VPERM_0", 1.0}, {"LOAD_0", 2.0}});
  Predict({{"STORE_0", 2.0}, {"LEA_0", 2.0}, {"JCC_0", 1.0}});

  // 4. The mapping serializes to a portable text format.
  std::string Text = Result.Mapping.toText(Machine.isa());
  std::printf("\nSerialized mapping: %zu bytes (ResourceMapping::fromText "
              "round-trips it).\n",
              Text.size());
  return 0;
}
