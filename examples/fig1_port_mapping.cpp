//===- examples/fig1_port_mapping.cpp - Paper Fig. 1 / Fig. 2 -------------===//
//
// Part of the PALMED reproduction.
//
// Reproduces the paper's running example: the six Skylake instructions
// restricted to ports p0/p1/p6 (Fig. 1), their conjunctive dual with
// normalized weights (Fig. 1b/1c), the two scheduling examples of Fig. 2,
// and finally the mapping Palmed infers from measurements alone.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"

#include <cstdio>
#include <iostream>

using namespace palmed;

int main() {
  MachineModel M = makeFig1Machine();
  const InstructionSet &Isa = M.isa();

  std::printf("=== Disjunctive port mapping (paper Fig. 1a) ===\n");
  for (InstrId Id = 0; Id < M.numInstructions(); ++Id) {
    std::printf("  %-6s ->", Isa.name(Id).c_str());
    for (const MicroOpDesc &Op : M.exec(Id).MicroOps) {
      std::printf(" uop{");
      bool First = true;
      for (unsigned P = 0; P < M.numPorts(); ++P)
        if (Op.Ports.test(P)) {
          std::printf("%s%s", First ? "" : ",", M.portName(P).c_str());
          First = false;
        }
      std::printf("}");
    }
    std::printf("\n");
  }

  std::printf("\n=== Conjunctive dual, normalized (paper Fig. 1b/1c) ===\n");
  ResourceMapping Dual = buildDualMapping(M);
  Dual.print(std::cout, Isa);

  std::printf("\n=== Scheduling examples (paper Fig. 2) ===\n");
  AnalyticOracle O(M);
  InstrId Addss = Isa.findByName("ADDSS");
  InstrId Bsr = Isa.findByName("BSR");
  Microkernel K1;
  K1.add(Addss, 2.0);
  K1.add(Bsr, 1.0);
  Microkernel K2;
  K2.add(Addss, 1.0);
  K2.add(Bsr, 2.0);
  std::printf("  ADDSS^2 BSR : t = %.2f cycles, IPC = %.2f (paper: 1.5, 2)\n",
              O.measureCycles(K1), O.measureIpc(K1));
  std::printf("  ADDSS BSR^2 : t = %.2f cycles, IPC = %.2f (paper: 2, 1.5)\n",
              O.measureCycles(K2), O.measureIpc(K2));

  std::printf("\n=== Palmed-inferred mapping (measurements only) ===\n");
  BenchmarkRunner Runner(M, O);
  PalmedResult R = Pipeline(Runner).run();
  R.Mapping.print(std::cout, Isa);
  std::printf("\n  resources found: %zu (paper example: 6)\n",
              R.Stats.NumResources);
  auto P1 = R.Mapping.predictIpc(K1);
  auto P2 = R.Mapping.predictIpc(K2);
  std::printf("  inferred model:  ADDSS^2 BSR IPC = %.2f, ADDSS BSR^2 IPC = "
              "%.2f\n",
              P1 ? *P1 : -1.0, P2 ? *P2 : -1.0);
  return 0;
}
