//===- examples/spec_like_eval.cpp - Mini evaluation campaign -------------===//
//
// Part of the PALMED reproduction.
//
// A compact version of the paper's Sec. VI evaluation: generate a SPEC-like
// basic-block workload, infer a mapping with Palmed, and compare its
// accuracy against the uops.info-style and llvm-mca-like baselines. The
// full campaign (all machines, suites, tools, heatmaps) lives in bench/.
//
//===----------------------------------------------------------------------===//

#include "baselines/GroundTruthPredictors.h"
#include "baselines/Predictor.h"
#include "core/PalmedDriver.h"
#include "eval/Harness.h"
#include "eval/Workload.h"
#include "machine/StandardMachines.h"
#include "sim/AnalyticOracle.h"
#include "support/Table.h"

#include <iostream>

using namespace palmed;

int main() {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);

  PalmedResult PR = runPalmed(Runner);
  MappingPredictor Palmed("palmed", PR.Mapping);
  auto Uops = makeUopsInfoPredictor(M);
  auto Mca = makeLlvmMcaLikePredictor(M);

  WorkloadConfig WCfg;
  WCfg.Profile = WorkloadProfile::SpecLike;
  WCfg.NumBlocks = 400;
  auto Blocks = generateWorkload(M, WCfg);

  EvalOutcome Out = runEvaluation(
      O, Blocks, {&Palmed, Uops.get(), Mca.get()}, "palmed");

  TextTable T({"tool", "coverage %", "RMS err %", "Kendall tau"});
  for (const char *Tool : {"palmed", "uops.info", "llvm-mca"}) {
    ToolAccuracy A = Out.accuracy(Tool);
    T.addRow({A.Tool, TextTable::fmt(A.CoveragePct, 1),
              TextTable::fmt(A.ErrPct, 1), TextTable::fmt(A.KendallTau, 2)});
  }
  std::cout << "SPEC-like workload, " << Blocks.size() << " blocks, machine "
            << M.name() << ":\n\n";
  T.print(std::cout);

  std::cout << '\n';
  Out.printHeatmap(std::cout, "palmed", 48, 14, 5.0, 2.0);
  return 0;
}
