//===- examples/spec_like_eval.cpp - Mini evaluation campaign -------------===//
//
// Part of the PALMED reproduction.
//
// A compact version of the paper's Sec. VI evaluation, written against the
// public facade: generate a SPEC-like basic-block workload, infer a
// mapping with palmed::Pipeline, build the comparison tools through the
// PredictorRegistry, and score everything with a parallel EvalSession.
// The full campaign (all machines, suites, tools, heatmaps) lives in
// bench/.
//
//===----------------------------------------------------------------------===//

#include "palmed/palmed.h"
#include "support/Table.h"

#include <iostream>

using namespace palmed;

int main() {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);

  Pipeline P(Runner);
  const PalmedResult &PR = P.run();

  // Tools come from the registry by name; the context supplies whatever
  // each factory needs (the machine, the inferred mapping, ...).
  PredictorContext Ctx;
  Ctx.Machine = &M;
  Ctx.PalmedMapping = &PR.Mapping;

  EvalSession Session(O, ExecutionPolicy::parallel(4));
  Session.setReferenceTool("palmed");
  for (const char *Tool : {"palmed", "uops.info", "llvm-mca"}) {
    std::string Error;
    auto Pred = PredictorRegistry::builtin().create(Tool, Ctx, &Error);
    if (!Pred) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    Session.add(std::move(Pred));
  }

  WorkloadConfig WCfg;
  WCfg.Profile = WorkloadProfile::SpecLike;
  WCfg.NumBlocks = 400;
  auto Blocks = generateWorkload(M, WCfg);

  EvalOutcome Out = Session.run(Blocks);

  TextTable T({"tool", "coverage %", "RMS err %", "Kendall tau"});
  for (const char *Tool : {"palmed", "uops.info", "llvm-mca"}) {
    ToolAccuracy A = Out.accuracy(Tool);
    T.addRow({A.Tool, TextTable::fmt(A.CoveragePct, 1),
              TextTable::fmt(A.ErrPct, 1), TextTable::fmt(A.KendallTau, 2)});
  }
  std::cout << "SPEC-like workload, " << Blocks.size() << " blocks, machine "
            << M.name() << ":\n\n";
  T.print(std::cout);

  std::cout << '\n';
  Out.printHeatmap(std::cout, "palmed", 48, 14, 5.0, 2.0);
  return 0;
}
