//===- bench/bench_fig4a_heatmaps.cpp - Paper Fig. 4a heatmaps ------------===//
//
// Part of the PALMED reproduction.
//
// Regenerates the Fig. 4a heatmaps: for every machine x suite x tool, the
// 2D histogram of predicted/native IPC ratio (y) against native IPC (x),
// rendered as ASCII (the '>' gutter marks the y = 1 accuracy line) and
// dumped as CSV next to the binary (fig4a_<machine>_<suite>_<tool>.csv).
//
// Expected shape vs the paper: port-based tools (uops.info-like,
// llvm-mca-like) show mass above the line (IPC over-estimation) where
// non-port resources bottleneck; Palmed and PMEvo scatter on both sides.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "EvalCampaign.h"
#include "support/Table.h"

#include <fstream>
#include <iostream>
#include <thread>

using namespace palmed;
using namespace palmed::bench;

namespace {

constexpr size_t XBins = 56, YBins = 13;
constexpr double MaxIpc = 6.0, MaxRatio = 2.0;

void dumpCsv(const std::vector<std::vector<double>> &Grid,
             const std::string &Machine, const std::string &Suite,
             const std::string &Tool) {
  std::string File = "fig4a_" + Machine + "_" + Suite + "_" + Tool + ".csv";
  for (char &Ch : File)
    if (Ch == '/' || Ch == ' ')
      Ch = '-';
  std::ofstream OS(File);
  OS << "# y: predicted/native in [0," << MaxRatio << ") over " << YBins
     << " bins (top row first); x: native IPC in [0," << MaxIpc << ") over "
     << XBins << " bins\n";
  for (size_t Y = YBins; Y-- > 0;) {
    for (size_t X = 0; X < XBins; ++X)
      OS << (X ? "," : "") << Grid[Y][X];
    OS << '\n';
  }
}

} // namespace

int main() {
  BenchReport Report("fig4a_heatmaps");
  size_t Csvs = 0;
  double SerialS = 0.0, ParallelS = 0.0;
  bool Identical = true;
  std::cout << "FIG. 4a: predicted/native IPC ratio heatmaps\n";
  for (bool Zen : {false, true}) {
    // Evaluate each suite twice — serial and Parallel(4) — to track the
    // eval-phase speedup of the threaded EvalSession and to assert the
    // two policies agree bit-for-bit.
    CampaignConfig Config;
    Config.MeasurePolicySpeedup = true;
    Config.SpeedupPolicy = ExecutionPolicy::parallel(4);
    Campaign C = runCampaign(Zen, Config);
    SerialS += C.EvalSerialSeconds;
    ParallelS += C.EvalParallelSeconds;
    Identical = Identical && C.PolicyOutcomesIdentical;
    for (const auto &[Suite, Outcome] : C.Outcomes) {
      for (const std::string &Tool : C.Tools) {
        std::cout << '\n' << C.MachineName << " / " << Suite << " / ";
        Outcome.printHeatmap(std::cout, Tool, XBins, YBins, MaxIpc,
                             MaxRatio);
        auto Grid = Outcome.heatmap(Tool, XBins, YBins, MaxIpc, MaxRatio);
        dumpCsv(Grid, C.MachineName, Suite, Tool);
        ++Csvs;
        // The share of prediction mass strictly above/below the y = 1
        // accuracy line: the paper's over-estimation signature for
        // port-based tools, condensed to two trackable numbers per tool.
        // The bin straddling ratio 1.0 counts to neither side, so an
        // exact predictor reports ~0 on both.
        double Above = 0, Below = 0, Total = 0;
        for (size_t Y = 0; Y < YBins; ++Y) {
          double RowMass = 0;
          for (size_t X = 0; X < XBins; ++X)
            RowMass += Grid[Y][X];
          Total += RowMass;
          double Lo = MaxRatio * static_cast<double>(Y) / YBins;
          double Hi = MaxRatio * static_cast<double>(Y + 1) / YBins;
          if (Lo >= 1.0)
            Above += RowMass;
          else if (Hi <= 1.0)
            Below += RowMass;
        }
        std::string Key = C.MachineName + "." + Suite + "." + Tool + ".";
        Report.addMetric(Key + "mass_above_pct",
                         Total > 0 ? 100.0 * Above / Total : 0.0, "%");
        Report.addMetric(Key + "mass_below_pct",
                         Total > 0 ? 100.0 * Below / Total : 0.0, "%");
      }
    }
  }
  const unsigned HwThreads = std::thread::hardware_concurrency();
  std::cout << "\nCSV dumps written to fig4a_*.csv\n";
  std::cout << "eval phase: serial " << SerialS << "s, parallel(4) "
            << ParallelS << "s ("
            << (ParallelS > 0 ? SerialS / ParallelS : 0.0)
            << "x on " << HwThreads << " hardware threads), outcomes "
            << (Identical ? "identical" : "DIVERGED") << "\n";
  if (HwThreads < 4)
    std::cout << "note: fewer than 4 hardware threads; the parallel "
                 "speedup is bounded by the host, not the harness\n";
  Report.addMetric("csv_files", static_cast<double>(Csvs));
  Report.addMetric("eval.serial_s", SerialS, "s");
  Report.addMetric("eval.parallel4_s", ParallelS, "s");
  Report.addMetric("eval.speedup_x",
                   ParallelS > 0 ? SerialS / ParallelS : 0.0);
  Report.addMetric("eval.hardware_threads",
                   static_cast<double>(HwThreads));
  Report.addMetric("eval.outcomes_identical", Identical ? 1.0 : 0.0);
  if (!Identical) {
    std::cerr << "error: serial and parallel eval outcomes diverged\n";
    Report.write();
    return 1;
  }
  return Report.write();
}
