//===- bench/bench_predict_throughput.cpp - Batch engine throughput -------===//
//
// Part of the PALMED reproduction.
//
// Measures the cold-path corpus-prediction substrate: a SPEC-like corpus
// replicated to several hundred thousand kernels, batched into SoA form,
// and streamed through the compiled batch engine — no prediction cache,
// no parsing in the timed region, every kernel computed. The scalar
// baseline is the one-kernel-at-a-time virtual MappingPredictor call the
// evaluation harness historically made. The two paths must agree bit for
// bit (the engine's determinism contract); any mismatch fails the bench.
//
// Reported metrics (merged into the bench JSON):
//   predict.blocks_per_s — cold batched prediction throughput
//   predict.compile_us   — ResourceMapping -> CompiledMapping time
//   predict.speedup_x    — batched over one-at-a-time scalar throughput
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "baselines/Predictor.h"
#include "palmed/palmed.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

using namespace palmed;
using Clock = std::chrono::steady_clock;

namespace {

/// Bitwise comparison of two optional predictions: same engagement and,
/// when engaged, the exact same double bits.
bool bitIdentical(const std::optional<double> &A,
                  const std::optional<double> &B) {
  if (A.has_value() != B.has_value())
    return false;
  if (!A)
    return true;
  uint64_t Ab = 0, Bb = 0;
  std::memcpy(&Ab, &*A, sizeof(Ab));
  std::memcpy(&Bb, &*B, sizeof(Bb));
  return Ab == Bb;
}

} // namespace

int main() {
  bench::BenchReport Report("predict_throughput");
  MachineModel M = makeSklLike();

  // The mapping a production deployment would serve (inferred once,
  // untimed).
  AnalyticOracle Oracle(M);
  BenchmarkRunner Runner(M, Oracle);
  Pipeline P(Runner);
  const PalmedResult &R = P.run();
  std::printf("mapping: %zu resources, %zu instructions mapped\n",
              R.Stats.NumResources, R.Stats.NumMapped);

  // SPEC-like distinct corpus, replicated to a large batch (the corpus
  // prediction scenario: every kernel computed, nothing cached).
  WorkloadConfig WCfg;
  WCfg.NumBlocks = 150;
  auto Blocks = generateWorkload(M, WCfg);
  constexpr size_t NumKernels = size_t(1) << 18;
  std::vector<Microkernel> Kernels;
  Kernels.reserve(NumKernels);
  for (size_t I = 0; I < NumKernels; ++I)
    Kernels.push_back(Blocks[I % Blocks.size()].K);

  // Untimed SoA batch build — corpus ingestion, not prediction.
  predict::KernelBatch Batch;
  Batch.reserve(Kernels.size(), Kernels.size() * 4);
  for (const Microkernel &K : Kernels)
    Batch.add(K);

  Clock::time_point C0 = Clock::now();
  predict::CompiledMapping CM = predict::CompiledMapping::compile(R.Mapping);
  double CompileUs =
      std::chrono::duration<double, std::micro>(Clock::now() - C0).count();

  // Timed batched pass (best of a few reps to shave scheduler noise);
  // the auto-resolved executor is 1 worker on the reference 1-CPU host,
  // so the headline number is the raw single-stream engine.
  Executor Exec(Executor::resolveThreadCount(0));
  std::vector<std::optional<double>> BatchIpc(Batch.size());
  double BatchS = 0.0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    Clock::time_point T0 = Clock::now();
    predict::predictIpcBatch(CM, Batch, BatchIpc.data(), &Exec);
    double S = std::chrono::duration<double>(Clock::now() - T0).count();
    if (Rep == 0 || S < BatchS)
      BatchS = S;
  }
  double BlocksPerS =
      BatchS > 0.0 ? static_cast<double>(Batch.size()) / BatchS : 0.0;

  // Scalar baseline: the historical per-kernel virtual call.
  MappingPredictor Baseline("palmed", R.Mapping);
  std::vector<std::optional<double>> ScalarIpc(Kernels.size());
  Clock::time_point B0 = Clock::now();
  for (size_t I = 0; I < Kernels.size(); ++I)
    ScalarIpc[I] = Baseline.predictIpc(Kernels[I]);
  double ScalarS = std::chrono::duration<double>(Clock::now() - B0).count();
  double ScalarPerS =
      ScalarS > 0.0 ? static_cast<double>(Kernels.size()) / ScalarS : 0.0;
  double Speedup = ScalarPerS > 0.0 ? BlocksPerS / ScalarPerS : 0.0;

  // The determinism contract is part of what this bench certifies:
  // batched results must equal the scalar path bit for bit.
  for (size_t I = 0; I < Kernels.size(); ++I) {
    if (!bitIdentical(BatchIpc[I], ScalarIpc[I])) {
      std::fprintf(stderr,
                   "FAIL: kernel %zu: batch %.17g vs scalar %.17g — batch "
                   "engine diverged from scalar predictIpc\n",
                   I, BatchIpc[I].value_or(-1.0),
                   ScalarIpc[I].value_or(-1.0));
      return 1;
    }
  }

  std::printf("batched : %zu blocks in %.3f s, %.0f blocks/s "
              "(%u worker(s))\n",
              Batch.size(), BatchS, BlocksPerS, Exec.numWorkers());
  std::printf("scalar  : %zu blocks in %.3f s, %.0f blocks/s\n",
              Kernels.size(), ScalarS, ScalarPerS);
  std::printf("speedup : %.2fx batched over scalar, bit-identical\n",
              Speedup);
  std::printf("compile : %.1f us\n", CompileUs);

  Report.addInfo("machine", "skl");
  Report.addMetric("predict.blocks_per_s", BlocksPerS, "blocks/s");
  Report.addMetric("predict.compile_us", CompileUs, "us");
  Report.addMetric("predict.speedup_x", Speedup, "x");
  return Report.write();
}
