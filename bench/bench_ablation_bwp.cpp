//===- bench/bench_ablation_bwp.cpp - BWP solution-mode ablation ----------===//
//
// Part of the PALMED reproduction.
//
// Ablation XTRA3 (DESIGN.md): the pinned-LP mode of the Bipartite Weight
// Problem (the default, matching the paper's "Ksat forces the saturation
// of r" reading) against the exact MILP encoding of the max-in-objective.
// Compared head-to-head on the Fig. 1 machine's core weight problem (the
// seed benchmark set over the shape Palmed infers), where the MILP is
// tractable: the pinned heuristic must reach the same total saturation
// (sum of S_K) at a fraction of the cost.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/BwpSolver.h"
#include "palmed/palmed.h"
#include "support/Table.h"

#include <chrono>
#include <iostream>

using namespace palmed;

int main() {
  bench::BenchReport Report("ablation_bwp");
  std::cout << "ABLATION: BWP solution mode on the Fig. 1 core problem\n\n";
  MachineModel M = makeFig1Machine();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);

  // Infer the shape with the standard (pinned) pipeline.
  PalmedResult R = Pipeline(Runner).run();
  std::map<InstrId, size_t> IndexOf;
  for (size_t I = 0; I < R.Selection.Basic.size(); ++I)
    IndexOf[R.Selection.Basic[I]] = I;

  // The seed benchmark set: solo + quadratic pairs.
  std::vector<WeightKernel> Kernels;
  for (InstrId A : R.Selection.Basic) {
    Microkernel K = Microkernel::single(A, R.Selection.soloIpc(A))
                        .roundedToIntegers();
    Kernels.push_back({K, Runner.measureIpc(K), -1});
  }
  for (InstrId A : R.Selection.Basic) {
    for (InstrId B : R.Selection.Basic) {
      if (A >= B)
        continue;
      Microkernel K = makePairKernel(A, R.Selection.soloIpc(A), B,
                                     R.Selection.soloIpc(B))
                          .roundedToIntegers();
      if (!Runner.accepts(K))
        continue;
      Kernels.push_back({K, Runner.measureIpc(K), -1});
    }
  }

  // Keep the instance size where the bundled branch-and-bound answers in
  // seconds (the paper used an industrial solver; the comparison point is
  // the achieved slack, not wall-clock heroics).
  if (Kernels.size() > 14)
    Kernels.resize(14);

  TextTable T({"mode", "kernels", "total slack", "time s"});
  std::vector<CoreWeights> Results;
  for (BwpMode Mode : {BwpMode::Pinned, BwpMode::ExactMilp}) {
    auto Start = std::chrono::steady_clock::now();
    CoreWeights W = solveCoreWeights(R.Shape, IndexOf, Kernels, Mode);
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    Results.push_back(W);
    const char *ModeName = Mode == BwpMode::Pinned ? "pinned-LP" : "exact-MILP";
    T.addRow({ModeName, TextTable::fmt(static_cast<int64_t>(Kernels.size())),
              TextTable::fmt(W.TotalSlack, 4), TextTable::fmt(Seconds, 3)});
    std::string Key = Mode == BwpMode::Pinned ? "pinned." : "exact_milp.";
    Report.addMetric(Key + "total_slack", W.TotalSlack);
    Report.addMetric(Key + "time_s", Seconds, "s");
  }
  Report.addMetric("kernels", static_cast<double>(Kernels.size()));
  T.print(std::cout);

  // Largest weight disagreement between the two optima.
  double MaxDelta = 0.0;
  for (size_t I = 0; I < Results[0].Rho.size(); ++I)
    for (size_t Res = 0; Res < Results[0].Rho[I].size(); ++Res)
      MaxDelta = std::max(MaxDelta, std::abs(Results[0].Rho[I][Res] -
                                             Results[1].Rho[I][Res]));
  std::cout << "\nmax |rho(pinned) - rho(exact)| = "
            << TextTable::fmt(MaxDelta, 4)
            << "  (differences within one optimum's face are expected)\n";
  Report.addMetric("max_rho_delta", MaxDelta);
  return Report.write();
}
