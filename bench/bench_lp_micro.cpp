//===- bench/bench_lp_micro.cpp - Solver/predictor microbenchmarks --------===//
//
// Part of the PALMED reproduction.
//
// google-benchmark timings of the building blocks whose cost dominates the
// pipeline: the simplex, the branch-and-bound, the analytic scheduling
// oracle, and the closed-form dual predictor (the paper's headline "simple
// formula instead of a flow problem" — visible here as orders of
// magnitude between the LP oracle and the dual evaluation).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/DualConstruction.h"
#include "lp/Milp.h"
#include "lp/Simplex.h"
#include "machine/StandardMachines.h"
#include "sim/AnalyticOracle.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace palmed;

namespace {

lp::Model makeRandomLp(Rng &R, int Vars, int Rows) {
  lp::Model M;
  std::vector<lp::VarId> Ids;
  for (int V = 0; V < Vars; ++V)
    Ids.push_back(M.addVar("x", 0.0, 10.0));
  for (int C = 0; C < Rows; ++C) {
    lp::LinearExpr E;
    for (int V = 0; V < Vars; ++V)
      if (R.chance(0.4))
        E.add(Ids[static_cast<size_t>(V)], R.uniformRealIn(0.1, 2.0));
    M.addConstraint(std::move(E), lp::Sense::LE, R.uniformRealIn(2.0, 20.0));
  }
  lp::LinearExpr Obj;
  for (lp::VarId Id : Ids)
    Obj.add(Id, R.uniformRealIn(0.1, 1.0));
  M.setObjective(std::move(Obj), lp::Goal::Maximize);
  return M;
}

void BM_SimplexSmall(benchmark::State &State) {
  Rng R(1);
  lp::Model M = makeRandomLp(R, 20, 30);
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::solveLp(M));
}
BENCHMARK(BM_SimplexSmall);

void BM_SimplexMedium(benchmark::State &State) {
  Rng R(2);
  lp::Model M = makeRandomLp(R, 80, 150);
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::solveLp(M));
}
BENCHMARK(BM_SimplexMedium);

lp::Model makeKnapsack(int Items, int Rows, double Capacity) {
  Rng R(3);
  lp::Model M;
  std::vector<lp::LinearExpr> Caps(static_cast<size_t>(Rows));
  lp::LinearExpr Obj;
  for (int V = 0; V < Items; ++V) {
    lp::VarId Id = M.addBoolVar("b");
    for (lp::LinearExpr &Cap : Caps)
      Cap.add(Id, R.uniformRealIn(1.0, 5.0));
    Obj.add(Id, R.uniformRealIn(1.0, 9.0));
  }
  for (lp::LinearExpr &Cap : Caps)
    M.addConstraint(std::move(Cap), lp::Sense::LE, Capacity);
  M.setObjective(std::move(Obj), lp::Goal::Maximize);
  return M;
}

void BM_MilpKnapsack(benchmark::State &State) {
  // Same instance as the committed BENCH_seed.json entry.
  lp::Model M = makeKnapsack(14, 1, 18.0);
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::solveMilp(M));
}
BENCHMARK(BM_MilpKnapsack);

/// Branch-and-bound with child LPs warm-started from the parent basis vs
/// every node re-solved cold; the per-benchmark counters report the pivot
/// and warm-start traffic of one solve.
void BM_MilpWarmStarted(benchmark::State &State) {
  lp::Model M = makeKnapsack(22, 4, 28.0);
  lp::MilpOptions Options;
  lp::MilpStats Stats;
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::solveMilp(M, Options, &Stats));
  State.counters["nodes"] = static_cast<double>(Stats.NodesExplored);
  State.counters["pivots"] = static_cast<double>(Stats.LpPivots);
  State.counters["warm_hit_pct"] =
      Stats.WarmStartAttempts
          ? 100.0 * Stats.WarmStartHits / Stats.WarmStartAttempts
          : 0.0;
}
BENCHMARK(BM_MilpWarmStarted);

void BM_MilpColdNodes(benchmark::State &State) {
  lp::Model M = makeKnapsack(22, 4, 28.0);
  lp::MilpOptions Options;
  Options.UseWarmStart = false;
  lp::MilpStats Stats;
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::solveMilp(M, Options, &Stats));
  State.counters["nodes"] = static_cast<double>(Stats.NodesExplored);
  State.counters["pivots"] = static_cast<double>(Stats.LpPivots);
}
BENCHMARK(BM_MilpColdNodes);

/// The flow-LP oracle vs the closed-form dual on the same kernel: the
/// paper's complexity argument in microseconds.
void BM_AnalyticOracleKernel(benchmark::State &State) {
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);
  Microkernel K;
  Rng R(4);
  for (int T = 0; T < 8; ++T)
    K.add(static_cast<InstrId>(R.uniformInt(M.numInstructions())),
          static_cast<double>(1 + R.uniformInt(3)));
  for (auto _ : State)
    benchmark::DoNotOptimize(O.measureIpc(K));
}
BENCHMARK(BM_AnalyticOracleKernel);

void BM_DualPredictorKernel(benchmark::State &State) {
  MachineModel M = makeSklLike();
  ResourceMapping Dual = buildDualMapping(M);
  Microkernel K;
  Rng R(4);
  for (int T = 0; T < 8; ++T)
    K.add(static_cast<InstrId>(R.uniformInt(M.numInstructions())),
          static_cast<double>(1 + R.uniformInt(3)));
  for (auto _ : State)
    benchmark::DoNotOptimize(Dual.predictIpc(K));
}
BENCHMARK(BM_DualPredictorKernel);

void BM_DualConstructionSkl(benchmark::State &State) {
  MachineModel M = makeSklLike();
  for (auto _ : State)
    benchmark::DoNotOptimize(buildDualMapping(M));
}
BENCHMARK(BM_DualConstructionSkl);

/// Console output as usual, plus one BenchReport metric per benchmark so
/// bench_all can fold the timings into BENCH_seed.json.
class ReportingReporter : public benchmark::ConsoleReporter {
public:
  explicit ReportingReporter(palmed::bench::BenchReport &Report)
      : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (R.run_type == Run::RT_Iteration)
        Report.addMetric(R.benchmark_name(), R.GetAdjustedRealTime(),
                         benchmark::GetTimeUnitString(R.time_unit));
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  palmed::bench::BenchReport &Report;
};

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  palmed::bench::BenchReport Report("lp_micro");
  ReportingReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return Report.write();
}
