//===- bench/EvalCampaign.h - Shared Sec. VI evaluation campaign -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full evaluation campaign shared by the Fig. 4 benches: for one
/// machine, infer the Palmed mapping (palmed::Pipeline), build every
/// applicable tool through the PredictorRegistry, generate both workload
/// suites, and run an EvalSession under the configured ExecutionPolicy.
/// Tool availability mirrors the paper: uops.info and IACA do not support
/// the ZEN1 machine (Sec. VI-B "hence the absence of data").
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_BENCH_EVALCAMPAIGN_H
#define PALMED_BENCH_EVALCAMPAIGN_H

#include "palmed/palmed.h"

#include <chrono>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace palmed {
namespace bench {

struct CampaignConfig {
  size_t BlocksPerSuite = 600;
  uint64_t WorkloadSeed = 2022;
  PalmedConfig Palmed;
  PMEvoConfig PMEvo;
  /// How the eval sessions schedule their work.
  ExecutionPolicy Policy = ExecutionPolicy::serial();
  /// When set, every suite is evaluated twice — serial and under
  /// SpeedupPolicy — recording wall-clocks and checking the outcomes are
  /// identical (Campaign::Eval*Seconds / PolicyOutcomesIdentical).
  bool MeasurePolicySpeedup = false;
  ExecutionPolicy SpeedupPolicy = ExecutionPolicy::parallel(4);
};

struct Campaign {
  std::string MachineName;
  std::unique_ptr<MachineModel> Machine;
  PalmedStats Stats;
  std::vector<std::string> Tools;
  /// Per suite name ("SPEC2017" / "Polybench"), the harness outcome
  /// (EvalOutcome::Blocks carries the generated block set).
  std::map<std::string, EvalOutcome> Outcomes;
  /// Aggregate eval-phase wall-clocks (MeasurePolicySpeedup only).
  double EvalSerialSeconds = 0.0;
  double EvalParallelSeconds = 0.0;
  /// True when the serial and parallel outcomes matched bit-for-bit.
  bool PolicyOutcomesIdentical = true;
};

/// The paper's tool roster for one machine, in display order.
inline std::vector<std::string> campaignTools(bool Zen) {
  if (Zen) // uops.info and IACA have no usable ZEN1 port mapping.
    return {"palmed", "pmevo", "llvm-mca"};
  return {"palmed", "uops.info", "iaca", "pmevo", "llvm-mca"};
}

/// Runs the whole campaign for \p Zen ? ZEN1-like : SKL-SP-like.
inline Campaign runCampaign(bool Zen,
                            const CampaignConfig &Config = CampaignConfig()) {
  Campaign C;
  C.MachineName = Zen ? "ZEN1" : "SKL-SP";
  C.Machine = std::make_unique<MachineModel>(Zen ? makeZenLike()
                                                 : makeSklLike());
  const MachineModel &M = *C.Machine;

  AnalyticOracle Oracle(M);
  BenchmarkRunner Runner(M, Oracle);

  Pipeline P(Runner, Config.Palmed);
  const PalmedResult &PR = P.run();
  C.Stats = PR.Stats;

  PredictorContext Ctx;
  Ctx.Machine = &M;
  Ctx.Runner = &Runner;
  Ctx.PalmedMapping = &PR.Mapping;
  Ctx.PMEvo = Config.PMEvo;

  // Predictors are owned here and lent to the sessions, so the same
  // instances can be evaluated under several execution policies.
  std::vector<std::unique_ptr<Predictor>> Predictors;
  const PredictorRegistry &Registry = PredictorRegistry::builtin();
  for (const std::string &Tool : campaignTools(Zen)) {
    std::string Error;
    auto Pred = Registry.create(Tool, Ctx, &Error);
    if (!Pred)
      throw std::runtime_error("campaign: cannot build '" + Tool +
                               "': " + Error);
    C.Tools.push_back(Pred->name());
    Predictors.push_back(std::move(Pred));
  }
  auto MakeSession = [&](ExecutionPolicy Policy) {
    EvalSession Session(Oracle, Policy);
    Session.setReferenceTool("palmed");
    for (const auto &P : Predictors)
      Session.add(*P);
    return Session;
  };

  for (auto [SuiteName, Profile] :
       std::initializer_list<std::pair<const char *, WorkloadProfile>>{
           {"SPEC2017", WorkloadProfile::SpecLike},
           {"Polybench", WorkloadProfile::PolybenchLike}}) {
    WorkloadConfig WCfg;
    WCfg.Profile = Profile;
    WCfg.NumBlocks = Config.BlocksPerSuite;
    WCfg.Seed = Config.WorkloadSeed + (Profile == WorkloadProfile::SpecLike
                                           ? 0
                                           : 1);
    auto Blocks = generateWorkload(M, WCfg);
    if (Config.MeasurePolicySpeedup) {
      using Clock = std::chrono::steady_clock;
      auto T0 = Clock::now();
      EvalOutcome Serial = MakeSession(ExecutionPolicy::serial()).run(Blocks);
      auto T1 = Clock::now();
      EvalOutcome Parallel = MakeSession(Config.SpeedupPolicy).run(Blocks);
      auto T2 = Clock::now();
      C.EvalSerialSeconds += std::chrono::duration<double>(T1 - T0).count();
      C.EvalParallelSeconds +=
          std::chrono::duration<double>(T2 - T1).count();
      C.PolicyOutcomesIdentical =
          C.PolicyOutcomesIdentical &&
          Serial.NativeIpc == Parallel.NativeIpc &&
          Serial.Predictions == Parallel.Predictions;
      C.Outcomes.emplace(SuiteName, std::move(Serial));
    } else {
      C.Outcomes.emplace(SuiteName, MakeSession(Config.Policy).run(Blocks));
    }
  }
  return C;
}

} // namespace bench
} // namespace palmed

#endif // PALMED_BENCH_EVALCAMPAIGN_H
