//===- bench/EvalCampaign.h - Shared Sec. VI evaluation campaign -*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full evaluation campaign shared by the Fig. 4 benches: for one
/// machine, infer the Palmed mapping, train PMEvo, instantiate the
/// ground-truth tool stand-ins, generate both workload suites, and run the
/// harness. Tool availability mirrors the paper: uops.info and IACA do not
/// support the ZEN1 machine (Sec. VI-B "hence the absence of data").
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_BENCH_EVALCAMPAIGN_H
#define PALMED_BENCH_EVALCAMPAIGN_H

#include "baselines/GroundTruthPredictors.h"
#include "baselines/PMEvo.h"
#include "core/PalmedDriver.h"
#include "eval/Harness.h"
#include "eval/Workload.h"
#include "machine/StandardMachines.h"
#include "sim/AnalyticOracle.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace palmed {
namespace bench {

struct CampaignConfig {
  size_t BlocksPerSuite = 600;
  uint64_t WorkloadSeed = 2022;
  PalmedConfig Palmed;
  PMEvoConfig PMEvo;
};

struct Campaign {
  std::string MachineName;
  std::unique_ptr<MachineModel> Machine;
  PalmedStats Stats;
  std::vector<std::string> Tools;
  /// Per suite name ("SPEC2017" / "Polybench"), the harness outcome.
  std::map<std::string, EvalOutcome> Outcomes;
};

/// Runs the whole campaign for \p Zen ? ZEN1-like : SKL-SP-like.
inline Campaign runCampaign(bool Zen,
                            const CampaignConfig &Config = CampaignConfig()) {
  Campaign C;
  C.MachineName = Zen ? "ZEN1" : "SKL-SP";
  C.Machine = std::make_unique<MachineModel>(Zen ? makeZenLike()
                                                 : makeSklLike());
  const MachineModel &M = *C.Machine;

  AnalyticOracle Oracle(M);
  BenchmarkRunner Runner(M, Oracle);

  PalmedResult PR = runPalmed(Runner, Config.Palmed);
  C.Stats = PR.Stats;

  std::vector<std::unique_ptr<Predictor>> Owned;
  std::vector<Predictor *> Predictors;
  auto AddTool = [&](std::unique_ptr<Predictor> P) {
    C.Tools.push_back(P->name());
    Predictors.push_back(P.get());
    Owned.push_back(std::move(P));
  };

  AddTool(std::make_unique<MappingPredictor>("palmed", PR.Mapping));
  if (!Zen) {
    // uops.info and IACA have no usable ZEN1 port mapping in the paper.
    AddTool(makeUopsInfoPredictor(M));
    AddTool(makeIacaLikePredictor(M));
  }
  AddTool(PMEvoPredictor::train(Runner, M.isa().allIds(), Config.PMEvo));
  AddTool(makeLlvmMcaLikePredictor(M));

  for (auto [SuiteName, Profile] :
       std::initializer_list<std::pair<const char *, WorkloadProfile>>{
           {"SPEC2017", WorkloadProfile::SpecLike},
           {"Polybench", WorkloadProfile::PolybenchLike}}) {
    WorkloadConfig WCfg;
    WCfg.Profile = Profile;
    WCfg.NumBlocks = Config.BlocksPerSuite;
    WCfg.Seed = Config.WorkloadSeed + (Profile == WorkloadProfile::SpecLike
                                           ? 0
                                           : 1);
    auto Blocks = generateWorkload(M, WCfg);
    C.Outcomes.emplace(SuiteName,
                       runEvaluation(Oracle, Blocks, Predictors, "palmed"));
  }
  return C;
}

} // namespace bench
} // namespace palmed

#endif // PALMED_BENCH_EVALCAMPAIGN_H
