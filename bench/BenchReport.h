//===- bench/BenchReport.h - Machine-readable bench results ----*- C++ -*-===//
//
// Part of the PALMED reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared JSON reporting for the bench/ programs. Each bench fills a
/// BenchReport with the numbers it already prints as tables and calls
/// write() from main. The output path comes from the PALMED_BENCH_REPORT
/// environment variable — set by the `bench_all` build target, which then
/// merges the per-bench files into BENCH_seed.json at the repo root (see
/// cmake/MergeBenchReports.cmake). When the variable is unset the benches
/// stay plain console tools and write() is a successful no-op.
///
//===----------------------------------------------------------------------===//

#ifndef PALMED_BENCH_BENCHREPORT_H
#define PALMED_BENCH_BENCHREPORT_H

#include "palmed/Version.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace palmed {
namespace bench {

class BenchReport {
public:
  explicit BenchReport(std::string BenchName)
      : Name(std::move(BenchName)),
        Start(std::chrono::steady_clock::now()) {}

  /// Records one named measurement. Dotted keys are the convention for
  /// structured names, e.g. "skl.spec2017.palmed.err_pct".
  void addMetric(const std::string &Key, double Value,
                 std::string Unit = "") {
    Metrics.push_back({Key, Value, std::move(Unit)});
  }

  /// Records a free-form string fact (machine name, mode, ...).
  void addInfo(const std::string &Key, const std::string &Value) {
    Info.emplace_back(Key, Value);
  }

  /// Serializes the report to $PALMED_BENCH_REPORT if set. Returns an
  /// exit code so benches can end with `return Report.write();`.
  int write() const {
    const char *Path = std::getenv("PALMED_BENCH_REPORT");
    if (!Path || !*Path)
      return 0;
    std::ofstream OS(Path);
    if (!OS) {
      std::cerr << "error: cannot open bench report file '" << Path << "'\n";
      return 1;
    }
    double WallS = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    OS << "{\n      \"bench\": \"" << escaped(Name) << "\",\n"
       << "      \"schema_version\": " << SchemaVersion << ",\n"
       << "      \"palmed_version\": \"" << PALMED_VERSION_STRING
       << "\",\n"
       << "      \"host\": " << hostJson() << ",\n"
       << "      \"wall_s\": " << number(WallS);
    for (const auto &[Key, Value] : Info)
      OS << ",\n      \"" << escaped(Key) << "\": \"" << escaped(Value)
         << "\"";
    OS << ",\n      \"metrics\": [";
    for (size_t I = 0; I < Metrics.size(); ++I) {
      OS << (I ? "," : "") << "\n        {\"name\": \""
         << escaped(Metrics[I].Key)
         << "\", \"value\": " << number(Metrics[I].Value);
      if (!Metrics[I].Unit.empty())
        OS << ", \"unit\": \"" << escaped(Metrics[I].Unit) << "\"";
      OS << "}";
    }
    OS << (Metrics.empty() ? "]\n" : "\n      ]\n") << "    }\n";
    OS.flush();
    if (!OS.good()) {
      std::cerr << "error: failed writing bench report '" << Path << "'\n";
      return 1;
    }
    return 0;
  }

  /// Version of the per-bench report layout. v2 added schema_version,
  /// palmed_version, and the host metadata block.
  static constexpr int SchemaVersion = 2;

private:
  struct Metric {
    std::string Key;
    double Value;
    std::string Unit;
  };

  /// Host/machine metadata: where the numbers were measured and with what
  /// toolchain — required to compare bench JSONs across environments.
  static std::string hostJson() {
    std::string HostName = "unknown", Os = "unknown", Arch = "unknown";
#if defined(__unix__) || defined(__APPLE__)
    char Buf[256] = {0};
    if (::gethostname(Buf, sizeof(Buf) - 1) == 0 && Buf[0])
      HostName = Buf;
    struct utsname Uts;
    if (::uname(&Uts) == 0) {
      Os = std::string(Uts.sysname) + " " + Uts.release;
      Arch = Uts.machine;
    }
#endif
#if defined(__clang__)
    std::string Compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    std::string Compiler = std::string("gcc ") + __VERSION__;
#else
    std::string Compiler = "unknown";
#endif
    return "{\"name\": \"" + escaped(HostName) + "\", \"os\": \"" +
           escaped(Os) + "\", \"arch\": \"" + escaped(Arch) +
           "\", \"compiler\": \"" + escaped(Compiler) +
           "\", \"cxx_standard\": " + std::to_string(__cplusplus / 100) +
           "}";
  }

  static std::string escaped(const std::string &S) {
    std::string Out;
    Out.reserve(S.size());
    for (char C : S) {
      if (C == '"' || C == '\\') {
        Out += '\\';
        Out += C;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else
        Out += C;
    }
    return Out;
  }

  /// JSON has no NaN/Inf literals; map them to null.
  static std::string number(double V) {
    if (!std::isfinite(V))
      return "null";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    return Buf;
  }

  std::string Name;
  std::chrono::steady_clock::time_point Start;
  std::vector<std::pair<std::string, std::string>> Info;
  std::vector<Metric> Metrics;
};

} // namespace bench
} // namespace palmed

#endif // PALMED_BENCH_BENCHREPORT_H
