//===- bench/bench_serve.cpp - Serving throughput benchmark ---------------===//
//
// Part of the PALMED reproduction.
//
// Measures the serving subsystem end to end on the skl profile: a real
// palmed_serve-style daemon (AF_UNIX socket, batched protocol, prediction
// cache) against the one-kernel-at-a-time virtual Predictor baseline the
// evaluation harness uses. The query stream replays a SPEC-like workload
// with realistic repetition (hot blocks dominate), which is exactly the
// access pattern the text-keyed cache is built for.
//
// Reported metrics (merged into the bench JSON):
//   serve.qps               — batched requests answered per second
//   serve.kernels_per_s     — kernels answered per second (served)
//   serve.p50_us/p99_us     — client-observed per-request latency
//   serve.cache_hit_rate    — server-side hit rate over the run
//   serve.baseline_kernels_per_s — parse + MappingPredictor::predictIpc
//   serve.speedup_x         — served / baseline kernel throughput
//   serve.oracle_err_pct    — served predictions vs the LP oracle (batch
//                             entry point), mean |err| on distinct blocks
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "baselines/Predictor.h"
#include "palmed/palmed.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace palmed;
using Clock = std::chrono::steady_clock;

namespace {

double percentile(std::vector<double> V, double Q) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  double Rank = std::ceil(Q * static_cast<double>(V.size()));
  size_t Idx = Rank <= 1.0 ? 0 : static_cast<size_t>(Rank) - 1;
  return V[std::min(Idx, V.size() - 1)];
}

} // namespace

int main() {
  bench::BenchReport Report("serve");
  MachineModel M = makeSklLike();

  // Infer the mapping the daemon would load (palmed_cli map --save skl).
  AnalyticOracle Oracle(M);
  BenchmarkRunner Runner(M, Oracle);
  Pipeline P(Runner);
  const PalmedResult &R = P.run();
  std::printf("mapping: %zu resources, %zu instructions mapped\n",
              R.Stats.NumResources, R.Stats.NumMapped);

  // SPEC-like corpus; the query stream cycles it with repetition.
  WorkloadConfig WCfg;
  WCfg.NumBlocks = 150;
  auto Blocks = generateWorkload(M, WCfg);
  std::vector<std::string> Distinct;
  Distinct.reserve(Blocks.size());
  for (const BasicBlock &B : Blocks)
    Distinct.push_back(B.K.str(M.isa()));

  constexpr size_t BatchSize = 256;
  constexpr size_t NumRequests = 360;
  std::vector<std::string> Stream;
  Stream.reserve(BatchSize * NumRequests);
  for (size_t I = 0; I < BatchSize * NumRequests; ++I)
    Stream.push_back(Distinct[I % Distinct.size()]);

  // Pre-cut the batches so the timed loop measures serving, not workload
  // construction (the baseline loop iterates Stream in place).
  std::vector<std::vector<std::string>> Batches;
  Batches.reserve(NumRequests);
  for (size_t Req = 0; Req < NumRequests; ++Req)
    Batches.emplace_back(
        Stream.begin() + static_cast<long>(Req * BatchSize),
        Stream.begin() + static_cast<long>((Req + 1) * BatchSize));

  // --- Served path: real daemon, real socket, batched requests. --------
  serve::ServerConfig SCfg;
  SCfg.SocketPath =
      "/tmp/palmed_bench_serve_" + std::to_string(::getpid()) + ".sock";
  SCfg.NumThreads = Executor::resolveThreadCount(0);
  serve::Server Server(SCfg);
  Server.addMachine("skl", M, R.Mapping);
  Server.bind();
  std::thread ServeThread([&] { Server.serve(); });

  serve::Client Client;
  if (!Client.connect(SCfg.SocketPath)) {
    std::fprintf(stderr, "error: %s\n", Client.lastError().c_str());
    Server.requestStop();
    ServeThread.join();
    return 1;
  }

  // Warm-up (untimed): populate the cache with the distinct corpus so the
  // timed loop measures steady-state serving, not first-touch inference.
  if (!Client.query("skl", Distinct)) {
    std::fprintf(stderr, "error: %s\n", Client.lastError().c_str());
    Server.requestStop();
    ServeThread.join();
    return 1;
  }

  std::vector<double> LatencyUs;
  LatencyUs.reserve(NumRequests);
  size_t ServedKernels = 0;
  Clock::time_point T0 = Clock::now();
  for (size_t Req = 0; Req < NumRequests; ++Req) {
    Clock::time_point B0 = Clock::now();
    auto Resp = Client.query("skl", Batches[Req]);
    if (!Resp) {
      std::fprintf(stderr, "error: %s\n", Client.lastError().c_str());
      Server.requestStop();
      ServeThread.join();
      return 1;
    }
    LatencyUs.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - B0)
            .count());
    ServedKernels += Resp->Answers.size();
  }
  double ServedS = std::chrono::duration<double>(Clock::now() - T0).count();

  serve::ServerTotals Totals = Server.totals();
  Client.disconnect();
  Server.requestStop();
  ServeThread.join();

  double Qps = static_cast<double>(NumRequests) / ServedS;
  double ServedKps = static_cast<double>(ServedKernels) / ServedS;
  double HitRate =
      Totals.CacheHits + Totals.CacheMisses
          ? static_cast<double>(Totals.CacheHits) /
                static_cast<double>(Totals.CacheHits + Totals.CacheMisses)
          : 0.0;

  // --- Baseline: one-kernel-at-a-time virtual Predictor calls. ---------
  // What a client without the daemon does per kernel: parse the text,
  // then one MappingPredictor::predictIpc call.
  MappingPredictor Baseline("palmed", R.Mapping);
  Clock::time_point B0 = Clock::now();
  size_t BaselineOk = 0;
  for (const std::string &Text : Stream) {
    auto K = Microkernel::parse(Text, M.isa());
    if (K && Baseline.predictIpc(*K))
      ++BaselineOk;
  }
  double BaselineS =
      std::chrono::duration<double>(Clock::now() - B0).count();
  double BaselineKps = static_cast<double>(BaselineOk) / BaselineS;
  double Speedup = ServedKps / BaselineKps;

  // --- Ground truth: the oracle's batch entry point on the corpus. -----
  std::vector<Microkernel> Kernels;
  Kernels.reserve(Blocks.size());
  for (const BasicBlock &B : Blocks)
    Kernels.push_back(B.K);
  Executor Exec(Executor::resolveThreadCount(0));
  std::vector<double> TrueIpc = Oracle.measureIpcBatch(Kernels, &Exec);
  double ErrSum = 0.0;
  size_t ErrN = 0;
  for (size_t I = 0; I < Kernels.size(); ++I) {
    auto Pred = R.Mapping.predictIpc(Kernels[I]);
    if (!Pred || TrueIpc[I] <= 0.0)
      continue;
    ErrSum += std::abs(*Pred - TrueIpc[I]) / TrueIpc[I];
    ++ErrN;
  }
  double ErrPct = ErrN ? 100.0 * ErrSum / static_cast<double>(ErrN) : 0.0;

  double P50 = percentile(LatencyUs, 0.50);
  double P99 = percentile(LatencyUs, 0.99);
  std::printf("served : %zu kernels in %zu batches, %.0f kernels/s "
              "(%.0f req/s), p50 %.0f us, p99 %.0f us, hit rate %.3f\n",
              ServedKernels, NumRequests, ServedKps, Qps, P50, P99,
              HitRate);
  std::printf("baseline: %zu kernels one at a time, %.0f kernels/s\n",
              BaselineOk, BaselineKps);
  std::printf("speedup : %.1fx batched-served over one-at-a-time\n",
              Speedup);
  std::printf("accuracy: %.1f%% mean |err| vs LP oracle on %zu blocks\n",
              ErrPct, ErrN);

  Report.addInfo("machine", "skl");
  Report.addMetric("serve.qps", Qps, "req/s");
  Report.addMetric("serve.kernels_per_s", ServedKps, "kernels/s");
  Report.addMetric("serve.p50_us", P50, "us");
  Report.addMetric("serve.p99_us", P99, "us");
  Report.addMetric("serve.cache_hit_rate", HitRate);
  Report.addMetric("serve.baseline_kernels_per_s", BaselineKps,
                   "kernels/s");
  Report.addMetric("serve.speedup_x", Speedup, "x");
  Report.addMetric("serve.oracle_err_pct", ErrPct, "%");
  return Report.write();
}
