//===- bench/bench_fig4b_accuracy.cpp - Paper Fig. 4b table ---------------===//
//
// Part of the PALMED reproduction.
//
// Regenerates the Fig. 4b table: per machine x suite x tool, the block
// coverage (relative to Palmed-supported blocks), the weighted RMS relative
// IPC error, and Kendall's tau against native (simulated) execution.
//
// Flags: --threads N runs the eval sessions under ExecutionPolicy::parallel
// (N), --blocks N shrinks the per-suite workloads (CI smoke runs use
// --threads 4 --blocks 100).
//
// Expected shape vs the paper: Palmed beats uops.info-style and PMEvo on
// both machines; IACA-like (full manual-expertise model) is the strongest
// port-based tool; ZEN1 errors are higher than SKL for Palmed (split
// pipelines); port-based tools over-estimate IPC (visible in Fig. 4a).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "EvalCampaign.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace palmed;
using namespace palmed::bench;

int main(int Argc, char **Argv) {
  unsigned Threads = 1;
  size_t Blocks = 600;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc)
      Threads = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (!std::strcmp(Argv[I], "--blocks") && I + 1 < Argc)
      Blocks = std::strtoul(Argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--blocks N]\n", Argv[0]);
      return 1;
    }
  }

  CampaignConfig Config;
  Config.BlocksPerSuite = Blocks;
  Config.Policy = Threads > 1 ? ExecutionPolicy::parallel(Threads)
                              : ExecutionPolicy::serial();

  BenchReport Report("fig4b_accuracy");
  Report.addInfo("threads", std::to_string(Threads));
  Report.addInfo("blocks_per_suite", std::to_string(Blocks));
  std::cout << "FIG. 4b: coverage / RMS error / Kendall tau per tool ("
            << (Threads > 1 ? "parallel x" + std::to_string(Threads)
                            : std::string("serial"))
            << ")\n\n";
  TextTable T({"machine", "suite", "tool", "Cov. %", "Err. %", "tauK"});
  for (bool Zen : {false, true}) {
    Campaign C = runCampaign(Zen, Config);
    for (const auto &[Suite, Outcome] : C.Outcomes) {
      for (const std::string &Tool : C.Tools) {
        ToolAccuracy A = Outcome.accuracy(Tool);
        T.addRow({C.MachineName, Suite, Tool,
                  TextTable::fmt(A.CoveragePct, 1),
                  TextTable::fmt(A.ErrPct, 1),
                  TextTable::fmt(A.KendallTau, 2)});
        std::string Key = C.MachineName + "." + Suite + "." + Tool + ".";
        Report.addMetric(Key + "coverage_pct", A.CoveragePct, "%");
        Report.addMetric(Key + "err_pct", A.ErrPct, "%");
        Report.addMetric(Key + "kendall_tau", A.KendallTau);
      }
      T.addSeparator();
    }
  }
  T.print(std::cout);
  std::cout << "\nPaper reference (SKL-SP SPEC2017): palmed 7.8%/0.90, "
               "uops.info 40.3%/0.71,\nPMEvo 28.1%/0.47, IACA 8.7%/0.80, "
               "llvm-mca 20.1%/0.73.\n";
  return Report.write();
}
