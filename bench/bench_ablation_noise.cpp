//===- bench/bench_ablation_noise.cpp - Noise-robustness ablation ---------===//
//
// Part of the PALMED reproduction.
//
// Ablation XTRA1 (DESIGN.md): how measurement noise degrades the inferred
// mapping. The paper constrains measurement error to 5% and rounds
// benchmark coefficients accordingly (Sec. VI-A); this bench quantifies the
// sensitivity of the full pipeline to multiplicative measurement noise,
// something the paper could not isolate on real hardware.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "palmed/palmed.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <iostream>
#include <string>

using namespace palmed;

int main() {
  bench::BenchReport Report("ablation_noise");
  std::cout << "ABLATION: measurement noise vs mapping accuracy "
               "(SKL-SP-like)\n\n";
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);

  TextTable T({"noise stddev", "resources", "RMS err %", "Kendall tau"});
  for (double Noise : {0.0, 0.001, 0.01, 0.05}) {
    BenchmarkConfig BCfg;
    BCfg.NoiseStdDev = Noise;
    BenchmarkRunner Runner(M, O, BCfg);
    PalmedResult R = Pipeline(Runner).run();

    Rng Rand(4242);
    std::vector<double> Pred, Native;
    for (int Trial = 0; Trial < 250; ++Trial) {
      Microkernel K;
      size_t Terms = 1 + Rand.uniformInt(5);
      for (size_t I = 0; I < Terms; ++I) {
        InstrId Id =
            static_cast<InstrId>(Rand.uniformInt(M.numInstructions()));
        if (R.Mapping.isMapped(Id))
          K.add(Id, static_cast<double>(1 + Rand.uniformInt(3)));
      }
      if (K.empty() || M.kernelMixesExtensions(K))
        continue;
      auto P = R.Mapping.predictIpc(K);
      if (!P)
        continue;
      Pred.push_back(*P);
      Native.push_back(O.measureIpc(K)); // Noise-free ground truth.
    }
    double ErrPct = 100.0 * weightedRmsRelativeError(Pred, Native);
    double Tau = kendallTau(Pred, Native);
    T.addRow({TextTable::fmt(100.0 * Noise, 1) + "%",
              TextTable::fmt(static_cast<int64_t>(R.Stats.NumResources)),
              TextTable::fmt(ErrPct, 1), TextTable::fmt(Tau, 2)});
    // Dot-free level token (basis points) to respect BenchReport's
    // dotted-key hierarchy: 0.001 -> "noise10bp".
    std::string Key =
        "noise" + std::to_string(static_cast<int>(10000.0 * Noise + 0.5)) +
        "bp.";
    Report.addMetric(Key + "resources",
                     static_cast<double>(R.Stats.NumResources));
    Report.addMetric(Key + "err_pct", ErrPct, "%");
    Report.addMetric(Key + "kendall_tau", Tau);
  }
  T.print(std::cout);
  return Report.write();
}
