//===- bench/bench_table2_mapping.cpp - Paper Table II --------------------===//
//
// Part of the PALMED reproduction.
//
// Regenerates Table II: the main features of the mappings Palmed obtains on
// the two machines — microbenchmark count, resources found, instructions
// mapped, and wall-clock split between benchmarking-style work (selection)
// and LP solving (core + complete mapping). Absolute numbers differ from
// the paper (its substrate is real silicon and Gurobi; ours is a simulator
// and a bundled solver), but the structure of the table is the same.
//
// A third column maps the parameterized stress ISA (the scaling machine
// beyond the paper's two), and the stress scenario additionally runs the
// whole pipeline serial vs Parallel(4) to record the end-to-end mapping
// speedup (map.serial_s / map.parallel_s / map.speedup_x) and verify the
// outcomes are bit-identical.
//
// A fourth column maps the "huge" profile (2048 instructions / 24 ports /
// 6 extension groups, past the historical 32-basic wall) with the
// cluster-first selection pruning on, recording map.pair_benchmarks vs
// map.pair_benchmarks_quadratic — the quadratic→pruned reduction that
// makes thousand-instruction ISAs tractable.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "palmed/palmed.h"
#include "support/Table.h"

#include <chrono>
#include <iostream>

using namespace palmed;

namespace {

struct Row {
  std::string Name;
  size_t Instructions = 0;
  double Seconds = 0.0;
  std::string MappingText;
  PalmedStats Stats;
};

Row runOn(const MachineModel &M, const std::string &Name,
          ExecutionPolicy Policy = ExecutionPolicy::serial(),
          bool PrunePairs = false) {
  Row R;
  R.Name = Name;
  R.Instructions = M.numInstructions();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  PalmedConfig Cfg;
  Cfg.Execution = Policy;
  Cfg.Selection.ClusterPairPruning = PrunePairs;
  // Drive the stages explicitly: Table II's row split (benchmarking vs LP
  // solving) is exactly the stage split of the public pipeline.
  auto T0 = std::chrono::steady_clock::now();
  Pipeline P(Runner, Cfg);
  P.selectBasics();
  P.solveCoreMapping();
  const PalmedResult &Res = P.completeMapping();
  R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            T0)
                  .count();
  R.Stats = Res.Stats;
  R.MappingText = Res.Mapping.toText(M.isa());
  return R;
}

} // namespace

int main() {
  bench::BenchReport Report("table2_mapping");
  std::cout << "TABLE II: main features of the obtained mappings\n\n";
  MachineModel SklM = makeSklLike(), ZenM = makeZenLike();
  MachineModel StressM = makeStressMachine(StressIsaConfig());
  MachineModel HugeM = makeStressMachine(hugeStressConfig());
  Row Skl = runOn(SklM, "SKL-SP-like");
  Row Zen = runOn(ZenM, "ZEN1-like");
  Row Stress = runOn(StressM, "stress");
  Row StressPar = runOn(StressM, "stress-par4", ExecutionPolicy::parallel(4));
  const bool Identical = Stress.MappingText == StressPar.MappingText;
  // The huge column runs with the cluster-first selection pruning on; the
  // unpruned quadratic sweep at this size is exactly the wall this bench
  // exists to show torn down.
  Row Huge = runOn(HugeM, "huge", ExecutionPolicy::serial(),
                   /*PrunePairs=*/true);

  TextTable T({"", Skl.Name, Zen.Name, Stress.Name, Huge.Name});
  auto N = [](size_t V) { return TextTable::fmt(static_cast<int64_t>(V)); };
  T.addRow({"ISA instructions", N(Skl.Instructions), N(Zen.Instructions),
            N(Stress.Instructions), N(Huge.Instructions)});
  T.addRow({"Gen. microbenchmarks", N(Skl.Stats.NumBenchmarks),
            N(Zen.Stats.NumBenchmarks), N(Stress.Stats.NumBenchmarks),
            N(Huge.Stats.NumBenchmarks)});
  T.addRow({"Basic instructions", N(Skl.Stats.NumBasic),
            N(Zen.Stats.NumBasic), N(Stress.Stats.NumBasic),
            N(Huge.Stats.NumBasic)});
  T.addRow({"Resources found", N(Skl.Stats.NumResources),
            N(Zen.Stats.NumResources), N(Stress.Stats.NumResources),
            N(Huge.Stats.NumResources)});
  T.addRow({"Instructions mapped", N(Skl.Stats.NumMapped),
            N(Zen.Stats.NumMapped), N(Stress.Stats.NumMapped),
            N(Huge.Stats.NumMapped)});
  T.addRow({"Core LP kernels", N(Skl.Stats.NumCoreKernels),
            N(Zen.Stats.NumCoreKernels), N(Stress.Stats.NumCoreKernels),
            N(Huge.Stats.NumCoreKernels)});
  T.addRow({"Quadratic pair benchmarks", N(Skl.Stats.PairBenchmarks),
            N(Zen.Stats.PairBenchmarks), N(Stress.Stats.PairBenchmarks),
            N(Huge.Stats.PairBenchmarks)});
  T.addRow({"  (unpruned would need)", N(Skl.Stats.PairBenchmarksQuadratic),
            N(Zen.Stats.PairBenchmarksQuadratic),
            N(Stress.Stats.PairBenchmarksQuadratic),
            N(Huge.Stats.PairBenchmarksQuadratic)});
  T.addRow({"Benchmarking time (s)",
            TextTable::fmt(Skl.Stats.SelectionSeconds, 2),
            TextTable::fmt(Zen.Stats.SelectionSeconds, 2),
            TextTable::fmt(Stress.Stats.SelectionSeconds, 2),
            TextTable::fmt(Huge.Stats.SelectionSeconds, 2)});
  T.addRow({"LP solving time (s)",
            TextTable::fmt(Skl.Stats.CoreMappingSeconds +
                               Skl.Stats.CompleteMappingSeconds,
                           2),
            TextTable::fmt(Zen.Stats.CoreMappingSeconds +
                               Zen.Stats.CompleteMappingSeconds,
                           2),
            TextTable::fmt(Stress.Stats.CoreMappingSeconds +
                               Stress.Stats.CompleteMappingSeconds,
                           2),
            TextTable::fmt(Huge.Stats.CoreMappingSeconds +
                               Huge.Stats.CompleteMappingSeconds,
                           2)});
  T.addRow({"Core fit slack (sum 1-S_K)",
            TextTable::fmt(Skl.Stats.CoreSlack, 2),
            TextTable::fmt(Zen.Stats.CoreSlack, 2),
            TextTable::fmt(Stress.Stats.CoreSlack, 2),
            TextTable::fmt(Huge.Stats.CoreSlack, 2)});
  T.addRow({"LP solves (core+aux)",
            N(static_cast<size_t>(Skl.Stats.CoreLpSolves +
                                  Skl.Stats.CompleteLpSolves)),
            N(static_cast<size_t>(Zen.Stats.CoreLpSolves +
                                  Zen.Stats.CompleteLpSolves)),
            N(static_cast<size_t>(Stress.Stats.CoreLpSolves +
                                  Stress.Stats.CompleteLpSolves)),
            N(static_cast<size_t>(Huge.Stats.CoreLpSolves +
                                  Huge.Stats.CompleteLpSolves))});
  T.addRow({"Simplex pivots",
            N(static_cast<size_t>(Skl.Stats.CoreLpPivots +
                                  Skl.Stats.CompleteLpPivots)),
            N(static_cast<size_t>(Zen.Stats.CoreLpPivots +
                                  Zen.Stats.CompleteLpPivots)),
            N(static_cast<size_t>(Stress.Stats.CoreLpPivots +
                                  Stress.Stats.CompleteLpPivots)),
            N(static_cast<size_t>(Huge.Stats.CoreLpPivots +
                                  Huge.Stats.CompleteLpPivots))});
  auto WarmCell = [](const PalmedStats &S) {
    std::string Cell = TextTable::fmt(S.LpWarmStartHits) + "/" +
                       TextTable::fmt(S.LpWarmStartAttempts);
    if (S.LpWarmStartAttempts > 0)
      Cell += " (" +
              TextTable::fmt(100.0 *
                                 static_cast<double>(S.LpWarmStartHits) /
                                 static_cast<double>(S.LpWarmStartAttempts),
                             1) +
              "%)";
    return Cell;
  };
  T.addRow({"LP warm-start hits", WarmCell(Skl.Stats), WarmCell(Zen.Stats),
            WarmCell(Stress.Stats), WarmCell(Huge.Stats)});
  T.print(std::cout);
  std::cout << "\nPaper reference (real HW): ~1,000,000 benchmarks, 17 "
               "resources,\n2586/2596 instructions mapped, 8h/6h "
               "benchmarking + 2h LP.\n";
  std::printf("\nParallel mapping (stress ISA): serial %.2fs, "
              "4 threads %.2fs (%.2fx), outcomes %s\n",
              Stress.Seconds, StressPar.Seconds,
              StressPar.Seconds > 0.0 ? Stress.Seconds / StressPar.Seconds
                                      : 0.0,
              Identical ? "identical" : "DIFFER");

  for (const Row *R : {&Skl, &Zen, &Stress, &Huge}) {
    std::string P = R->Name == "SKL-SP-like" ? "skl."
                    : R->Name == "ZEN1-like" ? "zen."
                    : R->Name == "stress"    ? "stress."
                                             : "huge.";
    Report.addMetric(P + "instructions",
                     static_cast<double>(R->Instructions));
    Report.addMetric(P + "benchmarks",
                     static_cast<double>(R->Stats.NumBenchmarks));
    Report.addMetric(P + "basic", static_cast<double>(R->Stats.NumBasic));
    Report.addMetric(P + "resources",
                     static_cast<double>(R->Stats.NumResources));
    Report.addMetric(P + "mapped", static_cast<double>(R->Stats.NumMapped));
    Report.addMetric(P + "core_kernels",
                     static_cast<double>(R->Stats.NumCoreKernels));
    Report.addMetric(P + "selection_s", R->Stats.SelectionSeconds, "s");
    Report.addMetric(P + "lp_s",
                     R->Stats.CoreMappingSeconds +
                         R->Stats.CompleteMappingSeconds,
                     "s");
    Report.addMetric(P + "core_slack", R->Stats.CoreSlack);
    Report.addMetric(P + "lp_solves",
                     static_cast<double>(R->Stats.CoreLpSolves +
                                         R->Stats.CompleteLpSolves));
    Report.addMetric(P + "lp_pivots",
                     static_cast<double>(R->Stats.CoreLpPivots +
                                         R->Stats.CompleteLpPivots));
    Report.addMetric(P + "lp_warm_attempts",
                     static_cast<double>(R->Stats.LpWarmStartAttempts));
    Report.addMetric(P + "lp_warm_hits",
                     static_cast<double>(R->Stats.LpWarmStartHits));
    Report.addMetric(P + "lp_warm_hit_rate",
                     R->Stats.LpWarmStartAttempts > 0
                         ? static_cast<double>(R->Stats.LpWarmStartHits) /
                               static_cast<double>(R->Stats.LpWarmStartAttempts)
                         : 0.0);
  }

  // The warm-start machinery is on by default; a profile with zero probes
  // means the cache got disconnected somewhere in the pipeline. Fail loudly
  // rather than silently publishing cold-path numbers as the trajectory.
  bool WarmOk = true;
  for (const Row *R : {&Skl, &Zen, &Stress, &Huge}) {
    if (R->Stats.LpWarmStartAttempts <= 0) {
      std::cout << "ERROR: " << R->Name
                << " recorded zero LP warm-start attempts; the LP2 cache is "
                   "not wired in.\n";
      WarmOk = false;
    }
  }
  if (!WarmOk)
    return 1;

  // End-to-end parallel-mapping trajectory (stress scenario). On a 1-CPU
  // host the speedup is ~1x; the determinism bit is the hard guarantee.
  Report.addMetric("map.serial_s", Stress.Seconds, "s");
  Report.addMetric("map.parallel_s", StressPar.Seconds, "s");
  Report.addMetric("map.speedup_x", StressPar.Seconds > 0.0
                                        ? Stress.Seconds / StressPar.Seconds
                                        : 0.0);
  Report.addMetric("map.threads",
                   static_cast<double>(StressPar.Stats.NumThreads));
  Report.addMetric("map.outcomes_identical", Identical ? 1.0 : 0.0);

  // Quadratic->pruned pair-benchmark trajectory on the huge profile.
  Report.addMetric("map.pair_benchmarks",
                   static_cast<double>(Huge.Stats.PairBenchmarks));
  Report.addMetric("map.pair_benchmarks_quadratic",
                   static_cast<double>(Huge.Stats.PairBenchmarksQuadratic));
  Report.addMetric("map.pair_reduction_x",
                   Huge.Stats.PairBenchmarks > 0
                       ? static_cast<double>(
                             Huge.Stats.PairBenchmarksQuadratic) /
                             static_cast<double>(Huge.Stats.PairBenchmarks)
                       : 0.0);
  Report.addMetric("map.huge_s", Huge.Seconds, "s");
  std::printf("\nHuge profile (%zu instructions, pruned selection): "
              "%zu of %zu quadratic pairs (%.1fx reduction), %.1fs\n",
              Huge.Instructions, Huge.Stats.PairBenchmarks,
              Huge.Stats.PairBenchmarksQuadratic,
              Huge.Stats.PairBenchmarks > 0
                  ? static_cast<double>(Huge.Stats.PairBenchmarksQuadratic) /
                        static_cast<double>(Huge.Stats.PairBenchmarks)
                  : 0.0,
              Huge.Seconds);
  return Report.write();
}
