//===- bench/bench_table2_mapping.cpp - Paper Table II --------------------===//
//
// Part of the PALMED reproduction.
//
// Regenerates Table II: the main features of the mappings Palmed obtains on
// the two machines — microbenchmark count, resources found, instructions
// mapped, and wall-clock split between benchmarking-style work (selection)
// and LP solving (core + complete mapping). Absolute numbers differ from
// the paper (its substrate is real silicon and Gurobi; ours is a simulator
// and a bundled solver), but the structure of the table is the same.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "palmed/palmed.h"
#include "support/Table.h"

#include <iostream>

using namespace palmed;

namespace {

struct Row {
  std::string Name;
  size_t Instructions = 0;
  PalmedStats Stats;
};

Row runOn(bool Zen) {
  Row R;
  MachineModel M = Zen ? makeZenLike() : makeSklLike();
  R.Name = Zen ? "ZEN1-like" : "SKL-SP-like";
  R.Instructions = M.numInstructions();
  AnalyticOracle O(M);
  BenchmarkRunner Runner(M, O);
  // Drive the stages explicitly: Table II's row split (benchmarking vs LP
  // solving) is exactly the stage split of the public pipeline.
  Pipeline P(Runner);
  P.selectBasics();
  P.solveCoreMapping();
  R.Stats = P.completeMapping().Stats;
  return R;
}

} // namespace

int main() {
  bench::BenchReport Report("table2_mapping");
  std::cout << "TABLE II: main features of the obtained mappings\n\n";
  Row Skl = runOn(false);
  Row Zen = runOn(true);

  TextTable T({"", Skl.Name, Zen.Name});
  auto N = [](size_t V) { return TextTable::fmt(static_cast<int64_t>(V)); };
  T.addRow({"ISA instructions", N(Skl.Instructions), N(Zen.Instructions)});
  T.addRow({"Gen. microbenchmarks", N(Skl.Stats.NumBenchmarks),
            N(Zen.Stats.NumBenchmarks)});
  T.addRow({"Basic instructions", N(Skl.Stats.NumBasic),
            N(Zen.Stats.NumBasic)});
  T.addRow({"Resources found", N(Skl.Stats.NumResources),
            N(Zen.Stats.NumResources)});
  T.addRow({"Instructions mapped", N(Skl.Stats.NumMapped),
            N(Zen.Stats.NumMapped)});
  T.addRow({"Core LP kernels", N(Skl.Stats.NumCoreKernels),
            N(Zen.Stats.NumCoreKernels)});
  T.addRow({"Benchmarking time (s)",
            TextTable::fmt(Skl.Stats.SelectionSeconds, 2),
            TextTable::fmt(Zen.Stats.SelectionSeconds, 2)});
  T.addRow({"LP solving time (s)",
            TextTable::fmt(Skl.Stats.CoreMappingSeconds +
                               Skl.Stats.CompleteMappingSeconds,
                           2),
            TextTable::fmt(Zen.Stats.CoreMappingSeconds +
                               Zen.Stats.CompleteMappingSeconds,
                           2)});
  T.addRow({"Core fit slack (sum 1-S_K)",
            TextTable::fmt(Skl.Stats.CoreSlack, 2),
            TextTable::fmt(Zen.Stats.CoreSlack, 2)});
  T.addRow({"LP solves (core+aux)",
            N(static_cast<size_t>(Skl.Stats.CoreLpSolves +
                                  Skl.Stats.CompleteLpSolves)),
            N(static_cast<size_t>(Zen.Stats.CoreLpSolves +
                                  Zen.Stats.CompleteLpSolves))});
  T.addRow({"Simplex pivots",
            N(static_cast<size_t>(Skl.Stats.CoreLpPivots +
                                  Skl.Stats.CompleteLpPivots)),
            N(static_cast<size_t>(Zen.Stats.CoreLpPivots +
                                  Zen.Stats.CompleteLpPivots))});
  T.print(std::cout);
  std::cout << "\nPaper reference (real HW): ~1,000,000 benchmarks, 17 "
               "resources,\n2586/2596 instructions mapped, 8h/6h "
               "benchmarking + 2h LP.\n";

  for (const Row *R : {&Skl, &Zen}) {
    std::string P = R->Name == "SKL-SP-like" ? "skl." : "zen.";
    Report.addMetric(P + "instructions",
                     static_cast<double>(R->Instructions));
    Report.addMetric(P + "benchmarks",
                     static_cast<double>(R->Stats.NumBenchmarks));
    Report.addMetric(P + "basic", static_cast<double>(R->Stats.NumBasic));
    Report.addMetric(P + "resources",
                     static_cast<double>(R->Stats.NumResources));
    Report.addMetric(P + "mapped", static_cast<double>(R->Stats.NumMapped));
    Report.addMetric(P + "core_kernels",
                     static_cast<double>(R->Stats.NumCoreKernels));
    Report.addMetric(P + "selection_s", R->Stats.SelectionSeconds, "s");
    Report.addMetric(P + "lp_s",
                     R->Stats.CoreMappingSeconds +
                         R->Stats.CompleteMappingSeconds,
                     "s");
    Report.addMetric(P + "core_slack", R->Stats.CoreSlack);
    Report.addMetric(P + "lp_solves",
                     static_cast<double>(R->Stats.CoreLpSolves +
                                         R->Stats.CompleteLpSolves));
    Report.addMetric(P + "lp_pivots",
                     static_cast<double>(R->Stats.CoreLpPivots +
                                         R->Stats.CompleteLpPivots));
    Report.addMetric(P + "lp_warm_attempts",
                     static_cast<double>(R->Stats.LpWarmStartAttempts));
    Report.addMetric(P + "lp_warm_hits",
                     static_cast<double>(R->Stats.LpWarmStartHits));
  }
  return Report.write();
}
