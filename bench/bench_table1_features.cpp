//===- bench/bench_table1_features.cpp - Paper Table I --------------------===//
//
// Part of the PALMED reproduction.
//
// Regenerates Table I: the qualitative feature matrix of Palmed vs related
// work. The rows are facts about the tools (as modelled in this repo; see
// baselines/), not measurements.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "support/Table.h"

#include <iostream>

using namespace palmed;

int main() {
  bench::BenchReport Report("table1_features");
  std::cout << "TABLE I: summary of key features of Palmed vs related work\n"
            << "(y = yes, n = no, - = not applicable)\n\n";
  TextTable T({"tool", "no HW counters", "no manual expertise",
               "interpretable", "general"});
  T.addRow({"llvm-mca", "y", "n", "y", "n"});
  T.addRow({"Ithemal", "y", "y", "n", "n"});
  T.addRow({"IACA", "-", "n", "y", "n"});
  T.addRow({"uops.info", "n", "y", "y", "n"});
  T.addRow({"PMEvo", "y", "y", "y", "n"});
  T.addRow({"Palmed", "y", "y", "y", "y"});
  T.print(std::cout);
  std::cout << "\n'general': models non-port bottlenecks (front-end, "
               "non-pipelined units)\nvia the same abstract-resource "
               "formalism.\n";
  Report.addInfo("kind", "qualitative");
  Report.addMetric("tools_compared", 6);
  return Report.write();
}
