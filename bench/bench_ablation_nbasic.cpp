//===- bench/bench_ablation_nbasic.cpp - Basic-count ablation -------------===//
//
// Part of the PALMED reproduction.
//
// Ablation XTRA2 (DESIGN.md): the `n` parameter of Algorithm 1 (basic
// instructions per extension group) against mapping quality and solving
// time — the scalability trade-off behind the paper's Sec. II claim that
// the incremental LP formulation scales where PMEvo's global search does
// not. Too small an n misses whole port classes (accuracy collapses); a
// larger n grows the quadratic benchmark and LP sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "palmed/palmed.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <iostream>
#include <string>

using namespace palmed;

int main() {
  bench::BenchReport Report("ablation_nbasic");
  std::cout << "ABLATION: basic instructions per group (n) vs quality/time "
               "(SKL-SP-like)\n\n";
  MachineModel M = makeSklLike();
  AnalyticOracle O(M);

  TextTable T({"n/group", "basic", "resources", "benchmarks", "map time s",
               "RMS err %", "tau"});
  for (int N : {3, 4, 6, 8, 10}) {
    BenchmarkRunner Runner(M, O);
    PalmedConfig Cfg;
    Cfg.Selection.NumBasicPerGroup = N;
    PalmedResult R = Pipeline(Runner, Cfg).run();

    Rng Rand(777);
    std::vector<double> Pred, Native;
    for (int Trial = 0; Trial < 200; ++Trial) {
      Microkernel K;
      size_t Terms = 1 + Rand.uniformInt(5);
      for (size_t I = 0; I < Terms; ++I) {
        InstrId Id =
            static_cast<InstrId>(Rand.uniformInt(M.numInstructions()));
        if (R.Mapping.isMapped(Id))
          K.add(Id, static_cast<double>(1 + Rand.uniformInt(3)));
      }
      if (K.empty() || M.kernelMixesExtensions(K))
        continue;
      auto P = R.Mapping.predictIpc(K);
      if (!P)
        continue;
      Pred.push_back(*P);
      Native.push_back(O.measureIpc(K));
    }
    double MapSeconds =
        R.Stats.CoreMappingSeconds + R.Stats.CompleteMappingSeconds;
    double ErrPct = 100.0 * weightedRmsRelativeError(Pred, Native);
    double Tau = kendallTau(Pred, Native);
    T.addRow({TextTable::fmt(static_cast<int64_t>(N)),
              TextTable::fmt(static_cast<int64_t>(R.Stats.NumBasic)),
              TextTable::fmt(static_cast<int64_t>(R.Stats.NumResources)),
              TextTable::fmt(static_cast<int64_t>(R.Stats.NumBenchmarks)),
              TextTable::fmt(MapSeconds, 2), TextTable::fmt(ErrPct, 1),
              TextTable::fmt(Tau, 2)});
    std::string Key = "n" + std::to_string(N) + ".";
    Report.addMetric(Key + "basic", static_cast<double>(R.Stats.NumBasic));
    Report.addMetric(Key + "resources",
                     static_cast<double>(R.Stats.NumResources));
    Report.addMetric(Key + "benchmarks",
                     static_cast<double>(R.Stats.NumBenchmarks));
    Report.addMetric(Key + "map_time_s", MapSeconds, "s");
    Report.addMetric(Key + "err_pct", ErrPct, "%");
    Report.addMetric(Key + "kendall_tau", Tau);
  }
  T.print(std::cout);
  return Report.write();
}
