#!/usr/bin/env bash
# End-to-end smoke for the serving stack, shared by ctest (cli.serve_smoke)
# and CI: infer + save a binary mapping, start palmed_serve on it, run a
# batched query round-trip, assert a nonzero connection QPS and cache hits
# on re-query, then check the daemon exits 0 on SIGTERM.
#
# usage: serve_smoke.sh WORKDIR
# env:   PALMED_CLI, PALMED_SERVE  — tool paths (default: on $PATH)
#        PALMED_SMOKE_MACHINE      — machine profile (default: skl)
set -euo pipefail

WORKDIR=${1:?usage: serve_smoke.sh WORKDIR}
CLI=${PALMED_CLI:-palmed_cli}
SERVE=${PALMED_SERVE:-palmed_serve}
MACHINE=${PALMED_SMOKE_MACHINE:-skl}

case "$MACHINE" in
  fig1) KERNELS=("ADDSS" "ADDSS^2 VCVTT" "BSR ADDSS") ;;
  *)    KERNELS=("ADD_0" "ADD_0^2 LOAD_0" "STORE_0 LOAD_0") ;;
esac

mkdir -p "$WORKDIR"
MAPFILE="$WORKDIR/$MACHINE.palmedmap"
SOCK="$WORKDIR/serve.sock"
rm -f "$MAPFILE" "$SOCK"

echo "== map --machine $MACHINE --save $MAPFILE"
"$CLI" map --machine "$MACHINE" --save "$MAPFILE"
test -s "$MAPFILE"

echo "== starting palmed_serve"
"$SERVE" --socket "$SOCK" --load "$MACHINE=$MAPFILE" &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 $SERVE_PID 2>/dev/null || { echo "FAIL: server died"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

echo "== batched query round-trip"
OUT1=$("$CLI" query --socket "$SOCK" --machine "$MACHINE" "${KERNELS[@]}")
echo "$OUT1"
ANSWERS=$(printf '%s\n' "$OUT1" | grep -c "ipc=")
[ "$ANSWERS" -eq "${#KERNELS[@]}" ] || {
  echo "FAIL: expected ${#KERNELS[@]} answers, got $ANSWERS"; exit 1; }

echo "== re-query (cache hits) + stats"
OUT2=$("$CLI" query --socket "$SOCK" --machine "$MACHINE" \
  "${KERNELS[@]}" --stats --list)
echo "$OUT2"
QPS=$(printf '%s\n' "$OUT2" | awk '$1 == "conn.qps" {print $2}')
awk -v q="${QPS:-0}" 'BEGIN { exit !(q > 0) }' || {
  echo "FAIL: conn.qps not positive (got '${QPS:-}')"; exit 1; }
HITS=$(printf '%s\n' "$OUT2" | awk '$1 == "server.cache_hits" {print $2}')
awk -v h="${HITS:-0}" 'BEGIN { exit !(h > 0) }' || {
  echo "FAIL: re-query produced no cache hits (got '${HITS:-}')"; exit 1; }
printf '%s\n' "$OUT2" | grep -q "^$MACHINE " || {
  echo "FAIL: --list did not report machine '$MACHINE'"; exit 1; }

echo "== SIGTERM shutdown"
kill -TERM $SERVE_PID
RC=0
wait $SERVE_PID || RC=$?
trap - EXIT
[ "$RC" -eq 0 ] || { echo "FAIL: server exited $RC on SIGTERM"; exit 1; }
[ ! -e "$SOCK" ] || { echo "FAIL: socket file left behind"; exit 1; }

echo "PASS: serve smoke ($MACHINE, ${#KERNELS[@]}-kernel batch, qps=$QPS)"
