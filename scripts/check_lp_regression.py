#!/usr/bin/env python3
"""Fail when the LP hot path regresses against the committed baseline.

Usage: check_lp_regression.py <report.json> [baseline.json] [factor] [suffix]

<report.json> is a single-bench report written by bench_table2_mapping
under PALMED_BENCH_REPORT. The baseline defaults to BENCH_seed.json at the
repo root (the merged multi-bench file); the check fails when any metric
ending in `suffix` (default `lp_s`) exceeds the baseline by more than
`factor` (default 2.0 — generous because CI machines are noisy and
heterogeneous, while a real hot-path regression shows up as 2x or worse).
CI pairs the wall-clock gate with a tight host-independent gate on the
deterministic `lp_pivots` counters against BENCH_post.json.

Because the match is suffix-based, passing a fully qualified metric name
(e.g. `huge.lp_s` or `huge.lp_pivots`) gates exactly that one metric — CI
uses this to pin the huge profile, the LP2 warm-start/decomposition
showcase, independently of the smaller machines.
"""

import json
import pathlib
import sys


def metrics_of(bench):
    return {m["name"]: m["value"] for m in bench.get("metrics", [])}


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    report_path = pathlib.Path(argv[1])
    baseline_path = pathlib.Path(
        argv[2] if len(argv) > 2
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_seed.json")
    factor = float(argv[3]) if len(argv) > 3 else 2.0
    suffix = argv[4] if len(argv) > 4 else "lp_s"

    report = json.loads(report_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    base_bench = next(
        (b for b in baseline.get("benches", [baseline])
         if b.get("bench") == report.get("bench")), None)
    if base_bench is None:
        print(f"baseline has no entry for bench '{report.get('bench')}'")
        return 2

    new = metrics_of(report)
    old = metrics_of(base_bench)
    failures = []
    checked = 0
    for name, old_value in old.items():
        if not name.endswith(suffix):
            continue
        if name not in new:
            # Benches come and go across PRs; a metric present in only one
            # of the two reports is not comparable, so it is skipped rather
            # than failed. The checked==0 guard still catches a report that
            # shares nothing with the baseline.
            print(f"{name}: only in the baseline, skipped")
            continue
        checked += 1
        limit = old_value * factor
        status = "OK" if new[name] <= limit else "REGRESSED"
        print(f"{name}: {new[name]:.3f} vs baseline {old_value:.3f} "
              f"(limit {limit:.3f}) {status}")
        if new[name] > limit:
            failures.append(
                f"{name}: {new[name]:.3f} > {factor}x baseline "
                f"{old_value:.3f}")
    for name in new:
        if name.endswith(suffix) and name not in old:
            print(f"{name}: only in the new report, skipped")
    if checked == 0:
        failures.append(f"no common {suffix} metrics between the reports")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
