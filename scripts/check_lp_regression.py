#!/usr/bin/env python3
"""Fail when a benched metric regresses against the committed baseline.

Usage: check_lp_regression.py <report.json> [baseline.json] [factor]
                              [suffix] [mode]

<report.json> is a single-bench report written under PALMED_BENCH_REPORT.
The baseline defaults to BENCH_seed.json at the repo root (the merged
multi-bench file); the check fails when any metric ending in `suffix`
(default `lp_s`) regresses past the baseline by more than `factor`
(default 2.0 — generous because CI machines are noisy and heterogeneous,
while a real hot-path regression shows up as 2x or worse). CI pairs the
wall-clock gate with a tight host-independent gate on the deterministic
`lp_pivots` counters against BENCH_post.json.

`mode` picks the regression direction: `max` (default) treats the metric
as a cost — fail when new > old * factor (seconds, pivot counts). `min`
treats it as a throughput — fail when new < old / factor (e.g.
`predict.blocks_per_s`, where lower is worse).

Because the match is suffix-based, passing a fully qualified metric name
(e.g. `huge.lp_s` or `predict.blocks_per_s`) gates exactly that one
metric — CI uses this to pin the huge profile and the batch-prediction
throughput independently of the smaller machines.
"""

import json
import pathlib
import sys


def metrics_of(bench):
    return {m["name"]: m["value"] for m in bench.get("metrics", [])}


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    report_path = pathlib.Path(argv[1])
    baseline_path = pathlib.Path(
        argv[2] if len(argv) > 2
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_seed.json")
    factor = float(argv[3]) if len(argv) > 3 else 2.0
    suffix = argv[4] if len(argv) > 4 else "lp_s"
    mode = argv[5] if len(argv) > 5 else "max"
    if mode not in ("max", "min"):
        print(f"unknown mode '{mode}' (expected 'max' or 'min')")
        return 2

    report = json.loads(report_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    base_bench = next(
        (b for b in baseline.get("benches", [baseline])
         if b.get("bench") == report.get("bench")), None)
    if base_bench is None:
        print(f"baseline has no entry for bench '{report.get('bench')}'")
        return 2

    new = metrics_of(report)
    old = metrics_of(base_bench)
    failures = []
    checked = 0
    for name, old_value in old.items():
        if not name.endswith(suffix):
            continue
        if name not in new:
            # Benches come and go across PRs; a metric present in only one
            # of the two reports is not comparable, so it is skipped rather
            # than failed. The checked==0 guard still catches a report that
            # shares nothing with the baseline.
            print(f"{name}: only in the baseline, skipped")
            continue
        checked += 1
        if mode == "max":
            limit = old_value * factor
            regressed = new[name] > limit
            relation = f"> {factor}x baseline"
            bound = "limit"
        else:
            limit = old_value / factor
            regressed = new[name] < limit
            relation = f"< baseline/{factor}"
            bound = "floor"
        status = "REGRESSED" if regressed else "OK"
        print(f"{name}: {new[name]:.3f} vs baseline {old_value:.3f} "
              f"({bound} {limit:.3f}) {status}")
        if regressed:
            failures.append(
                f"{name}: {new[name]:.3f} {relation} "
                f"{old_value:.3f}")
    for name in new:
        if name.endswith(suffix) and name not in old:
            print(f"{name}: only in the new report, skipped")
    if checked == 0:
        failures.append(f"no common {suffix} metrics between the reports")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
